// Unit + property tests for the linear-algebra substrate (S1).

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "qfc/linalg/error.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/linalg/solve.hpp"
#include "qfc/linalg/svd.hpp"

namespace {

using qfc::linalg::cplx;
using qfc::linalg::CMat;
using qfc::linalg::CVec;
using qfc::linalg::RMat;
using qfc::linalg::RVec;

CMat random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = cplx(n(g), n(g));
  return m;
}

CMat random_hermitian(std::size_t n, unsigned seed) {
  const CMat a = random_matrix(n, n, seed);
  return qfc::linalg::hermitian_part(a);
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, ConstructsAndIndexes) {
  CMat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = cplx(3, -1);
  EXPECT_EQ(m(1, 2), cplx(3, -1));
  EXPECT_EQ(m(0, 0), cplx(0, 0));
}

TEST(Matrix, InitializerListAndEquality) {
  const RMat a{{1, 2}, {3, 4}};
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_EQ(a(1, 0), 3.0);
  const RMat b{{1, 2}, {3, 4}};
  EXPECT_EQ(a, b);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMat{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, OutOfRangeThrows) {
  CMat m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityMultiplication) {
  const CMat a = random_matrix(4, 4, 1);
  const CMat i4 = CMat::identity(4);
  const CMat prod = a * i4;
  EXPECT_LT((prod - a).max_abs(), 1e-14);
}

TEST(Matrix, MultiplicationAgainstHandComputed) {
  const RMat a{{1, 2}, {3, 4}};
  const RMat b{{5, 6}, {7, 8}};
  const RMat c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, ShapeMismatchThrows) {
  const CMat a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  CMat c(2, 2);
  EXPECT_THROW(c += a, std::invalid_argument);
}

TEST(Matrix, AdjointIsConjugateTranspose) {
  const CMat a = random_matrix(3, 5, 2);
  const CMat ad = a.adjoint();
  ASSERT_EQ(ad.rows(), 5u);
  ASSERT_EQ(ad.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(ad(j, i), std::conj(a(i, j)));
}

TEST(Matrix, TraceOfProductCyclic) {
  const CMat a = random_matrix(4, 4, 3);
  const CMat b = random_matrix(4, 4, 4);
  const cplx t1 = (a * b).trace();
  const cplx t2 = (b * a).trace();
  EXPECT_NEAR(std::abs(t1 - t2), 0.0, 1e-10);
}

TEST(Matrix, MatVecMatchesMatMat) {
  const CMat a = random_matrix(3, 3, 5);
  CVec x{cplx(1, 0), cplx(0, 1), cplx(2, -1)};
  const CVec y = a * x;
  CMat xm(3, 1);
  for (int i = 0; i < 3; ++i) xm(static_cast<std::size_t>(i), 0) = x[static_cast<std::size_t>(i)];
  const CMat ym = a * xm;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(std::abs(y[i] - ym(i, 0)), 0.0, 1e-12);
}

TEST(Matrix, KronDimensionsAndValues) {
  const RMat a{{1, 2}, {3, 4}};
  const RMat b{{0, 5}, {6, 7}};
  const RMat k = qfc::linalg::kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5);    // a(0,0)*b(0,1)
  EXPECT_DOUBLE_EQ(k(3, 2), 4 * 6);  // a(1,1)*b(1,0)
}

TEST(Matrix, KronMixedProductProperty) {
  // (A⊗B)(C⊗D) = (AC)⊗(BD)
  const CMat a = random_matrix(2, 2, 6), b = random_matrix(2, 2, 7);
  const CMat c = random_matrix(2, 2, 8), d = random_matrix(2, 2, 9);
  const CMat lhs = qfc::linalg::kron(a, b) * qfc::linalg::kron(c, d);
  const CMat rhs = qfc::linalg::kron(a * c, b * d);
  EXPECT_LT((lhs - rhs).max_abs(), 1e-10);
}

TEST(Vector, DotAndNorm) {
  CVec a{cplx(1, 1), cplx(0, 2)};
  CVec b{cplx(1, 0), cplx(1, 0)};
  const cplx d = qfc::linalg::vdot(a, b);  // conj(a).b
  EXPECT_NEAR(std::real(d), 1.0, 1e-15);
  EXPECT_NEAR(std::imag(d), -3.0, 1e-15);
  EXPECT_NEAR(qfc::linalg::vnorm(a), std::sqrt(6.0), 1e-15);
}

TEST(Vector, NormalizeZeroThrows) {
  CVec z(3, cplx(0, 0));
  EXPECT_THROW(qfc::linalg::vnormalize(z), std::invalid_argument);
}

TEST(Matrix, HermitianAndUnitaryPredicates) {
  EXPECT_TRUE(qfc::linalg::is_hermitian(random_hermitian(5, 10)));
  EXPECT_FALSE(qfc::linalg::is_hermitian(random_matrix(5, 5, 11)));
  const CMat h{{cplx(0, 0), cplx(1, 0)}, {cplx(1, 0), cplx(0, 0)}};  // Pauli X
  EXPECT_TRUE(qfc::linalg::is_unitary(h));
  CMat notu = h;
  notu *= cplx(2, 0);
  EXPECT_FALSE(qfc::linalg::is_unitary(notu));
}

// ------------------------------------------------------------- Eigen

TEST(HermitianEig, DiagonalMatrix) {
  CMat d(3, 3);
  d(0, 0) = cplx(3, 0);
  d(1, 1) = cplx(-1, 0);
  d(2, 2) = cplx(7, 0);
  const auto e = qfc::linalg::hermitian_eig(d);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 7, 1e-12);
  EXPECT_NEAR(e.values[1], 3, 1e-12);
  EXPECT_NEAR(e.values[2], -1, 1e-12);
}

TEST(HermitianEig, KnownTwoByTwo) {
  // Pauli X: eigenvalues ±1.
  const CMat x{{cplx(0, 0), cplx(1, 0)}, {cplx(1, 0), cplx(0, 0)}};
  const auto e = qfc::linalg::hermitian_eig(x);
  EXPECT_NEAR(e.values[0], 1, 1e-12);
  EXPECT_NEAR(e.values[1], -1, 1e-12);
}

TEST(HermitianEig, NonHermitianThrows) {
  EXPECT_THROW(qfc::linalg::hermitian_eig(random_matrix(3, 3, 12)),
               std::invalid_argument);
}

class HermitianEigProperty : public ::testing::TestWithParam<int> {};

TEST_P(HermitianEigProperty, ReconstructsAndOrthonormal) {
  const auto n = static_cast<std::size_t>(GetParam() % 13 + 2);
  const CMat a = random_hermitian(n, static_cast<unsigned>(GetParam()));
  const auto e = qfc::linalg::hermitian_eig(a);

  // Reconstruction A = V diag V†.
  CMat recon(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      cplx s(0, 0);
      for (std::size_t k = 0; k < n; ++k)
        s += e.vectors(i, k) * e.values[k] * std::conj(e.vectors(j, k));
      recon(i, j) = s;
    }
  EXPECT_LT((recon - a).max_abs(), 1e-9 * std::max(1.0, a.max_abs()));

  // V unitary.
  EXPECT_TRUE(qfc::linalg::is_unitary(e.vectors, 1e-9));

  // Sorted descending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);

  // Trace preserved.
  double tr = 0;
  for (double v : e.values) tr += v;
  EXPECT_NEAR(tr, std::real(a.trace()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomHermitian, HermitianEigProperty,
                         ::testing::Range(1, 25));

// ------------------------------------------------------------- SVD

class SvdProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SvdProperty, FactorsReconstructInput) {
  const auto [ri, ci, seed] = GetParam();
  const auto r = static_cast<std::size_t>(ri);
  const auto c = static_cast<std::size_t>(ci);
  const CMat a = random_matrix(r, c, static_cast<unsigned>(seed));
  const auto s = qfc::linalg::svd(a);

  const std::size_t k = std::min(r, c);
  ASSERT_EQ(s.sigma.size(), k);
  ASSERT_EQ(s.u.rows(), r);
  ASSERT_EQ(s.u.cols(), k);
  ASSERT_EQ(s.v.rows(), c);
  ASSERT_EQ(s.v.cols(), k);

  // Non-negative, descending.
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_GE(s.sigma[i], 0.0);
    if (i > 0) {
      EXPECT_GE(s.sigma[i - 1], s.sigma[i] - 1e-12);
    }
  }

  // A ≈ U Σ V†.
  CMat us = s.u;
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < r; ++i) us(i, j) *= s.sigma[j];
  const CMat recon = us * s.v.adjoint();
  EXPECT_LT((recon - a).max_abs(), 1e-9 * std::max(1.0, a.max_abs()));

  // V has orthonormal columns.
  const CMat vtv = s.v.adjoint() * s.v;
  EXPECT_LT((vtv - CMat::identity(k)).max_abs(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(std::make_tuple(4, 4, 1), std::make_tuple(6, 3, 2),
                      std::make_tuple(3, 6, 3), std::make_tuple(8, 8, 4),
                      std::make_tuple(16, 5, 5), std::make_tuple(5, 16, 6),
                      std::make_tuple(32, 32, 7), std::make_tuple(1, 7, 8),
                      std::make_tuple(7, 1, 9)));

TEST(Svd, KnownSingularValues) {
  // diag(3, 2) embedded in 2x2.
  CMat a(2, 2);
  a(0, 0) = cplx(3, 0);
  a(1, 1) = cplx(-2, 0);  // sign lands in the factors
  const auto s = qfc::linalg::svd(a);
  EXPECT_NEAR(s.sigma[0], 3, 1e-12);
  EXPECT_NEAR(s.sigma[1], 2, 1e-12);
}

TEST(Svd, RankDeficient) {
  // Rank-1 outer product: second singular value ~ 0.
  CVec u{cplx(1, 0), cplx(2, 0), cplx(-1, 0)};
  CVec v{cplx(0, 1), cplx(1, 0)};
  const CMat a = qfc::linalg::outer(u, v);
  const auto s = qfc::linalg::svd(a);
  EXPECT_NEAR(s.sigma[0], qfc::linalg::vnorm(u) * qfc::linalg::vnorm(v), 1e-10);
  EXPECT_NEAR(s.sigma[1], 0.0, 1e-10);
}

// ------------------------------------------------------------- Solve

TEST(Lu, SolveRoundTrip) {
  const CMat a = random_matrix(6, 6, 20);
  CVec x_true(6);
  for (std::size_t i = 0; i < 6; ++i) x_true[i] = cplx(static_cast<double>(i) + 1, -2.0);
  const CVec b = a * x_true;
  const CVec x = qfc::linalg::solve(a, b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
}

TEST(Lu, SingularThrows) {
  CMat a(3, 3);  // all zeros
  CVec b(3, cplx(1, 0));
  EXPECT_THROW(qfc::linalg::solve(a, b), qfc::NumericalError);
}

TEST(Lu, DeterminantKnown) {
  const CMat a{{cplx(2, 0), cplx(0, 0)}, {cplx(5, 0), cplx(3, 0)}};
  EXPECT_NEAR(std::abs(qfc::linalg::determinant(a) - cplx(6, 0)), 0.0, 1e-12);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  const CMat a = random_matrix(5, 5, 21);
  const CMat inv = qfc::linalg::inverse(a);
  EXPECT_LT((a * inv - CMat::identity(5)).max_abs(), 1e-9);
}

TEST(Cholesky, FactorizesAndRejects) {
  const CMat m = random_matrix(4, 4, 22);
  CMat psd = m * m.adjoint();  // PSD (PD with prob. 1)
  for (std::size_t i = 0; i < 4; ++i) psd(i, i) += cplx(0.5, 0);
  const CMat l = qfc::linalg::cholesky(psd);
  EXPECT_LT((l * l.adjoint() - psd).max_abs(), 1e-9);

  CMat neg = CMat::identity(3);
  neg(2, 2) = cplx(-1, 0);
  EXPECT_THROW(qfc::linalg::cholesky(neg), qfc::NumericalError);
}

TEST(LeastSquares, ExactLineFit) {
  // y = 2 + 3x fitted exactly through 5 points.
  RMat a(5, 2);
  RVec b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 2.0 + 3.0 * x;
  }
  const RVec c = qfc::linalg::least_squares(a, b);
  EXPECT_NEAR(c[0], 2.0, 1e-10);
  EXPECT_NEAR(c[1], 3.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidual) {
  // Overdetermined noisy system: residual orthogonal to the column space.
  std::mt19937 g(77);
  std::normal_distribution<double> n(0.0, 1.0);
  RMat a(20, 3);
  RVec b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = n(g);
    b[i] = n(g);
  }
  const RVec x = qfc::linalg::least_squares(a, b);
  // residual r = b - Ax must satisfy Aᵀ r = 0.
  RVec r = b;
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 3; ++j) r[i] -= a(i, j) * x[j];
  for (std::size_t j = 0; j < 3; ++j) {
    double dot = 0;
    for (std::size_t i = 0; i < 20; ++i) dot += a(i, j) * r[i];
    EXPECT_NEAR(dot, 0.0, 1e-9);
  }
}

TEST(LeastSquares, UnderdeterminedThrows) {
  RMat a(2, 3);
  RVec b(2);
  EXPECT_THROW(qfc::linalg::least_squares(a, b), std::invalid_argument);
}

// ----------------------------------------------------- Matrix functions

TEST(MatrixFunctions, SqrtmSquaresBack) {
  const CMat m = random_matrix(4, 4, 30);
  const CMat psd = m * m.adjoint();
  const CMat r = qfc::linalg::sqrtm_psd(psd);
  EXPECT_LT((r * r - psd).max_abs(), 1e-8 * std::max(1.0, psd.max_abs()));
  EXPECT_TRUE(qfc::linalg::is_hermitian(r, 1e-9));
}

TEST(MatrixFunctions, SqrtmRejectsNegative) {
  CMat neg = CMat::identity(2);
  neg(1, 1) = cplx(-0.5, 0);
  EXPECT_THROW(qfc::linalg::sqrtm_psd(neg), qfc::NumericalError);
}

TEST(MatrixFunctions, ExpmOfZeroIsIdentity) {
  const CMat z(3, 3);
  const CMat e = qfc::linalg::expm_hermitian(z);
  EXPECT_LT((e - CMat::identity(3)).max_abs(), 1e-12);
}

TEST(MatrixFunctions, ProjectToDensityMatrixProperties) {
  // Start from a Hermitian matrix with negative eigenvalues and trace != 1.
  CMat h = random_hermitian(4, 31);
  const CMat rho = qfc::linalg::project_to_density_matrix(h);

  EXPECT_TRUE(qfc::linalg::is_hermitian(rho, 1e-9));
  EXPECT_NEAR(std::real(rho.trace()), 1.0, 1e-9);
  const auto evals = qfc::linalg::hermitian_eigenvalues(rho);
  for (double v : evals) EXPECT_GE(v, -1e-10);
}

TEST(MatrixFunctions, ProjectionIsIdempotentOnDensityMatrices) {
  // A valid density matrix must be returned (almost) unchanged.
  CMat rho(2, 2);
  rho(0, 0) = cplx(0.7, 0);
  rho(1, 1) = cplx(0.3, 0);
  rho(0, 1) = cplx(0.2, 0.1);
  rho(1, 0) = std::conj(rho(0, 1));
  const CMat p = qfc::linalg::project_to_density_matrix(rho);
  EXPECT_LT((p - rho).max_abs(), 1e-9);
}

}  // namespace
