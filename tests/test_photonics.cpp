// Tests for the classical photonics substrate (S3): materials, waveguide,
// microring, comb grid, pumps, device presets.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/linalg/error.hpp"
#include "qfc/photonics/comb_grid.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/photonics/material.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"
#include "qfc/photonics/self_locked.hpp"
#include "qfc/photonics/waveguide.hpp"

namespace {

using namespace qfc::photonics;

constexpr double k1550nm = 1550e-9;

TEST(Constants, WavelengthFrequencyRoundTrip) {
  const double f = frequency_from_wavelength(k1550nm);
  EXPECT_NEAR(wavelength_from_frequency(f), k1550nm, 1e-18);
  EXPECT_NEAR(f, 193.4e12, 0.2e12);
}

TEST(Constants, BandClassification) {
  EXPECT_EQ(classify_band(frequency_from_wavelength(1500e-9)), TelecomBand::S);
  EXPECT_EQ(classify_band(frequency_from_wavelength(1550e-9)), TelecomBand::C);
  EXPECT_EQ(classify_band(frequency_from_wavelength(1600e-9)), TelecomBand::L);
  EXPECT_EQ(classify_band(frequency_from_wavelength(1300e-9)), TelecomBand::Outside);
}

TEST(Material, HydexIndexNearPublishedValue) {
  EXPECT_NEAR(hydex().index(k1550nm), 1.70, 0.02);
}

TEST(Material, SilicaIndexNearMalitson) {
  EXPECT_NEAR(fused_silica().index(k1550nm), 1.444, 0.005);
}

TEST(Material, NormalDispersionInTelecomWindow) {
  // n decreasing with wavelength; group index above phase index.
  for (const auto* m : {&hydex(), &fused_silica()}) {
    EXPECT_GT(m->index(1500e-9), m->index(1600e-9));
    EXPECT_GT(m->group_index(k1550nm), m->index(k1550nm));
  }
}

TEST(Material, InvalidWavelengthThrows) {
  EXPECT_THROW(hydex().index(0.0), std::invalid_argument);
  EXPECT_THROW(hydex().index(-1e-6), std::invalid_argument);
  EXPECT_THROW(hydex().index(50e-9), std::invalid_argument);  // below UV pole
}

TEST(Waveguide, EffectiveIndexBelowBulk) {
  const Waveguide wg({1.5e-6, 1.45e-6}, hydex());
  const double f = frequency_from_wavelength(k1550nm);
  EXPECT_LT(wg.effective_index(f, Polarization::TE), hydex().index(k1550nm));
  EXPECT_GT(wg.effective_index(f, Polarization::TE), 1.0);
}

TEST(Waveguide, BirefringenceSignFollowsGeometry) {
  const double f = frequency_from_wavelength(k1550nm);
  // Wider than tall: TE (confined by width) pays a smaller penalty -> n_TE > n_TM.
  const Waveguide wide({1.6e-6, 1.3e-6}, hydex());
  EXPECT_GT(wide.birefringence(f), 0.0);
  // Square: zero birefringence.
  const Waveguide square({1.5e-6, 1.5e-6}, hydex());
  EXPECT_NEAR(square.birefringence(f), 0.0, 1e-12);
}

TEST(Waveguide, GroupIndexExceedsEffectiveIndex) {
  const Waveguide wg({1.5e-6, 1.5e-6}, hydex());
  const double f = frequency_from_wavelength(k1550nm);
  for (auto pol : {Polarization::TE, Polarization::TM})
    EXPECT_GT(wg.group_index(f, pol), wg.effective_index(f, pol));
}

TEST(Waveguide, BadGeometryThrows) {
  EXPECT_THROW(Waveguide({0.0, 1e-6}, hydex()), std::invalid_argument);
  EXPECT_THROW(Waveguide({1e-6, -1e-6}, hydex()), std::invalid_argument);
}

class MicroringFixture : public ::testing::Test {
 protected:
  MicroringFixture()
      : wg_({1.5e-6, 1.5e-6}, hydex()),
        ring_(wg_, 135e-6, 0.9995, 0.9995, 6.0) {}

  Waveguide wg_;
  MicroringResonator ring_;
  const double f0_ = frequency_from_wavelength(k1550nm);
};

TEST_F(MicroringFixture, FsrNearDesign) {
  // 135 µm radius with n_g ~ 1.77 -> FSR ~ 200 GHz.
  const double fsr = ring_.fsr_hz(f0_, Polarization::TE);
  EXPECT_NEAR(fsr, 200e9, 20e9);
}

TEST_F(MicroringFixture, ResonanceSatisfiesResonanceCondition) {
  const int m = ring_.mode_number_near(f0_, Polarization::TE);
  const double nu = ring_.resonance_frequency_hz(m, Polarization::TE);
  const double lhs = wg_.effective_index(nu, Polarization::TE) *
                     ring_.circumference_m() * nu / speed_of_light_m_per_s;
  EXPECT_NEAR(lhs, static_cast<double>(m), 1e-6);
}

TEST_F(MicroringFixture, NearestResonanceIsWithinHalfFsr) {
  const double nu = ring_.nearest_resonance_hz(f0_, Polarization::TE);
  const double fsr = ring_.fsr_hz(f0_, Polarization::TE);
  EXPECT_LE(std::abs(nu - f0_), fsr / 2 * 1.01);
}

TEST_F(MicroringFixture, ResonancesInRangeAreSortedAndSpacedByFsr) {
  const auto res = ring_.resonances_in(f0_ - 1e12, f0_ + 1e12, Polarization::TE);
  ASSERT_GT(res.size(), 5u);
  const double fsr = ring_.fsr_hz(f0_, Polarization::TE);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_GT(res[i], res[i - 1]);
    EXPECT_NEAR(res[i] - res[i - 1], fsr, 0.02 * fsr);
  }
}

TEST_F(MicroringFixture, LinewidthMatchesFinesseDefinition) {
  const double fsr = ring_.fsr_hz(f0_, Polarization::TE);
  EXPECT_NEAR(ring_.linewidth_hz(f0_, Polarization::TE), fsr / ring_.finesse(),
              1e-3 * fsr / ring_.finesse());
}

TEST_F(MicroringFixture, DropPowerPeaksOnResonanceAndDipsOff) {
  const double nu_res = ring_.nearest_resonance_hz(f0_, Polarization::TE);
  const double lw = ring_.linewidth_hz(nu_res, Polarization::TE);
  const double on = ring_.drop_power(nu_res, Polarization::TE);
  const double off = ring_.drop_power(nu_res + 20 * lw, Polarization::TE);
  EXPECT_GT(on, 100 * off);
  // Through port: dip on resonance.
  EXPECT_LT(ring_.through_power(nu_res, Polarization::TE),
            ring_.through_power(nu_res + 20 * lw, Polarization::TE));
}

TEST_F(MicroringFixture, HalfWidthPointIsHalfDropPower) {
  const double nu_res = ring_.nearest_resonance_hz(f0_, Polarization::TE);
  const double lw = ring_.linewidth_hz(nu_res, Polarization::TE);
  const double on = ring_.drop_power(nu_res, Polarization::TE);
  const double half = ring_.drop_power(nu_res + lw / 2, Polarization::TE);
  EXPECT_NEAR(half / on, 0.5, 0.05);
}

TEST_F(MicroringFixture, EnergyConservationAtPorts) {
  // Lossless check not possible (ring has loss); but T_thru + T_drop <= 1.
  for (double detune : {0.0, 0.5e9, 5e9}) {
    const double nu = ring_.nearest_resonance_hz(f0_, Polarization::TE) + detune;
    const double sum = ring_.through_power(nu, Polarization::TE) +
                       ring_.drop_power(nu, Polarization::TE);
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_GE(sum, 0.0);
  }
}

TEST_F(MicroringFixture, FieldEnhancementPeaksOnResonance) {
  const double nu_res = ring_.nearest_resonance_hz(f0_, Polarization::TE);
  const double lw = ring_.linewidth_hz(nu_res, Polarization::TE);
  const double on = ring_.field_enhancement(nu_res, Polarization::TE);
  EXPECT_GT(on, 1.0);  // build-up
  EXPECT_NEAR(on, ring_.peak_field_enhancement(), 0.02 * on);
  EXPECT_GT(on, ring_.field_enhancement(nu_res + 10 * lw, Polarization::TE) * 50);
}

TEST_F(MicroringFixture, LoadedQBelowIntrinsicQ) {
  EXPECT_LT(ring_.loaded_q(f0_, Polarization::TE),
            ring_.intrinsic_q(f0_, Polarization::TE));
}

TEST_F(MicroringFixture, ThermalShiftIsNegativeGHzPerKelvin) {
  const double shift = ring_.thermal_shift_hz_per_K(f0_, Polarization::TE);
  EXPECT_LT(shift, 0.0);
  EXPECT_GT(std::abs(shift), 0.1e9);
  EXPECT_LT(std::abs(shift), 10e9);
}

TEST(Microring, InvalidParamsThrow) {
  const Waveguide wg({1.5e-6, 1.5e-6}, hydex());
  EXPECT_THROW(MicroringResonator(wg, -1.0, 0.99, 0.99, 6.0), std::invalid_argument);
  EXPECT_THROW(MicroringResonator(wg, 1e-4, 1.2, 0.99, 6.0), std::invalid_argument);
  EXPECT_THROW(MicroringResonator(wg, 1e-4, 0.99, 0.99, -6.0), std::invalid_argument);
}

TEST(Microring, LorentzianAmplitudeHalfWidth) {
  const auto amp0 = MicroringResonator::lorentzian_amplitude(0.0, 100e6);
  EXPECT_NEAR(std::abs(amp0), 1.0, 1e-12);
  const auto amp_hw = MicroringResonator::lorentzian_amplitude(50e6, 100e6);
  EXPECT_NEAR(std::norm(amp_hw), 0.5, 1e-12);  // intensity half at half width
}

TEST(Microring, DesignCouplingHitsTargetLinewidth) {
  const Waveguide wg({1.5e-6, 1.5e-6}, hydex());
  const double radius = 135e-6;
  for (double target : {100e6, 800e6, 2e9}) {
    const double t = design_symmetric_coupling_for_linewidth(wg, radius, 6.0, target,
                                                             itu_anchor_hz);
    const MicroringResonator ring(wg, radius, t, t, 6.0);
    EXPECT_NEAR(ring.linewidth_hz(itu_anchor_hz, Polarization::TE), target,
                0.02 * target);
  }
}

TEST(Microring, DesignCouplingRejectsImpossibleTarget) {
  const Waveguide wg({1.5e-6, 1.5e-6}, hydex());
  // 1 kHz linewidth is far beyond the loss limit of 6 dB/m.
  EXPECT_THROW(design_symmetric_coupling_for_linewidth(wg, 135e-6, 6.0, 1e3,
                                                       itu_anchor_hz),
               qfc::NumericalError);
}

TEST(CombGrid, ChannelsAndPairsSymmetric) {
  const CombGrid grid(193.1e12, 200e9, 5);
  const auto p3 = grid.pair(3);
  EXPECT_EQ(p3.signal.offset, 3);
  EXPECT_EQ(p3.idler.offset, -3);
  EXPECT_NEAR(p3.signal.frequency_hz + p3.idler.frequency_hz, 2 * 193.1e12, 1.0);
  EXPECT_EQ(grid.channels().size(), 10u);
  EXPECT_EQ(grid.pairs().size(), 5u);
}

TEST(CombGrid, RejectsBadArguments) {
  EXPECT_THROW(CombGrid(193.1e12, 200e9, 0), std::invalid_argument);
  EXPECT_THROW(CombGrid(-1.0, 200e9, 3), std::invalid_argument);
  const CombGrid g(193.1e12, 200e9, 3);
  EXPECT_THROW(g.channel(0), std::invalid_argument);
  EXPECT_THROW(g.channel(4), std::out_of_range);
  EXPECT_THROW(g.pair(0), std::out_of_range);
}

TEST(CombGrid, ItuChannelNumber) {
  EXPECT_EQ(CombGrid::itu_channel_number(193.1e12), 31);
  EXPECT_EQ(CombGrid::itu_channel_number(190.0e12), 0);
}

TEST(CombGrid, WideGridStaysInTelecomBands) {
  // The paper's comb spans S, C and L with 200 GHz channels: ±14 channels
  // from 193.1 THz stays within [1460, 1625] nm.
  const CombGrid grid(193.1e12, 200e9, 14);
  EXPECT_TRUE(grid.covers_telecom_bands_only());
}

TEST(Pump, ValidationCatchesBadConfigs) {
  CwPump cw;
  cw.power_w = -1;
  cw.frequency_hz = 193e12;
  EXPECT_THROW(cw.validate(), std::invalid_argument);

  PulseTrain train;
  EXPECT_THROW(train.validate(), std::invalid_argument);

  DoublePulsePump dp;
  dp.train.repetition_rate_hz = 16.8e6;
  dp.train.pulse_fwhm_s = 1e-9;
  dp.train.average_power_w = 1e-3;
  dp.frequency_hz = 193e12;
  dp.bin_separation_s = 2e-9;  // < 4x pulse width: bins overlap
  EXPECT_THROW(dp.validate(), std::invalid_argument);
  dp.bin_separation_s = 5e-9;
  EXPECT_NO_THROW(dp.validate());
}

TEST(DevicePresets, HeraldedDeviceLinewidth) {
  const auto ring = heralded_source_device();
  const double lw = ring.linewidth_hz(itu_anchor_hz, Polarization::TE);
  EXPECT_NEAR(lw, 110e6, 5e6);
  EXPECT_NEAR(ring.fsr_hz(itu_anchor_hz, Polarization::TE), 200e9, 2e9);
}

TEST(DevicePresets, EntanglementDeviceQ) {
  const auto ring = entanglement_device();
  EXPECT_NEAR(ring.loaded_q(itu_anchor_hz, Polarization::TE), 235000, 10000);
}

TEST(DevicePresets, Type2DeviceHasBirefringentGrids) {
  const auto ring = type2_device();
  const double te = ring.nearest_resonance_hz(itu_anchor_hz, Polarization::TE);
  const double tm = ring.nearest_resonance_hz(te, Polarization::TM);
  // The TE and TM grids must be offset by much more than a linewidth.
  const double lw = ring.linewidth_hz(te, Polarization::TE);
  EXPECT_GT(std::abs(tm - te), 10 * lw);

  const auto square = type2_device_no_offset();
  const double te2 = square.nearest_resonance_hz(itu_anchor_hz, Polarization::TE);
  const double tm2 = square.nearest_resonance_hz(te2, Polarization::TM);
  EXPECT_LT(std::abs(tm2 - te2), lw * 0.1);
}

TEST(DevicePresets, PumpResonanceNearItuAnchor) {
  const auto ring = heralded_source_device();
  EXPECT_NEAR(pump_resonance_hz(ring), itu_anchor_hz, 100e9);
}

TEST(SelfLockedLoop, ModeSpacingAndDetuningBounds) {
  const SelfLockedLoop loop(10.0, 1.468);
  EXPECT_NEAR(loop.loop_fsr_hz(), 20.4e6, 0.3e6);
  // The lasing detuning is always within half a loop FSR, for any drift.
  for (double drift_hz : {0.0, 3e6, 47e6, 1.1e9, -5.5e9}) {
    const double det = loop.lasing_detuning_hz(193.1e12 + drift_hz);
    EXPECT_LE(std::abs(det), loop.max_detuning_hz() + 1.0) << "drift " << drift_hz;
  }
}

TEST(SelfLockedLoop, WorstCaseDipExplainsFivePercentClaim) {
  // 10 m loop + 110 MHz ring: even the worst loop-grid alignment keeps the
  // pair rate within ~7% of peak — the physical origin of the paper's
  // "< 5% fluctuation without active stabilization".
  const SelfLockedLoop loop(10.0, 1.468);
  const double dip = loop.worst_case_rate_dip(110e6);
  EXPECT_GT(dip, 0.90);
  EXPECT_LT(dip, 1.0);
  // A longer loop (denser modes) tracks even better.
  EXPECT_GT(SelfLockedLoop(100.0, 1.468).worst_case_rate_dip(110e6), dip);
  // A very short loop (sparse modes) fails to track a narrow ring.
  EXPECT_LT(SelfLockedLoop(0.5, 1.468).worst_case_rate_dip(110e6), 0.2);
}

TEST(SelfLockedLoop, RejectsBadParameters) {
  EXPECT_THROW(SelfLockedLoop(-1.0, 1.468), std::invalid_argument);
  EXPECT_THROW(SelfLockedLoop(10.0, 0.5), std::invalid_argument);
  const SelfLockedLoop loop;
  EXPECT_THROW(loop.lasing_detuning_hz(-1.0), std::invalid_argument);
  EXPECT_THROW(loop.worst_case_rate_dip(0.0), std::invalid_argument);
}

}  // namespace
