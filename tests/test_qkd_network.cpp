// Tests for the many-user QKD network façade: zero-leakage cross-talk
// parity with the single link, spec-level cross-talk injection, bitwise
// determinism of a 256-user run across analysis thread counts, degenerate
// networks, and config validation.

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/core/qkd_network.hpp"

namespace {

using namespace qfc;

class QkdNetworkFixture : public ::testing::Test {
 protected:
  QkdNetworkFixture()
      : comb_(core::QuantumFrequencyComb::for_configuration(
            core::PumpConfiguration::DoublePulse)),
        exp_(comb_.timebin_default()) {}

  core::QuantumFrequencyComb comb_;
  core::TimebinExperiment exp_;
};

void expect_reports_bitwise_equal(const core::QkdNetworkReport& a,
                                  const core::QkdNetworkReport& b) {
  ASSERT_EQ(a.users.size(), b.users.size());
  for (std::size_t u = 0; u < a.users.size(); ++u) {
    SCOPED_TRACE("user " + std::to_string(u));
    EXPECT_EQ(a.users[u].channel_pair, b.users[u].channel_pair);
    EXPECT_EQ(a.users[u].car.coincidences, b.users[u].car.coincidences);
    EXPECT_EQ(a.users[u].car.accidentals, b.users[u].car.accidentals);
    EXPECT_EQ(a.users[u].car.car, b.users[u].car.car);
    EXPECT_EQ(a.users[u].car.car_err, b.users[u].car.car_err);
    EXPECT_EQ(a.users[u].visibility, b.users[u].visibility);
    EXPECT_EQ(a.users[u].qber, b.users[u].qber);
    EXPECT_EQ(a.users[u].sifted_rate_hz, b.users[u].sifted_rate_hz);
    EXPECT_EQ(a.users[u].secret_key_rate_bps, b.users[u].secret_key_rate_bps);
  }
  EXPECT_EQ(a.total_key_rate_bps, b.total_key_rate_bps);
  EXPECT_TRUE((std::isnan(a.worst_qber) && std::isnan(b.worst_qber)) ||
              a.worst_qber == b.worst_qber);
  EXPECT_EQ(a.users_with_key, b.users_with_key);
  ASSERT_EQ(a.distance_histogram.size(), b.distance_histogram.size());
  for (std::size_t i = 0; i < a.distance_histogram.size(); ++i) {
    EXPECT_EQ(a.distance_histogram[i].users, b.distance_histogram[i].users);
    EXPECT_EQ(a.distance_histogram[i].total_key_rate_bps,
              b.distance_histogram[i].total_key_rate_bps);
    EXPECT_EQ(a.distance_histogram[i].mean_qber,
              b.distance_histogram[i].mean_qber);
  }
}

TEST_F(QkdNetworkFixture, ZeroLeakageSpecsMatchSingleLinkBitwise) {
  core::QkdNetworkConfig cfg;
  for (int k = 1; k <= 3; ++k) {
    core::QkdUserSpec user;
    user.channel_pair = k;
    user.link.distance_km = 10.0 * k;
    cfg.users.push_back(user);
  }
  const core::QkdNetwork net(exp_, cfg);
  const auto specs = net.engine_specs();
  ASSERT_EQ(specs.size(), 3u);
  for (int k = 1; k <= 3; ++k) {
    const auto u = static_cast<std::size_t>(k - 1);
    const auto plain = core::link_channel_spec(exp_, k, cfg.users[u].endpoint,
                                               cfg.users[u].link);
    EXPECT_EQ(specs[u].pair_rate_hz, plain.pair_rate_hz) << "k=" << k;
    EXPECT_EQ(specs[u].transmission_signal, plain.transmission_signal);
    EXPECT_EQ(specs[u].transmission_idler, plain.transmission_idler);
    // The cross-talk no-op leaves the background path bit-for-bit alone.
    EXPECT_EQ(specs[u].background_rate_signal_hz, plain.background_rate_signal_hz);
    EXPECT_EQ(specs[u].background_rate_idler_hz, plain.background_rate_idler_hz);
  }
}

TEST_F(QkdNetworkFixture, SingleUserNetworkMatchesLinkStreamCheckBitwise) {
  // User 0 on pair 1 is engine channel 0 in both runs, with an identical
  // spec and seed; a CAR cell depends only on its two columns, so the
  // network's one-user report must reproduce the link's k=1 check exactly.
  const double distance = 12.0, duration = 0.05;
  core::QkdUserSpec user;
  user.channel_pair = 1;
  user.link.distance_km = distance;
  core::QkdNetworkConfig cfg;
  cfg.users = {user};
  const core::QkdNetwork net(exp_, cfg);
  const auto report = net.run(duration);
  ASSERT_EQ(report.users.size(), 1u);

  const core::MultiplexedQkdLink link(exp_);
  const auto checks = link.stream_check(distance, duration);
  ASSERT_GE(checks.size(), 1u);
  EXPECT_EQ(checks[0].k, 1);
  EXPECT_EQ(report.users[0].car.coincidences, checks[0].car.coincidences);
  EXPECT_EQ(report.users[0].car.accidentals, checks[0].car.accidentals);
  EXPECT_EQ(report.users[0].car.car, checks[0].car.car);
  EXPECT_EQ(report.users[0].car.car_err, checks[0].car.car_err);
}

TEST_F(QkdNetworkFixture, CrosstalkRaisesBackgroundOfAdjacentBinsOnly) {
  core::QkdNetworkConfig cfg;
  for (int k : {1, 2, 4}) {  // bins 1-2 adjacent; bin 4 isolated
    core::QkdUserSpec user;
    user.channel_pair = k;
    user.link.distance_km = 5.0;
    user.crosstalk_leakage = 0.05;
    cfg.users.push_back(user);
  }
  const core::QkdNetwork net(exp_, cfg);
  const auto specs = net.engine_specs();

  core::QkdNetworkConfig clean = cfg;
  for (auto& user : clean.users) user.crosstalk_leakage = 0.0;
  const auto plain = core::QkdNetwork(exp_, clean).engine_specs();

  // Users on adjacent bins pick up leaked background; the isolated bin
  // (no |Δbin| == 1 neighbor in the network) is untouched.
  EXPECT_GT(specs[0].background_rate_signal_hz, plain[0].background_rate_signal_hz);
  EXPECT_GT(specs[0].background_rate_idler_hz, plain[0].background_rate_idler_hz);
  EXPECT_GT(specs[1].background_rate_signal_hz, plain[1].background_rate_signal_hz);
  EXPECT_EQ(specs[2].background_rate_signal_hz, plain[2].background_rate_signal_hz);
  EXPECT_EQ(specs[2].background_rate_idler_hz, plain[2].background_rate_idler_hz);

  // Leaked flux rides the receiving user's span: rate x leakage x t_arm.
  const double t_arm = cfg.users[0].link.arm_transmission();
  const double neighbor = detect::mean_pair_rate_hz(plain[1]);
  EXPECT_DOUBLE_EQ(
      specs[0].background_rate_signal_hz - plain[0].background_rate_signal_hz,
      0.05 * neighbor * t_arm);
}

TEST_F(QkdNetworkFixture, TwoHundredFiftySixUsersDeterministicAcrossThreads) {
  core::QkdNetworkConfig cfg = core::QkdNetworkConfig::uniform(
      /*num_users=*/256, /*max_distance_km=*/100.0);
  cfg.stream_window_s = 0.004;
  for (auto& user : cfg.users) user.crosstalk_leakage = 0.01;

  core::QkdNetworkReport reports[3];
  const int threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    cfg.analysis_threads = threads[i];
    const core::QkdNetwork net(exp_, cfg);
    reports[i] = net.run(/*duration_s=*/0.01);
    ASSERT_EQ(reports[i].users.size(), 256u);
  }
  expect_reports_bitwise_equal(reports[0], reports[1]);
  expect_reports_bitwise_equal(reports[0], reports[2]);

  // Round-robin auto-assignment over the experiment's pairs.
  const core::QkdNetwork net(exp_, cfg);
  const int num_pairs = exp_.config().num_channel_pairs;
  for (std::size_t u = 0; u < 256; ++u)
    EXPECT_EQ(net.assigned_channel_pair(u),
              static_cast<int>(u % static_cast<std::size_t>(num_pairs)) + 1);

  // Sanity on the aggregates: the near users distill key, the histogram
  // covers [0, 100] km, and every user is binned exactly once.
  EXPECT_GT(reports[0].users_with_key, 0u);
  EXPECT_GT(reports[0].total_key_rate_bps, 0.0);
  EXPECT_FALSE(std::isnan(reports[0].worst_qber));
  std::size_t binned = 0;
  for (const auto& bin : reports[0].distance_histogram) binned += bin.users;
  EXPECT_EQ(binned, 256u);
}

TEST_F(QkdNetworkFixture, EmptyAndSingleUserDegenerateNetworks) {
  const core::QkdNetwork empty(exp_, core::QkdNetworkConfig{});
  EXPECT_EQ(empty.num_users(), 0u);
  const auto report = empty.run(0.01);
  EXPECT_TRUE(report.users.empty());
  EXPECT_TRUE(std::isnan(report.worst_qber));
  EXPECT_EQ(report.total_key_rate_bps, 0.0);
  EXPECT_TRUE(report.distance_histogram.empty());
  EXPECT_EQ(report.stream_windows, 0u);

  core::QkdNetworkConfig one = core::QkdNetworkConfig::uniform(1, 50.0);
  const core::QkdNetwork single(exp_, one);
  EXPECT_EQ(single.num_users(), 1u);
  EXPECT_DOUBLE_EQ(one.users[0].link.distance_km, 0.0);  // lone user sits at 0
  const auto r = single.run(0.02);
  ASSERT_EQ(r.users.size(), 1u);
  EXPECT_EQ(r.users[0].channel_pair, 1);
  EXPECT_TRUE(r.users[0].key_positive);
  EXPECT_EQ(r.users_with_key, 1u);
  EXPECT_EQ(r.total_key_rate_bps, r.users[0].secret_key_rate_bps);
}

TEST_F(QkdNetworkFixture, ValidationNamesTheOffendingUser) {
  core::QkdNetworkConfig cfg = core::QkdNetworkConfig::uniform(3, 30.0);
  cfg.users[1].endpoint.dark_rate_hz = -5.0;
  try {
    const core::QkdNetwork net(exp_, cfg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("user 1"), std::string::npos)
        << e.what();
  }

  cfg = core::QkdNetworkConfig::uniform(2, 30.0);
  cfg.users[1].channel_pair = exp_.config().num_channel_pairs + 1;
  EXPECT_THROW(core::QkdNetwork(exp_, cfg), std::invalid_argument);

  cfg = core::QkdNetworkConfig::uniform(2, 30.0);
  cfg.users[1].endpoint.coincidence_window_s = 2e-9;  // differs from user 0
  EXPECT_THROW(core::QkdNetwork(exp_, cfg), std::invalid_argument);

  cfg = core::QkdNetworkConfig::uniform(2, 30.0);
  cfg.users[0].crosstalk_leakage = 1.5;
  EXPECT_THROW(core::QkdNetwork(exp_, cfg), std::invalid_argument);

  cfg = core::QkdNetworkConfig::uniform(2, 30.0);
  cfg.stream_window_s = 0.0;
  EXPECT_THROW(core::QkdNetwork(exp_, cfg), std::invalid_argument);

  const core::QkdNetwork ok(exp_, core::QkdNetworkConfig::uniform(2, 30.0));
  EXPECT_THROW(ok.run(0.0), std::invalid_argument);
  EXPECT_THROW(ok.assigned_channel_pair(2), std::out_of_range);
}

}  // namespace
