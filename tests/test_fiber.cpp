// Tests for the fiber distribution substrate.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/fiber/fiber_channel.hpp"

namespace {

using qfc::fiber::FiberChannel;
using qfc::fiber::FiberParams;

FiberChannel span(double km) {
  FiberParams p;
  p.length_m = km * 1000;
  return FiberChannel(p);
}

TEST(Fiber, TransmissionFollowsAttenuation) {
  // 0.2 dB/km: 50 km -> 10 dB -> 10% transmission.
  EXPECT_NEAR(span(50).transmission(), 0.1, 1e-12);
  EXPECT_NEAR(span(0).transmission(), 1.0, 1e-12);
  EXPECT_NEAR(span(100).transmission(), 0.01, 1e-12);
}

TEST(Fiber, TransmissionMultiplies) {
  EXPECT_NEAR(qfc::fiber::pair_rate_scaling(span(25), span(25)),
              span(50).transmission(), 1e-12);
}

TEST(Fiber, ChannelSkewScalesWithSeparationAndLength) {
  // D = 17 ps/(nm km): 1 nm over 100 km -> 1.7 ns.
  const double skew = span(100).channel_skew_s(1551e-9, 1550e-9);
  EXPECT_NEAR(skew, 1.7e-9, 0.01e-9);
  // Antisymmetric in the arguments.
  EXPECT_NEAR(span(100).channel_skew_s(1550e-9, 1551e-9), -skew, 1e-15);
}

TEST(Fiber, NarrowbandPhotonBroadeningIsTiny) {
  // 110 MHz photon at 1550 nm: Δλ ≈ 0.88 fm -> sub-ps spread even at 100 km.
  const double dt = span(100).pulse_broadening_s(1550e-9, 110e6);
  EXPECT_LT(dt, 5e-12);
  EXPECT_GT(dt, 1e-15);
}

TEST(Fiber, TimebinVisibilityFactorNearUnityForCombPhotons) {
  const double f = span(100).timebin_visibility_factor(1550e-9, 800e6, 3e-9);
  EXPECT_GT(f, 0.999);
  // A hypothetical 1 THz-wide photon would smear across the bins.
  const double broad = span(100).timebin_visibility_factor(1550e-9, 1e12, 3e-9);
  EXPECT_LT(broad, 0.1);
}

TEST(Fiber, MonotoneDegradationWithLength) {
  double prev = 1.0;
  for (double km : {10.0, 50.0, 100.0, 200.0}) {
    const double t = span(km).transmission();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Fiber, RejectsNegativeLength) {
  FiberParams p;
  p.length_m = -1;
  EXPECT_THROW(FiberChannel{p}, std::invalid_argument);
}

}  // namespace
