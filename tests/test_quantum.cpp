// Tests for the quantum-information substrate (S4): states, Paulis, Bell
// states, entanglement measures, Fock statistics.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/fock.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/quantum/state.hpp"

namespace {

using qfc::linalg::cplx;
using qfc::linalg::CMat;
using qfc::linalg::CVec;
using namespace qfc::quantum;

TEST(StateVector, DefaultIsGroundState) {
  const StateVector psi(2);
  EXPECT_EQ(psi.dim(), 4u);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-15);
  EXPECT_NEAR(psi.probability(3), 0.0, 1e-15);
}

TEST(StateVector, NormalizesInput) {
  const StateVector psi(CVec{cplx(3, 0), cplx(4, 0)});
  EXPECT_NEAR(psi.probability(0), 9.0 / 25.0, 1e-12);
  EXPECT_NEAR(psi.probability(1), 16.0 / 25.0, 1e-12);
}

TEST(StateVector, RejectsBadDimensions) {
  EXPECT_THROW(StateVector(CVec(3, cplx(1, 0))), std::invalid_argument);
  EXPECT_THROW(StateVector(CVec(4, cplx(0, 0))), std::invalid_argument);  // zero vec
  EXPECT_THROW(StateVector(0), std::invalid_argument);
}

TEST(StateVector, TensorStructure) {
  const StateVector zero(1);
  const StateVector one(CVec{cplx(0, 0), cplx(1, 0)});
  const StateVector z1 = zero.tensor(one);  // |01>
  EXPECT_NEAR(z1.probability(1), 1.0, 1e-15);
}

TEST(StateVector, ApplySingleQubitOnEachPosition) {
  // X on qubit 0 of |00> -> |10>; X on qubit 1 -> |01>.
  const StateVector psi(2);
  EXPECT_NEAR(psi.apply_single(pauli_x(), 0).probability(2), 1.0, 1e-12);
  EXPECT_NEAR(psi.apply_single(pauli_x(), 1).probability(1), 1.0, 1e-12);
  EXPECT_THROW(psi.apply_single(pauli_x(), 2), std::out_of_range);
}

TEST(StateVector, HadamardMakesUniform) {
  StateVector psi(1);
  psi = psi.apply_single(hadamard(), 0);
  EXPECT_NEAR(psi.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(psi.probability(1), 0.5, 1e-12);
}

TEST(StateVector, OverlapOfBellPair) {
  const StateVector phi0 = bell_phi(0.0);
  const StateVector phi_pi = bell_phi(3.14159265358979);
  EXPECT_NEAR(phi0.overlap_probability(phi0), 1.0, 1e-12);
  EXPECT_NEAR(phi0.overlap_probability(phi_pi), 0.0, 1e-12);
}

TEST(Pauli, AlgebraRelations) {
  // X² = I, XY = iZ, anticommutation.
  EXPECT_LT((pauli_x() * pauli_x() - pauli_i()).max_abs(), 1e-15);
  CMat iz = pauli_z();
  iz *= cplx(0, 1);
  EXPECT_LT((pauli_x() * pauli_y() - iz).max_abs(), 1e-15);
  const CMat anti = pauli_x() * pauli_z() + pauli_z() * pauli_x();
  EXPECT_LT(anti.max_abs(), 1e-15);
}

TEST(Pauli, StringBuildsKron) {
  const CMat xz = pauli_string("XZ");
  EXPECT_LT((xz - qfc::linalg::kron(pauli_x(), pauli_z())).max_abs(), 1e-15);
  EXPECT_THROW(pauli_string("XQ"), std::invalid_argument);
  EXPECT_THROW(pauli_string(""), std::invalid_argument);
}

TEST(Pauli, RotationsAreUnitary) {
  for (double th : {0.1, 1.0, 2.5}) {
    EXPECT_TRUE(qfc::linalg::is_unitary(rotation_x(th)));
    EXPECT_TRUE(qfc::linalg::is_unitary(rotation_y(th)));
    EXPECT_TRUE(qfc::linalg::is_unitary(rotation_z(th)));
  }
}

TEST(Pauli, XyObservableEigenstates) {
  for (double phi : {0.0, 0.7, 2.0}) {
    const CMat a = xy_observable(phi);
    for (int sign : {+1, -1}) {
      const CVec v = xy_eigenstate(phi, sign);
      const CVec av = a * v;
      for (std::size_t i = 0; i < 2; ++i)
        EXPECT_NEAR(std::abs(av[i] - static_cast<double>(sign) * v[i]), 0.0, 1e-12);
    }
  }
}

TEST(DensityMatrix, PureStateProperties) {
  const DensityMatrix rho{bell_phi()};
  EXPECT_NEAR(purity(rho), 1.0, 1e-12);
  EXPECT_NEAR(von_neumann_entropy_bits(rho), 0.0, 1e-9);
}

TEST(DensityMatrix, MaximallyMixed) {
  const DensityMatrix rho(2);
  EXPECT_NEAR(purity(rho), 0.25, 1e-12);
  EXPECT_NEAR(von_neumann_entropy_bits(rho), 2.0, 1e-9);
}

TEST(DensityMatrix, ValidatesInput) {
  CMat bad = CMat::identity(4);  // trace 4
  EXPECT_THROW(DensityMatrix{bad}, std::invalid_argument);
  CMat nonherm(2, 2);
  nonherm(0, 0) = cplx(1, 0);
  nonherm(0, 1) = cplx(0.5, 0);
  EXPECT_THROW(DensityMatrix{nonherm}, std::invalid_argument);
}

TEST(DensityMatrix, PartialTraceOfBellIsMixed) {
  const DensityMatrix rho{bell_phi()};
  const DensityMatrix reduced = rho.partial_trace_keep({0});
  EXPECT_EQ(reduced.dim(), 2u);
  EXPECT_NEAR(purity(reduced), 0.5, 1e-12);  // maximally mixed qubit
  EXPECT_NEAR(std::real(reduced.matrix()(0, 0)), 0.5, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfProductRecoversFactors) {
  const DensityMatrix a{StateVector(CVec{cplx(0.6, 0), cplx(0.8, 0)})};
  const DensityMatrix b{StateVector(CVec{cplx(1, 0), cplx(0, 0)})};
  const DensityMatrix ab = a.tensor(b);
  const DensityMatrix ra = ab.partial_trace_keep({0});
  EXPECT_LT((ra.matrix() - a.matrix()).max_abs(), 1e-12);
  const DensityMatrix rb = ab.partial_trace_keep({1});
  EXPECT_LT((rb.matrix() - b.matrix()).max_abs(), 1e-12);
}

TEST(DensityMatrix, MixInterpolatesLinearly) {
  const DensityMatrix pure{bell_phi()};
  const DensityMatrix mixed(2);
  const DensityMatrix half = pure.mix(mixed, 0.5);
  EXPECT_NEAR(std::real(half.matrix()(0, 0)), 0.5 * 0.5 + 0.5 * 0.25, 1e-12);
  EXPECT_THROW(pure.mix(mixed, 1.5), std::invalid_argument);
}

TEST(Measures, FidelityBasicProperties) {
  const DensityMatrix bell{bell_phi()};
  const DensityMatrix mixed(2);
  EXPECT_NEAR(fidelity(bell, bell), 1.0, 1e-9);
  EXPECT_NEAR(fidelity(bell, mixed), 0.25, 1e-9);
  EXPECT_NEAR(fidelity(bell, bell_phi()), 1.0, 1e-9);
}

TEST(Measures, FidelitySymmetric) {
  const DensityMatrix a = werner_phi(0.8);
  const DensityMatrix b = werner_phi(0.3);
  EXPECT_NEAR(fidelity(a, b), fidelity(b, a), 1e-9);
}

TEST(Measures, WernerFidelityClosedForm) {
  // F(Werner(V), Phi) = (1 + 3V)/4.
  for (double v : {0.0, 0.25, 0.5, 0.83, 1.0}) {
    const DensityMatrix w = werner_phi(v);
    EXPECT_NEAR(fidelity(w, bell_phi()), (1 + 3 * v) / 4, 1e-9) << "V=" << v;
  }
}

TEST(Measures, TraceDistanceBounds) {
  const DensityMatrix bell{bell_phi()};
  const DensityMatrix mixed(2);
  const double d = trace_distance(bell, mixed);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
  EXPECT_NEAR(trace_distance(bell, bell), 0.0, 1e-10);
}

TEST(Measures, ConcurrenceOfWernerStates) {
  // C(Werner V) = max(0, (3V − 1)/2).
  for (double v : {0.0, 0.2, 1.0 / 3.0, 0.5, 0.83, 1.0}) {
    const double expected = std::max(0.0, (3 * v - 1) / 2);
    EXPECT_NEAR(concurrence(werner_phi(v)), expected, 1e-6) << "V=" << v;
  }
}

TEST(Measures, NegativityDetectsEntanglement) {
  EXPECT_NEAR(negativity(DensityMatrix{bell_phi()}, 1), 0.5, 1e-9);
  EXPECT_NEAR(negativity(DensityMatrix(2), 1), 0.0, 1e-10);
  // Werner separability threshold V = 1/3.
  EXPECT_NEAR(negativity(werner_phi(1.0 / 3.0), 1), 0.0, 1e-8);
  EXPECT_GT(negativity(werner_phi(0.5), 1), 0.01);
}

TEST(Measures, SchmidtCoefficientsOfBell) {
  const auto coeffs = schmidt_coefficients(bell_phi(), 1);
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_NEAR(coeffs[0], 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(coeffs[1], 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Measures, SchmidtOfProductStateIsRankOne) {
  const StateVector prod = StateVector(1).tensor(StateVector(1));
  const auto coeffs = schmidt_coefficients(prod, 1);
  EXPECT_NEAR(coeffs[0], 1.0, 1e-12);
  EXPECT_NEAR(coeffs[1], 0.0, 1e-12);
}

TEST(Measures, MatrixLevelOverloadsHandleNonPowerOfTwoDims) {
  // The matrix-level overloads back the qudit layer: a maximally entangled
  // qutrit pair is a 9x9 density matrix no qubit register can represent.
  const std::size_t d = 3;
  CVec amps(d * d, cplx(0, 0));
  for (std::size_t k = 0; k < d; ++k) amps[k * d + k] = cplx(1, 0);
  qfc::linalg::vnormalize(amps);
  const CMat rho = qfc::linalg::outer(amps, amps);

  EXPECT_NEAR(purity(rho), 1.0, 1e-12);
  EXPECT_NEAR(fidelity(rho, amps), 1.0, 1e-12);
  EXPECT_NEAR(negativity(rho, d, d), (static_cast<double>(d) - 1) / 2, 1e-9);
  const auto lambda = schmidt_coefficients(amps, d, d);
  ASSERT_EQ(lambda.size(), d);
  for (double l : lambda) EXPECT_NEAR(l, 1.0 / std::sqrt(3.0), 1e-12);

  CMat mixed = CMat::identity(d * d);
  mixed *= cplx(1.0 / 9.0, 0);
  EXPECT_NEAR(von_neumann_entropy_bits(mixed), 2 * std::log2(3.0), 1e-9);
  EXPECT_NEAR(negativity(mixed, d, d), 0.0, 1e-10);
  EXPECT_NEAR(trace_distance(rho, rho), 0.0, 1e-10);
  EXPECT_NEAR(fidelity(rho, mixed), 1.0 / 9.0, 1e-9);
}

TEST(Measures, MatrixLevelValidation) {
  const CMat rho = CMat::identity(6) * cplx(1.0 / 6.0, 0);
  EXPECT_THROW(negativity(rho, 4, 2), std::invalid_argument);  // 4*2 != 6
  EXPECT_THROW(schmidt_coefficients(CVec(6, cplx(1, 0)), 5, 2), std::invalid_argument);
  EXPECT_NEAR(negativity(rho, 2, 3), 0.0, 1e-10);
}

TEST(Bell, ProductStateHasPerPairStructure) {
  const StateVector four = bell_product(2);
  EXPECT_EQ(four.num_qubits(), 4u);
  // Amplitudes only on |0000>, |0011>, |1100>, |1111>.
  EXPECT_NEAR(four.probability(0b0000), 0.25, 1e-12);
  EXPECT_NEAR(four.probability(0b0011), 0.25, 1e-12);
  EXPECT_NEAR(four.probability(0b1100), 0.25, 1e-12);
  EXPECT_NEAR(four.probability(0b1111), 0.25, 1e-12);
  EXPECT_NEAR(four.probability(0b0101), 0.0, 1e-12);
}

TEST(Bell, IsotropicNoiseFidelity) {
  const StateVector target = bell_product(2);
  const DensityMatrix noisy = isotropic_noise(target, 0.6);
  EXPECT_NEAR(fidelity(noisy, target), 0.6 + 0.4 / 16.0, 1e-9);
}

TEST(Fock, OperatorsSatisfyCommutator) {
  const std::size_t dim = 12;
  const CMat a = annihilation_matrix(dim);
  const CMat ad = creation_matrix(dim);
  const CMat comm = a * ad - ad * a;
  // [a, a†] = 1 except the truncation corner.
  for (std::size_t i = 0; i + 1 < dim; ++i)
    EXPECT_NEAR(std::real(comm(i, i)), 1.0, 1e-12);
  const CMat n = number_matrix(dim);
  EXPECT_LT((ad * a - n).max_abs(), 1e-12);
}

TEST(Fock, ThermalStatisticsNormalized) {
  const TwoModeSqueezedVacuum tmsv(0.3);
  double total = 0;
  for (std::size_t n = 0; n < 200; ++n) total += tmsv.pair_number_probability(n);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(tmsv.pair_number_probability(0), 1 / 1.3, 1e-12);
}

TEST(Fock, SqueezingParameterRoundTrip) {
  const double mu = 0.42;
  const TwoModeSqueezedVacuum tmsv(mu);
  const double r = tmsv.squeezing_parameter_r();
  EXPECT_NEAR(std::sinh(r) * std::sinh(r), mu, 1e-12);
}

TEST(Fock, HeraldedG2VanishesAtLowMu) {
  const TwoModeSqueezedVacuum low(1e-4);
  EXPECT_LT(low.heralded_g2(0.5), 1e-3);
  const TwoModeSqueezedVacuum zero(0.0);
  EXPECT_DOUBLE_EQ(zero.heralded_g2(0.5), 0.0);
}

TEST(Fock, HeraldedG2GrowsWithMu) {
  const double g2_small = TwoModeSqueezedVacuum(0.01).heralded_g2(0.3);
  const double g2_large = TwoModeSqueezedVacuum(0.5).heralded_g2(0.3);
  EXPECT_GT(g2_large, g2_small);
  // Small-mu expansion: g2 ≈ 4μ (bucket detector, low efficiency).
  EXPECT_NEAR(g2_small, 4 * 0.01, 0.01);
}

TEST(Fock, StatisticalCarLimit) {
  EXPECT_NEAR(TwoModeSqueezedVacuum(0.1).statistical_car_limit(), 11.0, 1e-9);
  EXPECT_TRUE(std::isinf(TwoModeSqueezedVacuum(0.0).statistical_car_limit()));
}

TEST(Fock, MultiPairFractionMonotoneInMu) {
  double prev = 0;
  for (double mu : {0.01, 0.05, 0.2, 0.8}) {
    const double f = TwoModeSqueezedVacuum(mu).multi_pair_fraction(0.2);
    EXPECT_GT(f, prev);
    prev = f;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Fock, InvalidArgumentsThrow) {
  EXPECT_THROW(TwoModeSqueezedVacuum(-0.1), std::invalid_argument);
  EXPECT_THROW(TwoModeSqueezedVacuum(0.1).heralded_g2(0.0), std::invalid_argument);
  EXPECT_THROW(annihilation_matrix(1), std::invalid_argument);
}

// ------------------------------------------------------ batch sweep seams

TEST(MeasuresBatch, MatchScalarMetricsBitwise) {
  // The batch variants route the spectral work through linalg's batch entry
  // points, which are bitwise identical to the per-matrix calls — so the
  // derived metrics must be exactly equal, not just close.
  std::vector<CMat> rhos;
  for (double v : {1.0, 0.8, 0.5, 0.2, 0.0})
    rhos.push_back(werner_phi(v).matrix());

  const auto entropies = von_neumann_entropy_bits_batch(rhos);
  const auto negs = negativity_batch(rhos, 2, 2);
  ASSERT_EQ(entropies.size(), rhos.size());
  ASSERT_EQ(negs.size(), rhos.size());
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    EXPECT_EQ(entropies[i], von_neumann_entropy_bits(rhos[i])) << "i=" << i;
    EXPECT_EQ(negs[i], negativity(rhos[i], 2, 2)) << "i=" << i;
  }

  const std::vector<CVec> amps = {bell_phi().amplitudes(), bell_psi().amplitudes()};
  const auto schmidt = schmidt_coefficients_batch(amps, 2, 2);
  ASSERT_EQ(schmidt.size(), amps.size());
  for (std::size_t i = 0; i < amps.size(); ++i)
    EXPECT_EQ(schmidt[i], schmidt_coefficients(amps[i], 2, 2)) << "i=" << i;

  EXPECT_TRUE(von_neumann_entropy_bits_batch({}).empty());
  std::vector<CVec> bad = {CVec(5)};
  EXPECT_THROW(schmidt_coefficients_batch(bad, 2, 2), std::invalid_argument);
}

}  // namespace
