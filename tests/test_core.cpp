// Tests for the core experiment layer (S9): channel model, heralded,
// type-II, time-bin, four-photon, stability, façade.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/photonics/device_presets.hpp"

namespace {

using namespace qfc;
using core::QuantumFrequencyComb;

TEST(ChannelModel, DeterministicAndInRange) {
  core::ChannelModel m;
  const auto c1 = m.chain(1, 0);
  const auto c1again = m.chain(1, 0);
  EXPECT_DOUBLE_EQ(c1.transmission, c1again.transmission);
  for (int k = 1; k <= 8; ++k) {
    for (int arm : {0, 1}) {
      const auto c = m.chain(k, arm);
      EXPECT_GT(c.transmission, 0.5);
      EXPECT_LE(c.transmission, 1.0);
      EXPECT_GT(c.detector.dark_rate_hz, 0.0);
    }
  }
  EXPECT_THROW(m.chain(0, 0), std::invalid_argument);
  EXPECT_THROW(m.chain(1, 2), std::invalid_argument);
}

TEST(ChannelModel, ChannelsDiffer) {
  core::ChannelModel m;
  EXPECT_NE(m.chain(1, 0).transmission, m.chain(2, 0).transmission);
  EXPECT_NE(m.chain(1, 0).transmission, m.chain(1, 1).transmission);
}

class HeraldedFixture : public ::testing::Test {
 protected:
  HeraldedFixture()
      : comb_(QuantumFrequencyComb::for_configuration(
            core::PumpConfiguration::SelfLockedCw)) {}

  core::HeraldedConfig fast_config() const {
    core::HeraldedConfig cfg;
    cfg.duration_s = 10.0;  // short but statistically sufficient
    cfg.num_channel_pairs = 3;
    return cfg;
  }

  QuantumFrequencyComb comb_;
};

TEST_F(HeraldedFixture, DiagonalCellsCorrelatedOffDiagonalNot) {
  auto exp = comb_.heralded(fast_config());
  const auto cells = exp.run_coincidence_matrix();
  ASSERT_EQ(cells.size(), 9u);
  for (const auto& c : cells) {
    if (c.signal_k == c.idler_k) {
      EXPECT_GT(c.car.car, 5.0) << "diagonal " << c.signal_k;
    } else {
      EXPECT_LT(c.car.car, 2.5) << "off-diagonal " << c.signal_k << "," << c.idler_k;
    }
  }
}

TEST_F(HeraldedFixture, ChannelTableInPaperRanges) {
  auto exp = comb_.heralded(fast_config());
  const auto table = exp.run_channel_table();
  ASSERT_EQ(table.size(), 3u);
  for (const auto& r : table) {
    // Loose bands (short run): rates O(10 Hz), CAR O(10).
    EXPECT_GT(r.coincidence_rate_hz, 5.0) << "k=" << r.k;
    EXPECT_LT(r.coincidence_rate_hz, 60.0) << "k=" << r.k;
    EXPECT_GT(r.car, 5.0) << "k=" << r.k;
    EXPECT_LT(r.car, 80.0) << "k=" << r.k;
    EXPECT_GT(r.singles_signal_hz, 1000.0);
  }
}

TEST_F(HeraldedFixture, CoherenceMeasurementNearRingLinewidth) {
  auto exp = comb_.heralded(fast_config());
  const auto res = exp.run_coherence_measurement(1, 60.0);
  // Ring linewidth 100 MHz; measured (jitter-broadened fit) should be in
  // the 80-150 MHz window, and the deconvolved value closer to the ring's.
  EXPECT_NEAR(res.ring_linewidth_hz, 110e6, 5e6);
  EXPECT_GT(res.measured_linewidth_hz, 70e6);
  EXPECT_LT(res.measured_linewidth_hz, 160e6);
  EXPECT_GT(res.fitted_tau_s, 0.5e-9);
}

TEST_F(HeraldedFixture, InvalidConfigThrows) {
  core::HeraldedConfig cfg;
  cfg.duration_s = -1;
  EXPECT_THROW(comb_.heralded(cfg), std::invalid_argument);
  auto exp = comb_.heralded(fast_config());
  EXPECT_THROW(exp.run_coherence_measurement(99, 1.0), std::out_of_range);
}

TEST(Type2ExperimentTest, CarAroundTenAtTwoMilliwatt) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  core::Type2Config cfg;
  cfg.duration_s = 60.0;
  auto exp = comb.type2(cfg);
  const auto r = exp.run_car_measurement();
  EXPECT_GT(r.car.car, 4.0);
  EXPECT_LT(r.car.car, 30.0);
}

TEST(Type2ExperimentTest, OpoThresholdAndScaling) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  auto exp = comb.type2({});
  EXPECT_NEAR(exp.opo_threshold_w(), 14e-3, 5e-3);

  const auto curve = exp.run_opo_curve(30e-3, 30);
  ASSERT_EQ(curve.size(), 30u);
  // Monotone increasing output.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].output_w, curve[i - 1].output_w);
  // Above-threshold points flagged.
  EXPECT_TRUE(curve.back().oscillating);
  EXPECT_FALSE(curve.front().oscillating);
}

TEST(Type2ExperimentTest, StimulatedSuppressionLarge) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  auto exp = comb.type2({});
  EXPECT_GT(exp.stimulated_suppression_db(), 20.0);
}

TEST(TimebinExperimentTest, VisibilityAndChshOnAllChannels) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto results = exp.run_all_channels();
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_GT(r.fringe_fit.visibility, 0.70) << "k=" << r.k;
    EXPECT_LT(r.fringe_fit.visibility, 0.95) << "k=" << r.k;
    EXPECT_NEAR(r.fringe_fit.visibility, r.predicted_visibility, 0.08) << "k=" << r.k;
    EXPECT_GT(r.chsh.s, 2.0) << "k=" << r.k;  // all channels violate CHSH
    EXPECT_LE(r.chsh.s, 2.0 * std::sqrt(2.0) + 0.05) << "k=" << r.k;
  }
}

TEST(TimebinExperimentTest, MuIsInMultiPairRegimeButSmall) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  for (int k = 1; k <= 5; ++k) {
    const auto m = exp.noise_model(k);
    EXPECT_GT(m.mean_pairs_per_double_pulse, 1e-3) << "k=" << k;
    EXPECT_LT(m.mean_pairs_per_double_pulse, 0.5) << "k=" << k;
  }
}

TEST(FourPhotonExperimentTest, VisibilityAndFidelityNearPaper) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  core::FourPhotonConfig cfg;
  cfg.tomo_shots_per_setting = 150;  // keep the test fast
  auto exp = comb.four_photon(cfg);
  const auto r = exp.run();

  // Four-photon interference: ~89% raw visibility.
  EXPECT_GT(r.analytic_visibility, 0.84);
  EXPECT_LT(r.analytic_visibility, 0.94);

  // Bell fidelities high, four-photon tomographic fidelity near 64%.
  EXPECT_GT(r.bell_fidelity_a, 0.75);
  EXPECT_GT(r.bell_fidelity_b, 0.75);
  EXPECT_GT(r.four_photon_fidelity, 0.5);
  EXPECT_LT(r.four_photon_fidelity, 0.85);
}

TEST(FourPhotonExperimentTest, TrueStateIsProductOfPairs) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  auto exp = comb.four_photon({});
  const auto rho4 = exp.true_state();
  EXPECT_EQ(rho4.num_qubits(), 4u);
  // Reduced state of qubits {0,1} equals the pair state.
  // The two pairs sit on different channel pairs, so their μ (and thus
  // purity) differ slightly through the phase-matching envelope.
  const auto reduced = rho4.partial_trace_keep({0, 1});
  EXPECT_NEAR(quantum::purity(reduced), quantum::purity(rho4.partial_trace_keep({2, 3})),
              1e-3);
}

TEST(FourPhotonExperimentTest, RejectsSamePair) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  core::FourPhotonConfig cfg;
  cfg.pair_a = 1;
  cfg.pair_b = 1;
  EXPECT_THROW(comb.four_photon(cfg), std::invalid_argument);
}

TEST(StabilityExperimentTest, SelfLockedBeatsExternal) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 7.0;  // one week is enough for the statistics
  auto exp = comb.stability(cfg);
  const auto cmp = exp.run();

  // Paper: < 5% fluctuation for the self-locked scheme, "several weeks".
  EXPECT_LT(cmp.self_locked.rms_fluctuation_percent, 5.0);
  EXPECT_GT(cmp.external.rms_fluctuation_percent,
            5.0 * cmp.self_locked.rms_fluctuation_percent);
  EXPECT_NEAR(cmp.self_locked.mean, 1.0, 0.05);
  EXPECT_LT(cmp.external.mean, 0.9);
}

TEST(StabilityExperimentTest, DetuningCurveIsLorentzianSquared) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  auto exp = comb.stability({});
  const double lw = comb.device().linewidth_hz(photonics::itu_anchor_hz,
                                               photonics::Polarization::TE);
  EXPECT_NEAR(exp.relative_rate_at_detuning(0.0), 1.0, 1e-12);
  EXPECT_NEAR(exp.relative_rate_at_detuning(lw / 2), 0.25, 1e-9);
  EXPECT_LT(exp.relative_rate_at_detuning(5 * lw), 0.001);
}

TEST(Facade, ConfigurationsMapToDevices) {
  using core::PumpConfiguration;
  const auto heralded =
      QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
  const auto type2 =
      QuantumFrequencyComb::for_configuration(PumpConfiguration::CrossPolarized);
  const auto timebin =
      QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);

  const double lw_h = heralded.device().linewidth_hz(photonics::itu_anchor_hz,
                                                     photonics::Polarization::TE);
  const double lw_t = type2.device().linewidth_hz(photonics::itu_anchor_hz,
                                                  photonics::Polarization::TE);
  const double lw_e = timebin.device().linewidth_hz(photonics::itu_anchor_hz,
                                                    photonics::Polarization::TE);
  EXPECT_NEAR(lw_h, 110e6, 10e6);
  EXPECT_NEAR(lw_t, 80e6, 10e6);
  EXPECT_NEAR(lw_e, 820e6, 60e6);

  EXPECT_STREQ(core::pump_configuration_name(PumpConfiguration::SelfLockedCw),
               "self-locked CW (heralded photons)");
}

TEST(Facade, GridFromDevice) {
  const auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  const auto grid = comb.grid(5);
  EXPECT_EQ(grid.num_pairs(), 5);
  EXPECT_NEAR(grid.spacing_hz(), 200e9, 5e9);
}

}  // namespace
