// Tests for the entanglement-witness toolbox, the three-peak arrival-time
// histogram MC, and the pump-rejection budget model.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/core/channel_model.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/quantum/witness.hpp"
#include "qfc/timebin/arrival_histogram.hpp"
#include "qfc/timebin/timebin_state.hpp"

namespace {

using namespace qfc;
using quantum::bell_phi;
using quantum::DensityMatrix;
using quantum::werner_phi;

// ---------------------------------------------------------- witnesses

TEST(Witness, NegativeOnBellZeroBoundaryOnSeparable) {
  EXPECT_NEAR(quantum::bell_witness_value(DensityMatrix{bell_phi()}), -0.5, 1e-9);
  // Maximally mixed: 1/2 - 1/4 = +1/4.
  EXPECT_NEAR(quantum::bell_witness_value(DensityMatrix(2)), 0.25, 1e-9);
}

class WitnessWernerSweep : public ::testing::TestWithParam<double> {};

TEST_P(WitnessWernerSweep, SignFlipsAtOneThird) {
  const double v = GetParam();
  const double w = quantum::bell_witness_value(werner_phi(v));
  EXPECT_NEAR(w, 0.5 - (1 + 3 * v) / 4, 1e-9);
  // Sign check away from the exact boundary (numerically ambiguous there).
  if (std::abs(v - 1.0 / 3.0) > 1e-6) {
    EXPECT_EQ(w < 0, v > 1.0 / 3.0) << "V=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Visibilities, WitnessWernerSweep,
                         ::testing::Values(0.0, 0.2, 1.0 / 3.0, 0.4, 0.83, 1.0));

TEST(Witness, ProjectorWitnessMatchesFidelityForm) {
  const auto target = quantum::bell_phi();
  const auto w = quantum::projector_witness(target);
  const auto rho = werner_phi(0.7);
  EXPECT_NEAR(quantum::witness_expectation(w, rho),
              0.5 - quantum::fidelity(rho, target), 1e-9);
}

TEST(Witness, DetectionThresholds) {
  EXPECT_NEAR(quantum::werner_detection_threshold(2), 1.0 / 3.0, 1e-12);
  // Larger registers: threshold approaches α as d grows.
  EXPECT_GT(quantum::werner_detection_threshold(4),
            quantum::werner_detection_threshold(2));
  EXPECT_LT(quantum::werner_detection_threshold(4), 0.5);
}

TEST(Witness, GhzStateProperties) {
  const auto ghz4 = quantum::ghz_state(4);
  EXPECT_NEAR(ghz4.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(ghz4.probability(15), 0.5, 1e-12);
  // Witness negative on the pure GHZ.
  const auto w = quantum::projector_witness(ghz4);
  EXPECT_NEAR(quantum::witness_expectation(w, DensityMatrix{ghz4}), -0.5, 1e-9);
  EXPECT_THROW(quantum::ghz_state(1), std::invalid_argument);
}

TEST(Witness, PaperOperatingPointIsDetected) {
  // Time-bin noise model at the paper's μ = 0.08: witness must certify
  // entanglement with a comfortable margin.
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = 0.08;
  m.phase_noise_rms_rad = 0.12;
  m.accidental_fraction = 0.025;
  EXPECT_LT(quantum::bell_witness_value(timebin::noisy_pair_state(m)), -0.3);
}

// ------------------------------------------------- arrival histogram MC

TEST(ArrivalHistogram, OuterPeaksForbiddenForPhiState) {
  rng::Xoshiro256 g(71);
  const auto h = timebin::simulate_arrival_histogram(DensityMatrix{bell_phi()}, 0.3,
                                                     0.4, 200000, g);
  EXPECT_EQ(h.counts[0], 0u);
  EXPECT_EQ(h.counts[4], 0u);
  EXPECT_EQ(h.total(), 200000u);
}

TEST(ArrivalHistogram, QuadratureGivesOneTwoOneSignature) {
  rng::Xoshiro256 g(72);
  // α + β = π/2: interference term vanishes, central peak = 2x sides.
  const auto h = timebin::simulate_arrival_histogram(
      DensityMatrix{bell_phi()}, 0.0, photonics::pi / 2.0, 400000, g);
  EXPECT_NEAR(h.central_to_side_ratio(), 2.0, 0.06);
  // Sides symmetric.
  EXPECT_NEAR(static_cast<double>(h.counts[1]) / static_cast<double>(h.counts[3]),
              1.0, 0.05);
}

TEST(ArrivalHistogram, FringeExtremaModulateCentralPeakOnly) {
  rng::Xoshiro256 g(73);
  const DensityMatrix rho{bell_phi()};
  const auto at_max = timebin::simulate_arrival_histogram(rho, 0.0, 0.0, 400000, g);
  const auto at_min =
      timebin::simulate_arrival_histogram(rho, 0.0, photonics::pi, 400000, g);
  EXPECT_NEAR(at_max.central_to_side_ratio(), 3.0, 0.1);
  EXPECT_NEAR(at_min.central_to_side_ratio(), 1.0, 0.05);
  // Side peaks carry the same share in both settings.
  const double side_frac_max =
      static_cast<double>(at_max.counts[1] + at_max.counts[3]) /
      static_cast<double>(at_max.total());
  const double side_frac_min =
      static_cast<double>(at_min.counts[1] + at_min.counts[3]) /
      static_cast<double>(at_min.total());
  EXPECT_GT(side_frac_min, side_frac_max);  // same absolute rate, smaller total
}

TEST(ArrivalHistogram, WhiteNoisePopulatesOuterPeaks) {
  rng::Xoshiro256 g(74);
  const auto h = timebin::simulate_arrival_histogram(werner_phi(0.5), 0.0, 0.0,
                                                     400000, g);
  EXPECT_GT(h.counts[0], 1000u);  // |SL>/|LS> components now allowed
  EXPECT_GT(h.counts[4], 1000u);
}

TEST(ArrivalHistogram, RejectsBadInput) {
  rng::Xoshiro256 g(75);
  EXPECT_THROW(
      timebin::simulate_arrival_histogram(DensityMatrix(1), 0, 0, 10, g),
      std::invalid_argument);
  EXPECT_THROW(
      timebin::simulate_arrival_histogram(DensityMatrix{bell_phi()}, 0, 0, 0, g),
      std::invalid_argument);
}

// ------------------------------------------------- pump rejection budget

TEST(PumpRejection, ClickRateFollowsBudget) {
  // 15 mW at 193.1 THz: ~1.2e17 photons/s.
  const double rate100 =
      core::pump_leakage_click_rate_hz(15e-3, 193.1e12, 100.0, 0.2);
  const double rate110 =
      core::pump_leakage_click_rate_hz(15e-3, 193.1e12, 110.0, 0.2);
  EXPECT_NEAR(rate100 / rate110, 10.0, 1e-6);
  EXPECT_GT(rate100, 1e5);  // 100 dB is NOT enough for a quantum experiment
}

TEST(PumpRejection, RequiredRejectionIsRoughly140dB) {
  const double db = core::required_pump_rejection_db(15e-3, 193.1e12, 1000.0, 0.2);
  EXPECT_GT(db, 130.0);
  EXPECT_LT(db, 150.0);
  // Round trip: at that rejection the click rate equals the cap.
  EXPECT_NEAR(core::pump_leakage_click_rate_hz(15e-3, 193.1e12, db, 0.2), 1000.0,
              1.0);
}

TEST(PumpRejection, ZeroWhenAlreadyQuiet) {
  EXPECT_DOUBLE_EQ(core::required_pump_rejection_db(1e-18, 193.1e12, 1e6, 0.2), 0.0);
}

}  // namespace
