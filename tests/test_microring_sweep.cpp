// Parameterized device-physics sweeps: coupling regimes, Q targets, loss
// budgets, geometry scaling — the microring model must stay self-consistent
// across the whole design space the paper's devices live in.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/linalg/error.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/material.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/sfwm/pair_source.hpp"

namespace {

using namespace qfc::photonics;

Waveguide standard_waveguide() { return Waveguide({1.5e-6, 1.5e-6}, hydex()); }

// ---------------------------------------------------- linewidth targets

class LinewidthDesignSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinewidthDesignSweep, DesignRoundTripAndQConsistency) {
  const double target = GetParam();
  const Waveguide wg = standard_waveguide();
  const double radius = 135e-6;
  const double t =
      design_symmetric_coupling_for_linewidth(wg, radius, 6.0, target, itu_anchor_hz);
  ASSERT_GT(t, 0.9);
  ASSERT_LT(t, 1.0);
  const MicroringResonator ring(wg, radius, t, t, 6.0);

  // Achieved linewidth within 2%.
  const double lw = ring.linewidth_hz(itu_anchor_hz, Polarization::TE);
  EXPECT_NEAR(lw, target, 0.02 * target);

  // Q = nu / linewidth by definition.
  EXPECT_NEAR(ring.loaded_q(itu_anchor_hz, Polarization::TE), itu_anchor_hz / lw,
              0.01 * itu_anchor_hz / lw);

  // Narrower target -> higher finesse -> higher peak enhancement.
  EXPECT_GT(ring.peak_field_enhancement(), 1.0);

  // Loaded Q can never exceed intrinsic Q.
  EXPECT_LT(ring.loaded_q(itu_anchor_hz, Polarization::TE),
            ring.intrinsic_q(itu_anchor_hz, Polarization::TE));
}

INSTANTIATE_TEST_SUITE_P(Targets, LinewidthDesignSweep,
                         ::testing::Values(50e6, 80e6, 110e6, 200e6, 400e6, 820e6,
                                           1.5e9, 3e9));

// ------------------------------------------------------ coupling regimes

class CouplingSweep : public ::testing::TestWithParam<double> {};

TEST_P(CouplingSweep, TransferFunctionsStayPhysical) {
  const double t = GetParam();
  const Waveguide wg = standard_waveguide();
  const MicroringResonator ring(wg, 135e-6, t, t, 6.0);
  const double res = ring.nearest_resonance_hz(itu_anchor_hz, Polarization::TE);
  const double lw = ring.linewidth_hz(res, Polarization::TE);

  for (double detune_lw : {0.0, 0.25, 0.5, 1.0, 3.0, 10.0}) {
    const double nu = res + detune_lw * lw;
    const double thru = ring.through_power(nu, Polarization::TE);
    const double drop = ring.drop_power(nu, Polarization::TE);
    EXPECT_GE(thru, 0.0);
    EXPECT_GE(drop, 0.0);
    EXPECT_LE(thru + drop, 1.0 + 1e-9) << "t=" << t << " detune=" << detune_lw;
  }

  // Drop transmission decreases monotonically with detuning.
  double prev = ring.drop_power(res, Polarization::TE);
  for (double detune_lw : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double cur = ring.drop_power(res + detune_lw * lw, Polarization::TE);
    EXPECT_LT(cur, prev * 1.001);
    prev = cur;
  }

  // Escape efficiency stays in (0, 1/2] for symmetric couplers.
  const double esc = qfc::sfwm::drop_port_escape_efficiency(ring);
  EXPECT_GT(esc, 0.0);
  EXPECT_LE(esc, 0.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SelfCoupling, CouplingSweep,
                         ::testing::Values(0.9, 0.95, 0.99, 0.995, 0.999, 0.9995,
                                           0.9999));

TEST(CouplingRegimes, StrongerCouplingBroadensLine) {
  const Waveguide wg = standard_waveguide();
  double prev_lw = 0;
  for (double t : {0.9999, 0.999, 0.99, 0.95}) {
    const MicroringResonator ring(wg, 135e-6, t, t, 6.0);
    const double lw = ring.linewidth_hz(itu_anchor_hz, Polarization::TE);
    EXPECT_GT(lw, prev_lw) << "t=" << t;
    prev_lw = lw;
  }
}

// ------------------------------------------------------------ loss budget

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, IntrinsicQFallsWithLoss) {
  const double loss_db_per_m = GetParam();
  const Waveguide wg = standard_waveguide();
  const MicroringResonator ring(wg, 135e-6, 0.999, 0.999, loss_db_per_m);
  const double qi = ring.intrinsic_q(itu_anchor_hz, Polarization::TE);
  // Reference: tripled loss -> roughly a third the intrinsic Q.
  const MicroringResonator worse(wg, 135e-6, 0.999, 0.999, 3 * loss_db_per_m);
  EXPECT_NEAR(worse.intrinsic_q(itu_anchor_hz, Polarization::TE), qi / 3.0,
              0.05 * qi / 3.0);
  // Round-trip amplitude in (0, 1).
  EXPECT_GT(ring.round_trip_amplitude(), 0.0);
  EXPECT_LT(ring.round_trip_amplitude(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PropagationLoss, LossSweep,
                         ::testing::Values(1.0, 6.0, 20.0, 60.0));

// ------------------------------------------------------- geometry scaling

class RadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(RadiusSweep, FsrInverseInRadius) {
  const double radius = GetParam();
  const Waveguide wg = standard_waveguide();
  const MicroringResonator ring(wg, radius, 0.999, 0.999, 6.0);
  const MicroringResonator twice(wg, 2 * radius, 0.999, 0.999, 6.0);
  const double f1 = ring.fsr_hz(itu_anchor_hz, Polarization::TE);
  const double f2 = twice.fsr_hz(itu_anchor_hz, Polarization::TE);
  EXPECT_NEAR(f1 / f2, 2.0, 0.01);
  // Resonance spacing equals FSR.
  const double r1 = ring.nearest_resonance_hz(itu_anchor_hz, Polarization::TE);
  const int m = ring.mode_number_near(r1, Polarization::TE);
  const double r2 = ring.resonance_frequency_hz(m + 1, Polarization::TE);
  EXPECT_NEAR(r2 - r1, f1, 0.02 * f1);
}

INSTANTIATE_TEST_SUITE_P(Radii, RadiusSweep,
                         ::testing::Values(50e-6, 135e-6, 270e-6, 500e-6));

// ----------------------------------------------- birefringence trim sweep

class TrimSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrimSweep, TrimShiftsTmGridButNotFsr) {
  const double trim = GetParam();
  const Waveguide plain({1.5e-6, 1.5e-6}, hydex(), 0.012, 0.0);
  const Waveguide trimmed({1.5e-6, 1.5e-6}, hydex(), 0.012, trim);
  const MicroringResonator r0(plain, 135e-6, 0.999, 0.999, 6.0);
  const MicroringResonator r1(trimmed, 135e-6, 0.999, 0.999, 6.0);

  // TE untouched.
  EXPECT_NEAR(r0.nearest_resonance_hz(itu_anchor_hz, Polarization::TE),
              r1.nearest_resonance_hz(itu_anchor_hz, Polarization::TE), 1.0);

  // TM FSR unchanged (the trim is linear in λ).
  const double fsr0 = r0.fsr_hz(itu_anchor_hz, Polarization::TM);
  const double fsr1 = r1.fsr_hz(itu_anchor_hz, Polarization::TM);
  EXPECT_NEAR(fsr1, fsr0, 1e-4 * fsr0);

  // TM index shifted proportionally to the trim.
  const double dn = trimmed.effective_index(itu_anchor_hz, Polarization::TM) -
                    plain.effective_index(itu_anchor_hz, Polarization::TM);
  EXPECT_NEAR(dn, trim * (wavelength_from_frequency(itu_anchor_hz) / 1.55e-6),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Trims, TrimSweep,
                         ::testing::Values(-3e-3, -1.5e-3, -5e-4, 5e-4, 1.5e-3));

// -------------------------------------------------------- thermal physics

TEST(Thermal, ShiftScalesWithFrequency) {
  const Waveguide wg = standard_waveguide();
  const MicroringResonator ring(wg, 135e-6, 0.999, 0.999, 6.0);
  const double s1 = ring.thermal_shift_hz_per_K(185e12, Polarization::TE);
  const double s2 = ring.thermal_shift_hz_per_K(196e12, Polarization::TE);
  EXPECT_LT(s2, s1);  // both negative; higher frequency shifts more
  EXPECT_NEAR(s2 / s1, 196.0 / 185.0, 0.02);
}

TEST(Thermal, MilliKelvinMovesFractionOfLinewidth) {
  // The stability experiment's premise: mK-scale drift ~ MHz shifts,
  // comparable to the 110 MHz linewidth.
  const Waveguide wg = standard_waveguide();
  const MicroringResonator ring(wg, 135e-6, 0.9995, 0.9995, 6.0);
  const double shift_per_mk =
      std::abs(ring.thermal_shift_hz_per_K(itu_anchor_hz, Polarization::TE)) * 1e-3;
  EXPECT_GT(shift_per_mk, 0.1e6);
  EXPECT_LT(shift_per_mk, 10e6);
}

}  // namespace
