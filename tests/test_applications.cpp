// Tests for the application layer built on top of the comb: QKD link
// budget, heralded-g² HBT measurement, dispersion analysis, Allan
// deviation.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/hbt.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/detect/allan.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/photonics/dispersion.hpp"
#include "qfc/rng/distributions.hpp"
#include "qfc/sfwm/phase_matching.hpp"

namespace {

using namespace qfc;

// ------------------------------------------------------------------ QKD

TEST(QkdMath, BinaryEntropy) {
  EXPECT_NEAR(core::binary_entropy_bits(0.5), 1.0, 1e-12);
  EXPECT_NEAR(core::binary_entropy_bits(0.0), 0.0, 1e-12);
  EXPECT_NEAR(core::binary_entropy_bits(0.11), 0.4999, 0.01);
  EXPECT_THROW(core::binary_entropy_bits(1.5), std::invalid_argument);
}

TEST(QkdMath, QberAndSecretFraction) {
  EXPECT_NEAR(core::qber_from_visibility(1.0), 0.0, 1e-12);
  EXPECT_NEAR(core::qber_from_visibility(0.83), 0.085, 1e-12);
  // Positive key below QBER ~ 11%, zero above.
  EXPECT_GT(core::bbm92_secret_fraction(0.05), 0.0);
  EXPECT_DOUBLE_EQ(core::bbm92_secret_fraction(0.15), 0.0);
  EXPECT_NEAR(core::bbm92_secret_fraction(0.0), 1.0, 1e-12);
}

class QkdFixture : public ::testing::Test {
 protected:
  QkdFixture()
      : comb_(core::QuantumFrequencyComb::for_configuration(
            core::PumpConfiguration::DoublePulse)),
        exp_(comb_.timebin_default()),
        link_(exp_) {}

  core::QuantumFrequencyComb comb_;
  core::TimebinExperiment exp_;
  core::MultiplexedQkdLink link_;
};

TEST_F(QkdFixture, ShortLinkDistillsKeyOnAllChannels) {
  for (const auto& ch : link_.all_channels(10.0)) {
    EXPECT_TRUE(ch.key_positive) << "k=" << ch.k;
    EXPECT_LT(ch.qber, 0.11) << "k=" << ch.k;
    EXPECT_GT(ch.key_rate_bps, 1.0) << "k=" << ch.k;
  }
}

TEST_F(QkdFixture, KeyRateDecreasesWithDistance) {
  double prev = 1e18;
  for (double km : {1.0, 25.0, 50.0, 100.0}) {
    const double rate = link_.aggregate_key_rate_bps(km);
    EXPECT_LT(rate, prev) << km << " km";
    prev = rate;
  }
}

TEST_F(QkdFixture, VisibilityDegradesToCutoff) {
  const auto near = link_.channel_performance(1, 1.0);
  const auto far = link_.channel_performance(1, 300.0);
  EXPECT_GT(near.visibility, far.visibility);
  EXPECT_FALSE(far.key_positive);  // accidentals dominate at 300 km
}

TEST_F(QkdFixture, MaxDistanceIsFiniteAndConsistent) {
  const double dmax = link_.max_distance_km(1);
  EXPECT_GT(dmax, 20.0);
  EXPECT_LT(dmax, 500.0);
  EXPECT_TRUE(link_.channel_performance(1, dmax * 0.95).key_positive);
  EXPECT_FALSE(link_.channel_performance(1, dmax * 1.05).key_positive);
}

TEST_F(QkdFixture, MaxDistanceHonorsToleranceParameter) {
  const double coarse = link_.max_distance_km(1, 500.0, /*tolerance_km=*/10.0);
  const double fine = link_.max_distance_km(1, 500.0, /*tolerance_km=*/0.01);
  // Both bracket the true cutoff from below, within their own tolerance.
  EXPECT_NEAR(coarse, fine, 10.0);
  EXPECT_TRUE(link_.channel_performance(1, fine).key_positive);
  EXPECT_FALSE(link_.channel_performance(1, fine + 0.02).key_positive);
  EXPECT_THROW(link_.max_distance_km(1, 500.0, 0.0), std::invalid_argument);
  EXPECT_THROW(link_.max_distance_km(1, -1.0), std::invalid_argument);
}

TEST_F(QkdFixture, MaxDistanceReturnsNanWhenNoPositiveKeyExists) {
  // A dark rate this high drowns the link in accidentals even back-to-back,
  // so no positive-key distance exists anywhere on [0, upper].
  core::UserEndpointParams endpoint;
  endpoint.dark_rate_hz = 1e9;
  const core::MultiplexedQkdLink dead(exp_, endpoint);
  EXPECT_FALSE(dead.channel_performance(1, 0.0).key_positive);
  EXPECT_TRUE(std::isnan(dead.max_distance_km(1)));
}

TEST(QkdParams, EndpointAndGeometryValidation) {
  core::UserEndpointParams endpoint;
  endpoint.dark_rate_hz = -1.0;
  EXPECT_THROW(endpoint.validate(), std::invalid_argument);
  endpoint = {};
  endpoint.coincidence_window_s = 0.0;
  EXPECT_THROW(endpoint.validate(), std::invalid_argument);
  endpoint = {};
  endpoint.sifting_factor = 1.5;
  EXPECT_THROW(endpoint.validate(), std::invalid_argument);
  endpoint.sifting_factor = 0.0;
  EXPECT_THROW(endpoint.validate(), std::invalid_argument);
  endpoint = {};
  endpoint.detection_efficiency_scale = 0.0;
  EXPECT_THROW(endpoint.validate(), std::invalid_argument);
  endpoint = {};
  EXPECT_NO_THROW(endpoint.validate());

  core::LinkGeometry geometry;
  geometry.distance_km = -5.0;
  EXPECT_THROW(geometry.validate(), std::invalid_argument);
  geometry.distance_km = 40.0;
  EXPECT_NO_THROW(geometry.validate());
  // Symmetric spans: each arm carries half the separation.
  EXPECT_DOUBLE_EQ(geometry.arm_channel().params().length_m, 20000.0);
  EXPECT_GT(geometry.arm_transmission(), 0.0);
  EXPECT_LT(geometry.arm_transmission(), 1.0);
}

TEST_F(QkdFixture, MultiplexingAggregatesChannels) {
  const double agg = link_.aggregate_key_rate_bps(10.0);
  const double single = link_.channel_performance(1, 10.0).key_rate_bps;
  EXPECT_GT(agg, 3.0 * single * 0.5);  // ~5 similar channels
}

// ------------------------------------------------------------------ HBT

TEST(Hbt, LowMuGivesAntibunching) {
  rng::Xoshiro256 g(21);
  core::HbtParams p;
  p.mean_pairs_per_trial = 5e-3;
  p.trials = 400000;
  const auto r = core::run_hbt(p, g);
  EXPECT_GT(r.heralds, 100u);
  EXPECT_LT(r.g2, 0.1);  // clear single-photon signature
}

TEST(Hbt, G2MatchesAnalyticTmsv) {
  rng::Xoshiro256 g(22);
  core::HbtParams p;
  p.mean_pairs_per_trial = 0.2;
  p.dark_probability = 0;
  p.trials = 500000;
  const auto r = core::run_hbt(p, g);
  const double expected = core::analytic_heralded_g2(p);
  EXPECT_NEAR(r.g2, expected, 0.15 * expected + 3 * r.g2_err);
}

TEST(Hbt, G2GrowsWithMu) {
  rng::Xoshiro256 g(23);
  core::HbtParams lo, hi;
  lo.mean_pairs_per_trial = 0.02;
  hi.mean_pairs_per_trial = 0.5;
  lo.trials = hi.trials = 300000;
  const auto rlo = core::run_hbt(lo, g);
  const auto rhi = core::run_hbt(hi, g);
  EXPECT_GT(rhi.g2, rlo.g2);
}

TEST(Hbt, DarkCountsRaiseG2Floor) {
  rng::Xoshiro256 g(24);
  core::HbtParams clean, noisy;
  clean.mean_pairs_per_trial = noisy.mean_pairs_per_trial = 1e-3;
  clean.trials = noisy.trials = 400000;
  clean.dark_probability = 0;
  noisy.dark_probability = 1e-3;
  const auto rc = core::run_hbt(clean, g);
  const auto rn = core::run_hbt(noisy, g);
  EXPECT_GE(rn.g2 + 3 * rn.g2_err, rc.g2);
}

TEST(Hbt, ValidationWorks) {
  core::HbtParams p;
  p.trials = 0;
  rng::Xoshiro256 g(25);
  EXPECT_THROW(core::run_hbt(p, g), std::invalid_argument);
}

// ------------------------------------------------------- dispersion

TEST(Dispersion, DintCurvatureEqualsSfwmEnergyMismatch) {
  // Dint(k) + Dint(−k) is exactly the type-0 SFWM energy mismatch
  // ν_s + ν_i − 2ν_p — the two modules must agree.
  const auto ring = photonics::heralded_source_device();
  const double pump = photonics::pump_resonance_hz(ring);
  for (int k : {1, 3, 7}) {
    const double from_dint =
        photonics::integrated_dispersion_hz(ring, pump, k) +
        photonics::integrated_dispersion_hz(ring, pump, -k);
    const double from_pm = sfwm::type0_energy_mismatch_hz(ring, pump, k);
    EXPECT_NEAR(from_dint, from_pm, 1.0 + 1e-6 * std::abs(from_pm)) << "k=" << k;
  }
}

TEST(Dispersion, ProfileIsSmoothAndFitted) {
  const auto ring = photonics::heralded_source_device();
  const auto prof = photonics::dispersion_profile(ring, photonics::itu_anchor_hz, 20);
  ASSERT_EQ(prof.k.size(), 41u);
  // D2 is the curvature of the resonance grid; for our normal-dispersion
  // Hydex surrogate it must be nonzero and small vs the FSR.
  EXPECT_GT(std::abs(prof.d2_hz), 1e3);
  EXPECT_LT(std::abs(prof.d2_hz), 100e6);
  // Fit quality: reconstruct Dint at k=10 within 25%.
  const double recon = prof.d2_hz * 100.0 / 2.0;
  const double actual =
      photonics::integrated_dispersion_hz(ring, photonics::itu_anchor_hz, 10);
  EXPECT_NEAR(recon, actual, 0.35 * std::abs(actual) + 1e4);
}

TEST(Dispersion, PhaseMatchedCountCoversPaperComb) {
  // The paper's experiments use at least 5 symmetric channel pairs; the
  // devices must be phase-matched at least that far.
  for (const auto& ring :
       {photonics::heralded_source_device(), photonics::entanglement_device()}) {
    EXPECT_GE(photonics::phase_matched_pair_count(ring, photonics::itu_anchor_hz, 60),
              5);
  }
}

TEST(Dispersion, HigherQMeansFewerPhaseMatchedChannels) {
  // Narrower resonances tolerate less dispersion walk-off.
  const int narrow = photonics::phase_matched_pair_count(
      photonics::heralded_source_device(), photonics::itu_anchor_hz, 80);
  const int wide = photonics::phase_matched_pair_count(
      photonics::entanglement_device(), photonics::itu_anchor_hz, 80);
  EXPECT_LE(narrow, wide);
}

// ------------------------------------------------------------ Allan

TEST(Allan, WhiteNoiseSlope) {
  rng::Xoshiro256 g(31);
  std::vector<double> samples;
  for (int i = 0; i < 8192; ++i) samples.push_back(rng::sample_normal(g, 1.0, 0.01));
  const auto curve = detect::allan_curve(samples, 1.0);
  ASSERT_GT(curve.size(), 6u);
  // White noise: sigma(tau) ∝ tau^{-1/2}: each octave divides by sqrt(2).
  for (std::size_t i = 1; i + 2 < curve.size(); ++i) {
    const double ratio = curve[i].sigma / curve[i - 1].sigma;
    EXPECT_NEAR(ratio, 1.0 / std::sqrt(2.0), 0.25) << "octave " << i;
  }
}

TEST(Allan, ConstantSeriesGivesZero) {
  const std::vector<double> flat(100, 3.0);
  EXPECT_NEAR(detect::allan_deviation(flat, 4), 0.0, 1e-15);
}

TEST(Allan, DriftDominatesAtLongTau) {
  // Linear drift: Allan deviation grows ∝ tau at large tau.
  std::vector<double> drift;
  for (int i = 0; i < 4096; ++i) drift.push_back(1e-5 * i);
  const auto curve = detect::allan_curve(drift, 1.0);
  EXPECT_GT(curve.back().sigma, curve.front().sigma);
}

TEST(Allan, RejectsBadArguments) {
  const std::vector<double> s(10, 1.0);
  EXPECT_THROW(detect::allan_deviation(s, 0), std::invalid_argument);
  EXPECT_THROW(detect::allan_deviation(s, 5), std::invalid_argument);
  EXPECT_THROW(detect::allan_curve(s, -1.0), std::invalid_argument);
}

TEST(Allan, StabilityTraceYieldsFiniteCurve) {
  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 4.0;
  auto exp = comb.stability(cfg);
  const auto cmp = exp.run();
  const auto curve =
      detect::allan_curve(cmp.self_locked.relative_rate, cfg.sample_interval_s);
  ASSERT_GT(curve.size(), 3u);
  for (const auto& p : curve) {
    EXPECT_GE(p.sigma, 0.0);
    EXPECT_LT(p.sigma, 0.1);  // self-locked: percent-level at all tau
  }
}

}  // namespace
