// Tests for the windowed streaming engine and its online accumulators:
// bitwise streaming-vs-batch parity across emission modes, window sizes
// and thread counts; snapshot/restore; boundary-violation accounting; and
// the streaming-backed core façades.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/core/stability.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/streaming.hpp"

namespace {

using namespace qfc;
using detect::ChannelPairSpec;
using detect::EngineConfig;
using detect::EngineResult;
using detect::EventEngine;
using detect::EventStreamer;
using detect::EventTable;
using detect::StreamConfig;
using detect::StreamWindow;

constexpr double kDuration = 0.5;

ChannelPairSpec base_spec(int k) {
  ChannelPairSpec s;
  s.pair_rate_hz = 20000.0 + 1500.0 * k;
  s.linewidth_hz = 110e6;
  s.transmission_signal = 0.8;
  s.transmission_idler = 0.75;
  s.background_rate_signal_hz = 1200.0;
  s.background_rate_idler_hz = 900.0;
  s.detector_signal.efficiency = 0.25;
  s.detector_signal.dark_rate_hz = 5e3;
  s.detector_signal.jitter_sigma_s = 120e-12;
  s.detector_signal.dead_time_s = 1e-6;
  s.detector_idler = s.detector_signal;
  s.detector_idler.efficiency = 0.2;
  return s;
}

std::vector<ChannelPairSpec> specs_for(detect::EmissionMode mode) {
  std::vector<ChannelPairSpec> specs;
  for (int k = 0; k < 3; ++k) {
    ChannelPairSpec s = base_spec(k);
    switch (mode) {
      case detect::EmissionMode::Cw:
        break;
      case detect::EmissionMode::Pulsed:
        s.emission = detect::EmissionMode::Pulsed;
        s.pair_rate_hz = 0;
        s.pulsed.repetition_rate_hz = 1e6;
        s.pulsed.mean_pairs_per_pulse = 0.02 + 0.005 * k;
        s.pulsed.pulse_sigma_s = 30e-12;
        s.pulsed.bin_separation_s = 400e-12;
        s.pulsed.late_fraction = 0.5;
        break;
      case detect::EmissionMode::PiecewiseRates:
        s.emission = detect::EmissionMode::PiecewiseRates;
        s.pair_rate_hz = 0;
        s.segments = {{0.2, 15000.0 + 1000.0 * k, 2000.0, 1000.0, 500.0, 250.0},
                      {0.2, 5000.0, 0.0, 0.0, 0.0, 0.0},
                      {0.2, 25000.0, 1000.0, 2000.0, 250.0, 500.0}};
        break;
    }
    // Channel 2 is deliberately empty: no pairs, no backgrounds, no darks.
    if (k == 2) {
      s.pair_rate_hz = 0;
      s.background_rate_signal_hz = 0;
      s.background_rate_idler_hz = 0;
      s.detector_signal.dark_rate_hz = 0;
      s.detector_idler.dark_rate_hz = 0;
      s.pulsed.mean_pairs_per_pulse = 0;
      for (auto& seg : s.segments) {
        seg.pair_rate_hz = 0;
        seg.background_rate_signal_hz = 0;
        seg.background_rate_idler_hz = 0;
        seg.dark_rate_signal_hz = 0;
        seg.dark_rate_idler_hz = 0;
      }
    }
    specs.push_back(s);
  }
  return specs;
}

EngineConfig engine_config(int num_threads = 2) {
  EngineConfig ec;
  ec.duration_s = kDuration;
  ec.seed = 20170327;
  ec.num_threads = num_threads;
  return ec;
}

/// Drain a streamer, concatenating the per-window columns per channel.
EngineResult drain(EventStreamer& s) {
  std::vector<std::vector<double>> sig, idl;
  StreamWindow w;
  while (s.next(w)) {
    const std::size_t n = w.events.signal.num_channels();
    if (sig.empty()) {
      sig.resize(n);
      idl.resize(n);
    }
    EXPECT_EQ(n, sig.size()) << "channel count changed mid-stream";
    for (std::size_t c = 0; c < n; ++c) {
      const auto col_s = w.events.signal.channel_clicks(c);
      const auto col_i = w.events.idler.channel_clicks(c);
      sig[c].insert(sig[c].end(), col_s.begin(), col_s.end());
      idl[c].insert(idl[c].end(), col_i.begin(), col_i.end());
    }
  }
  EngineResult r;
  r.signal = EventTable::from_columns(std::move(sig));
  r.idler = EventTable::from_columns(std::move(idl));
  return r;
}

void expect_car_equal(const detect::CarMatrix& a, const detect::CarMatrix& b) {
  ASSERT_EQ(a.num_signal, b.num_signal);
  ASSERT_EQ(a.num_idler, b.num_idler);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].coincidences, b.cells[i].coincidences) << "cell " << i;
    EXPECT_EQ(a.cells[i].accidentals, b.cells[i].accidentals) << "cell " << i;
    EXPECT_EQ(a.cells[i].car, b.cells[i].car) << "cell " << i;
    EXPECT_EQ(a.cells[i].car_err, b.cells[i].car_err) << "cell " << i;
  }
}

/// Window sizes exercised by the parity sweep: several windows, a window
/// not dividing the duration, a sub-millisecond window (thousands of
/// boundaries, far below any analysis reach of interest), and the
/// single-window degenerate case (window > duration). The CI sanitizer
/// legs add one more via QFC_STREAM_TEST_WINDOW_S.
std::vector<double> parity_windows() {
  std::vector<double> w{kDuration / 8.0, 0.137, 7e-4, 2.0 * kDuration};
  if (const char* env = std::getenv("QFC_STREAM_TEST_WINDOW_S")) {
    const double v = std::atof(env);
    if (v > 0) w.push_back(v);
  }
  return w;
}

constexpr double kCarWindow = 8e-9;
constexpr double kCarSpacing = 100e-9;
constexpr double kCountOffset = 50e-9;
constexpr double kCorrBin = 1e-9;
constexpr double kCorrRange = 40e-9;

class StreamingParity
    : public ::testing::TestWithParam<detect::EmissionMode> {};

TEST_P(StreamingParity, BitwiseMatchesBatchAcrossWindowSizesAndThreads) {
  const auto specs = specs_for(GetParam());
  const EngineConfig ec = engine_config();
  const EngineResult batch = EventEngine(ec).run(specs);
  const auto batch_car =
      detect::car_matrix(batch.signal, batch.idler, kCarWindow, kCarSpacing, 10, 1);
  const auto batch_counts = detect::coincidence_count_matrix(
      batch.signal, batch.idler, kCarWindow, kCountOffset, 1);
  const auto batch_hists =
      detect::correlate_all(batch.signal, batch.idler, kCorrBin, kCorrRange, 1);

  for (double window_s : parity_windows()) {
    SCOPED_TRACE("window_s = " + std::to_string(window_s));
    StreamConfig sc;
    sc.window_s = window_s;
    for (int analysis_threads : {1, 2, 4}) {
      SCOPED_TRACE("analysis_threads = " + std::to_string(analysis_threads));
      EventStreamer streamer(ec, sc, specs);
      detect::StreamingCarAccumulator car(kCarWindow, kCarSpacing, 10,
                                          analysis_threads);
      detect::StreamingCountMatrixAccumulator cm(kCarWindow, kCountOffset,
                                                 analysis_threads);
      detect::StreamingCorrelatorAccumulator corr(kCorrBin, kCorrRange,
                                                  analysis_threads);
      std::vector<std::vector<double>> sig(specs.size()), idl(specs.size());
      StreamWindow w;
      while (streamer.next(w)) {
        car.push(w);
        cm.push(w);
        corr.push(w);
        for (std::size_t c = 0; c < specs.size(); ++c) {
          const auto col_s = w.events.signal.channel_clicks(c);
          const auto col_i = w.events.idler.channel_clicks(c);
          sig[c].insert(sig[c].end(), col_s.begin(), col_s.end());
          idl[c].insert(idl[c].end(), col_i.begin(), col_i.end());
        }
      }
      EXPECT_EQ(streamer.boundary_violations(), 0u);
      EXPECT_EQ(EventTable::from_columns(std::move(sig)), batch.signal);
      EXPECT_EQ(EventTable::from_columns(std::move(idl)), batch.idler);
      expect_car_equal(car.finish(), batch_car);
      EXPECT_EQ(cm.finish(), batch_counts);
      const auto hists = corr.finish();
      ASSERT_EQ(hists.size(), batch_hists.size());
      for (std::size_t c = 0; c < hists.size(); ++c)
        EXPECT_EQ(hists[c].counts, batch_hists[c].counts) << "channel " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEmissionModes, StreamingParity,
                         ::testing::Values(detect::EmissionMode::Cw,
                                           detect::EmissionMode::Pulsed,
                                           detect::EmissionMode::PiecewiseRates));

TEST(EventStreamer, BitwiseInvariantAcrossGenerationThreadCounts) {
  const auto specs = specs_for(detect::EmissionMode::Cw);
  StreamConfig sc;
  sc.window_s = 0.05;
  EventStreamer s1(engine_config(1), sc, specs);
  EventStreamer s3(engine_config(3), sc, specs);
  const EngineResult r1 = drain(s1);
  const EngineResult r3 = drain(s3);
  EXPECT_EQ(r1.signal, r3.signal);
  EXPECT_EQ(r1.idler, r3.idler);
}

TEST(EventStreamer, WindowMetadataAndScheduling) {
  const auto specs = specs_for(detect::EmissionMode::Cw);
  StreamConfig sc;
  sc.window_s = 0.2;
  EventStreamer s(engine_config(), sc, specs);
  EXPECT_EQ(s.num_windows(), 3u);  // 0.5 / 0.2
  StreamWindow w;
  std::size_t k = 0;
  while (s.next(w)) {
    EXPECT_EQ(w.index, k);
    EXPECT_DOUBLE_EQ(w.t_begin_s, 0.2 * static_cast<double>(k));
    EXPECT_EQ(w.last, k + 1 == s.num_windows());
    EXPECT_EQ(w.t_end_s, w.last ? kDuration : 0.2 * static_cast<double>(k + 1));
    for (std::size_t c = 0; c < specs.size(); ++c) {
      for (double t : w.events.signal.channel_clicks(c)) {
        EXPECT_GE(t, w.t_begin_s);
        EXPECT_LT(t, w.t_end_s);
      }
    }
    ++k;
  }
  EXPECT_EQ(k, 3u);
  EXPECT_TRUE(s.done());
  EXPECT_FALSE(s.next(w));
}

TEST(EventStreamer, RejectsBadConfigsLikeBatch) {
  const auto specs = specs_for(detect::EmissionMode::Cw);
  EngineConfig ec = engine_config();
  StreamConfig sc;
  sc.window_s = 0;
  EXPECT_THROW(EventStreamer(ec, sc, specs), std::invalid_argument);
  sc.window_s = 0.1;
  ec.duration_s = -1;
  EXPECT_THROW(EventStreamer(ec, sc, specs), std::invalid_argument);
  ec = engine_config();
  auto bad = specs;
  bad[0].pair_rate_hz = -5;
  EXPECT_THROW(EventStreamer(ec, sc, bad), std::invalid_argument);
}

TEST(EventStreamer, SnapshotRestoreContinuesBitwise) {
  const auto specs = specs_for(detect::EmissionMode::PiecewiseRates);
  StreamConfig sc;
  sc.window_s = 0.07;
  EventStreamer original(engine_config(), sc, specs);
  detect::StreamingCarAccumulator car_orig(kCarWindow, kCarSpacing, 10, 2);

  StreamWindow w;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(original.next(w));
    car_orig.push(w);
  }
  const auto streamer_blob = original.snapshot();
  const auto car_blob = car_orig.snapshot();

  EventStreamer restored = EventStreamer::restore(streamer_blob);
  EXPECT_EQ(restored.next_window(), original.next_window());
  EXPECT_EQ(restored.num_windows(), original.num_windows());
  detect::StreamingCarAccumulator car_rest(kCarWindow, kCarSpacing, 10, 2);
  car_rest.restore(car_blob);

  StreamWindow wo, wr;
  while (original.next(wo)) {
    ASSERT_TRUE(restored.next(wr));
    EXPECT_EQ(wr.index, wo.index);
    EXPECT_EQ(wr.events.signal, wo.events.signal);
    EXPECT_EQ(wr.events.idler, wo.events.idler);
    car_orig.push(wo);
    car_rest.push(wr);
  }
  EXPECT_FALSE(restored.next(wr));
  expect_car_equal(car_rest.finish(), car_orig.finish());
}

TEST(EventStreamer, SnapshotRejectsCorruptBlobs) {
  const auto specs = specs_for(detect::EmissionMode::Cw);
  StreamConfig sc;
  sc.window_s = 0.1;
  EventStreamer s(engine_config(), sc, specs);
  auto blob = s.snapshot();
  EXPECT_THROW(EventStreamer::restore({}), std::invalid_argument);
  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(EventStreamer::restore(truncated), std::invalid_argument);
  auto bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(EventStreamer::restore(bad_magic), std::invalid_argument);
  // An accumulator blob is not a streamer blob.
  detect::StreamingAllanAccumulator allan(40e-9, 0.1);
  EXPECT_THROW(EventStreamer::restore(allan.snapshot()), std::invalid_argument);
}

TEST(EventStreamer, TinySlackForcesCountedBoundaryViolations) {
  // A pathological configuration — huge detector jitter, narrow linewidth,
  // and the look-ahead slack overridden to 1 ps — guarantees clicks and
  // arrivals materialize behind already-emitted boundaries. The streamer
  // must count them and still complete with valid (sorted) windows.
  std::vector<ChannelPairSpec> specs(1);
  specs[0].pair_rate_hz = 50000;
  specs[0].linewidth_hz = 1e3;  // Laplace delay scale ~160 us
  specs[0].detector_signal.efficiency = 0.9;
  specs[0].detector_signal.dark_rate_hz = 100;
  specs[0].detector_signal.jitter_sigma_s = 5e-3;
  specs[0].detector_signal.dead_time_s = 0;
  specs[0].detector_idler = specs[0].detector_signal;

  StreamConfig sc;
  sc.window_s = 0.05;
  sc.slack_override_s = 1e-12;
  EventStreamer s(engine_config(1), sc, specs);
  detect::StreamingCarAccumulator car(kCarWindow, kCarSpacing, 10, 1);
  StreamWindow w;
  std::size_t total = 0;
  while (s.next(w)) {
    total += w.events.signal.size() + w.events.idler.size();
    car.push(w);  // must tolerate out-of-order windows (repair paths)
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(s.boundary_violations(), 0u);
  (void)car.finish();
}

TEST(StreamingAllanAccumulator, MatchesDirectIntervalCounting) {
  const auto specs = specs_for(detect::EmissionMode::Cw);
  const EngineConfig ec = engine_config();
  const EngineResult batch = EventEngine(ec).run(specs);

  const double dt = 0.05;
  const double window = 40e-9;
  StreamConfig sc;
  sc.window_s = 0.02;  // windows do not align with the intervals
  EventStreamer s(ec, sc, specs);
  detect::StreamingAllanAccumulator acc(window, dt, 0, 0);
  StreamWindow w;
  while (s.next(w)) acc.push(w);
  const auto res = acc.finish();

  const auto sig = batch.signal.channel_clicks(0);
  const auto idl = batch.idler.channel_clicks(0);
  const auto n = static_cast<std::size_t>(kDuration / dt);
  ASSERT_EQ(res.counts.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t0 = static_cast<double>(i) * dt;
    const double t1 = static_cast<double>(i + 1) * dt;
    const std::vector<double> a(
        std::lower_bound(sig.begin(), sig.end(), t0),
        std::lower_bound(sig.begin(), sig.end(), t1));
    const std::vector<double> b(
        std::lower_bound(idl.begin(), idl.end(), t0),
        std::lower_bound(idl.begin(), idl.end(), t1));
    EXPECT_EQ(res.counts[i],
              static_cast<double>(detect::count_coincidences(a, b, window)))
        << "interval " << i;
  }
  EXPECT_GT(res.mean_counts, 0.0);
  EXPECT_FALSE(res.allan.empty());
}

TEST(StreamingFacades, QkdStreamCheckWindowSizeInvariant) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const core::MultiplexedQkdLink link(exp);
  const double duration = 0.2;
  core::StreamOptions batch_opts;
  batch_opts.window_s = 0;  // one window spanning the run
  const auto batch = link.stream_check(/*distance_km=*/0.0, duration, batch_opts);
  core::StreamOptions windowed_opts;
  windowed_opts.window_s = duration / 6.0;
  const auto streamed =
      link.stream_check(/*distance_km=*/0.0, duration, windowed_opts);
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].k, batch[i].k);
    EXPECT_EQ(streamed[i].car.coincidences, batch[i].car.coincidences);
    EXPECT_EQ(streamed[i].car.accidentals, batch[i].car.accidentals);
    EXPECT_EQ(streamed[i].car.car, batch[i].car.car);
    EXPECT_EQ(streamed[i].car.car_err, batch[i].car.car_err);
    EXPECT_EQ(streamed[i].measured_coincidence_rate_hz,
              batch[i].measured_coincidence_rate_hz);
    EXPECT_EQ(streamed[i].measured_accidental_rate_hz,
              batch[i].measured_accidental_rate_hz);
  }
  EXPECT_THROW(link.stream_check(-1.0, 1.0), std::invalid_argument);
}

TEST(StreamingAccumulators, RejectMisuse) {
  detect::StreamingCarAccumulator car(kCarWindow, kCarSpacing, 10, 1);
  (void)car.finish();
  detect::StreamingCarAccumulator car2(kCarWindow, kCarSpacing, 10, 1);
  (void)car2.finish();
  EXPECT_THROW((void)car2.finish(), std::logic_error);
  EXPECT_THROW(detect::StreamingCarAccumulator(0, kCarSpacing, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(detect::StreamingCarAccumulator(kCarWindow, kCarWindow / 2, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(detect::StreamingCorrelatorAccumulator(0, 1e-9, 1),
               std::invalid_argument);
  EXPECT_THROW(detect::StreamingAllanAccumulator(0, 1), std::invalid_argument);
}

}  // namespace
