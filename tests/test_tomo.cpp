// Tests for quantum state tomography (S8): settings, projectors, count
// simulation, linear inversion, maximum likelihood.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/tomo/tomography.hpp"

namespace {

using namespace qfc;
using quantum::bell_phi;
using quantum::DensityMatrix;
using quantum::werner_phi;

TEST(Settings, CountAndContent) {
  const auto s1 = tomo::all_settings(1);
  ASSERT_EQ(s1.size(), 3u);
  EXPECT_EQ(s1[0].bases, "X");
  EXPECT_EQ(s1[2].bases, "Z");

  const auto s2 = tomo::all_settings(2);
  EXPECT_EQ(s2.size(), 9u);
  const auto s4 = tomo::all_settings(4);
  EXPECT_EQ(s4.size(), 81u);
}

TEST(Projectors, CompleteAndOrthogonal) {
  const tomo::MeasurementSetting s{"XY"};
  linalg::CMat sum(4, 4);
  for (std::size_t o = 0; o < 4; ++o) {
    const auto p = tomo::outcome_projector(s, o);
    sum += p;
    EXPECT_LT((p * p - p).max_abs(), 1e-12);  // idempotent
  }
  EXPECT_LT((sum - linalg::CMat::identity(4)).max_abs(), 1e-12);
  EXPECT_THROW(tomo::outcome_projector(s, 4), std::out_of_range);
}

TEST(Projectors, ZBasisIsComputational) {
  const tomo::MeasurementSetting s{"Z"};
  const auto p0 = tomo::outcome_projector(s, 0);
  EXPECT_NEAR(std::real(p0(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::real(p0(1, 1)), 0.0, 1e-12);
}

TEST(SimulateCounts, TotalsNearShots) {
  rng::Xoshiro256 g(1);
  const DensityMatrix rho{bell_phi()};
  const auto data = tomo::simulate_counts(rho, 1000.0, {}, g);
  ASSERT_EQ(data.size(), 9u);
  for (const auto& d : data)
    EXPECT_NEAR(static_cast<double>(d.total()), 1000.0, 5 * std::sqrt(1000.0));
}

TEST(SimulateCounts, ZZOnBellIsCorrelated) {
  rng::Xoshiro256 g(2);
  const DensityMatrix rho{bell_phi()};
  const auto data = tomo::simulate_counts(rho, 4000.0, {}, g);
  for (const auto& d : data) {
    if (d.setting.bases != "ZZ") continue;
    // Outcomes 00 and 11 only.
    EXPECT_GT(d.counts[0], 1500u);
    EXPECT_GT(d.counts[3], 1500u);
    EXPECT_EQ(d.counts[1], 0u);
    EXPECT_EQ(d.counts[2], 0u);
  }
}

TEST(LinearInversion, RecoversBellInNoiselessLimit) {
  rng::Xoshiro256 g(3);
  const DensityMatrix rho{bell_phi()};
  const auto data = tomo::simulate_counts(rho, 2e5, {}, g);
  const auto est = tomo::linear_inversion(data);
  EXPECT_LT((est - rho.matrix()).max_abs(), 0.02);
  EXPECT_NEAR(std::real(est.trace()), 1.0, 1e-9);
}

TEST(LinearInversion, CanBeNonPhysicalAtLowCounts) {
  // With few shots the linear estimate often has negative eigenvalues —
  // the reason MLE exists. (Not guaranteed per-seed, so only check that
  // the estimate is at least Hermitian/unit-trace and that projecting it
  // fixes any negativity.)
  rng::Xoshiro256 g(4);
  const DensityMatrix rho = werner_phi(0.9);
  const auto data = tomo::simulate_counts(rho, 30.0, {}, g);
  const auto est = tomo::linear_inversion(data);
  EXPECT_TRUE(linalg::is_hermitian(est, 1e-9));
  EXPECT_NEAR(std::real(est.trace()), 1.0, 1e-9);
  const auto proj = linalg::project_to_density_matrix(est);
  const auto evals = linalg::hermitian_eigenvalues(proj);
  for (double v : evals) EXPECT_GE(v, -1e-9);
}

TEST(Mle, ReconstructsBellWithHighFidelity) {
  rng::Xoshiro256 g(5);
  const DensityMatrix rho{bell_phi()};
  const auto data = tomo::simulate_counts(rho, 5000.0, {}, g);
  const auto mle = tomo::maximum_likelihood(data);
  EXPECT_TRUE(mle.converged);
  EXPECT_GT(quantum::fidelity(mle.rho, bell_phi()), 0.99);
}

TEST(Mle, ReconstructsWernerVisibility) {
  rng::Xoshiro256 g(6);
  const double v = 0.83;
  const DensityMatrix rho = werner_phi(v);
  const auto data = tomo::simulate_counts(rho, 10000.0, {}, g);
  const auto mle = tomo::maximum_likelihood(data);
  // Fidelity to the true state should be near 1; to the Bell state near
  // (1+3V)/4.
  EXPECT_GT(quantum::fidelity(mle.rho, rho), 0.995);
  EXPECT_NEAR(quantum::fidelity(mle.rho, bell_phi()), (1 + 3 * v) / 4, 0.02);
}

TEST(Mle, PhysicalEvenAtVeryLowCounts) {
  rng::Xoshiro256 g(7);
  const DensityMatrix rho = werner_phi(0.7);
  const auto data = tomo::simulate_counts(rho, 20.0, {}, g);
  const auto mle = tomo::maximum_likelihood(data);
  const auto evals = linalg::hermitian_eigenvalues(mle.rho.matrix());
  for (double e : evals) EXPECT_GE(e, -1e-9);
  EXPECT_NEAR(std::real(mle.rho.matrix().trace()), 1.0, 1e-6);
}

TEST(Mle, AnalyzerPhaseNoiseLowersFidelity) {
  rng::Xoshiro256 g1(8), g2(8);
  const DensityMatrix rho{bell_phi()};
  const auto clean = tomo::simulate_counts(rho, 3000.0, {}, g1);
  tomo::NoiseKnobs knobs;
  knobs.analyzer_phase_rms_rad = 0.5;
  const auto noisy = tomo::simulate_counts(rho, 3000.0, knobs, g2);
  const double f_clean =
      quantum::fidelity(tomo::maximum_likelihood(clean).rho, bell_phi());
  const double f_noisy =
      quantum::fidelity(tomo::maximum_likelihood(noisy).rho, bell_phi());
  EXPECT_GT(f_clean, f_noisy + 0.01);
}

TEST(Mle, FourQubitProductStateReconstruction) {
  rng::Xoshiro256 g(9);
  const DensityMatrix pair = werner_phi(0.9);
  const DensityMatrix four = pair.tensor(pair);
  const auto data = tomo::simulate_counts(four, 500.0, {}, g);
  ASSERT_EQ(data.size(), 81u);
  const auto mle = tomo::maximum_likelihood(data);
  EXPECT_GT(quantum::fidelity(mle.rho, four), 0.95);
}

TEST(Mle, LikelihoodIncreasesVsSeed) {
  // The RρR fixed point must beat (or match) the projected linear seed.
  rng::Xoshiro256 g(10);
  const DensityMatrix rho = werner_phi(0.6);
  const auto data = tomo::simulate_counts(rho, 200.0, {}, g);

  const auto seed_mat = linalg::project_to_density_matrix(tomo::linear_inversion(data));
  double ll_seed = 0;
  for (const auto& d : data)
    for (std::size_t o = 0; o < d.counts.size(); ++o) {
      if (d.counts[o] == 0) continue;
      const auto p = tomo::outcome_projector(d.setting, o);
      const double prob = std::max(1e-12, std::real((seed_mat * p).trace()));
      ll_seed += static_cast<double>(d.counts[o]) * std::log(prob);
    }
  const auto mle = tomo::maximum_likelihood(data);
  EXPECT_GE(mle.log_likelihood, ll_seed - 1e-6);
}

TEST(Tomography, RejectsBadInput) {
  EXPECT_THROW(tomo::linear_inversion({}), std::invalid_argument);
  EXPECT_THROW(tomo::all_settings(0), std::invalid_argument);
  rng::Xoshiro256 g(11);
  const DensityMatrix rho{bell_phi()};
  EXPECT_THROW(tomo::simulate_counts(rho, 0.0, {}, g), std::invalid_argument);
}

TEST(Tomography, RrrCoreValidatesTerms) {
  const linalg::CMat seed = linalg::CMat::identity(2) * linalg::cplx(0.5, 0);
  linalg::CMat p0(2, 2);
  p0(0, 0) = linalg::cplx(1, 0);
  // Empty / zero-count data has nothing to reconstruct from.
  EXPECT_THROW(tomo::rrr_reconstruct({}, seed), std::invalid_argument);
  // Mis-sized projectors and negative (background-subtracted) counts are
  // rejected rather than silently mis-normalizing the iteration.
  EXPECT_THROW(tomo::rrr_reconstruct({{linalg::CMat::identity(3), 10.0}}, seed),
               std::invalid_argument);
  EXPECT_THROW(tomo::rrr_reconstruct({{p0, 10.0}, {p0, -1.0}}, seed),
               std::invalid_argument);
  // A well-posed single-projector problem converges to that projector.
  const auto res = tomo::rrr_reconstruct({{p0, 100.0}}, seed);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(std::real(res.rho(0, 0)), 1.0, 1e-6);
}

// ------------------------------------------------------ batch sweep seams

TEST(Tomography, RrrBatchMatchesScalarBitwise) {
  // Each batch element must equal the scalar reconstruction exactly (the
  // fan-out only distributes whole problems over disjoint result slots).
  qfc::rng::Xoshiro256 g(55);
  std::vector<std::vector<tomo::ProjectorTerm>> problems;
  std::vector<linalg::CMat> seeds;
  for (double v : {1.0, 0.8, 0.6}) {
    const auto data = tomo::simulate_counts(werner_phi(v), 20000, {}, g);
    std::vector<tomo::ProjectorTerm> terms;
    for (const auto& d : data)
      for (std::size_t o = 0; o < d.counts.size(); ++o) {
        if (d.counts[o] == 0) continue;
        terms.push_back(tomo::ProjectorTerm{tomo::outcome_projector(d.setting, o),
                                            static_cast<double>(d.counts[o])});
      }
    problems.push_back(std::move(terms));
    seeds.push_back(
        linalg::project_to_density_matrix(tomo::linear_inversion(data)));
  }

  tomo::MleOptions opts;
  opts.convergence_tol = 1e-6;
  const auto batch = tomo::rrr_reconstruct_batch(problems, seeds, opts);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto single = tomo::rrr_reconstruct(problems[i], seeds[i], opts);
    EXPECT_EQ(single.iterations, batch[i].iterations) << "i=" << i;
    EXPECT_EQ(single.converged, batch[i].converged) << "i=" << i;
    EXPECT_EQ(single.log_likelihood, batch[i].log_likelihood) << "i=" << i;
    EXPECT_EQ(single.rho, batch[i].rho) << "i=" << i;
  }

  EXPECT_TRUE(tomo::rrr_reconstruct_batch({}, {}).empty());
  EXPECT_THROW(tomo::rrr_reconstruct_batch(problems, {}, opts),
               std::invalid_argument);
}

}  // namespace
