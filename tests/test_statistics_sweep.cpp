// Parameterized statistics sweeps: CAR analytics vs Monte Carlo across the
// (rate, background, window) space, tomography error scaling with shot
// count, and visibility-vs-noise behaviour — the quantitative backbone
// behind every measured number in EXPERIMENTS.md.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/detect/fit.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/timebin/chsh.hpp"
#include "qfc/timebin/franson.hpp"
#include "qfc/timebin/timebin_state.hpp"
#include "qfc/tomo/tomography.hpp"

namespace {

using namespace qfc;

// -------------------------------------------------------- CAR analytics

/// (pair rate Hz, background rate Hz, window ns)
class CarSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CarSweep, MonteCarloTracksAnalyticCar) {
  const auto [pair_rate, bg_rate, window_ns] = GetParam();
  rng::Xoshiro256 g(static_cast<std::uint64_t>(pair_rate + bg_rate + window_ns));

  const double duration = 40.0;
  detect::PairStreamParams p;
  p.pair_rate_hz = pair_rate;
  p.linewidth_hz = 300e6;  // coherence ~1 ns << window
  p.duration_s = duration;
  const auto s = detect::generate_pair_arrivals(p, g);

  auto bg_a = detect::generate_poisson_arrivals(bg_rate, duration, g);
  auto bg_b = detect::generate_poisson_arrivals(bg_rate, duration, g);
  auto a = s.a;
  a.insert(a.end(), bg_a.begin(), bg_a.end());
  std::sort(a.begin(), a.end());
  auto b = s.b;
  b.insert(b.end(), bg_b.begin(), bg_b.end());
  std::sort(b.begin(), b.end());

  const double window = window_ns * 1e-9;
  const auto car = detect::measure_car(a, b, window, 40 * window, 10);

  const double singles = pair_rate + bg_rate;
  const double analytic = pair_rate / (singles * singles * window) + 1.0;
  EXPECT_GT(car.car, 0.5 * analytic) << "analytic=" << analytic;
  EXPECT_LT(car.car, 2.0 * analytic + 3 * car.car_err) << "analytic=" << analytic;
}

INSTANTIATE_TEST_SUITE_P(
    RateBackgroundWindow, CarSweep,
    ::testing::Values(std::make_tuple(500.0, 2000.0, 10.0),
                      std::make_tuple(2000.0, 2000.0, 10.0),
                      std::make_tuple(500.0, 10000.0, 10.0),
                      std::make_tuple(2000.0, 5000.0, 25.0),
                      std::make_tuple(5000.0, 1000.0, 5.0),
                      std::make_tuple(1000.0, 20000.0, 50.0)));

// ---------------------------------------------- tomography error scaling

class TomoShotsSweep : public ::testing::TestWithParam<int> {};

TEST_P(TomoShotsSweep, InfidelityShrinksWithShots) {
  const int shots = GetParam();
  rng::Xoshiro256 g(static_cast<std::uint64_t>(shots) * 13 + 7);
  const auto rho = quantum::werner_phi(0.83);

  double infid_sum = 0;
  const int repeats = 3;
  for (int r = 0; r < repeats; ++r) {
    const auto data = tomo::simulate_counts(rho, shots, {}, g);
    const auto mle = tomo::maximum_likelihood(data);
    infid_sum += 1.0 - quantum::fidelity(mle.rho, rho);
  }
  const double infid = infid_sum / repeats;
  // Statistical scaling: infidelity bounded by ~c/sqrt(shots) with c ~ 1.5.
  EXPECT_LT(infid, 1.5 / std::sqrt(static_cast<double>(shots)) + 0.005)
      << "shots=" << shots;
}

INSTANTIATE_TEST_SUITE_P(Shots, TomoShotsSweep, ::testing::Values(50, 200, 800, 3200));

class TomoVisibilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(TomoVisibilitySweep, ReconstructedBellFidelityTracksWerner) {
  const double v = GetParam();
  rng::Xoshiro256 g(static_cast<std::uint64_t>(v * 1e4));
  const auto rho = quantum::werner_phi(v);
  const auto data = tomo::simulate_counts(rho, 3000.0, {}, g);
  const auto mle = tomo::maximum_likelihood(data);
  EXPECT_NEAR(quantum::fidelity(mle.rho, quantum::bell_phi()), (1 + 3 * v) / 4, 0.03)
      << "V=" << v;
  // Concurrence tracks max(0, (3V-1)/2).
  EXPECT_NEAR(quantum::concurrence(mle.rho), std::max(0.0, (3 * v - 1) / 2), 0.06)
      << "V=" << v;
}

INSTANTIATE_TEST_SUITE_P(Visibilities, TomoVisibilitySweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.83, 0.95, 1.0));

// -------------------------------------------- visibility / CHSH vs noise

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, ChshExactlyTracksStateVisibility) {
  const double mu = GetParam();
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = mu;
  m.phase_noise_rms_rad = 0.12;
  m.accidental_fraction = 0.0;
  const double v = timebin::state_visibility(m);
  const auto rho = timebin::noisy_pair_state(m);
  const auto s = timebin::optimal_settings_for_phi(0.0);
  EXPECT_NEAR(timebin::chsh_s_value(rho, s), 2 * std::sqrt(2.0) * v, 1e-9)
      << "mu=" << mu;
  // Violation iff V > 1/sqrt(2).
  EXPECT_EQ(timebin::chsh_s_value(rho, s) > 2.0, v > 1.0 / std::sqrt(2.0))
      << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(MultiPair, NoiseSweep,
                         ::testing::Values(0.0, 0.02, 0.08, 0.17, 0.25, 0.6, 1.5));

class PhaseNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PhaseNoiseSweep, DephasingFactorIsGaussian) {
  const double sigma = GetParam();
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = 0;
  m.phase_noise_rms_rad = sigma;
  m.accidental_fraction = 0;
  EXPECT_NEAR(timebin::state_visibility(m), std::exp(-sigma * sigma / 2), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PhaseRms, PhaseNoiseSweep,
                         ::testing::Values(0.0, 0.05, 0.12, 0.3, 0.7, 1.5));

// ------------------------------------------------ fringe-fit robustness

class FringeFitSweep : public ::testing::TestWithParam<double> {};

TEST_P(FringeFitSweep, FitRecoversVisibilityUnderPoissonNoise) {
  const double v = GetParam();
  rng::Xoshiro256 g(static_cast<std::uint64_t>(v * 1000) + 5);
  const auto rho = quantum::werner_phi(v);
  const auto scan = timebin::simulate_fringe(rho, 4.0e5, 0.0, 24, 1e-9, 0.3, g);
  const auto fit = detect::fit_sinusoid(scan.phase_rad, scan.counts);
  EXPECT_NEAR(fit.visibility, v, 0.03) << "V=" << v;
}

INSTANTIATE_TEST_SUITE_P(FringeVisibilities, FringeFitSweep,
                         ::testing::Values(0.2, 0.5, 0.707, 0.83, 0.95));

}  // namespace
