// Tests for the config/serialization layer (qfc::io JSON) and the
// scenario-sweep runner (qfc::sweep): round-trips, path-qualified config
// errors, axis expansion, worker-count bitwise parity, failure isolation,
// and adapter-vs-façade parity for every registered experiment.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/core/qkd_network.hpp"
#include "qfc/io/json.hpp"
#include "qfc/qudit/freq_bin_source.hpp"
#include "qfc/sweep/scenario.hpp"
#include "qfc/sweep/sweep.hpp"

namespace {

using namespace qfc;
using io::Json;
using io::JsonError;
using io::JsonView;

// --------------------------------------------------------------- io::Json

TEST(Json, ParseDumpRoundTripPreservesValuesAndOrder) {
  const std::string text =
      R"({"b":true,"a":null,"i":-42,"d":0.1,"s":"héllo \"x\"","arr":[1,2.5,"three",false],"o":{"nested":[{"k":1}]}})";
  const Json v = Json::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(Json::parse(v.dump()), v);
  // Member order is insertion (= author) order, not sorted.
  EXPECT_EQ(v.object_members()[0].first, "b");
  EXPECT_EQ(v.object_members()[1].first, "a");
  // Integer literals stay integers, decimals stay doubles.
  EXPECT_TRUE(v.find("i")->is_int());
  EXPECT_FALSE(v.find("d")->is_int());
  EXPECT_TRUE(v.find("d")->is_number());
}

TEST(Json, NumbersRoundTripBitExactly) {
  for (double d : {0.1, 1.0 / 3.0, 1e-308, 1.7976931348623157e308, -0.0,
                   123456789.123456789, 6.62607015e-34}) {
    const Json parsed = Json::parse(Json(d).dump());
    ASSERT_TRUE(parsed.is_number());
    EXPECT_EQ(parsed.number_value(), d) << Json(d).dump();
  }
  // Integer-valued doubles keep a ".0" marker so they re-parse as Double.
  EXPECT_EQ(Json(3.0).dump(), "3.0");
  EXPECT_FALSE(Json::parse("3.0").is_int());
  EXPECT_TRUE(Json::parse("3").is_int());
  EXPECT_EQ(Json::parse("9223372036854775807").int_value(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Json, IntAndDoubleAreDistinctValues) {
  EXPECT_NE(Json(3), Json(3.0));
  EXPECT_EQ(Json(3), Json(3));
  EXPECT_EQ(Json(3.0), Json(3.0));
}

TEST(Json, WriterRejectsNonFiniteAndNumberOrStringSanitizes) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Json(nan).dump(), JsonError);
  EXPECT_EQ(io::number_or_string(nan).dump(), "\"nan\"");
  EXPECT_EQ(io::number_or_string(inf).dump(), "\"inf\"");
  EXPECT_EQ(io::number_or_string(-inf).dump(), "\"-inf\"");
  EXPECT_EQ(io::number_or_string(2.5).dump(), "2.5");
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "duplicate key accepted";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(Json::parse("[1, 2,]"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("1e999"), JsonError);
}

TEST(JsonView, ErrorsNameTheExactPath) {
  const Json v = Json::parse(R"({"sweeps":[{"axes":[{"param":7}]}]})");
  const JsonView root(v);
  try {
    root.at("sweeps").at(0).at("axes").at(0).at("param").as_string();
    FAIL() << "type mismatch accepted";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.sweeps[0].axes[0].param"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
  // as_int is strict: a Double is a type error even when integer-valued.
  const Json d = Json::parse(R"({"count":3.0})");
  EXPECT_THROW(JsonView(d).at("count").as_int(), JsonError);
  EXPECT_THROW(JsonView(d).at("missing"), JsonError);
  const Json r = Json::parse(R"({"count":99})");
  EXPECT_THROW(JsonView(r).at("count").as_int_in(1, 64), JsonError);
  EXPECT_EQ(JsonView(r).at("count").as_int_in(1, 100), 99);
}

// ------------------------------------------------------- sweep expansion

Json parse_config(const std::string& text) { return Json::parse(text); }

TEST(SweepExpansion, CartesianProductLastAxisFastest) {
  const auto plan = sweep::expand_sweep_config(parse_config(R"({
    "sweeps": [{
      "scenario": "qkd_link_budget",
      "base": { "dark_rate_hz": 100.0 },
      "axes": [
        { "param": "distance_km", "values": [0.0, 10.0] },
        { "param": "detection_efficiency_scale", "linspace": {"start": 0.5, "stop": 1.0, "count": 3} }
      ]
    }]
  })"));
  ASSERT_EQ(plan.instances.size(), 6u);
  const auto value = [&](std::size_t i, const char* key) {
    return plan.instances[i].params.find(key)->number_value();
  };
  // Last axis fastest: scale cycles within each distance.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(value(i, "distance_km"), i < 3 ? 0.0 : 10.0);
    EXPECT_EQ(value(i, "dark_rate_hz"), 100.0);
  }
  EXPECT_EQ(value(0, "detection_efficiency_scale"), 0.5);
  EXPECT_EQ(value(1, "detection_efficiency_scale"), 0.75);
  EXPECT_EQ(value(2, "detection_efficiency_scale"), 1.0);  // endpoint exact
  EXPECT_EQ(value(3, "detection_efficiency_scale"), 0.5);
}

TEST(SweepExpansion, ConfigErrorsNameThePath) {
  // Unknown scenario: names the path and lists what is registered.
  try {
    sweep::expand_sweep_config(
        parse_config(R"({"sweeps":[{"scenario":"nope"}]})"));
    FAIL() << "unknown scenario accepted";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("$.sweeps[0].scenario"), std::string::npos) << what;
    EXPECT_NE(what.find("qkd_link_budget"), std::string::npos) << what;
  }
  // Unknown top-level / sweep-level keys.
  EXPECT_THROW(sweep::expand_sweep_config(parse_config(R"({"sweps":[]})")),
               JsonError);
  EXPECT_THROW(sweep::expand_sweep_config(parse_config(
                   R"({"sweeps":[{"scenario":"qudit_source","bass":{}}]})")),
               JsonError);
  // Axis must have exactly one of values / linspace, and values non-empty.
  EXPECT_THROW(
      sweep::expand_sweep_config(parse_config(
          R"({"sweeps":[{"scenario":"qudit_source","axes":[{"param":"dimension"}]}]})")),
      JsonError);
  EXPECT_THROW(
      sweep::expand_sweep_config(parse_config(
          R"({"sweeps":[{"scenario":"qudit_source","axes":[{"param":"dimension","values":[]}]}]})")),
      JsonError);
  // Instance cap: 101 x 101 > 10000 fails at expansion time.
  EXPECT_THROW(sweep::expand_sweep_config(parse_config(R"({
    "sweeps": [{"scenario": "qudit_source", "axes": [
      {"param": "a", "linspace": {"start": 0.0, "stop": 1.0, "count": 101}},
      {"param": "b", "linspace": {"start": 0.0, "stop": 1.0, "count": 101}}
    ]}]})")),
               JsonError);
}

TEST(SweepExpansion, UnknownParamKeyFailsTheInstanceWithItsPath) {
  const auto plan = sweep::expand_sweep_config(parse_config(
      R"({"sweeps":[{"scenario":"qudit_source","base":{"dimension":3,"pump_powr_w":0.01}}]})"));
  const auto report = sweep::run_sweep(plan, 1);
  EXPECT_EQ(report.num_failed, 1u);
  const std::string dumped = report.json.dump();
  EXPECT_NE(dumped.find("unknown key 'pump_powr_w'"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("$.sweeps[0].params"), std::string::npos) << dumped;
}

// ------------------------------------------------------------ sweep runs

const char* kParitySweep = R"({
  "sweeps": [
    {
      "scenario": "qkd_link_budget",
      "base": { "num_channel_pairs": 2 },
      "axes": [{ "param": "distance_km", "values": [0.0, 20.0, 40.0] }]
    },
    {
      "scenario": "qudit_source",
      "axes": [{ "param": "dimension", "values": [2, 4] }]
    },
    {
      "scenario": "stability_comparison",
      "base": { "observation_days": 0.25, "sample_interval_s": 900.0 }
    }
  ]
})";

TEST(SweepRun, ReportBytesIdenticalAcrossWorkerCounts) {
  const auto plan = sweep::expand_sweep_config(parse_config(kParitySweep));
  ASSERT_EQ(plan.instances.size(), 6u);
  const auto at1 = sweep::run_sweep(plan, 1);
  EXPECT_EQ(at1.num_failed, 0u);
  const std::string bytes1 = at1.json.dump(2);
  for (int workers : {2, 4}) {
    const std::string bytes = sweep::run_sweep(plan, workers).json.dump(2);
    EXPECT_EQ(bytes, bytes1) << "diverged at " << workers << " workers";
  }
}

TEST(SweepRun, ReportMatchesSerialAdapterInvocation) {
  // The merged report's result entries are exactly what calling each
  // registered adapter serially produces — fan-out adds nothing.
  const auto plan = sweep::expand_sweep_config(parse_config(kParitySweep));
  const auto report = sweep::run_sweep(plan, 4);
  const auto& entries = report.json.find("results")->array_items();
  ASSERT_EQ(entries.size(), plan.instances.size());
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto* scenario =
        sweep::ScenarioRegistry::instance().find(plan.instances[i].scenario);
    ASSERT_NE(scenario, nullptr);
    const Json direct = scenario->run(JsonView(plan.instances[i].params));
    EXPECT_EQ(*entries[i].find("result"), direct) << plan.instances[i].scenario;
  }
}

TEST(SweepRun, FailingInstanceIsIsolated) {
  // dark_rate_hz < 0 fails UserEndpointParams::validate inside the second
  // instance; its neighbors still run and the report keeps config order.
  const auto plan = sweep::expand_sweep_config(parse_config(R"({
    "sweeps": [{
      "scenario": "qkd_link_budget",
      "axes": [{ "param": "dark_rate_hz", "values": [100.0, -5.0, 300.0] }]
    }]
  })"));
  const auto report = sweep::run_sweep(plan, 2);
  EXPECT_EQ(report.num_scenarios, 3u);
  EXPECT_EQ(report.num_failed, 1u);
  const auto& entries = report.json.find("results")->array_items();
  EXPECT_TRUE(entries[0].find("ok")->bool_value());
  EXPECT_FALSE(entries[1].find("ok")->bool_value());
  EXPECT_TRUE(entries[2].find("ok")->bool_value());
  EXPECT_NE(entries[1].find("error")->string_value().find("dark rate"),
            std::string::npos);
  EXPECT_EQ(entries[1].find("result"), nullptr);
}

// --------------------------------------------- adapter-vs-façade parity

using core::PumpConfiguration;
using core::QuantumFrequencyComb;

Json run_adapter(const char* name, const std::string& params_text) {
  const auto* scenario = sweep::ScenarioRegistry::instance().find(name);
  EXPECT_NE(scenario, nullptr) << name;
  const Json params = Json::parse(params_text);
  return scenario->run(JsonView(params));
}

TEST(ScenarioParity, HeraldedChannelTable) {
  const Json via_sweep = run_adapter(
      "heralded_channel_table",
      R"({"duration_s": 0.05, "num_channel_pairs": 2, "seed": 7})");
  core::HeraldedConfig cfg;
  cfg.duration_s = 0.05;
  cfg.num_channel_pairs = 2;
  cfg.seed = 7;
  cfg.engine_threads = 1;
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
  auto exp = comb.heralded(cfg);
  Json direct = Json::make_object();
  Json channels = Json::make_array();
  for (const auto& r : exp.run_channel_table()) channels.push_back(r.to_json());
  direct.set("channels", std::move(channels));
  EXPECT_EQ(via_sweep, direct);
}

TEST(ScenarioParity, QkdLinkBudget) {
  const Json via_sweep =
      run_adapter("qkd_link_budget", R"({"distance_km": 25.0, "dark_rate_hz": 700.0})");
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  core::UserEndpointParams endpoint;
  endpoint.dark_rate_hz = 700.0;
  const core::MultiplexedQkdLink link(exp, endpoint);
  const auto& channels_json = via_sweep.find("channels")->array_items();
  const auto direct = link.all_channels(25.0);
  ASSERT_EQ(channels_json.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(channels_json[i], direct[i].to_json());
  EXPECT_EQ(via_sweep.find("aggregate_key_rate_bps")->number_value(),
            link.aggregate_key_rate_bps(25.0));
}

TEST(ScenarioParity, TimebinChsh) {
  const Json via_sweep = run_adapter(
      "timebin_chsh",
      R"({"channel": 1, "num_channel_pairs": 2, "fringe_points": 12, "seed": 3})");
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
  core::TimebinConfig cfg;
  cfg.pump = core::TimebinConfig::make_default_pump(comb.device());
  cfg.num_channel_pairs = 2;
  cfg.fringe_points = 12;
  cfg.seed = 3;
  auto exp = comb.timebin(cfg);
  EXPECT_EQ(via_sweep.find("channels")->array_items()[0],
            exp.run_channel(1).to_json());
}

TEST(ScenarioParity, Type2Car) {
  const Json via_sweep = run_adapter("type2_car", R"({"duration_s": 0.2})");
  core::Type2Config cfg;
  cfg.duration_s = 0.2;
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::CrossPolarized);
  auto exp = comb.type2(cfg);
  EXPECT_EQ(*via_sweep.find("car"), exp.run_car_measurement().to_json());
  EXPECT_EQ(via_sweep.find("opo_threshold_w")->number_value(), exp.opo_threshold_w());
}

TEST(ScenarioParity, StabilityComparison) {
  const Json via_sweep = run_adapter(
      "stability_comparison", R"({"observation_days": 0.25, "sample_interval_s": 900.0})");
  core::StabilityConfig cfg;
  cfg.observation_days = 0.25;
  cfg.sample_interval_s = 900.0;
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
  EXPECT_EQ(via_sweep, comb.stability(cfg).run().to_json());
}

TEST(ScenarioParity, FourPhoton) {
  const std::string params =
      R"({"fringe_points": 6, "fourfold_events_per_point": 30.0, "tomo_shots_per_setting": 40.0})";
  const Json via_sweep = run_adapter("four_photon", params);
  core::FourPhotonConfig cfg;
  cfg.fringe_points = 6;
  cfg.fourfold_events_per_point = 30.0;
  cfg.tomo_shots_per_setting = 40.0;
  auto comb =
      QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulseFourMode);
  EXPECT_EQ(via_sweep, comb.four_photon(cfg).run().to_json());
}

TEST(ScenarioParity, QkdNetwork) {
  const Json via_sweep = run_adapter(
      "qkd_network",
      R"({"num_users": 4, "max_distance_km": 20.0, "duration_s": 0.05, "stream_window_s": 0.025})");
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  auto cfg = core::QkdNetworkConfig::uniform(4, 20.0);
  cfg.stream_window_s = 0.025;
  cfg.analysis_threads = 1;
  const core::QkdNetwork network(exp, cfg);
  EXPECT_EQ(via_sweep, network.run(0.05).to_json());
}

TEST(ScenarioParity, QuditSource) {
  const Json via_sweep = run_adapter("qudit_source", R"({"dimension": 4})");
  core::HeraldedConfig cfg;
  cfg.num_channel_pairs = 4;
  auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
  auto exp = comb.heralded(cfg);
  const auto source = qudit::FreqBinSource::from_cw_source(exp.source(), 4);
  EXPECT_EQ(via_sweep.find("schmidt_number")->number_value(), source.schmidt_number());
  EXPECT_EQ(via_sweep.find("flattening_efficiency")->number_value(),
            source.shaping_efficiency(source.flattening_mask()));
}

// --------------------------------------------- façade config validation

TEST(FacadeConfigs, ValidateNamesTheOffendingField) {
  core::HeraldedConfig heralded;
  heralded.duration_s = -1;
  try {
    heralded.validate();
    FAIL() << "invalid config accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("HeraldedConfig.duration_s"),
              std::string::npos)
        << e.what();
  }
  core::Type2Config type2;
  type2.pump_power_total_w = 0;
  EXPECT_THROW(type2.validate(), std::invalid_argument);
  core::FourPhotonConfig four;
  four.pair_b = four.pair_a;
  EXPECT_THROW(four.validate(), std::invalid_argument);
  core::StabilityConfig stability;
  stability.sample_interval_s = 0;
  EXPECT_THROW(stability.validate(), std::invalid_argument);
  qudit::FreqBinConfig qudit_cfg;
  qudit_cfg.dimension = 1;
  EXPECT_THROW(qudit_cfg.validate(), std::invalid_argument);
}

}  // namespace
