// Backend parity and determinism tests for the linalg kernel-dispatch seam:
// the Blocked backend must match the Reference backend (eigenvalues,
// singular values, GEMM entries, reconstructions) to 1e-10 on seeded random
// inputs, and must be bitwise invariant across worker-thread counts.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/linalg/matrix_functions.hpp"

namespace {

using qfc::linalg::Backend;
using qfc::linalg::backend;
using qfc::linalg::BackendKind;
using qfc::linalg::CMat;
using qfc::linalg::cplx;
using qfc::linalg::EigOptions;
using qfc::linalg::RMat;
using qfc::linalg::RVec;

CMat random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = cplx(n(g), n(g));
  return m;
}

CMat random_hermitian(std::size_t n, unsigned seed) {
  return qfc::linalg::hermitian_part(random_matrix(n, n, seed));
}

RMat random_real(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  RMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = n(g);
  return m;
}

double max_abs_diff(const CMat& a, const CMat& b) { return (a - b).max_abs(); }

/// Restores the default backend and thread request on scope exit so tests
/// cannot leak configuration into each other (or clobber an operator's
/// QFC_LINALG_THREADS setting).
struct BackendGuard {
  BackendKind kind = qfc::linalg::default_backend();
  unsigned threads = qfc::linalg::backend_thread_request();
  ~BackendGuard() {
    qfc::linalg::set_default_backend(kind);
    qfc::linalg::set_backend_threads(threads);
  }
};

// ------------------------------------------------------------- dispatch

TEST(BackendDispatch, NamesAndSelection) {
  BackendGuard guard;
  EXPECT_STREQ(backend(BackendKind::Reference).name(), "reference");
  EXPECT_STREQ(backend(BackendKind::Blocked).name(), "blocked");
  EXPECT_STREQ(qfc::linalg::to_string(BackendKind::Blocked), "blocked");

  qfc::linalg::set_default_backend(BackendKind::Blocked);
  EXPECT_EQ(qfc::linalg::default_backend(), BackendKind::Blocked);
  EXPECT_STREQ(backend().name(), "blocked");
}

TEST(BackendDispatch, ParsesEnvStyleNames) {
  using qfc::linalg::detail::parse_backend;
  EXPECT_EQ(parse_backend("reference"), BackendKind::Reference);
  EXPECT_EQ(parse_backend("REF"), BackendKind::Reference);
  EXPECT_EQ(parse_backend("Blocked"), BackendKind::Blocked);
  EXPECT_EQ(parse_backend("lapack"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
}

TEST(BackendDispatch, OperatorStarRoutesThroughActiveBackend) {
  BackendGuard guard;
  const CMat a = random_matrix(60, 44, 11);
  const CMat b = random_matrix(44, 52, 12);
  qfc::linalg::set_default_backend(BackendKind::Reference);
  const CMat ref = a * b;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  const CMat blk = a * b;
  EXPECT_LT(max_abs_diff(ref, blk), 1e-10);
}

// ---------------------------------------------------------------- GEMM

TEST(BackendParity, GemmComplex) {
  const auto& ref = backend(BackendKind::Reference);
  const auto& blk = backend(BackendKind::Blocked);
  // Spans the naive-fallback cutoff and odd shapes on both sides of it.
  const std::size_t shapes[][3] = {{8, 8, 8}, {33, 47, 29}, {70, 50, 90}, {128, 64, 128}};
  for (const auto& s : shapes) {
    const CMat a = random_matrix(s[0], s[1], 100 + static_cast<unsigned>(s[0]));
    const CMat b = random_matrix(s[1], s[2], 200 + static_cast<unsigned>(s[2]));
    CMat cr(s[0], s[2]), cb(s[0], s[2]);
    ref.gemm(a, b, cr);
    blk.gemm(a, b, cb);
    EXPECT_LT(max_abs_diff(cr, cb), 1e-10) << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(BackendParity, GemmReal) {
  const RMat a = random_real(65, 80, 5);
  const RMat b = random_real(80, 77, 6);
  RMat cr(65, 77), cb(65, 77);
  backend(BackendKind::Reference).gemm(a, b, cr);
  backend(BackendKind::Blocked).gemm(a, b, cb);
  EXPECT_LT((cr - cb).max_abs(), 1e-10);
}

// ----------------------------------------------------------------- eig

TEST(BackendParity, HermitianEigValuesAndReconstruction) {
  const EigOptions opt;
  for (const std::size_t n : {24u, 48u, 96u}) {
    const CMat a = random_hermitian(n, 300 + static_cast<unsigned>(n));
    const auto er = backend(BackendKind::Reference).hermitian_eig(a, opt);
    const auto eb = backend(BackendKind::Blocked).hermitian_eig(a, opt);
    ASSERT_EQ(er.values.size(), n);
    ASSERT_EQ(eb.values.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(er.values[i], eb.values[i], 1e-10) << "n=" << n << " i=" << i;

    // Eigenvectors are only unique up to phase/degenerate mixing; compare
    // the reconstruction V diag(λ) V† instead.
    const CMat rec = backend(BackendKind::Blocked).scaled_congruence(eb.vectors, eb.values);
    EXPECT_LT(max_abs_diff(rec, a), 1e-10) << "n=" << n;
    EXPECT_TRUE(qfc::linalg::is_unitary(eb.vectors, 1e-10)) << "n=" << n;
  }
}

TEST(BackendParity, EigenvaluesOnlyPathMatches) {
  const CMat a = random_hermitian(64, 7);
  EigOptions no_vec;
  no_vec.want_vectors = false;
  const auto vr = backend(BackendKind::Reference).hermitian_eig(a, no_vec).values;
  const auto vb = backend(BackendKind::Blocked).hermitian_eig(a, no_vec).values;
  for (std::size_t i = 0; i < vr.size(); ++i) EXPECT_NEAR(vr[i], vb[i], 1e-10);
}

// ----------------------------------------------------------------- SVD

TEST(BackendParity, SvdRectangular) {
  // Tall, wide, and square — the wide case exercises the adjoint swap.
  const std::size_t shapes[][2] = {{64, 48}, {48, 64}, {60, 60}};
  for (const auto& s : shapes) {
    const CMat a = random_matrix(s[0], s[1], 400 + static_cast<unsigned>(s[0]));
    const auto sr = backend(BackendKind::Reference).svd(a, 96);
    const auto sb = backend(BackendKind::Blocked).svd(a, 96);
    ASSERT_EQ(sr.sigma.size(), sb.sigma.size());
    for (std::size_t i = 0; i < sr.sigma.size(); ++i)
      EXPECT_NEAR(sr.sigma[i], sb.sigma[i], 1e-10) << s[0] << "x" << s[1] << " i=" << i;

    // U Σ V† must reproduce A.
    CMat us = sb.u;
    for (std::size_t i = 0; i < us.rows(); ++i)
      for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= sb.sigma[j];
    CMat rec(a.rows(), a.cols());
    backend(BackendKind::Blocked).gemm(us, sb.v.adjoint(), rec);
    EXPECT_LT(max_abs_diff(rec, a), 1e-10) << s[0] << "x" << s[1];
  }
}

// ------------------------------------------------- scaled congruence

TEST(BackendParity, ScaledCongruence) {
  const std::size_t n = 72;
  const CMat v = backend(BackendKind::Reference).hermitian_eig(random_hermitian(n, 9), {}).vectors;
  RVec d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = std::sin(0.3 * static_cast<double>(i + 1));
  const CMat r = backend(BackendKind::Reference).scaled_congruence(v, d);
  const CMat b = backend(BackendKind::Blocked).scaled_congruence(v, d);
  EXPECT_LT(max_abs_diff(r, b), 1e-10);
  // Hermitian to round-off (the (i,j)/(j,i) triple products round
  // independently, so bitwise symmetry is not guaranteed — same as the
  // reference loop).
  EXPECT_TRUE(qfc::linalg::is_hermitian(b, 1e-12));
}

// ----------------------------------------------- thread-count invariance

TEST(BackendDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  BackendGuard guard;
  const CMat h = random_hermitian(80, 21);
  const CMat r = random_matrix(96, 56, 22);
  const CMat ga = random_matrix(90, 70, 23);
  const CMat gb = random_matrix(70, 85, 24);
  const auto& blk = backend(BackendKind::Blocked);

  qfc::linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(r, 96);
  CMat gemm1(90, 85);
  blk.gemm(ga, gb, gemm1);

  for (const unsigned threads : {2u, 4u}) {
    qfc::linalg::set_backend_threads(threads);
    EXPECT_EQ(qfc::linalg::backend_threads(), threads);
    const auto eig = blk.hermitian_eig(h, {});
    const auto svd = blk.svd(r, 96);
    CMat gemm(90, 85);
    blk.gemm(ga, gb, gemm);

    // Bitwise, not approximate: operator== compares every scalar exactly.
    EXPECT_EQ(eig1.values, eig.values) << threads << " threads";
    EXPECT_EQ(eig1.vectors, eig.vectors) << threads << " threads";
    EXPECT_EQ(svd1.sigma, svd.sigma) << threads << " threads";
    EXPECT_EQ(svd1.u, svd.u) << threads << " threads";
    EXPECT_EQ(svd1.v, svd.v) << threads << " threads";
    EXPECT_EQ(gemm1, gemm) << threads << " threads";
  }
}

TEST(BackendDeterminism, BlockedKernelsUnchangedAfterPoolRelocation) {
  // Regression pin for the WorkerPool move from src/qfc/linalg/ to the
  // shared src/qfc/parallel/ module (and the GEMM fan-out's switch to
  // parallel::parallel_for_chunks): on fresh seeded inputs, the Blocked
  // kernels must still match Reference to 1e-10 and stay bitwise invariant
  // from 1 worker to many, including a worker count that does not divide
  // the row-chunk count.
  BackendGuard guard;
  const CMat h = random_hermitian(56, 71);
  const CMat a = random_matrix(83, 61, 72);
  const CMat b = random_matrix(61, 77, 73);
  const auto& blk = backend(BackendKind::Blocked);
  const auto& ref = backend(BackendKind::Reference);

  qfc::linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(a, 96);
  CMat gemm1(83, 77);
  blk.gemm(a, b, gemm1);

  qfc::linalg::set_backend_threads(5);
  const auto eig5 = blk.hermitian_eig(h, {});
  const auto svd5 = blk.svd(a, 96);
  CMat gemm5(83, 77);
  blk.gemm(a, b, gemm5);

  EXPECT_EQ(eig1.values, eig5.values);
  EXPECT_EQ(eig1.vectors, eig5.vectors);
  EXPECT_EQ(svd1.sigma, svd5.sigma);
  EXPECT_EQ(svd1.u, svd5.u);
  EXPECT_EQ(gemm1, gemm5);

  const auto eig_ref = ref.hermitian_eig(h, {});
  for (std::size_t i = 0; i < eig_ref.values.size(); ++i)
    EXPECT_NEAR(eig_ref.values[i], eig1.values[i], 1e-10);
  CMat gemm_ref(83, 77);
  ref.gemm(a, b, gemm_ref);
  EXPECT_LT(max_abs_diff(gemm_ref, gemm1), 1e-10);
}

// ------------------------------------------------- consumers stay green

TEST(BackendIntegration, MatrixFunctionsUnderBlockedBackend) {
  BackendGuard guard;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  const std::size_t n = 48;
  CMat a = random_hermitian(n, 31);
  CMat aa(n, n);
  backend().gemm(a, a, aa);  // a² is PSD with a well-defined square root
  const CMat root = qfc::linalg::sqrtm_psd(aa);
  CMat square(n, n);
  backend().gemm(root, root, square);
  EXPECT_LT(max_abs_diff(square, aa), 1e-8);
}

TEST(BackendIntegration, ValidationStillAppliesUnderBlockedBackend) {
  BackendGuard guard;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  CMat not_hermitian = random_matrix(50, 50, 41);
  EXPECT_THROW(qfc::linalg::hermitian_eig(not_hermitian), std::invalid_argument);
  EXPECT_THROW(qfc::linalg::svd(CMat()), std::invalid_argument);
}

}  // namespace
