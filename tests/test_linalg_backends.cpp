// Backend parity and determinism tests for the linalg kernel-dispatch seam:
// the Blocked backend must match the Reference backend (eigenvalues,
// singular values, GEMM entries, reconstructions) to 1e-10 on seeded random
// inputs, and must be bitwise invariant across worker-thread counts.

#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/linalg/matrix.hpp"
#include "qfc/linalg/matrix_functions.hpp"

namespace {

using qfc::linalg::Backend;
using qfc::linalg::backend;
using qfc::linalg::BackendKind;
using qfc::linalg::CMat;
using qfc::linalg::cplx;
using qfc::linalg::EigOptions;
using qfc::linalg::RMat;
using qfc::linalg::RVec;

CMat random_matrix(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  CMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = cplx(n(g), n(g));
  return m;
}

CMat random_hermitian(std::size_t n, unsigned seed) {
  return qfc::linalg::hermitian_part(random_matrix(n, n, seed));
}

RMat random_real(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937 g(seed);
  std::normal_distribution<double> n(0.0, 1.0);
  RMat m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = n(g);
  return m;
}

double max_abs_diff(const CMat& a, const CMat& b) { return (a - b).max_abs(); }

/// Restores the default backend and thread request on scope exit so tests
/// cannot leak configuration into each other (or clobber an operator's
/// QFC_LINALG_THREADS setting).
struct BackendGuard {
  BackendKind kind = qfc::linalg::default_backend();
  unsigned threads = qfc::linalg::backend_thread_request();
  ~BackendGuard() {
    qfc::linalg::set_default_backend(kind);
    qfc::linalg::set_backend_threads(threads);
  }
};

// ------------------------------------------------------------- dispatch

TEST(BackendDispatch, NamesAndSelection) {
  BackendGuard guard;
  EXPECT_STREQ(backend(BackendKind::Reference).name(), "reference");
  EXPECT_STREQ(backend(BackendKind::Blocked).name(), "blocked");
  EXPECT_STREQ(qfc::linalg::to_string(BackendKind::Blocked), "blocked");

  qfc::linalg::set_default_backend(BackendKind::Blocked);
  EXPECT_EQ(qfc::linalg::default_backend(), BackendKind::Blocked);
  EXPECT_STREQ(backend().name(), "blocked");
}

TEST(BackendDispatch, ParsesEnvStyleNames) {
  using qfc::linalg::detail::parse_backend;
  EXPECT_EQ(parse_backend("reference"), BackendKind::Reference);
  EXPECT_EQ(parse_backend("REF"), BackendKind::Reference);
  EXPECT_EQ(parse_backend("Blocked"), BackendKind::Blocked);
  EXPECT_EQ(parse_backend("lapack"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
}

TEST(BackendDispatch, OperatorStarRoutesThroughActiveBackend) {
  BackendGuard guard;
  const CMat a = random_matrix(60, 44, 11);
  const CMat b = random_matrix(44, 52, 12);
  qfc::linalg::set_default_backend(BackendKind::Reference);
  const CMat ref = a * b;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  const CMat blk = a * b;
  EXPECT_LT(max_abs_diff(ref, blk), 1e-10);
}

// ---------------------------------------------------------------- GEMM

TEST(BackendParity, GemmComplex) {
  const auto& ref = backend(BackendKind::Reference);
  const auto& blk = backend(BackendKind::Blocked);
  // Spans the naive-fallback cutoff and odd shapes on both sides of it.
  const std::size_t shapes[][3] = {{8, 8, 8}, {33, 47, 29}, {70, 50, 90}, {128, 64, 128}};
  for (const auto& s : shapes) {
    const CMat a = random_matrix(s[0], s[1], 100 + static_cast<unsigned>(s[0]));
    const CMat b = random_matrix(s[1], s[2], 200 + static_cast<unsigned>(s[2]));
    CMat cr(s[0], s[2]), cb(s[0], s[2]);
    ref.gemm(a, b, cr);
    blk.gemm(a, b, cb);
    EXPECT_LT(max_abs_diff(cr, cb), 1e-10) << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(BackendParity, GemmReal) {
  const RMat a = random_real(65, 80, 5);
  const RMat b = random_real(80, 77, 6);
  RMat cr(65, 77), cb(65, 77);
  backend(BackendKind::Reference).gemm(a, b, cr);
  backend(BackendKind::Blocked).gemm(a, b, cb);
  EXPECT_LT((cr - cb).max_abs(), 1e-10);
}

// ----------------------------------------------------------------- eig

TEST(BackendParity, HermitianEigValuesAndReconstruction) {
  const EigOptions opt;
  for (const std::size_t n : {24u, 48u, 96u}) {
    const CMat a = random_hermitian(n, 300 + static_cast<unsigned>(n));
    const auto er = backend(BackendKind::Reference).hermitian_eig(a, opt);
    const auto eb = backend(BackendKind::Blocked).hermitian_eig(a, opt);
    ASSERT_EQ(er.values.size(), n);
    ASSERT_EQ(eb.values.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(er.values[i], eb.values[i], 1e-10) << "n=" << n << " i=" << i;

    // Eigenvectors are only unique up to phase/degenerate mixing; compare
    // the reconstruction V diag(λ) V† instead.
    const CMat rec = backend(BackendKind::Blocked).scaled_congruence(eb.vectors, eb.values);
    EXPECT_LT(max_abs_diff(rec, a), 1e-10) << "n=" << n;
    EXPECT_TRUE(qfc::linalg::is_unitary(eb.vectors, 1e-10)) << "n=" << n;
  }
}

TEST(BackendParity, EigenvaluesOnlyPathMatches) {
  const CMat a = random_hermitian(64, 7);
  EigOptions no_vec;
  no_vec.want_vectors = false;
  const auto vr = backend(BackendKind::Reference).hermitian_eig(a, no_vec).values;
  const auto vb = backend(BackendKind::Blocked).hermitian_eig(a, no_vec).values;
  for (std::size_t i = 0; i < vr.size(); ++i) EXPECT_NEAR(vr[i], vb[i], 1e-10);
}

// ----------------------------------------------------------------- SVD

TEST(BackendParity, SvdRectangular) {
  // Tall, wide, and square — the wide case exercises the adjoint swap.
  const std::size_t shapes[][2] = {{64, 48}, {48, 64}, {60, 60}};
  for (const auto& s : shapes) {
    const CMat a = random_matrix(s[0], s[1], 400 + static_cast<unsigned>(s[0]));
    const auto sr = backend(BackendKind::Reference).svd(a, 96);
    const auto sb = backend(BackendKind::Blocked).svd(a, 96);
    ASSERT_EQ(sr.sigma.size(), sb.sigma.size());
    for (std::size_t i = 0; i < sr.sigma.size(); ++i)
      EXPECT_NEAR(sr.sigma[i], sb.sigma[i], 1e-10) << s[0] << "x" << s[1] << " i=" << i;

    // U Σ V† must reproduce A.
    CMat us = sb.u;
    for (std::size_t i = 0; i < us.rows(); ++i)
      for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= sb.sigma[j];
    CMat rec(a.rows(), a.cols());
    backend(BackendKind::Blocked).gemm(us, sb.v.adjoint(), rec);
    EXPECT_LT(max_abs_diff(rec, a), 1e-10) << s[0] << "x" << s[1];
  }
}

// ------------------------------------------------- scaled congruence

TEST(BackendParity, ScaledCongruence) {
  const std::size_t n = 72;
  const CMat v = backend(BackendKind::Reference).hermitian_eig(random_hermitian(n, 9), {}).vectors;
  RVec d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = std::sin(0.3 * static_cast<double>(i + 1));
  const CMat r = backend(BackendKind::Reference).scaled_congruence(v, d);
  const CMat b = backend(BackendKind::Blocked).scaled_congruence(v, d);
  EXPECT_LT(max_abs_diff(r, b), 1e-10);
  // Hermitian to round-off (the (i,j)/(j,i) triple products round
  // independently, so bitwise symmetry is not guaranteed — same as the
  // reference loop).
  EXPECT_TRUE(qfc::linalg::is_hermitian(b, 1e-12));
}

// ----------------------------------------------- thread-count invariance

TEST(BackendDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  BackendGuard guard;
  const CMat h = random_hermitian(80, 21);
  const CMat r = random_matrix(96, 56, 22);
  const CMat ga = random_matrix(90, 70, 23);
  const CMat gb = random_matrix(70, 85, 24);
  const auto& blk = backend(BackendKind::Blocked);

  qfc::linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(r, 96);
  CMat gemm1(90, 85);
  blk.gemm(ga, gb, gemm1);

  for (const unsigned threads : {2u, 4u}) {
    qfc::linalg::set_backend_threads(threads);
    EXPECT_EQ(qfc::linalg::backend_threads(), threads);
    const auto eig = blk.hermitian_eig(h, {});
    const auto svd = blk.svd(r, 96);
    CMat gemm(90, 85);
    blk.gemm(ga, gb, gemm);

    // Bitwise, not approximate: operator== compares every scalar exactly.
    EXPECT_EQ(eig1.values, eig.values) << threads << " threads";
    EXPECT_EQ(eig1.vectors, eig.vectors) << threads << " threads";
    EXPECT_EQ(svd1.sigma, svd.sigma) << threads << " threads";
    EXPECT_EQ(svd1.u, svd.u) << threads << " threads";
    EXPECT_EQ(svd1.v, svd.v) << threads << " threads";
    EXPECT_EQ(gemm1, gemm) << threads << " threads";
  }
}

TEST(BackendDeterminism, BlockedKernelsUnchangedAfterPoolRelocation) {
  // Regression pin for the WorkerPool move from src/qfc/linalg/ to the
  // shared src/qfc/parallel/ module (and the GEMM fan-out's switch to
  // parallel::parallel_for_chunks): on fresh seeded inputs, the Blocked
  // kernels must still match Reference to 1e-10 and stay bitwise invariant
  // from 1 worker to many, including a worker count that does not divide
  // the row-chunk count.
  BackendGuard guard;
  const CMat h = random_hermitian(56, 71);
  const CMat a = random_matrix(83, 61, 72);
  const CMat b = random_matrix(61, 77, 73);
  const auto& blk = backend(BackendKind::Blocked);
  const auto& ref = backend(BackendKind::Reference);

  qfc::linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig(h, {});
  const auto svd1 = blk.svd(a, 96);
  CMat gemm1(83, 77);
  blk.gemm(a, b, gemm1);

  qfc::linalg::set_backend_threads(5);
  const auto eig5 = blk.hermitian_eig(h, {});
  const auto svd5 = blk.svd(a, 96);
  CMat gemm5(83, 77);
  blk.gemm(a, b, gemm5);

  EXPECT_EQ(eig1.values, eig5.values);
  EXPECT_EQ(eig1.vectors, eig5.vectors);
  EXPECT_EQ(svd1.sigma, svd5.sigma);
  EXPECT_EQ(svd1.u, svd5.u);
  EXPECT_EQ(gemm1, gemm5);

  const auto eig_ref = ref.hermitian_eig(h, {});
  for (std::size_t i = 0; i < eig_ref.values.size(); ++i)
    EXPECT_NEAR(eig_ref.values[i], eig1.values[i], 1e-10);
  CMat gemm_ref(83, 77);
  ref.gemm(a, b, gemm_ref);
  EXPECT_LT(max_abs_diff(gemm_ref, gemm1), 1e-10);
}

// ------------------------------------------------- consumers stay green

TEST(BackendIntegration, MatrixFunctionsUnderBlockedBackend) {
  BackendGuard guard;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  const std::size_t n = 48;
  CMat a = random_hermitian(n, 31);
  CMat aa(n, n);
  backend().gemm(a, a, aa);  // a² is PSD with a well-defined square root
  const CMat root = qfc::linalg::sqrtm_psd(aa);
  CMat square(n, n);
  backend().gemm(root, root, square);
  EXPECT_LT(max_abs_diff(square, aa), 1e-8);
}

TEST(BackendIntegration, ValidationStillAppliesUnderBlockedBackend) {
  BackendGuard guard;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  CMat not_hermitian = random_matrix(50, 50, 41);
  EXPECT_THROW(qfc::linalg::hermitian_eig(not_hermitian), std::invalid_argument);
  EXPECT_THROW(qfc::linalg::svd(CMat()), std::invalid_argument);
}

// --------------------------------------------------------- default backend

TEST(BackendDispatch, ProcessDefaultIsBlocked) {
  // Blocked wins on every benched kernel and dimension (see
  // BENCH_linalg.json), so it is the process default. QFC_LINALG_BACKEND
  // still overrides — skip the pin when the environment sets it.
  if (std::getenv("QFC_LINALG_BACKEND") == nullptr) {
    EXPECT_EQ(qfc::linalg::default_backend(), BackendKind::Blocked);
  }
}

// ------------------------------------------------------------------ kron

TEST(BackendParity, KronBitwiseAcrossBackendsAndInlinePath) {
  // The kron micro-kernel is in the bitwise SIMD tier: Blocked must equal
  // Reference exactly, which in turn equals the inline matrix.hpp loop.
  const CMat a = random_matrix(12, 9, 501);
  const CMat b = random_matrix(10, 14, 502);
  CMat kr(120, 126), kb(120, 126);
  backend(BackendKind::Reference).kron(a, b, kr);
  backend(BackendKind::Blocked).kron(a, b, kb);
  EXPECT_EQ(kr, kb);

  CMat inline_loop(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          inline_loop(i * b.rows() + k, j * b.cols() + l) = a(i, j) * b(k, l);
  EXPECT_EQ(kr, inline_loop);

  const RMat ra = random_real(11, 7, 503);
  const RMat rb = random_real(9, 13, 504);
  RMat rr(99, 91), rbk(99, 91);
  backend(BackendKind::Reference).kron(ra, rb, rr);
  backend(BackendKind::Blocked).kron(ra, rb, rbk);
  EXPECT_EQ(rr, rbk);
}

TEST(BackendParity, KronDispatchCutoffIsSeamless) {
  // linalg::kron switches from the inline loop to the backend seam above
  // 1024 output elements; results on both sides of the cutoff must equal
  // the direct definition bitwise (the seam kernels share its arithmetic).
  BackendGuard guard;
  qfc::linalg::set_default_backend(BackendKind::Blocked);
  for (const std::size_t nb : {8u, 9u}) {  // 4·4·8·8 = 1024 (inline), 1152 (seam)
    const CMat a = random_matrix(4, 4, 510);
    const CMat b = random_matrix(8, nb, 511 + static_cast<unsigned>(nb));
    const CMat out = qfc::linalg::kron(a, b);
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j)
        for (std::size_t k = 0; k < b.rows(); ++k)
          for (std::size_t l = 0; l < b.cols(); ++l)
            ASSERT_EQ(out(i * b.rows() + k, j * b.cols() + l), a(i, j) * b(k, l))
                << "nb=" << nb;
  }
}

// ----------------------------------------------------------------- batch

TEST(BackendBatch, EigBatchMatchesPerMatrixBitwise) {
  const EigOptions opt;
  std::vector<CMat> as;
  for (unsigned i = 0; i < 12; ++i) as.push_back(random_hermitian(16, 600 + i));
  const auto& blk = backend(BackendKind::Blocked);
  const auto batch = blk.hermitian_eig_batch(as, opt);
  ASSERT_EQ(batch.size(), as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    const auto single = blk.hermitian_eig(as[i], opt);
    EXPECT_EQ(single.values, batch[i].values) << "i=" << i;
    EXPECT_EQ(single.vectors, batch[i].vectors) << "i=" << i;
    const auto ref = backend(BackendKind::Reference).hermitian_eig(as[i], opt);
    for (std::size_t k = 0; k < ref.values.size(); ++k)
      EXPECT_NEAR(ref.values[k], batch[i].values[k], 1e-10) << "i=" << i;
  }
}

TEST(BackendBatch, SvdBatchMatchesPerMatrixBitwise) {
  std::vector<CMat> as;
  for (unsigned i = 0; i < 8; ++i) as.push_back(random_matrix(20, 14, 640 + i));
  const auto& blk = backend(BackendKind::Blocked);
  const auto batch = blk.svd_batch(as, 96);
  ASSERT_EQ(batch.size(), as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    const auto single = blk.svd(as[i], 96);
    EXPECT_EQ(single.sigma, batch[i].sigma) << "i=" << i;
    EXPECT_EQ(single.u, batch[i].u) << "i=" << i;
    EXPECT_EQ(single.v, batch[i].v) << "i=" << i;
    const auto ref = backend(BackendKind::Reference).svd(as[i], 96);
    for (std::size_t k = 0; k < ref.sigma.size(); ++k)
      EXPECT_NEAR(ref.sigma[k], batch[i].sigma[k], 1e-10) << "i=" << i;
  }
}

TEST(BackendBatch, GemmBatchMatchesPerMatrix) {
  std::vector<CMat> as, bs;
  for (unsigned i = 0; i < 6; ++i) {
    as.push_back(random_matrix(10 + i, 8, 660 + i));
    bs.push_back(random_matrix(8, 12 + i, 680 + i));
  }
  const auto& blk = backend(BackendKind::Blocked);
  const auto batch = blk.gemm_batch(as, bs);
  ASSERT_EQ(batch.size(), as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    CMat single(as[i].rows(), bs[i].cols());
    blk.gemm(as[i], bs[i], single);
    EXPECT_EQ(single, batch[i]) << "i=" << i;
  }
}

TEST(BackendBatch, EmptyAndMixedDimensionBatches) {
  const auto& blk = backend(BackendKind::Blocked);
  EXPECT_TRUE(blk.hermitian_eig_batch({}, {}).empty());
  EXPECT_TRUE(blk.svd_batch({}, 96).empty());
  EXPECT_TRUE(blk.gemm_batch({}, {}).empty());

  // Mixed dimensions in one batch: each element follows its own shape.
  std::vector<CMat> as = {random_hermitian(4, 700), random_hermitian(17, 701),
                          random_hermitian(48, 702)};
  const auto eig = blk.hermitian_eig_batch(as, {});
  ASSERT_EQ(eig.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(eig[i].values.size(), as[i].rows()) << "i=" << i;
    const CMat rec = blk.scaled_congruence(eig[i].vectors, eig[i].values);
    EXPECT_LT(max_abs_diff(rec, as[i]), 1e-10) << "i=" << i;
  }

  std::vector<CMat> rect = {random_matrix(6, 10, 710), random_matrix(30, 12, 711)};
  const auto svds = blk.svd_batch(rect, 96);
  ASSERT_EQ(svds.size(), 2u);
  EXPECT_EQ(svds[0].sigma.size(), 6u);
  EXPECT_EQ(svds[1].sigma.size(), 12u);
}

TEST(BackendBatch, FreeFunctionsValidate) {
  // The free entry points validate like their scalar counterparts.
  std::vector<CMat> bad = {random_matrix(8, 8, 720)};  // not Hermitian
  EXPECT_THROW(qfc::linalg::hermitian_eig_batch(bad), std::invalid_argument);
  std::vector<CMat> as = {random_matrix(4, 5, 721)};
  std::vector<CMat> bs = {random_matrix(6, 3, 722)};  // inner-dim mismatch
  EXPECT_THROW(qfc::linalg::gemm_batch(as, bs), std::invalid_argument);
}

TEST(BackendBatch, BitwiseIdenticalAcrossThreadCounts) {
  BackendGuard guard;
  std::vector<CMat> hs, rects, gas, gbs;
  for (unsigned i = 0; i < 10; ++i) {
    hs.push_back(random_hermitian(16, 800 + i));
    rects.push_back(random_matrix(12, 9, 820 + i));
    gas.push_back(random_matrix(11, 7, 840 + i));
    gbs.push_back(random_matrix(7, 13, 860 + i));
  }
  const auto& blk = backend(BackendKind::Blocked);

  qfc::linalg::set_backend_threads(1);
  const auto eig1 = blk.hermitian_eig_batch(hs, {});
  const auto svd1 = blk.svd_batch(rects, 96);
  const auto gemm1 = blk.gemm_batch(gas, gbs);

  for (const unsigned threads : {2u, 4u}) {
    qfc::linalg::set_backend_threads(threads);
    const auto eig = blk.hermitian_eig_batch(hs, {});
    const auto svd = blk.svd_batch(rects, 96);
    const auto gemm = blk.gemm_batch(gas, gbs);
    for (std::size_t i = 0; i < hs.size(); ++i) {
      EXPECT_EQ(eig1[i].values, eig[i].values) << threads << " threads, i=" << i;
      EXPECT_EQ(eig1[i].vectors, eig[i].vectors) << threads << " threads, i=" << i;
      EXPECT_EQ(svd1[i].sigma, svd[i].sigma) << threads << " threads, i=" << i;
      EXPECT_EQ(svd1[i].u, svd[i].u) << threads << " threads, i=" << i;
      EXPECT_EQ(svd1[i].v, svd[i].v) << threads << " threads, i=" << i;
      EXPECT_EQ(gemm1[i], gemm[i]) << threads << " threads, i=" << i;
    }
  }
}

// ------------------------------------------------------------ SIMD policy

/// Restores the SIMD request on scope exit.
struct SimdGuard {
  bool on = qfc::linalg::simd_request();
  ~SimdGuard() { qfc::linalg::set_simd_enabled(on); }
};

TEST(BackendSimd, EigAndKronBitwiseAcrossSimdModes) {
  // Policy pin: the rotation and kron kernels replicate scalar complex
  // arithmetic exactly (mul/addsub, no FMA), so eig and kron are bitwise
  // identical with SIMD on and off. On hardware without AVX2 both runs are
  // scalar and the assertions hold trivially.
  SimdGuard guard;
  const CMat h = random_hermitian(64, 900);     // round-robin path
  const CMat hs = random_hermitian(24, 901);    // cyclic path
  const CMat ka = random_matrix(10, 10, 902);
  const CMat kb = random_matrix(12, 12, 903);
  const auto& blk = backend(BackendKind::Blocked);

  qfc::linalg::set_simd_enabled(false);
  const auto eig_off = blk.hermitian_eig(h, {});
  const auto eig_small_off = blk.hermitian_eig(hs, {});
  CMat kron_off(120, 120);
  blk.kron(ka, kb, kron_off);

  qfc::linalg::set_simd_enabled(true);
  const auto eig_on = blk.hermitian_eig(h, {});
  const auto eig_small_on = blk.hermitian_eig(hs, {});
  CMat kron_on(120, 120);
  blk.kron(ka, kb, kron_on);

  EXPECT_EQ(eig_off.values, eig_on.values);
  EXPECT_EQ(eig_off.vectors, eig_on.vectors);
  EXPECT_EQ(eig_small_off.values, eig_small_on.values);
  EXPECT_EQ(eig_small_off.vectors, eig_small_on.vectors);
  EXPECT_EQ(kron_off, kron_on);
}

TEST(BackendSimd, GemmAndSvdStayWithinToleranceAcrossSimdModes) {
  // Policy pin: the planar-FMA GEMM and the vectorized SVD Gram reductions
  // reorder accumulation, so they carry the relaxed 1e-10 contract (the
  // small-GEMM axpy path below the cutoff stays bitwise).
  SimdGuard guard;
  const CMat a = random_matrix(48, 48, 910);
  const CMat b = random_matrix(48, 48, 911);
  const CMat small_a = random_matrix(8, 8, 912);
  const CMat small_b = random_matrix(8, 8, 913);
  const CMat r = random_matrix(40, 32, 914);
  const auto& blk = backend(BackendKind::Blocked);

  qfc::linalg::set_simd_enabled(false);
  CMat gemm_off(48, 48), small_off(8, 8);
  blk.gemm(a, b, gemm_off);
  blk.gemm(small_a, small_b, small_off);
  const auto svd_off = blk.svd(r, 96);

  qfc::linalg::set_simd_enabled(true);
  CMat gemm_on(48, 48), small_on(8, 8);
  blk.gemm(a, b, gemm_on);
  blk.gemm(small_a, small_b, small_on);
  const auto svd_on = blk.svd(r, 96);

  EXPECT_LT(max_abs_diff(gemm_off, gemm_on), 1e-10);
  EXPECT_EQ(small_off, small_on);  // axpy path: bitwise even with SIMD
  ASSERT_EQ(svd_off.sigma.size(), svd_on.sigma.size());
  for (std::size_t i = 0; i < svd_off.sigma.size(); ++i)
    EXPECT_NEAR(svd_off.sigma[i], svd_on.sigma[i], 1e-10);
}

TEST(BackendSimd, BlockedMatchesReferenceWithSimdDisabled) {
  // With SIMD off the Blocked eig below the cyclic cutoff IS the reference
  // sweep: bitwise equality, not just 1e-10.
  SimdGuard guard;
  qfc::linalg::set_simd_enabled(false);
  const CMat h = random_hermitian(24, 920);
  const auto er = backend(BackendKind::Reference).hermitian_eig(h, {});
  const auto eb = backend(BackendKind::Blocked).hermitian_eig(h, {});
  EXPECT_EQ(er.values, eb.values);
  EXPECT_EQ(er.vectors, eb.vectors);
}

}  // namespace
