// Cross-module integration tests: full pipelines mirroring the paper's
// sections end to end, and consistency checks between independent layers
// (analytics vs Monte-Carlo, physics vs reconstruction).

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/fock.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/quantum/witness.hpp"
#include "qfc/timebin/arrival_histogram.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/sfwm/jsa.hpp"
#include "qfc/sfwm/phase_matching.hpp"
#include "qfc/timebin/multiphoton.hpp"
#include "qfc/tomo/tomography.hpp"

namespace {

using namespace qfc;
using core::QuantumFrequencyComb;

TEST(Integration, SectionII_FullChainLandsInPaperRanges) {
  // Device -> SFWM -> streams -> detectors -> CAR analysis, checked against
  // the analytic expectation computed from the same parameters.
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.duration_s = 20.0;
  cfg.num_channel_pairs = 5;
  auto exp = comb.heralded(cfg);

  const auto table = exp.run_channel_table();
  for (const auto& r : table) {
    const int k = r.k;
    const auto sig = cfg.channels.chain(k, 0);
    const auto idl = cfg.channels.chain(k, 1);
    const double rate = exp.source().pair_rate_hz(k);

    // Analytic detected coincidence rate.
    const double eta_s = sig.transmission * sig.detector.efficiency;
    const double eta_i = idl.transmission * idl.detector.efficiency;
    const double expected_cc = rate * eta_s * eta_i;
    EXPECT_NEAR(r.coincidence_rate_hz, expected_cc,
                0.5 * expected_cc + 3 * std::sqrt(expected_cc / cfg.duration_s))
        << "k=" << k;

    // Analytic CAR (accidentals from singles product in the window).
    const double s_s = rate * eta_s + sig.detector.dark_rate_hz;
    const double s_i = rate * eta_i + idl.detector.dark_rate_hz;
    const double acc = s_s * s_i * cfg.coincidence_window_s;
    const double expected_car = expected_cc / acc;
    EXPECT_GT(r.car, 0.4 * expected_car) << "k=" << k;
    EXPECT_LT(r.car, 2.5 * expected_car) << "k=" << k;
  }
}

TEST(Integration, SectionII_MeasuredLinewidthConsistentWithDevice) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.num_channel_pairs = 2;
  auto exp = comb.heralded(cfg);
  const auto res = exp.run_coherence_measurement(1, 120.0);

  // The measured value should sit near the paper's 110 MHz: above the ring
  // linewidth (jitter broadening pushed through the weighted fit) but
  // within ~50%.
  EXPECT_GT(res.measured_linewidth_hz, 0.7 * res.ring_linewidth_hz);
  EXPECT_LT(res.measured_linewidth_hz, 1.6 * res.ring_linewidth_hz);
  // Deconvolution must move the estimate toward the ring value.
  EXPECT_LE(std::abs(res.deconvolved_linewidth_hz - res.ring_linewidth_hz) - 1e6,
            std::abs(res.measured_linewidth_hz - res.ring_linewidth_hz) + 5e6);
}

TEST(Integration, SectionIII_PowerScalingIsQuadraticBelowThreshold) {
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  auto exp = comb.type2({});

  // On-chip pair rate must scale quadratically with total pump power.
  const auto sweep = exp.run_power_sweep({1e-3, 2e-3, 4e-3});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_NEAR(sweep[1].pair_rate_on_chip_hz / sweep[0].pair_rate_on_chip_hz, 4.0, 0.01);
  EXPECT_NEAR(sweep[2].pair_rate_on_chip_hz / sweep[1].pair_rate_on_chip_hz, 4.0, 0.01);

  // OPO threshold within the device's quadratic region.
  EXPECT_GT(exp.opo_threshold_w(), 4e-3);
}

TEST(Integration, SectionIV_VisibilityPredictsChsh) {
  // The fitted fringe visibility and the measured CHSH S must satisfy
  // S ≈ 2√2 V within statistics, channel by channel.
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  for (int k : {1, 3, 5}) {
    const auto r = exp.run_channel(k);
    EXPECT_NEAR(r.chsh.s, 2.0 * std::sqrt(2.0) * r.fringe_fit.visibility,
                0.25) << "k=" << k;
  }
}

TEST(Integration, SectionV_TomographyMatchesNoiseModelState) {
  // Reconstructed Bell fidelity must track the fidelity of the true
  // (noise-model) state within tomography systematics.
  auto comb = QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  core::FourPhotonConfig cfg;
  cfg.tomo_shots_per_setting = 200;
  auto exp = comb.four_photon(cfg);
  const auto r = exp.run();
  const auto rho4 = exp.true_state();
  const auto target = quantum::bell_phi().tensor(quantum::bell_phi());
  const double f_true = quantum::fidelity(rho4, target);

  EXPECT_NEAR(r.four_photon_state_fidelity, f_true, 1e-9);
  // Reconstruction adds noise; it can only degrade (within tolerance).
  EXPECT_LT(r.four_photon_fidelity, f_true + 0.05);
  EXPECT_GT(r.four_photon_fidelity, f_true - 0.25);
}

TEST(Integration, JsaPurityConsistentWithSchmidtEntropy) {
  // Purity = 1/K and entropy = 0 iff K = 1: cross-check both observables
  // over a bandwidth sweep.
  for (double ratio : {0.2, 1.0, 5.0}) {
    sfwm::JsaParams p;
    p.ring_linewidth_s_hz = 800e6;
    p.ring_linewidth_i_hz = 800e6;
    p.pump_bandwidth_hz = ratio * 800e6;
    const auto r = sfwm::schmidt_decompose(sfwm::sample_jsa(p));
    EXPECT_NEAR(r.purity, 1.0 / r.schmidt_number, 1e-12);
    if (r.schmidt_number > 1.05) {
      EXPECT_GT(r.entropy_bits, 0.05);
    }
  }
}

TEST(Integration, FourfoldVisibilityConsistency) {
  // MC fringe, analytic formula and noise model must agree.
  const double v = 0.83;
  rng::Xoshiro256 g(123);
  const auto pair = quantum::werner_phi(v);
  const auto four = pair.tensor(pair);
  const auto fringe = timebin::simulate_fourfold_fringe(four, 1e5, 0.0, 24, g);
  EXPECT_NEAR(fringe.visibility, timebin::fourfold_visibility(v, 0.0), 0.01);
}

TEST(Integration, EntanglementSurvivesDetectionNoiseChain) {
  // Time-bin channel 1: the reconstructed-by-tomography state from the
  // same noise model used for CHSH must still be entangled (concurrence
  // and negativity positive, CHSH violated).
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto m = exp.noise_model(1);
  const auto rho = timebin::noisy_pair_state(m);

  EXPECT_GT(quantum::concurrence(rho), 0.5);
  EXPECT_GT(quantum::negativity(rho, 1), 0.2);

  rng::Xoshiro256 g(321);
  const auto data = tomo::simulate_counts(rho, 2000.0, {}, g);
  const auto mle = tomo::maximum_likelihood(data);
  EXPECT_GT(quantum::concurrence(mle.rho), 0.4);
}

TEST(Integration, CombCoversTelecomBandsOnDeviceGrid) {
  // Device resonances (not just the ideal grid) must cover S/C/L: ±14
  // channels at 200 GHz. Check band classification of actual resonances.
  const auto ring = photonics::heralded_source_device();
  const double pump = photonics::pump_resonance_hz(ring);
  int s = 0, c = 0, l = 0;
  for (int k = -16; k <= 16; ++k) {
    if (k == 0) continue;
    const double nu =
        ring.nearest_resonance_hz(pump + k * 200e9, photonics::Polarization::TE);
    switch (photonics::classify_band(nu)) {
      case photonics::TelecomBand::S: ++s; break;
      case photonics::TelecomBand::C: ++c; break;
      case photonics::TelecomBand::L: ++l; break;
      default: break;
    }
  }
  EXPECT_GT(s, 0);
  EXPECT_GT(c, 0);
  EXPECT_GT(l, 0);
  EXPECT_EQ(s + c + l, 32);  // nothing falls outside
}

TEST(Integration, StabilityTraceRespectsLoopModeBound) {
  // The self-locked trace can never dip below the loop model's worst-case
  // rate (up to the residual-jitter term).
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 7.0;
  cfg.self_locked_residual_fraction = 0.0;  // isolate the loop physics
  auto exp = comb.stability(cfg);
  const auto cmp = exp.run();
  const double lw = comb.device().linewidth_hz(photonics::itu_anchor_hz,
                                               photonics::Polarization::TE);
  const double bound = cfg.loop.worst_case_rate_dip(lw);
  for (double r : cmp.self_locked.relative_rate) EXPECT_GE(r, bound - 1e-9);
}

TEST(Integration, WitnessCertifiesEveryTimebinChannel) {
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  for (int k = 1; k <= 5; ++k) {
    const auto rho = timebin::noisy_pair_state(exp.noise_model(k));
    EXPECT_LT(quantum::bell_witness_value(rho), -0.2) << "k=" << k;
  }
}

TEST(Integration, ArrivalHistogramRatioMatchesExactPovm) {
  // MC three-peak histogram vs exact POVM probabilities computed here
  // independently: E0 = |S><S|/4, E1 = |a><a|/2, E2 = |L><L|/4.
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto rho = timebin::noisy_pair_state(exp.noise_model(1));

  linalg::CMat e0(2, 2), e2(2, 2);
  e0(0, 0) = linalg::cplx(0.25, 0);
  e2(1, 1) = linalg::cplx(0.25, 0);
  linalg::CMat e1 = quantum::projector(quantum::xy_eigenstate(0.0, +1));
  e1 *= linalg::cplx(0.5, 0);

  const double p_center =
      std::real(rho.expectation(linalg::kron(e0, e0))) +
      std::real(rho.expectation(linalg::kron(e1, e1))) +
      std::real(rho.expectation(linalg::kron(e2, e2)));
  const double p_side = std::real(rho.expectation(linalg::kron(e0, e1))) +
                        std::real(rho.expectation(linalg::kron(e1, e2)));
  const double exact_ratio = p_center / p_side;

  rng::Xoshiro256 g(99);
  const auto h = timebin::simulate_arrival_histogram(rho, 0.0, 0.0, 400000, g);
  EXPECT_NEAR(h.central_to_side_ratio(), exact_ratio, 0.04 * exact_ratio);
}

TEST(Integration, QkdKeyRequiresChshViolationMargin) {
  // QBER < 11% (key threshold) corresponds to V > 0.78 — strictly stronger
  // than the CHSH bound V > 0.707. Channels that distill key must violate
  // CHSH; channels violating CHSH need not distill key.
  auto comb =
      QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  core::MultiplexedQkdLink link(exp);
  for (const auto& ch : link.all_channels(5.0)) {
    if (ch.key_positive) {
      EXPECT_GT(ch.visibility, 1.0 / std::sqrt(2.0)) << "k=" << ch.k;
    }
  }
}

TEST(Integration, HeraldedG2ConsistentWithCwSourceMu) {
  // Sec. II source: tiny μ per coherence time -> heralded g2 ~ 0
  // (pure single photons), the paper's "pure heralded single photons".
  const auto ring = photonics::heralded_source_device();
  photonics::CwPump pump;
  pump.power_w = 15e-3;
  pump.frequency_hz = photonics::pump_resonance_hz(ring);
  const sfwm::CwPairSource src(ring, pump, 5);
  const quantum::TwoModeSqueezedVacuum tmsv(src.mean_pairs_per_coherence_time(1));
  EXPECT_LT(tmsv.heralded_g2(0.2), 0.01);
}

}  // namespace
