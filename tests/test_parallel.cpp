// Tests for the shared qfc::parallel module: WorkerPool task execution,
// exception propagation, round reuse, and the deterministic
// parallel_for_chunks boundaries both threaded subsystems (linalg Blocked
// backend, detect::EventEngine) lean on.

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/parallel/worker_pool.hpp"

namespace {

using qfc::parallel::parallel_for_chunks;
using qfc::parallel::WorkerPool;

TEST(WorkerPool, SizeCountsTheCaller) {
  EXPECT_EQ(WorkerPool(1).size(), 1u);
  EXPECT_EQ(WorkerPool(4).size(), 4u);
  // 0 is treated like 1: nothing spawned, everything runs inline.
  EXPECT_EQ(WorkerPool(0).size(), 1u);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  for (const unsigned threads : {1u, 3u, 8u}) {
    WorkerPool pool(threads);
    const std::size_t n = 257;  // not a multiple of any worker count
    std::vector<int> hits(n, 0);
    pool.run(n, [&](std::size_t i) { ++hits[i]; });  // disjoint slots per task
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i], 1) << "task " << i << " with " << threads << " threads";
  }
}

TEST(WorkerPool, ZeroTasksIsANoOp) {
  WorkerPool pool(3);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, ReusableAcrossManyRounds) {
  // The pool is built for thousands of small fork/join rounds (Jacobi
  // sweeps); hammer the handshake path.
  WorkerPool pool(4);
  std::atomic<std::size_t> total{0};
  const std::size_t rounds = 500, tasks = 7;
  for (std::size_t r = 0; r < rounds; ++r)
    pool.run(tasks, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), rounds * tasks);
}

TEST(WorkerPool, FirstExceptionPropagatesAndPoolSurvives) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i % 2 == 1) throw std::runtime_error("task failed");
                        }),
               std::runtime_error);
  // The round drained and the pool is still usable.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ParallelForChunks, CoversTheRangeWithFixedBoundaries) {
  // Boundaries must depend only on (n, chunk_size), never on the pool size
  // — that independence is what the determinism contract builds on.
  for (const unsigned threads : {1u, 4u}) {
    WorkerPool pool(threads);
    std::mutex m;
    std::vector<std::array<std::size_t, 3>> seen;
    parallel_for_chunks(pool, 10, 3,
                        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                          std::lock_guard<std::mutex> lock(m);
                          seen.push_back({chunk, begin, end});
                        });
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 4u) << threads << " threads";
    EXPECT_EQ(seen[0], (std::array<std::size_t, 3>{0, 0, 3}));
    EXPECT_EQ(seen[1], (std::array<std::size_t, 3>{1, 3, 6}));
    EXPECT_EQ(seen[2], (std::array<std::size_t, 3>{2, 6, 9}));
    EXPECT_EQ(seen[3], (std::array<std::size_t, 3>{3, 9, 10}));
  }
}

TEST(ParallelForChunks, DisjointChunkSumMatchesSerial) {
  WorkerPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> out(n, 0.0);
  parallel_for_chunks(pool, n, 4096,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                          out[i] = static_cast<double>(i) * 0.5;
                      });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

TEST(ParallelForChunks, ValidatesArguments) {
  WorkerPool pool(2);
  EXPECT_THROW(parallel_for_chunks(pool, 10, 0, [](std::size_t, std::size_t, std::size_t) {}),
               std::invalid_argument);
  // n == 0 is a no-op, not an error.
  parallel_for_chunks(pool, 0, 8, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "no chunk should run";
  });
}

}  // namespace
