// Tests for gates, graph/cluster states and projective measurements —
// the one-way-computing extension (paper Sec. I, ref [3]).

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/gates.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/quantum/pauli.hpp"

namespace {

using namespace qfc::quantum;
using qfc::linalg::cplx;
using qfc::linalg::CVec;

TEST(Gates, MatricesAreUnitary) {
  EXPECT_TRUE(qfc::linalg::is_unitary(cnot_gate()));
  EXPECT_TRUE(qfc::linalg::is_unitary(cz_gate()));
  EXPECT_TRUE(qfc::linalg::is_unitary(swap_gate()));
}

TEST(Gates, CnotFlipsTarget) {
  // |10> -> |11>.
  CVec v(4, cplx(0, 0));
  v[2] = cplx(1, 0);
  const StateVector in(std::move(v));
  const StateVector out = apply_two_qubit(in, cnot_gate(), 0, 1);
  EXPECT_NEAR(out.probability(3), 1.0, 1e-12);
}

TEST(Gates, CnotWithHadamardMakesBellState) {
  StateVector psi(2);
  psi = psi.apply_single(hadamard(), 0);
  psi = apply_two_qubit(psi, cnot_gate(), 0, 1);
  EXPECT_NEAR(psi.overlap_probability(bell_phi()), 1.0, 1e-12);
}

TEST(Gates, SwapExchangesQubits) {
  // |01> -> |10>.
  CVec v(4, cplx(0, 0));
  v[1] = cplx(1, 0);
  const StateVector out = apply_two_qubit(StateVector(std::move(v)), swap_gate(), 0, 1);
  EXPECT_NEAR(out.probability(2), 1.0, 1e-12);
}

TEST(Gates, ApplyOnNonAdjacentQubits) {
  // CNOT(control 0, target 2) on |100> -> |101>.
  CVec v(8, cplx(0, 0));
  v[4] = cplx(1, 0);
  const StateVector out = apply_two_qubit(StateVector(std::move(v)), cnot_gate(), 0, 2);
  EXPECT_NEAR(out.probability(5), 1.0, 1e-12);
}

TEST(Gates, ReversedIndexOrder) {
  // CNOT with control 1, target 0 on |01> -> |11>.
  CVec v(4, cplx(0, 0));
  v[1] = cplx(1, 0);
  const StateVector out = apply_two_qubit(StateVector(std::move(v)), cnot_gate(), 1, 0);
  EXPECT_NEAR(out.probability(3), 1.0, 1e-12);
}

TEST(Gates, BadIndicesThrow) {
  const StateVector psi(2);
  EXPECT_THROW(apply_two_qubit(psi, cnot_gate(), 0, 0), std::invalid_argument);
  EXPECT_THROW(apply_two_qubit(psi, cnot_gate(), 0, 2), std::invalid_argument);
}

TEST(Cluster, StabilizersAreSatisfied) {
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
    const StateVector cluster = linear_cluster_state(n);
    for (std::size_t site = 0; site < n; ++site) {
      const auto k = cluster_stabilizer(n, site, edges);
      EXPECT_NEAR(expectation(cluster, k), 1.0, 1e-10)
          << "n=" << n << " site=" << site;
    }
  }
}

TEST(Cluster, RandomPauliIsNotAStabilizer) {
  const StateVector cluster = linear_cluster_state(3);
  EXPECT_LT(std::abs(expectation(cluster, pauli_string("XXX"))), 0.9);
}

TEST(Cluster, FromBellPairsMatchesLinearCluster) {
  // Two comb Bell pairs + local ops + one CZ = 4-qubit linear cluster
  // (up to the CZ ordering convention, exactly).
  const StateVector pairs = bell_product(2);
  const StateVector built = cluster_from_bell_pairs(pairs);
  // Verify all four stabilizers of the linear cluster.
  std::vector<std::pair<std::size_t, std::size_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  for (std::size_t site = 0; site < 4; ++site) {
    const auto k = cluster_stabilizer(4, site, edges);
    EXPECT_NEAR(expectation(built, k), 1.0, 1e-10) << "site " << site;
  }
  EXPECT_NEAR(built.overlap_probability(linear_cluster_state(4)), 1.0, 1e-10);
}

TEST(Cluster, GraphStateOfTriangle) {
  const std::vector<std::pair<std::size_t, std::size_t>> tri{{0, 1}, {1, 2}, {0, 2}};
  const StateVector g = graph_state(3, tri);
  for (std::size_t site = 0; site < 3; ++site)
    EXPECT_NEAR(expectation(g, cluster_stabilizer(3, site, tri)), 1.0, 1e-10);
}

TEST(Measurement, ZOnPlusIsFair) {
  qfc::rng::Xoshiro256 g(11);
  StateVector plus(1);
  plus = plus.apply_single(hadamard(), 0);
  int ones = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto m = measure_qubit_z(plus, 0, g);
    EXPECT_NEAR(m.probability, 0.5, 1e-12);
    if (m.result == -1) ++ones;
  }
  EXPECT_NEAR(ones, n / 2, 200);
}

TEST(Measurement, CollapseIsConsistent) {
  qfc::rng::Xoshiro256 g(12);
  // Measure qubit 0 of a Bell pair in Z: outcome must correlate perfectly
  // with a subsequent Z measurement of qubit 1.
  for (int i = 0; i < 50; ++i) {
    const auto m0 = measure_qubit_z(bell_phi(), 0, g);
    const auto m1 = measure_qubit_z(m0.state, 1, g);
    EXPECT_EQ(m0.result, m1.result);
  }
}

TEST(Measurement, XyBasisOnBellGivesCorrelations) {
  qfc::rng::Xoshiro256 g(13);
  // E(α, β) = cos(α + β) for |Φ(0)>: sample and compare.
  const double alpha = 0.3, beta = 0.5;
  int same = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    const auto ma = measure_qubit_xy(bell_phi(), 0, alpha, g);
    const auto mb = measure_qubit_xy(ma.state, 1, beta, g);
    if (ma.result == mb.result) ++same;
  }
  const double e = (2.0 * same - n) / n;
  EXPECT_NEAR(e, std::cos(alpha + beta), 0.05);
}

TEST(Measurement, OneWayTeleportationAlongClusterWire) {
  // 2-qubit cluster CZ|++>: an X measurement of qubit 0 with outcome s
  // leaves qubit 1 in H|+_s> — i.e. |0> for s = +1, |1> for s = −1 (the
  // input |+> teleports with a Hadamard byproduct). A Z measurement of
  // qubit 1 must therefore reproduce s deterministically.
  qfc::rng::Xoshiro256 g(14);
  for (int i = 0; i < 32; ++i) {
    const StateVector cluster = linear_cluster_state(2);
    const auto m0 = measure_qubit_xy(cluster, 0, 0.0, g);  // X basis
    const auto m1 = measure_qubit_z(m0.state, 1, g);       // remaining qubit
    EXPECT_EQ(m1.result, m0.result) << "cluster wire correlation";
    EXPECT_NEAR(m1.probability, 1.0, 1e-10);
  }
}

}  // namespace
