// Tests for the time-bin entanglement stack (S7): interferometer, Franson
// interference, noise model, CHSH, four-photon interference.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/photonics/constants.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/timebin/arrival_histogram.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/timebin/chsh.hpp"
#include "qfc/timebin/franson.hpp"
#include "qfc/timebin/interferometer.hpp"
#include "qfc/timebin/multiphoton.hpp"
#include "qfc/timebin/timebin_state.hpp"

namespace {

using namespace qfc;
using photonics::pi;
using quantum::bell_phi;
using quantum::DensityMatrix;
using quantum::werner_phi;
using timebin::UnbalancedMichelson;

TEST(Interferometer, PathAmplitudesCarryPhase) {
  const UnbalancedMichelson mi(1e-9, 0.7);
  EXPECT_NEAR(std::abs(mi.short_path_amplitude()), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(mi.long_path_amplitude()), 0.5, 1e-12);
  EXPECT_NEAR(std::arg(mi.long_path_amplitude()), 0.7, 1e-12);
  EXPECT_NEAR(mi.postselection_probability(), 0.5, 1e-12);
}

TEST(Interferometer, AnalyzerProjectorsAreOrthogonal) {
  const UnbalancedMichelson mi(1e-9, 1.2);
  const auto p = mi.analyzer_projector();
  const auto q = mi.analyzer_projector_orthogonal();
  EXPECT_LT((p * q).max_abs(), 1e-12);
  // Projectors: P² = P, trace 1.
  EXPECT_LT((p * p - p).max_abs(), 1e-12);
  EXPECT_NEAR(std::real(p.trace()), 1.0, 1e-12);
  // Completeness: P + Q = I.
  EXPECT_LT((p + q - linalg::CMat::identity(2)).max_abs(), 1e-12);
}

TEST(Interferometer, BadParametersThrow) {
  EXPECT_THROW(UnbalancedMichelson(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(UnbalancedMichelson(1e-9, 0.0, 1.5), std::invalid_argument);
}

TEST(Interferometer, MismatchRatio) {
  const UnbalancedMichelson a(1.00e-9, 0.0), b(1.01e-9, 0.0);
  EXPECT_NEAR(timebin::imbalance_mismatch_ratio(a, b, 1e-9), 0.01, 1e-9);
}

TEST(Franson, IdealBellGivesFullFringe) {
  const DensityMatrix rho{bell_phi(0.0)};
  double mx = 0, mn = 1;
  for (int i = 0; i < 64; ++i) {
    const double a = 2 * pi * i / 64.0;
    const UnbalancedMichelson ma(1e-9, a), mb(1e-9, 0.0);
    const double p = timebin::coincidence_probability(rho, ma, mb);
    mx = std::max(mx, p);
    mn = std::min(mn, p);
  }
  // P(α,β) = (1 + cos(α+β))/4 x (1/4 post-selection): max 1/8, min 0.
  EXPECT_NEAR(mx, 1.0 / 8.0, 1e-6);
  EXPECT_NEAR(mn, 0.0, 1e-6);
}

TEST(Franson, FringeFollowsSumOfPhases) {
  const DensityMatrix rho{bell_phi(0.0)};
  // Shifting α by +x and β by −x leaves the coincidence rate unchanged.
  const UnbalancedMichelson a1(1e-9, 0.3), b1(1e-9, 0.9);
  const UnbalancedMichelson a2(1e-9, 0.3 + 0.4), b2(1e-9, 0.9 - 0.4);
  EXPECT_NEAR(timebin::coincidence_probability(rho, a1, b1),
              timebin::coincidence_probability(rho, a2, b2), 1e-12);
}

TEST(Franson, WernerVisibilityMatchesV) {
  for (double v : {0.5, 0.83, 1.0}) {
    const DensityMatrix rho = werner_phi(v);
    const UnbalancedMichelson mb(1e-9, 0.0);
    const double pmax = timebin::coincidence_probability(
        rho, UnbalancedMichelson(1e-9, 0.0), mb);
    const double pmin = timebin::coincidence_probability(
        rho, UnbalancedMichelson(1e-9, pi), mb);
    EXPECT_NEAR((pmax - pmin) / (pmax + pmin), v, 1e-9) << "V=" << v;
  }
}

TEST(Franson, SimulatedFringeFitsExpectedVisibility) {
  rng::Xoshiro256 g(42);
  const DensityMatrix rho = werner_phi(0.83);
  const auto scan = timebin::simulate_fringe(rho, 2.0e5, 0.0, 24, 1e-9, 0.0, g);
  ASSERT_EQ(scan.counts.size(), 24u);
  // Fit the analytic expectation: visibility must be exactly 0.83; the
  // Poisson counts must scatter around it.
  double mx = 0, mn = 1e18;
  for (double e : scan.expected) {
    mx = std::max(mx, e);
    mn = std::min(mn, e);
  }
  EXPECT_NEAR((mx - mn) / (mx + mn), 0.83, 1e-6);
}

TEST(Franson, ThreePeakWeights) {
  const auto w = timebin::three_peak_weights();
  EXPECT_NEAR(w.early + w.middle + w.late, 1.0, 1e-12);
  EXPECT_NEAR(w.middle / w.early, 2.0, 1e-12);
}

TEST(NoiseModel, PredictedVisibilityComponents) {
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = 0;
  m.phase_noise_rms_rad = 0;
  m.accidental_fraction = 0;
  EXPECT_NEAR(timebin::predicted_visibility(m), 1.0, 1e-12);

  m.mean_pairs_per_double_pulse = 0.1;
  EXPECT_NEAR(timebin::predicted_visibility(m), 1.0 / 1.2, 1e-12);

  m.mean_pairs_per_double_pulse = 0;
  m.phase_noise_rms_rad = 0.3;
  EXPECT_NEAR(timebin::predicted_visibility(m), std::exp(-0.045), 1e-12);

  m.phase_noise_rms_rad = 0;
  m.accidental_fraction = 0.05;
  EXPECT_NEAR(timebin::predicted_visibility(m), 0.95, 1e-12);
}

TEST(NoiseModel, PaperOperatingPointGives83Percent) {
  // μ, phase noise and accidentals chosen at the paper's operating point
  // must land the raw visibility near 83%.
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = 0.08;
  m.phase_noise_rms_rad = 0.12;
  m.accidental_fraction = 0.02;
  EXPECT_NEAR(timebin::predicted_visibility(m), 0.83, 0.03);
}

TEST(NoiseModel, StateFidelityConsistentWithVisibility) {
  timebin::TimebinNoiseModel m;
  m.mean_pairs_per_double_pulse = 0.08;
  m.phase_noise_rms_rad = 0.12;
  m.accidental_fraction = 0.02;
  const double v = timebin::state_visibility(m);
  const auto rho = timebin::noisy_pair_state(m);
  EXPECT_NEAR(quantum::fidelity(rho, bell_phi()), (1 + 3 * v) / 4, 1e-9);
  // Raw visibility additionally pays the accidental fraction.
  EXPECT_NEAR(timebin::predicted_visibility(m), v * 0.98, 1e-12);
}

TEST(Chsh, CorrelationClosedForm) {
  const DensityMatrix rho{bell_phi(0.4)};
  for (double a : {0.0, 0.5}) {
    for (double b : {0.2, 1.0}) {
      EXPECT_NEAR(timebin::correlation(rho, a, b), std::cos(a + b - 0.4), 1e-9);
    }
  }
}

TEST(Chsh, IdealBellReachesTsirelson) {
  const DensityMatrix rho{bell_phi(0.0)};
  const auto s = timebin::optimal_settings_for_phi(0.0);
  EXPECT_NEAR(timebin::chsh_s_value(rho, s), 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(Chsh, WernerSIs2Sqrt2TimesV) {
  for (double v : {0.5, 0.71, 0.83, 1.0}) {
    const auto s = timebin::optimal_settings_for_phi(0.0);
    EXPECT_NEAR(timebin::chsh_s_value(werner_phi(v), s), 2.0 * std::sqrt(2.0) * v, 1e-9);
  }
}

TEST(Chsh, ViolationThresholdAtV0707) {
  const auto s = timebin::optimal_settings_for_phi(0.0);
  EXPECT_LT(timebin::chsh_s_value(werner_phi(0.70), s), 2.0);
  EXPECT_GT(timebin::chsh_s_value(werner_phi(0.72), s), 2.0);
}

TEST(Chsh, PumpPhaseRotatesOptimalSettings) {
  // With matched settings, S is invariant under the pump phase.
  for (double phase : {0.0, 0.7, 2.1}) {
    const DensityMatrix rho = werner_phi(0.83, phase);
    const auto s = timebin::optimal_settings_for_phi(phase);
    EXPECT_NEAR(timebin::chsh_s_value(rho, s), 2.0 * std::sqrt(2.0) * 0.83, 1e-9);
  }
}

TEST(Chsh, MeasuredSMatchesAnalytic) {
  rng::Xoshiro256 g(7);
  const DensityMatrix rho = werner_phi(0.83);
  const auto settings = timebin::optimal_settings_for_phi(0.0);
  const auto m = timebin::measure_chsh(rho, settings, 2.0e5, 0.0, g);
  EXPECT_NEAR(m.s, 2.0 * std::sqrt(2.0) * 0.83, 0.02);
  EXPECT_TRUE(m.violates_classical());
  EXPECT_GT(m.sigmas_above_2(), 10.0);
}

TEST(Chsh, AccidentalsDegradeS) {
  rng::Xoshiro256 g(8);
  const DensityMatrix rho = werner_phi(0.9);
  const auto settings = timebin::optimal_settings_for_phi(0.0);
  const auto clean = timebin::measure_chsh(rho, settings, 1.0e5, 0.0, g);
  const auto noisy = timebin::measure_chsh(rho, settings, 1.0e5, 1.0e4, g);
  EXPECT_LT(noisy.s, clean.s);
}

TEST(FourPhoton, ProbabilityOfProductState) {
  // Tr[(ρ⊗ρ)(Π⊗Π⊗Π⊗Π)] = (Tr[ρ(Π⊗Π)])².
  const DensityMatrix pair = werner_phi(0.8);
  const DensityMatrix four = pair.tensor(pair);
  for (double th : {0.0, 0.9}) {
    const double p4 = timebin::fourfold_probability(four, th);
    const linalg::CMat proj = quantum::projector(quantum::xy_eigenstate(th, +1));
    const double p2 = pair.probability(linalg::kron(proj, proj));
    EXPECT_NEAR(p4, p2 * p2, 1e-10);
  }
}

TEST(FourPhoton, AnalyticVisibilityFormula) {
  // No accidentals: V4 = 2V/(1+V²).
  EXPECT_NEAR(timebin::fourfold_visibility(1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(timebin::fourfold_visibility(0.83, 0.0),
              2 * 0.83 / (1 + 0.83 * 0.83), 1e-12);
  // Paper operating point: V=0.83 with ~13% four-fold accidentals -> ~89%.
  EXPECT_NEAR(timebin::fourfold_visibility(0.83, 0.13), 0.89, 0.01);
}

TEST(FourPhoton, SimulatedFringeMatchesAnalytic) {
  rng::Xoshiro256 g(9);
  const DensityMatrix pair = werner_phi(0.83);
  const DensityMatrix four = pair.tensor(pair);
  const auto fringe = timebin::simulate_fourfold_fringe(four, 5e4, 0.0, 24, g);
  EXPECT_NEAR(fringe.visibility, 2 * 0.83 / (1 + 0.83 * 0.83), 0.01);
}

TEST(FourPhoton, RejectsWrongDimensions) {
  const DensityMatrix pair = werner_phi(0.8);
  EXPECT_THROW(timebin::fourfold_probability(pair, 0.0), std::invalid_argument);
}

TEST(TimebinPeaks, FoldsSyntheticHistogram) {
  // 33 bins at 1 ns width cover ±16 ns; ΔT = 10 ns. Place counts exactly
  // on the three peak centers plus one stray bin outside every window.
  detect::CoincidenceHistogram h;
  h.bin_width_s = 1e-9;
  h.range_s = 16e-9;
  h.counts.assign(33, 0);
  h.counts[h.center_bin()] = 50;        // Δt = 0
  h.counts[h.center_bin() - 10] = 7;    // Δt = −ΔT
  h.counts[h.center_bin() + 10] = 9;    // Δt = +ΔT
  h.counts[h.center_bin() + 5] = 99;    // between windows: ignored

  const auto p = timebin::fold_timebin_peaks(h, 10e-9, 2e-9);
  EXPECT_EQ(p.early_late, 7u);
  EXPECT_EQ(p.same_bin, 50u);
  EXPECT_EQ(p.late_early, 9u);
  EXPECT_NEAR(p.central_to_side_ratio(), 50.0 / 8.0, 1e-12);

  const timebin::TimebinPeaks empty_sides{0, 5, 0};
  EXPECT_EQ(empty_sides.central_to_side_ratio(), 0.0);
}

TEST(TimebinPeaks, FoldValidation) {
  detect::CoincidenceHistogram h;
  h.bin_width_s = 1e-9;
  h.range_s = 16e-9;
  h.counts.assign(33, 0);
  EXPECT_THROW(timebin::fold_timebin_peaks(h, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(timebin::fold_timebin_peaks(h, 10e-9, 0.0), std::invalid_argument);
  // Half window wider than ΔT/2: windows would overlap.
  EXPECT_THROW(timebin::fold_timebin_peaks(h, 10e-9, 6e-9), std::invalid_argument);
  // Range too short to reach the side peaks.
  EXPECT_THROW(timebin::fold_timebin_peaks(h, 15.5e-9, 2e-9), std::invalid_argument);
}

}  // namespace
