// Tests for qfc::obs — the zero-overhead-when-disabled observability layer:
// span recording/nesting/thread attribution in the Chrome trace export,
// counter/gauge/histogram correctness (including under 4-thread contention),
// valid-JSON round-trips of both exports, RunReport deltas, the worker-pool
// and linalg instrumentation hooks, and the contract that matters most:
// enabling or disabling obs never changes a single computed bit.

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/detect/event_engine.hpp"
#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"

namespace {

using namespace qfc;

/// Saves the obs enable mode on entry and restores it on exit (tests run
/// under CI legs that enable obs process-wide via QFC_OBS_TRACE), clearing
/// all recorded spans/metrics both ways so tests cannot see each other.
class ObsStateGuard {
 public:
  ObsStateGuard() : saved_(obs::detail::g_mode.load(std::memory_order_relaxed)) {
    obs::disable();
    obs::reset();
  }
  ~ObsStateGuard() {
    obs::reset();
    obs::detail::g_mode.store(saved_, std::memory_order_relaxed);
  }

 private:
  std::uint32_t saved_;
};

// ------------------------------------------------- minimal JSON validation

/// Tiny recursive-descent JSON syntax checker (no values materialized), so
/// the round-trip tests do not depend on any external parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string_view(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------ trace-line parsing

/// One parsed trace event. trace_json() emits one event object per line, so
/// the tests can scan lines instead of building a full JSON reader.
struct ParsedEvent {
  std::string name;
  unsigned tid = 0;
  double ts = 0;   // µs
  double dur = 0;  // µs
  std::string raw;
};

std::vector<ParsedEvent> parse_events(const std::string& trace) {
  std::vector<ParsedEvent> events;
  std::size_t line_start = 0;
  while (line_start < trace.size()) {
    std::size_t line_end = trace.find('\n', line_start);
    if (line_end == std::string::npos) line_end = trace.size();
    const std::string line = trace.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.rfind("{\"name\": \"", 0) != 0) continue;
    ParsedEvent ev;
    ev.raw = line;
    const std::size_t name_end = line.find('"', 10);
    ev.name = line.substr(10, name_end - 10);
    const auto field = [&](const char* key) {
      const std::size_t at = line.find(key);
      EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
      return at == std::string::npos ? 0.0 : std::stod(line.substr(at + std::string_view(key).size()));
    };
    ev.tid = static_cast<unsigned>(field("\"tid\": "));
    ev.ts = field("\"ts\": ");
    ev.dur = field("\"dur\": ");
    events.push_back(ev);
  }
  return events;
}

// ----------------------------------------------------------------- tests

TEST(Obs, DisabledMeansNoRecordingAnywhere) {
  ObsStateGuard guard;
  EXPECT_FALSE(obs::enabled());
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_FALSE(obs::metrics_enabled());

  obs::Counter& c = obs::counter("test.disabled.counter");
  c.add(41);
  c.increment();
  EXPECT_EQ(c.value(), 0u) << "disabled counter must not accumulate";
  obs::gauge("test.disabled.gauge").set(7);
  EXPECT_EQ(obs::gauge("test.disabled.gauge").value(), 0);
  obs::histogram("test.disabled.hist").observe(3);
  EXPECT_EQ(obs::histogram("test.disabled.hist").count(), 0u);

  { QFC_OBS_SPAN("test.disabled.span"); }
  EXPECT_EQ(parse_events(obs::trace_json()).size(), 0u);
}

TEST(Obs, EnableFlagsAreIndependent) {
  ObsStateGuard guard;
  obs::enable_tracing(true);
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_FALSE(obs::metrics_enabled());
  obs::enable_tracing(false);
  obs::enable_metrics(true);
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_TRUE(obs::metrics_enabled());
  obs::enable();
  EXPECT_TRUE(obs::tracing_enabled() && obs::metrics_enabled());
  obs::disable();
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, HistogramBucketBoundariesAreFixed) {
  // bucket 0 = {0}; bucket b = [2^(b-1), 2^b) for 1 <= b < 63; bucket 63
  // holds everything >= 2^62 — pure functions of the value, so exported
  // histograms are deterministic across runs and machines.
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(Obs, CountersAndHistogramsExactUnderContention) {
  ObsStateGuard guard;
  obs::enable_metrics(true);
  obs::Counter& c = obs::counter("test.contention.counter");
  obs::Histogram& h = obs::histogram("test.contention.hist");

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(static_cast<std::uint64_t>(t));  // thread t -> one bucket
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), kPerThread * (0 + 1 + 2 + 3));
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(0)), kPerThread);  // t=0
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(1)), kPerThread);  // t=1
  // t=2 and t=3 share bucket 2 = [2, 4).
  EXPECT_EQ(h.bucket_count(2), 2 * kPerThread);
}

TEST(Obs, SpanNestingAndThreadAttribution) {
  ObsStateGuard guard;
  obs::enable_tracing(true);

  {
    QFC_OBS_SPAN("test.outer", {{"answer", 42}});
    { QFC_OBS_SPAN("test.inner"); }
  }
  std::thread worker([] { QFC_OBS_SPAN("test.worker", {{"who", "worker"}}); });
  worker.join();

  const auto events = parse_events(obs::trace_json());
  ASSERT_EQ(events.size(), 3u);

  const auto find = [&](const char* name) -> const ParsedEvent& {
    for (const auto& ev : events)
      if (ev.name == name) return ev;
    ADD_FAILURE() << name << " span missing";
    return events.front();
  };
  const ParsedEvent& outer = find("test.outer");
  const ParsedEvent& inner = find("test.inner");
  const ParsedEvent& remote = find("test.worker");

  // Nesting: the inner complete-event interval sits inside the outer one,
  // on the same thread.
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);

  // Thread attribution: the worker's span carries a different tid.
  EXPECT_NE(remote.tid, outer.tid);

  // Arguments round-trip.
  EXPECT_NE(outer.raw.find("\"answer\": 42"), std::string::npos);
  EXPECT_NE(remote.raw.find("\"who\": \"worker\""), std::string::npos);
}

TEST(Obs, ExportsAreValidJson) {
  ObsStateGuard guard;
  obs::enable();
  {
    QFC_OBS_SPAN("test.json \"quoted\\name\"", {{"mode", "a\"b"}, {"n", -3}});
  }
  obs::counter("test.json.counter \"escaped\"").add(5);
  obs::gauge("test.json.gauge").set(-12);
  obs::histogram("test.json.hist").observe(1000);

  const std::string trace = obs::trace_json();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  const std::string metrics = obs::metrics_json();
  EXPECT_TRUE(JsonChecker(metrics).valid()) << metrics;
  EXPECT_NE(metrics.find("\"test.json.counter \\\"escaped\\\"\": 5"), std::string::npos);

  // Empty registry/trace exports are valid JSON too.
  obs::reset();
  EXPECT_TRUE(JsonChecker(obs::trace_json()).valid());
  EXPECT_TRUE(JsonChecker(obs::metrics_json()).valid());
}

TEST(Obs, RunReportRendersDeltas) {
  ObsStateGuard guard;
  obs::enable_metrics(true);
  obs::counter("test.report.counter").add(100);

  const obs::RunReport report;
  obs::counter("test.report.counter").add(7);

  const std::string json = report.json_object();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"test.report.counter\": 7"), std::string::npos)
      << "RunReport must render the delta since construction, got: " << json;
}

TEST(Obs, WorkerPoolRecordsBusyNsAndRounds) {
  ObsStateGuard guard;
  obs::enable();

  parallel::WorkerPool pool(2);
  std::atomic<std::uint64_t> sink{0};
  pool.run(8, [&](std::size_t i) {
    std::uint64_t acc = i;
    for (int k = 0; k < 200000; ++k) acc = acc * 6364136223846793005ull + 1;
    sink.fetch_add(acc, std::memory_order_relaxed);
  });

  EXPECT_EQ(obs::counter("parallel.rounds").value(), 1u);
  EXPECT_EQ(obs::counter("parallel.tasks").value(), 8u);
  // The caller always participates; worker 1 also reports when the round
  // was genuinely parallel (guaranteed claim is racy on 1 core, so only the
  // caller's counter is asserted).
  EXPECT_GT(obs::counter("parallel.worker_busy_ns.0").value(), 0u);

  const auto events = parse_events(obs::trace_json());
  bool saw_run = false;
  for (const auto& ev : events) saw_run = saw_run || ev.name == "pool.run";
  EXPECT_TRUE(saw_run);
}

TEST(Obs, LinalgKernelCountersAndFlops) {
  ObsStateGuard guard;
  const linalg::BackendKind saved = linalg::default_backend();
  linalg::set_default_backend(linalg::BackendKind::Reference);
  obs::enable_metrics(true);

  // 32x32 real product: above matrix.hpp's tiny-product inline cutoff, so
  // it reaches the dispatched reference kernel. Nominal flops = 2 n^3.
  const std::size_t n = 32;
  linalg::RMat a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>(i + 2 * j);
      b(i, j) = static_cast<double>(i) - static_cast<double>(j);
    }
  const linalg::RMat c = a * b;
  ASSERT_EQ(c.rows(), n);
  EXPECT_EQ(obs::counter("linalg.reference.gemm.calls").value(), 1u);
  EXPECT_EQ(obs::counter("linalg.reference.gemm.flops").value(), 2ull * n * n * n);

  // A Hermitian eigensolve books calls/sweeps/rotations.
  linalg::CMat h(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      h(i, j) = linalg::cplx(1.0 / (1.0 + static_cast<double>(i + j)),
                             i == j ? 0.0 : 0.1 * (static_cast<double>(i) - static_cast<double>(j)));
  (void)linalg::hermitian_eig(h);
  EXPECT_EQ(obs::counter("linalg.reference.eig.calls").value(), 1u);
  EXPECT_GT(obs::counter("linalg.reference.eig.sweeps").value(), 0u);
  EXPECT_GT(obs::counter("linalg.reference.eig.rotations").value(), 0u);

  linalg::set_default_backend(saved);
}

TEST(Obs, EnablingObsNeverChangesEngineResults) {
  // The overhead contract's correctness half: car_matrix / correlate_all
  // outputs are bitwise identical with obs fully off and fully on.
  ObsStateGuard guard;

  std::vector<detect::ChannelPairSpec> specs(2);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    auto& s = specs[k];
    s.pair_rate_hz = 30000.0 + 5000.0 * static_cast<double>(k);
    s.linewidth_hz = 110e6;
    s.transmission_signal = 0.8;
    s.transmission_idler = 0.75;
    s.detector_signal.efficiency = 0.25;
    s.detector_signal.dark_rate_hz = 5e3;
    s.detector_signal.jitter_sigma_s = 120e-12;
    s.detector_signal.dead_time_s = 1e-6;
    s.detector_idler = s.detector_signal;
  }
  detect::EngineConfig ec;
  ec.duration_s = 0.05;
  ec.seed = 1234;
  ec.num_threads = 2;

  const auto run_all = [&] {
    const detect::EngineResult res = detect::EventEngine(ec).run(specs);
    auto cells = detect::car_matrix(res.signal, res.idler, 10e-9, 100e-9, 6, 2);
    auto hists = detect::correlate_all(res.signal, res.idler, 1e-9, 40e-9, 2);
    return std::make_tuple(res, std::move(cells), std::move(hists));
  };

  obs::disable();
  const auto [res_off, cells_off, hists_off] = run_all();
  obs::enable();
  const auto [res_on, cells_on, hists_on] = run_all();
  obs::disable();

  EXPECT_TRUE(res_off.signal == res_on.signal && res_off.idler == res_on.idler);
  ASSERT_EQ(cells_off.cells.size(), cells_on.cells.size());
  for (std::size_t i = 0; i < cells_off.cells.size(); ++i) {
    EXPECT_EQ(cells_off.cells[i].coincidences, cells_on.cells[i].coincidences);
    EXPECT_EQ(cells_off.cells[i].accidentals, cells_on.cells[i].accidentals);
  }
  ASSERT_EQ(hists_off.size(), hists_on.size());
  for (std::size_t c = 0; c < hists_off.size(); ++c)
    EXPECT_EQ(hists_off[c].counts, hists_on[c].counts);
  EXPECT_GT(res_off.signal.size() + res_off.idler.size(), 0u);
}

}  // namespace
