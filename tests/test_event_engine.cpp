// Tests for the batched columnar event engine: SoA table layout, bitwise
// equivalence with the legacy per-channel chain, thread-count determinism,
// merge-sweep analysis vs the single-pair analyzers, and the engine-backed
// cross-checks in the core layer.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/hbt.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/detect/channel_rng.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/timebin/arrival_histogram.hpp"

namespace {

using namespace qfc;
using detect::ChannelPairSpec;
using detect::EngineConfig;
using detect::EngineResult;
using detect::EventEngine;
using detect::EventTable;

std::vector<ChannelPairSpec> test_specs(int n) {
  std::vector<ChannelPairSpec> specs;
  for (int k = 0; k < n; ++k) {
    ChannelPairSpec s;
    s.pair_rate_hz = 20000.0 + 1500.0 * k;
    s.linewidth_hz = 110e6;
    s.transmission_signal = 0.8;
    s.transmission_idler = 0.75;
    s.detector_signal.efficiency = 0.25;
    s.detector_signal.dark_rate_hz = 5e3;
    s.detector_signal.jitter_sigma_s = 120e-12;
    s.detector_signal.dead_time_s = 1e-6;
    s.detector_idler = s.detector_signal;
    s.detector_idler.efficiency = 0.2;
    specs.push_back(s);
  }
  return specs;
}

TEST(EventTable, FromColumnsLayoutAndAccessors) {
  const auto t = EventTable::from_columns({{1.0, 2.0}, {}, {0.5, 0.75, 3.0}});
  EXPECT_EQ(t.num_channels(), 3u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.channel_size(0), 2u);
  EXPECT_EQ(t.channel_size(1), 0u);
  EXPECT_EQ(t.channel_size(2), 3u);
  EXPECT_EQ(t.channel_clicks(2), (std::vector<double>{0.5, 0.75, 3.0}));
  EXPECT_EQ(t.channel, (std::vector<std::uint32_t>{0, 0, 2, 2, 2}));
  EXPECT_EQ(t.offsets, (std::vector<std::size_t>{0, 2, 2, 5}));
  EXPECT_THROW(t.channel_clicks(3), std::out_of_range);
}

TEST(EventTable, FromColumnsRejectsUnsorted) {
  EXPECT_THROW(EventTable::from_columns({{2.0, 1.0}}), std::invalid_argument);
}

TEST(EventEngine, MatchesHandRolledPipelineBitwise) {
  // The engine's per-channel pipeline must reproduce the hand-rolled
  // generate -> detect chain exactly when the chain is driven with the
  // documented per-stage sub-streams (channel_rng.hpp): pair emission on
  // stream 1, detection/darks on streams 6/7 (signal) and 9/10 (idler).
  const auto specs = test_specs(3);
  EngineConfig ec;
  ec.duration_s = 2.0;
  ec.seed = 99;
  ec.num_threads = 1;
  const EngineResult res = EventEngine(ec).run(specs);

  rng::Xoshiro256 master(99);
  for (std::size_t c = 0; c < specs.size(); ++c) {
    rng::Xoshiro256 g = master.fork(static_cast<std::uint64_t>(c + 1));
    detect::detail::ChannelRngs r = detect::detail::fork_channel_rngs(g);
    detect::PairStreamParams p;
    p.pair_rate_hz = specs[c].pair_rate_hz;
    p.linewidth_hz = specs[c].linewidth_hz;
    p.duration_s = ec.duration_s;
    p.transmission_a = specs[c].transmission_signal;
    p.transmission_b = specs[c].transmission_idler;
    const auto photons = detect::generate_pair_arrivals(p, r.pair);
    const detect::SinglePhotonDetector ds(specs[c].detector_signal);
    const detect::SinglePhotonDetector di(specs[c].detector_idler);
    const std::vector<double> no_extra_darks;
    EXPECT_EQ(res.signal.channel_clicks(c),
              ds.detect(photons.a, no_extra_darks, ec.duration_s, r.det_a, r.dark_a));
    EXPECT_EQ(res.idler.channel_clicks(c),
              di.detect(photons.b, no_extra_darks, ec.duration_s, r.det_b, r.dark_b));
  }
}

TEST(EventEngine, BitwiseInvariantAcrossThreadCounts) {
  const auto specs = test_specs(5);
  EngineConfig ec;
  ec.duration_s = 1.0;
  ec.seed = 7;
  ec.num_threads = 1;
  const EngineResult r1 = EventEngine(ec).run(specs);
  ec.num_threads = 3;
  const EngineResult r3 = EventEngine(ec).run(specs);
  ec.num_threads = 8;
  const EngineResult r8 = EventEngine(ec).run(specs);
  EXPECT_EQ(r1.signal, r3.signal);
  EXPECT_EQ(r1.idler, r3.idler);
  EXPECT_EQ(r1.signal, r8.signal);
  EXPECT_EQ(r1.idler, r8.idler);
}

TEST(EventEngine, CarStatisticallyMatchesLegacySingleStream) {
  // Same physics, independent seeds: the engine CAR and the legacy
  // single-stream CAR must agree within their Poisson errors.
  ChannelPairSpec spec;
  spec.pair_rate_hz = 2000;
  spec.linewidth_hz = 100e6;
  spec.detector_signal.efficiency = 1.0;
  spec.detector_signal.dark_rate_hz = 3000;
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;

  EngineConfig ec;
  ec.duration_s = 30.0;
  ec.seed = 11;
  const EngineResult res = EventEngine(ec).run({spec});
  const auto engine_car =
      detect::car_matrix(res.signal, res.idler, 20e-9, 200e-9).at(0, 0);

  rng::Xoshiro256 g(1234);
  detect::PairStreamParams p;
  p.pair_rate_hz = spec.pair_rate_hz;
  p.linewidth_hz = spec.linewidth_hz;
  p.duration_s = ec.duration_s;
  const auto photons = detect::generate_pair_arrivals(p, g);
  const detect::SinglePhotonDetector det(spec.detector_signal);
  const auto a = det.detect(photons.a, ec.duration_s, g);
  const auto b = det.detect(photons.b, ec.duration_s, g);
  const auto legacy_car = detect::measure_car(a, b, 20e-9, 200e-9);

  const double err = std::sqrt(engine_car.car_err * engine_car.car_err +
                               legacy_car.car_err * legacy_car.car_err);
  EXPECT_NEAR(engine_car.car, legacy_car.car, 5.0 * err);
  EXPECT_GT(engine_car.car, 10.0);  // sanity: clearly correlated
}

TEST(EventEngine, DarkCountsLowerCar) {
  ChannelPairSpec quiet;
  quiet.pair_rate_hz = 2000;
  quiet.linewidth_hz = 100e6;
  quiet.detector_signal.efficiency = 0.5;
  quiet.detector_signal.dark_rate_hz = 0;
  quiet.detector_signal.jitter_sigma_s = 0;
  quiet.detector_signal.dead_time_s = 0;
  quiet.detector_idler = quiet.detector_signal;
  ChannelPairSpec noisy = quiet;
  noisy.detector_signal.dark_rate_hz = 30e3;
  noisy.detector_idler.dark_rate_hz = 30e3;

  EngineConfig ec;
  ec.duration_s = 20.0;
  ec.seed = 3;
  const EngineResult res = EventEngine(ec).run({quiet, noisy});
  const auto matrix = detect::car_matrix(res.signal, res.idler, 10e-9, 100e-9);
  EXPECT_GT(matrix.at(0, 0).car, 3.0 * matrix.at(1, 1).car);
  EXPECT_GT(matrix.at(1, 1).car, 1.0);  // still correlated, just a lower CAR
}

TEST(EventEngine, BackgroundInjectionRaisesSingles) {
  ChannelPairSpec spec;
  spec.pair_rate_hz = 0;
  spec.linewidth_hz = 100e6;
  spec.background_rate_signal_hz = 50e3;
  spec.detector_signal.efficiency = 0.5;
  spec.detector_signal.dark_rate_hz = 0;
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;

  EngineConfig ec;
  ec.duration_s = 10.0;
  ec.seed = 5;
  const EngineResult res = EventEngine(ec).run({spec});
  // Background photons are thinned by the detector efficiency.
  EXPECT_NEAR(static_cast<double>(res.signal.channel_size(0)), 250e3, 5e3);
  EXPECT_EQ(res.idler.channel_size(0), 0u);
}

TEST(EventEngine, ValidationErrors) {
  EXPECT_THROW(EventEngine(EngineConfig{0.0, 1, 0}), std::invalid_argument);
  EXPECT_THROW(EventEngine(EngineConfig{1.0, 1, -2}), std::invalid_argument);
  ChannelPairSpec bad;
  bad.pair_rate_hz = 1000;
  bad.linewidth_hz = 0;  // rejected by the generation kernel
  EngineConfig ec;
  EXPECT_THROW(EventEngine(ec).run({bad}), std::invalid_argument);
  bad.linewidth_hz = 100e6;
  bad.background_rate_signal_hz = -1;
  EXPECT_THROW(EventEngine(ec).run({bad}), std::invalid_argument);
}

// ------------------------------------------------------- emission-model layer

ChannelPairSpec pulsed_test_spec(double mean_pairs_per_pulse, double bin_separation_s) {
  ChannelPairSpec s;
  s.emission = detect::EmissionMode::Pulsed;
  s.linewidth_hz = 110e6;
  s.pulsed.repetition_rate_hz = 16.8e6;
  s.pulsed.mean_pairs_per_pulse = mean_pairs_per_pulse;
  s.pulsed.bin_separation_s = bin_separation_s;
  s.pulsed.pulse_sigma_s = 1e-9;
  s.detector_signal.efficiency = 1.0;
  s.detector_signal.dark_rate_hz = 0;
  s.detector_signal.jitter_sigma_s = 0;
  s.detector_signal.dead_time_s = 0;
  s.detector_idler = s.detector_signal;
  return s;
}

TEST(EmissionModes, CwSpecIsBitwiseUnchangedByTheLayer) {
  // A default-constructed spec is EmissionMode::Cw; the engine output must
  // equal the hand-rolled chain (generate_pair_arrivals + inject + detect
  // on the per-stage sub-streams of channel_rng.hpp), which
  // EventEngine.MatchesHandRolledPipelineBitwise pins. Here additionally
  // pin that the enum default really is Cw and that the overload with no
  // extra darks is the plain detect path.
  EXPECT_EQ(ChannelPairSpec{}.emission, detect::EmissionMode::Cw);

  rng::Xoshiro256 g1(5), g2(5);
  const detect::SinglePhotonDetector det(detect::DetectorParams{});
  const std::vector<double> arrivals{0.1, 0.2, 0.5};
  EXPECT_EQ(det.detect(arrivals, 1.0, g1), det.detect(arrivals, {}, 1.0, g2));
}

TEST(EmissionModes, PulsedClicksLockedToPulseTrain) {
  // Single-pulse mode, ideal detectors: every click must sit within a few
  // ns (envelope jitter + Laplace delay) of a pulse-train slot.
  auto spec = pulsed_test_spec(0.01, 0.0);
  EngineConfig ec;
  ec.duration_s = 0.02;
  ec.seed = 31;
  const EngineResult res = EventEngine(ec).run({spec});

  const double period = 1.0 / spec.pulsed.repetition_rate_hz;
  const double n_pulses = ec.duration_s / period;
  const double expected = spec.pulsed.mean_pairs_per_pulse * n_pulses;
  EXPECT_NEAR(static_cast<double>(res.signal.channel_size(0)), expected,
              5.0 * std::sqrt(expected));

  for (const double t : res.signal.channel_clicks(0)) {
    const double phase = std::abs(t - std::round(t / period) * period);
    EXPECT_LT(phase, 12e-9) << "click at " << t << " not pulse-locked";
  }
}

TEST(EmissionModes, PulsedBitwiseDeterministicAcrossThreadCounts) {
  std::vector<ChannelPairSpec> specs;
  for (int k = 0; k < 5; ++k)
    specs.push_back(pulsed_test_spec(0.002 + 0.001 * k, k % 2 ? 20e-9 : 0.0));
  EngineConfig ec;
  ec.duration_s = 0.05;
  ec.seed = 17;
  ec.num_threads = 1;
  const EngineResult r1 = EventEngine(ec).run(specs);
  ec.num_threads = 2;
  const EngineResult r2 = EventEngine(ec).run(specs);
  ec.num_threads = 4;
  const EngineResult r4 = EventEngine(ec).run(specs);
  EXPECT_EQ(r1.signal, r2.signal);
  EXPECT_EQ(r1.idler, r2.idler);
  EXPECT_EQ(r1.signal, r4.signal);
  EXPECT_EQ(r1.idler, r4.idler);
}

TEST(EmissionModes, DoublePulseHistogramResolvesThreePeaks) {
  // High per-pulse mean so multi-pair cross-bin accidentals populate the
  // ±ΔT side peaks; same-bin true coincidences dominate the center.
  const double dT = 20e-9;
  auto spec = pulsed_test_spec(0.3, dT);
  EngineConfig ec;
  ec.duration_s = 0.01;
  ec.seed = 23;
  const EngineResult res = EventEngine(ec).run({spec});

  const auto hists = detect::correlate_all(res.signal, res.idler, dT / 16.0, 1.5 * dT);
  const auto peaks = timebin::fold_timebin_peaks(hists[0], dT, dT / 4.0);
  EXPECT_GT(peaks.early_late, 100u);
  EXPECT_GT(peaks.late_early, 100u);
  EXPECT_GT(peaks.same_bin, peaks.early_late + peaks.late_early);
  EXPECT_GT(peaks.central_to_side_ratio(), 2.0);
  // The two cross-bin combinations are statistically symmetric.
  const double side_mean =
      (static_cast<double>(peaks.early_late) + static_cast<double>(peaks.late_early)) / 2.0;
  EXPECT_NEAR(static_cast<double>(peaks.early_late), side_mean,
              6.0 * std::sqrt(side_mean));
}

TEST(EmissionModes, PiecewiseSegmentCountsMatchSegmentRates) {
  // Two segments at different pair rates, ideal detectors: each half of
  // the run must count at its own segment's rate.
  ChannelPairSpec spec;
  spec.emission = detect::EmissionMode::PiecewiseRates;
  spec.linewidth_hz = 110e6;
  spec.segments = {detect::RateSegment{2.0, 5e3, 0, 0, 0, 0},
                   detect::RateSegment{2.0, 20e3, 0, 0, 0, 0}};
  spec.detector_signal.efficiency = 1.0;
  spec.detector_signal.dark_rate_hz = 0;
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;

  EngineConfig ec;
  ec.duration_s = 4.0;
  ec.seed = 29;
  const EngineResult res = EventEngine(ec).run({spec});

  const auto clicks = res.signal.channel_clicks(0);
  const auto split = std::lower_bound(clicks.begin(), clicks.end(), 2.0);
  const double first = static_cast<double>(std::distance(clicks.begin(), split));
  const double second = static_cast<double>(std::distance(split, clicks.end()));
  EXPECT_NEAR(first, 10e3, 5.0 * std::sqrt(10e3));
  EXPECT_NEAR(second, 40e3, 5.0 * std::sqrt(40e3));
}

TEST(EmissionModes, PiecewiseDarksAndBackgroundsCompose) {
  // Segment darks click directly (no efficiency thinning); segment
  // backgrounds are thinned like photons; both add to the spec-level
  // homogeneous rates.
  ChannelPairSpec spec;
  spec.emission = detect::EmissionMode::PiecewiseRates;
  spec.linewidth_hz = 110e6;
  spec.segments = {detect::RateSegment{10.0, 0, /*bg_s=*/40e3, 0, /*dark_s=*/10e3, 0}};
  spec.background_rate_signal_hz = 20e3;  // homogeneous, thinned
  spec.detector_signal.efficiency = 0.5;
  spec.detector_signal.dark_rate_hz = 5e3;  // homogeneous, direct
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;
  spec.detector_idler.dark_rate_hz = 0;

  EngineConfig ec;
  ec.duration_s = 10.0;
  ec.seed = 37;
  const EngineResult res = EventEngine(ec).run({spec});

  // Signal arm: 0.5 * (20k + 40k) photons + 5k + 10k darks = 45 kHz.
  const double expected_s = (0.5 * 60e3 + 15e3) * ec.duration_s;
  EXPECT_NEAR(static_cast<double>(res.signal.channel_size(0)), expected_s,
              5.0 * std::sqrt(expected_s));
  EXPECT_EQ(res.idler.channel_size(0), 0u);
}

TEST(EmissionModes, PiecewiseBitwiseDeterministicAcrossThreadCounts) {
  std::vector<ChannelPairSpec> specs;
  for (int k = 0; k < 4; ++k) {
    ChannelPairSpec spec;
    spec.emission = detect::EmissionMode::PiecewiseRates;
    spec.linewidth_hz = 110e6;
    spec.segments = {detect::RateSegment{0.5, 10e3 + 1e3 * k, 2e3, 1e3, 500, 250},
                     detect::RateSegment{0.5, 30e3 - 2e3 * k, 1e3, 2e3, 250, 500}};
    spec.detector_signal.efficiency = 0.4;
    spec.detector_signal.dark_rate_hz = 1e3;
    spec.detector_idler = spec.detector_signal;
    specs.push_back(spec);
  }
  EngineConfig ec;
  ec.duration_s = 1.0;
  ec.seed = 41;
  ec.num_threads = 1;
  const EngineResult r1 = EventEngine(ec).run(specs);
  ec.num_threads = 2;
  const EngineResult r2 = EventEngine(ec).run(specs);
  ec.num_threads = 4;
  const EngineResult r4 = EventEngine(ec).run(specs);
  EXPECT_EQ(r1.signal, r2.signal);
  EXPECT_EQ(r1.idler, r2.idler);
  EXPECT_EQ(r1.signal, r4.signal);
  EXPECT_EQ(r1.idler, r4.idler);
}

TEST(EmissionModes, ValidationErrors) {
  EngineConfig ec;
  ec.duration_s = 1.0;

  ChannelPairSpec pulsed = pulsed_test_spec(0.01, 0.0);
  pulsed.pair_rate_hz = 1000;  // ambiguous: rate comes from the train
  EXPECT_THROW(EventEngine(ec).run({pulsed}), std::invalid_argument);
  pulsed.pair_rate_hz = 0;
  pulsed.pulsed.bin_separation_s = 1.0;  // >= repetition period
  EXPECT_THROW(EventEngine(ec).run({pulsed}), std::invalid_argument);
  pulsed.pulsed.bin_separation_s = 0;
  pulsed.pulsed.late_fraction = 1.5;
  EXPECT_THROW(EventEngine(ec).run({pulsed}), std::invalid_argument);

  ChannelPairSpec piecewise;
  piecewise.emission = detect::EmissionMode::PiecewiseRates;
  piecewise.linewidth_hz = 100e6;
  piecewise.segments = {detect::RateSegment{0.25, 1e3, 0, 0, 0, 0}};  // covers 0.25 < 1.0
  EXPECT_THROW(EventEngine(ec).run({piecewise}), std::invalid_argument);
  piecewise.segments = {detect::RateSegment{1.0, -1.0, 0, 0, 0, 0}};
  EXPECT_THROW(EventEngine(ec).run({piecewise}), std::invalid_argument);
  piecewise.segments = {detect::RateSegment{1.0, 1e3, 0, 0, 0, 0}};
  piecewise.pair_rate_hz = 1000;  // ambiguous: segments carry the rate
  EXPECT_THROW(EventEngine(ec).run({piecewise}), std::invalid_argument);
  piecewise.pair_rate_hz = 0;
  piecewise.segments.clear();
  EXPECT_THROW(EventEngine(ec).run({piecewise}), std::invalid_argument);
}

TEST(BatchedAnalysis, CarMatrixMatchesMeasureCar) {
  const auto specs = test_specs(3);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 42;
  const EngineResult res = EventEngine(ec).run(specs);

  const double window = 8e-9, spacing = 100e-9;
  const auto matrix = detect::car_matrix(res.signal, res.idler, window, spacing);
  ASSERT_EQ(matrix.num_signal, 3u);
  ASSERT_EQ(matrix.num_idler, 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto legacy = detect::measure_car(res.signal.channel_clicks(s),
                                              res.idler.channel_clicks(i), window,
                                              spacing);
      const auto& cell = matrix.at(s, i);
      EXPECT_DOUBLE_EQ(cell.coincidences, legacy.coincidences) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.accidentals, legacy.accidentals) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.car, legacy.car) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.car_err, legacy.car_err) << s << "," << i;
    }
  }
}

TEST(BatchedAnalysis, CorrelateAllMatchesCorrelate) {
  const auto specs = test_specs(2);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 21;
  const EngineResult res = EventEngine(ec).run(specs);

  const auto hists = detect::correlate_all(res.signal, res.idler, 0.5e-9, 20e-9);
  ASSERT_EQ(hists.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto legacy = detect::correlate(res.signal.channel_clicks(c),
                                          res.idler.channel_clicks(c), 0.5e-9, 20e-9);
    EXPECT_EQ(hists[c].counts, legacy.counts) << "channel " << c;
    EXPECT_DOUBLE_EQ(hists[c].bin_width_s, legacy.bin_width_s);
  }
}

TEST(BatchedAnalysis, CountMatrixMatchesLegacy) {
  const auto specs = test_specs(2);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 63;
  const EngineResult res = EventEngine(ec).run(specs);

  for (const double offset : {0.0, 100e-9}) {
    const auto counts =
        detect::coincidence_count_matrix(res.signal, res.idler, 8e-9, offset);
    ASSERT_EQ(counts.size(), 4u);
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t i = 0; i < 2; ++i)
        EXPECT_EQ(counts[s * 2 + i],
                  detect::count_coincidences(res.signal.channel_clicks(s),
                                             res.idler.channel_clicks(i), 8e-9, offset))
            << s << "," << i << " offset " << offset;
  }
}

// ------------------------------------------------- sharded analysis threading

/// Restores the process-wide analysis thread request on scope exit so tests
/// cannot leak configuration into each other (or clobber an operator's
/// QFC_ENGINE_ANALYSIS_THREADS setting).
struct AnalysisThreadsGuard {
  unsigned request = detect::analysis_thread_request();
  ~AnalysisThreadsGuard() { detect::set_analysis_threads(request); }
};

void expect_car_matrices_equal(const detect::CarMatrix& a, const detect::CarMatrix& b,
                               const char* what) {
  ASSERT_EQ(a.num_signal, b.num_signal) << what;
  ASSERT_EQ(a.num_idler, b.num_idler) << what;
  ASSERT_EQ(a.cells.size(), b.cells.size()) << what;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    // Exact (bitwise) double comparison on purpose: the sharded sweep must
    // reproduce the single-threaded counts, not approximate them.
    EXPECT_EQ(a.cells[i].coincidences, b.cells[i].coincidences) << what << " cell " << i;
    EXPECT_EQ(a.cells[i].accidentals, b.cells[i].accidentals) << what << " cell " << i;
    EXPECT_EQ(a.cells[i].car, b.cells[i].car) << what << " cell " << i;
    EXPECT_EQ(a.cells[i].car_err, b.cells[i].car_err) << what << " cell " << i;
  }
}

/// Long enough that each busy channel spans several 16384-event shards, and
/// with an empty channel so the zero-shard edge case is exercised too.
EngineResult sharded_analysis_table() {
  auto specs = test_specs(3);
  ChannelPairSpec empty;
  empty.pair_rate_hz = 0;
  empty.linewidth_hz = 100e6;
  empty.detector_signal.dark_rate_hz = 0;
  empty.detector_idler.dark_rate_hz = 0;
  specs.push_back(empty);
  EngineConfig ec;
  ec.duration_s = 4.0;
  ec.seed = 77;
  return EventEngine(ec).run(specs);
}

TEST(ShardedAnalysis, CarMatrixBitwiseInvariantAcrossThreadCounts) {
  const EngineResult res = sharded_analysis_table();
  const double window = 8e-9, spacing = 100e-9;
  const auto one = detect::car_matrix(res.signal, res.idler, window, spacing, 10,
                                      /*num_threads=*/1);
  for (const int threads : {2, 4}) {
    const auto many =
        detect::car_matrix(res.signal, res.idler, window, spacing, 10, threads);
    expect_car_matrices_equal(one, many,
                              threads == 2 ? "2 threads" : "4 threads");
  }
}

TEST(ShardedAnalysis, CorrelateAllBitwiseInvariantAcrossThreadCounts) {
  const EngineResult res = sharded_analysis_table();
  const auto one = detect::correlate_all(res.signal, res.idler, 1e-9, 50e-9,
                                         /*num_threads=*/1);
  for (const int threads : {2, 4}) {
    const auto many = detect::correlate_all(res.signal, res.idler, 1e-9, 50e-9, threads);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t c = 0; c < one.size(); ++c)
      EXPECT_EQ(one[c].counts, many[c].counts) << "channel " << c << ", " << threads
                                               << " threads";
  }
}

TEST(ShardedAnalysis, CountMatrixBitwiseInvariantAcrossThreadCounts) {
  const EngineResult res = sharded_analysis_table();
  const auto one =
      detect::coincidence_count_matrix(res.signal, res.idler, 8e-9, 50e-9, 1);
  for (const int threads : {2, 4})
    EXPECT_EQ(one, detect::coincidence_count_matrix(res.signal, res.idler, 8e-9, 50e-9,
                                                    threads))
        << threads << " threads";
}

TEST(ShardedAnalysis, ProcessWideSettingControlsTheDefaultPath) {
  AnalysisThreadsGuard guard;
  detect::set_analysis_threads(3);
  EXPECT_EQ(detect::analysis_thread_request(), 3u);
  EXPECT_EQ(detect::analysis_threads(), 3u);

  const EngineResult res = sharded_analysis_table();
  const auto pinned = detect::car_matrix(res.signal, res.idler, 8e-9, 100e-9, 10, 1);
  // num_threads = 0 routes through the process-wide request (the façades'
  // zero-call-site-change path) and must produce the same cells.
  const auto via_default = detect::car_matrix(res.signal, res.idler, 8e-9, 100e-9);
  expect_car_matrices_equal(pinned, via_default, "process-wide default");

  detect::set_analysis_threads(0);
  EXPECT_EQ(detect::analysis_thread_request(), 0u);
  EXPECT_GE(detect::analysis_threads(), 1u);  // auto resolves to hardware
}

TEST(ShardedAnalysis, EngineBoundHelpersHonorConfig) {
  EngineConfig ec;
  ec.duration_s = 4.0;
  ec.seed = 77;
  ec.analysis_threads = 2;
  const EventEngine engine(ec);
  const EngineResult res = engine.run(test_specs(3));

  expect_car_matrices_equal(
      detect::car_matrix(res.signal, res.idler, 8e-9, 100e-9, 10, 1),
      engine.car_matrix(res, 8e-9, 100e-9), "engine helper");
  const auto hists = engine.correlate_all(res, 1e-9, 50e-9);
  const auto hists1 = detect::correlate_all(res.signal, res.idler, 1e-9, 50e-9, 1);
  ASSERT_EQ(hists.size(), hists1.size());
  for (std::size_t c = 0; c < hists.size(); ++c)
    EXPECT_EQ(hists[c].counts, hists1[c].counts);
  EXPECT_EQ(engine.coincidence_count_matrix(res, 8e-9),
            detect::coincidence_count_matrix(res.signal, res.idler, 8e-9, 0.0, 1));

  EngineConfig bad;
  bad.analysis_threads = -1;
  EXPECT_THROW(EventEngine{bad}, std::invalid_argument);
}

TEST(BatchedAnalysis, ValidationErrors) {
  const EventTable empty = EventTable::from_columns({{}});
  EXPECT_THROW(detect::car_matrix(empty, empty, 0.0, 1e-7), std::invalid_argument);
  EXPECT_THROW(detect::car_matrix(empty, empty, 1e-8, 1e-8), std::invalid_argument);
  EXPECT_THROW(detect::car_matrix(empty, empty, 1e-8, 1e-7, 0), std::invalid_argument);
  EXPECT_THROW(detect::correlate_all(empty, empty, 0.0, 1e-9), std::invalid_argument);
  const EventTable two = EventTable::from_columns({{}, {}});
  EXPECT_THROW(detect::correlate_all(empty, two, 1e-9, 1e-8), std::invalid_argument);
  EXPECT_THROW(detect::coincidence_count_matrix(empty, empty, -1e-9),
               std::invalid_argument);
  const EventTable one = EventTable::from_columns({{1.0}});
  EXPECT_THROW(detect::car_matrix(one, one, 1e-8, 1e-7, 10, /*num_threads=*/-1),
               std::invalid_argument);
  EXPECT_THROW(detect::correlate_all(one, one, 1e-9, 1e-8, -2), std::invalid_argument);
}

// ------------------------------------------------- engine-backed core checks

TEST(CoreStreamChecks, TimebinCarCheckShowsCorrelations) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto cars = exp.run_car_check(/*duration_s=*/0.2);
  ASSERT_EQ(cars.size(), 5u);
  for (const auto& car : cars) EXPECT_GT(car.car, 3.0);
}

TEST(CoreStreamChecks, PulsedCarCheckResolvesTimebinPeaks) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto checks = exp.run_pulsed_car_check(/*duration_s=*/0.15);
  ASSERT_EQ(checks.size(), 5u);
  for (const auto& c : checks) {
    EXPECT_GT(c.car.car, 3.0);
    // Central (same-bin) peak dominates; cross-bin multi-pair accidentals
    // populate the ±ΔT side peaks without overwhelming it.
    EXPECT_GT(c.peaks.same_bin, 100u);
    EXPECT_GT(c.peaks.central_to_side_ratio(), 3.0);
    EXPECT_EQ(c.histogram.counts.size(), 2 * 24 + 1u);  // range 1.5ΔT / width ΔT/16
  }
}

TEST(CoreStreamChecks, QkdStreamCheckAccidentalFloor) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const core::MultiplexedQkdLink link(exp);
  const auto checks = link.stream_check(/*distance_km=*/0.0, /*duration_s=*/0.2);
  ASSERT_EQ(checks.size(), 5u);
  for (const auto& c : checks) {
    EXPECT_GT(c.car.car, 2.0) << "k=" << c.k;
    EXPECT_GT(c.measured_coincidence_rate_hz, 0.0) << "k=" << c.k;
  }
  EXPECT_THROW(link.stream_check(-1.0, 1.0), std::invalid_argument);
}

TEST(CoreStreamChecks, StabilityCountedTraceAllan) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 2.0;
  auto exp = comb.stability(cfg);
  const auto counted =
      exp.run_counted_scheme(photonics::PumpLocking::SelfLocked,
                             /*mean_coincidence_rate_hz=*/20.0);
  ASSERT_EQ(counted.counts.size(), counted.trace.relative_rate.size());
  ASSERT_FALSE(counted.allan.empty());
  // ~20 Hz * 3600 s per interval, near-resonant rate ~ 1.
  EXPECT_NEAR(counted.mean_counts, 72000.0, 3000.0);
  // Fractional stability at one interval: shot noise + residual drift.
  EXPECT_LT(counted.allan.front().sigma, 0.05);
  EXPECT_THROW(exp.run_counted_scheme(photonics::PumpLocking::SelfLocked, 0.0),
               std::invalid_argument);
}

TEST(CoreStreamChecks, HbtTimeDomainAntibunched) {
  core::HbtStreamParams p;
  const auto r = core::run_hbt_time_domain(p);
  // 100 kHz pairs * 0.2 herald efficiency * 10 s.
  EXPECT_NEAR(static_cast<double>(r.heralds), 200e3, 3e3);
  EXPECT_GT(r.coincidences_1, 1000u);
  EXPECT_GT(r.coincidences_2, 1000u);
  // Single photons split 50/50 cannot fire both detectors: g2 << 1.
  EXPECT_LT(r.g2, 0.5);
  core::HbtStreamParams bad;
  bad.coincidence_window_s = 0;
  EXPECT_THROW(core::run_hbt_time_domain(bad), std::invalid_argument);
}

}  // namespace
