// Tests for the batched columnar event engine: SoA table layout, bitwise
// equivalence with the legacy per-channel chain, thread-count determinism,
// merge-sweep analysis vs the single-pair analyzers, and the engine-backed
// cross-checks in the core layer.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/hbt.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/event_stream.hpp"

namespace {

using namespace qfc;
using detect::ChannelPairSpec;
using detect::EngineConfig;
using detect::EngineResult;
using detect::EventEngine;
using detect::EventTable;

std::vector<ChannelPairSpec> test_specs(int n) {
  std::vector<ChannelPairSpec> specs;
  for (int k = 0; k < n; ++k) {
    ChannelPairSpec s;
    s.pair_rate_hz = 20000.0 + 1500.0 * k;
    s.linewidth_hz = 110e6;
    s.transmission_signal = 0.8;
    s.transmission_idler = 0.75;
    s.detector_signal.efficiency = 0.25;
    s.detector_signal.dark_rate_hz = 5e3;
    s.detector_signal.jitter_sigma_s = 120e-12;
    s.detector_signal.dead_time_s = 1e-6;
    s.detector_idler = s.detector_signal;
    s.detector_idler.efficiency = 0.2;
    specs.push_back(s);
  }
  return specs;
}

TEST(EventTable, FromColumnsLayoutAndAccessors) {
  const auto t = EventTable::from_columns({{1.0, 2.0}, {}, {0.5, 0.75, 3.0}});
  EXPECT_EQ(t.num_channels(), 3u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.channel_size(0), 2u);
  EXPECT_EQ(t.channel_size(1), 0u);
  EXPECT_EQ(t.channel_size(2), 3u);
  EXPECT_EQ(t.channel_clicks(2), (std::vector<double>{0.5, 0.75, 3.0}));
  EXPECT_EQ(t.channel, (std::vector<std::uint32_t>{0, 0, 2, 2, 2}));
  EXPECT_EQ(t.offsets, (std::vector<std::size_t>{0, 2, 2, 5}));
  EXPECT_THROW(t.channel_clicks(3), std::out_of_range);
}

TEST(EventTable, FromColumnsRejectsUnsorted) {
  EXPECT_THROW(EventTable::from_columns({{2.0, 1.0}}), std::invalid_argument);
}

TEST(EventEngine, MatchesLegacyPipelineBitwise) {
  // The engine's per-channel pipeline with one pre-forked generator per
  // channel must reproduce the legacy generate -> detect chain exactly.
  const auto specs = test_specs(3);
  EngineConfig ec;
  ec.duration_s = 2.0;
  ec.seed = 99;
  ec.num_threads = 1;
  const EngineResult res = EventEngine(ec).run(specs);

  rng::Xoshiro256 master(99);
  for (std::size_t c = 0; c < specs.size(); ++c) {
    rng::Xoshiro256 g = master.fork(static_cast<std::uint64_t>(c + 1));
    detect::PairStreamParams p;
    p.pair_rate_hz = specs[c].pair_rate_hz;
    p.linewidth_hz = specs[c].linewidth_hz;
    p.duration_s = ec.duration_s;
    p.transmission_a = specs[c].transmission_signal;
    p.transmission_b = specs[c].transmission_idler;
    const auto photons = detect::generate_pair_arrivals(p, g);
    const detect::SinglePhotonDetector ds(specs[c].detector_signal);
    const detect::SinglePhotonDetector di(specs[c].detector_idler);
    EXPECT_EQ(res.signal.channel_clicks(c), ds.detect(photons.a, ec.duration_s, g));
    EXPECT_EQ(res.idler.channel_clicks(c), di.detect(photons.b, ec.duration_s, g));
  }
}

TEST(EventEngine, BitwiseInvariantAcrossThreadCounts) {
  const auto specs = test_specs(5);
  EngineConfig ec;
  ec.duration_s = 1.0;
  ec.seed = 7;
  ec.num_threads = 1;
  const EngineResult r1 = EventEngine(ec).run(specs);
  ec.num_threads = 3;
  const EngineResult r3 = EventEngine(ec).run(specs);
  ec.num_threads = 8;
  const EngineResult r8 = EventEngine(ec).run(specs);
  EXPECT_EQ(r1.signal, r3.signal);
  EXPECT_EQ(r1.idler, r3.idler);
  EXPECT_EQ(r1.signal, r8.signal);
  EXPECT_EQ(r1.idler, r8.idler);
}

TEST(EventEngine, CarStatisticallyMatchesLegacySingleStream) {
  // Same physics, independent seeds: the engine CAR and the legacy
  // single-stream CAR must agree within their Poisson errors.
  ChannelPairSpec spec;
  spec.pair_rate_hz = 2000;
  spec.linewidth_hz = 100e6;
  spec.detector_signal.efficiency = 1.0;
  spec.detector_signal.dark_rate_hz = 3000;
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;

  EngineConfig ec;
  ec.duration_s = 30.0;
  ec.seed = 11;
  const EngineResult res = EventEngine(ec).run({spec});
  const auto engine_car =
      detect::car_matrix(res.signal, res.idler, 20e-9, 200e-9).at(0, 0);

  rng::Xoshiro256 g(1234);
  detect::PairStreamParams p;
  p.pair_rate_hz = spec.pair_rate_hz;
  p.linewidth_hz = spec.linewidth_hz;
  p.duration_s = ec.duration_s;
  const auto photons = detect::generate_pair_arrivals(p, g);
  const detect::SinglePhotonDetector det(spec.detector_signal);
  const auto a = det.detect(photons.a, ec.duration_s, g);
  const auto b = det.detect(photons.b, ec.duration_s, g);
  const auto legacy_car = detect::measure_car(a, b, 20e-9, 200e-9);

  const double err = std::sqrt(engine_car.car_err * engine_car.car_err +
                               legacy_car.car_err * legacy_car.car_err);
  EXPECT_NEAR(engine_car.car, legacy_car.car, 5.0 * err);
  EXPECT_GT(engine_car.car, 10.0);  // sanity: clearly correlated
}

TEST(EventEngine, DarkCountsLowerCar) {
  ChannelPairSpec quiet;
  quiet.pair_rate_hz = 2000;
  quiet.linewidth_hz = 100e6;
  quiet.detector_signal.efficiency = 0.5;
  quiet.detector_signal.dark_rate_hz = 0;
  quiet.detector_signal.jitter_sigma_s = 0;
  quiet.detector_signal.dead_time_s = 0;
  quiet.detector_idler = quiet.detector_signal;
  ChannelPairSpec noisy = quiet;
  noisy.detector_signal.dark_rate_hz = 30e3;
  noisy.detector_idler.dark_rate_hz = 30e3;

  EngineConfig ec;
  ec.duration_s = 20.0;
  ec.seed = 3;
  const EngineResult res = EventEngine(ec).run({quiet, noisy});
  const auto matrix = detect::car_matrix(res.signal, res.idler, 10e-9, 100e-9);
  EXPECT_GT(matrix.at(0, 0).car, 3.0 * matrix.at(1, 1).car);
  EXPECT_GT(matrix.at(1, 1).car, 1.0);  // still correlated, just a lower CAR
}

TEST(EventEngine, BackgroundInjectionRaisesSingles) {
  ChannelPairSpec spec;
  spec.pair_rate_hz = 0;
  spec.linewidth_hz = 100e6;
  spec.background_rate_signal_hz = 50e3;
  spec.detector_signal.efficiency = 0.5;
  spec.detector_signal.dark_rate_hz = 0;
  spec.detector_signal.jitter_sigma_s = 0;
  spec.detector_signal.dead_time_s = 0;
  spec.detector_idler = spec.detector_signal;

  EngineConfig ec;
  ec.duration_s = 10.0;
  ec.seed = 5;
  const EngineResult res = EventEngine(ec).run({spec});
  // Background photons are thinned by the detector efficiency.
  EXPECT_NEAR(static_cast<double>(res.signal.channel_size(0)), 250e3, 5e3);
  EXPECT_EQ(res.idler.channel_size(0), 0u);
}

TEST(EventEngine, ValidationErrors) {
  EXPECT_THROW(EventEngine(EngineConfig{0.0, 1, 0}), std::invalid_argument);
  EXPECT_THROW(EventEngine(EngineConfig{1.0, 1, -2}), std::invalid_argument);
  ChannelPairSpec bad;
  bad.pair_rate_hz = 1000;
  bad.linewidth_hz = 0;  // rejected by the generation kernel
  EngineConfig ec;
  EXPECT_THROW(EventEngine(ec).run({bad}), std::invalid_argument);
  bad.linewidth_hz = 100e6;
  bad.background_rate_signal_hz = -1;
  EXPECT_THROW(EventEngine(ec).run({bad}), std::invalid_argument);
}

TEST(BatchedAnalysis, CarMatrixMatchesMeasureCar) {
  const auto specs = test_specs(3);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 42;
  const EngineResult res = EventEngine(ec).run(specs);

  const double window = 8e-9, spacing = 100e-9;
  const auto matrix = detect::car_matrix(res.signal, res.idler, window, spacing);
  ASSERT_EQ(matrix.num_signal, 3u);
  ASSERT_EQ(matrix.num_idler, 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto legacy = detect::measure_car(res.signal.channel_clicks(s),
                                              res.idler.channel_clicks(i), window,
                                              spacing);
      const auto& cell = matrix.at(s, i);
      EXPECT_DOUBLE_EQ(cell.coincidences, legacy.coincidences) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.accidentals, legacy.accidentals) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.car, legacy.car) << s << "," << i;
      EXPECT_DOUBLE_EQ(cell.car_err, legacy.car_err) << s << "," << i;
    }
  }
}

TEST(BatchedAnalysis, CorrelateAllMatchesCorrelate) {
  const auto specs = test_specs(2);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 21;
  const EngineResult res = EventEngine(ec).run(specs);

  const auto hists = detect::correlate_all(res.signal, res.idler, 0.5e-9, 20e-9);
  ASSERT_EQ(hists.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto legacy = detect::correlate(res.signal.channel_clicks(c),
                                          res.idler.channel_clicks(c), 0.5e-9, 20e-9);
    EXPECT_EQ(hists[c].counts, legacy.counts) << "channel " << c;
    EXPECT_DOUBLE_EQ(hists[c].bin_width_s, legacy.bin_width_s);
  }
}

TEST(BatchedAnalysis, CountMatrixMatchesLegacy) {
  const auto specs = test_specs(2);
  EngineConfig ec;
  ec.duration_s = 5.0;
  ec.seed = 63;
  const EngineResult res = EventEngine(ec).run(specs);

  for (const double offset : {0.0, 100e-9}) {
    const auto counts =
        detect::coincidence_count_matrix(res.signal, res.idler, 8e-9, offset);
    ASSERT_EQ(counts.size(), 4u);
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t i = 0; i < 2; ++i)
        EXPECT_EQ(counts[s * 2 + i],
                  detect::count_coincidences(res.signal.channel_clicks(s),
                                             res.idler.channel_clicks(i), 8e-9, offset))
            << s << "," << i << " offset " << offset;
  }
}

TEST(BatchedAnalysis, ValidationErrors) {
  const EventTable empty = EventTable::from_columns({{}});
  EXPECT_THROW(detect::car_matrix(empty, empty, 0.0, 1e-7), std::invalid_argument);
  EXPECT_THROW(detect::car_matrix(empty, empty, 1e-8, 1e-8), std::invalid_argument);
  EXPECT_THROW(detect::car_matrix(empty, empty, 1e-8, 1e-7, 0), std::invalid_argument);
  EXPECT_THROW(detect::correlate_all(empty, empty, 0.0, 1e-9), std::invalid_argument);
  const EventTable two = EventTable::from_columns({{}, {}});
  EXPECT_THROW(detect::correlate_all(empty, two, 1e-9, 1e-8), std::invalid_argument);
  EXPECT_THROW(detect::coincidence_count_matrix(empty, empty, -1e-9),
               std::invalid_argument);
}

// ------------------------------------------------- engine-backed core checks

TEST(CoreStreamChecks, TimebinCarCheckShowsCorrelations) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const auto cars = exp.run_car_check(/*duration_s=*/0.2);
  ASSERT_EQ(cars.size(), 5u);
  for (const auto& car : cars) EXPECT_GT(car.car, 3.0);
}

TEST(CoreStreamChecks, QkdStreamCheckAccidentalFloor) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  const core::MultiplexedQkdLink link(exp);
  const auto checks = link.monte_carlo_stream_check(/*distance_km=*/0.0,
                                                    /*duration_s=*/0.2);
  ASSERT_EQ(checks.size(), 5u);
  for (const auto& c : checks) {
    EXPECT_GT(c.car.car, 2.0) << "k=" << c.k;
    EXPECT_GT(c.measured_coincidence_rate_hz, 0.0) << "k=" << c.k;
  }
  EXPECT_THROW(link.monte_carlo_stream_check(-1.0, 1.0), std::invalid_argument);
}

TEST(CoreStreamChecks, StabilityCountedTraceAllan) {
  const auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::StabilityConfig cfg;
  cfg.observation_days = 2.0;
  auto exp = comb.stability(cfg);
  const auto counted =
      exp.run_counted_scheme(photonics::PumpLocking::SelfLocked,
                             /*mean_coincidence_rate_hz=*/20.0);
  ASSERT_EQ(counted.counts.size(), counted.trace.relative_rate.size());
  ASSERT_FALSE(counted.allan.empty());
  // ~20 Hz * 3600 s per interval, near-resonant rate ~ 1.
  EXPECT_NEAR(counted.mean_counts, 72000.0, 3000.0);
  // Fractional stability at one interval: shot noise + residual drift.
  EXPECT_LT(counted.allan.front().sigma, 0.05);
  EXPECT_THROW(exp.run_counted_scheme(photonics::PumpLocking::SelfLocked, 0.0),
               std::invalid_argument);
}

TEST(CoreStreamChecks, HbtTimeDomainAntibunched) {
  core::HbtStreamParams p;
  const auto r = core::run_hbt_time_domain(p);
  // 100 kHz pairs * 0.2 herald efficiency * 10 s.
  EXPECT_NEAR(static_cast<double>(r.heralds), 200e3, 3e3);
  EXPECT_GT(r.coincidences_1, 1000u);
  EXPECT_GT(r.coincidences_2, 1000u);
  // Single photons split 50/50 cannot fire both detectors: g2 << 1.
  EXPECT_LT(r.g2, 0.5);
  core::HbtStreamParams bad;
  bad.coincidence_window_s = 0;
  EXPECT_THROW(core::run_hbt_time_domain(bad), std::invalid_argument);
}

}  // namespace
