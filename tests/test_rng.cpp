// Unit + statistical tests for the RNG substrate (S2). Statistical checks
// use wide (5+ sigma) tolerances so they are deterministic in practice.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/rng/distributions.hpp"
#include "qfc/rng/ou_process.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace {

using qfc::rng::Xoshiro256;

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 g(7);
  double mn = 1, mx = 0, sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = g.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(mn, 0.001);
  EXPECT_GT(mx, 0.999);
}

TEST(Xoshiro, UniformIntBounds) {
  Xoshiro256 g(8);
  std::vector<int> histo(10, 0);
  for (int i = 0; i < 100000; ++i) ++histo[g.uniform_int(10)];
  for (int c : histo) EXPECT_NEAR(c, 10000, 600);  // ~6 sigma
}

TEST(Xoshiro, ForkGivesIndependentStreams) {
  Xoshiro256 parent(9);
  Xoshiro256 c1 = parent.fork(1);
  Xoshiro256 c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1() == c2()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Normal, MomentsMatch) {
  Xoshiro256 g(10);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = qfc::rng::sample_normal(g, 2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Normal, NegativeSigmaThrows) {
  Xoshiro256 g(11);
  EXPECT_THROW(qfc::rng::sample_normal(g, 0.0, -1.0), std::invalid_argument);
}

TEST(Exponential, MeanAndPositivity) {
  Xoshiro256 g(12);
  const double lambda = 4.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = qfc::rng::sample_exponential(g, lambda);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.005);
}

TEST(Exponential, BadRateThrows) {
  Xoshiro256 g(13);
  EXPECT_THROW(qfc::rng::sample_exponential(g, 0.0), std::invalid_argument);
  EXPECT_THROW(qfc::rng::sample_exponential(g, -2.0), std::invalid_argument);
}

TEST(DoubleExponential, SymmetricWithLaplaceVariance) {
  Xoshiro256 g(14);
  const double lambda = 2.0;
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = qfc::rng::sample_double_exponential(g, lambda);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  // Var(Laplace) = 2/λ².
  EXPECT_NEAR(sum2 / n, 2.0 / (lambda * lambda), 0.02);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVariance) {
  const double mu = GetParam();
  Xoshiro256 g(static_cast<std::uint64_t>(mu * 1000) + 15);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(qfc::rng::sample_poisson(g, mu));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double tol = 6.0 * std::sqrt(mu / n) + 0.01;
  EXPECT_NEAR(mean, mu, tol);
  EXPECT_NEAR(var, mu, 12.0 * mu / std::sqrt(static_cast<double>(n)) + 0.05);
}

// Covers both the inversion branch (mu < 30) and PTRS (mu >= 30).
INSTANTIATE_TEST_SUITE_P(SmallAndLargeMu, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 5.0, 12.0, 29.9, 30.1, 80.0,
                                           400.0));

TEST(Poisson, ZeroMeanGivesZero) {
  Xoshiro256 g(16);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(qfc::rng::sample_poisson(g, 0.0), 0u);
}

TEST(Poisson, NegativeThrows) {
  Xoshiro256 g(17);
  EXPECT_THROW(qfc::rng::sample_poisson(g, -1.0), std::invalid_argument);
}

TEST(ZeroTruncatedPoisson, NeverZeroAndMeanMatches) {
  Xoshiro256 g(117);
  for (const double mu : {0.05, 0.8, 5.0, 40.0}) {
    const int trials = 40000;
    double sum = 0;
    for (int i = 0; i < trials; ++i) {
      const auto k = qfc::rng::sample_zero_truncated_poisson(g, mu);
      ASSERT_GE(k, 1u);
      sum += static_cast<double>(k);
    }
    // E[k | k >= 1] = mu / (1 - e^-mu).
    const double expected = mu / -std::expm1(-mu);
    EXPECT_NEAR(sum / trials, expected, 0.02 * expected) << "mu=" << mu;
  }
}

TEST(ZeroTruncatedPoisson, NonPositiveMeanThrows) {
  Xoshiro256 g(118);
  EXPECT_THROW(qfc::rng::sample_zero_truncated_poisson(g, 0.0), std::invalid_argument);
  EXPECT_THROW(qfc::rng::sample_zero_truncated_poisson(g, -1.0), std::invalid_argument);
}

TEST(Bernoulli, Extremes) {
  Xoshiro256 g(18);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(qfc::rng::sample_bernoulli(g, 0.0));
    EXPECT_TRUE(qfc::rng::sample_bernoulli(g, 1.0));
  }
  EXPECT_THROW(qfc::rng::sample_bernoulli(g, 1.5), std::invalid_argument);
}

TEST(Binomial, MatchesMoments) {
  Xoshiro256 g(19);
  const std::uint64_t n = 50;
  const double p = 0.3;
  const int trials = 50000;
  double sum = 0;
  for (int i = 0; i < trials; ++i)
    sum += static_cast<double>(qfc::rng::sample_binomial(g, n, p));
  EXPECT_NEAR(sum / trials, static_cast<double>(n) * p, 0.15);
}

TEST(Binomial, NormalApproximationBranch) {
  Xoshiro256 g(20);
  const std::uint64_t n = 2000000;
  const double p = 0.5;
  const double x = static_cast<double>(qfc::rng::sample_binomial(g, n, p));
  // Within 8 sigma of the mean.
  const double mean = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mean * (1 - p));
  EXPECT_NEAR(x, mean, 8 * sigma);
}

TEST(Discrete, RespectsWeights) {
  Xoshiro256 g(21);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> histo(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++histo[qfc::rng::sample_discrete(g, w)];
  EXPECT_EQ(histo[1], 0);
  EXPECT_NEAR(histo[0], n / 4, 500);
  EXPECT_NEAR(histo[2], 3 * n / 4, 500);
}

TEST(Discrete, AllZeroThrows) {
  Xoshiro256 g(22);
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(qfc::rng::sample_discrete(g, w), std::invalid_argument);
}

TEST(Thermal, BoseEinsteinMoments) {
  Xoshiro256 g(23);
  const double mu = 0.7;
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(qfc::rng::sample_thermal(g, mu));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, mu, 0.02);
  // Thermal: Var = μ(1+μ).
  EXPECT_NEAR(var, mu * (1 + mu), 0.06);
}

TEST(OuProcess, RevertsToMeanWithStationaryVariance) {
  Xoshiro256 g(24);
  qfc::rng::OrnsteinUhlenbeck ou(5.0, 10.0, 2.0, 50.0);
  // Long steps: each sample is nearly independent and stationary.
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = ou.step(g, 100.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(OuProcess, ZeroDtIsNoOp) {
  Xoshiro256 g(25);
  qfc::rng::OrnsteinUhlenbeck ou(0.0, 1.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(ou.step(g, 0.0), 3.0);
}

TEST(OuProcess, BadParamsThrow) {
  EXPECT_THROW(qfc::rng::OrnsteinUhlenbeck(0, -1, 1, 0), std::invalid_argument);
  EXPECT_THROW(qfc::rng::OrnsteinUhlenbeck(0, 1, -1, 0), std::invalid_argument);
}

}  // namespace
