// Tests for the SFWM engine (S5): phase matching, JSA/Schmidt, pair rates,
// type-II source, OPO model.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/sfwm/jsa.hpp"
#include "qfc/sfwm/pair_source.hpp"
#include "qfc/sfwm/phase_matching.hpp"
#include "qfc/sfwm/type2.hpp"

namespace {

using namespace qfc;
using photonics::Polarization;

photonics::CwPump cw_pump(const photonics::MicroringResonator& ring, double power) {
  photonics::CwPump p;
  p.power_w = power;
  p.frequency_hz = photonics::pump_resonance_hz(ring);
  return p;
}

// ------------------------------------------------------- phase matching

TEST(PhaseMatching, MismatchSmallNearPumpGrowsWithK) {
  const auto ring = photonics::heralded_source_device();
  const double pump = photonics::pump_resonance_hz(ring);
  const double m1 = std::abs(sfwm::type0_energy_mismatch_hz(ring, pump, 1));
  const double m10 = std::abs(sfwm::type0_energy_mismatch_hz(ring, pump, 10));
  EXPECT_LT(m1, ring.linewidth_hz(pump, Polarization::TE));
  EXPECT_GE(m10, m1);
}

TEST(PhaseMatching, LorentzianFactorBounds) {
  EXPECT_NEAR(sfwm::lorentzian_pm_factor(0, 100e6, 100e6), 1.0, 1e-12);
  EXPECT_NEAR(sfwm::lorentzian_pm_factor(100e6, 100e6, 100e6), 0.5, 1e-12);
  EXPECT_LT(sfwm::lorentzian_pm_factor(1e9, 100e6, 100e6), 0.01);
  EXPECT_THROW(sfwm::lorentzian_pm_factor(0, -1, 100e6), std::invalid_argument);
}

TEST(PhaseMatching, KZeroThrows) {
  const auto ring = photonics::heralded_source_device();
  EXPECT_THROW(sfwm::type0_energy_mismatch_hz(ring, 193.1e12, 0), std::invalid_argument);
}

TEST(PhaseMatching, BirefringentDeviceSuppressesStimulatedFwm) {
  const auto biref = photonics::type2_device();
  const auto square = photonics::type2_device_no_offset();
  const double te_b = biref.nearest_resonance_hz(photonics::itu_anchor_hz, Polarization::TE);
  const double tm_b = biref.nearest_resonance_hz(te_b, Polarization::TM);
  const double te_s = square.nearest_resonance_hz(photonics::itu_anchor_hz, Polarization::TE);
  const double tm_s = square.nearest_resonance_hz(te_s, Polarization::TM);

  const double supp_biref = sfwm::stimulated_fwm_suppression_db(biref, te_b, tm_b);
  const double supp_square = sfwm::stimulated_fwm_suppression_db(square, te_s, tm_s);
  EXPECT_GT(supp_biref, 20.0);   // "completely suppressed"
  EXPECT_LT(supp_square, 1.0);   // no offset -> no suppression
}

TEST(PhaseMatching, GridOffsetFoldedIntoHalfFsr) {
  const auto ring = photonics::type2_device();
  const double off = sfwm::te_tm_grid_offset_hz(ring, photonics::itu_anchor_hz);
  const double fsr = ring.fsr_hz(photonics::itu_anchor_hz, Polarization::TM);
  EXPECT_LE(std::abs(off), fsr / 2 + 1.0);
  EXPECT_GT(std::abs(off), 1e9);  // designed offset is GHz-scale
}

// ------------------------------------------------------------------ JSA

TEST(Jsa, SampledMatrixIsNormalized) {
  sfwm::JsaParams p;
  p.pump_bandwidth_hz = 100e6;
  p.ring_linewidth_s_hz = 100e6;
  p.ring_linewidth_i_hz = 100e6;
  p.grid_points = 48;
  const auto a = sfwm::sample_jsa(p);
  EXPECT_NEAR(a.frobenius_norm(), 1.0, 1e-10);
  EXPECT_EQ(a.rows(), 48u);
}

TEST(Jsa, SchmidtOfSeparableGaussianIsNearOne) {
  // Pump much broader than the resonances: JSA ≈ L_s(ν_s) L_i(ν_i),
  // separable -> purity ~ 1.
  sfwm::JsaParams p;
  p.pump_bandwidth_hz = 10e9;
  p.ring_linewidth_s_hz = 100e6;
  p.ring_linewidth_i_hz = 100e6;
  p.grid_points = 64;
  p.span_linewidths = 12.0;
  // Span follows the pump scale; shrink it so the Lorentzians are resolved.
  const auto result = sfwm::schmidt_decompose(sfwm::sample_jsa(p));
  EXPECT_GT(result.purity, 0.9);
}

TEST(Jsa, NarrowPumpEntanglesSpectrum) {
  // Pump much narrower than the resonances: strong spectral correlation,
  // low heralded purity, Schmidt number > 1.
  const double p_narrow = sfwm::heralded_purity(20e6, 800e6, 64);
  const double p_matched = sfwm::heralded_purity(800e6, 800e6, 64);
  EXPECT_LT(p_narrow, p_matched);
  EXPECT_GT(p_matched, 0.80);  // matched bandwidth -> near-pure photons
}

TEST(Jsa, PurityMaximizedNearMatchedBandwidth) {
  // Scan pump bandwidth; purity should peak in the vicinity of the ring
  // linewidth (the paper's Sec. V requirement).
  const double lw = 800e6;
  const double p_small = sfwm::heralded_purity(0.1 * lw, lw);
  const double p_match = sfwm::heralded_purity(1.5 * lw, lw);
  EXPECT_GT(p_match, p_small);
}

TEST(Jsa, SchmidtCoefficientsNormalized) {
  sfwm::JsaParams p;
  p.pump_bandwidth_hz = 400e6;
  p.ring_linewidth_s_hz = 800e6;
  p.ring_linewidth_i_hz = 800e6;
  const auto r = sfwm::schmidt_decompose(sfwm::sample_jsa(p));
  double sum2 = 0;
  for (double lam : r.coefficients) sum2 += lam * lam;
  EXPECT_NEAR(sum2, 1.0, 1e-9);
  EXPECT_GE(r.schmidt_number, 1.0 - 1e-9);
  EXPECT_NEAR(r.purity * r.schmidt_number, 1.0, 1e-9);
}

TEST(Jsa, InvalidParamsThrow) {
  sfwm::JsaParams p;
  EXPECT_THROW(sfwm::sample_jsa(p), std::invalid_argument);
  p.pump_bandwidth_hz = 1e8;
  p.ring_linewidth_s_hz = 1e8;
  p.ring_linewidth_i_hz = 1e8;
  p.grid_points = 4;
  EXPECT_THROW(sfwm::sample_jsa(p), std::invalid_argument);
}

// ----------------------------------------------------------- pair source

TEST(CwPairSource, RateScalesQuadraticallyWithPower) {
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource s1(ring, cw_pump(ring, 5e-3), 5);
  const sfwm::CwPairSource s2(ring, cw_pump(ring, 10e-3), 5);
  EXPECT_NEAR(s2.pair_rate_hz(1) / s1.pair_rate_hz(1), 4.0, 1e-6);
}

TEST(CwPairSource, PaperOperatingPointRatesAreRealistic) {
  // 15 mW self-locked pump: on-chip rates should sit in the hundreds of Hz
  // so that detected rates land at 14-29 Hz with ~20% collection.
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource src(ring, cw_pump(ring, 15e-3), 5);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_GT(src.pair_rate_hz(k), 100.0) << "k=" << k;
    EXPECT_LT(src.pair_rate_hz(k), 5000.0) << "k=" << k;
  }
}

TEST(CwPairSource, CoherenceTimeMatchesLinewidth) {
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource src(ring, cw_pump(ring, 15e-3), 5);
  EXPECT_NEAR(src.coherence_time_s(),
              1.0 / (photonics::pi * src.photon_linewidth_hz()), 1e-15);
  // ~100 MHz linewidth -> ~3 ns coherence time.
  EXPECT_NEAR(src.coherence_time_s(), 3.2e-9, 0.5e-9);
}

TEST(CwPairSource, MultiPairParameterIsTiny) {
  // CW pumping at these rates: multi-pair emission is negligible, which is
  // why Sec. II CAR is dark-count-limited rather than μ-limited.
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource src(ring, cw_pump(ring, 15e-3), 5);
  EXPECT_LT(src.mean_pairs_per_coherence_time(1), 1e-4);
}

TEST(CwPairSource, RatesFallOffAwayFromPump) {
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource src(ring, cw_pump(ring, 15e-3), 40);
  EXPECT_LE(src.pair_rate_hz(40), src.pair_rate_hz(1));
}

TEST(CwPairSource, BadChannelThrows) {
  const auto ring = photonics::heralded_source_device();
  const sfwm::CwPairSource src(ring, cw_pump(ring, 15e-3), 5);
  EXPECT_THROW(src.pair_rate_hz(0), std::out_of_range);
  EXPECT_THROW(src.pair_rate_hz(6), std::out_of_range);
}

TEST(EscapeEfficiency, InPhysicalRange) {
  const auto ring = photonics::heralded_source_device();
  const double esc = sfwm::drop_port_escape_efficiency(ring);
  EXPECT_GT(esc, 0.05);
  EXPECT_LT(esc, 0.5);  // symmetric add-drop: < 1/2
}

TEST(PulsedPairSource, MuScalesQuadraticallyWithPulseEnergy) {
  const auto ring = photonics::entanglement_device();
  auto pump = [&](double avg_power) {
    photonics::DoublePulsePump p;
    p.frequency_hz = photonics::pump_resonance_hz(ring);
    const double lw = ring.linewidth_hz(p.frequency_hz, Polarization::TE);
    p.train.pulse_fwhm_s = 2.0 * std::log(2.0) / (photonics::pi * lw);
    p.train.repetition_rate_hz = 16.8e6;
    p.train.average_power_w = avg_power;
    p.bin_separation_s = 5.0 * p.train.pulse_fwhm_s;
    return p;
  };
  const sfwm::PulsedPairSource s1(ring, pump(1e-3), 5);
  const sfwm::PulsedPairSource s2(ring, pump(2e-3), 5);
  EXPECT_NEAR(s2.mean_pairs_per_pulse(1) / s1.mean_pairs_per_pulse(1), 4.0, 1e-6);
}

TEST(PulsedPairSource, PumpBandwidthIsTransformLimited) {
  const auto ring = photonics::entanglement_device();
  photonics::DoublePulsePump p;
  p.frequency_hz = photonics::pump_resonance_hz(ring);
  p.train.pulse_fwhm_s = 500e-12;
  p.train.repetition_rate_hz = 16.8e6;
  p.train.average_power_w = 1e-3;
  p.bin_separation_s = 5e-9;
  const sfwm::PulsedPairSource src(ring, p, 3);
  EXPECT_NEAR(src.pump_bandwidth_hz() * p.train.pulse_fwhm_s, 0.441, 0.01);
}

// ----------------------------------------------------------- type-II/OPO

TEST(Type2Source, GeneratesCrossPolarizedPairs) {
  const auto ring = photonics::type2_device();
  photonics::CrossPolarizedPump pump;
  pump.power_te_w = 1e-3;
  pump.power_tm_w = 1e-3;
  pump.frequency_te_hz = ring.nearest_resonance_hz(photonics::itu_anchor_hz, Polarization::TE);
  pump.frequency_tm_hz = ring.nearest_resonance_hz(pump.frequency_te_hz, Polarization::TM);
  const sfwm::Type2PairSource src(ring, pump, 3);
  EXPECT_GT(src.pair_rate_hz(1), 0.1);
  EXPECT_GT(src.stimulated_suppression_db(), 20.0);
}

TEST(Type2Source, RateScalesWithPumpProduct) {
  const auto ring = photonics::type2_device();
  auto make = [&](double p_te, double p_tm) {
    photonics::CrossPolarizedPump pump;
    pump.power_te_w = p_te;
    pump.power_tm_w = p_tm;
    pump.frequency_te_hz =
        ring.nearest_resonance_hz(photonics::itu_anchor_hz, Polarization::TE);
    pump.frequency_tm_hz =
        ring.nearest_resonance_hz(pump.frequency_te_hz, Polarization::TM);
    return sfwm::Type2PairSource(ring, pump, 3);
  };
  const double r11 = make(1e-3, 1e-3).pair_rate_hz(1);
  const double r22 = make(2e-3, 2e-3).pair_rate_hz(1);
  const double r41 = make(4e-3, 1e-3).pair_rate_hz(1);
  EXPECT_NEAR(r22 / r11, 4.0, 1e-6);
  EXPECT_NEAR(r41 / r11, 4.0, 1e-6);  // geometric mean: √(4·1) squared
}

TEST(OpoModel, ThresholdNearPaperValue) {
  const sfwm::OpoModel opo(photonics::type2_device());
  EXPECT_NEAR(opo.threshold_w(), 14e-3, 5e-3);
}

TEST(OpoModel, QuadraticBelowLinearAbove) {
  const sfwm::OpoModel opo(photonics::type2_device());
  const double pth = opo.threshold_w();

  // Below threshold: doubling pump quadruples output.
  const double p1 = opo.output_power_w(pth / 8);
  const double p2 = opo.output_power_w(pth / 4);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);

  // Above threshold: linear growth (equal increments).
  const double a1 = opo.output_power_w(1.5 * pth);
  const double a2 = opo.output_power_w(2.0 * pth);
  const double a3 = opo.output_power_w(2.5 * pth);
  EXPECT_NEAR(a2 - a1, a3 - a2, 1e-12);
  EXPECT_TRUE(opo.oscillating(2 * pth));
  EXPECT_FALSE(opo.oscillating(pth / 2));
}

TEST(OpoModel, OutputContinuousAtThreshold) {
  // The curve is value-continuous at threshold: the above-threshold branch
  // starts from the spontaneous level and adds slope x (P − P_th).
  const sfwm::OpoModel opo(photonics::type2_device());
  const double pth = opo.threshold_w();
  const double at = opo.output_power_w(pth);
  const double eps = 1e-6 * pth;
  const double above = opo.output_power_w(pth + eps);
  // Just above threshold the excess over the spontaneous level must equal
  // slope x eps (slope defaults to 0.12).
  EXPECT_NEAR(above - at, 0.12 * eps, 0.01 * 0.12 * eps);
}

TEST(OpoModel, AboveThresholdDominatesSpontaneous) {
  const sfwm::OpoModel opo(photonics::type2_device());
  const double pth = opo.threshold_w();
  EXPECT_GT(opo.output_power_w(2 * pth), 1e4 * opo.output_power_w(0.99 * pth));
}

// ------------------------------------------------------ batch sweep seams

TEST(Jsa, SchmidtDecomposeBatchMatchesScalarBitwise) {
  // The batch path normalizes each JSA and routes the SVDs through the
  // linalg batch seam, which is bitwise identical to per-matrix svd calls.
  std::vector<linalg::CMat> jsas;
  for (double ratio : {0.2, 1.0, 5.0}) {
    sfwm::JsaParams p;
    p.pump_bandwidth_hz = ratio * 820e6;
    p.ring_linewidth_s_hz = 820e6;
    p.ring_linewidth_i_hz = 820e6;
    p.grid_points = 32;
    jsas.push_back(sfwm::sample_jsa(p));
  }
  const auto batch = sfwm::schmidt_decompose_batch(jsas);
  ASSERT_EQ(batch.size(), jsas.size());
  for (std::size_t i = 0; i < jsas.size(); ++i) {
    const auto single = sfwm::schmidt_decompose(jsas[i]);
    EXPECT_EQ(single.coefficients, batch[i].coefficients) << "i=" << i;
    EXPECT_EQ(single.schmidt_number, batch[i].schmidt_number) << "i=" << i;
    EXPECT_EQ(single.purity, batch[i].purity) << "i=" << i;
    EXPECT_EQ(single.entropy_bits, batch[i].entropy_bits) << "i=" << i;
  }
  EXPECT_TRUE(sfwm::schmidt_decompose_batch({}).empty());
}

}  // namespace
