// Tests for the detection chain (S6): detector, TDC, coincidence counting,
// CAR, fitters, event streams.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/detector.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/detect/fit.hpp"
#include "qfc/detect/tdc.hpp"
#include "qfc/photonics/constants.hpp"

namespace {

using namespace qfc;
using detect::DetectorParams;
using detect::SinglePhotonDetector;
using rng::Xoshiro256;

TEST(Detector, EfficiencyThinsStream) {
  DetectorParams p;
  p.efficiency = 0.25;
  p.dark_rate_hz = 0;
  p.jitter_sigma_s = 0;
  p.dead_time_s = 0;
  SinglePhotonDetector det(p);
  Xoshiro256 g(1);

  std::vector<double> photons;
  for (int i = 0; i < 100000; ++i) photons.push_back(i * 1e-5);
  const auto clicks = det.detect(photons, 1.0, g);
  EXPECT_NEAR(static_cast<double>(clicks.size()), 25000, 600);
}

TEST(Detector, DarkCountsAtExpectedRate) {
  DetectorParams p;
  p.efficiency = 1.0;
  p.dark_rate_hz = 5000;
  p.jitter_sigma_s = 0;
  p.dead_time_s = 0;
  SinglePhotonDetector det(p);
  Xoshiro256 g(2);
  const auto clicks = det.detect({}, 10.0, g);
  EXPECT_NEAR(static_cast<double>(clicks.size()), 50000, 1000);
}

TEST(Detector, DeadTimeEnforcesMinimumSpacing) {
  DetectorParams p;
  p.efficiency = 1.0;
  p.dark_rate_hz = 0;
  p.jitter_sigma_s = 0;
  // 0.95 µs (not exactly 10 photon periods, to stay clear of floating-
  // point ties): photons 100 ns apart -> exactly every 10th survives.
  p.dead_time_s = 0.95e-6;
  SinglePhotonDetector det(p);
  Xoshiro256 g(3);
  std::vector<double> photons;
  for (int i = 0; i < 1000; ++i) photons.push_back(i * 100e-9);
  const auto clicks = det.detect(photons, 1.0, g);
  for (std::size_t i = 1; i < clicks.size(); ++i)
    EXPECT_GE(clicks[i] - clicks[i - 1], p.dead_time_s - 1e-15);
  EXPECT_NEAR(static_cast<double>(clicks.size()), 100, 1);
}

TEST(Detector, JitterSpreadsArrivals) {
  DetectorParams p;
  p.efficiency = 1.0;
  p.dark_rate_hz = 0;
  p.jitter_sigma_s = 100e-12;
  p.dead_time_s = 0;
  SinglePhotonDetector det(p);
  Xoshiro256 g(4);
  std::vector<double> photons(20000, 0.5);
  const auto clicks = det.detect(photons, 1.0, g);
  double s2 = 0;
  for (double t : clicks) s2 += (t - 0.5) * (t - 0.5);
  EXPECT_NEAR(std::sqrt(s2 / static_cast<double>(clicks.size())), 100e-12, 5e-12);
}

TEST(Detector, ValidationRejectsBadParams) {
  DetectorParams p;
  p.efficiency = 1.5;
  EXPECT_THROW(SinglePhotonDetector{p}, std::invalid_argument);
  p.efficiency = 0.5;
  p.dark_rate_hz = -1;
  EXPECT_THROW(SinglePhotonDetector{p}, std::invalid_argument);
}

TEST(Tdc, QuantizesAndInverts) {
  detect::TimeToDigitalConverter tdc(81e-12);
  EXPECT_EQ(tdc.bin_of(0.0), 0);
  EXPECT_EQ(tdc.bin_of(81e-12 * 5.5), 5);
  EXPECT_EQ(tdc.bin_of(-1e-12), -1);
  EXPECT_NEAR(tdc.time_of(5), 81e-12 * 5.5, 1e-18);
  EXPECT_THROW(detect::TimeToDigitalConverter(0.0), std::invalid_argument);
}

TEST(Coincidence, FindsCorrelatedPairs) {
  // a and b identical -> every click coincides at Δt = 0.
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) a.push_back(i * 1e-3);
  b = a;
  const auto n = detect::count_coincidences(a, b, 1e-9);
  EXPECT_EQ(n, 1000u);
  // Offset window far from zero finds nothing.
  EXPECT_EQ(detect::count_coincidences(a, b, 1e-9, 1e-6), 0u);
}

TEST(Coincidence, RequiresSortedInput) {
  std::vector<double> unsorted{2.0, 1.0};
  std::vector<double> ok{1.0, 2.0};
  EXPECT_THROW(detect::count_coincidences(unsorted, ok, 1e-9), std::invalid_argument);
}

TEST(Coincidence, HistogramPeaksAtOffset) {
  std::vector<double> a, b;
  const double offset = 3e-9;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(i * 1e-4);
    b.push_back(i * 1e-4 - offset);  // b early: Δt = a − b = +3 ns
  }
  const auto h = detect::correlate(a, b, 1e-9, 10e-9);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < h.counts.size(); ++i)
    if (h.counts[i] > h.counts[peak]) peak = i;
  EXPECT_NEAR(h.bin_time(peak), offset, 1e-9);
  EXPECT_EQ(h.total(), 5000u);
}

TEST(Coincidence, CorrelateEmptyStreams) {
  const auto h = detect::correlate({}, {}, 1e-9, 10e-9);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.counts.size(), 21u);
  EXPECT_EQ(detect::correlate({1.0}, {}, 1e-9, 10e-9).total(), 0u);
  EXPECT_EQ(detect::correlate({}, {1.0}, 1e-9, 10e-9).total(), 0u);
}

TEST(Coincidence, CorrelateRejectsNonPositiveBinWidthOrRange) {
  EXPECT_THROW(detect::correlate({}, {}, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(detect::correlate({}, {}, -1e-9, 1e-9), std::invalid_argument);
  EXPECT_THROW(detect::correlate({}, {}, 1e-9, 0.0), std::invalid_argument);
  EXPECT_THROW(detect::correlate({}, {}, 1e-9, -1e-9), std::invalid_argument);
}

TEST(Coincidence, CorrelateBinBoundaryTies) {
  // Power-of-two times so the Δt/bin ratios are exact: bin width 1 s,
  // range 3 s. Δt of exactly half a bin rounds away from zero (llround).
  const std::vector<double> a{16.0};
  const std::vector<double> b{12.9, 15.5, 15.75, 16.5};
  const auto h = detect::correlate(a, b, 1.0, 3.0);
  EXPECT_EQ(h.counts[h.center_bin()], 1u);      // Δt = +0.25 -> center
  EXPECT_EQ(h.counts[h.center_bin() + 1], 1u);  // Δt = +0.5 -> bin +1
  EXPECT_EQ(h.counts[h.center_bin() - 1], 1u);  // Δt = -0.5 -> bin -1
  EXPECT_EQ(h.total(), 3u);                     // Δt = +3.1 beyond range: dropped
}

TEST(Coincidence, CarOnSyntheticStreams) {
  // Known-rate correlated + background stream: CAR should be near the
  // analytic value R_c/(S_a S_b τ).
  Xoshiro256 g(5);
  detect::PairStreamParams p;
  p.pair_rate_hz = 2000;
  p.linewidth_hz = 100e6;
  p.duration_s = 30.0;
  const auto streams = detect::generate_pair_arrivals(p, g);
  // Add uncorrelated background to both arms.
  auto bg_a = detect::generate_poisson_arrivals(3000, p.duration_s, g);
  auto bg_b = detect::generate_poisson_arrivals(3000, p.duration_s, g);
  auto a = streams.a;
  a.insert(a.end(), bg_a.begin(), bg_a.end());
  std::sort(a.begin(), a.end());
  auto b = streams.b;
  b.insert(b.end(), bg_b.begin(), bg_b.end());
  std::sort(b.begin(), b.end());

  const auto car = detect::measure_car(a, b, 20e-9, 200e-9, 10);
  const double singles = 5000;
  const double expected_acc = singles * singles * 20e-9 * p.duration_s;
  const double expected_car = (p.pair_rate_hz * p.duration_s) / expected_acc;
  EXPECT_GT(car.car, 0.5 * expected_car);
  EXPECT_LT(car.car, 2.0 * expected_car);
  EXPECT_GT(car.car, 10.0);  // sanity: clearly correlated
}

TEST(Coincidence, CarNearOneForUncorrelatedStreams) {
  Xoshiro256 g(6);
  const auto a = detect::generate_poisson_arrivals(20000, 20.0, g);
  const auto b = detect::generate_poisson_arrivals(20000, 20.0, g);
  const auto car = detect::measure_car(a, b, 10e-9, 100e-9, 10);
  EXPECT_NEAR(car.car, 1.0, 0.25);
}

TEST(EventStream, PairCorrelationWidthMatchesLinewidth) {
  Xoshiro256 g(7);
  detect::PairStreamParams p;
  p.pair_rate_hz = 50000;
  p.linewidth_hz = 100e6;
  p.duration_s = 10.0;
  const auto streams = detect::generate_pair_arrivals(p, g);
  const auto h = detect::correlate(streams.a, streams.b, 0.25e-9, 20e-9);

  std::vector<double> t, y;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    t.push_back(h.bin_time(i));
    y.push_back(static_cast<double>(h.counts[i]));
  }
  const auto fit = detect::fit_two_sided_exponential(t, y);
  // Decay time = 1/(2π δν).
  const double expected_tau = 1.0 / (2 * photonics::pi * p.linewidth_hz);
  EXPECT_NEAR(fit.tau_s, expected_tau, 0.15 * expected_tau);
  const double lw = detect::linewidth_from_decay_time(fit.tau_s);
  EXPECT_NEAR(lw, 100e6, 15e6);
}

TEST(EventStream, TransmissionThinsArms) {
  Xoshiro256 g(8);
  detect::PairStreamParams p;
  p.pair_rate_hz = 10000;
  p.linewidth_hz = 100e6;
  p.duration_s = 5.0;
  p.transmission_a = 0.5;
  p.transmission_b = 0.1;
  const auto s = detect::generate_pair_arrivals(p, g);
  EXPECT_NEAR(static_cast<double>(s.a.size()), 25000, 700);
  EXPECT_NEAR(static_cast<double>(s.b.size()), 5000, 350);
}

TEST(Fit, ExponentialRecoversKnownTau) {
  std::vector<double> t, y;
  const double tau = 2.0e-9;
  for (int i = -40; i <= 40; ++i) {
    const double x = i * 0.25e-9;
    t.push_back(x);
    y.push_back(1000.0 * std::exp(-std::abs(x) / tau));
  }
  const auto f = detect::fit_two_sided_exponential(t, y);
  EXPECT_NEAR(f.tau_s, tau, 1e-12);
  EXPECT_NEAR(f.amplitude, 1000.0, 1e-6);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(Fit, ExponentialRejectsGarbage) {
  EXPECT_THROW(detect::fit_two_sided_exponential({1e-9}, {5.0}), std::invalid_argument);
  // Growing "decay".
  std::vector<double> t{0, 1e-9, 2e-9, 3e-9}, y{1, 10, 100, 1000};
  EXPECT_THROW(detect::fit_two_sided_exponential(t, y), std::invalid_argument);
}

TEST(Fit, JitterDeconvolution) {
  // τ_meas² = τ² + 2σ² rearranged.
  const double tau_true = 1.5e-9;
  const double sigma = 0.4e-9;
  const double tau_meas = std::sqrt(tau_true * tau_true + 2 * sigma * sigma);
  EXPECT_NEAR(detect::deconvolve_jitter(tau_meas, sigma), tau_true, 1e-15);
  // Over-correction clamps to the measured value.
  EXPECT_DOUBLE_EQ(detect::deconvolve_jitter(0.1e-9, 1e-9), 0.1e-9);
}

TEST(Fit, SinusoidRecoversVisibilityAndPhase) {
  std::vector<double> x, y;
  const double v = 0.83, c0 = 500, ph = 0.6;
  for (int i = 0; i < 24; ++i) {
    const double xi = 2 * photonics::pi * i / 24.0;
    x.push_back(xi);
    y.push_back(c0 * (1 + v * std::cos(xi + ph)));
  }
  const auto f = detect::fit_sinusoid(x, y);
  EXPECT_NEAR(f.offset, c0, 1e-9);
  EXPECT_NEAR(f.visibility, v, 1e-9);
  EXPECT_NEAR(f.phase_rad, ph, 1e-9);
}

TEST(Fit, VisibilityFromExtrema) {
  EXPECT_NEAR(detect::visibility_from_extrema(183, 17), 0.83, 1e-12);
  EXPECT_DOUBLE_EQ(detect::visibility_from_extrema(0, 0), 0.0);
  EXPECT_THROW(detect::visibility_from_extrema(1, 2), std::invalid_argument);
}

TEST(Fit, LinewidthConversionRoundTrip) {
  const double lw = 110e6;
  const double tau = 1.0 / (2 * photonics::pi * lw);
  EXPECT_NEAR(detect::linewidth_from_decay_time(tau), lw, 1e-3);
  EXPECT_THROW(detect::linewidth_from_decay_time(0.0), std::invalid_argument);
}

}  // namespace
