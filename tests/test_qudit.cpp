// Tests for the frequency-bin qudit subsystem: mixed-radix states, the
// Weyl/Gell-Mann operator toolbox, the comb-backed FreqBinSource, the
// EOM + pulse-shaper measurement layer, the CGLMP Bell test (must reduce to
// CHSH at d = 2), and MUB tomography for prime d.

#include <cmath>

#include <gtest/gtest.h>

#include "qfc/photonics/device_presets.hpp"
#include "qfc/qudit/cglmp.hpp"
#include "qfc/qudit/dstate.hpp"
#include "qfc/qudit/freq_bin_source.hpp"
#include "qfc/qudit/measurement.hpp"
#include "qfc/qudit/mub.hpp"
#include "qfc/qudit/operators.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/timebin/chsh.hpp"

namespace {

using qfc::linalg::cplx;
using qfc::linalg::CMat;
using qfc::linalg::CVec;
using namespace qfc::qudit;

constexpr double kPi = 3.14159265358979323846;

TEST(DState, GroundStateAndValidation) {
  const DState psi(Dims{3, 4});
  EXPECT_EQ(psi.dim(), 12u);
  EXPECT_NEAR(psi.probability(0), 1.0, 1e-15);
  EXPECT_THROW(DState(Dims{}), std::invalid_argument);
  EXPECT_THROW(DState(Dims{1, 3}), std::invalid_argument);
  EXPECT_THROW(DState(CVec(5, cplx(1, 0)), Dims{2, 3}), std::invalid_argument);
  EXPECT_THROW(DState(CVec(6, cplx(0, 0)), Dims{2, 3}), std::invalid_argument);
}

TEST(DState, MaximallyEntangledStructure) {
  const DState phi = DState::maximally_entangled(3);
  EXPECT_EQ(phi.dim(), 9u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(phi.probability(k * 3 + k), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(phi.probability(1), 0.0, 1e-15);
}

TEST(DState, ApplyLocalMatchesFullKron) {
  // F on particle 0 and X on particle 1 of a random-ish state, applied both
  // locally and as a full-register kron, must agree.
  CVec amps(12);
  for (std::size_t i = 0; i < amps.size(); ++i)
    amps[i] = cplx(std::sin(1.0 + 0.7 * static_cast<double>(i)),
                   std::cos(0.3 * static_cast<double>(i)));
  const DState psi(amps, Dims{3, 4});

  const CMat f3 = fourier_matrix(3);
  const CMat x4 = shift_operator(4);
  const DState via_local = psi.apply_local(f3, 0).apply_local(x4, 1);
  const DState via_full = psi.apply(qfc::linalg::kron(f3, x4));
  for (std::size_t i = 0; i < psi.dim(); ++i)
    EXPECT_NEAR(std::abs(via_local.amplitude(i) - via_full.amplitude(i)), 0.0, 1e-12);
}

TEST(DState, ApplyLocalValidation) {
  const DState psi(Dims{3, 4});
  EXPECT_THROW(psi.apply_local(fourier_matrix(3), 1), std::invalid_argument);
  EXPECT_THROW(psi.apply_local(fourier_matrix(3), 2), std::out_of_range);
}

TEST(DDensityMatrix, PartialTraceOfEntangledPairIsMixed) {
  for (std::size_t d : {2u, 3u, 5u}) {
    const DDensityMatrix rho(DState::maximally_entangled(d));
    const DDensityMatrix reduced = rho.partial_trace_keep({0});
    EXPECT_EQ(reduced.dim(), d);
    EXPECT_NEAR(purity(reduced), 1.0 / static_cast<double>(d), 1e-12);
  }
}

TEST(DDensityMatrix, PartialTraceOfProductRecoversFactors) {
  const DState a(CVec{cplx(0.6, 0), cplx(0, 0.8)}, Dims{2});
  const DState b(CVec{cplx(1, 0), cplx(1, 0), cplx(1, 0)}, Dims{3});
  const DDensityMatrix ab = DDensityMatrix(a).tensor(DDensityMatrix(b));
  EXPECT_LT((ab.partial_trace_keep({0}).matrix() - DDensityMatrix(a).matrix()).max_abs(),
            1e-12);
  EXPECT_LT((ab.partial_trace_keep({1}).matrix() - DDensityMatrix(b).matrix()).max_abs(),
            1e-12);
}

TEST(DDensityMatrix, MixedRadixPartialTraceMiddleParticle) {
  const DState psi = DState(Dims{2}).tensor(DState(Dims{3})).tensor(DState(Dims{2}));
  const DDensityMatrix rho(psi);
  const DDensityMatrix mid = rho.partial_trace_keep({1});
  EXPECT_EQ(mid.dim(), 3u);
  EXPECT_NEAR(std::real(mid.matrix()(0, 0)), 1.0, 1e-12);
}

// Satellite criterion: the maximally entangled qudit pair carries log₂d
// ebits of entanglement entropy.
TEST(Measures, MaxEntangledEntropyIsLog2D) {
  for (std::size_t d : {2u, 3u, 4u, 5u, 7u}) {
    const DDensityMatrix rho(DState::maximally_entangled(d));
    const double e = von_neumann_entropy_bits(rho.partial_trace_keep({1}));
    EXPECT_NEAR(e, std::log2(static_cast<double>(d)), 1e-9) << "d=" << d;
  }
}

TEST(Measures, MaxEntangledNegativityClosedForm) {
  // N(Φ_d) = (d−1)/2 under the PPT criterion.
  for (std::size_t d : {2u, 3u, 4u}) {
    const DDensityMatrix rho(DState::maximally_entangled(d));
    EXPECT_NEAR(negativity(rho, 1), (static_cast<double>(d) - 1.0) / 2.0, 1e-9);
  }
}

TEST(Measures, SchmidtNumberCountsEntangledDimensions) {
  EXPECT_NEAR(schmidt_number(DState::maximally_entangled(4)), 4.0, 1e-10);
  const DState product = DState(Dims{3}).tensor(DState(Dims{3}));
  EXPECT_NEAR(schmidt_number(product), 1.0, 1e-10);
}

TEST(Measures, QuditForwardsAgreeWithQubitLayer) {
  // A two-qubit Bell state seen as a d=2 qudit pair must give identical
  // metrics through both layers (they share the matrix-level code).
  const qfc::quantum::StateVector bell = qfc::quantum::bell_phi(0.3);
  const qfc::quantum::DensityMatrix qrho(bell);
  const DDensityMatrix drho(qrho.matrix(), Dims{2, 2});
  EXPECT_NEAR(purity(drho), qfc::quantum::purity(qrho), 1e-12);
  EXPECT_NEAR(negativity(drho, 1), qfc::quantum::negativity(qrho, 1), 1e-12);
  EXPECT_NEAR(von_neumann_entropy_bits(drho),
              qfc::quantum::von_neumann_entropy_bits(qrho), 1e-12);
}

TEST(Operators, WeylAlgebra) {
  for (std::size_t d : {2u, 3u, 5u}) {
    const CMat x = shift_operator(d);
    const CMat z = clock_operator(d);
    EXPECT_TRUE(qfc::linalg::is_unitary(x));
    EXPECT_TRUE(qfc::linalg::is_unitary(z));
    // ZX = ω XZ.
    const cplx omega(std::cos(2 * kPi / static_cast<double>(d)),
                     std::sin(2 * kPi / static_cast<double>(d)));
    EXPECT_LT((z * x - x * z * omega).max_abs(), 1e-12) << "d=" << d;
    // X^d = Z^d = I.
    CMat xp = CMat::identity(d), zp = CMat::identity(d);
    for (std::size_t i = 0; i < d; ++i) {
      xp = xp * x;
      zp = zp * z;
    }
    EXPECT_LT((xp - CMat::identity(d)).max_abs(), 1e-12);
    EXPECT_LT((zp - CMat::identity(d)).max_abs(), 1e-12);
  }
}

TEST(Operators, WeylOperatorsAreOrthogonalBasis) {
  const std::size_t d = 3;
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < d; ++b)
      for (std::size_t a2 = 0; a2 < d; ++a2)
        for (std::size_t b2 = 0; b2 < d; ++b2) {
          const cplx tr =
              (weyl_operator(d, a, b).adjoint() * weyl_operator(d, a2, b2)).trace();
          const double expected = (a == a2 && b == b2) ? static_cast<double>(d) : 0.0;
          EXPECT_NEAR(std::abs(tr), expected, 1e-12);
        }
}

TEST(Operators, GellMannBasisProperties) {
  for (std::size_t d : {2u, 3u, 4u}) {
    const auto basis = gell_mann_basis(d);
    ASSERT_EQ(basis.size(), d * d - 1);
    for (std::size_t a = 0; a < basis.size(); ++a) {
      EXPECT_TRUE(qfc::linalg::is_hermitian(basis[a]));
      EXPECT_NEAR(std::abs(basis[a].trace()), 0.0, 1e-12);
      for (std::size_t b = 0; b < basis.size(); ++b) {
        const double expected = (a == b) ? 2.0 : 0.0;
        EXPECT_NEAR(std::real((basis[a] * basis[b]).trace()), expected, 1e-12);
      }
    }
  }
}

TEST(Operators, BlochVectorRoundTrip) {
  // ρ = I/d + ½ Σ r_a λ_a reconstructs the state from its Bloch vector.
  const DState psi(CVec{cplx(1, 0), cplx(0, 1), cplx(-0.5, 0.2)}, Dims{3});
  const CMat rho = DDensityMatrix(psi).matrix();
  const auto r = bloch_vector(rho);
  const auto basis = gell_mann_basis(3);
  CMat rebuilt = qfc::linalg::to_complex(qfc::linalg::RMat::identity(3));
  rebuilt *= cplx(1.0 / 3.0, 0);
  for (std::size_t a = 0; a < basis.size(); ++a) {
    CMat term = basis[a];
    term *= cplx(r[a], 0);
    rebuilt += term;
  }
  EXPECT_LT((rebuilt - rho).max_abs(), 1e-10);
}

TEST(FreqBinSource, AmplitudesFollowBrightness) {
  const qfc::photonics::CombGrid grid(193.1e12, 200e9, 6);
  const std::vector<double> brightness{4.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  FreqBinConfig cfg;
  cfg.dimension = 4;
  const FreqBinSource src(grid, brightness, cfg);
  const CVec c = src.bin_amplitudes();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(std::norm(c[0]), 4.0 / 7.0, 1e-12);  // 4/(4+1+1+1)
  EXPECT_NEAR(std::norm(c[1]), 1.0 / 7.0, 1e-12);
  const DState psi = src.state();
  EXPECT_NEAR(psi.probability(0), 4.0 / 7.0, 1e-12);  // |0⟩|0⟩
  EXPECT_NEAR(psi.probability(5), 1.0 / 7.0, 1e-12);  // |1⟩|1⟩
}

TEST(FreqBinSource, FlatteningYieldsMaximallyEntangled) {
  const qfc::photonics::CombGrid grid(193.1e12, 200e9, 5);
  FreqBinConfig cfg;
  cfg.dimension = 3;
  cfg.bin_phase_rad = {0.0, 0.4, -1.1};
  const FreqBinSource src(grid, {2.0, 1.0, 0.5, 0.1, 0.1}, cfg);

  EXPECT_LT(src.schmidt_number(), 3.0);
  const DState flat = src.flattened_state();
  EXPECT_NEAR(flat.overlap_probability(DState::maximally_entangled(3)), 1.0, 1e-12);
  // Procrustean cost: kept fraction = d * weakest bin probability.
  const double weakest = 0.5 / 3.5;
  EXPECT_NEAR(src.shaping_efficiency(src.flattening_mask()), 3 * weakest, 1e-12);
  EXPECT_NEAR(schmidt_number(flat), 3.0, 1e-10);
}

TEST(FreqBinSource, FromCwSourceUsesPairRates) {
  using namespace qfc;
  const auto ring = photonics::entanglement_device();
  photonics::CwPump pump;
  pump.power_w = 0.01;
  pump.frequency_hz = photonics::pump_resonance_hz(ring);
  const sfwm::CwPairSource cw(ring, pump, 8);
  const auto src = FreqBinSource::from_cw_source(cw, 6);
  EXPECT_EQ(src.dimension(), 6u);
  // Brightness falls off with k through phase matching, so the state is
  // entangled but not maximally (1 < K < d).
  const double k = src.schmidt_number();
  EXPECT_GT(k, 1.0);
  EXPECT_LE(k, 6.0);
  EXPECT_GT(src.entanglement_entropy_bits(), 0.0);
}

TEST(Analyzer, FourierVectorsAreOrthonormal) {
  const FreqBinAnalyzer an(5);
  for (std::size_t k = 0; k < 5; ++k)
    for (std::size_t l = 0; l < 5; ++l) {
      const cplx ip = qfc::linalg::vdot(an.fourier_vector(k, 0.37),
                                        an.fourier_vector(l, 0.37));
      EXPECT_NEAR(std::abs(ip), k == l ? 1.0 : 0.0, 1e-12);
    }
}

TEST(Analyzer, ProjectionEfficiencyFollowsBesselEnvelope) {
  AnalyzerConfig cfg;
  cfg.modulation_index = 1.2;
  cfg.detection_bin = 2;
  const FreqBinAnalyzer an(5, cfg);
  // A component sitting on the detection bin passes through the carrier
  // sideband J₀(m); components n bins away pay J_n(m).
  CVec single(5, cplx(0, 0));
  single[2] = cplx(1, 0);
  const double j0 = 0.6711327442643626;  // J₀(1.2); avoids std::cyl_bessel_j,
                                         // which libc++ lacks
  EXPECT_NEAR(an.projection_efficiency(single), j0 * j0, 1e-12);
  // A uniform superposition reaching distant bins does strictly worse.
  CVec uniform(5, cplx(1, 0));
  const double eff = an.projection_efficiency(uniform);
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, j0 * j0);
}

TEST(Analyzer, RealizedProjectorIsNormalized) {
  const FreqBinAnalyzer an(4);
  const CVec target = an.fourier_vector(1, 0.0);
  const CMat p = an.realized_projector(target);
  EXPECT_NEAR(std::real((p * p).trace()), 1.0, 1e-12);  // rank-1 projector
}

// Acceptance criterion: CGLMP at d = 2 matches the existing timebin CHSH
// to 1e-9, across the whole Werner family (both are linear in ρ).
TEST(Cglmp, ReducesToChshAtD2) {
  const auto settings = qfc::timebin::optimal_settings_for_phi(0.0);
  for (double v : {1.0, 0.9, 0.7071, 0.5, 0.2, 0.0}) {
    const qfc::quantum::DensityMatrix werner = qfc::quantum::werner_phi(v);
    const double s_chsh = qfc::timebin::chsh_s_value(werner, settings);
    const DDensityMatrix as_qudit(werner.matrix(), Dims{2, 2});
    const double i2 = cglmp_value(as_qudit);
    EXPECT_NEAR(i2, s_chsh, 1e-9) << "V=" << v;
  }
  EXPECT_NEAR(cglmp_max_entangled_value(2), 2.0 * std::sqrt(2.0), 1e-9);
}

// Acceptance criterion: d = 4 maximally entangled state violates the
// classical CGLMP bound of 2.
TEST(Cglmp, ViolationGrowsWithDimension) {
  const double i2 = cglmp_max_entangled_value(2);
  const double i3 = cglmp_max_entangled_value(3);
  const double i4 = cglmp_max_entangled_value(4);
  // Reference values from CGLMP (PRL 88, 040404) Table/text.
  EXPECT_NEAR(i2, 2.8284271, 1e-6);
  EXPECT_NEAR(i3, 2.8729340, 1e-6);
  EXPECT_NEAR(i4, 2.8962432, 1e-6);
  EXPECT_GT(i3, i2);
  EXPECT_GT(i4, i3);
  EXPECT_GT(i4, cglmp_classical_bound());

  // Independent cross-check: the closed-form joint probabilities of the
  // maximally entangled state, P(m,n) = 1/(2d³ sin²[π((n−m)−(α+β))/d]),
  // must match the projector-based computation.
  const std::size_t d = 5;
  const DDensityMatrix phi(DState::maximally_entangled(d));
  const auto p = cglmp_joint_probabilities(phi, 0, 0);  // α+β = 1/4
  for (std::size_t m = 0; m < d; ++m)
    for (std::size_t n = 0; n < d; ++n) {
      const double theta =
          (static_cast<double>(n) - static_cast<double>(m) - 0.25) * kPi /
          static_cast<double>(d);
      const double closed =
          1.0 / (2.0 * std::pow(static_cast<double>(d), 3) *
                 std::pow(std::sin(theta), 2));
      EXPECT_NEAR(p[m * d + n], closed, 1e-12);
    }
}

TEST(Cglmp, MixedStateLosesViolation) {
  const DState phi3 = DState::maximally_entangled(3);
  // I_d is linear in ρ and vanishes on the maximally mixed state.
  const double i_pure = cglmp_value(DDensityMatrix(phi3));
  for (double v : {0.8, 0.5, 0.1}) {
    const double i_noisy = cglmp_value(isotropic_noise(phi3, v));
    EXPECT_NEAR(i_noisy, v * i_pure, 1e-9);
  }
  EXPECT_NEAR(cglmp_value(DDensityMatrix(Dims{3, 3})), 0.0, 1e-12);
}

TEST(Analyzer, SimulateJointCountsValidation) {
  qfc::rng::Xoshiro256 g(3);
  const FreqBinAnalyzer an(3);
  std::vector<CMat> projs;
  for (std::size_t k = 0; k < 3; ++k)
    projs.push_back(FreqBinAnalyzer::ideal_projector(an.fourier_vector(k, 0.0)));
  const DDensityMatrix pair(DState::maximally_entangled(3));
  const auto counts = simulate_joint_counts(pair, projs, projs, 1000, 0.0, g);
  EXPECT_EQ(counts.size(), 9u);
  // A single qudit is not a pair; negative knobs are rejected.
  const DDensityMatrix single(Dims{3});
  EXPECT_THROW(simulate_joint_counts(single, projs, projs, 1000, 0.0, g),
               std::invalid_argument);
  EXPECT_THROW(simulate_joint_counts(pair, projs, projs, 0, 0.0, g),
               std::invalid_argument);
  EXPECT_THROW(simulate_joint_counts(pair, projs, projs, 1000, -1.0, g),
               std::invalid_argument);
}

TEST(Cglmp, CountBasedMeasurementAgreesWithExact) {
  qfc::rng::Xoshiro256 g(42);
  const DDensityMatrix rho(DState::maximally_entangled(3));
  const auto m = measure_cglmp(rho, 200000, 5.0, g);
  EXPECT_TRUE(m.violates_classical());
  EXPECT_NEAR(m.i_value, cglmp_max_entangled_value(3), 0.05);
  EXPECT_GT(m.sigmas_above_classical(), 5.0);
}

TEST(Cglmp, SchmidtNumberWitnessCertifiesDimension) {
  EXPECT_EQ(schmidt_number_witness(DDensityMatrix(DState::maximally_entangled(4))), 4u);
  EXPECT_EQ(schmidt_number_witness(DDensityMatrix(Dims{4, 4})), 1u);
  // Product state: F = 1/d, certifies only Schmidt number 1.
  const DState product = DState(Dims{3}).tensor(DState(Dims{3}));
  EXPECT_EQ(schmidt_number_witness(DDensityMatrix(product)), 1u);
  // Lightly noisy Φ_4 still certifies the full dimension.
  EXPECT_EQ(schmidt_number_witness(isotropic_noise(DState::maximally_entangled(4), 0.95)),
            4u);
}

TEST(Mub, BasesAreMutuallyUnbiased) {
  for (std::size_t d : {2u, 3u, 5u, 7u}) {
    const auto bases = mub_bases(d);
    ASSERT_EQ(bases.size(), d + 1);
    const double target = 1.0 / static_cast<double>(d);
    for (std::size_t b = 0; b < bases.size(); ++b) {
      EXPECT_TRUE(qfc::linalg::is_unitary(bases[b])) << "d=" << d << " b=" << b;
      for (std::size_t b2 = b + 1; b2 < bases.size(); ++b2) {
        const CMat overlap = bases[b].adjoint() * bases[b2];
        for (std::size_t i = 0; i < d; ++i)
          for (std::size_t j = 0; j < d; ++j)
            EXPECT_NEAR(std::norm(overlap(i, j)), target, 1e-10)
                << "d=" << d << " pair (" << b << "," << b2 << ")";
      }
    }
  }
}

TEST(Mub, RejectsNonPrime) {
  EXPECT_THROW(mub_bases(4), std::invalid_argument);
  EXPECT_THROW(mub_bases(6), std::invalid_argument);
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(31));
  EXPECT_FALSE(is_prime(33));
}

TEST(Mub, SingleQuditLinearInversionRoundTrip) {
  const DState psi(CVec{cplx(0.8, 0), cplx(0, 0.5), cplx(-0.3, 0.1)}, Dims{3});
  const DDensityMatrix rho(psi);
  qfc::rng::Xoshiro256 g(7);
  const auto data = simulate_mub_counts(rho, 2e6, g);
  ASSERT_EQ(data.size(), 4u);
  const CMat est = mub_linear_inversion(data, 3, 1);
  EXPECT_NEAR(std::real(est.trace()), 1.0, 1e-6);
  EXPECT_LT((est - rho.matrix()).max_abs(), 0.01);
}

// Satellite criterion: MUB tomography round-trips a random d = 3 state to
// fidelity > 0.99.
TEST(Mub, TwoQutritTomographyRoundTrip) {
  // A "random" (fixed-seed, unstructured) two-qutrit pure state.
  qfc::rng::Xoshiro256 amp_rng(2026);
  CVec amps(9);
  for (auto& a : amps) a = cplx(amp_rng.uniform(-1, 1), amp_rng.uniform(-1, 1));
  const DState psi(amps, Dims{3, 3});
  const DDensityMatrix rho(psi);

  qfc::rng::Xoshiro256 g(11);
  const auto data = simulate_mub_counts(rho, 50000, g);
  ASSERT_EQ(data.size(), 16u);  // (d+1)² settings

  // RρR converges linearly; 1e-6 on the Frobenius update is far below the
  // shot-noise floor of 50k-count data and keeps the iteration count sane.
  qfc::tomo::MleOptions opts;
  opts.convergence_tol = 1e-6;
  const auto mle = mub_maximum_likelihood(data, 3, 2, opts);
  EXPECT_TRUE(mle.converged);
  EXPECT_GT(fidelity(mle.rho, psi), 0.99);
}

TEST(Mub, TomographyRecoversEntangledQutritPair) {
  const DState phi = DState::maximally_entangled(3);
  qfc::rng::Xoshiro256 g(99);
  const auto data = simulate_mub_counts(isotropic_noise(phi, 0.9), 50000, g);
  const auto mle = mub_maximum_likelihood(data, 3, 2);
  // Reconstruction preserves the entanglement metrics of the true state.
  EXPECT_NEAR(fidelity(mle.rho, phi), 0.9 + 0.1 / 9.0, 0.02);
  EXPECT_GT(negativity(mle.rho, 1), 0.5);
}

// ------------------------------------------------------ batch sweep seams

TEST(Cglmp, BatchMatchesScalarBitwise) {
  const DState phi3 = DState::maximally_entangled(3);
  std::vector<DDensityMatrix> rhos;
  for (double v : {1.0, 0.9, 0.7, 0.5, 0.1}) rhos.push_back(isotropic_noise(phi3, v));
  const auto batch = cglmp_values(rhos);
  ASSERT_EQ(batch.size(), rhos.size());
  for (std::size_t i = 0; i < rhos.size(); ++i)
    EXPECT_EQ(batch[i], cglmp_value(rhos[i])) << "i=" << i;
  EXPECT_TRUE(cglmp_values({}).empty());
}

TEST(Mub, MleBatchMatchesScalarBitwise) {
  const DState phi = DState::maximally_entangled(3);
  qfc::rng::Xoshiro256 g(123);
  std::vector<std::vector<MubSettingCounts>> datasets;
  for (double v : {0.95, 0.8})
    datasets.push_back(simulate_mub_counts(isotropic_noise(phi, v), 20000, g));

  qfc::tomo::MleOptions opts;
  opts.convergence_tol = 1e-6;
  const auto batch = mub_maximum_likelihood_batch(datasets, 3, 2, opts);
  ASSERT_EQ(batch.size(), datasets.size());
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const auto single = mub_maximum_likelihood(datasets[i], 3, 2, opts);
    EXPECT_EQ(single.iterations, batch[i].iterations) << "i=" << i;
    EXPECT_EQ(single.converged, batch[i].converged) << "i=" << i;
    EXPECT_EQ(single.log_likelihood, batch[i].log_likelihood) << "i=" << i;
    EXPECT_EQ(single.rho.matrix(), batch[i].rho.matrix()) << "i=" << i;
  }
}

}  // namespace
