// Design-flow walk-through: dimension a Hydex microring for each of the
// paper's three experiments, the way a device designer would — geometry →
// FSR, coupling → linewidth/Q, birefringence trim → TE/TM offset — and
// verify the resulting device meets its quantum-optics requirements.

#include <cstdio>

#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/dispersion.hpp"
#include "qfc/photonics/material.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/sfwm/phase_matching.hpp"

int main() {
  using namespace qfc::photonics;

  std::printf("== step 1: waveguide ==\n");
  const Waveguide wg({1.50e-6, 1.50e-6}, hydex());
  const double f0 = itu_anchor_hz;
  std::printf("Hydex core 1.50 x 1.50 um: n_eff = %.4f, n_g = %.4f @ 1552 nm\n",
              wg.effective_index(f0, Polarization::TE),
              wg.group_index(f0, Polarization::TE));

  std::printf("\n== step 2: ring radius for a 200 GHz FSR ==\n");
  const double radius =
      speed_of_light_m_per_s / (wg.group_index(f0, Polarization::TE) * 200e9 * 2 * pi);
  std::printf("R = c / (n_g FSR 2π) = %.1f um\n", radius * 1e6);

  std::printf("\n== step 3: coupling for each experiment's Q target ==\n");
  struct Target {
    const char* use;
    double linewidth_hz;
  } targets[] = {{"heralded photons (Sec II)", 110e6},
                 {"time-bin entanglement (Sec IV/V)", itu_anchor_hz / 235000.0},
                 {"type-II / OPO (Sec III)", 80e6}};
  for (const auto& t : targets) {
    const double coup =
        design_symmetric_coupling_for_linewidth(wg, radius, 6.0, t.linewidth_hz, f0);
    const MicroringResonator ring(wg, radius, coup, coup, 6.0);
    std::printf("%-34s t = %.5f -> Q = %.0fk, finesse %.0f, FE^2 = %.0f\n", t.use,
                coup, ring.loaded_q(f0, Polarization::TE) / 1e3, ring.finesse(),
                ring.peak_field_enhancement());
  }

  std::printf("\n== step 4: birefringence trim for type-II (Sec III) ==\n");
  for (double trim : {0.0, -0.5e-3, -1.5e-3}) {
    const Waveguide wgt({1.50e-6, 1.50e-6}, hydex(), 0.012, trim);
    const double coup =
        design_symmetric_coupling_for_linewidth(wgt, radius, 6.0, 80e6, f0);
    const MicroringResonator ring(wgt, radius, coup, coup, 6.0);
    const double offset = qfc::sfwm::te_tm_grid_offset_hz(ring, f0);
    const double supp = qfc::sfwm::stimulated_fwm_suppression_db(
        ring, ring.nearest_resonance_hz(f0, Polarization::TE),
        ring.nearest_resonance_hz(f0, Polarization::TM));
    const double fsr_te = ring.fsr_hz(f0, Polarization::TE);
    const double fsr_tm = ring.fsr_hz(f0, Polarization::TM);
    std::printf("trim %+.1e: TE/TM offset %+7.1f GHz, FSR mismatch %5.1f kHz, "
                "stim. FWM suppression %5.1f dB\n",
                trim, offset / 1e9, (fsr_te - fsr_tm) / 1e3, supp);
  }

  std::printf("\n== step 5: dispersion budget ==\n");
  const double coup = design_symmetric_coupling_for_linewidth(wg, radius, 6.0, 110e6, f0);
  const MicroringResonator ring(wg, radius, coup, coup, 6.0);
  const auto prof = dispersion_profile(ring, f0, 16);
  std::printf("D2 = %.0f kHz per mode² -> %d phase-matched channel pairs\n",
              prof.d2_hz / 1e3, phase_matched_pair_count(ring, f0, 60));
  std::printf("(the paper's experiments use 5 pairs: within budget)\n");
  return 0;
}
