// Frequency-bin qudit walk-through: treat the comb's symmetric channel
// pairs as a d-level system (Kues et al. 2020), shape the bin amplitudes
// à la Maltese et al. 2019, certify the dimensionality with the Schmidt
// number witness, violate the CGLMP inequality, and reconstruct the state
// with MUB tomography.

#include <cmath>
#include <cstdio>

#include "qfc/photonics/device_presets.hpp"
#include "qfc/qudit/cglmp.hpp"
#include "qfc/qudit/freq_bin_source.hpp"
#include "qfc/qudit/measurement.hpp"
#include "qfc/qudit/mub.hpp"
#include "qfc/sfwm/pair_source.hpp"

int main() {
  using namespace qfc;

  const std::size_t d = 5;
  const auto ring = photonics::entanglement_device();
  photonics::CwPump pump;
  pump.power_w = 0.01;
  pump.frequency_hz = photonics::pump_resonance_hz(ring);
  const sfwm::CwPairSource cw(ring, pump, 8);

  std::printf("== frequency-bin qudit source (d = %zu) ==\n", d);
  const auto src = qudit::FreqBinSource::from_cw_source(cw, d);
  const auto amps = src.bin_amplitudes();
  for (std::size_t k = 0; k < d; ++k) {
    const auto pair = src.grid().pair(static_cast<int>(k) + 1);
    std::printf("bin %zu: signal %s  |c|^2 = %.4f\n", k,
                photonics::CombGrid::describe(pair.signal).c_str(),
                std::norm(amps[k]));
  }
  std::printf("Schmidt number K = %.3f, entanglement entropy %.3f bits "
              "(log2 d = %.3f)\n",
              src.schmidt_number(), src.entanglement_entropy_bits(),
              std::log2(static_cast<double>(d)));

  std::printf("\n== amplitude shaping (procrustean flattening) ==\n");
  const qudit::DState flat = src.flattened_state();
  std::printf("flattened overlap with |Phi_%zu>: %.6f, post-selection "
              "efficiency %.3f\n",
              d, flat.overlap_probability(qudit::DState::maximally_entangled(d)),
              src.shaping_efficiency(src.flattening_mask()));

  const qudit::DDensityMatrix rho(flat);
  std::printf("\n== dimensionality witness ==\n");
  std::printf("certified Schmidt number: %zu of %zu\n",
              qudit::schmidt_number_witness(rho), d);

  std::printf("\n== CGLMP Bell test ==\n");
  rng::Xoshiro256 g(7);
  std::printf("exact I_%zu = %.5f (classical bound %.0f)\n", d,
              qudit::cglmp_value(rho), qudit::cglmp_classical_bound());
  const auto meas = qudit::measure_cglmp(rho, 20000, 1.0, g);
  std::printf("counts  I_%zu = %.3f +/- %.3f (%.1f sigma above classical)\n", d,
              meas.i_value, meas.i_err, meas.sigmas_above_classical());

  std::printf("\n== EOM + pulse-shaper analyzer ==\n");
  const qudit::FreqBinAnalyzer analyzer(d);
  std::printf("projection efficiency of a Fourier-basis analysis vector: %.3f "
              "(modulation index %.1f)\n",
              analyzer.projection_efficiency(analyzer.fourier_vector(0, 0.0)),
              analyzer.config().modulation_index);

  std::printf("\n== MUB tomography (d = %zu is prime -> %zu bases) ==\n", d, d + 1);
  const auto data = qudit::simulate_mub_counts(rho, 10000, g);
  tomo::MleOptions opts;
  opts.convergence_tol = 1e-6;
  const auto mle = qudit::mub_maximum_likelihood(data, d, 2, opts);
  std::printf("MLE: %d iterations, converged = %s\n", mle.iterations,
              mle.converged ? "yes" : "no");
  std::printf("reconstruction fidelity with the true state: %.4f\n",
              qudit::fidelity(mle.rho, flat));
  std::printf("reconstructed negativity: %.3f (ideal (d-1)/2 = %.1f)\n",
              qudit::negativity(mle.rho, 1), (static_cast<double>(d) - 1) / 2);
  return 0;
}
