// Application walk-through: entanglement-based QKD over the multiplexed
// comb (the paper's "secure communications" motivation). The source sits
// between Alice and Bob; every symmetric channel pair is an independent
// BBM92 link, so users can be added by assigning channel pairs.

#include <cstdio>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/core/qkd_network.hpp"

int main() {
  using namespace qfc;

  auto comb =
      core::QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();
  core::MultiplexedQkdLink link(exp);

  std::printf("== multi-user metro link, 20 km Alice-Bob ==\n");
  std::printf("%8s %12s %8s %14s %8s\n", "channel", "visibility", "QBER",
              "key (bit/s)", "key?");
  for (const auto& ch : link.all_channels(20.0))
    std::printf("%8d %12.3f %8.3f %14.1f %8s\n", ch.k, ch.visibility, ch.qber,
                ch.key_rate_bps, ch.key_positive ? "yes" : "no");
  std::printf("aggregate: %.1f bit/s across 5 multiplexed channel pairs\n",
              link.aggregate_key_rate_bps(20.0));

  std::printf("\n== rate vs distance (channel 1) ==\n");
  for (double km : {0.0, 20.0, 50.0, 100.0, 150.0}) {
    const auto ch = link.channel_performance(1, km);
    std::printf("%5.0f km: QBER %5.3f, key %8.2f bit/s\n", km, ch.qber,
                ch.key_rate_bps);
  }
  std::printf("cutoff distance: %.0f km\n", link.max_distance_km(1));

  // A 64-user network from one shared streaming engine run: distances
  // spread over the metro area, 1% adjacent-bin demux leakage, per-user
  // Monte-Carlo reports plus network aggregates.
  std::printf("\n== 64-user network, one shared streaming run ==\n");
  auto cfg = core::QkdNetworkConfig::uniform(/*num_users=*/64,
                                             /*max_distance_km=*/80.0);
  cfg.stream_window_s = 0.01;
  for (auto& user : cfg.users) user.crosstalk_leakage = 0.01;
  const core::QkdNetwork net(exp, cfg);
  const auto report = net.run(/*duration_s=*/0.05);
  std::printf("users with positive key: %zu / %zu\n", report.users_with_key,
              report.users.size());
  std::printf("total key rate: %.1f bit/s, worst QBER %.3f\n",
              report.total_key_rate_bps, report.worst_qber);
  std::printf("%14s %7s %8s %16s\n", "distance bin", "users", "w/ key",
              "key (bit/s)");
  for (const auto& bin : report.distance_histogram)
    std::printf("%5.0f-%3.0f km %7zu %8zu %16.1f\n", bin.lo_km, bin.hi_km,
                bin.users, bin.users_with_key, bin.total_key_rate_bps);
  return 0;
}
