// Sec. V walk-through: combine two Bell pairs from four comb lines into a
// four-photon state, observe four-photon interference, and reconstruct the
// density matrix by maximum-likelihood tomography.

#include <cstdio>

#include "qfc/core/comb_source.hpp"
#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"

int main() {
  using namespace qfc;

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::DoublePulseFourMode);
  core::FourPhotonConfig cfg;
  cfg.tomo_shots_per_setting = 200;
  auto exp = comb.four_photon(cfg);

  std::printf("running four-photon experiment (fringe + 81-setting tomography)\n");
  const auto r = exp.run();

  std::printf("\n== four-photon interference ==\n");
  std::printf("fringe visibility (expected curve): %.3f\n", r.fringe.visibility);
  std::printf("analytic model:                     %.3f (paper: 0.89)\n",
              r.analytic_visibility);

  std::printf("\n== tomography ==\n");
  std::printf("Bell pair A fidelity: %.3f\n", r.bell_fidelity_a);
  std::printf("Bell pair B fidelity: %.3f\n", r.bell_fidelity_b);
  std::printf("four-photon fidelity: %.3f (paper: 0.64)\n", r.four_photon_fidelity);

  std::printf("\n== entanglement of the (true) four-photon state ==\n");
  const auto rho4 = exp.true_state();
  const auto pair_a = rho4.partial_trace_keep({0, 1});
  std::printf("pair A concurrence: %.3f\n", quantum::concurrence(pair_a));
  std::printf("pair A negativity:  %.3f\n", quantum::negativity(pair_a, 1));
  std::printf("four-photon purity: %.3f\n", quantum::purity(rho4));
  return 0;
}
