// Future-work walk-through (paper Sec. I, ref [3]): feeding one-way
// quantum computation from the comb. Two time-bin Bell pairs from four
// comb lines are fused into a 4-qubit linear cluster state; measuring
// cluster qubits drives information through the wire.

#include <cstdio>

#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/gates.hpp"
#include "qfc/quantum/measures.hpp"

int main() {
  using namespace qfc::quantum;

  std::printf("== building the resource state ==\n");
  const StateVector pairs = bell_product(2);  // what the comb emits (Sec. V)
  const StateVector cluster = cluster_from_bell_pairs(pairs);
  std::printf("two Bell pairs -> 4-qubit linear cluster (H on 1,3 + CZ on 1-2)\n");

  const std::vector<std::pair<std::size_t, std::size_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  std::printf("stabilizer expectations (all must be +1):\n");
  for (std::size_t site = 0; site < 4; ++site)
    std::printf("  <K_%zu> = %+.6f\n", site,
                expectation(cluster, cluster_stabilizer(4, site, edges)));

  std::printf("\noverlap with the canonical linear cluster: %.6f\n",
              cluster.overlap_probability(linear_cluster_state(4)));

  std::printf("\n== one-way computation: X-measurement chain ==\n");
  qfc::rng::Xoshiro256 g(169);
  int correlated = 0;
  const int runs = 2000;
  for (int i = 0; i < runs; ++i) {
    // Teleport along a 2-qubit wire: X on qubit 0, Z readout on qubit 1.
    const auto m0 = measure_qubit_xy(linear_cluster_state(2), 0, 0.0, g);
    const auto m1 = measure_qubit_z(m0.state, 1, g);
    if (m0.result == m1.result) ++correlated;
  }
  std::printf("wire teleportation correlation: %d / %d (expect all)\n", correlated,
              runs);

  std::printf("\n== entanglement bookkeeping ==\n");
  const DensityMatrix rho{cluster};
  std::printf("purity: %.3f, entropy of half-chain: %.3f bit\n", purity(rho),
              von_neumann_entropy_bits(rho.partial_trace_keep({0, 1})));
  return 0;
}
