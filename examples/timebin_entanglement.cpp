// Sec. IV walk-through: double-pulse pumping, analyzer interferometers,
// quantum-interference fringe and CHSH violation on all comb channels.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "qfc/core/comb_source.hpp"

int main() {
  using namespace qfc;

  auto comb =
      core::QuantumFrequencyComb::for_configuration(core::PumpConfiguration::DoublePulse);
  auto exp = comb.timebin_default();

  const auto& pump = exp.config().pump;
  std::printf("== double-pulse pump ==\n");
  std::printf("pulse width %.0f ps, bin separation %.2f ns, rep rate %.1f MHz\n",
              pump.train.pulse_fwhm_s * 1e12, pump.bin_separation_s * 1e9,
              pump.train.repetition_rate_hz / 1e6);

  std::printf("\n== channel pair 1: fringe scan ==\n");
  const auto r1 = exp.run_channel(1);
  for (std::size_t i = 0; i < r1.scan.phase_rad.size(); i += 2) {
    std::printf("phase %5.2f rad: %6.0f counts ", r1.scan.phase_rad[i],
                r1.scan.counts[i]);
    const int bars = static_cast<int>(40 * r1.scan.counts[i] /
                                      (*std::max_element(r1.scan.counts.begin(),
                                                         r1.scan.counts.end()) + 1));
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("fitted visibility: %.3f (raw, no background correction)\n",
              r1.fringe_fit.visibility);

  std::printf("\n== CHSH on all 5 channel pairs ==\n");
  for (const auto& r : exp.run_all_channels())
    std::printf("channel %d: V = %.3f, S = %.3f ± %.3f  %s\n", r.k,
                r.fringe_fit.visibility, r.chsh.s, r.chsh.s_err,
                r.chsh.violates_classical() ? "[violates CHSH]" : "[no violation]");
  return 0;
}
