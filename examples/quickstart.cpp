// Quickstart: build the integrated quantum frequency comb, inspect the
// device, generate photon pairs and measure a CAR — ten lines of API.

#include <cstdio>

#include "qfc/core/comb_source.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"

int main() {
  using namespace qfc;

  // 1. A quantum frequency comb in the Sec. II configuration.
  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);

  const auto& ring = comb.device();
  const double pump = photonics::pump_resonance_hz(ring);
  std::printf("device: Hydex microring, R = %.1f um\n",
              ring.circumference_m() / (2 * photonics::pi) * 1e6);
  std::printf("  FSR       %.1f GHz\n",
              ring.fsr_hz(pump, photonics::Polarization::TE) / 1e9);
  std::printf("  linewidth %.0f MHz (loaded Q = %.2fM)\n",
              ring.linewidth_hz(pump, photonics::Polarization::TE) / 1e6,
              ring.loaded_q(pump, photonics::Polarization::TE) / 1e6);

  // 2. The comb grid: 5 signal/idler channel pairs around the pump.
  const auto grid = comb.grid(5);
  for (const auto& pair : grid.pairs())
    std::printf("  pair %d: signal %s / idler %s\n", pair.k,
                photonics::CombGrid::describe(pair.signal).c_str(),
                photonics::CombGrid::describe(pair.idler).c_str());

  // 3. Run a short heralded-photon measurement on channel pair 1.
  core::HeraldedConfig cfg;
  cfg.duration_s = 10.0;
  cfg.num_channel_pairs = 1;
  auto experiment = comb.heralded(cfg);
  const auto table = experiment.run_channel_table();
  std::printf("\n10 s acquisition on channel pair 1:\n");
  std::printf("  pair rate %.1f Hz, CAR %.1f ± %.1f\n", table[0].coincidence_rate_hz,
              table[0].car, table[0].car_err);
  return 0;
}
