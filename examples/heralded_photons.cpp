// Sec. II walk-through: multiplexed heralded single photons from the
// self-locked comb — coincidence matrix, per-channel table, photon
// coherence time, and the heralded-purity analysis behind the "pure
// single photons" claim.

#include <cstdio>

#include "qfc/core/comb_source.hpp"
#include "qfc/quantum/fock.hpp"
#include "qfc/sfwm/jsa.hpp"

int main() {
  using namespace qfc;

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::SelfLockedCw);
  core::HeraldedConfig cfg;
  cfg.duration_s = 30.0;
  cfg.num_channel_pairs = 5;
  auto exp = comb.heralded(cfg);

  std::printf("== coincidence matrix (CAR) ==\n");
  const auto cells = exp.run_coincidence_matrix();
  for (int s = 1; s <= 5; ++s) {
    for (int i = 1; i <= 5; ++i)
      std::printf("%8.1f", cells[static_cast<std::size_t>((s - 1) * 5 + i - 1)].car.car);
    std::printf("\n");
  }

  std::printf("\n== per-channel pair rates and CAR at 15 mW ==\n");
  for (const auto& r : exp.run_channel_table())
    std::printf("channel %d: %5.1f Hz, CAR %5.1f\n", r.k, r.coincidence_rate_hz, r.car);

  std::printf("\n== photon coherence (channel 1, 120 s) ==\n");
  const auto coh = exp.run_coherence_measurement(1, 120.0);
  std::printf("fitted tau %.2f ns -> measured linewidth %.0f MHz "
              "(ring: %.0f MHz)\n", coh.fitted_tau_s * 1e9,
              coh.measured_linewidth_hz / 1e6, coh.ring_linewidth_hz / 1e6);

  std::printf("\n== purity analysis ==\n");
  const double mu = exp.source().mean_pairs_per_coherence_time(1);
  const quantum::TwoModeSqueezedVacuum tmsv(mu);
  std::printf("mean pairs per coherence time: %.2e\n", mu);
  std::printf("heralded g2(0) (20%% herald eff.): %.2e  (<< 1: single photons)\n",
              tmsv.heralded_g2(0.2));
  std::printf("heralded spectral purity at matched pump bandwidth: %.3f\n",
              sfwm::heralded_purity(100e6, 100e6));
  return 0;
}
