// Sec. III walk-through: type-II spontaneous FWM. Shows how the waveguide
// birefringence design suppresses stimulated FWM, measures the
// cross-polarized coincidence peak, and sweeps the OPO power curve.

#include <cstdio>

#include "qfc/core/comb_source.hpp"
#include "qfc/sfwm/phase_matching.hpp"

int main() {
  using namespace qfc;

  auto comb = core::QuantumFrequencyComb::for_configuration(
      core::PumpConfiguration::CrossPolarized);
  const auto& ring = comb.device();

  std::printf("== device design ==\n");
  std::printf("dispersion-engineered birefringence: TE/TM grids offset, FSRs equal\n");
  std::printf("TE/TM grid offset: %.1f GHz\n",
              sfwm::te_tm_grid_offset_hz(ring, photonics::itu_anchor_hz) / 1e9);
  std::printf("FSR  TE %.4f GHz / TM %.4f GHz (matched)\n",
              ring.fsr_hz(photonics::itu_anchor_hz, photonics::Polarization::TE) / 1e9,
              ring.fsr_hz(photonics::itu_anchor_hz, photonics::Polarization::TM) / 1e9);

  core::Type2Config cfg;
  cfg.duration_s = 120.0;
  auto exp = comb.type2(cfg);
  std::printf("stimulated FWM suppression: %.0f dB (complete suppression)\n",
              exp.stimulated_suppression_db());

  std::printf("\n== cross-polarized coincidences at 2 mW ==\n");
  const auto car = exp.run_car_measurement();
  std::printf("on-chip pair rate %.2f Hz, measured CAR %.1f ± %.1f\n",
              car.pair_rate_on_chip_hz, car.car.car, car.car.car_err);
  std::printf("(clear coincidence peak: the process is spontaneous, seeded by "
              "vacuum fluctuations)\n");

  std::printf("\n== OPO power transfer ==\n");
  std::printf("threshold: %.1f mW\n", exp.opo_threshold_w() * 1e3);
  for (const auto& p : exp.run_opo_curve(28e-3, 14))
    std::printf("pump %5.1f mW -> output %10.3e W  [%s]\n", p.pump_w * 1e3, p.output_w,
                p.oscillating ? "linear (oscillating)" : "quadratic (spontaneous)");
  return 0;
}
