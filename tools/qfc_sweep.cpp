// qfc_sweep: config-driven scenario-sweep runner over the qfc::sweep
// scenario registry.
//
//   qfc_sweep --config sweep.json --out report.json --workers 4
//   qfc_sweep --list
//   qfc_sweep --config sweep.json --selfcheck
//
// The report is deterministic: bitwise identical bytes at every worker
// count (and across runs), so CI can gate parallel correctness with cmp.
// --selfcheck does that gate in-process: it runs the sweep at 1, 2, and 4
// workers, byte-compares the three reports, and additionally requires
// every scenario instance to succeed.
//
// Exit codes: 0 success; 1 usage/config/I/O error; 2 selfcheck divergence;
// 3 one or more scenario instances failed (the report still lists them).

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "qfc/io/json.hpp"
#include "qfc/sweep/scenario.hpp"
#include "qfc/sweep/sweep.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --config PATH [--out PATH] [--workers N] [--selfcheck]\n"
            << "       " << argv0 << " --list\n";
  return 1;
}

int list_scenarios() {
  for (const auto& scenario : qfc::sweep::ScenarioRegistry::instance().scenarios()) {
    std::cout << scenario.name << "\n    " << scenario.description << "\n";
    for (const auto& param : scenario.params)
      std::cout << "    - " << param.name << " (" << param.type << "): "
                << param.description << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string out_path;
  int workers = 0;  // 0 = take the config's value
  bool selfcheck = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qfc_sweep: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--list") == 0) return list_scenarios();
    if (std::strcmp(arg, "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(arg, "--config") == 0) {
      const char* v = value();
      if (!v) return 1;
      config_path = v;
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = value();
      if (!v) return 1;
      out_path = v;
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = value();
      if (!v) return 1;
      workers = std::atoi(v);
      if (workers < 1 || workers > 1024) {
        std::cerr << "qfc_sweep: --workers must be in [1, 1024]\n";
        return 1;
      }
    } else {
      std::cerr << "qfc_sweep: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (config_path.empty()) return usage(argv[0]);

  std::ifstream in(config_path);
  if (!in) {
    std::cerr << "qfc_sweep: cannot open " << config_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  qfc::sweep::SweepPlan plan;
  try {
    plan = qfc::sweep::expand_sweep_config(qfc::io::Json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::cerr << "qfc_sweep: " << config_path << ": " << e.what() << "\n";
    return 1;
  }
  if (workers == 0) workers = plan.workers;

  if (selfcheck) {
    // The determinism gate: the same plan at three worker counts must
    // serialize to the same bytes, and nothing may fail.
    const auto at1 = qfc::sweep::run_sweep(plan, 1);
    const std::string bytes1 = at1.json.dump(2);
    for (int w : {2, 4}) {
      const std::string bytes = qfc::sweep::run_sweep(plan, w).json.dump(2);
      if (bytes != bytes1) {
        std::cerr << "qfc_sweep: selfcheck FAILED: report at " << w
                  << " workers differs from 1 worker\n";
        return 2;
      }
    }
    if (at1.num_failed != 0) {
      std::cerr << "qfc_sweep: selfcheck FAILED: " << at1.num_failed << " of "
                << at1.num_scenarios << " scenario instances failed\n";
      std::cerr << bytes1 << "\n";
      return 3;
    }
    std::cout << "selfcheck OK: " << at1.num_scenarios
              << " scenario instances, identical reports at 1/2/4 workers\n";
    return 0;
  }

  const auto report = qfc::sweep::run_sweep(plan, workers);
  const std::string bytes = report.json.dump(2) + "\n";
  if (out_path.empty()) {
    std::cout << bytes;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "qfc_sweep: cannot write " << out_path << "\n";
      return 1;
    }
    out << bytes;
  }
  std::cerr << "qfc_sweep: " << report.num_scenarios << " scenario instances, "
            << report.num_failed << " failed\n";
  return report.num_failed == 0 ? 0 : 3;
}
