#pragma once

/// \file timebin_state.hpp
/// Physical noise model mapping SFWM source parameters (multi-pair mean μ,
/// accidental fraction, interferometer phase noise) to the two-qubit
/// time-bin density matrix the analyzers see. This is where the paper's
/// raw visibilities (83% two-photon, 89% four-photon) come from.

#include "qfc/quantum/state.hpp"

namespace qfc::timebin {

struct TimebinNoiseModel {
  /// Mean pair number per double pulse (both bins combined).
  double mean_pairs_per_double_pulse = 0.08;
  /// RMS phase noise of the (stabilized) interferometers, radians.
  double phase_noise_rms_rad = 0.05;
  /// Fraction of post-selected coincidences that are accidental
  /// (detector darks + photons from different pairs).
  double accidental_fraction = 0.02;

  void validate() const;
};

/// Visibility of the *quantum state* itself (multi-pair + phase noise,
/// no accidentals):  V_state = exp(−σφ²/2) / (1 + 2μ). Multi-pair emission
/// contributes the 1/(1+2μ) factor (uncorrelated pairs in the same double
/// pulse); interferometer phase noise washes out coherence.
double state_visibility(const TimebinNoiseModel& m);

/// Raw measured fringe visibility including the flat accidental floor:
///   V_raw = V_state · (1 − f_acc)
/// — this is the number the paper quotes (83%, no background correction).
double predicted_visibility(const TimebinNoiseModel& m);

/// Two-qubit density matrix seen by the analyzers: Werner-like mixture of
/// the ideal |Φ(pump_phase)> with white noise at the level implied by
/// state_visibility (accidentals are added by the counting layer, not
/// folded into the state — see franson.hpp).
quantum::DensityMatrix noisy_pair_state(const TimebinNoiseModel& m,
                                        double pump_phase_rad = 0.0);

/// Four-photon state: two independent noisy pairs (paper Sec. V combines
/// two Bell pairs from four comb lines into a product state).
quantum::DensityMatrix noisy_four_photon_state(const TimebinNoiseModel& m,
                                               double pump_phase_rad = 0.0);

}  // namespace qfc::timebin
