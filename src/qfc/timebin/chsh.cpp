#include "qfc/timebin/chsh.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/rng/distributions.hpp"

#include "qfc/io/json.hpp"

namespace qfc::timebin {

io::Json ChshMeasurement::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("s", s);
  j.set("s_err", s_err);
  io::Json e = io::Json::make_array();
  for (const double c : correlations) e.push_back(io::Json(c));
  j.set("correlations", std::move(e));
  j.set("violates_classical", violates_classical());
  j.set("sigmas_above_2", sigmas_above_2());
  return j;
}


using photonics::pi;

double correlation(const quantum::DensityMatrix& rho, double alpha_rad, double beta_rad) {
  if (rho.num_qubits() != 2)
    throw std::invalid_argument("correlation: need a two-qubit state");
  const linalg::CMat obs =
      linalg::kron(quantum::xy_observable(alpha_rad), quantum::xy_observable(beta_rad));
  return std::real(rho.expectation(obs));
}

ChshSettings optimal_settings_for_phi(double pump_phase_rad) {
  // For |Φ(φ)> the correlation is E(α,β) = cos(α + β − φ); the maximal-S
  // settings put the four sums at ∓π/4, ±π/4, ...
  ChshSettings s;
  s.a0 = 0.0;
  s.a1 = pi / 2.0;
  s.b0 = pump_phase_rad - pi / 4.0;
  s.b1 = pump_phase_rad + pi / 4.0;
  return s;
}

double chsh_s_value(const quantum::DensityMatrix& rho, const ChshSettings& s) {
  const double e00 = correlation(rho, s.a0, s.b0);
  const double e01 = correlation(rho, s.a0, s.b1);
  const double e10 = correlation(rho, s.a1, s.b0);
  const double e11 = correlation(rho, s.a1, s.b1);
  return std::abs(e00 + e01 + e10 - e11);
}

namespace {

/// Estimate one correlation from simulated outcome counts.
struct EstimatedE {
  double e;
  double var;
};

EstimatedE estimate_correlation(const quantum::DensityMatrix& rho, double alpha,
                                double beta, double pairs, double accidentals,
                                rng::Xoshiro256& g) {
  const auto proj = [](double phi, int sign) {
    return quantum::projector(quantum::xy_eigenstate(phi, sign));
  };
  double counts[4];
  double total = 0;
  double signed_sum = 0;
  int idx = 0;
  for (int sa : {+1, -1}) {
    for (int sb : {+1, -1}) {
      const linalg::CMat joint = linalg::kron(proj(alpha, sa), proj(beta, sb));
      const double p = rho.probability(joint);
      const double mean = pairs * p + accidentals;
      counts[idx] = static_cast<double>(rng::sample_poisson(g, mean));
      total += counts[idx];
      signed_sum += (sa * sb) * counts[idx];
      ++idx;
    }
  }
  EstimatedE out{0.0, 1.0};
  if (total > 0) {
    out.e = signed_sum / total;
    out.var = (1.0 - out.e * out.e) / total;
  }
  return out;
}

}  // namespace

ChshMeasurement measure_chsh(const quantum::DensityMatrix& rho, const ChshSettings& s,
                             double pairs_per_setting, double accidentals_per_outcome,
                             rng::Xoshiro256& g) {
  if (pairs_per_setting <= 0)
    throw std::invalid_argument("measure_chsh: pairs_per_setting <= 0");
  if (accidentals_per_outcome < 0)
    throw std::invalid_argument("measure_chsh: negative accidentals");

  const double combos[4][2] = {
      {s.a0, s.b0}, {s.a0, s.b1}, {s.a1, s.b0}, {s.a1, s.b1}};
  ChshMeasurement m;
  double var = 0;
  for (int i = 0; i < 4; ++i) {
    const EstimatedE est = estimate_correlation(
        rho, combos[i][0], combos[i][1], pairs_per_setting, accidentals_per_outcome, g);
    m.correlations[static_cast<std::size_t>(i)] = est.e;
    var += est.var;
  }
  m.s = std::abs(m.correlations[0] + m.correlations[1] + m.correlations[2] -
                 m.correlations[3]);
  m.s_err = std::sqrt(var);
  return m;
}

}  // namespace qfc::timebin
