#include "qfc/timebin/multiphoton.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/rng/distributions.hpp"

#include "qfc/io/json.hpp"

namespace qfc::timebin {

io::Json FourfoldFringe::to_json() const {
  io::Json j = io::Json::make_object();
  const auto as_array = [](const std::vector<double>& v) {
    io::Json a = io::Json::make_array();
    for (const double x : v) a.push_back(io::Json(x));
    return a;
  };
  j.set("phase_rad", as_array(phase_rad));
  j.set("counts", as_array(counts));
  j.set("expected", as_array(expected));
  j.set("visibility", visibility);
  return j;
}


using photonics::pi;

double fourfold_probability(const quantum::DensityMatrix& rho4, double theta_rad) {
  if (rho4.num_qubits() != 4)
    throw std::invalid_argument("fourfold_probability: need a four-qubit state");
  const linalg::CMat p1 = quantum::projector(quantum::xy_eigenstate(theta_rad, +1));
  const linalg::CMat p2 = linalg::kron(p1, p1);
  const linalg::CMat p4 = linalg::kron(p2, p2);
  return rho4.probability(p4);
}

FourfoldFringe simulate_fourfold_fringe(const quantum::DensityMatrix& rho4,
                                        double events_per_point,
                                        double accidental_floor, int num_points,
                                        rng::Xoshiro256& g) {
  if (num_points < 4)
    throw std::invalid_argument("simulate_fourfold_fringe: need >= 4 points");
  if (events_per_point <= 0)
    throw std::invalid_argument("simulate_fourfold_fringe: events_per_point <= 0");
  if (accidental_floor < 0)
    throw std::invalid_argument("simulate_fourfold_fringe: negative floor");

  FourfoldFringe out;
  double max_e = 0, min_e = 1e300;
  for (int i = 0; i < num_points; ++i) {
    const double theta = 2.0 * pi * static_cast<double>(i) / static_cast<double>(num_points);
    const double mean =
        events_per_point * fourfold_probability(rho4, theta) + accidental_floor;
    out.phase_rad.push_back(theta);
    out.expected.push_back(mean);
    out.counts.push_back(static_cast<double>(rng::sample_poisson(g, mean)));
    max_e = std::max(max_e, mean);
    min_e = std::min(min_e, mean);
  }
  out.visibility = (max_e + min_e) > 0 ? (max_e - min_e) / (max_e + min_e) : 0.0;
  return out;
}

double fourfold_visibility(double pair_visibility, double accidental_fraction) {
  if (pair_visibility < 0 || pair_visibility > 1)
    throw std::invalid_argument("fourfold_visibility: V outside [0,1]");
  if (accidental_fraction < 0)
    throw std::invalid_argument("fourfold_visibility: negative accidental fraction");
  const double v = pair_visibility;
  // Fringe (1 + V cos x)² has mean 1 + V²/2; a flat background at fraction
  // f of the mean shifts both extrema by A = f (1 + V²/2):
  //   V₄ = [(1+V)² − (1−V)²] / [(1+V)² + (1−V)² + 2A] = 2V / (1 + V² + A).
  const double a = accidental_fraction * (1.0 + v * v / 2.0);
  return 2.0 * v / (1.0 + v * v + a);
}

}  // namespace qfc::timebin
