#include "qfc/timebin/timebin_state.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/bell.hpp"

namespace qfc::timebin {

void TimebinNoiseModel::validate() const {
  if (mean_pairs_per_double_pulse < 0)
    throw std::invalid_argument("TimebinNoiseModel: negative mean pair number");
  if (phase_noise_rms_rad < 0)
    throw std::invalid_argument("TimebinNoiseModel: negative phase noise");
  if (accidental_fraction < 0 || accidental_fraction >= 1)
    throw std::invalid_argument("TimebinNoiseModel: accidental fraction outside [0,1)");
}

double state_visibility(const TimebinNoiseModel& m) {
  m.validate();
  const double multi_pair = 1.0 / (1.0 + 2.0 * m.mean_pairs_per_double_pulse);
  const double dephasing = std::exp(-m.phase_noise_rms_rad * m.phase_noise_rms_rad / 2.0);
  return dephasing * multi_pair;
}

double predicted_visibility(const TimebinNoiseModel& m) {
  return state_visibility(m) * (1.0 - m.accidental_fraction);
}

quantum::DensityMatrix noisy_pair_state(const TimebinNoiseModel& m, double pump_phase_rad) {
  return quantum::werner_phi(state_visibility(m), pump_phase_rad);
}

quantum::DensityMatrix noisy_four_photon_state(const TimebinNoiseModel& m,
                                               double pump_phase_rad) {
  const quantum::DensityMatrix pair = noisy_pair_state(m, pump_phase_rad);
  return pair.tensor(pair);
}

}  // namespace qfc::timebin
