#include "qfc/timebin/franson.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

#include "qfc/io/json.hpp"

namespace qfc::timebin {

io::Json FringeScan::to_json() const {
  io::Json j = io::Json::make_object();
  const auto as_array = [](const std::vector<double>& v) {
    io::Json a = io::Json::make_array();
    for (const double x : v) a.push_back(io::Json(x));
    return a;
  };
  j.set("phase_rad", as_array(phase_rad));
  j.set("counts", as_array(counts));
  j.set("expected", as_array(expected));
  return j;
}


double coincidence_probability(const quantum::DensityMatrix& rho,
                               const UnbalancedMichelson& analyzer_a,
                               const UnbalancedMichelson& analyzer_b) {
  if (rho.num_qubits() != 2)
    throw std::invalid_argument("coincidence_probability: need a two-qubit state");
  const linalg::CMat joint = linalg::kron(analyzer_a.analyzer_projector(),
                                          analyzer_b.analyzer_projector());
  // Each analyzer post-selects its middle slot with probability 1/2
  // (lossless), and the projective outcome |a><a| absorbs the rest; the
  // product of the interferometers' post-selection factors rescales the
  // projector expectation into an absolute probability per pair.
  const double ps = analyzer_a.postselection_probability() *
                    analyzer_b.postselection_probability();
  return rho.probability(joint) * ps;
}

FringeScan simulate_fringe(const quantum::DensityMatrix& rho, double pairs_per_point,
                           double accidental_floor_per_point, int num_points,
                           double analyzer_delay_s, double fixed_phase_rad,
                           rng::Xoshiro256& g) {
  if (num_points < 4) throw std::invalid_argument("simulate_fringe: need >= 4 points");
  if (pairs_per_point <= 0)
    throw std::invalid_argument("simulate_fringe: pairs_per_point <= 0");
  if (accidental_floor_per_point < 0)
    throw std::invalid_argument("simulate_fringe: negative accidental floor");

  FringeScan scan;
  scan.phase_rad.reserve(static_cast<std::size_t>(num_points));
  scan.counts.reserve(static_cast<std::size_t>(num_points));
  scan.expected.reserve(static_cast<std::size_t>(num_points));

  const UnbalancedMichelson fixed(analyzer_delay_s, fixed_phase_rad);
  for (int i = 0; i < num_points; ++i) {
    const double phi =
        2.0 * photonics::pi * static_cast<double>(i) / static_cast<double>(num_points);
    const UnbalancedMichelson scanned(analyzer_delay_s, phi);
    const double mean = pairs_per_point * coincidence_probability(rho, scanned, fixed) +
                        accidental_floor_per_point;
    scan.phase_rad.push_back(phi);
    scan.expected.push_back(mean);
    scan.counts.push_back(static_cast<double>(rng::sample_poisson(g, mean)));
  }
  return scan;
}

ThreePeakStructure three_peak_weights() { return ThreePeakStructure{}; }

}  // namespace qfc::timebin
