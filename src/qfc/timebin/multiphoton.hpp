#pragma once

/// \file multiphoton.hpp
/// Four-photon quantum interference (paper Sec. V): two Bell pairs on four
/// comb lines pass a common unbalanced interferometer; the four-fold
/// coincidence rate develops a fringe whose raw visibility the paper
/// reports at 89%.

#include <vector>

#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::io {
class Json;
}

namespace qfc::timebin {

/// Probability (per generated four-photon event, post-selection factors
/// stripped) of a four-fold coincidence when all four analyzers sit at the
/// same phase θ: Tr[ρ₄ Π(θ)⊗⁴].
double fourfold_probability(const quantum::DensityMatrix& rho4, double theta_rad);

struct FourfoldFringe {
  std::vector<double> phase_rad;
  std::vector<double> counts;    ///< MC counts
  std::vector<double> expected;  ///< analytic mean
  double visibility = 0;         ///< extrema-based (max−min)/(max+min) of expected

  /// {phase_rad, counts, expected, visibility} as parallel arrays + scalar.
  io::Json to_json() const;
};

/// Scan the common analyzer phase over [0, 2π). `events_per_point` is the
/// number of four-photon events contributing per phase point;
/// `accidental_floor` adds phase-independent four-fold background
/// (higher-order pair emission + dark-count combinations).
FourfoldFringe simulate_fourfold_fringe(const quantum::DensityMatrix& rho4,
                                        double events_per_point,
                                        double accidental_floor, int num_points,
                                        rng::Xoshiro256& g);

/// Analytic visibility of the four-fold fringe of (Werner V)⊗2 including a
/// flat accidental fraction f: derived from the (1 + V cos x)² fringe
/// shape. Used to cross-check the MC.
double fourfold_visibility(double pair_visibility, double accidental_fraction);

}  // namespace qfc::timebin
