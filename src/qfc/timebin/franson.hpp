#pragma once

/// \file franson.hpp
/// Folded-Franson quantum interference for time-bin entangled pairs
/// (paper Sec. IV): both photons traverse matched unbalanced
/// interferometers; post-selecting the middle arrival slot projects each
/// onto (|S> + e^{iφ}|L>)/√2 and the coincidence rate develops a fringe in
/// (α + β + φ_pump) whose visibility certifies entanglement.

#include <vector>

#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"
#include "qfc/timebin/interferometer.hpp"

namespace qfc::io {
class Json;
}

namespace qfc::timebin {

/// Relative weights of the three arrival-time-difference peaks of the
/// unpostselected coincidence histogram (|Δt| = ΔT, 0, +ΔT): 1 : 2 : 1 for
/// an ideal time-bin pair — the middle peak carries the interference.
struct ThreePeakStructure {
  double early = 0.25;
  double middle = 0.5;
  double late = 0.25;
};

/// Post-selected coincidence probability (per generated pair) for analyzer
/// phases α, β acting on the two-qubit time-bin state ρ. Includes the
/// 1/16 double post-selection factor of lossless Michelsons... scaled by
/// the analyzers' arm transmissions.
double coincidence_probability(const quantum::DensityMatrix& rho,
                               const UnbalancedMichelson& analyzer_a,
                               const UnbalancedMichelson& analyzer_b);

/// Fringe scan result.
struct FringeScan {
  std::vector<double> phase_rad;    ///< scanned analyzer-phase values
  std::vector<double> counts;       ///< MC coincidence counts per point
  std::vector<double> expected;     ///< analytic expectation per point

  /// {phase_rad, counts, expected} as parallel arrays.
  io::Json to_json() const;
};

/// Simulate a fringe: analyzer B fixed, analyzer A scanned over
/// `num_points` phases across [0, 2π); Poisson counts with mean
/// pairs_per_point x coincidence probability + accidental floor.
FringeScan simulate_fringe(const quantum::DensityMatrix& rho, double pairs_per_point,
                           double accidental_floor_per_point, int num_points,
                           double analyzer_delay_s, double fixed_phase_rad,
                           rng::Xoshiro256& g);

/// Ideal three-peak histogram weights for a pair passing matched analyzers
/// (no post-selection).
ThreePeakStructure three_peak_weights();

}  // namespace qfc::timebin
