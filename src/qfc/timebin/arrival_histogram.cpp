#include "qfc/timebin/arrival_histogram.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/pauli.hpp"
#include "qfc/rng/distributions.hpp"

#include "qfc/io/json.hpp"

namespace qfc::timebin {

io::Json TimebinPeaks::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("early_late", early_late);
  j.set("same_bin", same_bin);
  j.set("late_early", late_early);
  j.set("central_to_side_ratio", central_to_side_ratio());
  return j;
}


using linalg::cplx;
using linalg::CMat;
using linalg::CVec;

std::uint64_t ArrivalHistogram::total() const {
  std::uint64_t s = 0;
  for (auto c : counts) s += c;
  return s;
}

double ArrivalHistogram::central_to_side_ratio() const {
  const double side =
      (static_cast<double>(counts[1]) + static_cast<double>(counts[3])) / 2.0;
  if (side <= 0) return 0.0;
  return static_cast<double>(counts[2]) / side;
}

namespace {

/// Arrival-time POVM elements behind one analyzer (t in units of the
/// delay): E_0 = |S><S|/4 (short-short), E_1 = |a_φ><a_φ|/2 (interfering
/// middle slot), E_2 = |L><L|/4 (long-long). They sum to I/2 — the other
/// half exits the unused interferometer port.
std::array<CMat, 3> arrival_povm(double phase_rad) {
  CMat e0(2, 2), e2(2, 2);
  e0(0, 0) = cplx(0.25, 0);
  e2(1, 1) = cplx(0.25, 0);
  CMat e1 = quantum::projector(quantum::xy_eigenstate(phase_rad, +1));
  e1 *= cplx(0.5, 0);
  return {e0, e1, e2};
}

}  // namespace

ArrivalHistogram simulate_arrival_histogram(const quantum::DensityMatrix& rho,
                                            double alpha_rad, double beta_rad,
                                            std::uint64_t num_pairs,
                                            rng::Xoshiro256& g) {
  if (rho.num_qubits() != 2)
    throw std::invalid_argument("simulate_arrival_histogram: need a two-qubit state");
  if (num_pairs == 0)
    throw std::invalid_argument("simulate_arrival_histogram: zero pairs");

  const auto ea = arrival_povm(alpha_rad);
  const auto eb = arrival_povm(beta_rad);

  // Joint probabilities of the 9 (t_a, t_b) slot combinations.
  std::vector<double> probs;
  probs.reserve(9);
  for (int ta = 0; ta < 3; ++ta)
    for (int tb = 0; tb < 3; ++tb) {
      const double p = std::real(rho.expectation(linalg::kron(
          ea[static_cast<std::size_t>(ta)], eb[static_cast<std::size_t>(tb)])));
      probs.push_back(std::max(0.0, p));
    }

  ArrivalHistogram h;
  for (std::uint64_t i = 0; i < num_pairs; ++i) {
    const std::size_t combo = rng::sample_discrete(g, probs);
    const int ta = static_cast<int>(combo / 3);
    const int tb = static_cast<int>(combo % 3);
    ++h.counts[static_cast<std::size_t>(ta - tb + 2)];
  }
  return h;
}

double TimebinPeaks::central_to_side_ratio() const {
  const double side =
      (static_cast<double>(early_late) + static_cast<double>(late_early)) / 2.0;
  if (side <= 0) return 0.0;
  return static_cast<double>(same_bin) / side;
}

TimebinPeaks fold_timebin_peaks(const detect::CoincidenceHistogram& hist,
                                double bin_separation_s, double half_window_s) {
  if (bin_separation_s <= 0)
    throw std::invalid_argument("fold_timebin_peaks: bin separation <= 0");
  if (half_window_s <= 0 || half_window_s > bin_separation_s / 2.0)
    throw std::invalid_argument(
        "fold_timebin_peaks: half window outside (0, separation/2]");
  if (hist.range_s < bin_separation_s + half_window_s)
    throw std::invalid_argument(
        "fold_timebin_peaks: histogram range does not reach the side peaks");

  TimebinPeaks p;
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    const double t = hist.bin_time(i);
    if (std::abs(t + bin_separation_s) <= half_window_s)
      p.early_late += hist.counts[i];
    else if (std::abs(t) <= half_window_s)
      p.same_bin += hist.counts[i];
    else if (std::abs(t - bin_separation_s) <= half_window_s)
      p.late_early += hist.counts[i];
  }
  return p;
}

}  // namespace qfc::timebin
