#include "qfc/timebin/interferometer.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/pauli.hpp"

namespace qfc::timebin {

using linalg::cplx;
using linalg::CMat;

UnbalancedMichelson::UnbalancedMichelson(double delay_s, double phase_rad,
                                         double arm_transmission)
    : delay_(delay_s), phase_(phase_rad), arm_amp_(arm_transmission) {
  if (delay_s <= 0) throw std::invalid_argument("UnbalancedMichelson: delay <= 0");
  if (arm_transmission <= 0 || arm_transmission > 1)
    throw std::invalid_argument("UnbalancedMichelson: arm transmission outside (0,1]");
}

cplx UnbalancedMichelson::short_path_amplitude() const {
  return cplx(0.5 * arm_amp_, 0);
}

cplx UnbalancedMichelson::long_path_amplitude() const {
  return 0.5 * arm_amp_ * std::exp(cplx(0, phase_));
}

CMat UnbalancedMichelson::analyzer_projector() const {
  return quantum::projector(quantum::xy_eigenstate(phase_, +1));
}

CMat UnbalancedMichelson::analyzer_projector_orthogonal() const {
  return quantum::projector(quantum::xy_eigenstate(phase_, -1));
}

double UnbalancedMichelson::postselection_probability() const {
  return std::norm(short_path_amplitude()) + std::norm(long_path_amplitude());
}

double imbalance_mismatch_ratio(const UnbalancedMichelson& a, const UnbalancedMichelson& b,
                                double photon_coherence_time_s) {
  if (photon_coherence_time_s <= 0)
    throw std::invalid_argument("imbalance_mismatch_ratio: coherence time <= 0");
  return std::abs(a.delay_s() - b.delay_s()) / photon_coherence_time_s;
}

double mismatch_visibility_penalty(double delay_mismatch_s,
                                   double photon_coherence_time_s) {
  if (photon_coherence_time_s <= 0)
    throw std::invalid_argument("mismatch_visibility_penalty: coherence time <= 0");
  return std::exp(-std::abs(delay_mismatch_s) / photon_coherence_time_s);
}

}  // namespace qfc::timebin
