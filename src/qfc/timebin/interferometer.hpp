#pragma once

/// \file interferometer.hpp
/// Unbalanced, phase-stabilized Michelson interferometer — used once to
/// carve the pump double pulse (Sec. IV) and once per photon as the
/// time-bin qubit analyzer. The path imbalance equals the time-bin
/// separation, so the short-path late bin and long-path early bin overlap
/// in the middle time slot where quantum interference happens.

#include <complex>

#include "qfc/linalg/matrix.hpp"

namespace qfc::timebin {

class UnbalancedMichelson {
 public:
  /// \param delay_s    path-length imbalance as a time delay (= bin spacing)
  /// \param phase_rad  relative phase between the two arms
  /// \param arm_transmission  amplitude transmission of each pass (loss)
  UnbalancedMichelson(double delay_s, double phase_rad, double arm_transmission = 1.0);

  double delay_s() const noexcept { return delay_; }
  double phase_rad() const noexcept { return phase_; }
  void set_phase(double phase_rad) noexcept { phase_ = phase_rad; }

  /// Amplitudes (a_short, a_long) a single photon acquires for taking the
  /// short/long path toward the output port: each 1/2 in a Michelson
  /// (two beam-splitter passes), the long arm carrying e^{iφ}.
  std::complex<double> short_path_amplitude() const;
  std::complex<double> long_path_amplitude() const;

  /// Time-bin qubit analyzer projector (middle time slot post-selection):
  /// |a><a| with |a> = (|0> + e^{iφ}|1>)/√2 — measuring in the X-Y plane
  /// at angle φ. The overall post-selection success factor is
  /// `postselection_probability()`.
  linalg::CMat analyzer_projector() const;

  /// Projector onto the orthogonal analyzer state (|0> − e^{iφ}|1>)/√2 —
  /// in the folded Michelson geometry this outcome appears on the same
  /// detector shifted by the interferometer phase offset π.
  linalg::CMat analyzer_projector_orthogonal() const;

  /// Probability that a time-bin photon ends up in the interfering middle
  /// slot: |a_short|² + |a_long|² = 1/4 + 1/4 (for lossless arms).
  double postselection_probability() const;

 private:
  double delay_;
  double phase_;
  double arm_amp_;
};

/// Verify two interferometers are matched well enough for time-bin
/// interference: |ΔT₁ − ΔT₂| must be far smaller than the photon coherence
/// time (returns the mismatch / coherence-time ratio).
double imbalance_mismatch_ratio(const UnbalancedMichelson& a, const UnbalancedMichelson& b,
                                double photon_coherence_time_s);

/// Fringe-visibility penalty from a path-imbalance mismatch δ between the
/// pump interferometer and an analyzer: the interfering wavepackets
/// overlap with |g⁽¹⁾(δ)| = exp(−|δ|/τ_c) for Lorentzian photons of
/// coherence time τ_c = 1/(π δν). Perfectly matched interferometers
/// (the paper's "path length difference matched") give 1.
double mismatch_visibility_penalty(double delay_mismatch_s,
                                   double photon_coherence_time_s);

}  // namespace qfc::timebin
