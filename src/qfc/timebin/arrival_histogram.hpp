#pragma once

/// \file arrival_histogram.hpp
/// Monte-Carlo simulation of the raw arrival-time-difference histogram of
/// a time-bin pair behind the two analyzer interferometers. Each photon
/// takes the short or long analyzer path; coincidences land on five Δt
/// peaks at {−2ΔT, −ΔT, 0, +ΔT, +2ΔT}... for the pair state |SS>+|LL>
/// the outer combinations are path-forbidden, yielding the paper's
/// three-peak signature with 1:2:1 weights and interference confined to
/// the central peak.

#include <array>
#include <cstdint>

#include "qfc/detect/coincidence.hpp"
#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"
#include "qfc/timebin/interferometer.hpp"

namespace qfc::io {
class Json;
}

namespace qfc::timebin {

struct ArrivalHistogram {
  /// Counts at Δt/ΔT = −2, −1, 0, +1, +2.
  std::array<std::uint64_t, 5> counts{};

  std::uint64_t total() const;
  /// Ratio of the central peak to the mean of the two inner side peaks.
  /// The side peaks never interfere; the central one does:
  /// 2 at quadrature (the classic 1:2:1 signature), 3 at a fringe
  /// maximum, 1 at a fringe minimum for the ideal Bell pair.
  double central_to_side_ratio() const;
};

/// Simulate `num_pairs` post-selected pair detections of the two-qubit
/// time-bin state ρ through analyzers with phases (α, β) and equal delay.
/// Sampling follows the exact joint amplitudes of the five path
/// combinations.
ArrivalHistogram simulate_arrival_histogram(const quantum::DensityMatrix& rho,
                                            double alpha_rad, double beta_rad,
                                            std::uint64_t num_pairs,
                                            rng::Xoshiro256& g);

/// Early/late coincidence peaks folded out of a raw Δt histogram produced
/// by the pulsed click-level engine (detect::correlate_all on a
/// double-pulse EmissionMode::Pulsed channel). For a pulse-locked pair
/// source the central peak (Δt ≈ 0) holds the true same-bin coincidences
/// (early/early + late/late) while the ±ΔT side peaks hold only
/// multi-pair cross-bin accidentals — the click-level counterpart of the
/// amplitude-level five-peak histogram above.
struct TimebinPeaks {
  std::uint64_t early_late = 0;  ///< Δt ≈ −ΔT (signal early, idler late)
  std::uint64_t same_bin = 0;    ///< Δt ≈ 0 (early/early + late/late)
  std::uint64_t late_early = 0;  ///< Δt ≈ +ΔT (signal late, idler early)

  /// Central peak over the mean of the two side peaks (0 if no side
  /// counts), same convention as ArrivalHistogram::central_to_side_ratio.
  double central_to_side_ratio() const;

  /// {early_late, same_bin, late_early, central_to_side_ratio}.
  io::Json to_json() const;
};

/// Sum the histogram bins within ±half_window_s of Δt = −ΔT, 0, +ΔT.
/// half_window_s must be positive and at most ΔT/2 so the windows are
/// disjoint; the histogram range must reach ±(ΔT + half_window).
TimebinPeaks fold_timebin_peaks(const detect::CoincidenceHistogram& hist,
                                double bin_separation_s, double half_window_s);

}  // namespace qfc::timebin
