#pragma once

/// \file chsh.hpp
/// Clauser-Horne-Shimony-Holt inequality evaluation for time-bin qubit
/// pairs (paper Sec. IV, ref [9]). Analyzer observables live in the X-Y
/// plane (interferometer phases); for the |Φ(φ_p)> family the optimal
/// settings give S = 2√2 V.

#include <array>

#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::io {
class Json;
}

namespace qfc::timebin {

/// Correlation E(α, β) = Tr[ρ A(α) ⊗ A(β)] with A(φ) = cos φ X + sin φ Y.
double correlation(const quantum::DensityMatrix& rho, double alpha_rad, double beta_rad);

struct ChshSettings {
  double a0, a1;  ///< analyzer-A phases
  double b0, b1;  ///< analyzer-B phases
};

/// Optimal settings for |Φ(pump_phase)>: fringes go as cos(α+β+φ_p), so
/// a ∈ {0, π/2}, b ∈ {−φ_p − π/4, −φ_p + π/4}.
ChshSettings optimal_settings_for_phi(double pump_phase_rad = 0.0);

/// S = |E(a0,b0) + E(a0,b1) + E(a1,b0) − E(a1,b1)| (exact, from ρ).
double chsh_s_value(const quantum::DensityMatrix& rho, const ChshSettings& s);

/// Count-based CHSH estimate: for each of the 4 setting combinations,
/// E is estimated from Poisson-fluctuating coincidence counts in the four
/// outcome combinations (++, +−, −+, −−).
struct ChshMeasurement {
  double s = 0;
  double s_err = 0;
  std::array<double, 4> correlations{};  ///< E(a0,b0), E(a0,b1), E(a1,b0), E(a1,b1)
  bool violates_classical() const { return s > 2.0; }
  double sigmas_above_2() const { return s_err > 0 ? (s - 2.0) / s_err : 0.0; }

  /// {s, s_err, correlations, violates_classical, sigmas_above_2}.
  io::Json to_json() const;
};

/// Simulate a CHSH measurement with `pairs_per_setting` detected pairs per
/// setting combination and a flat accidental floor per outcome.
ChshMeasurement measure_chsh(const quantum::DensityMatrix& rho, const ChshSettings& s,
                             double pairs_per_setting, double accidentals_per_outcome,
                             rng::Xoshiro256& g);

}  // namespace qfc::timebin
