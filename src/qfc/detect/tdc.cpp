#include "qfc/detect/tdc.hpp"

#include <cmath>
#include <stdexcept>

namespace qfc::detect {

TimeToDigitalConverter::TimeToDigitalConverter(double bin_width_s)
    : bin_width_(bin_width_s) {
  if (bin_width_s <= 0)
    throw std::invalid_argument("TimeToDigitalConverter: bin width <= 0");
}

std::int64_t TimeToDigitalConverter::bin_of(double time_s) const {
  return static_cast<std::int64_t>(std::floor(time_s / bin_width_));
}

double TimeToDigitalConverter::time_of(std::int64_t bin) const {
  return (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::vector<std::int64_t> TimeToDigitalConverter::quantize(
    const std::vector<double>& clicks_s) const {
  std::vector<std::int64_t> out;
  out.reserve(clicks_s.size());
  for (double t : clicks_s) out.push_back(bin_of(t));
  return out;
}

}  // namespace qfc::detect
