#pragma once

/// \file streaming.hpp
/// Windowed, bounded-memory generation and online analysis for the event
/// engine: EventStreamer produces the exact click streams of
/// EventEngine::run in fixed time windows, and the Streaming*Accumulator
/// classes fold each window into car_matrix / coincidence_count_matrix /
/// correlate_all / Allan-deviation results, discarding consumed events as
/// they resolve, so resident memory stays flat no matter how long the run.
///
/// Determinism and parity contract: every per-stage RNG sub-stream of the
/// batch engine (channel_rng.hpp) is paused — never re-seeded or reordered
/// — at window boundaries, and every analysis count goes through the same
/// inline per-event functions as the batch sweeps (analysis_sweep.hpp).
/// Consequently a streamed run is **bitwise identical** to
/// EventEngine::run + the batch analysis helpers at every window size, and
/// at every generation / analysis thread count.
///
/// Window boundary handling: the delay and jitter distributions have
/// unbounded support, so a photon born inside window k can click inside
/// window k+1 (and, with probability ~e^-64 at the default slack of 32
/// Laplace scales / 16 jitter sigmas, even earlier than a window already
/// emitted). The streamer generates ahead of the finalize watermark by a
/// per-channel slack, carries pending arrivals / clicks across windows,
/// and counts the astronomically rare stragglers that still land behind an
/// emitted boundary in boundary_violations() (they are folded into the
/// current window, keeping every column sorted, instead of being dropped).
/// StreamConfig::slack_override_s exists so tests can force that path.
///
/// Snapshot / restore: EventStreamer and every accumulator serialize their
/// complete state (per-channel RNG streams, sampler positions, pending
/// buffers, partial counts) to a versioned binary blob; a restored run
/// continues bitwise identical to the uninterrupted one.

#include <cstdint>
#include <memory>
#include <vector>

#include "qfc/detect/allan.hpp"
#include "qfc/detect/event_engine.hpp"

namespace qfc::detect {

/// Streaming-specific knobs; generation physics and seeds come from the
/// same EngineConfig / ChannelPairSpec as the batch engine.
struct StreamConfig {
  /// Window length in seconds. The run is split into
  /// ceil(duration_s / window_s) fixed windows; window k covers
  /// [k * window_s, min((k+1) * window_s, duration_s)).
  double window_s = 1.0;
  /// When > 0, replaces the automatic per-channel look-ahead slack (32
  /// Laplace delay scales for pair emission, 16 sigmas for detector
  /// jitter) with this many seconds — only useful to force boundary
  /// violations in tests. <= 0 selects the automatic slack.
  double slack_override_s = 0;
};

/// One emitted window: the clicks of both detector banks restricted to
/// [t_begin_s, t_end_s), in the same EventTable layout as a batch run.
/// Concatenating the per-channel columns of every window reproduces the
/// batch EngineResult exactly.
struct StreamWindow {
  std::size_t index = 0;
  double t_begin_s = 0;
  double t_end_s = 0;
  bool last = false;
  EngineResult events;
};

/// Windowed generator with the exact output of EventEngine::run. Usage:
///
///   EventStreamer s(cfg, {.window_s = 10.0}, specs);
///   StreamWindow w;
///   while (s.next(w)) accumulator.push(w);
///   auto result = accumulator.finish();
class EventStreamer {
 public:
  /// Validates exactly like EventEngine::run (same exceptions for bad
  /// specs) plus StreamConfig::window_s > 0.
  EventStreamer(const EngineConfig& cfg, const StreamConfig& stream,
                std::vector<ChannelPairSpec> channels);
  ~EventStreamer();
  EventStreamer(EventStreamer&&) noexcept;
  EventStreamer& operator=(EventStreamer&&) noexcept;

  /// Produce the next window into `out`. Returns false (leaving `out`
  /// untouched) once every window has been emitted.
  bool next(StreamWindow& out);

  bool done() const;
  std::size_t next_window() const;   ///< index the next next() call emits
  std::size_t num_windows() const;   ///< ceil(duration / window)

  /// Clicks or arrivals that materialized behind an already-finalized
  /// window boundary (see file comment). Always 0 at the default slack in
  /// any realistic run; nonzero means window contents are no longer
  /// bitwise comparable to batch.
  std::uint64_t boundary_violations() const;

  const EngineConfig& config() const;
  const StreamConfig& stream_config() const;

  /// Serialize the complete generator state (configs, specs, per-channel
  /// RNG streams, sampler positions, pending events). restore() rebuilds a
  /// streamer that continues bitwise identically to the original.
  std::vector<std::uint8_t> snapshot() const;
  static EventStreamer restore(const std::vector<std::uint8_t>& blob);

 private:
  struct Impl;
  explicit EventStreamer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Online car_matrix: push every window, then finish() returns exactly
/// what `car_matrix(signal, idler, ...)` would return for the whole run —
/// bitwise, at every window size and every `num_threads` (0 = the
/// process-wide analysis setting, as in the batch helpers).
class StreamingCarAccumulator {
 public:
  StreamingCarAccumulator(double window_s, double side_window_spacing_s,
                          int num_side_windows = 10, int num_threads = 0);
  ~StreamingCarAccumulator();
  StreamingCarAccumulator(StreamingCarAccumulator&&) noexcept;
  StreamingCarAccumulator& operator=(StreamingCarAccumulator&&) noexcept;

  void push(const StreamWindow& w);
  CarMatrix finish();

  /// Partial-state blob; restore() into a freshly constructed accumulator
  /// with the same constructor arguments.
  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& blob);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Online coincidence_count_matrix (row-major signal x idler counts).
class StreamingCountMatrixAccumulator {
 public:
  explicit StreamingCountMatrixAccumulator(double window_s, double offset_s = 0,
                                           int num_threads = 0);
  ~StreamingCountMatrixAccumulator();
  StreamingCountMatrixAccumulator(StreamingCountMatrixAccumulator&&) noexcept;
  StreamingCountMatrixAccumulator& operator=(
      StreamingCountMatrixAccumulator&&) noexcept;

  void push(const StreamWindow& w);
  std::vector<std::uint64_t> finish();

  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& blob);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Online correlate_all (diagonal signal-k x idler-k Δt histograms).
class StreamingCorrelatorAccumulator {
 public:
  StreamingCorrelatorAccumulator(double bin_width_s, double range_s,
                                 int num_threads = 0);
  ~StreamingCorrelatorAccumulator();
  StreamingCorrelatorAccumulator(StreamingCorrelatorAccumulator&&) noexcept;
  StreamingCorrelatorAccumulator& operator=(
      StreamingCorrelatorAccumulator&&) noexcept;

  void push(const StreamWindow& w);
  std::vector<CoincidenceHistogram> finish();

  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& blob);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct StreamingAllanResult {
  std::vector<double> counts;  ///< per-interval coincidence counts
  double mean_counts = 0;
  std::vector<AllanPoint> allan;  ///< Allan deviation of counts / mean
};

/// Online Allan-deviation pipeline for one (signal, idler) channel pair:
/// buffers only the clicks of the current `sample_interval_s` interval,
/// counts coincidences (|Δt| <= window/2 via count_coincidences) per
/// interval as windows flush past it, and finish() returns the interval
/// counts, their mean, and the Allan curve of the fractional counts.
/// Intervals are [i*dt, (i+1)*dt); a trailing partial interval is dropped.
class StreamingAllanAccumulator {
 public:
  StreamingAllanAccumulator(double coincidence_window_s,
                            double sample_interval_s,
                            std::size_t signal_channel = 0,
                            std::size_t idler_channel = 0);
  ~StreamingAllanAccumulator();
  StreamingAllanAccumulator(StreamingAllanAccumulator&&) noexcept;
  StreamingAllanAccumulator& operator=(StreamingAllanAccumulator&&) noexcept;

  void push(const StreamWindow& w);
  StreamingAllanResult finish();

  std::vector<std::uint8_t> snapshot() const;
  void restore(const std::vector<std::uint8_t>& blob);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qfc::detect
