#pragma once

/// \file engine_plan.hpp
/// Internal: per-channel generation plan shared by the batch engine
/// (event_engine.cpp) and the windowed streaming engine (streaming.cpp).
/// Builds the validated kernel-parameter structs for a ChannelPairSpec so
/// both paths reject bad specs identically and drive the same emission
/// kernels with the same parameters. Not installed API; include only from
/// qfc::detect translation units.

#include <stdexcept>

#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/event_stream.hpp"

#include <string>

namespace qfc::detect::detail {

/// Per-channel generation plan, fully validated before any parallel work.
struct ChannelPlan {
  EmissionMode mode = EmissionMode::Cw;
  PairStreamParams cw;
  PulsedStreamParams pulsed;
  PiecewiseStreamParams piecewise;
};

inline ChannelPlan make_plan(const ChannelPairSpec& spec, double duration_s) {
  ChannelPlan plan;
  plan.mode = spec.emission;
  switch (spec.emission) {
    case EmissionMode::Cw:
      plan.cw.pair_rate_hz = spec.pair_rate_hz;
      plan.cw.linewidth_hz = spec.linewidth_hz;
      plan.cw.duration_s = duration_s;
      plan.cw.transmission_a = spec.transmission_signal;
      plan.cw.transmission_b = spec.transmission_idler;
      plan.cw.validate();
      break;
    case EmissionMode::Pulsed:
      if (spec.pair_rate_hz != 0)
        throw std::invalid_argument(
            "ChannelPairSpec: Pulsed mode needs pair_rate_hz == 0 (the rate is "
            "mean_pairs_per_pulse x repetition_rate_hz)");
      plan.pulsed.repetition_rate_hz = spec.pulsed.repetition_rate_hz;
      plan.pulsed.mean_pairs_per_pulse = spec.pulsed.mean_pairs_per_pulse;
      plan.pulsed.pulse_sigma_s = spec.pulsed.pulse_sigma_s;
      plan.pulsed.bin_separation_s = spec.pulsed.bin_separation_s;
      plan.pulsed.late_fraction = spec.pulsed.late_fraction;
      plan.pulsed.linewidth_hz = spec.linewidth_hz;
      plan.pulsed.duration_s = duration_s;
      plan.pulsed.transmission_a = spec.transmission_signal;
      plan.pulsed.transmission_b = spec.transmission_idler;
      plan.pulsed.validate();
      break;
    case EmissionMode::PiecewiseRates:
      if (spec.pair_rate_hz != 0)
        throw std::invalid_argument(
            "ChannelPairSpec: PiecewiseRates mode needs pair_rate_hz == 0 (the "
            "segments carry the pair rate)");
      plan.piecewise.segments = spec.segments;
      plan.piecewise.linewidth_hz = spec.linewidth_hz;
      plan.piecewise.duration_s = duration_s;
      plan.piecewise.transmission_a = spec.transmission_signal;
      plan.piecewise.transmission_b = spec.transmission_idler;
      plan.piecewise.validate();
      break;
  }
  return plan;
}

/// Validation wrapper both engines use when planning a whole spec list: the
/// spec-level checks shared by batch and streaming (background rates) plus
/// make_plan, with the channel index prefixed onto any error so one bad
/// entry in a hundreds-of-channels plan (e.g. a QkdNetwork user list) names
/// the offender instead of forcing a bisection.
inline ChannelPlan make_checked_plan(const ChannelPairSpec& spec, double duration_s,
                                     std::size_t channel) {
  try {
    if (spec.background_rate_signal_hz < 0 || spec.background_rate_idler_hz < 0)
      throw std::invalid_argument("ChannelPairSpec: negative background rate");
    return make_plan(spec, duration_s);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("channel " + std::to_string(channel) + ": " + e.what());
  }
}

}  // namespace qfc::detect::detail
