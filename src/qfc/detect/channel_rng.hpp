#pragma once

/// \file channel_rng.hpp
/// Internal: the per-channel RNG sub-stream fork discipline shared by the
/// batch engine (event_engine.cpp) and the windowed streaming engine
/// (streaming.cpp).
///
/// Per channel c the engine forks `ch = master.fork(c + 1)` (serially, in
/// channel order) and then derives eleven sub-streams from `ch`,
/// unconditionally and in this fixed order — one per stochastic stage of
/// the per-channel pipeline:
///
///   1 pair emission      2 bg signal        3 bg idler
///   4 pw bg signal       5 pw bg idler
///   6 det signal         7 darks signal     8 pw darks signal
///   9 det idler         10 darks idler     11 pw darks idler
///
/// Because every stage owns its own stream, pausing one stage at a window
/// boundary (streaming) cannot shift the draws of any other stage — the
/// batch run and any windowed run consume identical per-stream sequences,
/// which is what makes streaming output bitwise identical to batch at
/// every window size. Streams for stages a spec never exercises (e.g. the
/// piecewise streams of a Cw channel) are forked but simply never drawn
/// from.

#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect::detail {

struct ChannelRngs {
  rng::Xoshiro256 pair;      ///< emission kernel (all modes)
  rng::Xoshiro256 bg_a;      ///< spec-level homogeneous background, signal
  rng::Xoshiro256 bg_b;      ///< spec-level homogeneous background, idler
  rng::Xoshiro256 pwbg_a;    ///< piecewise background segments, signal
  rng::Xoshiro256 pwbg_b;    ///< piecewise background segments, idler
  rng::Xoshiro256 det_a;     ///< detector efficiency + jitter, signal
  rng::Xoshiro256 dark_a;    ///< detector homogeneous darks, signal
  rng::Xoshiro256 pwdark_a;  ///< piecewise dark segments, signal
  rng::Xoshiro256 det_b;     ///< detector efficiency + jitter, idler
  rng::Xoshiro256 dark_b;    ///< detector homogeneous darks, idler
  rng::Xoshiro256 pwdark_b;  ///< piecewise dark segments, idler
};

/// Derive the eleven per-stage sub-streams from a channel generator.
/// Braced-init evaluation is sequenced left to right, so the fork order is
/// exactly the documented 1..11.
inline ChannelRngs fork_channel_rngs(rng::Xoshiro256& ch) {
  return ChannelRngs{ch.fork(1), ch.fork(2), ch.fork(3), ch.fork(4),
                     ch.fork(5), ch.fork(6), ch.fork(7), ch.fork(8),
                     ch.fork(9), ch.fork(10), ch.fork(11)};
}

}  // namespace qfc::detect::detail
