#include "qfc/detect/event_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::detect {

void PairStreamParams::validate() const {
  if (pair_rate_hz < 0) throw std::invalid_argument("PairStreamParams: negative rate");
  if (linewidth_hz <= 0) throw std::invalid_argument("PairStreamParams: linewidth <= 0");
  if (duration_s <= 0) throw std::invalid_argument("PairStreamParams: duration <= 0");
  if (transmission_a < 0 || transmission_a > 1 || transmission_b < 0 || transmission_b > 1)
    throw std::invalid_argument("PairStreamParams: transmission outside [0,1]");
}

PairStreams generate_pair_arrivals(const PairStreamParams& p, rng::Xoshiro256& g) {
  p.validate();
  PairStreams s;
  if (p.pair_rate_hz == 0) return s;

  const double delay_scale = 1.0 / (2.0 * photonics::pi * p.linewidth_hz);
  const std::size_t expected =
      static_cast<std::size_t>(p.pair_rate_hz * p.duration_s * 1.1) + 16;
  s.a.reserve(expected);
  s.b.reserve(expected);

  double t = rng::sample_exponential(g, p.pair_rate_hz);
  while (t < p.duration_s) {
    // Symmetrize: put half the Laplace delay on each photon so neither arm
    // is systematically early.
    const double delta = rng::sample_double_exponential(g, 1.0 / delay_scale);
    const double ta = t + delta / 2.0;
    const double tb = t - delta / 2.0;
    if (ta >= 0 && ta < p.duration_s && rng::sample_bernoulli(g, p.transmission_a))
      s.a.push_back(ta);
    if (tb >= 0 && tb < p.duration_s && rng::sample_bernoulli(g, p.transmission_b))
      s.b.push_back(tb);
    t += rng::sample_exponential(g, p.pair_rate_hz);
  }
  // The pair emission times are generated in order and the signal-idler
  // delay is ~1/(2π δν), usually far below the mean pair spacing: both
  // arms are almost always already sorted, so probe before sorting.
  if (!std::is_sorted(s.a.begin(), s.a.end())) std::sort(s.a.begin(), s.a.end());
  if (!std::is_sorted(s.b.begin(), s.b.end())) std::sort(s.b.begin(), s.b.end());
  return s;
}

std::vector<double> generate_poisson_arrivals(double rate_hz, double duration_s,
                                              rng::Xoshiro256& g) {
  if (rate_hz < 0) throw std::invalid_argument("generate_poisson_arrivals: negative rate");
  if (duration_s <= 0) throw std::invalid_argument("generate_poisson_arrivals: duration <= 0");
  std::vector<double> out;
  if (rate_hz == 0) return out;
  double t = rng::sample_exponential(g, rate_hz);
  while (t < duration_s) {
    out.push_back(t);
    t += rng::sample_exponential(g, rate_hz);
  }
  return out;
}

}  // namespace qfc::detect
