#include "qfc/detect/event_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::detect {

void PairStreamParams::validate() const {
  if (pair_rate_hz < 0) throw std::invalid_argument("PairStreamParams: negative rate");
  if (linewidth_hz <= 0) throw std::invalid_argument("PairStreamParams: linewidth <= 0");
  if (duration_s <= 0) throw std::invalid_argument("PairStreamParams: duration <= 0");
  if (transmission_a < 0 || transmission_a > 1 || transmission_b < 0 || transmission_b > 1)
    throw std::invalid_argument("PairStreamParams: transmission outside [0,1]");
}

namespace detail {

void emit_pair(double t0, double delay_scale, double duration_s, double transmission_a,
               double transmission_b, PairStreams& s, rng::Xoshiro256& g) {
  // Symmetrize: put half the Laplace delay on each photon so neither arm
  // is systematically early.
  const double delta = rng::sample_double_exponential(g, 1.0 / delay_scale);
  const double ta = t0 + delta / 2.0;
  const double tb = t0 - delta / 2.0;
  if (ta >= 0 && ta < duration_s && rng::sample_bernoulli(g, transmission_a))
    s.a.push_back(ta);
  if (tb >= 0 && tb < duration_s && rng::sample_bernoulli(g, transmission_b))
    s.b.push_back(tb);
}

}  // namespace detail

namespace {

using detail::emit_pair;

/// The pair emission times are generated in order and the signal-idler
/// delay is ~1/(2π δν), usually far below the mean pair spacing: both
/// arms are almost always already sorted, so probe before sorting.
void sort_if_needed(PairStreams& s) {
  if (!std::is_sorted(s.a.begin(), s.a.end())) std::sort(s.a.begin(), s.a.end());
  if (!std::is_sorted(s.b.begin(), s.b.end())) std::sort(s.b.begin(), s.b.end());
}

}  // namespace

PairStreams generate_pair_arrivals(const PairStreamParams& p, rng::Xoshiro256& g) {
  p.validate();
  PairStreams s;
  if (p.pair_rate_hz == 0) return s;

  const double delay_scale = 1.0 / (2.0 * photonics::pi * p.linewidth_hz);
  const std::size_t expected =
      static_cast<std::size_t>(p.pair_rate_hz * p.duration_s * 1.1) + 16;
  s.a.reserve(expected);
  s.b.reserve(expected);

  double t = rng::sample_exponential(g, p.pair_rate_hz);
  while (t < p.duration_s) {
    emit_pair(t, delay_scale, p.duration_s, p.transmission_a, p.transmission_b, s, g);
    t += rng::sample_exponential(g, p.pair_rate_hz);
  }
  sort_if_needed(s);
  return s;
}

std::vector<double> generate_poisson_arrivals(double rate_hz, double duration_s,
                                              rng::Xoshiro256& g) {
  if (rate_hz < 0) throw std::invalid_argument("generate_poisson_arrivals: negative rate");
  if (duration_s <= 0) throw std::invalid_argument("generate_poisson_arrivals: duration <= 0");
  std::vector<double> out;
  if (rate_hz == 0) return out;
  double t = rng::sample_exponential(g, rate_hz);
  while (t < duration_s) {
    out.push_back(t);
    t += rng::sample_exponential(g, rate_hz);
  }
  return out;
}

void PulsedStreamParams::validate() const {
  if (repetition_rate_hz <= 0)
    throw std::invalid_argument("PulsedStreamParams: repetition rate <= 0");
  if (mean_pairs_per_pulse < 0)
    throw std::invalid_argument("PulsedStreamParams: negative mean pairs per pulse");
  if (pulse_sigma_s < 0)
    throw std::invalid_argument("PulsedStreamParams: negative pulse jitter");
  if (bin_separation_s < 0)
    throw std::invalid_argument("PulsedStreamParams: negative bin separation");
  if (bin_separation_s >= 1.0 / repetition_rate_hz)
    throw std::invalid_argument(
        "PulsedStreamParams: bin separation >= repetition period");
  if (late_fraction < 0 || late_fraction > 1)
    throw std::invalid_argument("PulsedStreamParams: late fraction outside [0,1]");
  if (linewidth_hz <= 0) throw std::invalid_argument("PulsedStreamParams: linewidth <= 0");
  if (duration_s <= 0) throw std::invalid_argument("PulsedStreamParams: duration <= 0");
  if (transmission_a < 0 || transmission_a > 1 || transmission_b < 0 || transmission_b > 1)
    throw std::invalid_argument("PulsedStreamParams: transmission outside [0,1]");
}

PairStreams generate_pulsed_pair_arrivals(const PulsedStreamParams& p,
                                          rng::Xoshiro256& g) {
  p.validate();
  PairStreams s;
  if (p.mean_pairs_per_pulse == 0) return s;

  const double delay_scale = 1.0 / (2.0 * photonics::pi * p.linewidth_hz);
  const double period = 1.0 / p.repetition_rate_hz;
  const std::size_t expected = static_cast<std::size_t>(
                                   p.mean_pairs_per_pulse * p.duration_s / period * 1.1) +
                               16;
  s.a.reserve(expected);
  s.b.reserve(expected);

  const bool double_pulse = p.bin_separation_s > 0;
  const double mu = p.mean_pairs_per_pulse;
  // Visit only the occupied pulse slots: slot occupancy is Bernoulli with
  // p_occ = 1 - e^-mu per slot, so the index gap to the next occupied slot
  // is geometric — sampled exactly as floor(Exp(mu)) — and the pair number
  // of a visited slot is zero-truncated Poisson. Identical in distribution
  // to a Poisson draw per slot, at O(emitted pairs) RNG cost instead of
  // O(slots); comb sources run at mu << 1, where almost every slot is empty.
  double pulse = std::floor(rng::sample_exponential(g, mu));
  for (;;) {
    const double t_pulse = pulse * period;
    if (t_pulse >= p.duration_s) break;
    const std::uint64_t n = rng::sample_zero_truncated_poisson(g, mu);
    for (std::uint64_t i = 0; i < n; ++i) {
      double t0 = t_pulse;
      if (double_pulse && rng::sample_bernoulli(g, p.late_fraction))
        t0 += p.bin_separation_s;
      if (p.pulse_sigma_s > 0) t0 += rng::sample_normal(g, 0.0, p.pulse_sigma_s);
      emit_pair(t0, delay_scale, p.duration_s, p.transmission_a, p.transmission_b, s, g);
    }
    pulse += 1.0 + std::floor(rng::sample_exponential(g, mu));
  }
  // Within one repetition period pairs are emitted bin-unordered; across
  // periods they are time-ordered, so the streams are nearly sorted.
  sort_if_needed(s);
  return s;
}

namespace {

void validate_segments(const std::vector<RateSegment>& segments, double duration_s) {
  if (segments.empty())
    throw std::invalid_argument("RateSegment schedule: no segments");
  double total = 0;
  for (const RateSegment& seg : segments) {
    if (seg.duration_s <= 0)
      throw std::invalid_argument("RateSegment: segment duration <= 0");
    if (seg.pair_rate_hz < 0 || seg.background_rate_signal_hz < 0 ||
        seg.background_rate_idler_hz < 0 || seg.dark_rate_signal_hz < 0 ||
        seg.dark_rate_idler_hz < 0)
      throw std::invalid_argument("RateSegment: negative rate");
    total += seg.duration_s;
  }
  // Tiny relative slack so schedules assembled as duration/n sums are not
  // rejected for float rounding.
  if (total < duration_s * (1.0 - 1e-9))
    throw std::invalid_argument(
        "RateSegment schedule: segments do not cover the stream duration");
}

}  // namespace

void PiecewiseStreamParams::validate() const {
  validate_segments(segments, duration_s);
  if (linewidth_hz <= 0)
    throw std::invalid_argument("PiecewiseStreamParams: linewidth <= 0");
  if (duration_s <= 0) throw std::invalid_argument("PiecewiseStreamParams: duration <= 0");
  if (transmission_a < 0 || transmission_a > 1 || transmission_b < 0 || transmission_b > 1)
    throw std::invalid_argument("PiecewiseStreamParams: transmission outside [0,1]");
}

PairStreams generate_piecewise_pair_arrivals(const PiecewiseStreamParams& p,
                                             rng::Xoshiro256& g) {
  p.validate();
  PairStreams s;
  const double delay_scale = 1.0 / (2.0 * photonics::pi * p.linewidth_hz);

  double seg_start = 0;
  for (const RateSegment& seg : p.segments) {
    if (seg_start >= p.duration_s) break;
    const double seg_end = std::min(seg_start + seg.duration_s, p.duration_s);
    if (seg.pair_rate_hz > 0) {
      // Same emission loop as the CW kernel, restarted per segment at the
      // segment's own rate (memorylessness makes the restart exact).
      double t = seg_start + rng::sample_exponential(g, seg.pair_rate_hz);
      while (t < seg_end) {
        emit_pair(t, delay_scale, p.duration_s, p.transmission_a, p.transmission_b, s, g);
        t += rng::sample_exponential(g, seg.pair_rate_hz);
      }
    }
    seg_start += seg.duration_s;
  }
  sort_if_needed(s);
  return s;
}

std::vector<double> generate_piecewise_poisson_arrivals(
    const std::vector<RateSegment>& segments, double RateSegment::*rate,
    double duration_s, rng::Xoshiro256& g) {
  if (duration_s <= 0)
    throw std::invalid_argument("generate_piecewise_poisson_arrivals: duration <= 0");
  validate_segments(segments, duration_s);

  std::vector<double> out;
  double seg_start = 0;
  for (const RateSegment& seg : segments) {
    if (seg_start >= duration_s) break;
    const double seg_end = std::min(seg_start + seg.duration_s, duration_s);
    const double r = seg.*rate;
    if (r > 0) {
      double t = seg_start + rng::sample_exponential(g, r);
      while (t < seg_end) {
        out.push_back(t);
        t += rng::sample_exponential(g, r);
      }
    }
    seg_start += seg.duration_s;
  }
  return out;
}

}  // namespace qfc::detect
