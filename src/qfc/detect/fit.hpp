#pragma once

/// \file fit.hpp
/// Estimators used to turn histograms and fringe scans into the numbers
/// the paper reports: exponential-decay fits (photon coherence time /
/// linewidth) and sinusoid fits (quantum-interference visibility).

#include <vector>

namespace qfc::io {
class Json;
}

namespace qfc::detect {

struct ExponentialFit {
  double amplitude = 0;   ///< A in  y = A exp(−|t|/tau)
  double tau_s = 0;       ///< decay time
  double r_squared = 0;   ///< goodness of fit on the log-linear model
};

/// Fit y_i = A exp(−|t_i|/τ) by weighted linear regression of log(y) on
/// |t| (weights ∝ y_i, the correct weighting for Poisson counts). Points
/// with y <= 0 are skipped; throws if fewer than 3 usable points.
ExponentialFit fit_two_sided_exponential(const std::vector<double>& t_s,
                                         const std::vector<double>& y);

/// Lorentzian linewidth (FWHM, Hz) of a photon whose arrival-time-
/// difference histogram decays as exp(−2π δν |Δt|):  δν = 1/(2π τ).
double linewidth_from_decay_time(double tau_s);

/// Remove Gaussian jitter broadening from a measured decay time using the
/// variance-matching approximation: τ_true ≈ sqrt(τ_meas² − 2σ_j²)
/// (an exponential ⊛ Gaussian has variance 2τ² + σ²; we match second
/// moments of the two-sided distribution). Returns τ_meas when the
/// correction would be imaginary.
double deconvolve_jitter(double tau_measured_s, double jitter_sigma_s);

struct SinusoidFit {
  double offset = 0;       ///< c0 in y = c0 + a cos(x) + b sin(x)
  double amplitude = 0;    ///< sqrt(a² + b²)
  double phase_rad = 0;    ///< atan2(−b, a): y = c0 + A cos(x + φ)
  double visibility = 0;   ///< A / c0, clipped to [0, 1]
  double visibility_err = 0;  ///< 1σ from Poisson residual propagation

  /// {offset, amplitude, phase_rad, visibility, visibility_err}.
  io::Json to_json() const;
};

/// Least-squares fit of a fringe y(x) = c0 + a cos x + b sin x; x in rad.
SinusoidFit fit_sinusoid(const std::vector<double>& x_rad, const std::vector<double>& y);

/// Visibility from explicit extrema: (max−min)/(max+min).
double visibility_from_extrema(double max_counts, double min_counts);

}  // namespace qfc::detect
