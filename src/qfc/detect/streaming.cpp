#include "qfc/detect/streaming.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "qfc/detect/analysis_sweep.hpp"
#include "qfc/detect/channel_rng.hpp"
#include "qfc/detect/engine_plan.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::detect {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoChannels = static_cast<std::size_t>(-1);

// ------------------------------------------------------------- snapshots
//
// Versioned host-endian binary blobs: "QFCS" magic, u32 version, u8 kind,
// then the kind-specific state. Restore re-validates configs through the
// normal constructors, then overwrites the mutable state.

constexpr std::uint32_t kSnapshotVersion = 1;
enum SnapshotKind : std::uint8_t {
  kKindStreamer = 0,
  kKindCar = 1,
  kKindCountMatrix = 2,
  kKindCorrelator = 3,
  kKindAllan = 4,
};

struct ByteWriter {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u32(std::uint32_t v) {
    const auto old = buf.size();
    buf.resize(old + sizeof v);
    std::memcpy(buf.data() + old, &v, sizeof v);
  }
  void u64(std::uint64_t v) {
    const auto old = buf.size();
    buf.resize(old + sizeof v);
    std::memcpy(buf.data() + old, &v, sizeof v);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void rng(const rng::Xoshiro256& g) {
    for (std::uint64_t s : g.state()) u64(s);
  }
  void header(SnapshotKind kind) {
    buf.push_back('Q');
    buf.push_back('F');
    buf.push_back('C');
    buf.push_back('S');
    u32(kSnapshotVersion);
    u8(static_cast<std::uint8_t>(kind));
  }
};

struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  explicit ByteReader(const std::vector<std::uint8_t>& b)
      : data(b.data()), size(b.size()) {}

  void need(std::size_t n) const {
    if (pos + n > size) throw std::invalid_argument("snapshot: truncated blob");
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
  std::uint32_t u32() {
    need(sizeof(std::uint32_t));
    std::uint32_t v;
    std::memcpy(&v, data + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  std::uint64_t u64() {
    need(sizeof(std::uint64_t));
    std::uint64_t v;
    std::memcpy(&v, data + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::vector<double> vec_f64() {
    const std::uint64_t n = u64();
    need(n * sizeof(std::uint64_t));
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  std::vector<std::uint64_t> vec_u64() {
    const std::uint64_t n = u64();
    need(n * sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<std::uint32_t> vec_u32() {
    const std::uint64_t n = u64();
    need(n * sizeof(std::uint32_t));
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = u32();
    return v;
  }
  void rng(rng::Xoshiro256& g) {
    std::array<std::uint64_t, 4> s;
    for (auto& x : s) x = u64();
    g.set_state(s);
  }
  void header(SnapshotKind kind) {
    need(4);
    if (data[pos] != 'Q' || data[pos + 1] != 'F' || data[pos + 2] != 'C' ||
        data[pos + 3] != 'S')
      throw std::invalid_argument("snapshot: bad magic");
    pos += 4;
    if (u32() != kSnapshotVersion)
      throw std::invalid_argument("snapshot: unsupported version");
    if (u8() != static_cast<std::uint8_t>(kind))
      throw std::invalid_argument("snapshot: wrong snapshot kind for this class");
  }
  void expect_end() const {
    if (pos != size) throw std::invalid_argument("snapshot: trailing bytes");
  }
};

// --------------------------------------------------- windowed samplers
//
// Resumable counterparts of the event_stream.cpp kernels. Each replicates
// its batch kernel's loop draw for draw on the same dedicated sub-stream
// (channel_rng.hpp), merely *pausing* when the next emission would reach
// the advance target — so the concatenation of windowed advances consumes
// exactly the batch draw sequence, which is the whole parity argument.

/// generate_poisson_arrivals, windowed: emit every arrival < min(target,
/// duration) into `out`.
struct ExpState {
  double next = 0;
  bool primed = false;
  bool done = false;

  void advance(double rate_hz, double duration_s, double target_s,
               rng::Xoshiro256& g, std::vector<double>& out) {
    if (done) return;
    if (!primed) {
      if (rate_hz <= 0) {
        done = true;  // batch draws nothing at rate 0
        return;
      }
      next = rng::sample_exponential(g, rate_hz);
      primed = true;
    }
    while (next < duration_s && next < target_s) {
      out.push_back(next);
      next += rng::sample_exponential(g, rate_hz);
    }
    if (next >= duration_s) done = true;
  }

  void save(ByteWriter& w) const {
    w.f64(next);
    w.boolean(primed);
    w.boolean(done);
  }
  void load(ByteReader& r) {
    next = r.f64();
    primed = r.boolean();
    done = r.boolean();
  }
};

/// generate_piecewise_poisson_arrivals, windowed. A segment whose start
/// lies beyond the target is left unprimed (its first draw happens once
/// the target reaches it — same dedicated stream, so the sequence is the
/// batch one regardless of when the pause falls).
struct PwState {
  std::uint64_t seg = 0;
  double seg_start = 0;
  double next = 0;
  bool primed = false;
  bool done = false;

  void advance(const std::vector<RateSegment>& segments, double RateSegment::*rate,
               double duration_s, double target_s, rng::Xoshiro256& g,
               std::vector<double>& out) {
    if (done) return;
    while (true) {
      if (seg >= segments.size() || seg_start >= duration_s) {
        done = true;
        return;
      }
      const RateSegment& sg = segments[seg];
      const double seg_end = std::min(seg_start + sg.duration_s, duration_s);
      const double r = sg.*rate;
      if (r > 0) {
        if (!primed) {
          if (seg_start >= target_s) return;
          next = seg_start + rng::sample_exponential(g, r);
          primed = true;
        }
        while (next < seg_end && next < target_s) {
          out.push_back(next);
          next += rng::sample_exponential(g, r);
        }
        if (next < seg_end) return;  // paused mid-segment
      }
      seg_start += sg.duration_s;
      ++seg;
      primed = false;
    }
  }

  void save(ByteWriter& w) const {
    w.u64(seg);
    w.f64(seg_start);
    w.f64(next);
    w.boolean(primed);
    w.boolean(done);
  }
  void load(ByteReader& r) {
    seg = r.u64();
    seg_start = r.f64();
    next = r.f64();
    primed = r.boolean();
    done = r.boolean();
  }
};

/// generate_pair_arrivals, windowed.
struct CwPairState {
  double next = 0;
  bool primed = false;
  bool done = false;

  void advance(const PairStreamParams& p, double delay_scale, double target_s,
               rng::Xoshiro256& g, PairStreams& out) {
    if (done) return;
    if (!primed) {
      if (p.pair_rate_hz == 0) {
        done = true;
        return;
      }
      next = rng::sample_exponential(g, p.pair_rate_hz);
      primed = true;
    }
    while (next < p.duration_s && next < target_s) {
      detail::emit_pair(next, delay_scale, p.duration_s, p.transmission_a,
                        p.transmission_b, out, g);
      next += rng::sample_exponential(g, p.pair_rate_hz);
    }
    if (next >= p.duration_s) done = true;
  }

  void save(ByteWriter& w) const {
    w.f64(next);
    w.boolean(primed);
    w.boolean(done);
  }
  void load(ByteReader& r) {
    next = r.f64();
    primed = r.boolean();
    done = r.boolean();
  }
};

/// generate_pulsed_pair_arrivals, windowed: pauses before an occupied
/// pulse slot whose nominal time reaches the target (the slot's pair
/// number and per-pair draws happen once the target passes it).
struct PulsedPairState {
  double pulse = 0;
  bool primed = false;
  bool done = false;

  void advance(const PulsedStreamParams& p, double delay_scale, double target_s,
               rng::Xoshiro256& g, PairStreams& out) {
    if (done) return;
    const double mu = p.mean_pairs_per_pulse;
    if (!primed) {
      if (mu == 0) {
        done = true;
        return;
      }
      pulse = std::floor(rng::sample_exponential(g, mu));
      primed = true;
    }
    const double period = 1.0 / p.repetition_rate_hz;
    const bool double_pulse = p.bin_separation_s > 0;
    for (;;) {
      const double t_pulse = pulse * period;
      if (t_pulse >= p.duration_s) {
        done = true;
        return;
      }
      if (t_pulse >= target_s) return;  // paused before this slot
      const std::uint64_t n = rng::sample_zero_truncated_poisson(g, mu);
      for (std::uint64_t i = 0; i < n; ++i) {
        double t0 = t_pulse;
        if (double_pulse && rng::sample_bernoulli(g, p.late_fraction))
          t0 += p.bin_separation_s;
        if (p.pulse_sigma_s > 0) t0 += rng::sample_normal(g, 0.0, p.pulse_sigma_s);
        detail::emit_pair(t0, delay_scale, p.duration_s, p.transmission_a,
                          p.transmission_b, out, g);
      }
      pulse += 1.0 + std::floor(rng::sample_exponential(g, mu));
    }
  }

  void save(ByteWriter& w) const {
    w.f64(pulse);
    w.boolean(primed);
    w.boolean(done);
  }
  void load(ByteReader& r) {
    pulse = r.f64();
    primed = r.boolean();
    done = r.boolean();
  }
};

/// generate_piecewise_pair_arrivals, windowed.
struct PwPairState {
  std::uint64_t seg = 0;
  double seg_start = 0;
  double next = 0;
  bool primed = false;
  bool done = false;

  void advance(const PiecewiseStreamParams& p, double delay_scale, double target_s,
               rng::Xoshiro256& g, PairStreams& out) {
    if (done) return;
    while (true) {
      if (seg >= p.segments.size() || seg_start >= p.duration_s) {
        done = true;
        return;
      }
      const RateSegment& sg = p.segments[seg];
      const double seg_end = std::min(seg_start + sg.duration_s, p.duration_s);
      if (sg.pair_rate_hz > 0) {
        if (!primed) {
          if (seg_start >= target_s) return;
          next = seg_start + rng::sample_exponential(g, sg.pair_rate_hz);
          primed = true;
        }
        while (next < seg_end && next < target_s) {
          detail::emit_pair(next, delay_scale, p.duration_s, p.transmission_a,
                            p.transmission_b, out, g);
          next += rng::sample_exponential(g, sg.pair_rate_hz);
        }
        if (next < seg_end) return;
      }
      seg_start += sg.duration_s;
      ++seg;
      primed = false;
    }
  }

  void save(ByteWriter& w) const {
    w.u64(seg);
    w.f64(seg_start);
    w.f64(next);
    w.boolean(primed);
    w.boolean(done);
  }
  void load(ByteReader& r) {
    seg = r.u64();
    seg_start = r.f64();
    next = r.f64();
    primed = r.boolean();
    done = r.boolean();
  }
};

// ----------------------------------------------------- per-channel state

/// One detector arm's carried state: arrivals generated but not yet pushed
/// through detection (>= last window's arrival watermark) and clicks
/// detected but not yet finalized (>= last window's click watermark).
struct ArmState {
  ExpState bg;      ///< spec-level homogeneous background
  PwState pwbg;     ///< piecewise background schedule
  ExpState dark;    ///< detector-internal homogeneous darks
  PwState pwdark;   ///< piecewise dark schedule
  std::vector<double> pending_arrivals;
  std::vector<double> pending_clicks;
  double dead_last = -1e18;  ///< dead-time filter carry (batch initial value)

  void save(ByteWriter& w) const {
    bg.save(w);
    pwbg.save(w);
    dark.save(w);
    pwdark.save(w);
    w.vec_f64(pending_arrivals);
    w.vec_f64(pending_clicks);
    w.f64(dead_last);
  }
  void load(ByteReader& r) {
    bg.load(r);
    pwbg.load(r);
    dark.load(r);
    pwdark.load(r);
    pending_arrivals = r.vec_f64();
    pending_clicks = r.vec_f64();
    dead_last = r.f64();
  }
};

struct ChannelState {
  detail::ChannelRngs rng;
  CwPairState cw;
  PulsedPairState pulsed;
  PwPairState pw;
  ArmState a, b;
  double prev_theta = 0;  ///< previous window's arrival watermark
  double prev_c = 0;      ///< previous window's click watermark
  std::uint64_t violations = 0;

  void save(ByteWriter& w) const {
    w.rng(rng.pair);
    w.rng(rng.bg_a);
    w.rng(rng.bg_b);
    w.rng(rng.pwbg_a);
    w.rng(rng.pwbg_b);
    w.rng(rng.det_a);
    w.rng(rng.dark_a);
    w.rng(rng.pwdark_a);
    w.rng(rng.det_b);
    w.rng(rng.dark_b);
    w.rng(rng.pwdark_b);
    cw.save(w);
    pulsed.save(w);
    pw.save(w);
    a.save(w);
    b.save(w);
    w.f64(prev_theta);
    w.f64(prev_c);
    w.u64(violations);
  }
  void load(ByteReader& r) {
    r.rng(rng.pair);
    r.rng(rng.bg_a);
    r.rng(rng.bg_b);
    r.rng(rng.pwbg_a);
    r.rng(rng.pwbg_b);
    r.rng(rng.det_a);
    r.rng(rng.dark_a);
    r.rng(rng.pwdark_a);
    r.rng(rng.det_b);
    r.rng(rng.dark_b);
    r.rng(rng.pwdark_b);
    cw.load(r);
    pulsed.load(r);
    pw.load(r);
    a.load(r);
    b.load(r);
    prev_theta = r.f64();
    prev_c = r.f64();
    violations = r.u64();
  }
};

void save_spec(ByteWriter& w, const ChannelPairSpec& s) {
  w.f64(s.pair_rate_hz);
  w.f64(s.linewidth_hz);
  w.f64(s.transmission_signal);
  w.f64(s.transmission_idler);
  w.f64(s.background_rate_signal_hz);
  w.f64(s.background_rate_idler_hz);
  for (const DetectorParams* d : {&s.detector_signal, &s.detector_idler}) {
    w.f64(d->efficiency);
    w.f64(d->dark_rate_hz);
    w.f64(d->jitter_sigma_s);
    w.f64(d->dead_time_s);
  }
  w.u8(static_cast<std::uint8_t>(s.emission));
  w.f64(s.pulsed.repetition_rate_hz);
  w.f64(s.pulsed.mean_pairs_per_pulse);
  w.f64(s.pulsed.pulse_sigma_s);
  w.f64(s.pulsed.bin_separation_s);
  w.f64(s.pulsed.late_fraction);
  w.u64(s.segments.size());
  for (const RateSegment& seg : s.segments) {
    w.f64(seg.duration_s);
    w.f64(seg.pair_rate_hz);
    w.f64(seg.background_rate_signal_hz);
    w.f64(seg.background_rate_idler_hz);
    w.f64(seg.dark_rate_signal_hz);
    w.f64(seg.dark_rate_idler_hz);
  }
}

ChannelPairSpec load_spec(ByteReader& r) {
  ChannelPairSpec s;
  s.pair_rate_hz = r.f64();
  s.linewidth_hz = r.f64();
  s.transmission_signal = r.f64();
  s.transmission_idler = r.f64();
  s.background_rate_signal_hz = r.f64();
  s.background_rate_idler_hz = r.f64();
  for (DetectorParams* d : {&s.detector_signal, &s.detector_idler}) {
    d->efficiency = r.f64();
    d->dark_rate_hz = r.f64();
    d->jitter_sigma_s = r.f64();
    d->dead_time_s = r.f64();
  }
  s.emission = static_cast<EmissionMode>(r.u8());
  if (s.emission != EmissionMode::Cw && s.emission != EmissionMode::Pulsed &&
      s.emission != EmissionMode::PiecewiseRates)
    throw std::invalid_argument("snapshot: bad emission mode");
  s.pulsed.repetition_rate_hz = r.f64();
  s.pulsed.mean_pairs_per_pulse = r.f64();
  s.pulsed.pulse_sigma_s = r.f64();
  s.pulsed.bin_separation_s = r.f64();
  s.pulsed.late_fraction = r.f64();
  const std::uint64_t nseg = r.u64();
  s.segments.resize(nseg);
  for (RateSegment& seg : s.segments) {
    seg.duration_s = r.f64();
    seg.pair_rate_hz = r.f64();
    seg.background_rate_signal_hz = r.f64();
    seg.background_rate_idler_hz = r.f64();
    seg.dark_rate_signal_hz = r.f64();
    seg.dark_rate_idler_hz = r.f64();
  }
  return s;
}

}  // namespace

// -------------------------------------------------------- EventStreamer

struct EventStreamer::Impl {
  EngineConfig cfg;
  StreamConfig stream;
  std::vector<ChannelPairSpec> specs;
  std::vector<detail::ChannelPlan> plans;
  std::vector<SinglePhotonDetector> det_s, det_i;
  std::vector<double> delay_scale;  ///< per channel, 1/(2π δν)
  std::vector<double> spill_pair;   ///< emission look-ahead past the watermark
  std::vector<double> spill_jit;    ///< arrival watermark past the click one
  std::size_t num_windows = 0;
  std::size_t k = 0;  ///< next window index
  std::vector<ChannelState> chans;
  std::unique_ptr<parallel::WorkerPool> pool;
  std::uint64_t reported_violations = 0;

  Impl(const EngineConfig& c, const StreamConfig& s,
       std::vector<ChannelPairSpec> channels)
      : cfg(c), stream(s), specs(std::move(channels)) {
    if (cfg.duration_s <= 0)
      throw std::invalid_argument("EngineConfig: duration <= 0");
    if (cfg.num_threads < 0)
      throw std::invalid_argument("EngineConfig: negative thread count");
    if (cfg.analysis_threads < 0)
      throw std::invalid_argument("EngineConfig: negative analysis thread count");
    if (!(stream.window_s > 0))
      throw std::invalid_argument("StreamConfig: window <= 0");

    const std::size_t n = specs.size();
    plans.reserve(n);
    det_s.reserve(n);
    det_i.reserve(n);
    delay_scale.reserve(n);
    spill_pair.reserve(n);
    spill_jit.reserve(n);
    for (const ChannelPairSpec& spec : specs) {
      const std::size_t c = plans.size();
      plans.push_back(detail::make_checked_plan(spec, cfg.duration_s, c));
      det_s.emplace_back(spec.detector_signal);
      det_i.emplace_back(spec.detector_idler);

      const double scale = 1.0 / (2.0 * photonics::pi * spec.linewidth_hz);
      delay_scale.push_back(scale);
      // P(|Laplace| / 2 > 32 scales) = e^-64; pulsed adds the deterministic
      // late-bin shift and 16 sigmas of pulse-envelope jitter.
      double sp = 32.0 * scale;
      if (spec.emission == EmissionMode::Pulsed)
        sp += spec.pulsed.bin_separation_s + 16.0 * spec.pulsed.pulse_sigma_s;
      double sj = 16.0 * std::max(spec.detector_signal.jitter_sigma_s,
                                  spec.detector_idler.jitter_sigma_s);
      if (stream.slack_override_s > 0) sp = sj = stream.slack_override_s;
      spill_pair.push_back(sp);
      spill_jit.push_back(sj);
    }

    rng::Xoshiro256 master(cfg.seed);
    chans.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      rng::Xoshiro256 ch = master.fork(static_cast<std::uint64_t>(c + 1));
      chans.push_back(ChannelState{detail::fork_channel_rngs(ch), {}, {}, {}, {}, {}});
    }

    num_windows = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(cfg.duration_s / stream.window_s)));
    // Guard the float-rounding edge where ceil overshoots: never start a
    // window at or past the end of the run.
    while (num_windows > 1 &&
           static_cast<double>(num_windows - 1) * stream.window_s >= cfg.duration_s)
      --num_windows;

    unsigned num_threads = cfg.num_threads > 0
                               ? static_cast<unsigned>(cfg.num_threads)
                               : std::max(1u, std::thread::hardware_concurrency());
    num_threads = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, std::max<std::size_t>(n, 1)));
    pool = std::make_unique<parallel::WorkerPool>(num_threads);
  }

  /// One arm of one channel for one window: advance backgrounds to the
  /// arrival watermark `theta`, detect the sorted arrival prefix < theta,
  /// advance dark schedules to the click watermark `C`, finalize all
  /// clicks < C (3-way merge + dead-time filter with carried state).
  std::vector<double> process_arm(ArmState& arm, const SinglePhotonDetector& det,
                                  double bg_rate_hz,
                                  double RateSegment::*pwbg_member,
                                  double RateSegment::*pwdark_member,
                                  const detail::ChannelPlan& plan, double theta,
                                  double C, double prev_theta, double prev_c,
                                  rng::Xoshiro256& g_bg, rng::Xoshiro256& g_pwbg,
                                  rng::Xoshiro256& g_det, rng::Xoshiro256& g_dark,
                                  rng::Xoshiro256& g_pwdark,
                                  std::uint64_t& violations) {
    const double T = cfg.duration_s;
    const DetectorParams& params = det.params();

    // Backgrounds are complete below theta by construction of their
    // advance target, so they feed straight into the pending arrivals.
    if (bg_rate_hz > 0)
      arm.bg.advance(bg_rate_hz, T, theta, g_bg, arm.pending_arrivals);
    if (plan.mode == EmissionMode::PiecewiseRates)
      arm.pwbg.advance(plan.piecewise.segments, pwbg_member, T, theta, g_pwbg,
                       arm.pending_arrivals);

    // Detect the sorted arrival prefix < theta. Concatenated across
    // windows this visits every arrival in the batch engine's fully
    // sorted order, so the detection stream's draws line up exactly.
    auto& pending = arm.pending_arrivals;
    if (!std::is_sorted(pending.begin(), pending.end()))
      std::sort(pending.begin(), pending.end());
    const auto arr_split = std::lower_bound(pending.begin(), pending.end(), theta);
    for (auto it = pending.begin(); it != arr_split; ++it) {
      if (*it < prev_theta) ++violations;
      double click;
      if (detect_photon_click(*it, params, T, g_det, click))
        arm.pending_clicks.push_back(click);
    }
    pending.erase(pending.begin(), arr_split);

    // Dark clicks carry no jitter, so the click watermark C is exact for
    // them: generate straight up to C and finalize everything.
    std::vector<double> darks, pwdarks;
    if (params.dark_rate_hz > 0)
      arm.dark.advance(params.dark_rate_hz, T, C, g_dark, darks);
    if (plan.mode == EmissionMode::PiecewiseRates)
      arm.pwdark.advance(plan.piecewise.segments, pwdark_member, T, C, g_pwdark,
                         pwdarks);
    if (obs::metrics_enabled() && !(darks.empty() && pwdarks.empty()))
      obs::counter("detect.darks_injected").add(darks.size() + pwdarks.size());

    // Finalize clicks < C: photon clicks first on ties, then internal
    // darks, then schedule darks — the batch detect() merge order.
    auto& clicks = arm.pending_clicks;
    if (!std::is_sorted(clicks.begin(), clicks.end()))
      std::sort(clicks.begin(), clicks.end());
    const auto click_split = std::lower_bound(clicks.begin(), clicks.end(), C);
    std::vector<double> merged;
    merged.resize(static_cast<std::size_t>(click_split - clicks.begin()) +
                  darks.size());
    std::merge(clicks.begin(), click_split, darks.begin(), darks.end(),
               merged.begin());
    if (!pwdarks.empty()) {
      std::vector<double> merged2(merged.size() + pwdarks.size());
      std::merge(merged.begin(), merged.end(), pwdarks.begin(), pwdarks.end(),
                 merged2.begin());
      merged.swap(merged2);
    }
    clicks.erase(clicks.begin(), click_split);

    for (double t : merged)
      if (t < prev_c) ++violations;

    // Dead time, carried across windows (same expression as batch).
    if (params.dead_time_s > 0) {
      std::vector<double> kept;
      kept.reserve(merged.size());
      for (double t : merged) {
        if (t - arm.dead_last >= params.dead_time_s) {
          kept.push_back(t);
          arm.dead_last = t;
        }
      }
      merged.swap(kept);
    }
    return merged;
  }

  void process_channel(std::size_t c, double C, bool last,
                       std::vector<double>& sig_col,
                       std::vector<double>& idl_col) {
    QFC_OBS_SPAN("engine.stream.channel", {{"channel", c}});
    ChannelState& st = chans[c];
    const ChannelPairSpec& spec = specs[c];
    const detail::ChannelPlan& plan = plans[c];
    // Watermark ladder for this window: clicks finalize below C, arrivals
    // are detected below theta = C + jitter slack, emission runs to
    // E = theta + pair-delay slack. The last window drains everything.
    const double theta = last ? kInf : C + spill_jit[c];
    const double E = last ? kInf : theta + spill_pair[c];

    PairStreams fresh;
    switch (plan.mode) {
      case EmissionMode::Cw:
        st.cw.advance(plan.cw, delay_scale[c], E, st.rng.pair, fresh);
        break;
      case EmissionMode::Pulsed:
        st.pulsed.advance(plan.pulsed, delay_scale[c], E, st.rng.pair, fresh);
        break;
      case EmissionMode::PiecewiseRates:
        st.pw.advance(plan.piecewise, delay_scale[c], E, st.rng.pair, fresh);
        break;
    }
    if (obs::metrics_enabled())
      obs::counter("engine.events_generated").add(fresh.a.size() + fresh.b.size());
    st.a.pending_arrivals.insert(st.a.pending_arrivals.end(), fresh.a.begin(),
                                 fresh.a.end());
    st.b.pending_arrivals.insert(st.b.pending_arrivals.end(), fresh.b.begin(),
                                 fresh.b.end());

    sig_col = process_arm(st.a, det_s[c], spec.background_rate_signal_hz,
                          &RateSegment::background_rate_signal_hz,
                          &RateSegment::dark_rate_signal_hz, plan, theta, C,
                          st.prev_theta, st.prev_c, st.rng.bg_a, st.rng.pwbg_a,
                          st.rng.det_a, st.rng.dark_a, st.rng.pwdark_a,
                          st.violations);
    idl_col = process_arm(st.b, det_i[c], spec.background_rate_idler_hz,
                          &RateSegment::background_rate_idler_hz,
                          &RateSegment::dark_rate_idler_hz, plan, theta, C,
                          st.prev_theta, st.prev_c, st.rng.bg_b, st.rng.pwbg_b,
                          st.rng.det_b, st.rng.dark_b, st.rng.pwdark_b,
                          st.violations);
    if (obs::metrics_enabled())
      obs::counter("engine.clicks_kept").add(sig_col.size() + idl_col.size());
    st.prev_theta = theta;
    st.prev_c = C;
  }

  bool next(StreamWindow& out) {
    if (k >= num_windows) return false;
    QFC_OBS_SPAN("engine.stream.window", {{"index", k}});
    const double W = stream.window_s;
    const bool last = (k + 1 == num_windows);
    const double t_begin = static_cast<double>(k) * W;
    const double C =
        last ? cfg.duration_s
             : std::min(static_cast<double>(k + 1) * W, cfg.duration_s);

    const std::size_t n = chans.size();
    std::vector<std::vector<double>> sig_cols(n), idl_cols(n);
    pool->run(n, [&](std::size_t c) {
      process_channel(c, C, last, sig_cols[c], idl_cols[c]);
    });

    out.events.signal = EventTable::from_columns(std::move(sig_cols));
    out.events.idler = EventTable::from_columns(std::move(idl_cols));
    out.index = k;
    out.t_begin_s = t_begin;
    out.t_end_s = C;
    out.last = last;
    ++k;

    const std::uint64_t viol = total_violations();
    if (obs::metrics_enabled()) {
      obs::counter("engine.stream.windows").increment();
      if (viol > reported_violations)
        obs::counter("engine.stream.boundary_violations")
            .add(viol - reported_violations);
      std::size_t backlog = 0;
      for (const ChannelState& st : chans)
        backlog += st.a.pending_arrivals.size() + st.a.pending_clicks.size() +
                   st.b.pending_arrivals.size() + st.b.pending_clicks.size();
      obs::gauge("engine.stream.backlog_events")
          .set(static_cast<long long>(backlog));
      obs::gauge("engine.stream.rss_kb").set(obs::current_rss_kb());
    }
    reported_violations = viol;
    return true;
  }

  std::uint64_t total_violations() const {
    std::uint64_t v = 0;
    for (const ChannelState& st : chans) v += st.violations;
    return v;
  }
};

EventStreamer::EventStreamer(const EngineConfig& cfg, const StreamConfig& stream,
                             std::vector<ChannelPairSpec> channels)
    : impl_(std::make_unique<Impl>(cfg, stream, std::move(channels))) {}

EventStreamer::EventStreamer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
EventStreamer::~EventStreamer() = default;
EventStreamer::EventStreamer(EventStreamer&&) noexcept = default;
EventStreamer& EventStreamer::operator=(EventStreamer&&) noexcept = default;

bool EventStreamer::next(StreamWindow& out) { return impl_->next(out); }
bool EventStreamer::done() const { return impl_->k >= impl_->num_windows; }
std::size_t EventStreamer::next_window() const { return impl_->k; }
std::size_t EventStreamer::num_windows() const { return impl_->num_windows; }
std::uint64_t EventStreamer::boundary_violations() const {
  return impl_->total_violations();
}
const EngineConfig& EventStreamer::config() const { return impl_->cfg; }
const StreamConfig& EventStreamer::stream_config() const { return impl_->stream; }

std::vector<std::uint8_t> EventStreamer::snapshot() const {
  ByteWriter w;
  w.header(kKindStreamer);
  w.f64(impl_->cfg.duration_s);
  w.u64(impl_->cfg.seed);
  w.u64(static_cast<std::uint64_t>(impl_->cfg.num_threads));
  w.u64(static_cast<std::uint64_t>(impl_->cfg.analysis_threads));
  w.f64(impl_->stream.window_s);
  w.f64(impl_->stream.slack_override_s);
  w.u64(impl_->specs.size());
  for (const ChannelPairSpec& s : impl_->specs) save_spec(w, s);
  w.u64(impl_->k);
  w.u64(impl_->reported_violations);
  for (const ChannelState& st : impl_->chans) st.save(w);
  return std::move(w.buf);
}

EventStreamer EventStreamer::restore(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  r.header(kKindStreamer);
  EngineConfig cfg;
  cfg.duration_s = r.f64();
  cfg.seed = r.u64();
  cfg.num_threads = static_cast<int>(r.u64());
  cfg.analysis_threads = static_cast<int>(r.u64());
  StreamConfig stream;
  stream.window_s = r.f64();
  stream.slack_override_s = r.f64();
  const std::uint64_t n = r.u64();
  std::vector<ChannelPairSpec> specs;
  specs.reserve(n);
  for (std::uint64_t c = 0; c < n; ++c) specs.push_back(load_spec(r));

  // Reconstruct through the normal constructor (full validation), then
  // overwrite the mutable state with the serialized one.
  EventStreamer out(cfg, stream, std::move(specs));
  out.impl_->k = r.u64();
  out.impl_->reported_violations = r.u64();
  for (ChannelState& st : out.impl_->chans) st.load(r);
  r.expect_end();
  return out;
}

// ------------------------------------------------ streaming accumulators

namespace {

using analysis_detail::kAnalysisChunkEvents;

/// Repair co-sorted (time, channel) arrays after a boundary violation made
/// an append non-monotone. Rare path (never taken at default slack).
void co_sort(std::vector<double>& t, std::vector<std::uint32_t>& ch) {
  std::vector<std::size_t> idx(t.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t x, std::size_t y) { return t[x] < t[y]; });
  std::vector<double> t2(t.size());
  std::vector<std::uint32_t> c2(ch.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    t2[i] = t[idx[i]];
    c2[i] = ch[idx[i]];
  }
  t.swap(t2);
  ch.swap(c2);
}

/// Append `col` to sorted `dst`, repairing the junction if a boundary
/// violation broke monotonicity.
void append_sorted(std::vector<double>& dst, const double* begin,
                   const double* end) {
  if (begin == end) return;
  const bool clean = dst.empty() || *begin >= dst.back();
  const std::size_t old = dst.size();
  dst.insert(dst.end(), begin, end);
  if (!clean)
    std::inplace_merge(dst.begin(),
                       dst.begin() + static_cast<std::ptrdiff_t>(old), dst.end());
}

/// Rolling state shared by the two merged-idler accumulators (CAR and
/// count-matrix): the trimmed merged idler view and the per-signal-channel
/// unresolved event buffers.
struct MergedRoll {
  std::size_t ns = kNoChannels, ni = kNoChannels;
  std::vector<double> it;
  std::vector<std::uint32_t> ich;
  std::vector<std::vector<double>> pending;

  void append_window(const StreamWindow& w, parallel::WorkerPool* pool) {
    const std::size_t wns = w.events.signal.num_channels();
    const std::size_t wni = w.events.idler.num_channels();
    if (ns == kNoChannels) {
      ns = wns;
      ni = wni;
      pending.resize(ns);
    } else if (wns != ns || wni != ni) {
      throw std::invalid_argument(
          "streaming accumulator: window channel count changed mid-run");
    }
    analysis_detail::MergedView mv =
        analysis_detail::merge_channels(w.events.idler, pool);
    const bool clean = it.empty() || mv.t.empty() || mv.t.front() >= it.back();
    it.insert(it.end(), mv.t.begin(), mv.t.end());
    ich.insert(ich.end(), mv.ch.begin(), mv.ch.end());
    if (!clean) co_sort(it, ich);
    for (std::size_t c = 0; c < ns; ++c)
      append_sorted(pending[c], w.events.signal.channel_begin(c),
                    w.events.signal.channel_end(c));
  }

  /// Count every signal event whose full reach lies behind `frontier`
  /// through `count_event(ta, lo, row)`, then drop it and trim the merged
  /// idler view below everything any future event can reach. Chunk
  /// boundaries depend only on the data, and per-chunk partial counts are
  /// integers merged in chunk order — so the counts are bitwise identical
  /// to the batch sweep at every worker count and window size.
  template <class CountFn>
  void resolve(double frontier, double reach, std::size_t row_size,
               parallel::WorkerPool* pool, std::vector<std::uint64_t>& counts,
               const CountFn& count_event) {
    if (ns == kNoChannels) return;
    struct Chunk {
      std::size_t ch, begin, end;
    };
    std::vector<Chunk> chunks;
    std::vector<std::size_t> resolved(ns, 0);
    for (std::size_t c = 0; c < ns; ++c) {
      const auto& p = pending[c];
      const auto split = std::partition_point(
          p.begin(), p.end(),
          [&](double ta) { return ta + reach < frontier; });
      const std::size_t nres = static_cast<std::size_t>(split - p.begin());
      resolved[c] = nres;
      for (std::size_t b = 0; b < nres; b += kAnalysisChunkEvents)
        chunks.push_back({c, b, std::min(nres, b + kAnalysisChunkEvents)});
    }
    if (!chunks.empty()) {
      std::vector<std::vector<std::uint64_t>> partials(chunks.size());
      const auto run_chunk = [&](std::size_t i) {
        const Chunk& ck = chunks[i];
        auto& part = partials[i];
        part.assign(row_size, 0);
        const double* base = pending[ck.ch].data();
        std::size_t lo = analysis_detail::sweep_start(it, base[ck.begin], reach);
        for (std::size_t e = ck.begin; e < ck.end; ++e)
          count_event(base[e], lo, part.data());
      };
      if (pool && pool->size() > 1 && chunks.size() > 1)
        pool->run(chunks.size(), run_chunk);
      else
        for (std::size_t i = 0; i < chunks.size(); ++i) run_chunk(i);
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        std::uint64_t* row = counts.data() + chunks[i].ch * row_size;
        for (std::size_t j = 0; j < row_size; ++j) row[j] += partials[i][j];
      }
    }
    double trim_t = frontier;
    for (std::size_t c = 0; c < ns; ++c) {
      auto& p = pending[c];
      p.erase(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(resolved[c]));
      if (!p.empty()) trim_t = std::min(trim_t, p.front());
    }
    if (std::isfinite(trim_t)) {
      const auto cut =
          std::lower_bound(it.begin(), it.end(), trim_t - reach) - it.begin();
      it.erase(it.begin(), it.begin() + cut);
      ich.erase(ich.begin(), ich.begin() + cut);
    } else {
      it.clear();
      ich.clear();
    }
  }

  void save(ByteWriter& w) const {
    w.u64(ns == kNoChannels ? std::uint64_t(-1) : ns);
    w.u64(ni == kNoChannels ? std::uint64_t(-1) : ni);
    w.vec_f64(it);
    w.vec_u32(ich);
    w.u64(pending.size());
    for (const auto& p : pending) w.vec_f64(p);
  }
  void load(ByteReader& r) {
    const std::uint64_t rns = r.u64(), rni = r.u64();
    ns = rns == std::uint64_t(-1) ? kNoChannels : static_cast<std::size_t>(rns);
    ni = rni == std::uint64_t(-1) ? kNoChannels : static_cast<std::size_t>(rni);
    it = r.vec_f64();
    ich = r.vec_u32();
    pending.resize(r.u64());
    for (auto& p : pending) p = r.vec_f64();
  }
};

}  // namespace

// ------------------------------------------------ StreamingCarAccumulator

struct StreamingCarAccumulator::Impl {
  analysis_detail::CarGrid grid;
  std::shared_ptr<parallel::WorkerPool> pool;
  MergedRoll roll;
  std::vector<std::uint64_t> counts;
  bool finished = false;

  Impl(double window_s, double side_window_spacing_s, int num_side_windows,
       int num_threads) {
    if (window_s <= 0) throw std::invalid_argument("car_matrix: window <= 0");
    if (num_side_windows < 1)
      throw std::invalid_argument("car_matrix: need at least one side window");
    if (side_window_spacing_s <= window_s)
      throw std::invalid_argument("car_matrix: side windows overlap the peak");
    grid = analysis_detail::make_car_grid(window_s, side_window_spacing_s,
                                          num_side_windows);
    pool = analysis_detail::analysis_pool_for(num_threads);
  }

  void push(const StreamWindow& w) {
    if (finished)
      throw std::logic_error("StreamingCarAccumulator: push after finish");
    QFC_OBS_SPAN("engine.stream.car_push", {{"events", w.events.signal.size()}});
    roll.append_window(w, pool.get());
    if (counts.empty() && roll.ns != kNoChannels)
      counts.assign(roll.ns * roll.ni * grid.stride, 0);
    resolve(w.t_end_s);
  }

  void resolve(double frontier) {
    roll.resolve(frontier, grid.reach, roll.ni * grid.stride, pool.get(), counts,
                 [&](double ta, std::size_t& lo, std::uint64_t* row) {
                   analysis_detail::car_count_event(ta, roll.it, roll.ich, lo,
                                                    grid, row);
                 });
  }

  CarMatrix finish() {
    if (finished)
      throw std::logic_error("StreamingCarAccumulator: finish called twice");
    finished = true;
    CarMatrix result;
    if (roll.ns == kNoChannels) return result;
    resolve(kInf);
    result.num_signal = roll.ns;
    result.num_idler = roll.ni;
    result.cells.assign(roll.ns * roll.ni, CarResult{});
    if (!result.cells.empty())
      analysis_detail::finalize_car_cells(result, counts, grid);
    return result;
  }
};

StreamingCarAccumulator::StreamingCarAccumulator(double window_s,
                                                 double side_window_spacing_s,
                                                 int num_side_windows,
                                                 int num_threads)
    : impl_(std::make_unique<Impl>(window_s, side_window_spacing_s,
                                   num_side_windows, num_threads)) {}
StreamingCarAccumulator::~StreamingCarAccumulator() = default;
StreamingCarAccumulator::StreamingCarAccumulator(
    StreamingCarAccumulator&&) noexcept = default;
StreamingCarAccumulator& StreamingCarAccumulator::operator=(
    StreamingCarAccumulator&&) noexcept = default;

void StreamingCarAccumulator::push(const StreamWindow& w) { impl_->push(w); }
CarMatrix StreamingCarAccumulator::finish() { return impl_->finish(); }

std::vector<std::uint8_t> StreamingCarAccumulator::snapshot() const {
  if (impl_->finished)
    throw std::logic_error("StreamingCarAccumulator: snapshot after finish");
  ByteWriter w;
  w.header(kKindCar);
  impl_->roll.save(w);
  w.vec_u64(impl_->counts);
  return std::move(w.buf);
}

void StreamingCarAccumulator::restore(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  r.header(kKindCar);
  impl_->roll.load(r);
  impl_->counts = r.vec_u64();
  impl_->finished = false;
  r.expect_end();
}

// ---------------------------------------- StreamingCountMatrixAccumulator

struct StreamingCountMatrixAccumulator::Impl {
  double half = 0, offset_s = 0, reach = 0;
  std::shared_ptr<parallel::WorkerPool> pool;
  MergedRoll roll;
  std::vector<std::uint64_t> counts;
  bool finished = false;

  Impl(double window_s, double offset, int num_threads) : offset_s(offset) {
    if (window_s <= 0)
      throw std::invalid_argument("coincidence_count_matrix: window <= 0");
    half = window_s / 2.0;
    reach = std::abs(offset_s) + window_s;
    pool = analysis_detail::analysis_pool_for(num_threads);
  }

  void push(const StreamWindow& w) {
    if (finished)
      throw std::logic_error(
          "StreamingCountMatrixAccumulator: push after finish");
    roll.append_window(w, pool.get());
    if (counts.empty() && roll.ns != kNoChannels)
      counts.assign(roll.ns * roll.ni, 0);
    resolve(w.t_end_s);
  }

  void resolve(double frontier) {
    roll.resolve(frontier, reach, roll.ni, pool.get(), counts,
                 [&](double ta, std::size_t& lo, std::uint64_t* row) {
                   analysis_detail::window_count_event(ta, roll.it, roll.ich, lo,
                                                       half, offset_s, reach, row);
                 });
  }

  std::vector<std::uint64_t> finish() {
    if (finished)
      throw std::logic_error(
          "StreamingCountMatrixAccumulator: finish called twice");
    finished = true;
    if (roll.ns == kNoChannels) return {};
    resolve(kInf);
    return std::move(counts);
  }
};

StreamingCountMatrixAccumulator::StreamingCountMatrixAccumulator(double window_s,
                                                                 double offset_s,
                                                                 int num_threads)
    : impl_(std::make_unique<Impl>(window_s, offset_s, num_threads)) {}
StreamingCountMatrixAccumulator::~StreamingCountMatrixAccumulator() = default;
StreamingCountMatrixAccumulator::StreamingCountMatrixAccumulator(
    StreamingCountMatrixAccumulator&&) noexcept = default;
StreamingCountMatrixAccumulator& StreamingCountMatrixAccumulator::operator=(
    StreamingCountMatrixAccumulator&&) noexcept = default;

void StreamingCountMatrixAccumulator::push(const StreamWindow& w) {
  impl_->push(w);
}
std::vector<std::uint64_t> StreamingCountMatrixAccumulator::finish() {
  return impl_->finish();
}

std::vector<std::uint8_t> StreamingCountMatrixAccumulator::snapshot() const {
  if (impl_->finished)
    throw std::logic_error(
        "StreamingCountMatrixAccumulator: snapshot after finish");
  ByteWriter w;
  w.header(kKindCountMatrix);
  impl_->roll.save(w);
  w.vec_u64(impl_->counts);
  return std::move(w.buf);
}

void StreamingCountMatrixAccumulator::restore(
    const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  r.header(kKindCountMatrix);
  impl_->roll.load(r);
  impl_->counts = r.vec_u64();
  impl_->finished = false;
  r.expect_end();
}

// ---------------------------------------- StreamingCorrelatorAccumulator

struct StreamingCorrelatorAccumulator::Impl {
  double bin_width_s = 0, range_s = 0;
  std::size_t half_bins = 0, num_bins = 0;
  std::shared_ptr<parallel::WorkerPool> pool;
  std::size_t nch = kNoChannels;
  std::vector<std::vector<double>> idler;    ///< rolling per-channel columns
  std::vector<std::vector<double>> pending;  ///< unresolved signal events
  std::vector<std::uint64_t> counts;         ///< nch x num_bins
  bool finished = false;

  Impl(double bin_width, double range, int num_threads)
      : bin_width_s(bin_width), range_s(range) {
    if (bin_width_s <= 0 || range_s <= 0)
      throw std::invalid_argument("correlate_all: non-positive bin width or range");
    half_bins = static_cast<std::size_t>(std::ceil(range_s / bin_width_s));
    num_bins = 2 * half_bins + 1;
    pool = analysis_detail::analysis_pool_for(num_threads);
  }

  void push(const StreamWindow& w) {
    if (finished)
      throw std::logic_error("StreamingCorrelatorAccumulator: push after finish");
    if (w.events.signal.num_channels() != w.events.idler.num_channels())
      throw std::invalid_argument("correlate_all: channel count mismatch");
    if (nch == kNoChannels) {
      nch = w.events.signal.num_channels();
      idler.resize(nch);
      pending.resize(nch);
      counts.assign(nch * num_bins, 0);
    } else if (w.events.signal.num_channels() != nch) {
      throw std::invalid_argument(
          "streaming accumulator: window channel count changed mid-run");
    }
    for (std::size_t c = 0; c < nch; ++c) {
      append_sorted(idler[c], w.events.idler.channel_begin(c),
                    w.events.idler.channel_end(c));
      append_sorted(pending[c], w.events.signal.channel_begin(c),
                    w.events.signal.channel_end(c));
    }
    resolve(w.t_end_s);
  }

  void resolve(double frontier) {
    if (nch == kNoChannels) return;
    struct Chunk {
      std::size_t ch, begin, end;
    };
    std::vector<Chunk> chunks;
    std::vector<std::size_t> resolved(nch, 0);
    for (std::size_t c = 0; c < nch; ++c) {
      const auto& p = pending[c];
      const auto split = std::partition_point(
          p.begin(), p.end(),
          [&](double ta) { return ta + range_s < frontier; });
      const std::size_t nres = static_cast<std::size_t>(split - p.begin());
      resolved[c] = nres;
      for (std::size_t b = 0; b < nres; b += kAnalysisChunkEvents)
        chunks.push_back({c, b, std::min(nres, b + kAnalysisChunkEvents)});
    }
    if (!chunks.empty()) {
      std::vector<std::vector<std::uint64_t>> partials(chunks.size());
      const auto run_chunk = [&](std::size_t i) {
        const Chunk& ck = chunks[i];
        auto& part = partials[i];
        part.assign(num_bins, 0);
        const double* base = pending[ck.ch].data();
        const double* ib = idler[ck.ch].data();
        const double* ie = ib + idler[ck.ch].size();
        const double* lo = std::lower_bound(ib, ie, base[ck.begin] - range_s);
        for (std::size_t e = ck.begin; e < ck.end; ++e)
          analysis_detail::corr_count_event(base[e], ie, lo, bin_width_s,
                                            range_s, half_bins, num_bins,
                                            part.data());
      };
      if (pool && pool->size() > 1 && chunks.size() > 1)
        pool->run(chunks.size(), run_chunk);
      else
        for (std::size_t i = 0; i < chunks.size(); ++i) run_chunk(i);
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        std::uint64_t* row = counts.data() + chunks[i].ch * num_bins;
        for (std::size_t j = 0; j < num_bins; ++j) row[j] += partials[i][j];
      }
    }
    for (std::size_t c = 0; c < nch; ++c) {
      auto& p = pending[c];
      p.erase(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(resolved[c]));
      const double unresolved = p.empty() ? frontier : p.front();
      if (std::isfinite(unresolved)) {
        auto& col = idler[c];
        const auto cut =
            std::lower_bound(col.begin(), col.end(), unresolved - range_s) -
            col.begin();
        col.erase(col.begin(), col.begin() + cut);
      } else {
        idler[c].clear();
      }
    }
  }

  std::vector<CoincidenceHistogram> finish() {
    if (finished)
      throw std::logic_error(
          "StreamingCorrelatorAccumulator: finish called twice");
    finished = true;
    if (nch == kNoChannels) return {};
    resolve(kInf);
    std::vector<CoincidenceHistogram> hists(nch);
    for (std::size_t c = 0; c < nch; ++c) {
      hists[c].bin_width_s = bin_width_s;
      hists[c].range_s = range_s;
      hists[c].counts.assign(counts.begin() + static_cast<std::ptrdiff_t>(c * num_bins),
                             counts.begin() +
                                 static_cast<std::ptrdiff_t>((c + 1) * num_bins));
    }
    return hists;
  }
};

StreamingCorrelatorAccumulator::StreamingCorrelatorAccumulator(double bin_width_s,
                                                               double range_s,
                                                               int num_threads)
    : impl_(std::make_unique<Impl>(bin_width_s, range_s, num_threads)) {}
StreamingCorrelatorAccumulator::~StreamingCorrelatorAccumulator() = default;
StreamingCorrelatorAccumulator::StreamingCorrelatorAccumulator(
    StreamingCorrelatorAccumulator&&) noexcept = default;
StreamingCorrelatorAccumulator& StreamingCorrelatorAccumulator::operator=(
    StreamingCorrelatorAccumulator&&) noexcept = default;

void StreamingCorrelatorAccumulator::push(const StreamWindow& w) {
  impl_->push(w);
}
std::vector<CoincidenceHistogram> StreamingCorrelatorAccumulator::finish() {
  return impl_->finish();
}

std::vector<std::uint8_t> StreamingCorrelatorAccumulator::snapshot() const {
  if (impl_->finished)
    throw std::logic_error(
        "StreamingCorrelatorAccumulator: snapshot after finish");
  ByteWriter w;
  w.header(kKindCorrelator);
  w.u64(impl_->nch == kNoChannels ? std::uint64_t(-1) : impl_->nch);
  w.u64(impl_->idler.size());
  for (const auto& col : impl_->idler) w.vec_f64(col);
  w.u64(impl_->pending.size());
  for (const auto& col : impl_->pending) w.vec_f64(col);
  w.vec_u64(impl_->counts);
  return std::move(w.buf);
}

void StreamingCorrelatorAccumulator::restore(
    const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  r.header(kKindCorrelator);
  const std::uint64_t rn = r.u64();
  impl_->nch = rn == std::uint64_t(-1) ? kNoChannels : static_cast<std::size_t>(rn);
  impl_->idler.resize(r.u64());
  for (auto& col : impl_->idler) col = r.vec_f64();
  impl_->pending.resize(r.u64());
  for (auto& col : impl_->pending) col = r.vec_f64();
  impl_->counts = r.vec_u64();
  impl_->finished = false;
  r.expect_end();
}

// -------------------------------------------- StreamingAllanAccumulator

struct StreamingAllanAccumulator::Impl {
  double window_s = 0, dt = 0;
  std::size_t s_ch = 0, i_ch = 0;
  std::size_t idx = 0;  ///< next interval to flush
  std::vector<double> buf_a, buf_b;
  std::vector<double> counts;
  double frontier = 0;
  bool finished = false;

  Impl(double coincidence_window_s, double sample_interval_s,
       std::size_t signal_channel, std::size_t idler_channel)
      : window_s(coincidence_window_s),
        dt(sample_interval_s),
        s_ch(signal_channel),
        i_ch(idler_channel) {
    if (window_s <= 0)
      throw std::invalid_argument("StreamingAllanAccumulator: window <= 0");
    if (dt <= 0)
      throw std::invalid_argument(
          "StreamingAllanAccumulator: sample interval <= 0");
  }

  void push(const StreamWindow& w) {
    if (finished)
      throw std::logic_error("StreamingAllanAccumulator: push after finish");
    if (s_ch >= w.events.signal.num_channels() ||
        i_ch >= w.events.idler.num_channels())
      throw std::invalid_argument("StreamingAllanAccumulator: bad channel index");
    append_sorted(buf_a, w.events.signal.channel_begin(s_ch),
                  w.events.signal.channel_end(s_ch));
    append_sorted(buf_b, w.events.idler.channel_begin(i_ch),
                  w.events.idler.channel_end(i_ch));
    frontier = w.t_end_s;
    flush();
  }

  void flush() {
    while (frontier >= static_cast<double>(idx + 1) * dt) {
      const double t1 = static_cast<double>(idx + 1) * dt;
      const auto ea = std::lower_bound(buf_a.begin(), buf_a.end(), t1);
      const auto eb = std::lower_bound(buf_b.begin(), buf_b.end(), t1);
      const std::vector<double> a(buf_a.begin(), ea);
      const std::vector<double> b(buf_b.begin(), eb);
      counts.push_back(static_cast<double>(count_coincidences(a, b, window_s)));
      buf_a.erase(buf_a.begin(), ea);
      buf_b.erase(buf_b.begin(), eb);
      ++idx;
    }
  }

  StreamingAllanResult finish() {
    if (finished)
      throw std::logic_error("StreamingAllanAccumulator: finish called twice");
    finished = true;
    StreamingAllanResult r;
    r.counts = counts;
    if (r.counts.empty()) return r;
    r.mean_counts =
        std::accumulate(r.counts.begin(), r.counts.end(), 0.0) /
        static_cast<double>(r.counts.size());
    std::vector<double> fractional(r.counts.size());
    for (std::size_t i = 0; i < r.counts.size(); ++i)
      fractional[i] = r.counts[i] / r.mean_counts;
    r.allan = allan_curve(fractional, dt);
    return r;
  }
};

StreamingAllanAccumulator::StreamingAllanAccumulator(double coincidence_window_s,
                                                     double sample_interval_s,
                                                     std::size_t signal_channel,
                                                     std::size_t idler_channel)
    : impl_(std::make_unique<Impl>(coincidence_window_s, sample_interval_s,
                                   signal_channel, idler_channel)) {}
StreamingAllanAccumulator::~StreamingAllanAccumulator() = default;
StreamingAllanAccumulator::StreamingAllanAccumulator(
    StreamingAllanAccumulator&&) noexcept = default;
StreamingAllanAccumulator& StreamingAllanAccumulator::operator=(
    StreamingAllanAccumulator&&) noexcept = default;

void StreamingAllanAccumulator::push(const StreamWindow& w) { impl_->push(w); }
StreamingAllanResult StreamingAllanAccumulator::finish() {
  return impl_->finish();
}

std::vector<std::uint8_t> StreamingAllanAccumulator::snapshot() const {
  if (impl_->finished)
    throw std::logic_error("StreamingAllanAccumulator: snapshot after finish");
  ByteWriter w;
  w.header(kKindAllan);
  w.u64(impl_->idx);
  w.vec_f64(impl_->buf_a);
  w.vec_f64(impl_->buf_b);
  w.vec_f64(impl_->counts);
  w.f64(impl_->frontier);
  return std::move(w.buf);
}

void StreamingAllanAccumulator::restore(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  r.header(kKindAllan);
  impl_->idx = r.u64();
  impl_->buf_a = r.vec_f64();
  impl_->buf_b = r.vec_f64();
  impl_->counts = r.vec_f64();
  impl_->frontier = r.f64();
  impl_->finished = false;
  r.expect_end();
}

}  // namespace qfc::detect
