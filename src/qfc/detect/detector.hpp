#pragma once

/// \file detector.hpp
/// Single-photon detector model: quantum efficiency, Poissonian dark/
/// background counts, Gaussian timing jitter and dead time. This is the
/// simulated stand-in for the gated InGaAs detectors of refs [6]-[8].

#include <vector>

#include "qfc/rng/distributions.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect {

struct DetectorParams {
  /// Photon detection probability (includes fiber/filter losses if the
  /// caller folds them in; the experiment layer keeps them separate).
  double efficiency = 0.20;
  /// Dark + broadband-background click rate, Hz. Free-running InGaAs
  /// detectors with in-band background sit in the kHz range.
  double dark_rate_hz = 1000.0;
  /// Gaussian timing jitter (sigma), seconds.
  double jitter_sigma_s = 50e-12;
  /// Dead time after each click, seconds.
  double dead_time_s = 10e-6;

  void validate() const;
};

class SinglePhotonDetector {
 public:
  explicit SinglePhotonDetector(DetectorParams params);

  const DetectorParams& params() const noexcept { return params_; }

  /// Turn true photon arrival times (seconds, unsorted OK) into detector
  /// click timestamps over [0, duration): applies efficiency, adds dark
  /// counts, jitters, sorts, and applies dead time.
  std::vector<double> detect(const std::vector<double>& photon_arrivals_s,
                             double duration_s, rng::Xoshiro256& g) const;

  /// As detect(), but additionally merges caller-supplied dark click times
  /// (sorted, e.g. from a piecewise-rate schedule) into the stream before
  /// dead time. The extra darks click directly — no efficiency thinning,
  /// no jitter — exactly like the internal params().dark_rate_hz pass,
  /// which still runs and composes additively with them.
  std::vector<double> detect(const std::vector<double>& photon_arrivals_s,
                             const std::vector<double>& extra_dark_clicks_s,
                             double duration_s, rng::Xoshiro256& g) const;

  /// Core overload with split randomness: the photon pass (efficiency +
  /// jitter draws, via detect_photon_click) consumes `g_photon` and the
  /// internal dark-count pass consumes `g_dark`. The single-generator
  /// overloads alias one generator into both roles, which reproduces their
  /// historical draw sequence exactly (photon draws first, then darks); the
  /// engine and the streaming path pass two independent forked streams so
  /// the two passes can be windowed independently.
  std::vector<double> detect(const std::vector<double>& photon_arrivals_s,
                             const std::vector<double>& extra_dark_clicks_s,
                             double duration_s, rng::Xoshiro256& g_photon,
                             rng::Xoshiro256& g_dark) const;

  /// Expected singles rate for a given true photon rate (analytic; ignores
  /// dead-time saturation which is negligible at the rates simulated here).
  double expected_singles_rate_hz(double photon_rate_hz) const;

 private:
  DetectorParams params_;
};

/// One photon arrival through the efficiency + jitter front end: returns
/// true (and writes the click time) iff the photon is detected and its
/// jittered timestamp lands inside [0, duration). Exactly the per-arrival
/// body of SinglePhotonDetector::detect — shared with the streaming engine
/// so batch and windowed runs consume identical draw sequences. Note the
/// jitter draw happens only when the efficiency Bernoulli succeeds.
inline bool detect_photon_click(double t_s, const DetectorParams& params,
                                double duration_s, rng::Xoshiro256& g,
                                double& click_out_s) {
  if (t_s < 0 || t_s >= duration_s) return false;
  if (!rng::sample_bernoulli(g, params.efficiency)) return false;
  const double jittered = t_s + rng::sample_normal(g, 0.0, params.jitter_sigma_s);
  if (jittered < 0 || jittered >= duration_s) return false;
  click_out_s = jittered;
  return true;
}

}  // namespace qfc::detect
