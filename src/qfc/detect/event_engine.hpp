#pragma once

/// \file event_engine.hpp
/// Batched columnar Monte-Carlo detection engine: generates correlated
/// click streams for N comb channel pairs in one pass into
/// structure-of-arrays tables, and analyzes every signal x idler
/// combination with single merge-sweeps instead of O(n²) pairwise
/// re-scans of the full streams.
///
/// Layout (see src/qfc/detect/README.md): an EventTable holds one
/// contiguous timestamp column plus a parallel channel-id column, grouped
/// channel-major with CSR-style offsets. Within each channel the
/// timestamps are sorted ascending.
///
/// Determinism contract: EventEngine::run derives one RNG per channel by
/// forking a master generator in channel order *before* any parallel work
/// starts, then derives eleven per-stage sub-streams from each channel
/// generator in a fixed order (see channel_rng.hpp) — one per stochastic
/// stage (emission, backgrounds, detection, darks) — and every stage
/// consumes only its own stream. Worker threads (a
/// qfc::parallel::WorkerPool) claim whole channels and write into
/// per-channel slots, so the output is bitwise identical for every value
/// of EngineConfig::num_threads at a fixed seed — and, because a windowed
/// run consumes the same per-stream sequences merely paused at window
/// boundaries, the streaming engine (streaming.hpp) is bitwise identical
/// to run() at every window size too. The batched analysis sweeps below
/// carry the same contract: signal columns are sharded into fixed-size
/// chunks whose per-cell integer counts merge additively in chunk order,
/// so car_matrix/coincidence_count_matrix/correlate_all are bitwise
/// identical at every analysis thread count.

#include <cstdint>
#include <vector>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/detector.hpp"
#include "qfc/detect/event_stream.hpp"

namespace qfc::detect {

/// Columnar (structure-of-arrays) click table for one detector bank.
struct EventTable {
  std::vector<double> time_s;          ///< click timestamps, channel-major
  std::vector<std::uint32_t> channel;  ///< channel id of each timestamp
  std::vector<std::size_t> offsets;    ///< channel c spans [offsets[c], offsets[c+1])

  std::size_t num_channels() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t size() const { return time_s.size(); }
  std::size_t channel_size(std::size_t c) const;
  const double* channel_begin(std::size_t c) const;
  const double* channel_end(std::size_t c) const;

  /// Copy of one channel's column, for the single-stream legacy APIs
  /// (measure_car, correlate, ...).
  std::vector<double> channel_clicks(std::size_t c) const;

  /// Build a table from per-channel columns (each must be sorted).
  static EventTable from_columns(std::vector<std::vector<double>> per_channel);

  bool operator==(const EventTable&) const = default;
};

/// How a channel pair's emission is distributed in time.
enum class EmissionMode {
  /// Homogeneous Poisson pair times at ChannelPairSpec::pair_rate_hz —
  /// the original engine behavior, bit-for-bit unchanged.
  Cw,
  /// Pair times locked to a pump pulse train (ChannelPairSpec::pulsed):
  /// per-pulse Poisson pair number, Gaussian envelope jitter, optional
  /// early/late double-pulse bins. pair_rate_hz must be 0 in this mode.
  Pulsed,
  /// Piecewise-constant pair/background/dark schedule
  /// (ChannelPairSpec::segments) for drifting sources. pair_rate_hz must
  /// be 0; spec-level backgrounds and detector dark rates stay active and
  /// compose additively with the per-segment rates.
  PiecewiseRates,
};

/// Pulse-train parameters consumed when emission == EmissionMode::Pulsed
/// (see PulsedStreamParams for the generation semantics; linewidth and
/// per-arm transmission come from the enclosing ChannelPairSpec).
struct PulsedEmission {
  double repetition_rate_hz = 0;   ///< pump pulse repetition rate
  double mean_pairs_per_pulse = 0; ///< mean pair number per repetition period
  double pulse_sigma_s = 0;        ///< Gaussian emission-time jitter (1σ)
  double bin_separation_s = 0;     ///< 0 = single pulse; > 0 = early/late bins
  double late_fraction = 0.5;      ///< probability a pair is born in the late bin
};

/// Physics + collection chain of one comb channel pair.
struct ChannelPairSpec {
  double pair_rate_hz = 0;            ///< on-chip generated pair rate (Cw mode)
  double linewidth_hz = 0;            ///< Lorentzian FWHM of both photons
  double transmission_signal = 1.0;   ///< channel transmission, signal arm
  double transmission_idler = 1.0;    ///< channel transmission, idler arm
  /// Uncorrelated in-band background photons reaching each arm's detector
  /// (leaked pump, fluorescence); thinned by detector efficiency like real
  /// photons, unlike DetectorParams::dark_rate_hz which clicks directly.
  double background_rate_signal_hz = 0;
  double background_rate_idler_hz = 0;
  DetectorParams detector_signal;
  DetectorParams detector_idler;
  /// Emission-model layer: how pair times are distributed over the run.
  EmissionMode emission = EmissionMode::Cw;
  PulsedEmission pulsed;              ///< used when emission == Pulsed
  std::vector<RateSegment> segments;  ///< used when emission == PiecewiseRates
};

struct EngineConfig {
  double duration_s = 1.0;
  std::uint64_t seed = 1;
  /// Worker threads for the per-channel passes; 0 = hardware concurrency.
  /// Output is bitwise independent of this value (see file comment).
  int num_threads = 0;
  /// Worker threads for the merge-sweep analysis helpers below
  /// (car_matrix/coincidence_count_matrix/correlate_all called through this
  /// engine); 0 = the process-wide setting (QFC_ENGINE_ANALYSIS_THREADS,
  /// else hardware concurrency). Output is bitwise independent of this
  /// value: the sweeps shard signal columns into fixed-size chunks and merge
  /// per-cell additive partial counts in chunk order.
  int analysis_threads = 0;
};

/// Click tables for the two detector banks; channel c of each table is
/// channel pair c of the spec list.
struct EngineResult {
  EventTable signal;
  EventTable idler;
};

class EventEngine {
 public:
  explicit EventEngine(EngineConfig cfg);

  const EngineConfig& config() const noexcept { return cfg_; }

  /// Full chain for all channel pairs: correlated pair generation with
  /// per-arm transmission, uncorrelated background injection, detector
  /// efficiency/jitter, dark counts, sort, dead time.
  EngineResult run(const std::vector<ChannelPairSpec>& channels) const;

  /// Batched analysis bound to this engine's config: forwards to the free
  /// functions below with EngineConfig::analysis_threads.
  struct CarMatrix car_matrix(const EngineResult& events, double window_s,
                              double side_window_spacing_s,
                              int num_side_windows = 10) const;
  std::vector<CoincidenceHistogram> correlate_all(const EngineResult& events,
                                                  double bin_width_s,
                                                  double range_s) const;
  std::vector<std::uint64_t> coincidence_count_matrix(const EngineResult& events,
                                                      double window_s,
                                                      double offset_s = 0.0) const;

 private:
  EngineConfig cfg_;
};

/// Process-wide worker-thread request for the merge-sweep analysis kernels
/// (0 = auto: one per hardware thread; initial value settable via the
/// QFC_ENGINE_ANALYSIS_THREADS environment variable, read once at first
/// use). Changing the count never changes results — only wall-clock.
void set_analysis_threads(unsigned n);

/// Resolved analysis worker count (the request, or hardware concurrency
/// when the request is 0).
unsigned analysis_threads();

/// The raw request last passed to set_analysis_threads (or
/// QFC_ENGINE_ANALYSIS_THREADS at startup): 0 means auto.
unsigned analysis_thread_request();

/// Δt histograms for the diagonal (signal k, idler k) channel pairs, all
/// built in one merge-sweep over the two tables. `num_threads` selects the
/// sharded-sweep worker count (0 = the process-wide analysis setting);
/// counts are bitwise identical at every thread count.
std::vector<CoincidenceHistogram> correlate_all(const EventTable& signal,
                                                const EventTable& idler,
                                                double bin_width_s, double range_s,
                                                int num_threads = 0);

/// Windowed coincidence counts (|t_s - t_i - offset| <= window/2) for every
/// (signal channel, idler channel) combination in a single merge-sweep.
/// Row-major: count[s * idler.num_channels() + i]. Threading as in
/// correlate_all.
std::vector<std::uint64_t> coincidence_count_matrix(const EventTable& signal,
                                                    const EventTable& idler,
                                                    double window_s,
                                                    double offset_s = 0.0,
                                                    int num_threads = 0);

struct CarMatrix {
  std::size_t num_signal = 0;
  std::size_t num_idler = 0;
  std::vector<CarResult> cells;  ///< row-major num_signal x num_idler

  const CarResult& at(std::size_t s, std::size_t i) const;
};

/// measure_car for every signal x idler combination in a single
/// merge-sweep: peak window plus `num_side_windows` accidental windows at
/// multiples of `side_window_spacing_s` (alternating sides), with the same
/// counting and error semantics as measure_car. The sweep shards the signal
/// columns across `num_threads` workers (0 = the process-wide analysis
/// setting); every cell is bitwise identical at every thread count.
CarMatrix car_matrix(const EventTable& signal, const EventTable& idler,
                     double window_s, double side_window_spacing_s,
                     int num_side_windows = 10, int num_threads = 0);

/// Mean generated pair rate of a spec over the run, whatever the emission
/// mode: Cw reads pair_rate_hz directly, Pulsed is mean_pairs_per_pulse x
/// repetition rate, PiecewiseRates is the duration-weighted mean of the
/// segment pair rates. This is the flux a neighboring frequency bin leaks
/// (see apply_adjacent_crosstalk) and what spec-level planning tools should
/// use to size a many-channel run.
double mean_pair_rate_hz(const ChannelPairSpec& spec);

/// Adjacent-bin cross-talk injection at the spec level, before a batch or
/// streaming run: channel i sits on comb bin `comb_bin[i]` and receives a
/// fraction `leakage_fraction[i]` of the photon flux of every spec on an
/// adjacent bin (|Δbin| == 1) — imperfect demultiplexer isolation. The
/// leaked flux (mean_pair_rate_hz of each neighbor, one photon per arm per
/// pair) rides channel i's own span, so it is scaled by channel i's arm
/// transmissions and folded into background_rate_{signal,idler}_hz, where it
/// is thinned by detector efficiency like any other in-band background and
/// raises the accidental floor without creating true coincidences.
/// Channels with leakage_fraction <= 0 are left bit-for-bit untouched, so a
/// zero-leakage network is bitwise identical to one planned without this
/// call. Throws std::invalid_argument on size mismatches or a leakage
/// fraction outside [0, 1].
void apply_adjacent_crosstalk(std::vector<ChannelPairSpec>& specs,
                              const std::vector<int>& comb_bin,
                              const std::vector<double>& leakage_fraction);

}  // namespace qfc::detect
