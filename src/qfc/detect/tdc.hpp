#pragma once

/// \file tdc.hpp
/// Time-to-digital converter: quantizes click timestamps onto an integer
/// bin grid (the experiments use it both for coincidence histograms and
/// for time-bin post-selection).

#include <cstdint>
#include <vector>

namespace qfc::detect {

class TimeToDigitalConverter {
 public:
  explicit TimeToDigitalConverter(double bin_width_s);

  double bin_width_s() const noexcept { return bin_width_; }

  /// Timestamp -> bin index (floor).
  std::int64_t bin_of(double time_s) const;

  /// Bin center time.
  double time_of(std::int64_t bin) const;

  /// Quantize a sorted click stream to bin indices (keeps duplicates).
  std::vector<std::int64_t> quantize(const std::vector<double>& clicks_s) const;

 private:
  double bin_width_;
};

}  // namespace qfc::detect
