#pragma once

/// \file allan.hpp
/// Overlapping Allan deviation of a uniformly sampled rate series — the
/// metrology-grade way to characterize the long-term stability claim of
/// Sec. II ("several weeks with less than 5% fluctuation").

#include <cstddef>
#include <vector>

namespace qfc::io {
class Json;
}

namespace qfc::detect {

struct AllanPoint {
  double tau_s = 0;    ///< averaging time
  double sigma = 0;    ///< overlapping Allan deviation of the (fractional) series
  std::size_t pairs = 0;  ///< number of difference pairs averaged

  /// {tau_s, sigma, pairs}.
  io::Json to_json() const;
};

/// Overlapping Allan deviation at averaging factor m (tau = m * dt):
///   σ²(τ) = 1/(2 (N − 2m)) Σ_{i=0}^{N-2m-1} (ȳ_{i+m} − ȳ_i)²
/// with ȳ_i the average of samples [i, i+m). Requires N >= 2m + 1.
double allan_deviation(const std::vector<double>& samples, std::size_t m);

/// Sweep octave-spaced averaging factors up to N/3.
std::vector<AllanPoint> allan_curve(const std::vector<double>& samples,
                                    double sample_interval_s);

}  // namespace qfc::detect
