#include "qfc/detect/detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/detect/event_stream.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::detect {

void DetectorParams::validate() const {
  if (efficiency < 0 || efficiency > 1)
    throw std::invalid_argument("DetectorParams: efficiency outside [0,1]");
  if (dark_rate_hz < 0) throw std::invalid_argument("DetectorParams: negative dark rate");
  if (jitter_sigma_s < 0) throw std::invalid_argument("DetectorParams: negative jitter");
  if (dead_time_s < 0) throw std::invalid_argument("DetectorParams: negative dead time");
}

SinglePhotonDetector::SinglePhotonDetector(DetectorParams params) : params_(params) {
  params_.validate();
}

std::vector<double> SinglePhotonDetector::detect(const std::vector<double>& arrivals,
                                                 double duration_s,
                                                 rng::Xoshiro256& g) const {
  static const std::vector<double> no_extra_darks;
  return detect(arrivals, no_extra_darks, duration_s, g);
}

std::vector<double> SinglePhotonDetector::detect(const std::vector<double>& arrivals,
                                                 const std::vector<double>& extra_darks,
                                                 double duration_s,
                                                 rng::Xoshiro256& g) const {
  // Aliasing one generator into both roles reproduces the historical draw
  // order exactly: photon-pass draws first, dark-pass draws after.
  return detect(arrivals, extra_darks, duration_s, g, g);
}

std::vector<double> SinglePhotonDetector::detect(const std::vector<double>& arrivals,
                                                 const std::vector<double>& extra_darks,
                                                 double duration_s,
                                                 rng::Xoshiro256& g_photon,
                                                 rng::Xoshiro256& g_dark) const {
  if (duration_s <= 0) throw std::invalid_argument("detect: duration <= 0");
  if (!std::is_sorted(extra_darks.begin(), extra_darks.end()))
    throw std::invalid_argument("detect: extra dark clicks unsorted");

  std::vector<double> clicks;
  clicks.reserve(arrivals.size() / 4 + 16);

  // Photon-induced clicks.
  for (double t : arrivals) {
    double click;
    if (detect_photon_click(t, params_, duration_s, g_photon, click))
      clicks.push_back(click);
  }

  // Photon clicks are nearly sorted already (jitter is tiny vs typical
  // arrival spacing), so the is_sorted probe usually skips the sort.
  if (!std::is_sorted(clicks.begin(), clicks.end()))
    std::sort(clicks.begin(), clicks.end());

  // Dark / background clicks: homogeneous Poisson process, generated in
  // time order, so a linear merge replaces concatenate-and-resort.
  if (params_.dark_rate_hz > 0) {
    const auto darks = generate_poisson_arrivals(params_.dark_rate_hz, duration_s, g_dark);
    if (obs::metrics_enabled())
      obs::counter("detect.darks_injected").add(darks.size());
    std::vector<double> merged(clicks.size() + darks.size());
    std::merge(clicks.begin(), clicks.end(), darks.begin(), darks.end(),
               merged.begin());
    clicks.swap(merged);
  }

  // Caller-supplied darks (piecewise-rate schedules): direct click times,
  // merged like the internal homogeneous pass above.
  if (!extra_darks.empty()) {
    if (obs::metrics_enabled())
      obs::counter("detect.darks_injected").add(extra_darks.size());
    std::vector<double> merged(clicks.size() + extra_darks.size());
    std::merge(clicks.begin(), clicks.end(), extra_darks.begin(), extra_darks.end(),
               merged.begin());
    clicks.swap(merged);
  }

  // Dead time: drop clicks closer than dead_time_s to the previous kept one.
  if (params_.dead_time_s > 0 && !clicks.empty()) {
    std::vector<double> kept;
    kept.reserve(clicks.size());
    double last = -1e18;
    for (double t : clicks) {
      if (t - last >= params_.dead_time_s) {
        kept.push_back(t);
        last = t;
      }
    }
    clicks.swap(kept);
  }
  return clicks;
}

double SinglePhotonDetector::expected_singles_rate_hz(double photon_rate_hz) const {
  if (photon_rate_hz < 0)
    throw std::invalid_argument("expected_singles_rate_hz: negative rate");
  return photon_rate_hz * params_.efficiency + params_.dark_rate_hz;
}

}  // namespace qfc::detect
