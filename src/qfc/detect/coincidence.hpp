#pragma once

/// \file coincidence.hpp
/// Start-stop coincidence analysis between two click streams: the Δt
/// histogram, windowed coincidence counting, and the CAR estimator used
/// throughout the paper's Sec. II-III.

#include <cstdint>
#include <vector>

namespace qfc::io {
class Json;
}

namespace qfc::detect {

/// Histogram of signal-minus-idler arrival-time differences.
struct CoincidenceHistogram {
  double bin_width_s = 0;
  double range_s = 0;                 ///< histogram covers [-range, +range]
  std::vector<std::uint64_t> counts;  ///< 2*half_bins+1 bins, center = Δt 0

  std::size_t center_bin() const { return counts.size() / 2; }
  double bin_time(std::size_t i) const {
    return (static_cast<double>(i) - static_cast<double>(center_bin())) * bin_width_s;
  }
  std::uint64_t total() const;

  /// {bin_width_s, range_s, counts} — the sweep-report serialization.
  io::Json to_json() const;
};

/// Build the Δt histogram from two sorted click streams (seconds).
/// Every pair with |t_a - t_b| <= range contributes one count.
CoincidenceHistogram correlate(const std::vector<double>& clicks_a,
                               const std::vector<double>& clicks_b,
                               double bin_width_s, double range_s);

/// Count coincidences with |t_a - t_b - offset| <= window/2.
std::uint64_t count_coincidences(const std::vector<double>& clicks_a,
                                 const std::vector<double>& clicks_b,
                                 double window_s, double offset_s = 0.0);

/// Coincidence-to-accidental ratio measurement.
struct CarResult {
  double coincidences = 0;  ///< counts in the peak window
  double accidentals = 0;   ///< mean counts in equally wide offset windows
  double car = 0;           ///< coincidences / accidentals
  double car_err = 0;       ///< Poisson 1σ propagation

  /// {coincidences, accidentals, car, car_err}.
  io::Json to_json() const;
};

/// CAR from two click streams: peak window around Δt = 0, accidentals
/// estimated from `num_side_windows` windows at offsets far from the peak
/// (spaced by `side_window_spacing_s`, alternating sides).
CarResult measure_car(const std::vector<double>& clicks_a,
                      const std::vector<double>& clicks_b, double window_s,
                      double side_window_spacing_s, int num_side_windows = 10);

}  // namespace qfc::detect
