#include "qfc/detect/allan.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/io/json.hpp"

namespace qfc::detect {

io::Json AllanPoint::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("tau_s", tau_s);
  j.set("sigma", sigma);
  j.set("pairs", pairs);
  return j;
}

double allan_deviation(const std::vector<double>& samples, std::size_t m) {
  const std::size_t n = samples.size();
  if (m == 0) throw std::invalid_argument("allan_deviation: m == 0");
  if (n < 2 * m + 1)
    throw std::invalid_argument("allan_deviation: series too short for this m");

  // Prefix sums for O(1) block averages.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + samples[i];
  const auto block_mean = [&](std::size_t start) {
    return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
  };

  double acc = 0;
  const std::size_t terms = n - 2 * m + 1;
  for (std::size_t i = 0; i < terms; ++i) {
    const double d = block_mean(i + m) - block_mean(i);
    acc += d * d;
  }
  return std::sqrt(acc / (2.0 * static_cast<double>(terms)));
}

std::vector<AllanPoint> allan_curve(const std::vector<double>& samples,
                                    double sample_interval_s) {
  if (sample_interval_s <= 0) throw std::invalid_argument("allan_curve: dt <= 0");
  std::vector<AllanPoint> out;
  for (std::size_t m = 1; 2 * m + 1 <= samples.size() && m <= samples.size() / 3;
       m *= 2) {
    AllanPoint p;
    p.tau_s = static_cast<double>(m) * sample_interval_s;
    p.sigma = allan_deviation(samples, m);
    p.pairs = samples.size() - 2 * m + 1;
    out.push_back(p);
  }
  return out;
}

}  // namespace qfc::detect
