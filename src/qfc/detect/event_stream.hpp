#pragma once

/// \file event_stream.hpp
/// Monte-Carlo generation of correlated photon arrival-time streams for a
/// CW-pumped pair source: Poissonian pair emission, two-sided exponential
/// signal-idler delay (the Fourier pair of the Lorentzian resonance), and
/// per-arm channel transmission. Detector imperfections are applied
/// separately by SinglePhotonDetector.
///
/// These are the single-stream kernels of the batched columnar
/// EventEngine (event_engine.hpp), which applies them per channel column;
/// multi-channel callers should use the engine rather than looping here.

#include <vector>

#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect {

struct PairStreamParams {
  double pair_rate_hz = 0;      ///< on-chip generated pair rate
  double linewidth_hz = 0;      ///< Lorentzian FWHM of both photons
  double duration_s = 0;        ///< experiment duration
  double transmission_a = 1.0;  ///< channel transmission, signal arm
  double transmission_b = 1.0;  ///< channel transmission, idler arm

  void validate() const;
};

struct PairStreams {
  std::vector<double> a;  ///< photon arrival times, signal arm (sorted)
  std::vector<double> b;  ///< photon arrival times, idler arm (sorted)
};

/// Generate correlated arrival streams. The signal-idler delay is Laplace
/// distributed with scale 1/(2π δν), matching the cavity-SFWM cross-
/// correlation G²(τ) ∝ exp(−2π δν |τ|).
PairStreams generate_pair_arrivals(const PairStreamParams& p, rng::Xoshiro256& g);

/// Generate an *uncorrelated* photon stream (e.g. leaked pump, fluorescence)
/// at the given rate.
std::vector<double> generate_poisson_arrivals(double rate_hz, double duration_s,
                                              rng::Xoshiro256& g);

}  // namespace qfc::detect
