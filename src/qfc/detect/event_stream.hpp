#pragma once

/// \file event_stream.hpp
/// Monte-Carlo generation of correlated photon arrival-time streams for
/// the three pair-emission models of the engine: CW (Poissonian pair
/// emission), pulsed (pair times locked to a pulse train, optionally
/// double-pulsed into early/late time bins), and piecewise-constant rate
/// schedules (drifting sources). All share the two-sided exponential
/// signal-idler delay (the Fourier pair of the Lorentzian resonance) and
/// per-arm channel transmission. Detector imperfections are applied
/// separately by SinglePhotonDetector.
///
/// These are the single-stream kernels of the batched columnar
/// EventEngine (event_engine.hpp), which applies them per channel column;
/// multi-channel callers should use the engine rather than looping here.

#include <vector>

#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect {

struct PairStreamParams {
  double pair_rate_hz = 0;      ///< on-chip generated pair rate
  double linewidth_hz = 0;      ///< Lorentzian FWHM of both photons
  double duration_s = 0;        ///< experiment duration
  double transmission_a = 1.0;  ///< channel transmission, signal arm
  double transmission_b = 1.0;  ///< channel transmission, idler arm

  void validate() const;
};

struct PairStreams {
  std::vector<double> a;  ///< photon arrival times, signal arm (sorted)
  std::vector<double> b;  ///< photon arrival times, idler arm (sorted)
};

/// Generate correlated arrival streams. The signal-idler delay is Laplace
/// distributed with scale 1/(2π δν), matching the cavity-SFWM cross-
/// correlation G²(τ) ∝ exp(−2π δν |τ|).
PairStreams generate_pair_arrivals(const PairStreamParams& p, rng::Xoshiro256& g);

/// Generate an *uncorrelated* photon stream (e.g. leaked pump, fluorescence)
/// at the given rate.
std::vector<double> generate_poisson_arrivals(double rate_hz, double duration_s,
                                              rng::Xoshiro256& g);

/// Pulse-train-locked pair emission (Sec. IV double-pulse pumping). Each
/// repetition period emits a Poisson number of pairs with mean
/// `mean_pairs_per_pulse`; each pair's emission time sits on the pulse
/// (Gaussian envelope jitter `pulse_sigma_s`), optionally displaced into
/// the late time bin by `bin_separation_s` with probability
/// `late_fraction` — so early/late bins are physical at the click level.
struct PulsedStreamParams {
  double repetition_rate_hz = 0;   ///< pump pulse repetition rate
  double mean_pairs_per_pulse = 0; ///< mean pair number per repetition period
  double pulse_sigma_s = 0;        ///< Gaussian emission-time jitter (1σ)
  double bin_separation_s = 0;     ///< 0 = single pulse; > 0 = early/late bins
  double late_fraction = 0.5;      ///< probability a pair is born in the late bin
  double linewidth_hz = 0;         ///< Lorentzian FWHM of both photons
  double duration_s = 0;           ///< experiment duration
  double transmission_a = 1.0;     ///< channel transmission, signal arm
  double transmission_b = 1.0;     ///< channel transmission, idler arm

  void validate() const;
};

PairStreams generate_pulsed_pair_arrivals(const PulsedStreamParams& p,
                                          rng::Xoshiro256& g);

/// One segment of a piecewise-constant emission schedule for a drifting
/// source. Segments are consecutive starting at t = 0; the schedule must
/// cover the full stream duration.
struct RateSegment {
  double duration_s = 0;                  ///< length of this segment
  double pair_rate_hz = 0;                ///< on-chip pair rate in this segment
  double background_rate_signal_hz = 0;   ///< extra in-band background, signal arm
  double background_rate_idler_hz = 0;    ///< extra in-band background, idler arm
  double dark_rate_signal_hz = 0;         ///< extra dark clicks, signal detector
  double dark_rate_idler_hz = 0;          ///< extra dark clicks, idler detector
};

/// Pair emission with a piecewise-constant rate (RateSegment::pair_rate_hz
/// drives each segment); delay/transmission semantics as the CW kernel.
struct PiecewiseStreamParams {
  std::vector<RateSegment> segments;
  double linewidth_hz = 0;      ///< Lorentzian FWHM of both photons
  double duration_s = 0;        ///< experiment duration (segments must cover it)
  double transmission_a = 1.0;  ///< channel transmission, signal arm
  double transmission_b = 1.0;  ///< channel transmission, idler arm

  void validate() const;
};

PairStreams generate_piecewise_pair_arrivals(const PiecewiseStreamParams& p,
                                             rng::Xoshiro256& g);

/// Inhomogeneous (piecewise-constant rate) Poisson arrivals over
/// [0, duration): `rate` selects which RateSegment member drives each
/// segment (e.g. `&RateSegment::dark_rate_signal_hz`).
std::vector<double> generate_piecewise_poisson_arrivals(
    const std::vector<RateSegment>& segments, double RateSegment::*rate,
    double duration_s, rng::Xoshiro256& g);

namespace detail {

/// Emit one correlated pair born at t0: Laplace-split the signal-idler
/// delay symmetrically and thin each arm by its transmission. Shared by
/// all three emission kernels — and by the windowed streaming samplers
/// (streaming.cpp), which must consume the exact same draws per pair —
/// so delay/transmission semantics and RNG order stay identical by
/// construction.
void emit_pair(double t0, double delay_scale, double duration_s, double transmission_a,
               double transmission_b, PairStreams& s, rng::Xoshiro256& g);

}  // namespace detail

}  // namespace qfc::detect
