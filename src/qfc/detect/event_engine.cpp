#include "qfc/detect/event_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "qfc/detect/analysis_sweep.hpp"
#include "qfc/detect/channel_rng.hpp"
#include "qfc/detect/engine_plan.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect {

// ---------------------------------------------------------------- EventTable

std::size_t EventTable::channel_size(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return offsets[c + 1] - offsets[c];
}

const double* EventTable::channel_begin(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return time_s.data() + offsets[c];
}

const double* EventTable::channel_end(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return time_s.data() + offsets[c + 1];
}

std::vector<double> EventTable::channel_clicks(std::size_t c) const {
  return std::vector<double>(channel_begin(c), channel_end(c));
}

EventTable EventTable::from_columns(std::vector<std::vector<double>> per_channel) {
  EventTable t;
  std::size_t total = 0;
  for (const auto& col : per_channel) {
    if (!std::is_sorted(col.begin(), col.end()))
      throw std::invalid_argument("EventTable::from_columns: unsorted channel column");
    total += col.size();
  }
  t.time_s.reserve(total);
  t.channel.reserve(total);
  t.offsets.reserve(per_channel.size() + 1);
  t.offsets.push_back(0);
  for (std::size_t c = 0; c < per_channel.size(); ++c) {
    t.time_s.insert(t.time_s.end(), per_channel[c].begin(), per_channel[c].end());
    t.channel.insert(t.channel.end(), per_channel[c].size(),
                     static_cast<std::uint32_t>(c));
    t.offsets.push_back(t.time_s.size());
  }
  return t;
}

// --------------------------------------------------------------- EventEngine

EventEngine::EventEngine(EngineConfig cfg) : cfg_(cfg) {
  if (cfg_.duration_s <= 0)
    throw std::invalid_argument("EngineConfig: duration <= 0");
  if (cfg_.num_threads < 0)
    throw std::invalid_argument("EngineConfig: negative thread count");
  if (cfg_.analysis_threads < 0)
    throw std::invalid_argument("EngineConfig: negative analysis thread count");
}

namespace {

using detail::ChannelPlan;

const char* emission_name(EmissionMode mode) {
  switch (mode) {
    case EmissionMode::Cw: return "engine.emission.cw";
    case EmissionMode::Pulsed: return "engine.emission.pulsed";
    case EmissionMode::PiecewiseRates: return "engine.emission.piecewise";
  }
  return "engine.emission.unknown";
}

}  // namespace

EngineResult EventEngine::run(const std::vector<ChannelPairSpec>& channels) const {
  const std::size_t n = channels.size();
  QFC_OBS_SPAN("engine.run", {{"channels", n}});

  // Validate and pre-fork everything serially, in channel order, so the
  // parallel section below is schedule-independent: channel c's results
  // depend only on gens[c], never on which thread ran it or when.
  std::vector<ChannelPlan> plans;
  std::vector<SinglePhotonDetector> det_s, det_i;
  plans.reserve(n);
  det_s.reserve(n);
  det_i.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const ChannelPairSpec& spec = channels[c];
    plans.push_back(detail::make_checked_plan(spec, cfg_.duration_s, c));
    det_s.emplace_back(spec.detector_signal);
    det_i.emplace_back(spec.detector_idler);
  }

  rng::Xoshiro256 master(cfg_.seed);
  std::vector<rng::Xoshiro256> gens;
  gens.reserve(n);
  for (std::size_t c = 0; c < n; ++c)
    gens.push_back(master.fork(static_cast<std::uint64_t>(c + 1)));

  std::vector<std::vector<double>> sig_cols(n), idl_cols(n);

  const auto process_channel = [&](std::size_t c) {
    QFC_OBS_SPAN("engine.generate", {{"channel", c}});
    const ChannelPairSpec& spec = channels[c];
    const ChannelPlan& plan = plans[c];
    // Per-stage sub-streams, forked unconditionally in fixed order (see
    // channel_rng.hpp): every stochastic stage owns its own generator, so
    // the streaming engine can pause any stage at a window boundary without
    // shifting another stage's draws — batch and windowed runs consume
    // identical per-stream sequences.
    detail::ChannelRngs r = detail::fork_channel_rngs(gens[c]);

    PairStreams photons;
    switch (plan.mode) {
      case EmissionMode::Cw:
        photons = generate_pair_arrivals(plan.cw, r.pair);
        break;
      case EmissionMode::Pulsed:
        photons = generate_pulsed_pair_arrivals(plan.pulsed, r.pair);
        break;
      case EmissionMode::PiecewiseRates:
        photons = generate_piecewise_pair_arrivals(plan.piecewise, r.pair);
        break;
    }
    if (obs::metrics_enabled()) {
      obs::counter(emission_name(plan.mode)).increment();
      obs::counter("engine.events_generated").add(photons.a.size() + photons.b.size());
    }

    // Both the pair arrivals and the background stream are sorted, so a
    // linear merge suffices (same pattern as the detector's dark pass).
    const auto merge_into = [](std::vector<double>& arm, const std::vector<double>& bg) {
      if (bg.empty()) return;
      std::vector<double> merged(arm.size() + bg.size());
      std::merge(arm.begin(), arm.end(), bg.begin(), bg.end(), merged.begin());
      arm.swap(merged);
    };
    const auto inject = [&](std::vector<double>& arm, double rate_hz,
                            rng::Xoshiro256& g) {
      if (rate_hz <= 0) return;
      merge_into(arm, generate_poisson_arrivals(rate_hz, cfg_.duration_s, g));
    };
    inject(photons.a, spec.background_rate_signal_hz, r.bg_a);
    inject(photons.b, spec.background_rate_idler_hz, r.bg_b);
    if (plan.mode == EmissionMode::PiecewiseRates) {
      merge_into(photons.a, generate_piecewise_poisson_arrivals(
                                plan.piecewise.segments,
                                &RateSegment::background_rate_signal_hz,
                                cfg_.duration_s, r.pwbg_a));
      merge_into(photons.b, generate_piecewise_poisson_arrivals(
                                plan.piecewise.segments,
                                &RateSegment::background_rate_idler_hz,
                                cfg_.duration_s, r.pwbg_b));
      const auto darks_s = generate_piecewise_poisson_arrivals(
          plan.piecewise.segments, &RateSegment::dark_rate_signal_hz, cfg_.duration_s,
          r.pwdark_a);
      sig_cols[c] =
          det_s[c].detect(photons.a, darks_s, cfg_.duration_s, r.det_a, r.dark_a);
      const auto darks_i = generate_piecewise_poisson_arrivals(
          plan.piecewise.segments, &RateSegment::dark_rate_idler_hz, cfg_.duration_s,
          r.pwdark_b);
      idl_cols[c] =
          det_i[c].detect(photons.b, darks_i, cfg_.duration_s, r.det_b, r.dark_b);
    } else {
      static const std::vector<double> no_extra_darks;
      sig_cols[c] = det_s[c].detect(photons.a, no_extra_darks, cfg_.duration_s,
                                    r.det_a, r.dark_a);
      idl_cols[c] = det_i[c].detect(photons.b, no_extra_darks, cfg_.duration_s,
                                    r.det_b, r.dark_b);
    }
    if (obs::metrics_enabled())
      obs::counter("engine.clicks_kept").add(sig_cols[c].size() + idl_cols[c].size());
  };

  unsigned num_threads = cfg_.num_threads > 0
                             ? static_cast<unsigned>(cfg_.num_threads)
                             : std::max(1u, std::thread::hardware_concurrency());
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(n, 1)));

  // Per-run pool sized to the config: workers claim whole channels, so the
  // output is schedule-independent (see file comment in the header).
  parallel::WorkerPool pool(num_threads);
  pool.run(n, process_channel);

  EngineResult result;
  result.signal = EventTable::from_columns(std::move(sig_cols));
  result.idler = EventTable::from_columns(std::move(idl_cols));
  return result;
}

// ----------------------------------------------------------- batched analysis

namespace analysis_detail {

/// Minimum table size before merge_channels fans its pair-merges out over
/// the pool: below this the per-round dispatch handshake costs more than
/// the merge itself.
constexpr std::size_t kMergeParallelMinEvents = std::size_t{1} << 15;

MergedView merge_channels(const EventTable& table, parallel::WorkerPool* pool) {
  QFC_OBS_SPAN("engine.analysis.merge", {{"events", table.size()}});
  MergedView m;
  const std::size_t n = table.size();
  m.t.reserve(n);
  m.ch.reserve(n);
  const std::size_t num_ch = table.num_channels();
  if (num_ch == 1) {
    m.t = table.time_s;
    m.ch = table.channel;
    return m;
  }

  // Bottom-up pairwise merge of the already-sorted channel columns:
  // ceil(log2 C) sequential passes over the data, far more cache-friendly
  // than a per-event heap. Ties take the left (lower-id) channel first.
  // Within one pass the pair-merges read and write disjoint index ranges
  // ([bounds[s], bounds[s+2]) each) and the next pass's bounds depend only
  // on the current bounds, so the pairs of a pass can run in parallel
  // without changing a single output bit (the qfc::parallel contract).
  m.t = table.time_s;
  m.ch = table.channel;
  std::vector<std::size_t> bounds = table.offsets;
  std::vector<double> tb(n);
  std::vector<std::uint32_t> cb(n);
  const bool threaded = pool && pool->size() > 1 && n >= kMergeParallelMinEvents;
  while (bounds.size() > 2) {
    const std::size_t npairs = (bounds.size() - 1) / 2;
    const auto merge_pair = [&](std::size_t pair) {
      const std::size_t s = 2 * pair;
      std::size_t i = bounds[s], j = bounds[s + 1], o = bounds[s];
      const std::size_t iend = bounds[s + 1], jend = bounds[s + 2];
      while (i < iend && j < jend) {
        // Branchless select: the interleave of independent Poisson streams
        // is a coin flip per element, the worst case for a branchy merge.
        const bool take_j = m.t[j] < m.t[i];
        tb[o] = take_j ? m.t[j] : m.t[i];
        cb[o] = take_j ? m.ch[j] : m.ch[i];
        j += take_j;
        i += 1 - static_cast<std::size_t>(take_j);
        ++o;
      }
      for (; i < iend; ++i, ++o) {
        tb[o] = m.t[i];
        cb[o] = m.ch[i];
      }
      for (; j < jend; ++j, ++o) {
        tb[o] = m.t[j];
        cb[o] = m.ch[j];
      }
    };
    if (threaded && npairs > 1) {
      parallel::parallel_for_chunks(*pool, npairs, 1,
                                    [&](std::size_t, std::size_t begin,
                                        std::size_t end) {
                                      for (std::size_t p = begin; p < end; ++p)
                                        merge_pair(p);
                                    });
    } else {
      for (std::size_t p = 0; p < npairs; ++p) merge_pair(p);
    }

    std::vector<std::size_t> next_bounds;
    next_bounds.reserve(bounds.size() / 2 + 2);
    next_bounds.push_back(0);
    for (std::size_t s = 0; s + 2 < bounds.size(); s += 2)
      next_bounds.push_back(bounds[s + 2]);
    const std::size_t s_odd = 2 * npairs;
    if (s_odd + 1 < bounds.size()) {  // odd segment out: copy through
      std::copy(m.t.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd]),
                m.t.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd + 1]),
                tb.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd]));
      std::copy(m.ch.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd]),
                m.ch.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd + 1]),
                cb.begin() + static_cast<std::ptrdiff_t>(bounds[s_odd]));
      next_bounds.push_back(bounds[s_odd + 1]);
    }
    m.t.swap(tb);
    m.ch.swap(cb);
    bounds.swap(next_bounds);
  }
  return m;
}

}  // namespace analysis_detail

namespace {

using analysis_detail::MergedView;
using analysis_detail::merge_channels;

// --------------------------------------------------- analysis worker pool

std::mutex analysis_pool_mutex;
std::shared_ptr<parallel::WorkerPool> analysis_pool_instance;

unsigned initial_analysis_request() {
  if (const char* env = std::getenv("QFC_ENGINE_ANALYSIS_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;  // auto
}

unsigned& analysis_request() {
  static unsigned n = initial_analysis_request();
  return n;
}

unsigned resolve_analysis_threads(unsigned requested) {
  return requested > 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

namespace analysis_detail {

// Declared in analysis_sweep.hpp; a positive explicit count that differs
// from the cached pool's size gets a transient pool so bench-style 1/2/4
// sweeps cannot evict the default pool.
std::shared_ptr<parallel::WorkerPool> analysis_pool_for(int num_threads) {
  if (num_threads < 0)
    throw std::invalid_argument("analysis sweep: negative thread count");
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  const unsigned want = num_threads > 0
                            ? static_cast<unsigned>(num_threads)
                            : resolve_analysis_threads(analysis_request());
  if (analysis_pool_instance && analysis_pool_instance->size() == want)
    return analysis_pool_instance;
  if (num_threads > 0)
    return std::make_shared<parallel::WorkerPool>(want);
  analysis_pool_instance = std::make_shared<parallel::WorkerPool>(want);
  return analysis_pool_instance;
}

}  // namespace analysis_detail

namespace {

using analysis_detail::analysis_pool_for;

// ------------------------------------------------------- sharded sweeps
//
// Unit of parallel analysis work: one contiguous slice of one signal
// channel's column. Boundaries depend only on the table contents (fixed
// kAnalysisChunkEvents), never on the worker count; each shard accumulates
// into its own partial count buffer and the buffers merge additively in
// shard order after the join. Counts are integers, so the merged result is
// bitwise identical to the single-threaded sweep at any pool size.

using analysis_detail::kAnalysisChunkEvents;
using analysis_detail::sweep_start;

struct SignalShard {
  std::size_t channel = 0;
  std::size_t begin = 0;  ///< event-index range within the channel column
  std::size_t end = 0;
};

std::vector<SignalShard> make_signal_shards(const EventTable& signal) {
  std::vector<SignalShard> shards;
  for (std::size_t c = 0; c < signal.num_channels(); ++c) {
    const std::size_t len = signal.channel_size(c);
    for (std::size_t b = 0; b < len; b += kAnalysisChunkEvents)
      shards.push_back({c, b, std::min(b + kAnalysisChunkEvents, len)});
  }
  return shards;
}

/// Run the sharded sweep: `sweep(shard, row)` must accumulate shard's counts
/// into `row`, a zeroed buffer of `row_size` cells addressed relative to the
/// shard's channel; `row_of(channel)` is that channel's slice of the global
/// count array. With one worker the shards sweep the global rows directly
/// (no partials) — the order of integer additions per cell is unchanged, so
/// both paths produce identical counts. The caller resolves the pool once
/// (analysis_pool_for) so it can share it with merge_channels.
template <class SweepFn, class RowOfFn>
void run_sharded(const EventTable& signal,
                 const std::shared_ptr<parallel::WorkerPool>& wp,
                 std::size_t row_size, const SweepFn& sweep, const RowOfFn& row_of) {
  const auto shards = make_signal_shards(signal);
  if (shards.empty()) return;
  // Span + histogram around one shard's sweep; pure wrapper, so the count
  // arithmetic — and with it the determinism contract — is untouched.
  const auto observed_sweep = [&](const SignalShard& s, std::uint64_t* row) {
    QFC_OBS_SPAN("engine.analysis.shard",
                 {{"channel", s.channel}, {"events", s.end - s.begin}});
    if (obs::metrics_enabled()) {
      const std::uint64_t t0 = obs::detail::now_ns();
      sweep(s, row);
      obs::histogram("engine.analysis.shard_ns").observe(obs::detail::now_ns() - t0);
      obs::counter("engine.analysis.shards").increment();
    } else {
      sweep(s, row);
    }
  };
  if (wp->size() <= 1 || shards.size() <= 1) {
    for (const SignalShard& s : shards) observed_sweep(s, row_of(s.channel));
    return;
  }
  std::vector<std::vector<std::uint64_t>> partials(shards.size());
  wp->run(shards.size(), [&](std::size_t i) {
    partials[i].assign(row_size, 0);
    observed_sweep(shards[i], partials[i].data());
  });
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::uint64_t* dst = row_of(shards[i].channel);
    for (std::size_t k = 0; k < row_size; ++k) dst[k] += partials[i][k];
  }
}

}  // namespace

void set_analysis_threads(unsigned n) {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  analysis_request() = n;
  analysis_pool_instance.reset();  // rebuilt lazily at the next sweep
}

unsigned analysis_threads() {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  return resolve_analysis_threads(analysis_request());
}

unsigned analysis_thread_request() {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  return analysis_request();
}

std::vector<CoincidenceHistogram> correlate_all(const EventTable& signal,
                                                const EventTable& idler,
                                                double bin_width_s, double range_s,
                                                int num_threads) {
  if (bin_width_s <= 0 || range_s <= 0)
    throw std::invalid_argument("correlate_all: non-positive bin width or range");
  if (signal.num_channels() != idler.num_channels())
    throw std::invalid_argument("correlate_all: channel count mismatch");
  QFC_OBS_SPAN("engine.correlate_all", {{"events", signal.size() + idler.size()}});

  const auto half_bins = static_cast<std::size_t>(std::ceil(range_s / bin_width_s));
  const std::size_t num_bins = 2 * half_bins + 1;
  std::vector<CoincidenceHistogram> hists(signal.num_channels());
  for (auto& h : hists) {
    h.bin_width_s = bin_width_s;
    h.range_s = range_s;
    h.counts.assign(num_bins, 0);
  }

  // Diagonal pairs only: two-pointer passes directly over the contiguous
  // columns, sharded per signal-column chunk.
  const auto wp = analysis_pool_for(num_threads);
  run_sharded(
      signal, wp, num_bins,
      [&](const SignalShard& s, std::uint64_t* counts) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        const double* ie = idler.channel_end(s.channel);
        const double* lo =
            std::lower_bound(idler.channel_begin(s.channel), ie, *a0 - range_s);
        for (const double* a = a0; a != a1; ++a)
          analysis_detail::corr_count_event(*a, ie, lo, bin_width_s, range_s,
                                            half_bins, num_bins, counts);
      },
      [&](std::size_t c) { return hists[c].counts.data(); });
  return hists;
}

std::vector<std::uint64_t> coincidence_count_matrix(const EventTable& signal,
                                                    const EventTable& idler,
                                                    double window_s, double offset_s,
                                                    int num_threads) {
  if (window_s <= 0)
    throw std::invalid_argument("coincidence_count_matrix: window <= 0");

  const std::size_t ns = signal.num_channels();
  const std::size_t ni = idler.num_channels();
  std::vector<std::uint64_t> counts(ns * ni, 0);
  if (ns == 0 || ni == 0) return counts;
  QFC_OBS_SPAN("engine.count_matrix", {{"events", signal.size() + idler.size()}});

  const double half = window_s / 2.0;
  // Conservative scan reach (one extra window of slack): membership below
  // uses the same center-bounds arithmetic as count_coincidences, so the
  // counts are bitwise identical to the pairwise legacy scan.
  const double reach = std::abs(offset_s) + window_s;
  // Merge only the idler side; the signal side is swept one contiguous
  // channel column at a time (each already sorted), which skips half the
  // merge work without changing any count.
  const auto wp = analysis_pool_for(num_threads);
  const MergedView i = merge_channels(idler, wp.get());
  run_sharded(
      signal, wp, ni,
      [&](const SignalShard& s, std::uint64_t* row) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        std::size_t lo = sweep_start(i.t, *a0, reach);
        for (const double* a = a0; a != a1; ++a)
          analysis_detail::window_count_event(*a, i.t, i.ch, lo, half, offset_s,
                                              reach, row);
      },
      [&](std::size_t c) { return counts.data() + c * ni; });
  return counts;
}

const CarResult& CarMatrix::at(std::size_t s, std::size_t i) const {
  if (s >= num_signal || i >= num_idler)
    throw std::out_of_range("CarMatrix::at: bad cell");
  return cells[s * num_idler + i];
}

CarMatrix car_matrix(const EventTable& signal, const EventTable& idler,
                     double window_s, double side_window_spacing_s,
                     int num_side_windows, int num_threads) {
  if (window_s <= 0) throw std::invalid_argument("car_matrix: window <= 0");
  if (num_side_windows < 1)
    throw std::invalid_argument("car_matrix: need at least one side window");
  if (side_window_spacing_s <= window_s)
    throw std::invalid_argument("car_matrix: side windows overlap the peak");

  CarMatrix result;
  result.num_signal = signal.num_channels();
  result.num_idler = idler.num_channels();
  result.cells.assign(result.num_signal * result.num_idler, CarResult{});
  if (result.cells.empty()) return result;
  QFC_OBS_SPAN("engine.car_matrix", {{"events", signal.size() + idler.size()}});

  // Window grid + per-event counting live in analysis_sweep.hpp, shared
  // with the streaming accumulators so both paths count with one copy of
  // the arithmetic.
  const analysis_detail::CarGrid grid =
      analysis_detail::make_car_grid(window_s, side_window_spacing_s,
                                     num_side_windows);
  std::vector<std::uint64_t> counts(result.cells.size() * grid.stride, 0);

  // Merge only the idler side; sweep the signal side per contiguous
  // channel column, sharded across the analysis workers (see
  // coincidence_count_matrix).
  const std::size_t ni = result.num_idler;
  const auto wp = analysis_pool_for(num_threads);
  const MergedView i = merge_channels(idler, wp.get());
  run_sharded(
      signal, wp, ni * grid.stride,
      [&](const SignalShard& s, std::uint64_t* row) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        std::size_t lo = sweep_start(i.t, *a0, grid.reach);
        for (const double* a = a0; a != a1; ++a)
          analysis_detail::car_count_event(*a, i.t, i.ch, lo, grid, row);
      },
      [&](std::size_t c) { return counts.data() + c * ni * grid.stride; });

  analysis_detail::finalize_car_cells(result, counts, grid);
  return result;
}

CarMatrix EventEngine::car_matrix(const EngineResult& events, double window_s,
                                  double side_window_spacing_s,
                                  int num_side_windows) const {
  return detect::car_matrix(events.signal, events.idler, window_s,
                            side_window_spacing_s, num_side_windows,
                            cfg_.analysis_threads);
}

std::vector<CoincidenceHistogram> EventEngine::correlate_all(
    const EngineResult& events, double bin_width_s, double range_s) const {
  return detect::correlate_all(events.signal, events.idler, bin_width_s, range_s,
                               cfg_.analysis_threads);
}

std::vector<std::uint64_t> EventEngine::coincidence_count_matrix(
    const EngineResult& events, double window_s, double offset_s) const {
  return detect::coincidence_count_matrix(events.signal, events.idler, window_s,
                                          offset_s, cfg_.analysis_threads);
}

double mean_pair_rate_hz(const ChannelPairSpec& spec) {
  switch (spec.emission) {
    case EmissionMode::Cw:
      return spec.pair_rate_hz;
    case EmissionMode::Pulsed:
      return spec.pulsed.mean_pairs_per_pulse * spec.pulsed.repetition_rate_hz;
    case EmissionMode::PiecewiseRates: {
      double total = 0, rate_time = 0;
      for (const RateSegment& seg : spec.segments) {
        total += seg.duration_s;
        rate_time += seg.pair_rate_hz * seg.duration_s;
      }
      return total > 0 ? rate_time / total : 0.0;
    }
  }
  return 0.0;
}

void apply_adjacent_crosstalk(std::vector<ChannelPairSpec>& specs,
                              const std::vector<int>& comb_bin,
                              const std::vector<double>& leakage_fraction) {
  if (comb_bin.size() != specs.size() || leakage_fraction.size() != specs.size())
    throw std::invalid_argument(
        "apply_adjacent_crosstalk: comb_bin and leakage_fraction must have one "
        "entry per spec");
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (leakage_fraction[i] < 0 || leakage_fraction[i] > 1)
      throw std::invalid_argument("apply_adjacent_crosstalk: channel " +
                                  std::to_string(i) +
                                  ": leakage fraction outside [0, 1]");

  // Neighbor flux is read from a pre-crosstalk snapshot of the specs, so
  // the result is independent of channel order and leakage never cascades
  // through a chain of bins.
  std::vector<double> flux(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    flux[i] = mean_pair_rate_hz(specs[i]);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (leakage_fraction[i] <= 0) continue;  // exact no-op: bitwise parity
    double neighbor_flux = 0;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (j == i) continue;
      const int d = comb_bin[j] - comb_bin[i];
      if (d == 1 || d == -1) neighbor_flux += flux[j];
    }
    if (neighbor_flux <= 0) continue;
    const double leaked = leakage_fraction[i] * neighbor_flux;
    specs[i].background_rate_signal_hz += leaked * specs[i].transmission_signal;
    specs[i].background_rate_idler_hz += leaked * specs[i].transmission_idler;
  }
}

}  // namespace qfc::detect
