#include "qfc/detect/event_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "qfc/detect/event_stream.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::detect {

// ---------------------------------------------------------------- EventTable

std::size_t EventTable::channel_size(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return offsets[c + 1] - offsets[c];
}

const double* EventTable::channel_begin(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return time_s.data() + offsets[c];
}

const double* EventTable::channel_end(std::size_t c) const {
  if (c + 1 >= offsets.size()) throw std::out_of_range("EventTable: bad channel");
  return time_s.data() + offsets[c + 1];
}

std::vector<double> EventTable::channel_clicks(std::size_t c) const {
  return std::vector<double>(channel_begin(c), channel_end(c));
}

EventTable EventTable::from_columns(std::vector<std::vector<double>> per_channel) {
  EventTable t;
  std::size_t total = 0;
  for (const auto& col : per_channel) {
    if (!std::is_sorted(col.begin(), col.end()))
      throw std::invalid_argument("EventTable::from_columns: unsorted channel column");
    total += col.size();
  }
  t.time_s.reserve(total);
  t.channel.reserve(total);
  t.offsets.reserve(per_channel.size() + 1);
  t.offsets.push_back(0);
  for (std::size_t c = 0; c < per_channel.size(); ++c) {
    t.time_s.insert(t.time_s.end(), per_channel[c].begin(), per_channel[c].end());
    t.channel.insert(t.channel.end(), per_channel[c].size(),
                     static_cast<std::uint32_t>(c));
    t.offsets.push_back(t.time_s.size());
  }
  return t;
}

// --------------------------------------------------------------- EventEngine

EventEngine::EventEngine(EngineConfig cfg) : cfg_(cfg) {
  if (cfg_.duration_s <= 0)
    throw std::invalid_argument("EngineConfig: duration <= 0");
  if (cfg_.num_threads < 0)
    throw std::invalid_argument("EngineConfig: negative thread count");
  if (cfg_.analysis_threads < 0)
    throw std::invalid_argument("EngineConfig: negative analysis thread count");
}

namespace {

/// Per-channel generation plan, fully validated before any parallel work.
struct ChannelPlan {
  EmissionMode mode = EmissionMode::Cw;
  PairStreamParams cw;
  PulsedStreamParams pulsed;
  PiecewiseStreamParams piecewise;
};

ChannelPlan make_plan(const ChannelPairSpec& spec, double duration_s) {
  ChannelPlan plan;
  plan.mode = spec.emission;
  switch (spec.emission) {
    case EmissionMode::Cw:
      plan.cw.pair_rate_hz = spec.pair_rate_hz;
      plan.cw.linewidth_hz = spec.linewidth_hz;
      plan.cw.duration_s = duration_s;
      plan.cw.transmission_a = spec.transmission_signal;
      plan.cw.transmission_b = spec.transmission_idler;
      plan.cw.validate();
      break;
    case EmissionMode::Pulsed:
      if (spec.pair_rate_hz != 0)
        throw std::invalid_argument(
            "ChannelPairSpec: Pulsed mode needs pair_rate_hz == 0 (the rate is "
            "mean_pairs_per_pulse x repetition_rate_hz)");
      plan.pulsed.repetition_rate_hz = spec.pulsed.repetition_rate_hz;
      plan.pulsed.mean_pairs_per_pulse = spec.pulsed.mean_pairs_per_pulse;
      plan.pulsed.pulse_sigma_s = spec.pulsed.pulse_sigma_s;
      plan.pulsed.bin_separation_s = spec.pulsed.bin_separation_s;
      plan.pulsed.late_fraction = spec.pulsed.late_fraction;
      plan.pulsed.linewidth_hz = spec.linewidth_hz;
      plan.pulsed.duration_s = duration_s;
      plan.pulsed.transmission_a = spec.transmission_signal;
      plan.pulsed.transmission_b = spec.transmission_idler;
      plan.pulsed.validate();
      break;
    case EmissionMode::PiecewiseRates:
      if (spec.pair_rate_hz != 0)
        throw std::invalid_argument(
            "ChannelPairSpec: PiecewiseRates mode needs pair_rate_hz == 0 (the "
            "segments carry the pair rate)");
      plan.piecewise.segments = spec.segments;
      plan.piecewise.linewidth_hz = spec.linewidth_hz;
      plan.piecewise.duration_s = duration_s;
      plan.piecewise.transmission_a = spec.transmission_signal;
      plan.piecewise.transmission_b = spec.transmission_idler;
      plan.piecewise.validate();
      break;
  }
  return plan;
}

}  // namespace

namespace {

const char* emission_name(EmissionMode mode) {
  switch (mode) {
    case EmissionMode::Cw: return "engine.emission.cw";
    case EmissionMode::Pulsed: return "engine.emission.pulsed";
    case EmissionMode::PiecewiseRates: return "engine.emission.piecewise";
  }
  return "engine.emission.unknown";
}

}  // namespace

EngineResult EventEngine::run(const std::vector<ChannelPairSpec>& channels) const {
  const std::size_t n = channels.size();
  QFC_OBS_SPAN("engine.run", {{"channels", n}});

  // Validate and pre-fork everything serially, in channel order, so the
  // parallel section below is schedule-independent: channel c's results
  // depend only on gens[c], never on which thread ran it or when.
  std::vector<ChannelPlan> plans;
  std::vector<SinglePhotonDetector> det_s, det_i;
  plans.reserve(n);
  det_s.reserve(n);
  det_i.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const ChannelPairSpec& spec = channels[c];
    if (spec.background_rate_signal_hz < 0 || spec.background_rate_idler_hz < 0)
      throw std::invalid_argument("ChannelPairSpec: negative background rate");
    plans.push_back(make_plan(spec, cfg_.duration_s));
    det_s.emplace_back(spec.detector_signal);
    det_i.emplace_back(spec.detector_idler);
  }

  rng::Xoshiro256 master(cfg_.seed);
  std::vector<rng::Xoshiro256> gens;
  gens.reserve(n);
  for (std::size_t c = 0; c < n; ++c)
    gens.push_back(master.fork(static_cast<std::uint64_t>(c + 1)));

  std::vector<std::vector<double>> sig_cols(n), idl_cols(n);

  const auto process_channel = [&](std::size_t c) {
    QFC_OBS_SPAN("engine.generate", {{"channel", c}});
    rng::Xoshiro256& g = gens[c];
    const ChannelPairSpec& spec = channels[c];
    const ChannelPlan& plan = plans[c];

    PairStreams photons;
    switch (plan.mode) {
      case EmissionMode::Cw:
        photons = generate_pair_arrivals(plan.cw, g);
        break;
      case EmissionMode::Pulsed:
        photons = generate_pulsed_pair_arrivals(plan.pulsed, g);
        break;
      case EmissionMode::PiecewiseRates:
        photons = generate_piecewise_pair_arrivals(plan.piecewise, g);
        break;
    }
    if (obs::metrics_enabled()) {
      obs::counter(emission_name(plan.mode)).increment();
      obs::counter("engine.events_generated").add(photons.a.size() + photons.b.size());
    }

    // Both the pair arrivals and the background stream are sorted, so a
    // linear merge suffices (same pattern as the detector's dark pass).
    const auto merge_into = [](std::vector<double>& arm, const std::vector<double>& bg) {
      if (bg.empty()) return;
      std::vector<double> merged(arm.size() + bg.size());
      std::merge(arm.begin(), arm.end(), bg.begin(), bg.end(), merged.begin());
      arm.swap(merged);
    };
    const auto inject = [&](std::vector<double>& arm, double rate_hz) {
      if (rate_hz <= 0) return;
      merge_into(arm, generate_poisson_arrivals(rate_hz, cfg_.duration_s, g));
    };
    // Fixed per-channel RNG order (documented in the README): spec-level
    // homogeneous backgrounds first (identical to Cw mode), then the
    // piecewise background segments, then per-arm darks + detection.
    inject(photons.a, spec.background_rate_signal_hz);
    inject(photons.b, spec.background_rate_idler_hz);
    if (plan.mode == EmissionMode::PiecewiseRates) {
      merge_into(photons.a, generate_piecewise_poisson_arrivals(
                                plan.piecewise.segments,
                                &RateSegment::background_rate_signal_hz,
                                cfg_.duration_s, g));
      merge_into(photons.b, generate_piecewise_poisson_arrivals(
                                plan.piecewise.segments,
                                &RateSegment::background_rate_idler_hz,
                                cfg_.duration_s, g));
      const auto darks_s = generate_piecewise_poisson_arrivals(
          plan.piecewise.segments, &RateSegment::dark_rate_signal_hz, cfg_.duration_s,
          g);
      sig_cols[c] = det_s[c].detect(photons.a, darks_s, cfg_.duration_s, g);
      const auto darks_i = generate_piecewise_poisson_arrivals(
          plan.piecewise.segments, &RateSegment::dark_rate_idler_hz, cfg_.duration_s,
          g);
      idl_cols[c] = det_i[c].detect(photons.b, darks_i, cfg_.duration_s, g);
    } else {
      sig_cols[c] = det_s[c].detect(photons.a, cfg_.duration_s, g);
      idl_cols[c] = det_i[c].detect(photons.b, cfg_.duration_s, g);
    }
    if (obs::metrics_enabled())
      obs::counter("engine.clicks_kept").add(sig_cols[c].size() + idl_cols[c].size());
  };

  unsigned num_threads = cfg_.num_threads > 0
                             ? static_cast<unsigned>(cfg_.num_threads)
                             : std::max(1u, std::thread::hardware_concurrency());
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(n, 1)));

  // Per-run pool sized to the config: workers claim whole channels, so the
  // output is schedule-independent (see file comment in the header).
  parallel::WorkerPool pool(num_threads);
  pool.run(n, process_channel);

  EngineResult result;
  result.signal = EventTable::from_columns(std::move(sig_cols));
  result.idler = EventTable::from_columns(std::move(idl_cols));
  return result;
}

// ----------------------------------------------------------- batched analysis

namespace {

/// Time-ordered view over all channels of a table: one (time, channel)
/// sequence merged across the per-channel columns.
struct MergedView {
  std::vector<double> t;
  std::vector<std::uint32_t> ch;
};

MergedView merge_channels(const EventTable& table) {
  QFC_OBS_SPAN("engine.analysis.merge", {{"events", table.size()}});
  MergedView m;
  const std::size_t n = table.size();
  m.t.reserve(n);
  m.ch.reserve(n);
  const std::size_t num_ch = table.num_channels();
  if (num_ch == 1) {
    m.t = table.time_s;
    m.ch = table.channel;
    return m;
  }

  // Bottom-up pairwise merge of the already-sorted channel columns:
  // ceil(log2 C) sequential passes over the data, far more cache-friendly
  // than a per-event heap. Ties take the left (lower-id) channel first.
  m.t = table.time_s;
  m.ch = table.channel;
  std::vector<std::size_t> bounds = table.offsets;
  std::vector<double> tb(n);
  std::vector<std::uint32_t> cb(n);
  while (bounds.size() > 2) {
    std::vector<std::size_t> next_bounds;
    next_bounds.reserve(bounds.size() / 2 + 2);
    next_bounds.push_back(0);
    std::size_t s = 0;
    for (; s + 2 < bounds.size(); s += 2) {
      std::size_t i = bounds[s], j = bounds[s + 1], o = bounds[s];
      const std::size_t iend = bounds[s + 1], jend = bounds[s + 2];
      while (i < iend && j < jend) {
        // Branchless select: the interleave of independent Poisson streams
        // is a coin flip per element, the worst case for a branchy merge.
        const bool take_j = m.t[j] < m.t[i];
        tb[o] = take_j ? m.t[j] : m.t[i];
        cb[o] = take_j ? m.ch[j] : m.ch[i];
        j += take_j;
        i += 1 - static_cast<std::size_t>(take_j);
        ++o;
      }
      for (; i < iend; ++i, ++o) {
        tb[o] = m.t[i];
        cb[o] = m.ch[i];
      }
      for (; j < jend; ++j, ++o) {
        tb[o] = m.t[j];
        cb[o] = m.ch[j];
      }
      next_bounds.push_back(jend);
    }
    if (s + 1 < bounds.size()) {  // odd segment out: copy through
      std::copy(m.t.begin() + static_cast<std::ptrdiff_t>(bounds[s]),
                m.t.begin() + static_cast<std::ptrdiff_t>(bounds[s + 1]),
                tb.begin() + static_cast<std::ptrdiff_t>(bounds[s]));
      std::copy(m.ch.begin() + static_cast<std::ptrdiff_t>(bounds[s]),
                m.ch.begin() + static_cast<std::ptrdiff_t>(bounds[s + 1]),
                cb.begin() + static_cast<std::ptrdiff_t>(bounds[s]));
      next_bounds.push_back(bounds[s + 1]);
    }
    m.t.swap(tb);
    m.ch.swap(cb);
    bounds.swap(next_bounds);
  }
  return m;
}

// --------------------------------------------------- analysis worker pool

std::mutex analysis_pool_mutex;
std::shared_ptr<parallel::WorkerPool> analysis_pool_instance;

unsigned initial_analysis_request() {
  if (const char* env = std::getenv("QFC_ENGINE_ANALYSIS_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;  // auto
}

unsigned& analysis_request() {
  static unsigned n = initial_analysis_request();
  return n;
}

unsigned resolve_analysis_threads(unsigned requested) {
  return requested > 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

/// Pool for one analysis call. `num_threads` <= 0 uses (and lazily builds)
/// the cached process-wide pool at the current request; a positive explicit
/// count that matches the cached size reuses it, any other explicit count
/// gets a transient pool so bench-style 1/2/4 sweeps cannot evict the
/// default pool. Callers hold the shared_ptr for the whole sweep, so a
/// concurrent set_analysis_threads() swap cannot destroy a pool mid-run.
std::shared_ptr<parallel::WorkerPool> analysis_pool_for(int num_threads) {
  if (num_threads < 0)
    throw std::invalid_argument("analysis sweep: negative thread count");
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  const unsigned want = num_threads > 0
                            ? static_cast<unsigned>(num_threads)
                            : resolve_analysis_threads(analysis_request());
  if (analysis_pool_instance && analysis_pool_instance->size() == want)
    return analysis_pool_instance;
  if (num_threads > 0)
    return std::make_shared<parallel::WorkerPool>(want);
  analysis_pool_instance = std::make_shared<parallel::WorkerPool>(want);
  return analysis_pool_instance;
}

// ------------------------------------------------------- sharded sweeps
//
// Unit of parallel analysis work: one contiguous slice of one signal
// channel's column. Boundaries depend only on the table contents (fixed
// kAnalysisChunkEvents), never on the worker count; each shard accumulates
// into its own partial count buffer and the buffers merge additively in
// shard order after the join. Counts are integers, so the merged result is
// bitwise identical to the single-threaded sweep at any pool size.

constexpr std::size_t kAnalysisChunkEvents = 16384;

struct SignalShard {
  std::size_t channel = 0;
  std::size_t begin = 0;  ///< event-index range within the channel column
  std::size_t end = 0;
};

std::vector<SignalShard> make_signal_shards(const EventTable& signal) {
  std::vector<SignalShard> shards;
  for (std::size_t c = 0; c < signal.num_channels(); ++c) {
    const std::size_t len = signal.channel_size(c);
    for (std::size_t b = 0; b < len; b += kAnalysisChunkEvents)
      shards.push_back({c, b, std::min(b + kAnalysisChunkEvents, len)});
  }
  return shards;
}

/// Index of the first merged-view event with t >= first signal time - reach:
/// exactly where the monotone `lo` pointer of the full sweep would stand
/// when it reaches this shard's first event.
std::size_t sweep_start(const std::vector<double>& t, double first_ta, double reach) {
  return static_cast<std::size_t>(
      std::lower_bound(t.begin(), t.end(), first_ta - reach) - t.begin());
}

/// Run the sharded sweep: `sweep(shard, row)` must accumulate shard's counts
/// into `row`, a zeroed buffer of `row_size` cells addressed relative to the
/// shard's channel; `row_of(channel)` is that channel's slice of the global
/// count array. With one worker the shards sweep the global rows directly
/// (no partials) — the order of integer additions per cell is unchanged, so
/// both paths produce identical counts.
template <class SweepFn, class RowOfFn>
void run_sharded(const EventTable& signal, int num_threads, std::size_t row_size,
                 const SweepFn& sweep, const RowOfFn& row_of) {
  if (num_threads < 0)
    throw std::invalid_argument("analysis sweep: negative thread count");
  const auto shards = make_signal_shards(signal);
  if (shards.empty()) return;
  // Span + histogram around one shard's sweep; pure wrapper, so the count
  // arithmetic — and with it the determinism contract — is untouched.
  const auto observed_sweep = [&](const SignalShard& s, std::uint64_t* row) {
    QFC_OBS_SPAN("engine.analysis.shard",
                 {{"channel", s.channel}, {"events", s.end - s.begin}});
    if (obs::metrics_enabled()) {
      const std::uint64_t t0 = obs::detail::now_ns();
      sweep(s, row);
      obs::histogram("engine.analysis.shard_ns").observe(obs::detail::now_ns() - t0);
      obs::counter("engine.analysis.shards").increment();
    } else {
      sweep(s, row);
    }
  };
  const auto wp = analysis_pool_for(num_threads);
  if (wp->size() <= 1 || shards.size() <= 1) {
    for (const SignalShard& s : shards) observed_sweep(s, row_of(s.channel));
    return;
  }
  std::vector<std::vector<std::uint64_t>> partials(shards.size());
  wp->run(shards.size(), [&](std::size_t i) {
    partials[i].assign(row_size, 0);
    observed_sweep(shards[i], partials[i].data());
  });
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::uint64_t* dst = row_of(shards[i].channel);
    for (std::size_t k = 0; k < row_size; ++k) dst[k] += partials[i][k];
  }
}

}  // namespace

void set_analysis_threads(unsigned n) {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  analysis_request() = n;
  analysis_pool_instance.reset();  // rebuilt lazily at the next sweep
}

unsigned analysis_threads() {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  return resolve_analysis_threads(analysis_request());
}

unsigned analysis_thread_request() {
  std::lock_guard<std::mutex> lock(analysis_pool_mutex);
  return analysis_request();
}

std::vector<CoincidenceHistogram> correlate_all(const EventTable& signal,
                                                const EventTable& idler,
                                                double bin_width_s, double range_s,
                                                int num_threads) {
  if (bin_width_s <= 0 || range_s <= 0)
    throw std::invalid_argument("correlate_all: non-positive bin width or range");
  if (signal.num_channels() != idler.num_channels())
    throw std::invalid_argument("correlate_all: channel count mismatch");
  QFC_OBS_SPAN("engine.correlate_all", {{"events", signal.size() + idler.size()}});

  const auto half_bins = static_cast<std::size_t>(std::ceil(range_s / bin_width_s));
  const std::size_t num_bins = 2 * half_bins + 1;
  std::vector<CoincidenceHistogram> hists(signal.num_channels());
  for (auto& h : hists) {
    h.bin_width_s = bin_width_s;
    h.range_s = range_s;
    h.counts.assign(num_bins, 0);
  }

  // Diagonal pairs only: two-pointer passes directly over the contiguous
  // columns, sharded per signal-column chunk.
  run_sharded(
      signal, num_threads, num_bins,
      [&](const SignalShard& s, std::uint64_t* counts) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        const double* ie = idler.channel_end(s.channel);
        const double* lo =
            std::lower_bound(idler.channel_begin(s.channel), ie, *a0 - range_s);
        for (const double* a = a0; a != a1; ++a) {
          const double ta = *a;
          while (lo != ie && *lo < ta - range_s) ++lo;
          for (const double* j = lo; j != ie && *j <= ta + range_s; ++j) {
            const double dt = ta - *j;
            const auto bin = static_cast<std::int64_t>(std::llround(dt / bin_width_s)) +
                             static_cast<std::int64_t>(half_bins);
            if (bin >= 0 && bin < static_cast<std::int64_t>(num_bins))
              ++counts[static_cast<std::size_t>(bin)];
          }
        }
      },
      [&](std::size_t c) { return hists[c].counts.data(); });
  return hists;
}

std::vector<std::uint64_t> coincidence_count_matrix(const EventTable& signal,
                                                    const EventTable& idler,
                                                    double window_s, double offset_s,
                                                    int num_threads) {
  if (window_s <= 0)
    throw std::invalid_argument("coincidence_count_matrix: window <= 0");

  const std::size_t ns = signal.num_channels();
  const std::size_t ni = idler.num_channels();
  std::vector<std::uint64_t> counts(ns * ni, 0);
  if (ns == 0 || ni == 0) return counts;
  QFC_OBS_SPAN("engine.count_matrix", {{"events", signal.size() + idler.size()}});

  const double half = window_s / 2.0;
  // Conservative scan reach (one extra window of slack): membership below
  // uses the same center-bounds arithmetic as count_coincidences, so the
  // counts are bitwise identical to the pairwise legacy scan.
  const double reach = std::abs(offset_s) + window_s;
  // Merge only the idler side; the signal side is swept one contiguous
  // channel column at a time (each already sorted), which skips half the
  // merge work without changing any count.
  const MergedView i = merge_channels(idler);
  run_sharded(
      signal, num_threads, ni,
      [&](const SignalShard& s, std::uint64_t* row) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        std::size_t lo = sweep_start(i.t, *a0, reach);
        for (const double* a = a0; a != a1; ++a) {
          const double ta = *a;
          const double center = ta - offset_s;
          while (lo < i.t.size() && i.t[lo] < ta - reach) ++lo;
          for (std::size_t j = lo; j < i.t.size() && i.t[j] <= ta + reach; ++j) {
            const double tb = i.t[j];
            if (tb >= center - half && tb <= center + half) ++row[i.ch[j]];
          }
        }
      },
      [&](std::size_t c) { return counts.data() + c * ni; });
  return counts;
}

const CarResult& CarMatrix::at(std::size_t s, std::size_t i) const {
  if (s >= num_signal || i >= num_idler)
    throw std::out_of_range("CarMatrix::at: bad cell");
  return cells[s * num_idler + i];
}

CarMatrix car_matrix(const EventTable& signal, const EventTable& idler,
                     double window_s, double side_window_spacing_s,
                     int num_side_windows, int num_threads) {
  if (window_s <= 0) throw std::invalid_argument("car_matrix: window <= 0");
  if (num_side_windows < 1)
    throw std::invalid_argument("car_matrix: need at least one side window");
  if (side_window_spacing_s <= window_s)
    throw std::invalid_argument("car_matrix: side windows overlap the peak");

  CarMatrix result;
  result.num_signal = signal.num_channels();
  result.num_idler = idler.num_channels();
  result.cells.assign(result.num_signal * result.num_idler, CarResult{});
  if (result.cells.empty()) return result;
  QFC_OBS_SPAN("engine.car_matrix", {{"events", signal.size() + idler.size()}});

  // Window grid: index 0 is the peak at Δt = 0; side window w = 1..K sits
  // at multiple m_w of the spacing, alternating +1, -1, +2, -2, ...
  // (the same offsets measure_car scans one pair at a time).
  const int K = num_side_windows;
  const int mmax = (K + 1) / 2;
  std::vector<int> window_of(static_cast<std::size_t>(2 * mmax + 1), -1);
  window_of[static_cast<std::size_t>(mmax)] = 0;
  for (int w = 1; w <= K; ++w) {
    const int m = (w % 2 == 1) ? (w + 1) / 2 : -(w / 2);
    window_of[static_cast<std::size_t>(m + mmax)] = w;
  }

  const double half = window_s / 2.0;
  // Conservative scan reach (one extra window of slack); the rounding to
  // the nearest grid offset only *selects* the candidate window — the
  // membership test below repeats measure_car's center-bounds arithmetic
  // exactly, so every cell is bitwise identical to the pairwise scans.
  const double reach = mmax * side_window_spacing_s + window_s;
  const std::size_t stride = static_cast<std::size_t>(K) + 1;
  std::vector<std::uint64_t> counts(result.cells.size() * stride, 0);

  // Merge only the idler side; sweep the signal side per contiguous
  // channel column, sharded across the analysis workers (see
  // coincidence_count_matrix).
  const std::size_t ni = result.num_idler;
  const MergedView i = merge_channels(idler);
  run_sharded(
      signal, num_threads, ni * stride,
      [&](const SignalShard& s, std::uint64_t* row) {
        const double* a0 = signal.channel_begin(s.channel) + s.begin;
        const double* a1 = signal.channel_begin(s.channel) + s.end;
        std::size_t lo = sweep_start(i.t, *a0, reach);
        for (const double* a = a0; a != a1; ++a) {
          const double ta = *a;
          while (lo < i.t.size() && i.t[lo] < ta - reach) ++lo;
          for (std::size_t j = lo; j < i.t.size() && i.t[j] <= ta + reach; ++j) {
            const double tb = i.t[j];
            const double dt = ta - tb;
            const auto m =
                static_cast<std::int64_t>(std::llround(dt / side_window_spacing_s));
            if (m < -mmax || m > mmax) continue;
            const int w = window_of[static_cast<std::size_t>(m + mmax)];
            if (w < 0) continue;
            const double center = ta - static_cast<double>(m) * side_window_spacing_s;
            if (tb < center - half || tb > center + half) continue;
            ++row[i.ch[j] * stride + static_cast<std::size_t>(w)];
          }
        }
      },
      [&](std::size_t c) { return counts.data() + c * ni * stride; });

  for (std::size_t cell = 0; cell < result.cells.size(); ++cell) {
    CarResult& r = result.cells[cell];
    r.coincidences = static_cast<double>(counts[cell * stride]);
    double acc_total = 0;
    for (int w = 1; w <= K; ++w)
      acc_total += static_cast<double>(counts[cell * stride + static_cast<std::size_t>(w)]);
    r.accidentals = acc_total / K;
    if (r.accidentals <= 0) r.accidentals = 1.0 / K;  // lower bound, as measure_car
    r.car = r.coincidences / r.accidentals;
    const double rel_c = r.coincidences > 0 ? 1.0 / std::sqrt(r.coincidences) : 1.0;
    const double rel_a = 1.0 / std::sqrt(std::max(1.0, acc_total));
    r.car_err = r.car * std::sqrt(rel_c * rel_c + rel_a * rel_a);
  }
  return result;
}

CarMatrix EventEngine::car_matrix(const EngineResult& events, double window_s,
                                  double side_window_spacing_s,
                                  int num_side_windows) const {
  return detect::car_matrix(events.signal, events.idler, window_s,
                            side_window_spacing_s, num_side_windows,
                            cfg_.analysis_threads);
}

std::vector<CoincidenceHistogram> EventEngine::correlate_all(
    const EngineResult& events, double bin_width_s, double range_s) const {
  return detect::correlate_all(events.signal, events.idler, bin_width_s, range_s,
                               cfg_.analysis_threads);
}

std::vector<std::uint64_t> EventEngine::coincidence_count_matrix(
    const EngineResult& events, double window_s, double offset_s) const {
  return detect::coincidence_count_matrix(events.signal, events.idler, window_s,
                                          offset_s, cfg_.analysis_threads);
}

}  // namespace qfc::detect
