#pragma once

/// \file analysis_sweep.hpp
/// Internal shared core of the batched analysis kernels (event_engine.cpp)
/// and their streaming accumulators (streaming.cpp): the merged idler view,
/// the CAR window grid, and the per-signal-event counting functions. Both
/// paths call the *same* inline functions for every count, so "streaming is
/// bitwise identical to batch" is a property of the call order alone — the
/// arithmetic cannot drift apart. Not installed API; include only from
/// qfc::detect translation units.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "qfc/detect/event_engine.hpp"

namespace qfc::parallel {
class WorkerPool;
}

namespace qfc::detect::analysis_detail {

/// Fixed shard size of the batched analysis sweeps *and* of the streaming
/// accumulators' per-push chunk fan-out. Boundaries derived from it depend
/// only on the data, never on the worker count.
constexpr std::size_t kAnalysisChunkEvents = 16384;

/// Pool for one analysis call (event_engine.cpp). `num_threads` <= 0 uses
/// (and lazily builds) the cached process-wide pool at the current
/// set_analysis_threads request; a positive explicit count that matches the
/// cached size reuses it, any other explicit count gets a transient pool.
/// Callers hold the shared_ptr for the whole sweep (or, for streaming
/// accumulators, for their whole lifetime), so a concurrent
/// set_analysis_threads() swap cannot destroy a pool mid-run.
std::shared_ptr<parallel::WorkerPool> analysis_pool_for(int num_threads);

/// Time-ordered view over all channels of a table: one (time, channel)
/// sequence merged across the per-channel columns.
struct MergedView {
  std::vector<double> t;
  std::vector<std::uint32_t> ch;
};

/// Bottom-up pairwise merge of the per-channel columns (event_engine.cpp).
/// When `pool` is non-null and the table is large enough, the independent
/// pair-merges of each pass run over `parallel_for_chunks` — their output
/// ranges are disjoint and the pass layout depends only on the offsets, so
/// the result is bitwise identical at every pool size.
MergedView merge_channels(const EventTable& table,
                          parallel::WorkerPool* pool = nullptr);

/// Index of the first merged-view event with t >= first signal time - reach:
/// exactly where the monotone `lo` pointer of the full sweep would stand
/// when it reaches this shard's first event.
inline std::size_t sweep_start(const std::vector<double>& t, double first_ta,
                               double reach) {
  return static_cast<std::size_t>(
      std::lower_bound(t.begin(), t.end(), first_ta - reach) - t.begin());
}

/// CAR window grid: index 0 is the peak at Δt = 0; side window w = 1..K sits
/// at multiple m_w of the spacing, alternating +1, -1, +2, -2, ...
/// (the same offsets measure_car scans one pair at a time).
struct CarGrid {
  int K = 0;
  int mmax = 0;
  double half = 0;
  double spacing = 0;
  double reach = 0;          ///< conservative scan reach (one extra window)
  std::size_t stride = 0;    ///< K + 1 windows per (signal, idler) cell
  std::vector<int> window_of;
};

inline CarGrid make_car_grid(double window_s, double side_window_spacing_s,
                             int num_side_windows) {
  CarGrid g;
  g.K = num_side_windows;
  g.mmax = (g.K + 1) / 2;
  g.half = window_s / 2.0;
  g.spacing = side_window_spacing_s;
  g.reach = g.mmax * side_window_spacing_s + window_s;
  g.stride = static_cast<std::size_t>(g.K) + 1;
  g.window_of.assign(static_cast<std::size_t>(2 * g.mmax + 1), -1);
  g.window_of[static_cast<std::size_t>(g.mmax)] = 0;
  for (int w = 1; w <= g.K; ++w) {
    const int m = (w % 2 == 1) ? (w + 1) / 2 : -(w / 2);
    g.window_of[static_cast<std::size_t>(m + g.mmax)] = w;
  }
  return g;
}

/// One signal event of the CAR sweep against a merged idler sequence:
/// advance the monotone `lo` pointer, then bin every idler event within
/// reach into its candidate window. The rounding to the nearest grid offset
/// only *selects* the window — the membership test repeats measure_car's
/// center-bounds arithmetic exactly.
inline void car_count_event(double ta, const std::vector<double>& it,
                            const std::vector<std::uint32_t>& ich,
                            std::size_t& lo, const CarGrid& g,
                            std::uint64_t* row) {
  while (lo < it.size() && it[lo] < ta - g.reach) ++lo;
  for (std::size_t j = lo; j < it.size() && it[j] <= ta + g.reach; ++j) {
    const double tb = it[j];
    const double dt = ta - tb;
    const auto m = static_cast<std::int64_t>(std::llround(dt / g.spacing));
    if (m < -g.mmax || m > g.mmax) continue;
    const int w = g.window_of[static_cast<std::size_t>(m + g.mmax)];
    if (w < 0) continue;
    const double center = ta - static_cast<double>(m) * g.spacing;
    if (tb < center - g.half || tb > center + g.half) continue;
    ++row[ich[j] * g.stride + static_cast<std::size_t>(w)];
  }
}

/// One signal event of the windowed-coincidence sweep: same center-bounds
/// arithmetic as count_coincidences.
inline void window_count_event(double ta, const std::vector<double>& it,
                               const std::vector<std::uint32_t>& ich,
                               std::size_t& lo, double half, double offset_s,
                               double reach, std::uint64_t* row) {
  const double center = ta - offset_s;
  while (lo < it.size() && it[lo] < ta - reach) ++lo;
  for (std::size_t j = lo; j < it.size() && it[j] <= ta + reach; ++j) {
    const double tb = it[j];
    if (tb >= center - half && tb <= center + half) ++row[ich[j]];
  }
}

/// One signal event of the diagonal Δt-histogram sweep over one idler
/// channel column [ib, ie).
inline void corr_count_event(double ta, const double* ie, const double*& lo,
                             double bin_width_s, double range_s,
                             std::size_t half_bins, std::size_t num_bins,
                             std::uint64_t* counts) {
  while (lo != ie && *lo < ta - range_s) ++lo;
  for (const double* j = lo; j != ie && *j <= ta + range_s; ++j) {
    const double dt = ta - *j;
    const auto bin = static_cast<std::int64_t>(std::llround(dt / bin_width_s)) +
                     static_cast<std::int64_t>(half_bins);
    if (bin >= 0 && bin < static_cast<std::int64_t>(num_bins))
      ++counts[static_cast<std::size_t>(bin)];
  }
}

/// Turn the per-window integer counts into CarResults — the same counting
/// and error semantics as measure_car.
inline void finalize_car_cells(CarMatrix& result,
                               const std::vector<std::uint64_t>& counts,
                               const CarGrid& g) {
  for (std::size_t cell = 0; cell < result.cells.size(); ++cell) {
    CarResult& r = result.cells[cell];
    r.coincidences = static_cast<double>(counts[cell * g.stride]);
    double acc_total = 0;
    for (int w = 1; w <= g.K; ++w)
      acc_total +=
          static_cast<double>(counts[cell * g.stride + static_cast<std::size_t>(w)]);
    r.accidentals = acc_total / g.K;
    if (r.accidentals <= 0) r.accidentals = 1.0 / g.K;  // lower bound, as measure_car
    r.car = r.coincidences / r.accidentals;
    const double rel_c = r.coincidences > 0 ? 1.0 / std::sqrt(r.coincidences) : 1.0;
    const double rel_a = 1.0 / std::sqrt(std::max(1.0, acc_total));
    r.car_err = r.car * std::sqrt(rel_c * rel_c + rel_a * rel_a);
  }
}

}  // namespace qfc::detect::analysis_detail
