#include "qfc/detect/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/io/json.hpp"
#include "qfc/linalg/solve.hpp"
#include "qfc/photonics/constants.hpp"

namespace qfc::detect {

io::Json SinusoidFit::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("offset", offset);
  j.set("amplitude", amplitude);
  j.set("phase_rad", phase_rad);
  j.set("visibility", visibility);
  j.set("visibility_err", visibility_err);
  return j;
}

ExponentialFit fit_two_sided_exponential(const std::vector<double>& t_s,
                                         const std::vector<double>& y) {
  if (t_s.size() != y.size())
    throw std::invalid_argument("fit_two_sided_exponential: size mismatch");

  // Weighted regression: log y = log A − |t|/τ with weights w_i = y_i
  // (variance of log of a Poisson count ≈ 1/count).
  double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
  std::size_t usable = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0) continue;
    const double x = std::abs(t_s[i]);
    const double ly = std::log(y[i]);
    const double w = y[i];
    sw += w;
    swx += w * x;
    swy += w * ly;
    swxx += w * x * x;
    swxy += w * x * ly;
    ++usable;
  }
  if (usable < 3)
    throw std::invalid_argument("fit_two_sided_exponential: fewer than 3 positive points");

  const double denom = sw * swxx - swx * swx;
  if (std::abs(denom) < 1e-300)
    throw std::invalid_argument("fit_two_sided_exponential: degenerate abscissae");
  const double slope = (sw * swxy - swx * swy) / denom;
  const double intercept = (swy - slope * swx) / sw;
  if (slope >= 0)
    throw std::invalid_argument("fit_two_sided_exponential: data does not decay");

  ExponentialFit f;
  f.tau_s = -1.0 / slope;
  f.amplitude = std::exp(intercept);

  // Weighted R² on the log model.
  const double mean_ly = swy / sw;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0) continue;
    const double x = std::abs(t_s[i]);
    const double ly = std::log(y[i]);
    const double pred = intercept + slope * x;
    ss_res += y[i] * (ly - pred) * (ly - pred);
    ss_tot += y[i] * (ly - mean_ly) * (ly - mean_ly);
  }
  f.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  return f;
}

double linewidth_from_decay_time(double tau_s) {
  if (tau_s <= 0) throw std::invalid_argument("linewidth_from_decay_time: tau <= 0");
  return 1.0 / (2.0 * qfc::photonics::pi * tau_s);
}

double deconvolve_jitter(double tau_measured_s, double jitter_sigma_s) {
  if (tau_measured_s <= 0) throw std::invalid_argument("deconvolve_jitter: tau <= 0");
  if (jitter_sigma_s < 0) throw std::invalid_argument("deconvolve_jitter: sigma < 0");
  // Two detectors each add jitter σ; Δt carries 2σ² of Gaussian variance.
  const double corrected2 = tau_measured_s * tau_measured_s - 2.0 * jitter_sigma_s * jitter_sigma_s;
  if (corrected2 <= 0) return tau_measured_s;
  return std::sqrt(corrected2);
}

SinusoidFit fit_sinusoid(const std::vector<double>& x_rad, const std::vector<double>& y) {
  if (x_rad.size() != y.size()) throw std::invalid_argument("fit_sinusoid: size mismatch");
  if (x_rad.size() < 4)
    throw std::invalid_argument("fit_sinusoid: need at least 4 points");

  using linalg::RMat;
  using linalg::RVec;
  RMat a(x_rad.size(), 3);
  for (std::size_t i = 0; i < x_rad.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = std::cos(x_rad[i]);
    a(i, 2) = std::sin(x_rad[i]);
  }
  const RVec coef = linalg::least_squares(a, y);

  SinusoidFit f;
  f.offset = coef[0];
  f.amplitude = std::hypot(coef[1], coef[2]);
  f.phase_rad = std::atan2(-coef[2], coef[1]);
  if (f.offset > 0) {
    f.visibility = std::clamp(f.amplitude / f.offset, 0.0, 1.0);
    // Poisson: var(y_i) ≈ y_i; rough propagation via mean count.
    double mean_y = 0;
    for (double v : y) mean_y += v;
    mean_y /= static_cast<double>(y.size());
    if (mean_y > 0 && f.offset > 0) {
      const double sigma_a = std::sqrt(2.0 * mean_y / static_cast<double>(y.size()));
      f.visibility_err = sigma_a / f.offset;
    }
  }
  return f;
}

double visibility_from_extrema(double max_counts, double min_counts) {
  if (max_counts < min_counts)
    throw std::invalid_argument("visibility_from_extrema: max < min");
  if (max_counts + min_counts <= 0) return 0;
  return (max_counts - min_counts) / (max_counts + min_counts);
}

}  // namespace qfc::detect
