#include "qfc/detect/coincidence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/io/json.hpp"

namespace qfc::detect {

std::uint64_t CoincidenceHistogram::total() const {
  std::uint64_t s = 0;
  for (auto c : counts) s += c;
  return s;
}

io::Json CoincidenceHistogram::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("bin_width_s", bin_width_s);
  j.set("range_s", range_s);
  io::Json bins = io::Json::make_array();
  for (const auto c : counts) bins.push_back(io::Json(c));
  j.set("counts", std::move(bins));
  return j;
}

io::Json CarResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("coincidences", coincidences);
  j.set("accidentals", accidentals);
  j.set("car", io::number_or_string(car));
  j.set("car_err", io::number_or_string(car_err));
  return j;
}

CoincidenceHistogram correlate(const std::vector<double>& clicks_a,
                               const std::vector<double>& clicks_b,
                               double bin_width_s, double range_s) {
  if (bin_width_s <= 0 || range_s <= 0)
    throw std::invalid_argument("correlate: non-positive bin width or range");
  if (!std::is_sorted(clicks_a.begin(), clicks_a.end()) ||
      !std::is_sorted(clicks_b.begin(), clicks_b.end()))
    throw std::invalid_argument("correlate: click streams must be sorted");

  const auto half_bins = static_cast<std::size_t>(std::ceil(range_s / bin_width_s));
  CoincidenceHistogram h;
  h.bin_width_s = bin_width_s;
  h.range_s = range_s;
  h.counts.assign(2 * half_bins + 1, 0);

  // Two-pointer sweep: for each a-click, walk b-clicks within ±range.
  std::size_t lo = 0;
  for (const double ta : clicks_a) {
    while (lo < clicks_b.size() && clicks_b[lo] < ta - range_s) ++lo;
    for (std::size_t j = lo; j < clicks_b.size() && clicks_b[j] <= ta + range_s; ++j) {
      const double dt = ta - clicks_b[j];
      const auto bin = static_cast<std::int64_t>(std::llround(dt / bin_width_s)) +
                       static_cast<std::int64_t>(half_bins);
      if (bin >= 0 && bin < static_cast<std::int64_t>(h.counts.size()))
        ++h.counts[static_cast<std::size_t>(bin)];
    }
  }
  return h;
}

std::uint64_t count_coincidences(const std::vector<double>& clicks_a,
                                 const std::vector<double>& clicks_b, double window_s,
                                 double offset_s) {
  if (window_s <= 0) throw std::invalid_argument("count_coincidences: window <= 0");
  if (!std::is_sorted(clicks_a.begin(), clicks_a.end()) ||
      !std::is_sorted(clicks_b.begin(), clicks_b.end()))
    throw std::invalid_argument("count_coincidences: click streams must be sorted");

  const double half = window_s / 2.0;
  std::uint64_t n = 0;
  std::size_t lo = 0;
  for (const double ta : clicks_a) {
    const double center = ta - offset_s;
    while (lo < clicks_b.size() && clicks_b[lo] < center - half) ++lo;
    for (std::size_t j = lo; j < clicks_b.size() && clicks_b[j] <= center + half; ++j) ++n;
  }
  return n;
}

CarResult measure_car(const std::vector<double>& clicks_a,
                      const std::vector<double>& clicks_b, double window_s,
                      double side_window_spacing_s, int num_side_windows) {
  if (num_side_windows < 1)
    throw std::invalid_argument("measure_car: need at least one side window");
  if (side_window_spacing_s <= window_s)
    throw std::invalid_argument("measure_car: side windows overlap the peak");

  CarResult r;
  r.coincidences = static_cast<double>(count_coincidences(clicks_a, clicks_b, window_s));

  double acc_total = 0;
  for (int i = 1; i <= num_side_windows; ++i) {
    const double offset =
        ((i % 2 == 0) ? -1.0 : 1.0) * side_window_spacing_s * ((i + 1) / 2);
    acc_total +=
        static_cast<double>(count_coincidences(clicks_a, clicks_b, window_s, offset));
  }
  r.accidentals = acc_total / num_side_windows;

  if (r.accidentals <= 0) {
    // No accidental observed: report a lower bound using 1 count.
    r.accidentals = 1.0 / num_side_windows;
  }
  r.car = r.coincidences / r.accidentals;
  // Poisson propagation: relative errors add in quadrature.
  const double rel_c = r.coincidences > 0 ? 1.0 / std::sqrt(r.coincidences) : 1.0;
  const double rel_a = 1.0 / std::sqrt(std::max(1.0, acc_total));
  r.car_err = r.car * std::sqrt(rel_c * rel_c + rel_a * rel_a);
  return r;
}

}  // namespace qfc::detect
