#include "qfc/sfwm/phase_matching.hpp"

#include <cmath>
#include <stdexcept>

namespace qfc::sfwm {

double type0_energy_mismatch_hz(const MicroringResonator& ring, double pump_hz, int k,
                                Polarization pol) {
  if (k == 0) throw std::invalid_argument("type0_energy_mismatch: k must be nonzero");
  const int mp = ring.mode_number_near(pump_hz, pol);
  const double nu_p = ring.resonance_frequency_hz(mp, pol);
  const double nu_s = ring.resonance_frequency_hz(mp + k, pol);
  const double nu_i = ring.resonance_frequency_hz(mp - k, pol);
  return nu_s + nu_i - 2.0 * nu_p;
}

double type2_energy_mismatch_hz(const MicroringResonator& ring, double pump_te_hz,
                                double pump_tm_hz, int k) {
  if (k == 0) throw std::invalid_argument("type2_energy_mismatch: k must be nonzero");
  const int m_te = ring.mode_number_near(pump_te_hz, Polarization::TE);
  const int m_tm = ring.mode_number_near(pump_tm_hz, Polarization::TM);
  const double nu_pte = ring.resonance_frequency_hz(m_te, Polarization::TE);
  const double nu_ptm = ring.resonance_frequency_hz(m_tm, Polarization::TM);
  // Signal emitted on the TE grid above the TE pump, idler on the TM grid
  // below the TM pump (the mirrored assignment has the same |mismatch| by
  // symmetry of the grids).
  const double nu_s = ring.resonance_frequency_hz(m_te + k, Polarization::TE);
  const double nu_i = ring.resonance_frequency_hz(m_tm - k, Polarization::TM);
  return nu_s + nu_i - (nu_pte + nu_ptm);
}

double lorentzian_pm_factor(double mismatch_hz, double linewidth_s_hz,
                            double linewidth_i_hz) {
  if (linewidth_s_hz <= 0 || linewidth_i_hz <= 0)
    throw std::invalid_argument("lorentzian_pm_factor: linewidth <= 0");
  const double x = 2.0 * mismatch_hz / (linewidth_s_hz + linewidth_i_hz);
  return 1.0 / (1.0 + x * x);
}

double stimulated_fwm_detuning_hz(const MicroringResonator& ring, double pump_te_hz,
                                  double pump_tm_hz) {
  const double nu_pte =
      ring.nearest_resonance_hz(pump_te_hz, Polarization::TE);
  const double nu_ptm =
      ring.nearest_resonance_hz(pump_tm_hz, Polarization::TM);

  // Bragg-scattering / stimulated products. With two pumps P_TE, P_TM the
  // bright processes are 2ν_TE − ν_TM (TM-polarized product) and
  // 2ν_TM − ν_TE (TE-polarized product); each needs a resonance of its own
  // polarization to build up.
  const double prod_tm = 2.0 * nu_pte - nu_ptm;
  const double prod_te = 2.0 * nu_ptm - nu_pte;
  const double det_tm =
      std::abs(prod_tm - ring.nearest_resonance_hz(prod_tm, Polarization::TM));
  const double det_te =
      std::abs(prod_te - ring.nearest_resonance_hz(prod_te, Polarization::TE));
  return std::min(det_tm, det_te);
}

double stimulated_fwm_suppression_db(const MicroringResonator& ring, double pump_te_hz,
                                     double pump_tm_hz) {
  const double det = stimulated_fwm_detuning_hz(ring, pump_te_hz, pump_tm_hz);
  // Both product polarizations have (near-)equal linewidths in our model;
  // use the TE linewidth at the TE pump as the reference scale.
  const double lw = ring.linewidth_hz(pump_te_hz, Polarization::TE);
  const double x = 2.0 * det / lw;
  return 10.0 * std::log10(1.0 + x * x);
}

double te_tm_grid_offset_hz(const MicroringResonator& ring, double near_hz) {
  const double te = ring.nearest_resonance_hz(near_hz, Polarization::TE);
  const double tm = ring.nearest_resonance_hz(te, Polarization::TM);
  const double fsr = ring.fsr_hz(near_hz, Polarization::TM);
  double off = tm - te;
  while (off > fsr / 2) off -= fsr;
  while (off <= -fsr / 2) off += fsr;
  return off;
}

}  // namespace qfc::sfwm
