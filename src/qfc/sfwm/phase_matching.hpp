#pragma once

/// \file phase_matching.hpp
/// Energy-conservation / phase-matching bookkeeping on the resonance grid.
/// In a microring, momentum conservation is automatic for resonances
/// (mode numbers satisfy m_s + m_i = 2 m_p); what remains is *energy*
/// mismatch: the generated photons must sit on resonances whose frequencies
/// sum to the pump-photon sum. Residual dispersion detunes the outer
/// channels; the type-II TE/TM offset detunes the *stimulated* process.

#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"

namespace qfc::sfwm {

using photonics::MicroringResonator;
using photonics::Polarization;

/// Energy mismatch Δν(k) = ν_s(k) + ν_i(k) − 2 ν_p for type-0 SFWM on the
/// resonance grid of the given polarization; ν_p is the resonance nearest
/// `pump_hz`, signal/idler are the resonances k FSRs above/below.
double type0_energy_mismatch_hz(const MicroringResonator& ring, double pump_hz, int k,
                                Polarization pol = Polarization::TE);

/// Energy mismatch for type-II: signal on the TE grid (+k from the TE
/// pump), idler on the TM grid (−k from the TM pump), against
/// ν_TE + ν_TM of the two pump resonances.
double type2_energy_mismatch_hz(const MicroringResonator& ring, double pump_te_hz,
                                double pump_tm_hz, int k);

/// Lorentzian-overlap pair-generation suppression for a given energy
/// mismatch and the two emitting-resonance linewidths:
///   η = 1 / (1 + (2Δν/(δν_s + δν_i))²).
double lorentzian_pm_factor(double mismatch_hz, double linewidth_s_hz,
                            double linewidth_i_hz);

/// Detuning of the *stimulated* (classical, bright) FWM products
/// 2ν_TE − ν_TM and 2ν_TM − ν_TE from the nearest resonance of the
/// polarization that the product field would have (TM and TE
/// respectively). Returns the smaller of the two detunings: if it is large
/// compared to the linewidth, stimulated FWM cannot build up (paper
/// Sec. III).
double stimulated_fwm_detuning_hz(const MicroringResonator& ring, double pump_te_hz,
                                  double pump_tm_hz);

/// Suppression of the stimulated process in dB:
/// 10 log10(1 + (2Δ/δν)²) for the detuning above.
double stimulated_fwm_suppression_db(const MicroringResonator& ring, double pump_te_hz,
                                     double pump_tm_hz);

/// TE/TM resonance-grid offset near the given frequency, folded into
/// (−FSR/2, FSR/2]: the design parameter the paper tunes via the waveguide
/// cross-section.
double te_tm_grid_offset_hz(const MicroringResonator& ring, double near_hz);

}  // namespace qfc::sfwm
