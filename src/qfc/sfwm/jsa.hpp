#pragma once

/// \file jsa.hpp
/// Joint spectral amplitude of an SFWM photon pair from one resonance pair,
/// and its Schmidt decomposition. This quantifies the paper's Sec. II/V
/// claim that matching the pump bandwidth to the ring linewidth yields
/// (near-)pure, single-temporal-mode photons.

#include <cstddef>

#include "qfc/linalg/matrix.hpp"

namespace qfc::sfwm {

/// Parameters of a sampled JSA  A(ν_s, ν_i) ∝ α(ν_s + ν_i) L_s(ν_s) L_i(ν_i)
/// with a Gaussian two-photon pump envelope α and Lorentzian resonance
/// amplitudes L. Frequencies are detunings from the respective resonance
/// centers; energy conservation couples them through α.
struct JsaParams {
  double pump_bandwidth_hz = 0;    ///< intensity FWHM of the *pump pulse* spectrum
  double ring_linewidth_s_hz = 0;  ///< signal resonance FWHM
  double ring_linewidth_i_hz = 0;  ///< idler resonance FWHM
  std::size_t grid_points = 64;    ///< samples per axis
  double span_linewidths = 12.0;   ///< grid half-span in units of the larger scale
};

/// Sampled JSA matrix (signal index = row, idler index = column),
/// normalized to unit Frobenius norm.
linalg::CMat sample_jsa(const JsaParams& p);

struct SchmidtResult {
  linalg::RVec coefficients;  ///< λ_n, descending, Σλ_n² = 1
  double schmidt_number = 0;  ///< K = 1/Σλ_n⁴
  double purity = 0;          ///< heralded-photon purity = 1/K
  double entropy_bits = 0;    ///< entanglement entropy −Σλ²log₂λ²
};

/// Schmidt decomposition of a sampled JSA (any rectangular complex matrix;
/// normalized internally).
SchmidtResult schmidt_decompose(const linalg::CMat& jsa);

/// Batch Schmidt decomposition: element i equals schmidt_decompose(jsas[i])
/// bitwise, but all SVDs go through the linalg batch seam in one call so
/// the Blocked backend fans them out across its worker pool. Use for
/// pump-bandwidth / linewidth ablation sweeps.
std::vector<SchmidtResult> schmidt_decompose_batch(const std::vector<linalg::CMat>& jsas);

/// Heralded-photon spectral purity for an SFWM source whose pump bandwidth
/// and (equal) resonance linewidths are given — convenience wrapper around
/// sample_jsa + schmidt_decompose.
double heralded_purity(double pump_bandwidth_hz, double ring_linewidth_hz,
                       std::size_t grid_points = 64);

/// FWHM of the signal photon's marginal spectrum |∫A|² for a JSA sampled
/// with the given parameters (linear interpolation between grid points).
/// The paper's Sec. V condition — "photons have the same bandwidth as the
/// pump" — holds when this equals the pump bandwidth, which requires
/// pump BW ≈ ring linewidth.
double marginal_fwhm_hz(const JsaParams& p);

}  // namespace qfc::sfwm
