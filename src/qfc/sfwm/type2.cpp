#include "qfc/sfwm/type2.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/sfwm/phase_matching.hpp"

namespace qfc::sfwm {

using photonics::pi;

Type2PairSource::Type2PairSource(const MicroringResonator& ring,
                                 photonics::CrossPolarizedPump pump,
                                 int num_channel_pairs, SfwmEfficiency eff)
    : ring_(ring), pump_(pump), num_pairs_(num_channel_pairs), eff_(eff) {
  pump_.validate();
  if (num_channel_pairs < 1)
    throw std::invalid_argument("Type2PairSource: need at least one channel pair");
}

double Type2PairSource::effective_intracavity_power_w() const {
  // Both pumps are resonant on their own polarization's resonance; the
  // type-II gain goes as the geometric mean of the circulating powers.
  const double fe = ring_.peak_field_enhancement();
  return std::sqrt(pump_.power_te_w * fe * pump_.power_tm_w * fe);
}

double Type2PairSource::photon_linewidth_hz() const {
  return ring_.linewidth_hz(pump_.frequency_te_hz, photonics::Polarization::TE);
}

double Type2PairSource::coherence_time_s() const {
  return 1.0 / (pi * photon_linewidth_hz());
}

double Type2PairSource::pair_rate_hz(int k) const {
  if (k < 1 || k > num_pairs_)
    throw std::out_of_range("Type2PairSource::pair_rate_hz: bad channel index");
  const double mismatch =
      type2_energy_mismatch_hz(ring_, pump_.frequency_te_hz, pump_.frequency_tm_hz, k);
  const double lw = photon_linewidth_hz();
  const double pm = lorentzian_pm_factor(mismatch, lw, lw);

  const double g = eff_.gamma_w_m * ring_.circumference_m() * effective_intracavity_power_w();
  const double esc = drop_port_escape_efficiency(ring_);
  return eff_.brightness_calibration * g * g * (pi / 2.0) * lw * esc * esc * pm;
}

std::vector<double> Type2PairSource::pair_rates() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_pairs_));
  for (int k = 1; k <= num_pairs_; ++k) out.push_back(pair_rate_hz(k));
  return out;
}

double Type2PairSource::stimulated_suppression_db() const {
  return stimulated_fwm_suppression_db(ring_, pump_.frequency_te_hz,
                                       pump_.frequency_tm_hz);
}

double Type2PairSource::grid_offset_hz() const {
  return te_tm_grid_offset_hz(ring_, pump_.frequency_te_hz);
}

double Type2PairSource::mean_pairs_per_coherence_time(int k) const {
  return pair_rate_hz(k) * coherence_time_s();
}

OpoModel::OpoModel(const MicroringResonator& ring, SfwmEfficiency eff,
                   double slope_efficiency)
    : ring_(ring), eff_(eff), slope_(slope_efficiency) {
  if (slope_ <= 0 || slope_ > 1)
    throw std::invalid_argument("OpoModel: slope efficiency outside (0,1]");

  // Threshold: round-trip parametric gain γ L P_cav equals round-trip loss
  // 1 − t1 t2 a. Recover ρ = t1 t2 a from the finesse.
  const double f = ring_.finesse();
  const double x = (-pi + std::sqrt(pi * pi + 4.0 * f * f)) / (2.0 * f);
  const double rho = x * x;
  const double round_trip_loss = 1.0 - rho;
  const double fe2 = ring_.peak_field_enhancement();
  threshold_w_ =
      round_trip_loss / (eff_.gamma_w_m * ring_.circumference_m() * fe2);

  // Spontaneous (below-threshold) emission: pair rate x photon energy.
  // P_spont(P) = C (γ L FE² P)² (π/2) δν · hν  ≡  c · P².
  const double lw = ring_.linewidth_hz(photonics::itu_anchor_hz,
                                       photonics::Polarization::TE);
  const double g1 = eff_.gamma_w_m * ring_.circumference_m() * fe2;  // per watt
  spontaneous_coefficient_w_per_w2_ =
      eff_.brightness_calibration * g1 * g1 * (pi / 2.0) * lw *
      photonics::photon_energy_J(photonics::itu_anchor_hz);
}

double OpoModel::threshold_w() const { return threshold_w_; }

double OpoModel::output_power_w(double pump_power_w) const {
  if (pump_power_w < 0) throw std::invalid_argument("OpoModel: negative pump power");
  const double spont = spontaneous_coefficient_w_per_w2_ * pump_power_w * pump_power_w;
  if (pump_power_w <= threshold_w_) return spont;
  const double at_threshold =
      spontaneous_coefficient_w_per_w2_ * threshold_w_ * threshold_w_;
  return at_threshold + slope_ * (pump_power_w - threshold_w_);
}

}  // namespace qfc::sfwm
