#include "qfc/sfwm/jsa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/svd.hpp"
#include "qfc/photonics/microring.hpp"

namespace qfc::sfwm {

using linalg::cplx;
using linalg::CMat;

CMat sample_jsa(const JsaParams& p) {
  if (p.pump_bandwidth_hz <= 0 || p.ring_linewidth_s_hz <= 0 || p.ring_linewidth_i_hz <= 0)
    throw std::invalid_argument("sample_jsa: bandwidths must be positive");
  if (p.grid_points < 8) throw std::invalid_argument("sample_jsa: grid too coarse");

  // Two-photon (energy-sum) envelope: the SFWM pump enters twice, so the
  // envelope is the pump spectrum convolved with itself -> for a Gaussian,
  // √2 wider in standard deviation.
  const double sigma_pump =
      p.pump_bandwidth_hz / (2.0 * std::sqrt(2.0 * std::log(2.0)));  // FWHM -> σ (intensity)
  const double sigma_2ph = std::sqrt(2.0) * sigma_pump;

  const double scale = std::max(
      {p.pump_bandwidth_hz, p.ring_linewidth_s_hz, p.ring_linewidth_i_hz});
  const double half_span = p.span_linewidths * scale / 2.0;
  const std::size_t n = p.grid_points;

  CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double det_s =
        -half_span + (2.0 * half_span) * static_cast<double>(i) / static_cast<double>(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      const double det_i =
          -half_span + (2.0 * half_span) * static_cast<double>(j) / static_cast<double>(n - 1);
      const double sum = det_s + det_i;
      // Gaussian amplitude envelope of the photon-pair energy sum.
      const double env = std::exp(-sum * sum / (4.0 * sigma_2ph * sigma_2ph));
      const cplx ls = photonics::MicroringResonator::lorentzian_amplitude(
          det_s, p.ring_linewidth_s_hz);
      const cplx li = photonics::MicroringResonator::lorentzian_amplitude(
          det_i, p.ring_linewidth_i_hz);
      a(i, j) = env * ls * li;
    }
  }
  const double norm = a.frobenius_norm();
  if (norm <= 0) throw std::invalid_argument("sample_jsa: vanishing amplitude");
  a *= cplx(1.0 / norm, 0);
  return a;
}

namespace {

CMat normalized_jsa(const CMat& jsa) {
  CMat a = jsa;
  const double norm = a.frobenius_norm();
  if (norm <= 0) throw std::invalid_argument("schmidt_decompose: zero matrix");
  a *= cplx(1.0 / norm, 0);
  return a;
}

SchmidtResult schmidt_from_sigma(linalg::RVec sigma) {
  SchmidtResult res;
  res.coefficients = std::move(sigma);
  double sum4 = 0;
  double entropy = 0;
  for (double lam : res.coefficients) {
    const double p2 = lam * lam;
    sum4 += p2 * p2;
    if (p2 > 1e-15) entropy -= p2 * std::log2(p2);
  }
  res.schmidt_number = 1.0 / sum4;
  res.purity = sum4;
  res.entropy_bits = entropy;
  return res;
}

}  // namespace

SchmidtResult schmidt_decompose(const CMat& jsa) {
  return schmidt_from_sigma(linalg::svd(normalized_jsa(jsa)).sigma);
}

std::vector<SchmidtResult> schmidt_decompose_batch(const std::vector<CMat>& jsas) {
  std::vector<CMat> normed;
  normed.reserve(jsas.size());
  for (const auto& jsa : jsas) normed.push_back(normalized_jsa(jsa));
  auto svds = linalg::svd_batch(normed);
  std::vector<SchmidtResult> out;
  out.reserve(svds.size());
  for (auto& s : svds) out.push_back(schmidt_from_sigma(std::move(s.sigma)));
  return out;
}

double heralded_purity(double pump_bandwidth_hz, double ring_linewidth_hz,
                       std::size_t grid_points) {
  JsaParams p;
  p.pump_bandwidth_hz = pump_bandwidth_hz;
  p.ring_linewidth_s_hz = ring_linewidth_hz;
  p.ring_linewidth_i_hz = ring_linewidth_hz;
  p.grid_points = grid_points;
  return schmidt_decompose(sample_jsa(p)).purity;
}

double marginal_fwhm_hz(const JsaParams& p) {
  const CMat a = sample_jsa(p);
  const std::size_t n = a.rows();

  // Signal marginal: row sums of |A|².
  std::vector<double> marg(n, 0.0);
  double peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) marg[i] += std::norm(a(i, j));
    peak = std::max(peak, marg[i]);
  }
  if (peak <= 0) throw std::invalid_argument("marginal_fwhm_hz: empty marginal");

  // Grid geometry must match sample_jsa.
  const double scale = std::max(
      {p.pump_bandwidth_hz, p.ring_linewidth_s_hz, p.ring_linewidth_i_hz});
  const double half_span = p.span_linewidths * scale / 2.0;
  const auto axis = [&](double idx) {
    return -half_span + 2.0 * half_span * idx / static_cast<double>(n - 1);
  };

  // Find half-maximum crossings from both ends with linear interpolation.
  const double half = peak / 2.0;
  double lo = -half_span, hi = half_span;
  for (std::size_t i = 1; i < n; ++i) {
    if (marg[i - 1] < half && marg[i] >= half) {
      const double f = (half - marg[i - 1]) / (marg[i] - marg[i - 1]);
      lo = axis(static_cast<double>(i - 1) + f);
      break;
    }
  }
  for (std::size_t i = n - 1; i > 0; --i) {
    if (marg[i] < half && marg[i - 1] >= half) {
      const double f = (half - marg[i]) / (marg[i - 1] - marg[i]);
      hi = axis(static_cast<double>(i) - f);
      break;
    }
  }
  return hi - lo;
}

}  // namespace qfc::sfwm
