#pragma once

/// \file pair_source.hpp
/// Photon-pair generation rates from spontaneous FWM in the ring, for CW
/// (Sec. II) and pulsed/double-pulse (Sec. IV/V) pumping.
///
/// Model (documented substitution for the full quantum nonlinear-optics
/// calculation): the on-chip generated pair rate into symmetric channel
/// pair k is
///
///   R(k) = C · (γ L P_cav)² · (π/2) δν · η_PM(k) · η_esc²
///
/// with γ the nonlinear parameter, L the ring circumference, P_cav the
/// intracavity pump power (input power x field enhancement), δν the
/// resonance linewidth (the SFWM "gain bandwidth" per channel), η_PM the
/// Lorentzian energy-conservation factor from dispersion, and η_esc the
/// probability that a generated photon exits through the drop port. C is a
/// single dimensionless brightness calibration (default chosen so the
/// Sec. II preset reproduces ref [6]'s detected rates; see DESIGN.md §4).

#include <vector>

#include "qfc/photonics/comb_grid.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"

namespace qfc::sfwm {

using photonics::CombGrid;
using photonics::MicroringResonator;
using photonics::Polarization;

/// Nonlinear/calibration constants of the SFWM model.
struct SfwmEfficiency {
  /// Hydex nonlinear parameter γ ≈ 0.25 W⁻¹m⁻¹ (Moss et al. 2013).
  double gamma_w_m = 0.25;
  /// Dimensionless brightness calibration C (absorbs mode-overlap and
  /// vacuum-normalization factors not modeled explicitly; fitted once so
  /// the Sec. II preset reproduces ref [6]'s detected pair rates).
  double brightness_calibration = 32.0;
};

/// Escape efficiency through the drop port: fraction of the loaded decay
/// rate contributed by the drop coupler.
double drop_port_escape_efficiency(const MicroringResonator& ring);

/// CW-pumped multiplexed pair source (heralded single photon config).
class CwPairSource {
 public:
  CwPairSource(const MicroringResonator& ring, photonics::CwPump pump,
               int num_channel_pairs, SfwmEfficiency eff = {});

  const MicroringResonator& ring() const noexcept { return ring_; }
  const CombGrid& grid() const noexcept { return grid_; }
  const photonics::CwPump& pump() const noexcept { return pump_; }

  /// Intracavity pump power = input power x on-resonance enhancement.
  double intracavity_power_w() const;

  /// On-chip generated pair rate into channel pair k (pairs/s).
  double pair_rate_hz(int k) const;

  /// Rates for k = 1..num_pairs.
  std::vector<double> pair_rates() const;

  /// Linewidth of the emitted photons (= loaded ring linewidth).
  double photon_linewidth_hz() const;

  /// 1/e coherence time of the Lorentzian photon: τ = 1/(π δν).
  double coherence_time_s() const;

  /// Mean pair number within one photon coherence time — the μ that sets
  /// multi-pair contamination for CW operation.
  double mean_pairs_per_coherence_time(int k) const;

 private:
  MicroringResonator ring_;
  photonics::CwPump pump_;
  CombGrid grid_;
  SfwmEfficiency eff_;
};

/// Pulsed pair source (one pump pulse per time bin).
class PulsedPairSource {
 public:
  /// \param pump   double-pulse configuration; rates are *per single pulse*
  ///               carrying half the pulse-pair energy.
  PulsedPairSource(const MicroringResonator& ring, photonics::DoublePulsePump pump,
                   int num_channel_pairs, SfwmEfficiency eff = {});

  const MicroringResonator& ring() const noexcept { return ring_; }
  const CombGrid& grid() const noexcept { return grid_; }
  const photonics::DoublePulsePump& pump() const noexcept { return pump_; }

  /// Transform-limited Gaussian pump spectral FWHM for the pulse width.
  double pump_bandwidth_hz() const;

  /// Effective field enhancement for a pulse whose bandwidth may exceed
  /// the resonance linewidth: FE² · δν/(δν + Δν_pump).
  double effective_enhancement() const;

  /// Mean pairs generated per single pulse into channel pair k.
  double mean_pairs_per_pulse(int k) const;

  std::vector<double> mean_pairs_all() const;

 private:
  MicroringResonator ring_;
  photonics::DoublePulsePump pump_;
  CombGrid grid_;
  SfwmEfficiency eff_;
};

}  // namespace qfc::sfwm
