#pragma once

/// \file type2.hpp
/// Type-II spontaneous FWM (paper Sec. III): bichromatic, orthogonally
/// polarized pumping generates cross-polarized photon pairs while the
/// designed TE/TM resonance offset suppresses the competing stimulated
/// process. Includes the optical parametric oscillation (OPO) power curve
/// whose threshold the paper reports at 14 mW.

#include <vector>

#include "qfc/photonics/comb_grid.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"
#include "qfc/sfwm/pair_source.hpp"

namespace qfc::sfwm {

class Type2PairSource {
 public:
  Type2PairSource(const MicroringResonator& ring, photonics::CrossPolarizedPump pump,
                  int num_channel_pairs, SfwmEfficiency eff = {});

  const MicroringResonator& ring() const noexcept { return ring_; }
  const photonics::CrossPolarizedPump& pump() const noexcept { return pump_; }

  /// Geometric-mean intracavity pump power √(P_TE,cav · P_TM,cav).
  double effective_intracavity_power_w() const;

  /// On-chip cross-polarized pair rate into channel pair k (signal TE at
  /// +k, idler TM at −k).
  double pair_rate_hz(int k) const;

  std::vector<double> pair_rates() const;

  /// Suppression of stimulated FWM enforced by the TE/TM grid offset, dB.
  double stimulated_suppression_db() const;

  /// TE/TM resonance offset at the pump (the design parameter).
  double grid_offset_hz() const;

  double photon_linewidth_hz() const;
  double coherence_time_s() const;

  /// Mean pairs per coherence time (multi-pair parameter for CAR).
  double mean_pairs_per_coherence_time(int k) const;

 private:
  MicroringResonator ring_;
  photonics::CrossPolarizedPump pump_;
  int num_pairs_;
  SfwmEfficiency eff_;
};

/// Degenerate bichromatically-pumped OPO: spontaneous (quadratic) emission
/// below threshold, linear conversion above (paper Sec. III: threshold at
/// 14 mW total pump power).
class OpoModel {
 public:
  /// \param ring  the type-II device
  /// \param eff   nonlinear constants (threshold ∝ 1/γ)
  /// \param slope_efficiency  above-threshold output/input slope
  OpoModel(const MicroringResonator& ring, SfwmEfficiency eff = {},
           double slope_efficiency = 0.12);

  /// Total pump power at which round-trip parametric gain equals round-trip
  /// loss: P_th = (1 − t1 t2 a)/(γ L FE²).
  double threshold_w() const;

  /// Emitted parametric power for a given total pump power: quadratic in P
  /// below threshold (spontaneous), linear above.
  double output_power_w(double pump_power_w) const;

  /// True if the given pump power is above threshold.
  bool oscillating(double pump_power_w) const { return pump_power_w > threshold_w(); }

 private:
  MicroringResonator ring_;
  SfwmEfficiency eff_;
  double slope_;
  double threshold_w_;
  double spontaneous_coefficient_w_per_w2_;
};

}  // namespace qfc::sfwm
