#include "qfc/sfwm/pair_source.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/sfwm/phase_matching.hpp"

namespace qfc::sfwm {

using photonics::pi;

double drop_port_escape_efficiency(const MicroringResonator& ring) {
  // Decompose the loaded round-trip loss 1 - t1 t2 a into the three decay
  // channels (input coupler, drop coupler, propagation loss) to first
  // order; the drop coupler's share is the escape probability.
  // We recover t1, t2, a from the public interface via finesse identities
  // is impossible, so the ring exposes them indirectly: use through/drop
  // transfer at resonance instead. Simpler and exact enough: on resonance,
  // drop power T_d = κ1²κ2² a /(1-t1t2a)²; the fraction of generated
  // photons leaving via the drop port is κ2²/(κ1² + κ2² + αL_loss) with
  // αL_loss ≈ 1 - a². We approximate with symmetric couplers (the presets
  // are symmetric): η_esc ≈ κ²/(2κ² + 1 - a²).
  const double a = ring.round_trip_amplitude();
  // Recover κ² from the finesse: ρ = t1 t2 a and for symmetric couplers
  // t² = ρ/a, κ² = 1 - t².
  const double f = ring.finesse();
  // Solve π√ρ/(1-ρ) = F for ρ.
  const double x = (-pi + std::sqrt(pi * pi + 4.0 * f * f)) / (2.0 * f);
  const double rho = x * x;
  const double t2 = rho / a;
  const double kappa2 = std::max(0.0, 1.0 - t2);
  const double loss = std::max(0.0, 1.0 - a * a);
  return kappa2 / (2.0 * kappa2 + loss);
}

namespace {

/// Shared rate kernel: C (γ L P)² (π/2) δν η_esc².
double rate_kernel(const MicroringResonator& ring, double p_cav_w, double linewidth_hz,
                   const SfwmEfficiency& eff) {
  const double g = eff.gamma_w_m * ring.circumference_m() * p_cav_w;
  const double esc = drop_port_escape_efficiency(ring);
  return eff.brightness_calibration * g * g * (pi / 2.0) * linewidth_hz * esc * esc;
}

}  // namespace

CwPairSource::CwPairSource(const MicroringResonator& ring, photonics::CwPump pump,
                           int num_channel_pairs, SfwmEfficiency eff)
    : ring_(ring),
      pump_(pump),
      grid_(ring.nearest_resonance_hz(pump.frequency_hz, Polarization::TE),
            ring.fsr_hz(pump.frequency_hz, Polarization::TE), num_channel_pairs),
      eff_(eff) {
  pump_.validate();
  if (eff.gamma_w_m <= 0 || eff.brightness_calibration <= 0)
    throw std::invalid_argument("CwPairSource: non-positive efficiency constants");
}

double CwPairSource::intracavity_power_w() const {
  return pump_.power_w * ring_.peak_field_enhancement();
}

double CwPairSource::photon_linewidth_hz() const {
  return ring_.linewidth_hz(grid_.pump_hz(), Polarization::TE);
}

double CwPairSource::coherence_time_s() const {
  return 1.0 / (pi * photon_linewidth_hz());
}

double CwPairSource::pair_rate_hz(int k) const {
  if (k < 1 || k > grid_.num_pairs())
    throw std::out_of_range("CwPairSource::pair_rate_hz: bad channel index");
  const double mismatch =
      type0_energy_mismatch_hz(ring_, grid_.pump_hz(), k, Polarization::TE);
  const double lw_s = ring_.linewidth_hz(grid_.pair(k).signal.frequency_hz, Polarization::TE);
  const double lw_i = ring_.linewidth_hz(grid_.pair(k).idler.frequency_hz, Polarization::TE);
  const double pm = lorentzian_pm_factor(mismatch, lw_s, lw_i);
  return rate_kernel(ring_, intracavity_power_w(), photon_linewidth_hz(), eff_) * pm;
}

std::vector<double> CwPairSource::pair_rates() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(grid_.num_pairs()));
  for (int k = 1; k <= grid_.num_pairs(); ++k) out.push_back(pair_rate_hz(k));
  return out;
}

double CwPairSource::mean_pairs_per_coherence_time(int k) const {
  return pair_rate_hz(k) * coherence_time_s();
}

PulsedPairSource::PulsedPairSource(const MicroringResonator& ring,
                                   photonics::DoublePulsePump pump,
                                   int num_channel_pairs, SfwmEfficiency eff)
    : ring_(ring),
      pump_(pump),
      grid_(ring.nearest_resonance_hz(pump.frequency_hz, Polarization::TE),
            ring.fsr_hz(pump.frequency_hz, Polarization::TE), num_channel_pairs),
      eff_(eff) {
  pump_.validate();
}

double PulsedPairSource::pump_bandwidth_hz() const {
  // Transform-limited Gaussian: Δν Δt = 2 ln2 / π ≈ 0.441.
  return 2.0 * std::log(2.0) / (pi * pump_.train.pulse_fwhm_s);
}

double PulsedPairSource::effective_enhancement() const {
  const double lw = ring_.linewidth_hz(grid_.pump_hz(), Polarization::TE);
  return ring_.peak_field_enhancement() * lw / (lw + pump_bandwidth_hz());
}

double PulsedPairSource::mean_pairs_per_pulse(int k) const {
  if (k < 1 || k > grid_.num_pairs())
    throw std::out_of_range("PulsedPairSource::mean_pairs_per_pulse: bad channel index");
  // Each of the two bins carries half the pulse energy.
  const double energy_per_bin = pump_.train.pulse_energy_J() / 2.0;
  const double peak_power = 0.94 * energy_per_bin / pump_.train.pulse_fwhm_s;  // Gaussian
  const double p_cav = peak_power * effective_enhancement();

  const double mismatch =
      type0_energy_mismatch_hz(ring_, grid_.pump_hz(), k, Polarization::TE);
  const double lw_s = ring_.linewidth_hz(grid_.pair(k).signal.frequency_hz, Polarization::TE);
  const double lw_i = ring_.linewidth_hz(grid_.pair(k).idler.frequency_hz, Polarization::TE);
  const double pm = lorentzian_pm_factor(mismatch, lw_s, lw_i);

  // Rate x interaction time: the pair-emission window of a pulse stored in
  // the cavity is the cavity photon lifetime 1/(π δν).
  const double lw = ring_.linewidth_hz(grid_.pump_hz(), Polarization::TE);
  const double interaction_time = 1.0 / (pi * lw);
  return rate_kernel(ring_, p_cav, lw, eff_) * pm * interaction_time;
}

std::vector<double> PulsedPairSource::mean_pairs_all() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(grid_.num_pairs()));
  for (int k = 1; k <= grid_.num_pairs(); ++k) out.push_back(mean_pairs_per_pulse(k));
  return out;
}

}  // namespace qfc::sfwm
