#pragma once

/// \file tomography.hpp
/// Quantum state tomography of time-bin qubit registers (paper Sec. V):
/// measurement-setting generation (each qubit in Z, X or Y — arrival time
/// or interferometer phase 0 / π/2), count simulation, linear-inversion
/// and maximum-likelihood (iterative RρR) reconstruction.

#include <cstdint>
#include <string>
#include <vector>

#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::tomo {

/// One measurement setting: a basis label per qubit, e.g. "XY" for a
/// two-qubit setting measuring X on qubit 0 and Y on qubit 1.
struct MeasurementSetting {
  std::string bases;  ///< characters from {X, Y, Z}

  std::size_t num_qubits() const { return bases.size(); }
};

/// All 3^n settings for n qubits, in lexicographic order (X < Y < Z).
std::vector<MeasurementSetting> all_settings(std::size_t num_qubits);

/// Projector onto outcome o (bitmask, bit q = 1 means the −1 eigenstate on
/// qubit q, with qubit 0 the most significant bit) of the given setting.
linalg::CMat outcome_projector(const MeasurementSetting& s, std::size_t outcome);

/// Counts observed for one setting: counts[outcome] for all 2^n outcomes.
struct SettingCounts {
  MeasurementSetting setting;
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const;
};

struct NoiseKnobs {
  /// RMS analyzer-phase error applied to X/Y bases per setting (systematic
  /// within a setting, random across settings), radians.
  double analyzer_phase_rms_rad = 0.0;
  /// Flat accidental counts added to every outcome of every setting.
  double accidentals_per_outcome = 0.0;
};

/// Simulate tomography data: for each setting, Poisson counts around
/// shots_per_setting x outcome probability (+ noise knobs).
std::vector<SettingCounts> simulate_counts(const quantum::DensityMatrix& rho,
                                           double shots_per_setting,
                                           const NoiseKnobs& noise, rng::Xoshiro256& g);

/// Linear-inversion estimate: ρ = (1/2^n) Σ_s <σ_s> σ_s over all 4^n Pauli
/// strings, with each expectation estimated from a compatible setting
/// (I components marginalized). The result is Hermitian/unit-trace but can
/// be non-physical; project with linalg::project_to_density_matrix or feed
/// it to MLE.
linalg::CMat linear_inversion(const std::vector<SettingCounts>& data);

struct MleOptions {
  int max_iterations = 500;
  double convergence_tol = 1e-10;  ///< Frobenius norm of ρ update
};

struct MleResult {
  quantum::DensityMatrix rho;
  int iterations = 0;
  bool converged = false;
  double log_likelihood = 0;
};

/// Maximum-likelihood reconstruction via the iterative RρR algorithm
/// (Lvovsky 2004), seeded from the projected linear-inversion estimate.
MleResult maximum_likelihood(const std::vector<SettingCounts>& data,
                             const MleOptions& opts = {});

// ------------------------------------------------------------------------
// Dimension-agnostic RρR core, shared by the qubit path above and by the
// frequency-bin qudit MUB tomography in qfc::qudit.

/// One measured projector with its observed count.
struct ProjectorTerm {
  linalg::CMat projector;
  double count = 0;
};

struct RrrResult {
  linalg::CMat rho;  ///< physical (Hermitian, unit-trace, PSD) estimate
  int iterations = 0;
  bool converged = false;
  double log_likelihood = 0;
};

/// Iterative RρR maximum-likelihood reconstruction over an arbitrary list
/// of projector/count terms in any dimension. `seed` must be a Hermitian
/// unit-trace matrix of the right dimension (it is mixed with a sliver of
/// identity internally so no term starts at zero probability).
RrrResult rrr_reconstruct(const std::vector<ProjectorTerm>& terms,
                          const linalg::CMat& seed, const MleOptions& opts = {});

/// Batch RρR: element i equals rrr_reconstruct(problems[i], seeds[i], opts)
/// bitwise, but independent reconstructions fan out across the linalg
/// worker pool (one task per problem, fixed assignment — see the batch
/// contract in src/qfc/linalg/README.md). The R·ρ·R products *inside* one
/// iteration are data-dependent and stay sequential; this parallelizes
/// across problems, the shape of a tomography sweep.
std::vector<RrrResult> rrr_reconstruct_batch(
    const std::vector<std::vector<ProjectorTerm>>& problems,
    const std::vector<linalg::CMat>& seeds, const MleOptions& opts = {});

}  // namespace qfc::tomo
