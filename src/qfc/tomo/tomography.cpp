#include "qfc/tomo/tomography.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/error.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/quantum/pauli.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::tomo {

using linalg::cplx;
using linalg::CMat;
using linalg::CVec;

std::vector<MeasurementSetting> all_settings(std::size_t num_qubits) {
  if (num_qubits == 0 || num_qubits > 8)
    throw std::invalid_argument("all_settings: unsupported qubit count");
  std::vector<MeasurementSetting> out;
  std::size_t total = 1;
  for (std::size_t i = 0; i < num_qubits; ++i) total *= 3;
  out.reserve(total);
  const char bases[3] = {'X', 'Y', 'Z'};
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::string s(num_qubits, 'X');
    std::size_t rem = idx;
    for (std::size_t q = num_qubits; q-- > 0;) {
      s[q] = bases[rem % 3];
      rem /= 3;
    }
    out.push_back(MeasurementSetting{std::move(s)});
  }
  return out;
}

namespace {

/// Single-qubit eigenstate of basis b with sign (+1 for outcome bit 0).
CVec basis_eigenstate(char basis, int sign, double phase_error_rad) {
  switch (basis) {
    case 'X': return quantum::xy_eigenstate(0.0 + phase_error_rad, sign);
    case 'Y':
      return quantum::xy_eigenstate(photonics::pi / 2.0 + phase_error_rad, sign);
    case 'Z': {
      CVec v(2, cplx(0, 0));
      v[sign > 0 ? 0 : 1] = cplx(1, 0);
      return v;
    }
    default: throw std::invalid_argument("basis_eigenstate: basis must be X, Y or Z");
  }
}

CMat setting_outcome_projector(const MeasurementSetting& s, std::size_t outcome,
                               const std::vector<double>& phase_errors) {
  const std::size_t n = s.num_qubits();
  if (outcome >= (std::size_t{1} << n))
    throw std::out_of_range("outcome_projector: outcome out of range");
  CMat proj;
  for (std::size_t q = 0; q < n; ++q) {
    const int bit = (outcome >> (n - 1 - q)) & 1;
    const double err = phase_errors.empty() ? 0.0 : phase_errors[q];
    const CMat p1 = quantum::projector(basis_eigenstate(s.bases[q], bit ? -1 : +1, err));
    proj = (q == 0) ? p1 : linalg::kron(proj, p1);
  }
  return proj;
}

}  // namespace

CMat outcome_projector(const MeasurementSetting& s, std::size_t outcome) {
  return setting_outcome_projector(s, outcome, {});
}

std::uint64_t SettingCounts::total() const {
  std::uint64_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

std::vector<SettingCounts> simulate_counts(const quantum::DensityMatrix& rho,
                                           double shots_per_setting,
                                           const NoiseKnobs& noise, rng::Xoshiro256& g) {
  if (shots_per_setting <= 0)
    throw std::invalid_argument("simulate_counts: shots_per_setting <= 0");
  const std::size_t n = rho.num_qubits();
  const std::size_t num_outcomes = std::size_t{1} << n;

  std::vector<SettingCounts> out;
  for (const auto& s : all_settings(n)) {
    // Systematic analyzer phase error per qubit, fixed within the setting.
    std::vector<double> errs(n, 0.0);
    if (noise.analyzer_phase_rms_rad > 0)
      for (auto& e : errs) e = rng::sample_normal(g, 0.0, noise.analyzer_phase_rms_rad);

    SettingCounts sc;
    sc.setting = s;
    sc.counts.resize(num_outcomes);
    for (std::size_t o = 0; o < num_outcomes; ++o) {
      const double p = rho.probability(setting_outcome_projector(s, o, errs));
      const double mean = shots_per_setting * p + noise.accidentals_per_outcome;
      sc.counts[o] = rng::sample_poisson(g, mean);
    }
    out.push_back(std::move(sc));
  }
  return out;
}

namespace {

std::size_t checked_num_qubits(const std::vector<SettingCounts>& data) {
  if (data.empty()) throw std::invalid_argument("tomography: empty data");
  const std::size_t n = data.front().setting.num_qubits();
  for (const auto& d : data) {
    if (d.setting.num_qubits() != n)
      throw std::invalid_argument("tomography: inconsistent setting widths");
    if (d.counts.size() != (std::size_t{1} << n))
      throw std::invalid_argument("tomography: wrong outcome count");
  }
  return n;
}

}  // namespace

CMat linear_inversion(const std::vector<SettingCounts>& data) {
  const std::size_t n = checked_num_qubits(data);
  const std::size_t dim = std::size_t{1} << n;

  std::map<std::string, const SettingCounts*> by_setting;
  for (const auto& d : data) by_setting[d.setting.bases] = &d;

  CMat rho(dim, dim);
  // Identity term.
  for (std::size_t i = 0; i < dim; ++i) rho(i, i) = cplx(1.0, 0);

  // Enumerate all 4^n Pauli strings except the all-identity one.
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= 4;
  const char letters[4] = {'I', 'X', 'Y', 'Z'};

  for (std::size_t idx = 1; idx < total; ++idx) {
    std::string pstr(n, 'I');
    std::size_t rem = idx;
    for (std::size_t q = n; q-- > 0;) {
      pstr[q] = letters[rem % 4];
      rem /= 4;
    }
    // Compatible setting: replace I by Z.
    std::string setting = pstr;
    for (auto& c : setting)
      if (c == 'I') c = 'Z';
    const auto it = by_setting.find(setting);
    if (it == by_setting.end())
      throw std::invalid_argument("linear_inversion: missing setting " + setting);
    const SettingCounts& sc = *it->second;
    const double tot = static_cast<double>(sc.total());
    if (tot <= 0) continue;

    double expectation = 0;
    for (std::size_t o = 0; o < sc.counts.size(); ++o) {
      int sign = 1;
      for (std::size_t q = 0; q < n; ++q) {
        if (pstr[q] == 'I') continue;
        if ((o >> (n - 1 - q)) & 1) sign = -sign;
      }
      expectation += sign * static_cast<double>(sc.counts[o]);
    }
    expectation /= tot;

    CMat term = quantum::pauli_string(pstr);
    term *= cplx(expectation, 0);
    rho += term;
  }

  rho *= cplx(1.0 / static_cast<double>(dim), 0);
  return rho;
}

RrrResult rrr_reconstruct(const std::vector<ProjectorTerm>& terms,
                          const CMat& seed, const MleOptions& opts) {
  seed.require_square("rrr_reconstruct");
  const std::size_t dim = seed.rows();
  double grand_total = 0;
  for (const auto& t : terms) {
    if (t.projector.rows() != dim || t.projector.cols() != dim)
      throw std::invalid_argument("rrr_reconstruct: projector dim mismatch");
    if (t.count < 0)
      throw std::invalid_argument(
          "rrr_reconstruct: negative count (background-subtracted data is not "
          "valid RρR input)");
    grand_total += t.count;
  }
  if (grand_total <= 0) throw std::invalid_argument("rrr_reconstruct: no counts");

  // Mix a little identity into the seed so no projector starts at exactly
  // zero probability.
  CMat rho = seed;
  {
    CMat eye = CMat::identity(dim);
    eye *= cplx(1e-3 / static_cast<double>(dim), 0);
    rho *= cplx(1.0 - 1e-3, 0);
    rho += eye;
  }

  RrrResult res;
  for (int it = 0; it < opts.max_iterations; ++it) {
    CMat r(dim, dim);
    for (const auto& t : terms) {
      if (t.count <= 0) continue;
      const double p = std::max(1e-12, std::real(trace_product(rho, t.projector)));
      CMat scaled = t.projector;
      scaled *= cplx(t.count / (grand_total * p), 0);
      r += scaled;
    }
    CMat next = r * rho * r;
    const cplx tr = next.trace();
    if (std::abs(tr) < 1e-300)
      throw qfc::NumericalError("rrr_reconstruct: degenerate iterate");
    next *= cplx(1.0, 0) / tr;

    CMat diff = next;
    diff -= rho;
    const double delta = diff.frobenius_norm();
    rho = std::move(next);
    res.iterations = it + 1;
    if (delta < opts.convergence_tol) {
      res.converged = true;
      break;
    }
  }

  // Final cleanup: enforce exact Hermiticity/PSD within tolerance.
  rho = linalg::project_to_density_matrix(rho);
  double ll = 0;
  for (const auto& t : terms) {
    if (t.count <= 0) continue;
    const double p = std::max(1e-300, std::real(trace_product(rho, t.projector)));
    ll += t.count * std::log(p);
  }
  res.log_likelihood = ll;
  res.rho = std::move(rho);
  return res;
}

std::vector<RrrResult> rrr_reconstruct_batch(
    const std::vector<std::vector<ProjectorTerm>>& problems,
    const std::vector<linalg::CMat>& seeds, const MleOptions& opts) {
  if (problems.size() != seeds.size())
    throw std::invalid_argument("rrr_reconstruct_batch: problem/seed count mismatch");
  std::vector<RrrResult> out(problems.size());
  // One pool task per reconstruction (disjoint result slots), each running
  // its iterations with the linalg kernels forced inline — bitwise equal to
  // the serial loop at any worker count.
  linalg::detail::parallel_batch(problems.size(), [&](std::size_t i) {
    out[i] = rrr_reconstruct(problems[i], seeds[i], opts);
  });
  return out;
}

MleResult maximum_likelihood(const std::vector<SettingCounts>& data,
                             const MleOptions& opts) {
  checked_num_qubits(data);

  std::vector<ProjectorTerm> terms;
  for (const auto& d : data)
    for (std::size_t o = 0; o < d.counts.size(); ++o) {
      if (d.counts[o] == 0) continue;
      terms.push_back(ProjectorTerm{outcome_projector(d.setting, o),
                                    static_cast<double>(d.counts[o])});
    }

  // Seed: physical projection of the linear-inversion estimate.
  const CMat seed = linalg::project_to_density_matrix(linear_inversion(data));
  RrrResult core = rrr_reconstruct(terms, seed, opts);

  MleResult res{quantum::DensityMatrix(std::move(core.rho), 1e-6), core.iterations,
                core.converged, core.log_likelihood};
  return res;
}

}  // namespace qfc::tomo
