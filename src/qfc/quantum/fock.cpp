#include "qfc/quantum/fock.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qfc::quantum {

using linalg::cplx;
using linalg::CMat;

CMat annihilation_matrix(std::size_t dim) {
  if (dim < 2) throw std::invalid_argument("annihilation_matrix: dim must be >= 2");
  CMat a(dim, dim);
  for (std::size_t n = 1; n < dim; ++n)
    a(n - 1, n) = cplx(std::sqrt(static_cast<double>(n)), 0);
  return a;
}

CMat creation_matrix(std::size_t dim) { return annihilation_matrix(dim).adjoint(); }

CMat number_matrix(std::size_t dim) {
  CMat n(dim, dim);
  for (std::size_t k = 0; k < dim; ++k) n(k, k) = cplx(static_cast<double>(k), 0);
  return n;
}

TwoModeSqueezedVacuum::TwoModeSqueezedVacuum(double mean_pairs) : mu_(mean_pairs) {
  if (mean_pairs < 0)
    throw std::invalid_argument("TwoModeSqueezedVacuum: negative mean pair number");
  // Keep the neglected tail below ~1e-12: P(n>N) = x^{N+1}.
  const double x = mu_ / (1.0 + mu_);
  std::size_t n = 32;
  if (x > 0) {
    const double needed = std::ceil(-12.0 * std::log(10.0) / std::log(x));
    n = static_cast<std::size_t>(std::clamp(needed, 32.0, 4096.0));
  }
  truncation_ = n;
}

double TwoModeSqueezedVacuum::squeezing_parameter_r() const {
  return std::asinh(std::sqrt(mu_));
}

double TwoModeSqueezedVacuum::pair_number_probability(std::size_t n) const {
  if (mu_ == 0) return n == 0 ? 1.0 : 0.0;
  const double x = mu_ / (1.0 + mu_);
  return std::pow(x, static_cast<double>(n)) / (1.0 + mu_);
}

double TwoModeSqueezedVacuum::unheralded_g2() const { return 2.0; }

double TwoModeSqueezedVacuum::heralded_g2(double eta) const {
  if (eta <= 0 || eta > 1)
    throw std::invalid_argument("heralded_g2: efficiency must be in (0,1]");
  if (mu_ == 0) return 0.0;
  // Herald click probability on n idler photons: 1 − (1−η)ⁿ.
  double norm = 0, mean_n = 0, mean_nn1 = 0;
  for (std::size_t n = 0; n <= truncation_; ++n) {
    const double p = pair_number_probability(n) *
                     (1.0 - std::pow(1.0 - eta, static_cast<double>(n)));
    norm += p;
    mean_n += p * static_cast<double>(n);
    mean_nn1 += p * static_cast<double>(n) * static_cast<double>(n - 1);
  }
  if (norm <= 0) return 0.0;
  mean_n /= norm;
  mean_nn1 /= norm;
  if (mean_n <= 0) return 0.0;
  return mean_nn1 / (mean_n * mean_n);
}

double TwoModeSqueezedVacuum::multi_pair_fraction(double eta) const {
  if (eta <= 0 || eta > 1)
    throw std::invalid_argument("multi_pair_fraction: efficiency must be in (0,1]");
  if (mu_ == 0) return 0.0;
  double heralded = 0, heralded_multi = 0;
  for (std::size_t n = 1; n <= truncation_; ++n) {
    const double p = pair_number_probability(n) *
                     (1.0 - std::pow(1.0 - eta, static_cast<double>(n)));
    heralded += p;
    if (n >= 2) heralded_multi += p;
  }
  return heralded > 0 ? heralded_multi / heralded : 0.0;
}

double TwoModeSqueezedVacuum::statistical_car_limit() const {
  if (mu_ <= 0) return std::numeric_limits<double>::infinity();
  return 1.0 + 1.0 / mu_;
}

}  // namespace qfc::quantum
