#pragma once

/// \file measures.hpp
/// State metrics: purity, entropy, fidelity, trace distance, concurrence
/// (two-qubit entanglement), and negativity (PPT criterion).

#include "qfc/quantum/state.hpp"

namespace qfc::quantum {

/// Tr(ρ²) ∈ [1/d, 1].
double purity(const DensityMatrix& rho);

/// Von Neumann entropy −Tr(ρ log₂ ρ), in bits.
double von_neumann_entropy_bits(const DensityMatrix& rho);

/// Uhlmann fidelity F(ρ, σ) = (Tr √(√ρ σ √ρ))² ∈ [0, 1].
double fidelity(const DensityMatrix& rho, const DensityMatrix& sigma);

/// Fidelity against a pure target: <ψ|ρ|ψ>.
double fidelity(const DensityMatrix& rho, const StateVector& target);

/// Trace distance ½ Tr|ρ − σ|.
double trace_distance(const DensityMatrix& rho, const DensityMatrix& sigma);

/// Wootters concurrence of a two-qubit state; 0 = separable, 1 = Bell.
double concurrence(const DensityMatrix& rho);

/// Negativity: sum of |negative eigenvalues| of the partial transpose over
/// the second subsystem (dims must split as d1 x d2 with d1*d2 = dim).
double negativity(const DensityMatrix& rho, std::size_t qubits_in_first_subsystem);

/// Schmidt coefficients (descending, squared sums to 1) of a bipartite pure
/// state split after `qubits_in_first_subsystem` qubits.
linalg::RVec schmidt_coefficients(const StateVector& psi,
                                  std::size_t qubits_in_first_subsystem);

}  // namespace qfc::quantum
