#pragma once

/// \file measures.hpp
/// State metrics: purity, entropy, fidelity, trace distance, concurrence
/// (two-qubit entanglement), and negativity (PPT criterion).
///
/// Each metric comes in two flavors: a matrix-level overload operating on a
/// raw density matrix / amplitude vector of *any* dimension (shared with the
/// qudit layer in qfc::qudit), and a convenience overload on the validated
/// qubit-register types. The matrix-level overloads assume the caller hands
/// in a valid density matrix (Hermitian, unit trace, PSD); they do not
/// re-validate.

#include "qfc/quantum/state.hpp"

namespace qfc::quantum {

// ------------------------------------------------------------------------
// Matrix-level metrics, dimension-agnostic.

/// Tr(ρ²) ∈ [1/d, 1].
double purity(const linalg::CMat& rho);

/// Von Neumann entropy −Tr(ρ log₂ ρ), in bits.
double von_neumann_entropy_bits(const linalg::CMat& rho);

/// Uhlmann fidelity F(ρ, σ) = (Tr √(√ρ σ √ρ))² ∈ [0, 1].
double fidelity(const linalg::CMat& rho, const linalg::CMat& sigma);

/// Fidelity against a pure target: <ψ|ρ|ψ> (target must be normalized).
double fidelity(const linalg::CMat& rho, const linalg::CVec& target);

/// Trace distance ½ Tr|ρ − σ|.
double trace_distance(const linalg::CMat& rho, const linalg::CMat& sigma);

/// Partial transpose over the second factor of a d1 x d2 bipartition
/// (d1 * d2 must equal the matrix dimension).
linalg::CMat partial_transpose(const linalg::CMat& rho, std::size_t d1, std::size_t d2);

/// Negativity: sum of |negative eigenvalues| of the partial transpose over
/// the second factor of a d1 x d2 bipartition.
double negativity(const linalg::CMat& rho, std::size_t d1, std::size_t d2);

/// Schmidt coefficients (descending, squares sum to 1) of a bipartite pure
/// state with amplitudes `amps` split as d1 x d2.
linalg::RVec schmidt_coefficients(const linalg::CVec& amps, std::size_t d1,
                                  std::size_t d2);

// ------------------------------------------------------------------------
// Batch variants: element i of the result equals the scalar metric applied
// to input i (bitwise — see the linalg batch contract in
// src/qfc/linalg/README.md), but the eig/SVD work is handed to the linalg
// batch seam in one call, so the Blocked backend fans the matrices out
// across its worker pool. Use these in sweeps that evaluate many small
// states at once (witness scans, tomography/ablation sweeps).

std::vector<double> von_neumann_entropy_bits_batch(const std::vector<linalg::CMat>& rhos);

/// Negativity of each state over the same d1 x d2 bipartition.
std::vector<double> negativity_batch(const std::vector<linalg::CMat>& rhos,
                                     std::size_t d1, std::size_t d2);

/// Schmidt coefficients of each pure state over the same d1 x d2 split.
std::vector<linalg::RVec> schmidt_coefficients_batch(
    const std::vector<linalg::CVec>& amps, std::size_t d1, std::size_t d2);

// ------------------------------------------------------------------------
// Qubit-register convenience overloads.

double purity(const DensityMatrix& rho);
double von_neumann_entropy_bits(const DensityMatrix& rho);
double fidelity(const DensityMatrix& rho, const DensityMatrix& sigma);
double fidelity(const DensityMatrix& rho, const StateVector& target);
double trace_distance(const DensityMatrix& rho, const DensityMatrix& sigma);

/// Wootters concurrence of a two-qubit state; 0 = separable, 1 = Bell.
double concurrence(const DensityMatrix& rho);

/// Negativity with the bipartition placed after the first
/// `qubits_in_first_subsystem` qubits.
double negativity(const DensityMatrix& rho, std::size_t qubits_in_first_subsystem);

/// Schmidt coefficients of a qubit-register pure state split after
/// `qubits_in_first_subsystem` qubits.
linalg::RVec schmidt_coefficients(const StateVector& psi,
                                  std::size_t qubits_in_first_subsystem);

}  // namespace qfc::quantum
