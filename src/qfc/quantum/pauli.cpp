#include "qfc/quantum/pauli.hpp"

#include <cmath>
#include <stdexcept>

namespace qfc::quantum {

using linalg::cplx;

const CMat& pauli_i() {
  static const CMat m{{cplx(1, 0), cplx(0, 0)}, {cplx(0, 0), cplx(1, 0)}};
  return m;
}
const CMat& pauli_x() {
  static const CMat m{{cplx(0, 0), cplx(1, 0)}, {cplx(1, 0), cplx(0, 0)}};
  return m;
}
const CMat& pauli_y() {
  static const CMat m{{cplx(0, 0), cplx(0, -1)}, {cplx(0, 1), cplx(0, 0)}};
  return m;
}
const CMat& pauli_z() {
  static const CMat m{{cplx(1, 0), cplx(0, 0)}, {cplx(0, 0), cplx(-1, 0)}};
  return m;
}
const CMat& hadamard() {
  static const double s = 1.0 / std::sqrt(2.0);
  static const CMat m{{cplx(s, 0), cplx(s, 0)}, {cplx(s, 0), cplx(-s, 0)}};
  return m;
}

const CMat& pauli(char label) {
  switch (label) {
    case 'I': return pauli_i();
    case 'X': return pauli_x();
    case 'Y': return pauli_y();
    case 'Z': return pauli_z();
    default: throw std::invalid_argument("pauli: label must be one of I,X,Y,Z");
  }
}

CMat pauli_string(const std::string& labels) {
  if (labels.empty()) throw std::invalid_argument("pauli_string: empty label string");
  CMat m = pauli(labels[0]);
  for (std::size_t i = 1; i < labels.size(); ++i) m = linalg::kron(m, pauli(labels[i]));
  return m;
}

CMat rotation_x(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return CMat{{cplx(c, 0), cplx(0, -s)}, {cplx(0, -s), cplx(c, 0)}};
}

CMat rotation_y(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return CMat{{cplx(c, 0), cplx(-s, 0)}, {cplx(s, 0), cplx(c, 0)}};
}

CMat rotation_z(double theta) {
  return CMat{{std::exp(cplx(0, -theta / 2)), cplx(0, 0)},
              {cplx(0, 0), std::exp(cplx(0, theta / 2))}};
}

CMat projector(const CVec& v) { return linalg::outer(v, v); }

CMat xy_observable(double phi) {
  CMat m = pauli_x();
  m *= cplx(std::cos(phi), 0);
  CMat y = pauli_y();
  y *= cplx(std::sin(phi), 0);
  m += y;
  return m;
}

CVec xy_eigenstate(double phi, int sign) {
  if (sign != 1 && sign != -1) throw std::invalid_argument("xy_eigenstate: sign must be ±1");
  const double s = 1.0 / std::sqrt(2.0);
  return CVec{cplx(s, 0), static_cast<double>(sign) * s * std::exp(cplx(0, phi))};
}

}  // namespace qfc::quantum
