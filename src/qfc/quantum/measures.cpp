#include "qfc/quantum/measures.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/linalg/svd.hpp"
#include "qfc/quantum/pauli.hpp"

namespace qfc::quantum {

using linalg::cplx;

// ------------------------------------------------------------------------
// Matrix-level implementations (shared by the qubit and qudit layers).

double purity(const linalg::CMat& rho) {
  rho.require_square("purity");
  return std::real(linalg::trace_product(rho, rho));
}

double von_neumann_entropy_bits(const linalg::CMat& rho) {
  const auto evals = linalg::hermitian_eigenvalues(rho);
  double s = 0;
  for (double v : evals)
    if (v > 1e-14) s -= v * std::log2(v);
  return s;
}

double fidelity(const linalg::CMat& rho, const linalg::CMat& sigma) {
  if (rho.rows() != sigma.rows() || rho.cols() != sigma.cols())
    throw std::invalid_argument("fidelity: dim mismatch");
  const linalg::CMat sr = linalg::sqrtm_psd(rho);
  const linalg::CMat inner = sr * sigma * sr;
  const linalg::CMat root = linalg::sqrtm_psd(inner, 1e-7);
  const double tr = std::real(root.trace());
  return std::min(1.0, tr * tr);
}

double fidelity(const linalg::CMat& rho, const linalg::CVec& target) {
  if (rho.rows() != target.size() || !rho.is_square())
    throw std::invalid_argument("fidelity: dim mismatch");
  cplx s(0, 0);
  for (std::size_t i = 0; i < target.size(); ++i)
    for (std::size_t j = 0; j < target.size(); ++j)
      s += std::conj(target[i]) * rho(i, j) * target[j];
  return std::min(1.0, std::max(0.0, std::real(s)));
}

double trace_distance(const linalg::CMat& rho, const linalg::CMat& sigma) {
  if (rho.rows() != sigma.rows() || rho.cols() != sigma.cols())
    throw std::invalid_argument("trace_distance: dim mismatch");
  linalg::CMat d = rho;
  d -= sigma;
  const auto evals = linalg::hermitian_eigenvalues(d);
  double s = 0;
  for (double v : evals) s += std::abs(v);
  return 0.5 * s;
}

linalg::CMat partial_transpose(const linalg::CMat& rho, std::size_t d1, std::size_t d2) {
  rho.require_square("partial_transpose");
  if (d1 < 2 || d2 < 2 || d1 * d2 != rho.rows())
    throw std::invalid_argument("partial_transpose: bad bipartition");
  linalg::CMat pt(rho.rows(), rho.rows());
  for (std::size_t i1 = 0; i1 < d1; ++i1)
    for (std::size_t i2 = 0; i2 < d2; ++i2)
      for (std::size_t j1 = 0; j1 < d1; ++j1)
        for (std::size_t j2 = 0; j2 < d2; ++j2)
          pt(i1 * d2 + j2, j1 * d2 + i2) = rho(i1 * d2 + i2, j1 * d2 + j2);
  return pt;
}

double negativity(const linalg::CMat& rho, std::size_t d1, std::size_t d2) {
  const auto evals = linalg::hermitian_eigenvalues(partial_transpose(rho, d1, d2));
  double s = 0;
  for (double v : evals)
    if (v < 0) s += -v;
  return s;
}

linalg::RVec schmidt_coefficients(const linalg::CVec& amps, std::size_t d1,
                                  std::size_t d2) {
  if (d1 < 2 || d2 < 2 || d1 * d2 != amps.size())
    throw std::invalid_argument("schmidt_coefficients: bad bipartition");
  linalg::CMat m(d1, d2);
  for (std::size_t i = 0; i < d1; ++i)
    for (std::size_t j = 0; j < d2; ++j) m(i, j) = amps[i * d2 + j];
  auto res = linalg::svd(m);
  return res.sigma;
}

// ------------------------------------------------------------------------
// Batch variants: identical per-element arithmetic to the scalar metrics
// above, with the spectral work routed through linalg's batch entry points.

std::vector<double> von_neumann_entropy_bits_batch(const std::vector<linalg::CMat>& rhos) {
  const auto evals = linalg::hermitian_eigenvalues_batch(rhos);
  std::vector<double> out(rhos.size(), 0.0);
  for (std::size_t i = 0; i < rhos.size(); ++i)
    for (double v : evals[i])
      if (v > 1e-14) out[i] -= v * std::log2(v);
  return out;
}

std::vector<double> negativity_batch(const std::vector<linalg::CMat>& rhos,
                                     std::size_t d1, std::size_t d2) {
  std::vector<linalg::CMat> pts;
  pts.reserve(rhos.size());
  for (const auto& rho : rhos) pts.push_back(partial_transpose(rho, d1, d2));
  const auto evals = linalg::hermitian_eigenvalues_batch(pts);
  std::vector<double> out(rhos.size(), 0.0);
  for (std::size_t i = 0; i < rhos.size(); ++i)
    for (double v : evals[i])
      if (v < 0) out[i] += -v;
  return out;
}

std::vector<linalg::RVec> schmidt_coefficients_batch(
    const std::vector<linalg::CVec>& amps, std::size_t d1, std::size_t d2) {
  std::vector<linalg::CMat> ms;
  ms.reserve(amps.size());
  for (const auto& a : amps) {
    if (d1 < 2 || d2 < 2 || d1 * d2 != a.size())
      throw std::invalid_argument("schmidt_coefficients: bad bipartition");
    linalg::CMat m(d1, d2);
    for (std::size_t i = 0; i < d1; ++i)
      for (std::size_t j = 0; j < d2; ++j) m(i, j) = a[i * d2 + j];
    ms.push_back(std::move(m));
  }
  auto svds = linalg::svd_batch(ms);
  std::vector<linalg::RVec> out;
  out.reserve(svds.size());
  for (auto& s : svds) out.push_back(std::move(s.sigma));
  return out;
}

// ------------------------------------------------------------------------
// Qubit-register convenience overloads.

double purity(const DensityMatrix& rho) { return purity(rho.matrix()); }

double von_neumann_entropy_bits(const DensityMatrix& rho) {
  return von_neumann_entropy_bits(rho.matrix());
}

double fidelity(const DensityMatrix& rho, const DensityMatrix& sigma) {
  return fidelity(rho.matrix(), sigma.matrix());
}

double fidelity(const DensityMatrix& rho, const StateVector& target) {
  return fidelity(rho.matrix(), target.amplitudes());
}

double trace_distance(const DensityMatrix& rho, const DensityMatrix& sigma) {
  return trace_distance(rho.matrix(), sigma.matrix());
}

double concurrence(const DensityMatrix& rho) {
  if (rho.dim() != 4) throw std::invalid_argument("concurrence: needs a two-qubit state");
  // Wootters: C = max(0, λ1 − λ2 − λ3 − λ4) with λi the descending square
  // roots of the eigenvalues of ρ (Y⊗Y) ρ* (Y⊗Y).
  const linalg::CMat yy = linalg::kron(pauli_y(), pauli_y());
  // Use the Hermitian trick: eigenvalues of ρ (Y⊗Y) ρ* (Y⊗Y) equal those of
  // sqrt(ρ) (Y⊗Y) ρ* (Y⊗Y) sqrt(ρ), which is Hermitian PSD.
  const linalg::CMat sr = linalg::sqrtm_psd(rho.matrix());
  const linalg::CMat herm = sr * yy * rho.matrix().conj() * yy * sr;
  auto evals = linalg::hermitian_eigenvalues(herm);
  for (auto& v : evals) v = std::sqrt(std::max(0.0, v));
  // evals are sorted descending already.
  const double c = evals[0] - evals[1] - evals[2] - evals[3];
  return std::max(0.0, c);
}

double negativity(const DensityMatrix& rho, std::size_t qubits_in_first_subsystem) {
  const std::size_t n = rho.num_qubits();
  if (qubits_in_first_subsystem == 0 || qubits_in_first_subsystem >= n)
    throw std::invalid_argument("negativity: bad split");
  const std::size_t d1 = std::size_t{1} << qubits_in_first_subsystem;
  return negativity(rho.matrix(), d1, rho.dim() / d1);
}

linalg::RVec schmidt_coefficients(const StateVector& psi,
                                  std::size_t qubits_in_first_subsystem) {
  const std::size_t n = psi.num_qubits();
  if (qubits_in_first_subsystem == 0 || qubits_in_first_subsystem >= n)
    throw std::invalid_argument("schmidt_coefficients: bad split");
  const std::size_t d1 = std::size_t{1} << qubits_in_first_subsystem;
  return schmidt_coefficients(psi.amplitudes(), d1, psi.dim() / d1);
}

}  // namespace qfc::quantum
