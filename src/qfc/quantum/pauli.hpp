#pragma once

/// \file pauli.hpp
/// Pauli matrices, standard single-qubit states/rotations, and
/// tensor-product Pauli strings used by tomography and CHSH analysis.

#include <string>

#include "qfc/linalg/matrix.hpp"

namespace qfc::quantum {

using linalg::CMat;
using linalg::CVec;

const CMat& pauli_i();
const CMat& pauli_x();
const CMat& pauli_y();
const CMat& pauli_z();
const CMat& hadamard();

/// Pauli by label: 'I', 'X', 'Y', 'Z'.
const CMat& pauli(char label);

/// Tensor product of Paulis, e.g. "XZ" -> X ⊗ Z (left-most acts on qubit 0).
CMat pauli_string(const std::string& labels);

/// Single-qubit rotation exp(-i θ/2 σ) around the given axis.
CMat rotation_x(double theta);
CMat rotation_y(double theta);
CMat rotation_z(double theta);

/// Projector |v><v| from a single-qubit state vector.
CMat projector(const CVec& v);

/// Measurement operator cos observable for a direction in the X-Y plane:
/// A(φ) = cos(φ) X + sin(φ) Y — the natural analyzer observable of a
/// time-bin interferometer at phase φ.
CMat xy_observable(double phi);

/// Eigenvectors of xy_observable(φ): (|0> ± e^{iφ}|1>)/√2.
CVec xy_eigenstate(double phi, int sign);

}  // namespace qfc::quantum
