#pragma once

/// \file state.hpp
/// Multi-qubit pure states and density matrices. Qubit 0 is the most
/// significant bit of the computational-basis index (|q0 q1 ... qn-1>).

#include <cstddef>
#include <vector>

#include "qfc/linalg/matrix.hpp"

namespace qfc::quantum {

using linalg::cplx;
using linalg::CMat;
using linalg::CVec;

/// Normalized pure state of n qubits.
class StateVector {
 public:
  /// |0...0> of n qubits.
  explicit StateVector(std::size_t num_qubits);

  /// From amplitudes (size must be a power of two); normalizes unless
  /// already normalized, throws on the zero vector.
  explicit StateVector(CVec amplitudes);

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return amps_.size(); }
  const CVec& amplitudes() const noexcept { return amps_; }
  cplx amplitude(std::size_t basis_index) const { return amps_.at(basis_index); }

  /// Tensor product |this> ⊗ |other>.
  StateVector tensor(const StateVector& other) const;

  /// <this|other>.
  cplx overlap(const StateVector& other) const;

  /// |<this|other>|².
  double overlap_probability(const StateVector& other) const;

  /// Apply a unitary on the full register (dim x dim).
  StateVector apply(const CMat& u) const;

  /// Apply a single-qubit unitary on the given qubit.
  StateVector apply_single(const CMat& u2, std::size_t qubit) const;

  /// Probability of measuring the given computational-basis outcome.
  double probability(std::size_t basis_index) const;

 private:
  std::size_t num_qubits_;
  CVec amps_;
};

/// Density matrix of n qubits: Hermitian, unit trace, PSD (validated).
class DensityMatrix {
 public:
  /// Maximally mixed state I/2^n.
  explicit DensityMatrix(std::size_t num_qubits);

  /// |psi><psi|.
  explicit DensityMatrix(const StateVector& psi);

  /// From a raw matrix; validates shape/Hermiticity/trace; PSD check is
  /// tolerance-based (small negative eigenvalues allowed up to psd_tol).
  explicit DensityMatrix(CMat rho, double psd_tol = 1e-8);

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return rho_.rows(); }
  const CMat& matrix() const noexcept { return rho_; }

  /// Tr(ρ O).
  cplx expectation(const CMat& observable) const;

  /// Probability Tr(ρ P) of projector P, clipped to [0, 1].
  double probability(const CMat& projector) const;

  /// ρ ⊗ σ.
  DensityMatrix tensor(const DensityMatrix& other) const;

  /// Partial trace keeping the listed qubits (ascending order preserved).
  DensityMatrix partial_trace_keep(const std::vector<std::size_t>& keep) const;

  /// Convex mixture (1−p) ρ + p σ.
  DensityMatrix mix(const DensityMatrix& other, double p) const;

  /// U ρ U†.
  DensityMatrix evolve(const CMat& u) const;

 private:
  std::size_t num_qubits_;
  CMat rho_;
};

/// Number of qubits for a dimension that must be a power of two.
std::size_t qubits_for_dim(std::size_t dim);

}  // namespace qfc::quantum
