#pragma once

/// \file gates.hpp
/// Multi-qubit gates, projective measurements and graph/cluster states —
/// the minimal toolbox for the paper's "quantum computation" application
/// (Sec. I, ref [3]: one-way computing consumes cluster states built from
/// entangled photon pairs like the ones the comb produces).

#include <vector>

#include "qfc/quantum/state.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::quantum {

/// Two-qubit gates in the computational basis |q_a q_b>.
const CMat& cnot_gate();
const CMat& cz_gate();
const CMat& swap_gate();

/// Apply a 4x4 two-qubit gate to qubits (a, b) of an n-qubit state
/// (a = control/first tensor slot). a != b required.
StateVector apply_two_qubit(const StateVector& psi, const CMat& gate, std::size_t a,
                            std::size_t b);

/// |+>^{⊗n} with CZ on every edge: graph state. Edges are (i, j) pairs.
StateVector graph_state(std::size_t num_qubits,
                        const std::vector<std::pair<std::size_t, std::size_t>>& edges);

/// Linear cluster state of n qubits (edges i—i+1).
StateVector linear_cluster_state(std::size_t num_qubits);

/// Convert two time-bin Bell pairs |Φ>⊗|Φ> (qubits 0,1 and 2,3) into a
/// 4-qubit linear cluster state by local Hadamards + one CZ — how a comb
/// source feeds a one-way quantum computer.
StateVector cluster_from_bell_pairs(const StateVector& two_bell_pairs);

/// Stabilizer generator K_i = X_i ⊗ Z_neighbors of a graph state; the
/// state is the unique +1 eigenstate of all of them.
CMat cluster_stabilizer(std::size_t num_qubits, std::size_t site,
                        const std::vector<std::pair<std::size_t, std::size_t>>& edges);

/// Expectation <psi|K|psi> of an operator.
double expectation(const StateVector& psi, const CMat& op);

/// Outcome of a projective single-qubit measurement.
struct MeasurementOutcome {
  int result = +1;        ///< ±1 eigenvalue observed
  StateVector state;      ///< post-measurement (collapsed, renormalized) state
  double probability = 0; ///< probability of this outcome
};

/// Measure qubit q in the X-Y-plane basis at angle phi (the time-bin
/// analyzer measurement); Z basis via `measure_qubit_z`.
MeasurementOutcome measure_qubit_xy(const StateVector& psi, std::size_t q, double phi,
                                    rng::Xoshiro256& g);

MeasurementOutcome measure_qubit_z(const StateVector& psi, std::size_t q,
                                   rng::Xoshiro256& g);

}  // namespace qfc::quantum
