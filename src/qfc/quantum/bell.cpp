#include "qfc/quantum/bell.hpp"

#include <cmath>
#include <stdexcept>

namespace qfc::quantum {

using linalg::cplx;

StateVector bell_phi(double phase_rad) {
  const double s = 1.0 / std::sqrt(2.0);
  CVec v(4, cplx(0, 0));
  v[0] = cplx(s, 0);
  v[3] = s * std::exp(cplx(0, phase_rad));
  return StateVector(std::move(v));
}

StateVector bell_psi(double phase_rad) {
  const double s = 1.0 / std::sqrt(2.0);
  CVec v(4, cplx(0, 0));
  v[1] = cplx(s, 0);
  v[2] = s * std::exp(cplx(0, phase_rad));
  return StateVector(std::move(v));
}

DensityMatrix werner_phi(double visibility, double phase_rad) {
  if (visibility < 0 || visibility > 1)
    throw std::invalid_argument("werner_phi: visibility outside [0,1]");
  const DensityMatrix pure{bell_phi(phase_rad)};
  const DensityMatrix mixed{std::size_t{2}};
  return pure.mix(mixed, 1.0 - visibility);
}

StateVector bell_product(std::size_t num_pairs, double phase_rad) {
  if (num_pairs == 0) throw std::invalid_argument("bell_product: need at least one pair");
  StateVector out = bell_phi(phase_rad);
  for (std::size_t i = 1; i < num_pairs; ++i) out = out.tensor(bell_phi(phase_rad));
  return out;
}

DensityMatrix isotropic_noise(const StateVector& target, double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("isotropic_noise: p outside [0,1]");
  const DensityMatrix pure{target};
  const DensityMatrix mixed{target.num_qubits()};
  return pure.mix(mixed, 1.0 - p);
}

}  // namespace qfc::quantum
