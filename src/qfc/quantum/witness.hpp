#pragma once

/// \file witness.hpp
/// Entanglement witnesses: experimentally friendly operators W with
/// Tr(Wρ) >= 0 for all separable ρ and Tr(Wρ) < 0 for states close to a
/// chosen entangled target — the standard certification tool when full
/// tomography (Sec. V) is too expensive.

#include "qfc/quantum/state.hpp"

namespace qfc::quantum {

/// Projector witness for a pure target |ψ>:  W = α I − |ψ><ψ| with
/// α = max over biseparable states of <ψ|ρ|ψ>. For a Bell state α = 1/2;
/// for an n-qubit GHZ/cluster state α = 1/2 as well.
linalg::CMat projector_witness(const StateVector& target, double alpha = 0.5);

/// <W> = Tr(Wρ); negative certifies entanglement (w.r.t. the witness's α).
double witness_expectation(const linalg::CMat& witness, const DensityMatrix& rho);

/// Convenience: witness value of ρ against a Bell Φ target:
/// <W> = 1/2 − F(ρ, Φ). For a Werner state F = (1+3V)/4, so the witness
/// goes negative exactly when V > 1/3.
double bell_witness_value(const DensityMatrix& rho, double phase_rad = 0.0);

/// n-qubit GHZ state (|0...0> + e^{iφ}|1...1>)/√2.
StateVector ghz_state(std::size_t num_qubits, double phase_rad = 0.0);

/// Visibility threshold above which a Werner-type mixture of an n-qubit
/// target is detected by the projector witness:
///   <W> = α − [V + (1−V)/d] < 0  ⟺  V > (α d − 1)/(d − 1),  d = 2^n.
/// Bell (n = 2, α = 1/2): V* = 1/3.
double werner_detection_threshold(std::size_t num_qubits, double alpha = 0.5);

}  // namespace qfc::quantum
