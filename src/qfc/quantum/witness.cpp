#include "qfc/quantum/witness.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/bell.hpp"
#include "qfc/quantum/measures.hpp"

namespace qfc::quantum {

using linalg::cplx;
using linalg::CMat;

CMat projector_witness(const StateVector& target, double alpha) {
  if (alpha <= 0 || alpha >= 1)
    throw std::invalid_argument("projector_witness: alpha outside (0,1)");
  CMat w = CMat::identity(target.dim());
  w *= cplx(alpha, 0);
  w -= linalg::outer(target.amplitudes(), target.amplitudes());
  return w;
}

double witness_expectation(const CMat& witness, const DensityMatrix& rho) {
  return std::real(rho.expectation(witness));
}

double bell_witness_value(const DensityMatrix& rho, double phase_rad) {
  if (rho.num_qubits() != 2)
    throw std::invalid_argument("bell_witness_value: need a two-qubit state");
  return 0.5 - fidelity(rho, bell_phi(phase_rad));
}

StateVector ghz_state(std::size_t num_qubits, double phase_rad) {
  if (num_qubits < 2) throw std::invalid_argument("ghz_state: need >= 2 qubits");
  linalg::CVec v(std::size_t{1} << num_qubits, cplx(0, 0));
  const double s = 1.0 / std::sqrt(2.0);
  v.front() = cplx(s, 0);
  v.back() = s * std::exp(cplx(0, phase_rad));
  return StateVector(std::move(v));
}

double werner_detection_threshold(std::size_t num_qubits, double alpha) {
  if (num_qubits == 0) throw std::invalid_argument("werner_detection_threshold: n == 0");
  const double d = static_cast<double>(std::size_t{1} << num_qubits);
  return (alpha * d - 1.0) / (d - 1.0);
}

}  // namespace qfc::quantum
