#include "qfc/quantum/gates.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/pauli.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::quantum {

using linalg::cplx;

const CMat& cnot_gate() {
  static const CMat m{{cplx(1, 0), cplx(0, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(1, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(0, 0), cplx(1, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(1, 0), cplx(0, 0)}};
  return m;
}

const CMat& cz_gate() {
  static const CMat m{{cplx(1, 0), cplx(0, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(1, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(1, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(0, 0), cplx(-1, 0)}};
  return m;
}

const CMat& swap_gate() {
  static const CMat m{{cplx(1, 0), cplx(0, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(1, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(1, 0), cplx(0, 0), cplx(0, 0)},
                      {cplx(0, 0), cplx(0, 0), cplx(0, 0), cplx(1, 0)}};
  return m;
}

StateVector apply_two_qubit(const StateVector& psi, const CMat& gate, std::size_t a,
                            std::size_t b) {
  if (gate.rows() != 4 || gate.cols() != 4)
    throw std::invalid_argument("apply_two_qubit: gate must be 4x4");
  const std::size_t n = psi.num_qubits();
  if (a >= n || b >= n || a == b)
    throw std::invalid_argument("apply_two_qubit: bad qubit indices");

  const std::size_t shift_a = n - 1 - a;
  const std::size_t shift_b = n - 1 - b;
  const std::size_t mask_a = std::size_t{1} << shift_a;
  const std::size_t mask_b = std::size_t{1} << shift_b;

  linalg::CVec out(psi.dim(), cplx(0, 0));
  for (std::size_t idx = 0; idx < psi.dim(); ++idx) {
    const std::size_t bit_a = (idx & mask_a) ? 1 : 0;
    const std::size_t bit_b = (idx & mask_b) ? 1 : 0;
    const std::size_t row = bit_a * 2 + bit_b;
    const std::size_t base = idx & ~(mask_a | mask_b);
    for (std::size_t col = 0; col < 4; ++col) {
      const cplx g = gate(row, col);
      if (g == cplx(0, 0)) continue;
      const std::size_t src = base | ((col & 2) ? mask_a : 0) | ((col & 1) ? mask_b : 0);
      out[idx] += g * psi.amplitude(src);
    }
  }
  return StateVector(std::move(out));
}

StateVector graph_state(std::size_t num_qubits,
                        const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  StateVector psi(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q) psi = psi.apply_single(hadamard(), q);
  for (const auto& [i, j] : edges) psi = apply_two_qubit(psi, cz_gate(), i, j);
  return psi;
}

StateVector linear_cluster_state(std::size_t num_qubits) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < num_qubits; ++i) edges.emplace_back(i, i + 1);
  return graph_state(num_qubits, edges);
}

StateVector cluster_from_bell_pairs(const StateVector& two_bell_pairs) {
  if (two_bell_pairs.num_qubits() != 4)
    throw std::invalid_argument("cluster_from_bell_pairs: need a 4-qubit state");
  // |Φ>⊗|Φ> with H on qubits 1 and 3 equals the graph state of edges
  // {0-1, 2-3}; one more CZ on 1-2 links the pairs into a linear cluster.
  StateVector psi = two_bell_pairs.apply_single(hadamard(), 1);
  psi = psi.apply_single(hadamard(), 3);
  return apply_two_qubit(psi, cz_gate(), 1, 2);
}

CMat cluster_stabilizer(std::size_t num_qubits, std::size_t site,
                        const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  if (site >= num_qubits) throw std::out_of_range("cluster_stabilizer: bad site");
  std::string labels(num_qubits, 'I');
  labels[site] = 'X';
  for (const auto& [i, j] : edges) {
    if (i == site) labels[j] = 'Z';
    if (j == site) labels[i] = 'Z';
  }
  return pauli_string(labels);
}

double expectation(const StateVector& psi, const CMat& op) {
  if (op.rows() != psi.dim() || op.cols() != psi.dim())
    throw std::invalid_argument("expectation: dimension mismatch");
  const linalg::CVec opv = op * psi.amplitudes();
  return std::real(linalg::vdot(psi.amplitudes(), opv));
}

namespace {

MeasurementOutcome project(const StateVector& psi, const CMat& p_plus, std::size_t q,
                           rng::Xoshiro256& g) {
  const std::size_t n = psi.num_qubits();
  // Apply the +1 projector on qubit q; the −1 branch is |ψ> − P|ψ>.
  const std::size_t shift = n - 1 - q;
  const std::size_t mask = std::size_t{1} << shift;

  linalg::CVec plus(psi.dim(), linalg::cplx(0, 0));
  for (std::size_t idx = 0; idx < psi.dim(); ++idx) {
    const std::size_t bit = (idx & mask) ? 1 : 0;
    const std::size_t base = idx & ~mask;
    plus[idx] = p_plus(bit, 0) * psi.amplitude(base) +
                p_plus(bit, 1) * psi.amplitude(base | mask);
  }
  double p = 0;
  for (const auto& amp : plus) p += std::norm(amp);
  p = std::min(1.0, std::max(0.0, p));

  MeasurementOutcome out{+1, psi, p};
  if (rng::sample_bernoulli(g, p)) {
    out.result = +1;
    out.probability = p;
    out.state = StateVector(std::move(plus));
  } else {
    out.result = -1;
    out.probability = 1 - p;
    linalg::CVec minus(psi.dim(), linalg::cplx(0, 0));
    for (std::size_t idx = 0; idx < psi.dim(); ++idx)
      minus[idx] = psi.amplitude(idx) - plus[idx];
    out.state = StateVector(std::move(minus));
  }
  return out;
}

}  // namespace

MeasurementOutcome measure_qubit_xy(const StateVector& psi, std::size_t q, double phi,
                                    rng::Xoshiro256& g) {
  if (q >= psi.num_qubits()) throw std::out_of_range("measure_qubit_xy: bad qubit");
  return project(psi, projector(xy_eigenstate(phi, +1)), q, g);
}

MeasurementOutcome measure_qubit_z(const StateVector& psi, std::size_t q,
                                   rng::Xoshiro256& g) {
  if (q >= psi.num_qubits()) throw std::out_of_range("measure_qubit_z: bad qubit");
  CMat p0(2, 2);
  p0(0, 0) = cplx(1, 0);
  return project(psi, p0, q, g);
}

}  // namespace qfc::quantum
