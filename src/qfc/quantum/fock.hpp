#pragma once

/// \file fock.hpp
/// Truncated Fock-space operators and the two-mode squeezed vacuum — the
/// exact quantum state SFWM produces in one signal/idler resonance pair.
/// This is where multi-pair contamination (the dominant visibility / CAR
/// limit in the paper) comes from.

#include <cstddef>

#include "qfc/linalg/matrix.hpp"

namespace qfc::quantum {

/// Annihilation operator a on an N-dimensional truncated Fock space.
linalg::CMat annihilation_matrix(std::size_t dim);
/// Creation operator a† (adjoint of the above).
linalg::CMat creation_matrix(std::size_t dim);
/// Number operator a†a.
linalg::CMat number_matrix(std::size_t dim);

/// Two-mode squeezed vacuum |ψ> = √(1−x) Σ x^{n/2} |n,n> with mean pair
/// number μ (x = μ/(1+μ)). Photon-number statistics in either arm are
/// thermal. All quantities are computed on a truncation chosen from μ.
class TwoModeSqueezedVacuum {
 public:
  explicit TwoModeSqueezedVacuum(double mean_pairs);

  double mean_pairs() const noexcept { return mu_; }
  double squeezing_parameter_r() const;  ///< μ = sinh²(r)

  /// P(n pairs) = μⁿ/(1+μ)^{n+1}.
  double pair_number_probability(std::size_t n) const;

  /// Unheralded second-order autocorrelation of one arm: exactly 2 for a
  /// thermal state (useful as a test invariant).
  double unheralded_g2() const;

  /// Heralded g²(0) of the signal arm given a bucket (non-number-resolving)
  /// herald detector of efficiency eta on the idler arm. For μ -> 0 this
  /// tends to 0 (single photons); multi-pair emission raises it ~ 4μ.
  double heralded_g2(double herald_efficiency) const;

  /// Probability that a herald click announces more than one signal photon
  /// — the multi-pair contamination fraction that degrades time-bin fringe
  /// visibility (paper Sec. IV/V).
  double multi_pair_fraction(double herald_efficiency) const;

  /// Coincidence-to-accidental ratio limit from photon statistics alone
  /// (no dark counts): CAR_stat ≈ 1 + 1/μ for a single thermal mode.
  double statistical_car_limit() const;

 private:
  double mu_;
  std::size_t truncation_;
};

}  // namespace qfc::quantum
