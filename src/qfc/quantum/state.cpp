#include "qfc/quantum/state.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/linalg/hermitian_eig.hpp"

namespace qfc::quantum {

std::size_t qubits_for_dim(std::size_t dim) {
  if (dim == 0) throw std::invalid_argument("qubits_for_dim: zero dimension");
  std::size_t n = 0;
  std::size_t d = dim;
  while (d > 1) {
    if (d % 2 != 0) throw std::invalid_argument("qubits_for_dim: not a power of two");
    d /= 2;
    ++n;
  }
  return n;
}

StateVector::StateVector(std::size_t num_qubits)
    : num_qubits_(num_qubits), amps_(std::size_t{1} << num_qubits, cplx(0, 0)) {
  if (num_qubits == 0 || num_qubits > 20)
    throw std::invalid_argument("StateVector: unsupported qubit count");
  amps_[0] = cplx(1, 0);
}

StateVector::StateVector(CVec amplitudes) : amps_(std::move(amplitudes)) {
  num_qubits_ = qubits_for_dim(amps_.size());
  linalg::vnormalize(amps_);
}

StateVector StateVector::tensor(const StateVector& other) const {
  return StateVector(linalg::kron(amps_, other.amps_));
}

cplx StateVector::overlap(const StateVector& other) const {
  if (dim() != other.dim()) throw std::invalid_argument("StateVector::overlap: dim mismatch");
  return linalg::vdot(amps_, other.amps_);
}

double StateVector::overlap_probability(const StateVector& other) const {
  return std::norm(overlap(other));
}

StateVector StateVector::apply(const CMat& u) const {
  if (u.rows() != dim() || u.cols() != dim())
    throw std::invalid_argument("StateVector::apply: operator dim mismatch");
  return StateVector(u * amps_);
}

StateVector StateVector::apply_single(const CMat& u2, std::size_t qubit) const {
  if (u2.rows() != 2 || u2.cols() != 2)
    throw std::invalid_argument("StateVector::apply_single: need a 2x2 operator");
  if (qubit >= num_qubits_)
    throw std::out_of_range("StateVector::apply_single: qubit out of range");

  CVec out(amps_.size(), cplx(0, 0));
  // Qubit 0 is the most significant bit.
  const std::size_t shift = num_qubits_ - 1 - qubit;
  const std::size_t mask = std::size_t{1} << shift;
  for (std::size_t idx = 0; idx < amps_.size(); ++idx) {
    const std::size_t bit = (idx & mask) ? 1 : 0;
    const std::size_t base = idx & ~mask;
    out[idx] = u2(bit, 0) * amps_[base] + u2(bit, 1) * amps_[base | mask];
  }
  return StateVector(std::move(out));
}

double StateVector::probability(std::size_t basis_index) const {
  return std::norm(amps_.at(basis_index));
}

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      rho_(CMat::identity(std::size_t{1} << num_qubits)) {
  if (num_qubits == 0 || num_qubits > 10)
    throw std::invalid_argument("DensityMatrix: unsupported qubit count");
  rho_ *= cplx(1.0 / static_cast<double>(dim()), 0);
}

DensityMatrix::DensityMatrix(const StateVector& psi)
    : num_qubits_(psi.num_qubits()),
      rho_(linalg::outer(psi.amplitudes(), psi.amplitudes())) {}

DensityMatrix::DensityMatrix(CMat rho, double psd_tol) : rho_(std::move(rho)) {
  rho_.require_square("DensityMatrix");
  num_qubits_ = qubits_for_dim(rho_.rows());
  if (!linalg::is_hermitian(rho_, 1e-8))
    throw std::invalid_argument("DensityMatrix: not Hermitian");
  const double tr = std::real(rho_.trace());
  if (std::abs(tr - 1.0) > 1e-6)
    throw std::invalid_argument("DensityMatrix: trace != 1");
  const auto evals = linalg::hermitian_eigenvalues(rho_);
  for (double v : evals)
    if (v < -psd_tol) throw std::invalid_argument("DensityMatrix: not positive semidefinite");
}

cplx DensityMatrix::expectation(const CMat& observable) const {
  if (observable.rows() != dim() || observable.cols() != dim())
    throw std::invalid_argument("DensityMatrix::expectation: dim mismatch");
  return (rho_ * observable).trace();
}

double DensityMatrix::probability(const CMat& projector) const {
  const double p = std::real(expectation(projector));
  return std::min(1.0, std::max(0.0, p));
}

DensityMatrix DensityMatrix::tensor(const DensityMatrix& other) const {
  DensityMatrix out(*this);
  out.rho_ = linalg::kron(rho_, other.rho_);
  out.num_qubits_ = num_qubits_ + other.num_qubits_;
  return out;
}

DensityMatrix DensityMatrix::partial_trace_keep(const std::vector<std::size_t>& keep) const {
  if (keep.empty())
    throw std::invalid_argument("partial_trace_keep: must keep at least one qubit");
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= num_qubits_) throw std::out_of_range("partial_trace_keep: bad qubit");
    if (i > 0 && keep[i] <= keep[i - 1])
      throw std::invalid_argument("partial_trace_keep: qubits must be strictly ascending");
  }

  const std::size_t nk = keep.size();
  const std::size_t out_dim = std::size_t{1} << nk;

  // Complement (traced-out) qubits.
  std::vector<std::size_t> traced;
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    bool kept = false;
    for (std::size_t kq : keep) kept |= (kq == q);
    if (!kept) traced.push_back(q);
  }
  const std::size_t nt = traced.size();
  const std::size_t tr_dim = std::size_t{1} << nt;

  // Build a full-register index from (kept-bits, traced-bits) patterns.
  const auto make_index = [&](std::size_t kept_bits, std::size_t traced_bits) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < nk; ++i) {
      const std::size_t shift = num_qubits_ - 1 - keep[i];
      if (kept_bits & (std::size_t{1} << (nk - 1 - i))) idx |= std::size_t{1} << shift;
    }
    for (std::size_t i = 0; i < nt; ++i) {
      const std::size_t shift = num_qubits_ - 1 - traced[i];
      if (traced_bits & (std::size_t{1} << (nt - 1 - i))) idx |= std::size_t{1} << shift;
    }
    return idx;
  };

  CMat out(out_dim, out_dim);
  for (std::size_t a = 0; a < out_dim; ++a)
    for (std::size_t b = 0; b < out_dim; ++b) {
      cplx s(0, 0);
      for (std::size_t t = 0; t < tr_dim; ++t)
        s += rho_(make_index(a, t), make_index(b, t));
      out(a, b) = s;
    }

  DensityMatrix res(*this);
  res.rho_ = std::move(out);
  res.num_qubits_ = nk;
  return res;
}

DensityMatrix DensityMatrix::mix(const DensityMatrix& other, double p) const {
  if (p < 0 || p > 1) throw std::invalid_argument("DensityMatrix::mix: p outside [0,1]");
  if (dim() != other.dim()) throw std::invalid_argument("DensityMatrix::mix: dim mismatch");
  DensityMatrix out(*this);
  out.rho_ = rho_ * cplx(1 - p, 0) + other.rho_ * cplx(p, 0);
  return out;
}

DensityMatrix DensityMatrix::evolve(const CMat& u) const {
  if (u.rows() != dim() || u.cols() != dim())
    throw std::invalid_argument("DensityMatrix::evolve: dim mismatch");
  DensityMatrix out(*this);
  out.rho_ = u * rho_ * u.adjoint();
  return out;
}

}  // namespace qfc::quantum
