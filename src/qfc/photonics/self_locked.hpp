#pragma once

/// \file self_locked.hpp
/// The self-locked intra-cavity pumping scheme of Sec. II (ref [6]): the
/// microring sits inside an amplified fiber loop, so the system lases on
/// the external-cavity (loop) mode with the highest net gain — the one
/// closest to the drifting ring resonance. The pump therefore tracks the
/// resonance automatically; the residual pump-resonance detuning is
/// bounded by half the loop mode spacing, with no active stabilization.

#include <stdexcept>

namespace qfc::photonics {

class SelfLockedLoop {
 public:
  /// \param loop_length_m  physical fiber-loop length (meters)
  /// \param loop_index     effective index of the loop fiber
  explicit SelfLockedLoop(double loop_length_m = 10.0, double loop_index = 1.468);

  /// External-cavity mode spacing c/(n L).
  double loop_fsr_hz() const;

  /// Detuning between the lasing line (nearest loop mode) and the ring
  /// resonance at `ring_resonance_hz`: folded into ±loop_fsr/2.
  double lasing_detuning_hz(double ring_resonance_hz) const;

  /// Worst-case |detuning| = loop_fsr/2.
  double max_detuning_hz() const { return loop_fsr_hz() / 2.0; }

  /// Worst-case pair-rate dip for a ring of the given linewidth: the rate
  /// follows the squared Lorentzian enhancement, so
  ///   rate_min/rate_max = [1 + (loop_fsr/δν)²]⁻².
  double worst_case_rate_dip(double ring_linewidth_hz) const;

 private:
  double length_m_;
  double index_;
};

}  // namespace qfc::photonics
