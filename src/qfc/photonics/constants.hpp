#pragma once

/// \file constants.hpp
/// Physical constants and telecom-band definitions used across the library.
/// All values carry their unit in the name; no magic numbers elsewhere.

namespace qfc::photonics {

inline constexpr double speed_of_light_m_per_s = 299'792'458.0;
inline constexpr double planck_J_s = 6.62607015e-34;
inline constexpr double hbar_J_s = 1.054571817e-34;
inline constexpr double pi = 3.14159265358979323846;

/// ITU-T G.694.1 DWDM grid anchor frequency.
inline constexpr double itu_anchor_hz = 193.1e12;
/// Channel spacing used by the quantum frequency comb in the paper.
inline constexpr double itu_spacing_200ghz_hz = 200e9;

/// Telecom band edges (vacuum wavelength, meters).
inline constexpr double s_band_min_wavelength_m = 1460e-9;
inline constexpr double s_band_max_wavelength_m = 1530e-9;
inline constexpr double c_band_min_wavelength_m = 1530e-9;
inline constexpr double c_band_max_wavelength_m = 1565e-9;
inline constexpr double l_band_min_wavelength_m = 1565e-9;
inline constexpr double l_band_max_wavelength_m = 1625e-9;

/// Wavelength <-> frequency conversions (vacuum).
constexpr double frequency_from_wavelength(double wavelength_m) {
  return speed_of_light_m_per_s / wavelength_m;
}
constexpr double wavelength_from_frequency(double frequency_hz) {
  return speed_of_light_m_per_s / frequency_hz;
}

/// Telecom band classification for a vacuum frequency.
enum class TelecomBand { S, C, L, Outside };

constexpr TelecomBand classify_band(double frequency_hz) {
  const double wl = wavelength_from_frequency(frequency_hz);
  if (wl >= s_band_min_wavelength_m && wl < s_band_max_wavelength_m) return TelecomBand::S;
  if (wl >= c_band_min_wavelength_m && wl < c_band_max_wavelength_m) return TelecomBand::C;
  if (wl >= l_band_min_wavelength_m && wl <= l_band_max_wavelength_m) return TelecomBand::L;
  return TelecomBand::Outside;
}

constexpr const char* band_name(TelecomBand b) {
  switch (b) {
    case TelecomBand::S: return "S";
    case TelecomBand::C: return "C";
    case TelecomBand::L: return "L";
    default: return "outside";
  }
}

/// Energy of one photon at the given frequency.
constexpr double photon_energy_J(double frequency_hz) {
  return planck_J_s * frequency_hz;
}

}  // namespace qfc::photonics
