#pragma once

/// \file material.hpp
/// Bulk material dispersion models. The paper's platform is Hydex, a
/// CMOS-compatible high-index doped-silica glass (n ~ 1.7, negligible
/// nonlinear absorption; Moss et al., Nat. Photon. 7, 597 (2013)). The
/// exact Sellmeier coefficients are proprietary, so we use a two-term
/// Sellmeier surrogate fitted to the published refractive index and normal
/// bulk dispersion in the telecom window (see DESIGN.md §4).

#include <cstddef>

namespace qfc::photonics {

/// Two-term Sellmeier dispersion model:
///   n^2(λ) = 1 + Σ_i  B_i λ² / (λ² − C_i),  λ in meters.
class SellmeierMaterial {
 public:
  struct Term {
    double b;          ///< oscillator strength (dimensionless)
    double c_m2;       ///< resonance wavelength squared, m²
  };

  SellmeierMaterial(Term t1, Term t2, double thermo_optic_per_K, const char* name);

  /// Refractive index at vacuum wavelength (meters). Throws for wavelengths
  /// at/below the UV resonance of the model.
  double index(double wavelength_m) const;

  /// Group index n_g = n - λ dn/dλ (central finite difference).
  double group_index(double wavelength_m) const;

  /// Group-velocity dispersion β₂ = λ³/(2πc²) d²n/dλ², s²/m.
  double gvd_s2_per_m(double wavelength_m) const;

  /// dn/dT, 1/K — used for thermal resonance-drift modeling.
  double thermo_optic_per_K() const noexcept { return dn_dT_; }

  const char* name() const noexcept { return name_; }

 private:
  Term t1_, t2_;
  double dn_dT_;
  const char* name_;
};

/// Hydex-like high-index glass: n(1550 nm) ≈ 1.70, normal bulk dispersion,
/// dn/dT ≈ 1.0e-5 / K (silica-like, the platform's thermal stability is one
/// of its selling points).
const SellmeierMaterial& hydex();

/// Fused silica (Malitson 1965 coefficients, truncated to two terms) — used
/// as a comparison cladding material and in tests as a known reference.
const SellmeierMaterial& fused_silica();

}  // namespace qfc::photonics
