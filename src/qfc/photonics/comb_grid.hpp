#pragma once

/// \file comb_grid.hpp
/// The frequency-channel bookkeeping of the quantum comb: symmetric
/// signal/idler channel pairs around the pump on a fixed grid (the ring
/// FSR ≈ ITU 200 GHz spacing), with telecom-band classification and ITU
/// channel numbering.

#include <string>
#include <vector>

#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

struct CombChannel {
  int offset;           ///< signed multiple of the spacing from the pump (≠ 0)
  double frequency_hz;  ///< absolute frequency
  TelecomBand band;     ///< telecom band this channel falls into
};

/// A signal/idler pair symmetric about the pump: signal at +k, idler at −k.
struct ChannelPair {
  int k;  ///< pair index, k >= 1
  CombChannel signal;
  CombChannel idler;
};

class CombGrid {
 public:
  /// \param pump_hz     pump (comb center) frequency
  /// \param spacing_hz  channel spacing (one ring FSR)
  /// \param num_pairs   number of symmetric pairs tracked on each side
  CombGrid(double pump_hz, double spacing_hz, int num_pairs);

  double pump_hz() const noexcept { return pump_hz_; }
  double spacing_hz() const noexcept { return spacing_hz_; }
  int num_pairs() const noexcept { return num_pairs_; }

  /// Channel at signed offset k (k > 0 signal side, k < 0 idler side).
  CombChannel channel(int offset) const;

  /// Symmetric pair k (1-based).
  ChannelPair pair(int k) const;

  std::vector<ChannelPair> pairs() const;

  /// All channels, ascending in frequency (idlers then signals).
  std::vector<CombChannel> channels() const;

  /// True if every tracked channel lies in S, C or L band.
  bool covers_telecom_bands_only() const;

  /// Nearest 100-GHz ITU-T G.694.1 channel number n for a frequency:
  /// ν = 190.0 THz + n × 0.1 THz  (C-band convention, n can be negative).
  static int itu_channel_number(double frequency_hz);

  /// Human-readable label like "C42 (+3, 193.70 THz, C band)".
  static std::string describe(const CombChannel& ch);

 private:
  double pump_hz_;
  double spacing_hz_;
  int num_pairs_;
};

}  // namespace qfc::photonics
