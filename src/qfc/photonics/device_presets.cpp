#include "qfc/photonics/device_presets.hpp"

#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

namespace {

/// Hydex propagation loss (Moss et al. 2013 quote ~0.06 dB/cm).
constexpr double hydex_loss_db_per_m = 6.0;

/// Radius giving the requested FSR for the given waveguide at 193.1 THz.
double radius_for_fsr(const Waveguide& wg, double fsr_hz, Polarization pol) {
  const double ng = wg.group_index(itu_anchor_hz, pol);
  return speed_of_light_m_per_s / (ng * fsr_hz * 2.0 * pi);
}

MicroringResonator make_device(WaveguideGeometry geom, double target_linewidth_hz,
                               double tm_phase_trim = 0.0) {
  const Waveguide wg(geom, hydex(), 0.012, tm_phase_trim);
  const double radius = radius_for_fsr(wg, itu_spacing_200ghz_hz, Polarization::TE);
  const double t = design_symmetric_coupling_for_linewidth(
      wg, radius, hydex_loss_db_per_m, target_linewidth_hz, itu_anchor_hz);
  return MicroringResonator(wg, radius, t, t, hydex_loss_db_per_m);
}

}  // namespace

MicroringResonator heralded_source_device() {
  // Square core: negligible birefringence; loaded linewidth 110 MHz — the
  // value the Sec. II photon-linewidth measurement is consistent with.
  return make_device({1.50e-6, 1.50e-6}, 110e6);
}

MicroringResonator entanglement_device() {
  // Loaded Q ≈ 235,000 at 193.1 THz -> linewidth ≈ 822 MHz (ref [8]).
  return make_device({1.50e-6, 1.50e-6}, itu_anchor_hz / 235000.0);
}

MicroringResonator type2_device() {
  // Dispersion-engineered birefringence (tm_phase_trim): the TM resonance
  // grid is offset by ~33 GHz from the TE grid — enough to kill stimulated
  // FWM — while the TE and TM FSRs stay equal so spontaneous type-II FWM
  // remains energy-matched across channels (Sec. III). The 80 MHz loaded
  // linewidth puts the OPO threshold at ~14 mW for Hydex γ = 0.25 W⁻¹m⁻¹
  // (ref [7]).
  return make_device({1.50e-6, 1.50e-6}, 80e6, -1.5e-3);
}

MicroringResonator type2_device_no_offset() {
  return make_device({1.50e-6, 1.50e-6}, 80e6);
}

double pump_resonance_hz(const MicroringResonator& ring, Polarization pol) {
  return ring.nearest_resonance_hz(itu_anchor_hz, pol);
}

}  // namespace qfc::photonics
