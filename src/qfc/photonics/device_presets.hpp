#pragma once

/// \file device_presets.hpp
/// Ready-made ring devices matching the three experiments summarized in the
/// paper. Parameter values are taken from (or designed to match) the
/// figures quoted in the DATE abstract and its references [6]-[8].

#include "qfc/photonics/microring.hpp"

namespace qfc::photonics {

/// Sec. II device (ref [6]): very high-Q ring, 200 GHz FSR, loaded
/// linewidth ≈ 100 MHz so the measured (jitter-broadened) photon linewidth
/// comes out at ≈ 110 MHz.
MicroringResonator heralded_source_device();

/// Sec. IV/V device (ref [8]): 200 GHz FSR ring with loaded Q ≈ 235,000
/// (linewidth ≈ 820 MHz) used for the time-bin and multi-photon work.
MicroringResonator entanglement_device();

/// Sec. III device (ref [7]): birefringent ring (width ≠ height) whose
/// TE/TM resonance grids are mutually offset, suppressing stimulated FWM
/// while keeping the FSRs nearly equal for spontaneous type-II FWM.
MicroringResonator type2_device();

/// Same cross-section as type2_device but with a square core (no
/// birefringence) — the "broken" design used by ablation benches to show
/// stimulated FWM is NOT suppressed without the TE/TM offset.
MicroringResonator type2_device_no_offset();

/// The pump frequency used throughout: ring resonance nearest the ITU
/// anchor 193.1 THz (≈ 1552.5 nm, C band) for the given device.
double pump_resonance_hz(const MicroringResonator& ring,
                         Polarization pol = Polarization::TE);

}  // namespace qfc::photonics
