#include "qfc/photonics/waveguide.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

namespace {
constexpr double trim_reference_wavelength_m = 1.55e-6;
}

Waveguide::Waveguide(WaveguideGeometry geometry, const SellmeierMaterial& material,
                     double confinement_strength, double tm_phase_trim)
    : geometry_(geometry),
      material_(&material),
      eta_(confinement_strength),
      tm_phase_trim_(tm_phase_trim) {
  if (geometry.width_m <= 0 || geometry.height_m <= 0)
    throw std::invalid_argument("Waveguide: non-positive core dimension");
  if (eta_ < 0) throw std::invalid_argument("Waveguide: negative confinement strength");
}

double Waveguide::confinement_penalty(double wavelength_m, Polarization pol) const {
  const double d = (pol == Polarization::TE) ? geometry_.width_m : geometry_.height_m;
  const double ratio = wavelength_m / d;
  return eta_ * ratio * ratio;
}

double Waveguide::effective_index(double frequency_hz, Polarization pol) const {
  if (frequency_hz <= 0) throw std::invalid_argument("Waveguide: frequency <= 0");
  const double wl = wavelength_from_frequency(frequency_hz);
  double n = material_->index(wl) - confinement_penalty(wl, pol);
  if (pol == Polarization::TM)
    n += tm_phase_trim_ * (wl / trim_reference_wavelength_m);
  if (n <= 1.0)
    throw std::invalid_argument("Waveguide: mode below cutoff in surrogate model");
  return n;
}

double Waveguide::group_index(double frequency_hz, Polarization pol) const {
  const double h = frequency_hz * 1e-5;
  const double dn_df =
      (effective_index(frequency_hz + h, pol) - effective_index(frequency_hz - h, pol)) /
      (2 * h);
  return effective_index(frequency_hz, pol) + frequency_hz * dn_df;
}

double Waveguide::gvd_s2_per_m(double frequency_hz, Polarization pol) const {
  // β₂ = dβ₁/dω with β₁ = n_g/c; ω = 2πν.
  const double h = frequency_hz * 1e-4;
  const double b1_plus = group_index(frequency_hz + h, pol) / speed_of_light_m_per_s;
  const double b1_minus = group_index(frequency_hz - h, pol) / speed_of_light_m_per_s;
  return (b1_plus - b1_minus) / (2 * h * 2 * pi);
}

double Waveguide::birefringence(double frequency_hz) const {
  return effective_index(frequency_hz, Polarization::TE) -
         effective_index(frequency_hz, Polarization::TM);
}

double Waveguide::dn_dT_per_K() const { return material_->thermo_optic_per_K(); }

}  // namespace qfc::photonics
