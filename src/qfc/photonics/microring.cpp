#include "qfc/photonics/microring.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "qfc/linalg/error.hpp"
#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

using cplx = std::complex<double>;

MicroringResonator::MicroringResonator(Waveguide waveguide, double radius_m, double t1,
                                       double t2, double loss_db_per_m)
    : waveguide_(waveguide),
      radius_(radius_m),
      circumference_(2.0 * pi * radius_m),
      t1_(t1),
      t2_(t2),
      loss_db_per_m_(loss_db_per_m) {
  if (radius_m <= 0) throw std::invalid_argument("MicroringResonator: radius <= 0");
  if (t1 <= 0 || t1 >= 1 || t2 <= 0 || t2 >= 1)
    throw std::invalid_argument("MicroringResonator: self-coupling must be in (0,1)");
  if (loss_db_per_m < 0)
    throw std::invalid_argument("MicroringResonator: negative loss");
}

double MicroringResonator::round_trip_amplitude() const {
  return std::pow(10.0, -loss_db_per_m_ * circumference_ / 20.0);
}

double MicroringResonator::fsr_hz(double frequency_hz, Polarization pol) const {
  return speed_of_light_m_per_s /
         (waveguide_.group_index(frequency_hz, pol) * circumference_);
}

double MicroringResonator::resonance_frequency_hz(int mode_number, Polarization pol) const {
  if (mode_number <= 0)
    throw std::invalid_argument("MicroringResonator: mode number must be positive");
  // Fixed point of ν = m c / (n_eff(ν) L); dispersion is weak so a few
  // iterations reach sub-Hz accuracy.
  double nu = static_cast<double>(mode_number) * speed_of_light_m_per_s /
              (1.7 * circumference_);
  for (int it = 0; it < 32; ++it) {
    const double next = static_cast<double>(mode_number) * speed_of_light_m_per_s /
                        (waveguide_.effective_index(nu, pol) * circumference_);
    if (std::abs(next - nu) < 1e-3) return next;
    nu = next;
  }
  return nu;
}

int MicroringResonator::mode_number_near(double frequency_hz, Polarization pol) const {
  if (frequency_hz <= 0) throw std::invalid_argument("mode_number_near: frequency <= 0");
  return static_cast<int>(std::lround(
      frequency_hz * waveguide_.effective_index(frequency_hz, pol) * circumference_ /
      speed_of_light_m_per_s));
}

double MicroringResonator::nearest_resonance_hz(double frequency_hz, Polarization pol) const {
  const int m = mode_number_near(frequency_hz, pol);
  double best = resonance_frequency_hz(m, pol);
  // The rounding above can be off by one near mode boundaries; check both
  // neighbours.
  for (int dm : {-1, 1}) {
    if (m + dm <= 0) continue;
    const double cand = resonance_frequency_hz(m + dm, pol);
    if (std::abs(cand - frequency_hz) < std::abs(best - frequency_hz)) best = cand;
  }
  return best;
}

std::vector<double> MicroringResonator::resonances_in(double min_hz, double max_hz,
                                                      Polarization pol) const {
  if (min_hz <= 0 || max_hz < min_hz)
    throw std::invalid_argument("resonances_in: invalid range");
  std::vector<double> out;
  int m = mode_number_near(min_hz, pol);
  // Walk down until strictly below the window, then walk up collecting.
  while (m > 1 && resonance_frequency_hz(m, pol) >= min_hz) --m;
  for (;; ++m) {
    const double nu = resonance_frequency_hz(m, pol);
    if (nu < min_hz) continue;
    if (nu > max_hz) break;
    out.push_back(nu);
  }
  return out;
}

double MicroringResonator::finesse() const {
  const double rho = t1_ * t2_ * round_trip_amplitude();
  return pi * std::sqrt(rho) / (1.0 - rho);
}

double MicroringResonator::linewidth_hz(double frequency_hz, Polarization pol) const {
  return fsr_hz(frequency_hz, pol) / finesse();
}

double MicroringResonator::loaded_q(double frequency_hz, Polarization pol) const {
  return frequency_hz / linewidth_hz(frequency_hz, pol);
}

double MicroringResonator::intrinsic_q(double frequency_hz, Polarization pol) const {
  const double a = round_trip_amplitude();
  if (a >= 1.0) return std::numeric_limits<double>::infinity();
  const double f_intrinsic = pi * std::sqrt(a) / (1.0 - a);
  return frequency_hz / (fsr_hz(frequency_hz, pol) / f_intrinsic);
}

double MicroringResonator::round_trip_phase(double frequency_hz, Polarization pol) const {
  return 2.0 * pi * frequency_hz * waveguide_.effective_index(frequency_hz, pol) *
         circumference_ / speed_of_light_m_per_s;
}

cplx MicroringResonator::through_field(double frequency_hz, Polarization pol) const {
  const double a = round_trip_amplitude();
  const cplx ph = std::exp(cplx(0, round_trip_phase(frequency_hz, pol)));
  return (t1_ - t2_ * a * ph) / (1.0 - t1_ * t2_ * a * ph);
}

cplx MicroringResonator::drop_field(double frequency_hz, Polarization pol) const {
  const double a = round_trip_amplitude();
  const double k1 = std::sqrt(1.0 - t1_ * t1_);
  const double k2 = std::sqrt(1.0 - t2_ * t2_);
  const double phi = round_trip_phase(frequency_hz, pol);
  const cplx half = std::sqrt(a) * std::exp(cplx(0, phi / 2.0));
  return -k1 * k2 * half / (1.0 - t1_ * t2_ * a * std::exp(cplx(0, phi)));
}

double MicroringResonator::through_power(double frequency_hz, Polarization pol) const {
  return std::norm(through_field(frequency_hz, pol));
}

double MicroringResonator::drop_power(double frequency_hz, Polarization pol) const {
  return std::norm(drop_field(frequency_hz, pol));
}

double MicroringResonator::field_enhancement(double frequency_hz, Polarization pol) const {
  const double a = round_trip_amplitude();
  const double k1sq = 1.0 - t1_ * t1_;
  const cplx ph = std::exp(cplx(0, round_trip_phase(frequency_hz, pol)));
  return k1sq / std::norm(1.0 - t1_ * t2_ * a * ph);
}

double MicroringResonator::peak_field_enhancement() const {
  const double a = round_trip_amplitude();
  const double k1sq = 1.0 - t1_ * t1_;
  const double d = 1.0 - t1_ * t2_ * a;
  return k1sq / (d * d);
}

double MicroringResonator::thermal_shift_hz_per_K(double frequency_hz,
                                                  Polarization pol) const {
  return -frequency_hz * waveguide_.dn_dT_per_K() /
         waveguide_.group_index(frequency_hz, pol);
}

cplx MicroringResonator::lorentzian_amplitude(double detuning_hz, double fwhm_hz) {
  if (fwhm_hz <= 0) throw std::invalid_argument("lorentzian_amplitude: fwhm <= 0");
  const double hw = fwhm_hz / 2.0;
  return hw / cplx(hw, detuning_hz);
}

double design_symmetric_coupling_for_linewidth(const Waveguide& waveguide,
                                               double radius_m, double loss_db_per_m,
                                               double target_linewidth_hz,
                                               double at_frequency_hz, Polarization pol) {
  if (target_linewidth_hz <= 0)
    throw std::invalid_argument("design_symmetric_coupling: linewidth <= 0");
  const double circumference = 2.0 * pi * radius_m;
  const double ng = waveguide.group_index(at_frequency_hz, pol);
  const double fsr = speed_of_light_m_per_s / (ng * circumference);
  const double finesse = fsr / target_linewidth_hz;
  // Solve π√ρ/(1−ρ) = F for ρ = t² a:  F ρ + π √ρ − F = 0 in x = √ρ.
  const double x = (-pi + std::sqrt(pi * pi + 4.0 * finesse * finesse)) / (2.0 * finesse);
  const double rho = x * x;
  const double a = std::pow(10.0, -loss_db_per_m * circumference / 20.0);
  if (rho >= a)
    throw qfc::NumericalError(
        "design_symmetric_coupling: target linewidth unreachable at this loss");
  return std::sqrt(rho / a);
}

}  // namespace qfc::photonics
