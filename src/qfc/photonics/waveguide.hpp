#pragma once

/// \file waveguide.hpp
/// Effective-index model of the Hydex strip waveguide forming the ring.
/// A full vectorial mode solver is out of scope; we use a documented
/// surrogate in which each polarization pays a confinement penalty set by
/// the transverse dimension that confines its dominant field component:
///
///   n_eff(λ, pol) = n_core(λ) − η (λ / d_pol)²,
///   d_TE = width, d_TM = height.
///
/// This captures the two device-design levers the paper uses (Sec. III):
/// geometric birefringence (TE/TM resonance offset via width ≠ height) and
/// near-equal TE/TM group indices (similar free spectral ranges).
///
/// A second, *dispersion-engineered* birefringence mechanism is modeled by
/// `tm_phase_trim`: an additional TM phase-index term linear in λ,
///   n_TM += trim · (λ/λ_ref),   λ_ref = 1.55 µm.
/// Because a linear-in-λ index term cancels exactly in the group index
/// n_g = n − λ dn/dλ, this trim offsets the TM resonance grid WITHOUT
/// changing its FSR — the paper's Sec. III requirement ("frequency offset
/// between TE and TM modes ... dispersion controlled to achieve similar
/// free spectral ranges").

#include "qfc/photonics/material.hpp"

namespace qfc::photonics {

enum class Polarization { TE, TM };

constexpr const char* polarization_name(Polarization p) {
  return p == Polarization::TE ? "TE" : "TM";
}
constexpr Polarization orthogonal(Polarization p) {
  return p == Polarization::TE ? Polarization::TM : Polarization::TE;
}

struct WaveguideGeometry {
  double width_m;   ///< horizontal core dimension
  double height_m;  ///< vertical core dimension
};

class Waveguide {
 public:
  /// \param geometry   core cross-section
  /// \param material   core material dispersion model
  /// \param confinement_strength  η in the model above (default fitted so a
  ///        1.5 µm × 1.45 µm Hydex core gives n_eff ≈ 1.69 at 1550 nm)
  /// \param tm_phase_trim  dispersion-engineered TM phase-index offset
  ///        (see file comment); 0 = plain geometric model
  Waveguide(WaveguideGeometry geometry, const SellmeierMaterial& material,
            double confinement_strength = 0.012, double tm_phase_trim = 0.0);

  double effective_index(double frequency_hz, Polarization pol) const;

  /// Group index n_g = n_eff + ν dn_eff/dν.
  double group_index(double frequency_hz, Polarization pol) const;

  /// GVD β₂ of the guided mode, s²/m.
  double gvd_s2_per_m(double frequency_hz, Polarization pol) const;

  /// n_eff(TE) − n_eff(TM) at the given frequency.
  double birefringence(double frequency_hz) const;

  /// Thermo-optic resonance drift input: dn_eff/dT ≈ dn_core/dT.
  double dn_dT_per_K() const;

  const WaveguideGeometry& geometry() const noexcept { return geometry_; }
  const SellmeierMaterial& material() const noexcept { return *material_; }

 private:
  double confinement_penalty(double wavelength_m, Polarization pol) const;

  WaveguideGeometry geometry_;
  const SellmeierMaterial* material_;
  double eta_;
  double tm_phase_trim_;
};

}  // namespace qfc::photonics
