#include "qfc/photonics/material.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

SellmeierMaterial::SellmeierMaterial(Term t1, Term t2, double thermo_optic_per_K,
                                     const char* name)
    : t1_(t1), t2_(t2), dn_dT_(thermo_optic_per_K), name_(name) {}

double SellmeierMaterial::index(double wavelength_m) const {
  if (wavelength_m <= 0) throw std::invalid_argument("SellmeierMaterial::index: wavelength <= 0");
  const double l2 = wavelength_m * wavelength_m;
  if (l2 <= t1_.c_m2)
    throw std::invalid_argument("SellmeierMaterial::index: wavelength below UV resonance");
  const double n2 = 1.0 + t1_.b * l2 / (l2 - t1_.c_m2) + t2_.b * l2 / (l2 - t2_.c_m2);
  if (n2 <= 0) throw std::invalid_argument("SellmeierMaterial::index: model invalid here");
  return std::sqrt(n2);
}

double SellmeierMaterial::group_index(double wavelength_m) const {
  const double h = wavelength_m * 1e-4;
  const double dn_dl = (index(wavelength_m + h) - index(wavelength_m - h)) / (2 * h);
  return index(wavelength_m) - wavelength_m * dn_dl;
}

double SellmeierMaterial::gvd_s2_per_m(double wavelength_m) const {
  const double h = wavelength_m * 1e-3;
  const double d2n_dl2 =
      (index(wavelength_m + h) - 2 * index(wavelength_m) + index(wavelength_m - h)) / (h * h);
  const double c = speed_of_light_m_per_s;
  return wavelength_m * wavelength_m * wavelength_m / (2 * pi * c * c) * d2n_dl2;
}

const SellmeierMaterial& hydex() {
  // Surrogate fit: n(1550 nm) ≈ 1.70, normal bulk dispersion across S/C/L.
  static const SellmeierMaterial m({1.88, 1.21e-14}, {0.08, 8.1e-11}, 1.0e-5, "Hydex");
  return m;
}

const SellmeierMaterial& fused_silica() {
  // Two-term refit of Malitson (1965): n(1550 nm) ≈ 1.443.
  static const SellmeierMaterial m({1.10, 8.464e-15}, {0.90, 9.7934e-11}, 8.6e-6,
                                   "fused silica");
  return m;
}

}  // namespace qfc::photonics
