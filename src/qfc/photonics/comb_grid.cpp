#include "qfc/photonics/comb_grid.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qfc::photonics {

CombGrid::CombGrid(double pump_hz, double spacing_hz, int num_pairs)
    : pump_hz_(pump_hz), spacing_hz_(spacing_hz), num_pairs_(num_pairs) {
  if (pump_hz <= 0) throw std::invalid_argument("CombGrid: pump frequency <= 0");
  if (spacing_hz <= 0) throw std::invalid_argument("CombGrid: spacing <= 0");
  if (num_pairs < 1) throw std::invalid_argument("CombGrid: need at least one pair");
  if (static_cast<double>(num_pairs) * spacing_hz >= pump_hz)
    throw std::invalid_argument("CombGrid: grid extends to non-positive frequencies");
}

CombChannel CombGrid::channel(int offset) const {
  if (offset == 0)
    throw std::invalid_argument("CombGrid::channel: offset 0 is the pump, not a channel");
  if (std::abs(offset) > num_pairs_)
    throw std::out_of_range("CombGrid::channel: offset outside tracked grid");
  const double f = pump_hz_ + static_cast<double>(offset) * spacing_hz_;
  return CombChannel{offset, f, classify_band(f)};
}

ChannelPair CombGrid::pair(int k) const {
  if (k < 1 || k > num_pairs_) throw std::out_of_range("CombGrid::pair: bad index");
  return ChannelPair{k, channel(k), channel(-k)};
}

std::vector<ChannelPair> CombGrid::pairs() const {
  std::vector<ChannelPair> out;
  out.reserve(static_cast<std::size_t>(num_pairs_));
  for (int k = 1; k <= num_pairs_; ++k) out.push_back(pair(k));
  return out;
}

std::vector<CombChannel> CombGrid::channels() const {
  std::vector<CombChannel> out;
  out.reserve(2 * static_cast<std::size_t>(num_pairs_));
  for (int k = -num_pairs_; k <= num_pairs_; ++k)
    if (k != 0) out.push_back(channel(k));
  return out;
}

bool CombGrid::covers_telecom_bands_only() const {
  for (const auto& ch : channels())
    if (ch.band == TelecomBand::Outside) return false;
  return true;
}

int CombGrid::itu_channel_number(double frequency_hz) {
  return static_cast<int>(std::lround((frequency_hz - 190.0e12) / 100e9));
}

std::string CombGrid::describe(const CombChannel& ch) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "ITU %+d (offset %+d, %.2f THz, %s band)",
                itu_channel_number(ch.frequency_hz), ch.offset, ch.frequency_hz / 1e12,
                band_name(ch.band));
  return buf;
}

}  // namespace qfc::photonics
