#include "qfc/photonics/self_locked.hpp"

#include <cmath>

#include "qfc/photonics/constants.hpp"

namespace qfc::photonics {

SelfLockedLoop::SelfLockedLoop(double loop_length_m, double loop_index)
    : length_m_(loop_length_m), index_(loop_index) {
  if (loop_length_m <= 0) throw std::invalid_argument("SelfLockedLoop: length <= 0");
  if (loop_index < 1.0) throw std::invalid_argument("SelfLockedLoop: index < 1");
}

double SelfLockedLoop::loop_fsr_hz() const {
  return speed_of_light_m_per_s / (index_ * length_m_);
}

double SelfLockedLoop::lasing_detuning_hz(double ring_resonance_hz) const {
  if (ring_resonance_hz <= 0)
    throw std::invalid_argument("lasing_detuning_hz: resonance <= 0");
  const double fsr = loop_fsr_hz();
  // Loop-mode grid is anchored at multiples of the loop FSR; the lasing
  // mode is the grid point nearest the resonance.
  const double frac = std::remainder(ring_resonance_hz, fsr);
  return frac;  // in (−fsr/2, +fsr/2]
}

double SelfLockedLoop::worst_case_rate_dip(double ring_linewidth_hz) const {
  if (ring_linewidth_hz <= 0)
    throw std::invalid_argument("worst_case_rate_dip: linewidth <= 0");
  const double x = loop_fsr_hz() / ring_linewidth_hz;  // 2·max_det/δν
  const double enhancement = 1.0 / (1.0 + x * x);
  return enhancement * enhancement;
}

}  // namespace qfc::photonics
