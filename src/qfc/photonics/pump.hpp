#pragma once

/// \file pump.hpp
/// Pump configurations — the experimental "knob" the paper turns to select
/// which quantum state the comb generates (Sec. II–V). Each configuration
/// is a small value type consumed by the SFWM engine and the core API.

#include <stdexcept>

#include "qfc/photonics/waveguide.hpp"

namespace qfc::photonics {

/// How the CW pump tracks the ring resonance.
enum class PumpLocking {
  /// Ring sits inside the pump laser's own cavity; lasing line follows the
  /// resonance automatically (paper Sec. II, ref [6]) — no active control.
  SelfLocked,
  /// External laser tuned once to the resonance; thermal drift of the ring
  /// detunes it over time.
  ExternalFixed,
};

/// Continuous-wave pump for the heralded single-photon configuration.
struct CwPump {
  double power_w = 0.0;          ///< average power at the ring input
  double frequency_hz = 0.0;     ///< nominal pump frequency (on resonance)
  PumpLocking locking = PumpLocking::SelfLocked;

  void validate() const {
    if (power_w < 0) throw std::invalid_argument("CwPump: negative power");
    if (frequency_hz <= 0) throw std::invalid_argument("CwPump: frequency <= 0");
  }
};

/// Bichromatic, orthogonally polarized CW pump for type-II SFWM
/// (paper Sec. III, ref [7]): one field on a TE resonance, one on a TM
/// resonance.
struct CrossPolarizedPump {
  double power_te_w = 0.0;
  double power_tm_w = 0.0;
  double frequency_te_hz = 0.0;
  double frequency_tm_hz = 0.0;

  double total_power_w() const { return power_te_w + power_tm_w; }

  void validate() const {
    if (power_te_w < 0 || power_tm_w < 0)
      throw std::invalid_argument("CrossPolarizedPump: negative power");
    if (frequency_te_hz <= 0 || frequency_tm_hz <= 0)
      throw std::invalid_argument("CrossPolarizedPump: frequency <= 0");
  }
};

/// Pulse train parameters for the time-bin configuration.
struct PulseTrain {
  double repetition_rate_hz = 0.0;
  double pulse_fwhm_s = 0.0;      ///< intensity FWHM of one pulse
  double average_power_w = 0.0;

  double pulse_energy_J() const {
    if (repetition_rate_hz <= 0) throw std::invalid_argument("PulseTrain: rep rate <= 0");
    return average_power_w / repetition_rate_hz;
  }

  void validate() const {
    if (repetition_rate_hz <= 0) throw std::invalid_argument("PulseTrain: rep rate <= 0");
    if (pulse_fwhm_s <= 0) throw std::invalid_argument("PulseTrain: pulse width <= 0");
    if (average_power_w < 0) throw std::invalid_argument("PulseTrain: negative power");
  }
};

/// Coherent double pulse produced by the unbalanced, phase-stabilized
/// Michelson interferometer (paper Sec. IV, ref [8]). The two pulses define
/// the |short> and |long> time bins.
struct DoublePulsePump {
  PulseTrain train;
  double bin_separation_s = 0.0;   ///< interferometer imbalance (time-bin spacing)
  double pump_phase_rad = 0.0;     ///< relative phase between the two pulses
  double frequency_hz = 0.0;       ///< carrier, filtered to one ring resonance

  void validate() const {
    train.validate();
    if (bin_separation_s <= 0)
      throw std::invalid_argument("DoublePulsePump: bin separation <= 0");
    if (bin_separation_s < 4.0 * train.pulse_fwhm_s)
      throw std::invalid_argument(
          "DoublePulsePump: time bins overlap (separation < 4x pulse width)");
    if (frequency_hz <= 0) throw std::invalid_argument("DoublePulsePump: frequency <= 0");
  }
};

}  // namespace qfc::photonics
