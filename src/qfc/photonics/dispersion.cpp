#include "qfc/photonics/dispersion.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/linalg/solve.hpp"

namespace qfc::photonics {

double integrated_dispersion_hz(const MicroringResonator& ring, double anchor_hz, int k,
                                Polarization pol) {
  const int m0 = ring.mode_number_near(anchor_hz, pol);
  if (m0 + k <= 1 || m0 <= 2)
    throw std::invalid_argument("integrated_dispersion_hz: mode index underflow");
  const double nu0 = ring.resonance_frequency_hz(m0, pol);
  const double fsr = (ring.resonance_frequency_hz(m0 + 1, pol) -
                      ring.resonance_frequency_hz(m0 - 1, pol)) /
                     2.0;
  return ring.resonance_frequency_hz(m0 + k, pol) - nu0 - static_cast<double>(k) * fsr;
}

DispersionProfile dispersion_profile(const MicroringResonator& ring, double anchor_hz,
                                     int num_k, Polarization pol) {
  if (num_k < 2) throw std::invalid_argument("dispersion_profile: need num_k >= 2");
  DispersionProfile prof;
  for (int k = -num_k; k <= num_k; ++k) {
    prof.k.push_back(k);
    prof.dint_hz.push_back(integrated_dispersion_hz(ring, anchor_hz, k, pol));
  }

  // Fit Dint(k) = (D2/2) k² + D3' k³ (cubic term absorbs asymmetry).
  linalg::RMat a(prof.k.size(), 2);
  linalg::RVec b(prof.k.size());
  for (std::size_t i = 0; i < prof.k.size(); ++i) {
    const double kk = static_cast<double>(prof.k[i]);
    a(i, 0) = kk * kk / 2.0;
    a(i, 1) = kk * kk * kk / 6.0;
    b[i] = prof.dint_hz[i];
  }
  const linalg::RVec coef = linalg::least_squares(a, b);
  prof.d2_hz = coef[0];
  return prof;
}

int phase_matched_pair_count(const MicroringResonator& ring, double anchor_hz, int max_k,
                             Polarization pol) {
  const double lw = ring.linewidth_hz(anchor_hz, pol);
  int count = 0;
  for (int k = 1; k <= max_k; ++k) {
    const double mismatch = integrated_dispersion_hz(ring, anchor_hz, k, pol) +
                            integrated_dispersion_hz(ring, anchor_hz, -k, pol);
    if (std::abs(mismatch) < lw / 2.0)
      ++count;
    else
      break;  // mismatch grows monotonically in our devices
  }
  return count;
}

}  // namespace qfc::photonics
