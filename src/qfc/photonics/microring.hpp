#pragma once

/// \file microring.hpp
/// Add-drop microring resonator model: resonance grid, loaded/intrinsic Q,
/// linewidth, finesse, field enhancement and port transfer functions for
/// both polarizations. This is the simulated stand-in for the paper's
/// high-Q Hydex ring (DESIGN.md §4).

#include <complex>
#include <vector>

#include "qfc/photonics/waveguide.hpp"

namespace qfc::photonics {

class MicroringResonator {
 public:
  /// \param waveguide   ring waveguide (geometry + material dispersion)
  /// \param radius_m    ring radius (circumference = 2πR)
  /// \param t1          field self-coupling of the input bus coupler, in (0,1)
  /// \param t2          field self-coupling of the drop bus coupler, in (0,1)
  /// \param loss_db_per_m  propagation loss of the ring waveguide
  MicroringResonator(Waveguide waveguide, double radius_m, double t1, double t2,
                     double loss_db_per_m);

  double circumference_m() const noexcept { return circumference_; }
  const Waveguide& waveguide() const noexcept { return waveguide_; }

  /// Single-pass field transmission a = 10^(−loss·L/20).
  double round_trip_amplitude() const;

  /// Free spectral range near the given frequency.
  double fsr_hz(double frequency_hz, Polarization pol) const;

  /// Frequency of longitudinal mode m (fixed-point solution of the
  /// resonance condition n_eff(ν) L ν / c = m).
  double resonance_frequency_hz(int mode_number, Polarization pol) const;

  /// Longitudinal mode number closest to the given frequency.
  int mode_number_near(double frequency_hz, Polarization pol) const;

  /// Closest resonance frequency to the given frequency.
  double nearest_resonance_hz(double frequency_hz, Polarization pol) const;

  /// All resonances with min <= ν <= max, ascending.
  std::vector<double> resonances_in(double min_hz, double max_hz, Polarization pol) const;

  /// Finesse = FSR / linewidth = π√(t1 t2 a) / (1 − t1 t2 a).
  double finesse() const;

  /// Loaded (FWHM) linewidth near the given frequency.
  double linewidth_hz(double frequency_hz, Polarization pol) const;

  /// Loaded quality factor ν/δν.
  double loaded_q(double frequency_hz, Polarization pol) const;

  /// Intrinsic Q (loss-limited, both couplers open).
  double intrinsic_q(double frequency_hz, Polarization pol) const;

  /// Round-trip phase 2πν n_eff L / c.
  double round_trip_phase(double frequency_hz, Polarization pol) const;

  /// Through-port field transfer (t1 − t2 a e^{iφ})/(1 − t1 t2 a e^{iφ}).
  std::complex<double> through_field(double frequency_hz, Polarization pol) const;

  /// Drop-port field transfer −κ1 κ2 √a e^{iφ/2}/(1 − t1 t2 a e^{iφ}).
  std::complex<double> drop_field(double frequency_hz, Polarization pol) const;

  double through_power(double frequency_hz, Polarization pol) const;
  double drop_power(double frequency_hz, Polarization pol) const;

  /// Intracavity intensity build-up |E_cav/E_in|² = κ1²/|1 − t1 t2 a e^{iφ}|².
  double field_enhancement(double frequency_hz, Polarization pol) const;

  /// On-resonance intensity build-up κ1²/(1 − t1 t2 a)².
  double peak_field_enhancement() const;

  /// Thermal tuning rate dν/dT = −ν (dn/dT)/n_g (negative: heating
  /// red-shifts resonances).
  double thermal_shift_hz_per_K(double frequency_hz, Polarization pol) const;

  /// Normalized complex Lorentzian resonance amplitude
  /// (δν/2) / (δν/2 + iΔ) for detuning Δ from line center — the spectral
  /// amplitude of photons emitted from a resonance of FWHM δν.
  static std::complex<double> lorentzian_amplitude(double detuning_hz, double fwhm_hz);

 private:
  Waveguide waveguide_;
  double radius_;
  double circumference_;
  double t1_, t2_;
  double loss_db_per_m_;
};

/// Solve for the symmetric coupling (t1 = t2 = t) that yields the target
/// loaded linewidth at the given frequency; throws NumericalError when the
/// propagation loss alone already exceeds the target.
double design_symmetric_coupling_for_linewidth(const Waveguide& waveguide,
                                               double radius_m, double loss_db_per_m,
                                               double target_linewidth_hz,
                                               double at_frequency_hz,
                                               Polarization pol = Polarization::TE);

}  // namespace qfc::photonics
