#pragma once

/// \file dispersion.hpp
/// Integrated-dispersion analysis of the resonance grid: Dint(k), the
/// second-order dispersion coefficient D2, and the phase-matching
/// bandwidth that limits how many comb channels generate pairs
/// efficiently. This is the device-level quantity behind the paper's
/// "broad frequency comb covering the S, C and L bands".

#include <vector>

#include "qfc/photonics/microring.hpp"

namespace qfc::photonics {

/// Dint(k) = ν_{m0+k} − ν_{m0} − k·FSR(m0): residual deviation of the
/// resonance grid from an equidistant comb anchored at the mode nearest
/// `anchor_hz`. The local FSR is defined symmetrically:
/// FSR(m0) = (ν_{m0+1} − ν_{m0−1})/2.
double integrated_dispersion_hz(const MicroringResonator& ring, double anchor_hz, int k,
                                Polarization pol = Polarization::TE);

/// Samples Dint over k = −num_k..num_k.
struct DispersionProfile {
  std::vector<int> k;
  std::vector<double> dint_hz;
  double d2_hz = 0;  ///< fitted from Dint(k) ≈ (D2/2) k² (least squares)
};

DispersionProfile dispersion_profile(const MicroringResonator& ring, double anchor_hz,
                                     int num_k, Polarization pol = Polarization::TE);

/// Number of symmetric channel pairs k for which the SFWM energy mismatch
/// Dint(k) + Dint(−k) stays below half the resonance linewidth — the
/// usable comb width for pair generation.
int phase_matched_pair_count(const MicroringResonator& ring, double anchor_hz,
                             int max_k, Polarization pol = Polarization::TE);

}  // namespace qfc::photonics
