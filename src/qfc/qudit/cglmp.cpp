#include "qfc/qudit/cglmp.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/linalg/backend.hpp"
#include "qfc/qudit/measurement.hpp"

namespace qfc::qudit {

namespace {

std::size_t checked_pair_dim(const DDensityMatrix& rho, const char* who) {
  if (rho.num_particles() != 2 || rho.dims()[0] != rho.dims()[1])
    throw std::invalid_argument(std::string(who) + ": need two equal-dimension qudits");
  return rho.dims()[0];
}

/// All four setting pairs' joint probabilities, indexed [a][b][m*d+n].
std::array<std::array<linalg::RVec, 2>, 2> all_joint_probabilities(
    const DDensityMatrix& rho, const CglmpSettings& s) {
  std::array<std::array<linalg::RVec, 2>, 2> p;
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 2; ++b) p[a][b] = cglmp_joint_probabilities(rho, a, b, s);
  return p;
}

/// I_d from per-setting joint probability tables (counts also work; each
/// table is normalized internally, which is what makes the count-based
/// estimator reuse this path).
double cglmp_from_probabilities(const std::array<std::array<linalg::RVec, 2>, 2>& p,
                                std::size_t d) {
  std::array<std::array<double, 2>, 2> norm{};
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 2; ++b) {
      double t = 0;
      for (double v : p[a][b]) t += v;
      if (t <= 0) throw std::invalid_argument("cglmp: empty probability table");
      norm[a][b] = t;
    }

  // P(A_a = B_b + k) and P(B_b = A_a + k), outcomes mod d.
  const auto p_a_eq_b_plus = [&](std::size_t a, std::size_t b, std::size_t k) {
    double s = 0;
    for (std::size_t j = 0; j < d; ++j) s += p[a][b][((j + k) % d) * d + j];
    return s / norm[a][b];
  };
  const auto p_b_eq_a_plus = [&](std::size_t a, std::size_t b, std::size_t k) {
    double s = 0;
    for (std::size_t j = 0; j < d; ++j) s += p[a][b][j * d + (j + k) % d];
    return s / norm[a][b];
  };

  const auto md = [&](long long x) {
    const long long dd = static_cast<long long>(d);
    return static_cast<std::size_t>(((x % dd) + dd) % dd);
  };

  double i_d = 0;
  for (std::size_t k = 0; k < d / 2; ++k) {
    const double w =
        1.0 - 2.0 * static_cast<double>(k) / (static_cast<double>(d) - 1.0);
    const long long kk = static_cast<long long>(k);
    double term = 0;
    term += p_a_eq_b_plus(0, 0, md(kk));           // P(A1 = B1 + k)
    term += p_b_eq_a_plus(1, 0, md(kk + 1));       // P(B1 = A2 + k + 1)
    term += p_a_eq_b_plus(1, 1, md(kk));           // P(A2 = B2 + k)
    term += p_b_eq_a_plus(0, 1, md(kk));           // P(B2 = A1 + k)
    term -= p_a_eq_b_plus(0, 0, md(-kk - 1));      // P(A1 = B1 − k − 1)
    term -= p_b_eq_a_plus(1, 0, md(-kk));          // P(B1 = A2 − k)
    term -= p_a_eq_b_plus(1, 1, md(-kk - 1));      // P(A2 = B2 − k − 1)
    term -= p_b_eq_a_plus(0, 1, md(-kk - 1));      // P(B2 = A1 − k − 1)
    i_d += w * term;
  }
  return i_d;
}

}  // namespace

namespace {

struct SettingProjectors {
  std::vector<CMat> alice, bob;
};

/// Alice projects onto (1/√d) Σ_j e^{+i 2π j (m + α_a)/d}|j⟩, Bob onto the
/// conjugate family (1/√d) Σ_j e^{−i 2π j (n − β_b)/d}|j⟩ — the CGLMP
/// measurement layout, realized by Fourier-basis analyzers.
SettingProjectors setting_projectors(std::size_t d, std::size_t a, std::size_t b,
                                     const CglmpSettings& s) {
  if (a > 1 || b > 1) throw std::out_of_range("cglmp: setting index > 1");
  const FreqBinAnalyzer analyzer(d);
  SettingProjectors out;
  out.alice.reserve(d);
  out.bob.reserve(d);
  for (std::size_t m = 0; m < d; ++m)
    out.alice.push_back(FreqBinAnalyzer::ideal_projector(
        analyzer.fourier_vector(m, s.alpha[a], false)));
  for (std::size_t n = 0; n < d; ++n)
    out.bob.push_back(FreqBinAnalyzer::ideal_projector(
        analyzer.fourier_vector(n, -s.beta[b], true)));
  return out;
}

}  // namespace

linalg::RVec cglmp_joint_probabilities(const DDensityMatrix& rho, std::size_t a,
                                       std::size_t b, const CglmpSettings& s) {
  const std::size_t d = checked_pair_dim(rho, "cglmp_joint_probabilities");
  const SettingProjectors proj = setting_projectors(d, a, b, s);
  linalg::RVec p(d * d);
  for (std::size_t m = 0; m < d; ++m)
    for (std::size_t n = 0; n < d; ++n)
      p[m * d + n] = rho.probability(linalg::kron(proj.alice[m], proj.bob[n]));
  return p;
}

double cglmp_value(const DDensityMatrix& rho, const CglmpSettings& s) {
  const std::size_t d = checked_pair_dim(rho, "cglmp_value");
  return cglmp_from_probabilities(all_joint_probabilities(rho, s), d);
}

std::vector<double> cglmp_values(const std::vector<DDensityMatrix>& rhos,
                                 const CglmpSettings& s) {
  std::vector<double> out(rhos.size(), 0.0);
  linalg::detail::parallel_batch(rhos.size(), [&](std::size_t i) {
    out[i] = cglmp_value(rhos[i], s);
  });
  return out;
}

double cglmp_max_entangled_value(std::size_t d) {
  return cglmp_value(DDensityMatrix(DState::maximally_entangled(d)));
}

CglmpMeasurement measure_cglmp(const DDensityMatrix& rho, double pairs_per_setting,
                               double accidentals_per_outcome, rng::Xoshiro256& g,
                               const CglmpSettings& s) {
  const std::size_t d = checked_pair_dim(rho, "measure_cglmp");
  if (pairs_per_setting <= 0)
    throw std::invalid_argument("measure_cglmp: pairs_per_setting <= 0");
  if (accidentals_per_outcome < 0)
    throw std::invalid_argument("measure_cglmp: negative accidentals");

  std::array<std::array<linalg::RVec, 2>, 2> counts;
  double inv_total = 0;
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 2; ++b) {
      const SettingProjectors proj = setting_projectors(d, a, b, s);
      const auto raw = simulate_joint_counts(rho, proj.alice, proj.bob,
                                             pairs_per_setting,
                                             accidentals_per_outcome, g);
      counts[a][b].assign(raw.begin(), raw.end());
      double t = 0;
      for (double c : counts[a][b]) t += c;
      if (t > 0) inv_total += 1.0 / t;
    }

  CglmpMeasurement m;
  m.i_value = cglmp_from_probabilities(counts, d);
  // Error model: I_d is a sum of four per-setting probability combinations,
  // each with multinomial variance <= 1/N per setting (the probability
  // weights are bounded by 1); this matches the CHSH-style estimate at d=2.
  m.i_err = std::sqrt(inv_total);
  return m;
}

std::size_t schmidt_number_witness(const DDensityMatrix& rho) {
  const std::size_t d = checked_pair_dim(rho, "schmidt_number_witness");
  const double f = fidelity(rho, DState::maximally_entangled(d));
  // Schmidt number <= r implies F <= r/d; certify the smallest r consistent
  // with the observed fidelity (numerical slack keeps F = r/d exactly from
  // over-claiming).
  const double scaled = f * static_cast<double>(d);
  const auto bound = static_cast<std::size_t>(std::ceil(scaled - 1e-9));
  return std::max<std::size_t>(1, std::min(bound, d));
}

}  // namespace qfc::qudit
