#pragma once

/// \file freq_bin_source.hpp
/// Frequency-bin entangled qudit pairs from the comb: the d symmetric
/// signal/idler channel pairs around the pump carry a two-qudit state
/// |ψ⟩ = Σ_k c_k |k⟩_s |k⟩_i whose amplitudes come from the per-pair SFWM
/// brightness the sfwm layer computes (|c_k|² ∝ R(k)), with per-bin phases
/// from pump/dispersion. Amplitude/symmetry control follows Maltese et al.
/// 2019: a programmable pulse-shaper mask reshapes the c_k, and the
/// procrustean flattening mask equalizes them into the maximally entangled
/// state at a quantifiable post-selection cost.

#include <vector>

#include "qfc/photonics/comb_grid.hpp"
#include "qfc/qudit/dstate.hpp"
#include "qfc/sfwm/pair_source.hpp"

namespace qfc::qudit {

struct FreqBinConfig {
  std::size_t dimension = 2;  ///< d: uses comb channel pairs k = 1..d as bins
  /// Per-bin phase (pump phase + dispersion walk-off), radians; empty = 0.
  std::vector<double> bin_phase_rad;

  /// Config-only checks (dimension, phase-profile shape); throws
  /// std::invalid_argument with "FreqBinConfig.field: ..." messages. The
  /// FreqBinSource constructor calls this and then checks the
  /// brightness/grid cross-constraints.
  void validate() const;
};

class FreqBinSource {
 public:
  /// \param grid        comb channel grid (must track >= dimension pairs)
  /// \param brightness  per-pair SFWM brightness (rate or mean pairs per
  ///                    pulse) for pairs k = 1..grid.num_pairs()
  FreqBinSource(photonics::CombGrid grid, std::vector<double> brightness,
                FreqBinConfig cfg);

  /// Bins from a CW-pumped source's per-channel pair rates.
  static FreqBinSource from_cw_source(const sfwm::CwPairSource& src,
                                      std::size_t dimension);

  /// Bins from a pulsed source's per-channel mean pair numbers.
  static FreqBinSource from_pulsed_source(const sfwm::PulsedPairSource& src,
                                          std::size_t dimension);

  std::size_t dimension() const noexcept { return cfg_.dimension; }
  const photonics::CombGrid& grid() const noexcept { return grid_; }
  const std::vector<double>& brightness() const noexcept { return brightness_; }

  /// Normalized bin amplitudes c_k (|c_k|² ∝ brightness, phases from cfg).
  CVec bin_amplitudes() const;

  /// The emitted two-qudit state Σ_k c_k |k⟩|k⟩.
  DState state() const;

  /// State after a pulse-shaper mask m_k (arbitrary complex per-bin
  /// transmission, |m_k| <= 1 physically): amplitudes ∝ m_k c_k.
  DState shaped_state(const CVec& mask) const;

  /// Post-selection probability of the mask: Σ|m_k c_k|² / Σ|c_k|².
  double shaping_efficiency(const CVec& mask) const;

  /// Procrustean mask flattening all bins to the weakest one; applying it
  /// yields the maximally entangled qudit pair.
  CVec flattening_mask() const;

  /// shaped_state(flattening_mask()) — the maximally entangled (1/√d)Σ|kk⟩.
  DState flattened_state() const;

  /// Schmidt number K of the unshaped state (effective dimensionality).
  double schmidt_number() const;

  /// Entanglement entropy of the unshaped state, bits (log₂d when flat).
  double entanglement_entropy_bits() const;

 private:
  photonics::CombGrid grid_;
  std::vector<double> brightness_;
  FreqBinConfig cfg_;
};

}  // namespace qfc::qudit
