#pragma once

/// \file cglmp.hpp
/// The Collins–Gisin–Linden–Massar–Popescu (CGLMP) Bell inequality for two
/// d-level systems (PRL 88, 040404), evaluated on frequency-bin qudit pairs
/// measured with Fourier-basis analyzers (EOM + pulse shaper). The local
/// bound is 2 for every d; the maximally entangled state with the standard
/// settings gives I_2 = 2√2 (= CHSH), I_3 ≈ 2.873, I_4 ≈ 2.896, growing
/// slowly with d. At d = 2 the expression reduces exactly to CHSH with
/// analyzer phases {0, π/2} × {−π/4, +π/4}.

#include <array>
#include <cstddef>
#include <vector>

#include "qfc/qudit/dstate.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::qudit {

/// Analyzer phase offsets, in units of 2π/d (the CGLMP convention):
/// Alice measures with α_a, Bob with β_b. The defaults are the standard
/// optimal settings α = {0, 1/2}, β = {1/4, −1/4}.
struct CglmpSettings {
  std::array<double, 2> alpha{0.0, 0.5};
  std::array<double, 2> beta{0.25, -0.25};
};

/// Local-hidden-variable bound of I_d (2 for all d).
constexpr double cglmp_classical_bound() { return 2.0; }

/// Joint outcome probabilities P(A_a = m, B_b = n) for one setting pair,
/// row-major in (m, n), from ideal Fourier-basis projections.
linalg::RVec cglmp_joint_probabilities(const DDensityMatrix& rho, std::size_t a,
                                       std::size_t b, const CglmpSettings& s = {});

/// Exact I_d from the density matrix of a two-qudit state (equal per-side
/// dimensions required).
double cglmp_value(const DDensityMatrix& rho, const CglmpSettings& s = {});

/// I_d of the maximally entangled qudit pair at the standard settings.
double cglmp_max_entangled_value(std::size_t d);

/// Batch CGLMP: element i equals cglmp_value(rhos[i], s) bitwise, with the
/// independent evaluations fanned out across the linalg worker pool (one
/// task per state — the shape of a visibility/noise sweep).
std::vector<double> cglmp_values(const std::vector<DDensityMatrix>& rhos,
                                 const CglmpSettings& s = {});

/// Count-based CGLMP estimate with Poisson statistics.
struct CglmpMeasurement {
  double i_value = 0;
  double i_err = 0;
  bool violates_classical() const { return i_value > cglmp_classical_bound(); }
  double sigmas_above_classical() const {
    return i_err > 0 ? (i_value - cglmp_classical_bound()) / i_err : 0.0;
  }
};

/// Simulate a CGLMP measurement with `pairs_per_setting` detected pairs per
/// setting combination and a flat accidental floor per outcome.
CglmpMeasurement measure_cglmp(const DDensityMatrix& rho, double pairs_per_setting,
                               double accidentals_per_outcome, rng::Xoshiro256& g,
                               const CglmpSettings& s = {});

/// Schmidt-number dimensionality witness (Terhal–Horodecki via the
/// fidelity bound): any state with Schmidt number <= r satisfies
/// ⟨Φ_d|ρ|Φ_d⟩ <= r/d, so F > r/d certifies Schmidt number >= r+1.
/// Returns the certified lower bound (1 = no entanglement certified).
std::size_t schmidt_number_witness(const DDensityMatrix& rho);

}  // namespace qfc::qudit
