#pragma once

/// \file measurement.hpp
/// The frequency-bin measurement chain: a programmable pulse shaper applies
/// per-bin amplitude/phase masks and an electro-optic phase modulator (EOM)
/// driven at the bin spacing mixes neighboring bins, so a single detected
/// output bin interferes all input bins — the standard projection apparatus
/// for frequency-bin qudits (Kues 2017 / Imany 2018 / Kues et al. 2020
/// review). Sideband amplitudes follow the Bessel envelope J_n(m) of
/// sinusoidal phase modulation, which is what limits projection efficiency
/// at large d.

#include <cstdint>
#include <vector>

#include "qfc/qudit/dstate.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::qudit {

struct AnalyzerConfig {
  /// EOM RF modulation index m (radians); sideband n carries amplitude
  /// J_n(m). Larger m reaches further bins but never uniformly.
  double modulation_index = 1.5;
  /// Output bin the single-frequency detector sits on (0-based); bins at
  /// distance n contribute through the J_n(m) sideband. Negative = center.
  int detection_bin = -1;
};

/// One analyzer (one arm of the two-qudit measurement).
class FreqBinAnalyzer {
 public:
  explicit FreqBinAnalyzer(std::size_t dimension, AnalyzerConfig cfg = {});

  std::size_t dimension() const noexcept { return d_; }
  const AnalyzerConfig& config() const noexcept { return cfg_; }

  /// Ideal Fourier-basis analysis vector with analyzer phase γ:
  /// |v_k(γ)⟩ = (1/√d) Σ_j e^{±i 2π j (γ_frac + k)/d} |j⟩. `conjugate`
  /// selects the idler-side convention (opposite phase sign), matching the
  /// CGLMP measurement layout.
  CVec fourier_vector(std::size_t outcome, double phase, bool conjugate = false) const;

  /// Effective (normalized) projection vector the hardware realizes for a
  /// target analysis vector: each component is weighted by the EOM sideband
  /// envelope J_{|k − k_det|}(m) before renormalization.
  CVec realized_vector(const CVec& target) const;

  /// Success probability scale of the hardware projection relative to the
  /// ideal one: ‖J-weighted target‖² (1 for a single-bin projection with
  /// k = k_det, < 1 for superpositions).
  double projection_efficiency(const CVec& target) const;

  /// |v⟩⟨v| of the realized vector.
  CMat realized_projector(const CVec& target) const;

  /// |v⟩⟨v| of the ideal (unweighted) vector.
  static CMat ideal_projector(const CVec& target);

 private:
  std::size_t d_;
  AnalyzerConfig cfg_;
};

/// Poisson-fluctuating joint counts for a two-qudit state measured with one
/// projector list per side: counts[a * bob.size() + b].
std::vector<std::uint64_t> simulate_joint_counts(
    const DDensityMatrix& rho, const std::vector<CMat>& alice_projectors,
    const std::vector<CMat>& bob_projectors, double pairs,
    double accidentals_per_outcome, rng::Xoshiro256& g);

}  // namespace qfc::qudit
