#include "qfc/qudit/measurement.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::qudit {

namespace {

/// Bessel J_n(x) for integer n >= 0 and the small arguments used here
/// (modulation indices of a few radians). std::cyl_bessel_j is C++17 but
/// absent from libc++, so fall back to the ascending series
/// J_n(x) = Σ_m (−1)^m / (m! (m+n)!) (x/2)^{2m+n} off libstdc++.
double bessel_jn(int n, double x) {
#if defined(__cpp_lib_math_special_functions) || defined(__GLIBCXX__)
  return std::cyl_bessel_j(static_cast<double>(n), x);
#else
  const double half = 0.5 * x;
  double term = 1.0;  // m = 0: (x/2)^n / n!
  for (int k = 1; k <= n; ++k) term *= half / static_cast<double>(k);
  double sum = term;
  for (int m = 1; m < 64; ++m) {
    term *= -half * half / (static_cast<double>(m) * static_cast<double>(m + n));
    sum += term;
    if (std::abs(term) < 1e-16 * std::abs(sum) + 1e-300) break;
  }
  return sum;
#endif
}

}  // namespace

FreqBinAnalyzer::FreqBinAnalyzer(std::size_t dimension, AnalyzerConfig cfg)
    : d_(dimension), cfg_(cfg) {
  if (d_ < 2 || d_ > 64)
    throw std::invalid_argument("FreqBinAnalyzer: need 2 <= d <= 64");
  if (cfg_.modulation_index < 0)
    throw std::invalid_argument("FreqBinAnalyzer: negative modulation index");
  if (cfg_.detection_bin >= static_cast<int>(d_))
    throw std::invalid_argument("FreqBinAnalyzer: detection bin out of range");
  if (cfg_.detection_bin < 0) cfg_.detection_bin = static_cast<int>(d_) / 2;
}

CVec FreqBinAnalyzer::fourier_vector(std::size_t outcome, double phase,
                                     bool conjugate) const {
  if (outcome >= d_) throw std::out_of_range("fourier_vector: outcome out of range");
  const double norm = 1.0 / std::sqrt(static_cast<double>(d_));
  const double sign = conjugate ? -1.0 : 1.0;
  CVec v(d_);
  for (std::size_t j = 0; j < d_; ++j) {
    const double theta = sign * 2.0 * photonics::pi * static_cast<double>(j) *
                         (static_cast<double>(outcome) + phase) /
                         static_cast<double>(d_);
    v[j] = norm * cplx(std::cos(theta), std::sin(theta));
  }
  return v;
}

CVec FreqBinAnalyzer::realized_vector(const CVec& target) const {
  if (target.size() != d_)
    throw std::invalid_argument("realized_vector: target size != dimension");
  CVec v(d_);
  for (std::size_t k = 0; k < d_; ++k) {
    const int n = std::abs(static_cast<int>(k) - cfg_.detection_bin);
    v[k] = target[k] * bessel_jn(n, cfg_.modulation_index);
  }
  linalg::vnormalize(v);
  return v;
}

double FreqBinAnalyzer::projection_efficiency(const CVec& target) const {
  if (target.size() != d_)
    throw std::invalid_argument("projection_efficiency: target size != dimension");
  CVec t = target;
  linalg::vnormalize(t);
  double s = 0;
  for (std::size_t k = 0; k < d_; ++k) {
    const int n = std::abs(static_cast<int>(k) - cfg_.detection_bin);
    s += std::norm(t[k]) *
         std::pow(bessel_jn(n, cfg_.modulation_index), 2);
  }
  return s;
}

CMat FreqBinAnalyzer::realized_projector(const CVec& target) const {
  const CVec v = realized_vector(target);
  return linalg::outer(v, v);
}

CMat FreqBinAnalyzer::ideal_projector(const CVec& target) {
  CVec v = target;
  linalg::vnormalize(v);
  return linalg::outer(v, v);
}

std::vector<std::uint64_t> simulate_joint_counts(
    const DDensityMatrix& rho, const std::vector<CMat>& alice_projectors,
    const std::vector<CMat>& bob_projectors, double pairs,
    double accidentals_per_outcome, rng::Xoshiro256& g) {
  if (rho.num_particles() != 2)
    throw std::invalid_argument("simulate_joint_counts: need a two-qudit state");
  if (pairs <= 0) throw std::invalid_argument("simulate_joint_counts: pairs <= 0");
  if (accidentals_per_outcome < 0)
    throw std::invalid_argument("simulate_joint_counts: negative accidentals");

  std::vector<std::uint64_t> counts;
  counts.reserve(alice_projectors.size() * bob_projectors.size());
  for (const auto& pa : alice_projectors)
    for (const auto& pb : bob_projectors) {
      const double p = rho.probability(linalg::kron(pa, pb));
      counts.push_back(rng::sample_poisson(g, pairs * p + accidentals_per_outcome));
    }
  return counts;
}

}  // namespace qfc::qudit
