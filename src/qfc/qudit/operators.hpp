#pragma once

/// \file operators.hpp
/// The d-level operator toolbox: Weyl–Heisenberg clock/shift pair, discrete
/// Fourier transform, and the generalized Gell-Mann basis. These are the
/// qudit analogues of quantum::pauli — the clock/shift pair generates the
/// full d² operator basis the same way Pauli strings do for qubits.

#include <cstddef>
#include <vector>

#include "qfc/linalg/matrix.hpp"

namespace qfc::qudit {

/// Cyclic shift X|j⟩ = |j+1 mod d⟩ (reduces to Pauli X at d = 2).
linalg::CMat shift_operator(std::size_t d);

/// Clock Z|j⟩ = ω^j |j⟩ with ω = exp(2πi/d) (Pauli Z at d = 2).
linalg::CMat clock_operator(std::size_t d);

/// Weyl operator X^a Z^b; the d² of them (a, b ∈ 0..d−1) form an
/// orthogonal operator basis: Tr(W†W') = d δ.
linalg::CMat weyl_operator(std::size_t d, std::size_t a, std::size_t b);

/// Discrete Fourier transform F(j,k) = ω^{jk}/√d — the ideal frequency-bin
/// superposition measurement basis (electro-optic mixing + pulse shaper).
linalg::CMat fourier_matrix(std::size_t d);

/// The d²−1 generalized Gell-Mann matrices: Hermitian, traceless,
/// Tr(λ_a λ_b) = 2 δ_ab. Ordering: symmetric off-diagonal pairs, then
/// antisymmetric pairs, then the d−1 diagonal matrices.
std::vector<linalg::CMat> gell_mann_basis(std::size_t d);

/// Expansion of a Hermitian matrix in {I/d, gell_mann_basis}: returns the
/// d²−1 real coefficients r_a = Tr(ρ λ_a)/2 (generalized Bloch vector).
linalg::RVec bloch_vector(const linalg::CMat& rho);

}  // namespace qfc::qudit
