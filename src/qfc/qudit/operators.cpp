#include "qfc/qudit/operators.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"

namespace qfc::qudit {

using linalg::cplx;
using linalg::CMat;

namespace {

void check_dim(std::size_t d, const char* who) {
  if (d < 2 || d > 64) throw std::invalid_argument(std::string(who) + ": need 2 <= d <= 64");
}

cplx omega_power(std::size_t d, std::size_t exponent) {
  const double theta =
      2.0 * photonics::pi * static_cast<double>(exponent % d) / static_cast<double>(d);
  return cplx(std::cos(theta), std::sin(theta));
}

}  // namespace

CMat shift_operator(std::size_t d) {
  check_dim(d, "shift_operator");
  CMat x(d, d);
  for (std::size_t j = 0; j < d; ++j) x((j + 1) % d, j) = cplx(1, 0);
  return x;
}

CMat clock_operator(std::size_t d) {
  check_dim(d, "clock_operator");
  CMat z(d, d);
  for (std::size_t j = 0; j < d; ++j) z(j, j) = omega_power(d, j);
  return z;
}

CMat weyl_operator(std::size_t d, std::size_t a, std::size_t b) {
  check_dim(d, "weyl_operator");
  // (X^a Z^b)|j⟩ = ω^{bj} |j+a mod d⟩ — build directly instead of
  // multiplying a matrix powers chain.
  CMat w(d, d);
  for (std::size_t j = 0; j < d; ++j) w((j + a) % d, j) = omega_power(d, b * j);
  return w;
}

CMat fourier_matrix(std::size_t d) {
  check_dim(d, "fourier_matrix");
  const double norm = 1.0 / std::sqrt(static_cast<double>(d));
  CMat f(d, d);
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t k = 0; k < d; ++k) f(j, k) = norm * omega_power(d, j * k);
  return f;
}

std::vector<CMat> gell_mann_basis(std::size_t d) {
  check_dim(d, "gell_mann_basis");
  std::vector<CMat> basis;
  basis.reserve(d * d - 1);
  // Symmetric: E_jk + E_kj for j < k.
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t k = j + 1; k < d; ++k) {
      CMat m(d, d);
      m(j, k) = cplx(1, 0);
      m(k, j) = cplx(1, 0);
      basis.push_back(std::move(m));
    }
  // Antisymmetric: −i(E_jk − E_kj) for j < k.
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t k = j + 1; k < d; ++k) {
      CMat m(d, d);
      m(j, k) = cplx(0, -1);
      m(k, j) = cplx(0, 1);
      basis.push_back(std::move(m));
    }
  // Diagonal: sqrt(2/(l(l+1))) (Σ_{j<l} E_jj − l E_ll) for l = 1..d−1.
  for (std::size_t l = 1; l < d; ++l) {
    CMat m(d, d);
    const double norm = std::sqrt(2.0 / (static_cast<double>(l) * static_cast<double>(l + 1)));
    for (std::size_t j = 0; j < l; ++j) m(j, j) = cplx(norm, 0);
    m(l, l) = cplx(-norm * static_cast<double>(l), 0);
    basis.push_back(std::move(m));
  }
  return basis;
}

linalg::RVec bloch_vector(const CMat& rho) {
  rho.require_square("bloch_vector");
  const std::size_t d = rho.rows();
  const auto basis = gell_mann_basis(d);
  linalg::RVec r;
  r.reserve(basis.size());
  for (const auto& lambda : basis)
    r.push_back(0.5 * std::real(linalg::trace_product(rho, lambda)));
  return r;
}

}  // namespace qfc::qudit
