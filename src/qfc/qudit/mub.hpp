#pragma once

/// \file mub.hpp
/// Mutually unbiased bases for prime dimension d and MUB-based qudit state
/// tomography. A complete set of d+1 MUBs is informationally complete with
/// the minimal number of measurement settings; reconstruction uses the
/// 2-design identity Σ_{b,k} p(k|b) Π_{b,k} = ρ + I (per subsystem) for
/// linear inversion and then plugs into the shared iterative RρR
/// maximum-likelihood core in qfc::tomo.

#include <cstdint>
#include <vector>

#include "qfc/qudit/dstate.hpp"
#include "qfc/rng/xoshiro.hpp"
#include "qfc/tomo/tomography.hpp"

namespace qfc::qudit {

bool is_prime(std::size_t d);

/// The d+1 mutually unbiased bases of a prime-dimension qudit; element [b]
/// is a d x d unitary whose columns are the basis vectors. Basis 0 is
/// computational (the frequency bins themselves); the rest are the
/// Ivanović/Wootters–Fields superposition bases (X, Y at d = 2), which the
/// EOM + pulse-shaper analyzer realizes. Throws for non-prime d.
std::vector<CMat> mub_bases(std::size_t d);

/// One tomography setting: a MUB index per particle, plus the observed
/// counts for all d^n joint outcomes (row-major, particle 0 slowest).
struct MubSettingCounts {
  std::vector<std::size_t> bases;
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const;
};

/// Simulate MUB tomography data for a register of equal-dimension qudits
/// (1 or 2 particles): Poisson counts for each of the (d+1)^n settings.
std::vector<MubSettingCounts> simulate_mub_counts(const DDensityMatrix& rho,
                                                  double shots_per_setting,
                                                  rng::Xoshiro256& g);

/// Linear-inversion estimate from complete MUB data; Hermitian and unit
/// trace but possibly non-physical (project or feed to MLE). Supports 1 and
/// 2 particle registers of equal prime dimension d.
CMat mub_linear_inversion(const std::vector<MubSettingCounts>& data, std::size_t d,
                          std::size_t num_particles);

struct MubMleResult {
  DDensityMatrix rho;
  int iterations = 0;
  bool converged = false;
  double log_likelihood = 0;
};

/// Maximum-likelihood reconstruction: projected linear inversion seeds the
/// shared tomo::rrr_reconstruct iteration.
MubMleResult mub_maximum_likelihood(const std::vector<MubSettingCounts>& data,
                                    std::size_t d, std::size_t num_particles,
                                    const tomo::MleOptions& opts = {});

/// Batch MUB MLE: element i equals mub_maximum_likelihood(datasets[i], d,
/// num_particles, opts) bitwise, with independent reconstructions fanned
/// out across the linalg worker pool — the shape of a Monte-Carlo error
/// analysis or a noise-level sweep.
std::vector<MubMleResult> mub_maximum_likelihood_batch(
    const std::vector<std::vector<MubSettingCounts>>& datasets, std::size_t d,
    std::size_t num_particles, const tomo::MleOptions& opts = {});

}  // namespace qfc::qudit
