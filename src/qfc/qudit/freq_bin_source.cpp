#include "qfc/qudit/freq_bin_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qfc::qudit {

void FreqBinConfig::validate() const {
  if (dimension < 2)
    throw std::invalid_argument("FreqBinConfig.dimension: must be >= 2");
  if (!bin_phase_rad.empty() && bin_phase_rad.size() != dimension)
    throw std::invalid_argument(
        "FreqBinConfig.bin_phase_rad: size must equal dimension (or be empty)");
}

FreqBinSource::FreqBinSource(photonics::CombGrid grid, std::vector<double> brightness,
                             FreqBinConfig cfg)
    : grid_(std::move(grid)), brightness_(std::move(brightness)), cfg_(std::move(cfg)) {
  cfg_.validate();
  if (brightness_.size() < cfg_.dimension)
    throw std::invalid_argument("FreqBinSource: fewer brightness entries than bins");
  if (static_cast<std::size_t>(grid_.num_pairs()) < cfg_.dimension)
    throw std::invalid_argument("FreqBinSource: grid tracks fewer pairs than bins");
  double total = 0;
  for (std::size_t k = 0; k < cfg_.dimension; ++k) {
    if (brightness_[k] < 0)
      throw std::invalid_argument("FreqBinSource: negative brightness");
    total += brightness_[k];
  }
  if (total <= 0) throw std::invalid_argument("FreqBinSource: all bins dark");
}

FreqBinSource FreqBinSource::from_cw_source(const sfwm::CwPairSource& src,
                                            std::size_t dimension) {
  FreqBinConfig cfg;
  cfg.dimension = dimension;
  return FreqBinSource(src.grid(), src.pair_rates(), std::move(cfg));
}

FreqBinSource FreqBinSource::from_pulsed_source(const sfwm::PulsedPairSource& src,
                                                std::size_t dimension) {
  FreqBinConfig cfg;
  cfg.dimension = dimension;
  return FreqBinSource(src.grid(), src.mean_pairs_all(), std::move(cfg));
}

CVec FreqBinSource::bin_amplitudes() const {
  CVec c(cfg_.dimension);
  for (std::size_t k = 0; k < cfg_.dimension; ++k) {
    const double phase = cfg_.bin_phase_rad.empty() ? 0.0 : cfg_.bin_phase_rad[k];
    c[k] = std::sqrt(brightness_[k]) * cplx(std::cos(phase), std::sin(phase));
  }
  linalg::vnormalize(c);
  return c;
}

DState FreqBinSource::state() const { return DState::from_pair_amplitudes(bin_amplitudes()); }

DState FreqBinSource::shaped_state(const CVec& mask) const {
  if (mask.size() != cfg_.dimension)
    throw std::invalid_argument("shaped_state: mask size != dimension");
  CVec c = bin_amplitudes();
  for (std::size_t k = 0; k < c.size(); ++k) c[k] *= mask[k];
  return DState::from_pair_amplitudes(c);  // renormalizes (post-selection)
}

double FreqBinSource::shaping_efficiency(const CVec& mask) const {
  if (mask.size() != cfg_.dimension)
    throw std::invalid_argument("shaping_efficiency: mask size != dimension");
  const CVec c = bin_amplitudes();
  double kept = 0;
  for (std::size_t k = 0; k < c.size(); ++k) {
    if (std::abs(mask[k]) > 1.0 + 1e-12)
      throw std::invalid_argument("shaping_efficiency: mask gain > 1 is unphysical");
    kept += std::norm(mask[k] * c[k]);
  }
  return kept;  // bin_amplitudes() is normalized, so this is the kept fraction
}

CVec FreqBinSource::flattening_mask() const {
  const CVec c = bin_amplitudes();
  double weakest = std::abs(c[0]);
  for (const auto& ck : c) weakest = std::min(weakest, std::abs(ck));
  if (weakest <= 0)
    throw std::invalid_argument("flattening_mask: a dark bin cannot be flattened");
  CVec mask(c.size());
  // Attenuate every bin to the weakest amplitude and unwind its phase, so
  // the shaped state is exactly (1/√d) Σ|kk⟩.
  for (std::size_t k = 0; k < c.size(); ++k) mask[k] = weakest / c[k];
  return mask;
}

DState FreqBinSource::flattened_state() const { return shaped_state(flattening_mask()); }

double FreqBinSource::schmidt_number() const {
  return qudit::schmidt_number(state(), 1);
}

double FreqBinSource::entanglement_entropy_bits() const {
  const DDensityMatrix rho(state());
  return von_neumann_entropy_bits(rho.partial_trace_keep({0}));
}

}  // namespace qfc::qudit
