#include "qfc/qudit/mub.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "qfc/linalg/backend.hpp"
#include "qfc/linalg/matrix_functions.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::qudit {

using linalg::cplx;

bool is_prime(std::size_t d) {
  if (d < 2) return false;
  for (std::size_t f = 2; f * f <= d; ++f)
    if (d % f == 0) return false;
  return true;
}

std::vector<CMat> mub_bases(std::size_t d) {
  if (!is_prime(d) || d > 64)
    throw std::invalid_argument("mub_bases: d must be prime (and <= 64)");

  std::vector<CMat> bases;
  bases.reserve(d + 1);
  bases.push_back(CMat::identity(d));

  if (d == 2) {
    // The Gauss-sum construction below needs odd d; the qubit MUB triple is
    // the familiar Z, X, Y eigenbases.
    const double r = 1.0 / std::sqrt(2.0);
    bases.push_back(CMat{{cplx(r, 0), cplx(r, 0)}, {cplx(r, 0), cplx(-r, 0)}});
    bases.push_back(CMat{{cplx(r, 0), cplx(r, 0)}, {cplx(0, r), cplx(0, -r)}});
    return bases;
  }

  // Wootters–Fields for odd prime d: basis b (1..d), column k has entries
  // (1/√d) ω^{b j² + k j}; |Gauss sum| = √d makes any two bases unbiased.
  const double norm = 1.0 / std::sqrt(static_cast<double>(d));
  for (std::size_t b = 1; b <= d; ++b) {
    CMat m(d, d);
    for (std::size_t j = 0; j < d; ++j)
      for (std::size_t k = 0; k < d; ++k) {
        const std::size_t e = (b * j * j + k * j) % d;
        const double theta =
            2.0 * photonics::pi * static_cast<double>(e) / static_cast<double>(d);
        m(j, k) = norm * cplx(std::cos(theta), std::sin(theta));
      }
    bases.push_back(std::move(m));
  }
  return bases;
}

std::uint64_t MubSettingCounts::total() const {
  std::uint64_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

namespace {

CVec basis_column(const CMat& basis, std::size_t k) {
  CVec v(basis.rows());
  for (std::size_t j = 0; j < basis.rows(); ++j) v[j] = basis(j, k);
  return v;
}

/// Projector onto joint outcome `o` (mixed-radix over d per particle) of
/// the setting with the given per-particle MUB indices.
CMat setting_projector(const std::vector<CMat>& mubs,
                       const std::vector<std::size_t>& bases, std::size_t d,
                       std::size_t o) {
  CMat proj;
  std::size_t rem = o;
  std::vector<std::size_t> outcome(bases.size());
  for (std::size_t q = bases.size(); q-- > 0;) {
    outcome[q] = rem % d;
    rem /= d;
  }
  for (std::size_t q = 0; q < bases.size(); ++q) {
    const CVec v = basis_column(mubs[bases[q]], outcome[q]);
    const CMat p1 = linalg::outer(v, v);
    proj = (q == 0) ? p1 : linalg::kron(proj, p1);
  }
  return proj;
}

std::size_t checked_particles(const std::vector<MubSettingCounts>& data, std::size_t d,
                              std::size_t num_particles) {
  if (num_particles == 0 || num_particles > 2)
    throw std::invalid_argument("mub tomography: only 1- and 2-particle registers");
  if (data.empty()) throw std::invalid_argument("mub tomography: empty data");
  std::size_t dim = 1;
  for (std::size_t q = 0; q < num_particles; ++q) dim *= d;
  std::size_t expected_settings = 1;
  for (std::size_t q = 0; q < num_particles; ++q) expected_settings *= d + 1;
  if (data.size() != expected_settings)
    throw std::invalid_argument("mub tomography: incomplete setting set");
  std::vector<bool> seen(expected_settings, false);
  for (const auto& sc : data) {
    if (sc.bases.size() != num_particles || sc.counts.size() != dim)
      throw std::invalid_argument("mub tomography: malformed setting");
    std::size_t key = 0;
    for (std::size_t b : sc.bases) {
      if (b > d) throw std::invalid_argument("mub tomography: basis index out of range");
      key = key * (d + 1) + b;
    }
    if (seen[key])
      throw std::invalid_argument("mub tomography: duplicate setting");
    seen[key] = true;
  }
  return dim;
}

/// Single-particle MUB inversion from a (d+1) x d table of outcome
/// probabilities: ρ = Σ_{b,k} p(k|b) Π_{b,k} − I.
CMat invert_single(const std::vector<CMat>& mubs, const std::vector<linalg::RVec>& p,
                   std::size_t d) {
  CMat rho(d, d);
  for (std::size_t b = 0; b <= d; ++b)
    for (std::size_t k = 0; k < d; ++k) {
      const CVec v = basis_column(mubs[b], k);
      CMat proj = linalg::outer(v, v);
      proj *= cplx(p[b][k], 0);
      rho += proj;
    }
  rho -= linalg::to_complex(linalg::RMat::identity(d));
  return rho;
}

}  // namespace

std::vector<MubSettingCounts> simulate_mub_counts(const DDensityMatrix& rho,
                                                  double shots_per_setting,
                                                  rng::Xoshiro256& g) {
  if (shots_per_setting <= 0)
    throw std::invalid_argument("simulate_mub_counts: shots_per_setting <= 0");
  const std::size_t n = rho.num_particles();
  if (n == 0 || n > 2)
    throw std::invalid_argument("simulate_mub_counts: only 1- and 2-particle registers");
  const std::size_t d = rho.dims()[0];
  for (std::size_t dk : rho.dims())
    if (dk != d)
      throw std::invalid_argument("simulate_mub_counts: unequal particle dimensions");
  const auto mubs = mub_bases(d);

  std::size_t num_settings = 1, dim = 1;
  for (std::size_t q = 0; q < n; ++q) {
    num_settings *= d + 1;
    dim *= d;
  }

  std::vector<MubSettingCounts> out;
  out.reserve(num_settings);
  for (std::size_t sidx = 0; sidx < num_settings; ++sidx) {
    MubSettingCounts sc;
    sc.bases.resize(n);
    std::size_t rem = sidx;
    for (std::size_t q = n; q-- > 0;) {
      sc.bases[q] = rem % (d + 1);
      rem /= d + 1;
    }
    sc.counts.resize(dim);
    for (std::size_t o = 0; o < dim; ++o) {
      const double p = rho.probability(setting_projector(mubs, sc.bases, d, o));
      sc.counts[o] = rng::sample_poisson(g, shots_per_setting * p);
    }
    out.push_back(std::move(sc));
  }
  return out;
}

CMat mub_linear_inversion(const std::vector<MubSettingCounts>& data, std::size_t d,
                          std::size_t num_particles) {
  const std::size_t dim = checked_particles(data, d, num_particles);
  const auto mubs = mub_bases(d);

  if (num_particles == 1) {
    std::vector<linalg::RVec> p(d + 1, linalg::RVec(d, 0.0));
    for (const auto& sc : data) {
      const double tot = static_cast<double>(sc.total());
      if (tot <= 0) continue;
      for (std::size_t k = 0; k < d; ++k)
        p[sc.bases[0]][k] = static_cast<double>(sc.counts[k]) / tot;
    }
    return invert_single(mubs, p, d);
  }

  // Two particles. The product-MUB 2-design identity gives
  //   S ≡ Σ_{b,b',k,k'} p(k,k'|b,b') Π_{b,k} ⊗ Π_{b',k'}
  //     = ρ + ρ_A ⊗ I + I ⊗ ρ_B + I ⊗ I,
  // so ρ = S − ρ_A⊗I − I⊗ρ_B − I⊗I with the marginals reconstructed from
  // the same data via the single-particle identity (averaged over the other
  // side's settings).
  CMat s(dim, dim);
  std::vector<linalg::RVec> pa(d + 1, linalg::RVec(d, 0.0));
  std::vector<linalg::RVec> pb(d + 1, linalg::RVec(d, 0.0));
  for (const auto& sc : data) {
    const double tot = static_cast<double>(sc.total());
    if (tot <= 0) continue;
    for (std::size_t k = 0; k < d; ++k)
      for (std::size_t l = 0; l < d; ++l) {
        const double p = static_cast<double>(sc.counts[k * d + l]) / tot;
        if (p == 0) continue;
        const CVec va = basis_column(mubs[sc.bases[0]], k);
        const CVec vb = basis_column(mubs[sc.bases[1]], l);
        CMat term = linalg::kron(linalg::outer(va, va), linalg::outer(vb, vb));
        term *= cplx(p, 0);
        s += term;
        // Marginals: each side's outcome distribution, averaged over the
        // (d+1) settings of the other side.
        pa[sc.bases[0]][k] += p / static_cast<double>(d + 1);
        pb[sc.bases[1]][l] += p / static_cast<double>(d + 1);
      }
  }

  const CMat rho_a = invert_single(mubs, pa, d);
  const CMat rho_b = invert_single(mubs, pb, d);
  const CMat eye = linalg::to_complex(linalg::RMat::identity(d));

  CMat rho = s;
  rho -= linalg::kron(rho_a, eye);
  rho -= linalg::kron(eye, rho_b);
  rho -= linalg::kron(eye, eye);
  return rho;
}

MubMleResult mub_maximum_likelihood(const std::vector<MubSettingCounts>& data,
                                    std::size_t d, std::size_t num_particles,
                                    const tomo::MleOptions& opts) {
  checked_particles(data, d, num_particles);
  const auto mubs = mub_bases(d);

  std::vector<tomo::ProjectorTerm> terms;
  for (const auto& sc : data)
    for (std::size_t o = 0; o < sc.counts.size(); ++o) {
      if (sc.counts[o] == 0) continue;
      terms.push_back(tomo::ProjectorTerm{setting_projector(mubs, sc.bases, d, o),
                                          static_cast<double>(sc.counts[o])});
    }

  const CMat seed = linalg::project_to_density_matrix(
      mub_linear_inversion(data, d, num_particles));
  tomo::RrrResult core = tomo::rrr_reconstruct(terms, seed, opts);

  Dims dims(num_particles, d);
  MubMleResult res{DDensityMatrix(std::move(core.rho), std::move(dims), 1e-6),
                   core.iterations, core.converged, core.log_likelihood};
  return res;
}

std::vector<MubMleResult> mub_maximum_likelihood_batch(
    const std::vector<std::vector<MubSettingCounts>>& datasets, std::size_t d,
    std::size_t num_particles, const tomo::MleOptions& opts) {
  // MubMleResult holds a DDensityMatrix (no default constructor), so build
  // into optionals and unwrap once every slot is filled.
  std::vector<std::optional<MubMleResult>> slots(datasets.size());
  linalg::detail::parallel_batch(datasets.size(), [&](std::size_t i) {
    slots[i] = mub_maximum_likelihood(datasets[i], d, num_particles, opts);
  });
  std::vector<MubMleResult> out;
  out.reserve(slots.size());
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace qfc::qudit
