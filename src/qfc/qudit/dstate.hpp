#pragma once

/// \file dstate.hpp
/// Pure states and density matrices of registers whose particles have
/// arbitrary (not necessarily equal, not necessarily power-of-two)
/// dimension — the d-level frequency-bin systems of Kues et al. 2020 /
/// Maltese et al. 2019. Particle 0 owns the most significant digit of the
/// mixed-radix computational-basis index, mirroring the qubit convention in
/// qfc::quantum.
///
/// The entanglement measures forward to the matrix-level overloads in
/// qfc::quantum::measures so no spectral code is duplicated across the
/// qubit and qudit layers.

#include <cstddef>
#include <vector>

#include "qfc/linalg/matrix.hpp"

namespace qfc::qudit {

using linalg::cplx;
using linalg::CMat;
using linalg::CVec;

/// Per-particle dimensions, most significant digit first.
using Dims = std::vector<std::size_t>;

/// Product of the per-particle dimensions; validates every entry >= 2 and
/// caps the total at 4096 (Jacobi eigensolver territory).
std::size_t total_dim(const Dims& dims);

/// Normalized pure state of a mixed-radix qudit register.
class DState {
 public:
  /// |0...0> with the given per-particle dimensions.
  explicit DState(Dims dims);

  /// From amplitudes (size must equal the product of dims); normalizes
  /// unless already normalized, throws on the zero vector.
  DState(CVec amplitudes, Dims dims);

  /// Two-qudit maximally entangled state (1/√d) Σ_k |k⟩|k⟩.
  static DState maximally_entangled(std::size_t d);

  /// Two-qudit frequency-bin state Σ_k c_k |k⟩|k⟩ from per-bin pair
  /// amplitudes (normalized internally; size sets d).
  static DState from_pair_amplitudes(const CVec& pair_amplitudes);

  const Dims& dims() const noexcept { return dims_; }
  std::size_t num_particles() const noexcept { return dims_.size(); }
  std::size_t dim() const noexcept { return amps_.size(); }
  const CVec& amplitudes() const noexcept { return amps_; }
  cplx amplitude(std::size_t basis_index) const { return amps_.at(basis_index); }

  /// Tensor product |this> ⊗ |other> (dims are concatenated).
  DState tensor(const DState& other) const;

  /// <this|other>.
  cplx overlap(const DState& other) const;

  /// |<this|other>|².
  double overlap_probability(const DState& other) const;

  /// Apply a unitary on the full register (dim x dim).
  DState apply(const CMat& u) const;

  /// Apply a d_p x d_p unitary on particle p.
  DState apply_local(const CMat& u, std::size_t particle) const;

  double probability(std::size_t basis_index) const;

 private:
  Dims dims_;
  CVec amps_;
};

/// Density matrix of a mixed-radix qudit register: Hermitian, unit trace,
/// PSD (validated).
class DDensityMatrix {
 public:
  /// Maximally mixed state I/dim.
  explicit DDensityMatrix(Dims dims);

  /// |psi><psi|.
  explicit DDensityMatrix(const DState& psi);

  /// From a raw matrix; validates shape/Hermiticity/trace; PSD check is
  /// tolerance-based (small negative eigenvalues allowed up to psd_tol).
  DDensityMatrix(CMat rho, Dims dims, double psd_tol = 1e-8);

  const Dims& dims() const noexcept { return dims_; }
  std::size_t num_particles() const noexcept { return dims_.size(); }
  std::size_t dim() const noexcept { return rho_.rows(); }
  const CMat& matrix() const noexcept { return rho_; }

  /// Tr(ρ O).
  cplx expectation(const CMat& observable) const;

  /// Probability Tr(ρ P) of projector P, clipped to [0, 1].
  double probability(const CMat& projector) const;

  /// ρ ⊗ σ (dims are concatenated).
  DDensityMatrix tensor(const DDensityMatrix& other) const;

  /// Partial trace keeping the listed particles (strictly ascending).
  DDensityMatrix partial_trace_keep(const std::vector<std::size_t>& keep) const;

  /// Convex mixture (1−p) ρ + p σ.
  DDensityMatrix mix(const DDensityMatrix& other, double p) const;

  /// U ρ U†.
  DDensityMatrix evolve(const CMat& u) const;

 private:
  /// Unchecked path for internal operations whose results are valid by
  /// construction (tensor, partial trace, mix, evolve).
  DDensityMatrix() = default;

  Dims dims_;
  CMat rho_;
};

/// Isotropic-noise model V |ψ><ψ| + (1−V) I/dim — the qudit analogue of
/// quantum::isotropic_noise, the standard noise family for CGLMP studies.
DDensityMatrix isotropic_noise(const DState& target, double visibility);

// ------------------------------------------------------------------------
// Entanglement/state metrics: thin forwards to quantum::measures'
// matrix-level overloads.

double purity(const DDensityMatrix& rho);
double von_neumann_entropy_bits(const DDensityMatrix& rho);
double fidelity(const DDensityMatrix& rho, const DDensityMatrix& sigma);
double fidelity(const DDensityMatrix& rho, const DState& target);
double trace_distance(const DDensityMatrix& rho, const DDensityMatrix& sigma);

/// Negativity across the bipartition placed after the first
/// `particles_in_first_subsystem` particles.
double negativity(const DDensityMatrix& rho, std::size_t particles_in_first_subsystem);

/// Schmidt coefficients of a pure state split after
/// `particles_in_first_subsystem` particles (descending, squares sum to 1).
linalg::RVec schmidt_coefficients(const DState& psi,
                                  std::size_t particles_in_first_subsystem);

/// Schmidt number K = 1/Σ λ⁴ of a bipartite pure state (effective number of
/// entangled dimensions; d for the maximally entangled qudit pair).
double schmidt_number(const DState& psi, std::size_t particles_in_first_subsystem = 1);

}  // namespace qfc::qudit
