#include "qfc/qudit/dstate.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/linalg/hermitian_eig.hpp"
#include "qfc/quantum/measures.hpp"

namespace qfc::qudit {

std::size_t total_dim(const Dims& dims) {
  if (dims.empty()) throw std::invalid_argument("total_dim: no particles");
  std::size_t d = 1;
  for (std::size_t dk : dims) {
    if (dk < 2) throw std::invalid_argument("total_dim: particle dimension < 2");
    if (d > 4096 / dk) throw std::invalid_argument("total_dim: register too large");
    d *= dk;
  }
  return d;
}

namespace {

/// Dimension of everything to the right of particle p (the index stride of
/// particle p's digit).
std::size_t stride_after(const Dims& dims, std::size_t p) {
  std::size_t s = 1;
  for (std::size_t q = p + 1; q < dims.size(); ++q) s *= dims[q];
  return s;
}

Dims concat(const Dims& a, const Dims& b) {
  Dims out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

DState::DState(Dims dims) : dims_(std::move(dims)), amps_(total_dim(dims_), cplx(0, 0)) {
  amps_[0] = cplx(1, 0);
}

DState::DState(CVec amplitudes, Dims dims) : dims_(std::move(dims)), amps_(std::move(amplitudes)) {
  if (amps_.size() != total_dim(dims_))
    throw std::invalid_argument("DState: amplitude size does not match dims");
  linalg::vnormalize(amps_);
}

DState DState::maximally_entangled(std::size_t d) {
  CVec c(d, cplx(1, 0));
  return from_pair_amplitudes(c);
}

DState DState::from_pair_amplitudes(const CVec& pair_amplitudes) {
  const std::size_t d = pair_amplitudes.size();
  if (d < 2) throw std::invalid_argument("from_pair_amplitudes: need d >= 2");
  CVec amps(d * d, cplx(0, 0));
  for (std::size_t k = 0; k < d; ++k) amps[k * d + k] = pair_amplitudes[k];
  return DState(std::move(amps), Dims{d, d});
}

DState DState::tensor(const DState& other) const {
  return DState(linalg::kron(amps_, other.amps_), concat(dims_, other.dims_));
}

cplx DState::overlap(const DState& other) const {
  if (dim() != other.dim()) throw std::invalid_argument("DState::overlap: dim mismatch");
  return linalg::vdot(amps_, other.amps_);
}

double DState::overlap_probability(const DState& other) const {
  return std::norm(overlap(other));
}

DState DState::apply(const CMat& u) const {
  if (u.rows() != dim() || u.cols() != dim())
    throw std::invalid_argument("DState::apply: operator dim mismatch");
  return DState(u * amps_, dims_);
}

DState DState::apply_local(const CMat& u, std::size_t particle) const {
  if (particle >= dims_.size())
    throw std::out_of_range("DState::apply_local: particle out of range");
  const std::size_t dp = dims_[particle];
  if (u.rows() != dp || u.cols() != dp)
    throw std::invalid_argument("DState::apply_local: operator does not match particle dim");

  const std::size_t post = stride_after(dims_, particle);
  const std::size_t block = dp * post;  // span of one iteration over particle's digit
  CVec out(amps_.size(), cplx(0, 0));
  for (std::size_t base = 0; base < amps_.size(); base += block)
    for (std::size_t r = 0; r < post; ++r)
      for (std::size_t i = 0; i < dp; ++i) {
        cplx s(0, 0);
        for (std::size_t j = 0; j < dp; ++j) s += u(i, j) * amps_[base + j * post + r];
        out[base + i * post + r] = s;
      }
  return DState(std::move(out), dims_);
}

double DState::probability(std::size_t basis_index) const {
  return std::norm(amps_.at(basis_index));
}

DDensityMatrix::DDensityMatrix(Dims dims)
    : dims_(std::move(dims)), rho_(CMat::identity(total_dim(dims_))) {
  rho_ *= cplx(1.0 / static_cast<double>(dim()), 0);
}

DDensityMatrix::DDensityMatrix(const DState& psi)
    : dims_(psi.dims()), rho_(linalg::outer(psi.amplitudes(), psi.amplitudes())) {}

DDensityMatrix::DDensityMatrix(CMat rho, Dims dims, double psd_tol)
    : dims_(std::move(dims)), rho_(std::move(rho)) {
  rho_.require_square("DDensityMatrix");
  if (rho_.rows() != total_dim(dims_))
    throw std::invalid_argument("DDensityMatrix: matrix size does not match dims");
  if (!linalg::is_hermitian(rho_, 1e-8))
    throw std::invalid_argument("DDensityMatrix: not Hermitian");
  const double tr = std::real(rho_.trace());
  if (std::abs(tr - 1.0) > 1e-6)
    throw std::invalid_argument("DDensityMatrix: trace != 1");
  const auto evals = linalg::hermitian_eigenvalues(rho_);
  for (double v : evals)
    if (v < -psd_tol)
      throw std::invalid_argument("DDensityMatrix: not positive semidefinite");
}

cplx DDensityMatrix::expectation(const CMat& observable) const {
  if (observable.rows() != dim() || observable.cols() != dim())
    throw std::invalid_argument("DDensityMatrix::expectation: dim mismatch");
  // O(dim²) trace of the product — this is the inner loop of every
  // probability evaluation in the CGLMP and MUB layers.
  return linalg::trace_product(rho_, observable);
}

double DDensityMatrix::probability(const CMat& projector) const {
  const double p = std::real(expectation(projector));
  return std::min(1.0, std::max(0.0, p));
}

DDensityMatrix DDensityMatrix::tensor(const DDensityMatrix& other) const {
  DDensityMatrix out;
  out.rho_ = linalg::kron(rho_, other.rho_);
  out.dims_ = concat(dims_, other.dims_);
  return out;
}

DDensityMatrix DDensityMatrix::partial_trace_keep(
    const std::vector<std::size_t>& keep) const {
  if (keep.empty())
    throw std::invalid_argument("partial_trace_keep: must keep at least one particle");
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= dims_.size())
      throw std::out_of_range("partial_trace_keep: bad particle");
    if (i > 0 && keep[i] <= keep[i - 1])
      throw std::invalid_argument("partial_trace_keep: particles must be strictly ascending");
  }

  std::vector<std::size_t> traced;
  for (std::size_t q = 0; q < dims_.size(); ++q) {
    bool kept = false;
    for (std::size_t kq : keep) kept |= (kq == q);
    if (!kept) traced.push_back(q);
  }

  Dims kept_dims, traced_dims;
  for (std::size_t q : keep) kept_dims.push_back(dims_[q]);
  for (std::size_t q : traced) traced_dims.push_back(dims_[q]);
  std::size_t out_dim = 1, tr_dim = 1;
  for (std::size_t d : kept_dims) out_dim *= d;
  for (std::size_t d : traced_dims) tr_dim *= d;

  // Precompute per-particle strides in the full register.
  std::vector<std::size_t> strides(dims_.size());
  for (std::size_t q = 0; q < dims_.size(); ++q) strides[q] = stride_after(dims_, q);

  // Full-register index from (kept digits, traced digits) mixed-radix values.
  const auto make_index = [&](std::size_t kept_val, std::size_t traced_val) {
    std::size_t idx = 0;
    for (std::size_t i = kept_dims.size(); i-- > 0;) {
      idx += (kept_val % kept_dims[i]) * strides[keep[i]];
      kept_val /= kept_dims[i];
    }
    for (std::size_t i = traced_dims.size(); i-- > 0;) {
      idx += (traced_val % traced_dims[i]) * strides[traced[i]];
      traced_val /= traced_dims[i];
    }
    return idx;
  };

  CMat out(out_dim, out_dim);
  for (std::size_t a = 0; a < out_dim; ++a)
    for (std::size_t b = 0; b < out_dim; ++b) {
      cplx s(0, 0);
      for (std::size_t t = 0; t < tr_dim; ++t)
        s += rho_(make_index(a, t), make_index(b, t));
      out(a, b) = s;
    }

  DDensityMatrix res;
  res.rho_ = std::move(out);
  res.dims_ = std::move(kept_dims);
  return res;
}

DDensityMatrix DDensityMatrix::mix(const DDensityMatrix& other, double p) const {
  if (p < 0 || p > 1) throw std::invalid_argument("DDensityMatrix::mix: p outside [0,1]");
  if (dim() != other.dim())
    throw std::invalid_argument("DDensityMatrix::mix: dim mismatch");
  DDensityMatrix out;
  out.dims_ = dims_;
  out.rho_ = rho_ * cplx(1 - p, 0) + other.rho_ * cplx(p, 0);
  return out;
}

DDensityMatrix DDensityMatrix::evolve(const CMat& u) const {
  if (u.rows() != dim() || u.cols() != dim())
    throw std::invalid_argument("DDensityMatrix::evolve: dim mismatch");
  DDensityMatrix out;
  out.dims_ = dims_;
  out.rho_ = u * rho_ * u.adjoint();
  return out;
}

DDensityMatrix isotropic_noise(const DState& target, double visibility) {
  if (visibility < 0 || visibility > 1)
    throw std::invalid_argument("isotropic_noise: visibility outside [0,1]");
  const DDensityMatrix pure(target);
  const DDensityMatrix mixed(target.dims());
  return pure.mix(mixed, 1.0 - visibility);
}

double purity(const DDensityMatrix& rho) { return quantum::purity(rho.matrix()); }

double von_neumann_entropy_bits(const DDensityMatrix& rho) {
  return quantum::von_neumann_entropy_bits(rho.matrix());
}

double fidelity(const DDensityMatrix& rho, const DDensityMatrix& sigma) {
  return quantum::fidelity(rho.matrix(), sigma.matrix());
}

double fidelity(const DDensityMatrix& rho, const DState& target) {
  return quantum::fidelity(rho.matrix(), target.amplitudes());
}

double trace_distance(const DDensityMatrix& rho, const DDensityMatrix& sigma) {
  return quantum::trace_distance(rho.matrix(), sigma.matrix());
}

namespace {

/// (d1, d2) of the bipartition after `first` particles.
std::pair<std::size_t, std::size_t> split_dims(const Dims& dims, std::size_t first) {
  if (first == 0 || first >= dims.size())
    throw std::invalid_argument("qudit measures: bad bipartition split");
  std::size_t d1 = 1, d2 = 1;
  for (std::size_t q = 0; q < first; ++q) d1 *= dims[q];
  for (std::size_t q = first; q < dims.size(); ++q) d2 *= dims[q];
  return {d1, d2};
}

}  // namespace

double negativity(const DDensityMatrix& rho, std::size_t particles_in_first_subsystem) {
  const auto [d1, d2] = split_dims(rho.dims(), particles_in_first_subsystem);
  return quantum::negativity(rho.matrix(), d1, d2);
}

linalg::RVec schmidt_coefficients(const DState& psi,
                                  std::size_t particles_in_first_subsystem) {
  const auto [d1, d2] = split_dims(psi.dims(), particles_in_first_subsystem);
  return quantum::schmidt_coefficients(psi.amplitudes(), d1, d2);
}

double schmidt_number(const DState& psi, std::size_t particles_in_first_subsystem) {
  const auto lambda = schmidt_coefficients(psi, particles_in_first_subsystem);
  double sum4 = 0;
  for (double l : lambda) sum4 += l * l * l * l;
  if (sum4 <= 0) throw std::invalid_argument("schmidt_number: degenerate state");
  return 1.0 / sum4;
}

}  // namespace qfc::qudit
