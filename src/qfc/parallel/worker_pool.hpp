#pragma once

/// \file worker_pool.hpp
/// Persistent worker pool shared by every threaded subsystem: the Blocked
/// linalg backend uses it for its parallel rotation rounds and GEMM row
/// chunks, detect::EventEngine for its per-channel generation fan-out and
/// the sharded merge-sweep analysis kernels. A pool is created once and
/// reused across thousands of small fork/join rounds, so dispatch must be
/// cheap: one mutex/condvar handshake per round, tasks claimed via an
/// atomic counter.
///
/// Determinism contract: the pool itself guarantees nothing about ordering —
/// callers must split work into tasks that write disjoint data and read only
/// data no other task of the same round writes (or merge per-task partial
/// results in a fixed task order after the join). Under that discipline the
/// task-to-thread assignment cannot change any floating-point operation
/// order, so results are bitwise identical for every pool size. See
/// src/qfc/parallel/README.md for the contract and the pool-ownership map.
///
/// Instrumentation (qfc/obs/obs.hpp): when obs is enabled the pool records a
/// "pool.run" span per round on the caller, a "pool.work" span per worker
/// participation, per-thread busy nanoseconds under
/// `parallel.worker_busy_ns.<index>` (index 0 = the calling thread), a
/// `parallel.queue_depth` gauge, and `parallel.rounds`/`parallel.tasks`
/// counters. All of it sits behind one relaxed atomic branch when disabled
/// and touches no task data, so the determinism contract is unaffected.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qfc::parallel {

class WorkerPool {
 public:
  /// `num_threads` counts the calling thread too: a pool of size 1 runs
  /// everything inline and spawns nothing.
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total threads that execute tasks (workers + the caller).
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(task_index) for every task_index in [0, num_tasks); the calling
  /// thread participates. Blocks until all tasks finished. The first
  /// exception thrown by any task is rethrown here after the round drains.
  /// Concurrent run() calls from different threads serialize on an internal
  /// mutex (correct, just not parallel); run() from inside a task deadlocks.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(unsigned worker_index);
  void claim_tasks();

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t num_tasks_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  std::size_t busy_workers_ = 0;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Deterministic chunked parallel-for: splits [0, n) into contiguous chunks
/// of at most `chunk_size` and runs fn(chunk_index, begin, end) for each on
/// the pool. Chunk boundaries depend only on (n, chunk_size) — never on the
/// pool size — so a caller whose chunks write disjoint data (or that merges
/// per-chunk partial results in chunk order) is bitwise invariant across
/// worker counts for free.
void parallel_for_chunks(WorkerPool& pool, std::size_t n, std::size_t chunk_size,
                         const std::function<void(std::size_t chunk, std::size_t begin,
                                                  std::size_t end)>& fn);

}  // namespace qfc::parallel
