#include "qfc/parallel/worker_pool.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "qfc/obs/obs.hpp"

namespace qfc::parallel {

namespace {

// Busy-ns counter for one pool thread; resolved once per thread (the
// registry lookup allocates) and reused across every round it works.
obs::Counter& busy_counter(unsigned worker_index) {
  static constexpr unsigned kCached = 32;
  static std::array<obs::Counter*, kCached> cache{};
  static std::mutex mu;
  if (worker_index < kCached) {
    std::lock_guard<std::mutex> lock(mu);
    if (cache[worker_index] == nullptr)
      cache[worker_index] = &obs::counter("parallel.worker_busy_ns." +
                                          std::to_string(worker_index));
    return *cache[worker_index];
  }
  return obs::counter("parallel.worker_busy_ns." + std::to_string(worker_index));
}

}  // namespace

WorkerPool::WorkerPool(unsigned num_threads) {
  const unsigned spawned = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawned);
  for (unsigned t = 0; t < spawned; ++t)
    workers_.emplace_back([this, t] { worker_loop(t + 1); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::claim_tasks() {
  for (std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
       i < num_tasks_; i = next_task_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*fn_)(i);
    } catch (...) {
      if (!failed_.exchange(true)) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    if (obs::enabled()) {
      QFC_OBS_SPAN("pool.work", {{"worker", worker_index}});
      const std::uint64_t t0 = obs::detail::now_ns();
      claim_tasks();
      busy_counter(worker_index).add(obs::detail::now_ns() - t0);
    } else {
      claim_tasks();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_workers_ == 0) cv_done_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    if (obs::enabled()) {
      QFC_OBS_SPAN("pool.run", {{"tasks", num_tasks}, {"inline", 1}});
      obs::counter("parallel.rounds").increment();
      obs::counter("parallel.tasks").add(num_tasks);
      const std::uint64_t t0 = obs::detail::now_ns();
      for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
      busy_counter(0).add(obs::detail::now_ns() - t0);
    } else {
      for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    }
    return;
  }

  // One fork/join round at a time; concurrent callers queue here.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  QFC_OBS_SPAN("pool.run", {{"tasks", num_tasks}});
  const bool instrumented = obs::enabled();
  if (instrumented) {
    obs::counter("parallel.rounds").increment();
    obs::counter("parallel.tasks").add(num_tasks);
    obs::gauge("parallel.queue_depth").set(static_cast<long long>(num_tasks));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    fn_ = &fn;
    next_task_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();

  if (instrumented) {
    const std::uint64_t t0 = obs::detail::now_ns();
    claim_tasks();
    busy_counter(0).add(obs::detail::now_ns() - t0);
  } else {
    claim_tasks();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return busy_workers_ == 0; });
    fn_ = nullptr;
  }
  if (instrumented) obs::gauge("parallel.queue_depth").set(0);
  if (error_) std::rethrow_exception(error_);
}

void parallel_for_chunks(WorkerPool& pool, std::size_t n, std::size_t chunk_size,
                         const std::function<void(std::size_t, std::size_t,
                                                  std::size_t)>& fn) {
  if (chunk_size == 0)
    throw std::invalid_argument("parallel_for_chunks: chunk_size == 0");
  if (n == 0) return;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  pool.run(num_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunk_size;
    fn(chunk, begin, std::min(begin + chunk_size, n));
  });
}

}  // namespace qfc::parallel
