#include "qfc/parallel/worker_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace qfc::parallel {

WorkerPool::WorkerPool(unsigned num_threads) {
  const unsigned spawned = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawned);
  for (unsigned t = 0; t < spawned; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::claim_tasks() {
  for (std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
       i < num_tasks_; i = next_task_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*fn_)(i);
    } catch (...) {
      if (!failed_.exchange(true)) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    claim_tasks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_workers_ == 0) cv_done_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  // One fork/join round at a time; concurrent callers queue here.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    fn_ = &fn;
    next_task_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();

  claim_tasks();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return busy_workers_ == 0; });
    fn_ = nullptr;
  }
  if (error_) std::rethrow_exception(error_);
}

void parallel_for_chunks(WorkerPool& pool, std::size_t n, std::size_t chunk_size,
                         const std::function<void(std::size_t, std::size_t,
                                                  std::size_t)>& fn) {
  if (chunk_size == 0)
    throw std::invalid_argument("parallel_for_chunks: chunk_size == 0");
  if (n == 0) return;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  pool.run(num_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunk_size;
    fn(chunk, begin, std::min(begin + chunk_size, n));
  });
}

}  // namespace qfc::parallel
