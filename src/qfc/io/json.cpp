#include "qfc/io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace qfc::io {

Json::Json(unsigned long long v) {
  if (v > static_cast<unsigned long long>(std::numeric_limits<std::int64_t>::max()))
    throw JsonError("Json: unsigned value " + std::to_string(v) +
                    " exceeds the int64 range JSON integers round-trip through");
  type_ = Type::Int;
  int_ = static_cast<std::int64_t>(v);
}

Json Json::make_array(Array elements) {
  Json j = make_array();
  j.array_ = std::move(elements);
  return j;
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw JsonError("Json::push_back on a non-array value");
  array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw JsonError("Json::set on a non-object value");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& member : object_)
    if (member.first == key) return &member.second;
  return nullptr;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Int: return a.int_ == b.int_;
    case Json::Type::Double:
      // Bit-level comparison (NaN == NaN, -0.0 != 0.0): dump() emits
      // distinct bytes exactly when the bits differ.
      return a.double_ == b.double_ ||
             (std::isnan(a.double_) && std::isnan(b.double_));
    case Json::Type::String: return a.string_ == b.string_;
    case Json::Type::Array: return a.array_ == b.array_;
    case Json::Type::Object: return a.object_ == b.object_;
  }
  return false;
}

// --------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    // Recompute line/column from the byte offset only on the error path.
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; column = 1; } else { ++column; }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(column) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected, const char* what) {
    if (!consume(expected)) fail(std::string("expected ") + what);
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      fail("invalid literal (expected '" + std::string(literal) + "')");
    pos_ += literal.size();
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Json parse_object() {
    expect('{', "'{'");
    Json object = Json::make_object();
    skip_whitespace();
    if (consume('}')) return object;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      if (object.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':', "':' after object key");
      object.set(std::move(key), parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect('}', "',' or '}' in object");
      return object;
    }
  }

  Json parse_array() {
    expect('[', "'['");
    Json array = Json::make_array();
    skip_whitespace();
    if (consume(']')) return array;
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect(']', "',' or ']' in array");
      return array;
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
        fail("high surrogate not followed by \\u low surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (consume('0')) {
      // leading zeros are invalid: "01" must not parse
    } else {
      if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '9')
        fail("invalid number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digit expected after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digit expected in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Json(value);
      // Integer literal outside int64: fall through to double semantics.
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

// --------------------------------------------------------------- writer

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v))
    throw JsonError(
        "Json::dump: non-finite number (use io::number_or_string for "
        "fields that can be NaN/Inf)");
  char buf[32];
  // Shortest round-trip form: deterministic bytes for identical bits, and
  // parse(dump(v)) reproduces v exactly.
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
  // Keep doubles visibly doubles so a re-parse lands back in Type::Double
  // (to_chars prints 4.0 as "4"): an integer-looking double gains ".0".
  std::string_view written(buf, static_cast<std::size_t>(result.ptr - buf));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos)
    out += ".0";
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int levels) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(levels), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: out += std::to_string(int_); return;
    case Type::Double: append_double(out, double_); return;
    case Type::String: append_escaped(out, string_); return;
    case Type::Array: {
      if (array_.empty()) { out += "[]"; return; }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_indent(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_indent(depth);
      out.push_back(']');
      return;
    }
    case Type::Object: {
      if (object_.empty()) { out += "{}"; return; }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_indent(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json number_or_string(double v) {
  if (std::isfinite(v)) return Json(v);
  if (std::isnan(v)) return Json("nan");
  return Json(v > 0 ? "inf" : "-inf");
}

// ------------------------------------------------------------- JsonView

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "boolean";
    case Json::Type::Int: return "integer";
    case Json::Type::Double: return "number";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

}  // namespace

void JsonView::fail(const std::string& message) const {
  throw JsonError(path_ + ": " + message);
}

bool JsonView::as_bool() const {
  if (!value_->is_bool())
    fail(std::string("expected boolean, got ") + type_name(value_->type()));
  return value_->bool_value();
}

double JsonView::as_number() const {
  if (!value_->is_number())
    fail(std::string("expected number, got ") + type_name(value_->type()));
  return value_->number_value();
}

std::int64_t JsonView::as_int() const {
  if (!value_->is_int())
    fail(std::string("expected integer, got ") + type_name(value_->type()));
  return value_->int_value();
}

std::int64_t JsonView::as_int_in(std::int64_t lo, std::int64_t hi) const {
  const std::int64_t v = as_int();
  if (v < lo || v > hi)
    fail("expected integer in [" + std::to_string(lo) + ", " + std::to_string(hi) +
         "], got " + std::to_string(v));
  return v;
}

const std::string& JsonView::as_string() const {
  if (!value_->is_string())
    fail(std::string("expected string, got ") + type_name(value_->type()));
  return value_->string_value();
}

std::size_t JsonView::array_size() const {
  if (!value_->is_array())
    fail(std::string("expected array, got ") + type_name(value_->type()));
  return value_->array_items().size();
}

JsonView JsonView::at(std::size_t index) const {
  if (!value_->is_array())
    fail(std::string("expected array, got ") + type_name(value_->type()));
  const auto& items = value_->array_items();
  if (index >= items.size())
    fail("index " + std::to_string(index) + " out of range (size " +
         std::to_string(items.size()) + ")");
  return JsonView(items[index], path_ + "[" + std::to_string(index) + "]");
}

bool JsonView::has(std::string_view key) const {
  return value_->find(key) != nullptr;
}

JsonView JsonView::at(std::string_view key) const {
  if (!value_->is_object())
    fail(std::string("expected object, got ") + type_name(value_->type()));
  const Json* member = value_->find(key);
  if (member == nullptr) fail("missing required key '" + std::string(key) + "'");
  return JsonView(*member, path_ + "." + std::string(key));
}

const Json* JsonView::find(std::string_view key) const {
  if (!value_->is_object())
    fail(std::string("expected object, got ") + type_name(value_->type()));
  return value_->find(key);
}

void JsonView::require_keys_among(
    std::initializer_list<std::string_view> allowed) const {
  if (!value_->is_object())
    fail(std::string("expected object, got ") + type_name(value_->type()));
  for (const auto& member : value_->object_members()) {
    bool known = false;
    for (const auto& key : allowed)
      if (member.first == key) { known = true; break; }
    if (!known) {
      std::string expected;
      for (const auto& key : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += key;
      }
      fail("unknown key '" + member.first + "' (expected one of: " + expected + ")");
    }
  }
}

}  // namespace qfc::io
