#pragma once

/// \file json.hpp
/// Dependency-free JSON for the config/serialization layer: a value type
/// (`Json`), a strict parser with line/column errors, a deterministic
/// writer, and a path-carrying accessor (`JsonView`) that turns config
/// reading mistakes into errors naming the exact JSON path
/// ("$.sweeps[1].axes[0].param: expected string, got number").
///
/// Determinism contract (the sweep runner's merged-report guarantee rides
/// on it): objects preserve insertion order, numbers print via
/// std::to_chars shortest round-trip form, and dump() emits no timestamps
/// or addresses — the same Json value always serializes to the same bytes,
/// and parse(dump(v)) == v exactly (integers stay integers, doubles stay
/// bit-identical).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qfc::io {

/// Parse or access error. `path` is "$"-rooted for accessor errors and
/// "line L, column C" style for parse errors; what() carries everything.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error(message) {}
};

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  /// Objects are insertion-ordered member lists (never re-sorted), so a
  /// config round-trips in author order and reports serialize in the
  /// order the code built them. Lookup is linear — fine for the small
  /// objects configs and reports are made of.
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(int v) noexcept : type_(Type::Int), int_(v) {}
  Json(long v) noexcept : type_(Type::Int), int_(v) {}
  Json(long long v) noexcept : type_(Type::Int), int_(v) {}
  Json(unsigned v) noexcept : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : Json(static_cast<unsigned long long>(v)) {}
  /// Throws JsonError above INT64_MAX (JSON has no unsigned channel that
  /// round-trips through the Int representation).
  Json(unsigned long long v);
  Json(double v) noexcept : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), string_(s) {}

  static Json make_array() { Json j; j.type_ = Type::Array; return j; }
  static Json make_object() { Json j; j.type_ = Type::Object; return j; }
  /// Convenience: Json::make_array({Json(1), Json(2)}).
  static Json make_array(Array elements);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  /// Int and Double are both "number" to readers; the split exists so
  /// integer literals (seeds, counts) round-trip without a float detour.
  bool is_number() const noexcept { return type_ == Type::Int || type_ == Type::Double; }
  bool is_int() const noexcept { return type_ == Type::Int; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  // ---- unchecked readers (call only after the matching is_*() check;
  //      JsonView is the checked, path-reporting way in).
  bool bool_value() const noexcept { return bool_; }
  std::int64_t int_value() const noexcept { return int_; }
  double number_value() const noexcept {
    return type_ == Type::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const noexcept { return string_; }
  const Array& array_items() const noexcept { return array_; }
  const Object& object_members() const noexcept { return object_; }

  // ---- builders
  /// Appends to an array (null coerces to an empty array first).
  void push_back(Json v);
  /// Sets object member `key` (null coerces to an empty object first);
  /// replaces in place if the key exists, appends otherwise.
  void set(std::string key, Json v);
  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const noexcept;

  /// Deep structural equality. Int(3) != Double(3.0) — the writer would
  /// emit different bytes for them, and byte equality is the contract the
  /// sweep gate checks, so value equality matches it.
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

  /// Strict RFC 8259 parse (UTF-8 passthrough for strings). Throws
  /// JsonError with "line L, column C" context on malformed input,
  /// including trailing garbage after the top-level value.
  static Json parse(std::string_view text);

  /// Serialize. indent < 0: compact one-line form; indent >= 0: pretty
  /// form with that many spaces per level. Numbers use std::to_chars
  /// shortest round-trip formatting; non-finite doubles throw JsonError
  /// (JSON has no NaN/Inf literal) unless the caller sanitized them.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Non-throwing NaN/Inf-safe number: non-finite doubles serialize as
/// strings ("nan", "inf", "-inf") so reports can carry e.g. the NaN
/// worst_qber of an empty network without killing the writer. Readers
/// treat these as data, not numbers; the sweep report uses this for every
/// measured floating-point field.
Json number_or_string(double v);

/// Checked, path-carrying accessor over a parsed Json tree. A JsonView is
/// a (value, "$.path") pair; every typed getter throws JsonError naming
/// that path on a type mismatch, and child views extend the path, so a
/// config error deep in a sweep file reads
/// "$.sweeps[2].axes[0].linspace.count: expected integer, got string".
class JsonView {
 public:
  JsonView(const Json& value, std::string path = "$")
      : value_(&value), path_(std::move(path)) {}

  const Json& value() const noexcept { return *value_; }
  const std::string& path() const noexcept { return path_; }

  // ---- typed leaf getters
  bool as_bool() const;
  /// Any number (Int or Double), as double.
  double as_number() const;
  /// Int only; a Double (even 3.0) is a type error — integer knobs like
  /// seeds and counts must be written as integers.
  std::int64_t as_int() const;
  /// as_int() plus a [lo, hi] range check ("expected integer in [1, 64]").
  std::int64_t as_int_in(std::int64_t lo, std::int64_t hi) const;
  const std::string& as_string() const;

  // ---- containers
  bool is_array() const noexcept { return value_->is_array(); }
  bool is_object() const noexcept { return value_->is_object(); }
  /// Throws unless this value is an array / object.
  std::size_t array_size() const;
  JsonView at(std::size_t index) const;          ///< array element, path += [i]
  bool has(std::string_view key) const;          ///< object member present?
  JsonView at(std::string_view key) const;       ///< required member, path += .key
  /// Optional member: nullopt-style — returns nullptr when absent.
  const Json* find(std::string_view key) const;

  /// Unknown-key guard: throws "$.path: unknown key 'foo' (expected one
  /// of: a, b, c)" if the object holds any member not in `allowed`.
  /// The error is the single most common config typo, so every config
  /// reader in qfc::sweep calls this before touching members.
  void require_keys_among(std::initializer_list<std::string_view> allowed) const;

  [[noreturn]] void fail(const std::string& message) const;

 private:
  const Json* value_;
  std::string path_;
};

}  // namespace qfc::io
