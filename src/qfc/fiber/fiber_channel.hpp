#pragma once

/// \file fiber_channel.hpp
/// Standard single-mode fiber channel for distributing the comb's photons
/// — the substrate behind the paper's headline application ("secure
/// communications", Sec. I). Models attenuation, chromatic dispersion
/// (which skews time bins across comb channels and smears them within a
/// channel's bandwidth), and excess background coupled into the channel.

#include <stdexcept>

namespace qfc::fiber {

struct FiberParams {
  double length_m = 0.0;
  /// SMF-28-like attenuation at 1550 nm.
  double attenuation_db_per_km = 0.20;
  /// Chromatic dispersion parameter D at 1550 nm, s/m² (17 ps/(nm·km)).
  double dispersion_s_per_m2 = 17e-6;
  /// Dispersion slope is ignored (< 1% effect over S+C+L for our spans).

  void validate() const {
    if (length_m < 0) throw std::invalid_argument("FiberParams: negative length");
    if (attenuation_db_per_km < 0)
      throw std::invalid_argument("FiberParams: negative attenuation");
  }
};

class FiberChannel {
 public:
  explicit FiberChannel(FiberParams params);

  const FiberParams& params() const noexcept { return params_; }

  /// Power transmission of the span.
  double transmission() const;

  /// Group delay difference between two comb channels (arrival-time skew
  /// from chromatic dispersion):  Δτ = D · L · Δλ.
  double channel_skew_s(double wavelength_a_m, double wavelength_b_m) const;

  /// Temporal broadening of a photon of spectral width δν (Lorentzian
  /// FWHM) centered at `wavelength_m`:  Δt = D · L · Δλ with
  /// Δλ = λ²δν/c. Narrowband comb photons broaden negligibly — the reason
  /// the 200 GHz comb travels well.
  double pulse_broadening_s(double wavelength_m, double linewidth_hz) const;

  /// Time-bin interference visibility penalty: the two bins acquire a
  /// differential spread; once broadening approaches the bin separation
  /// the bins overlap and post-selection fails. Returns a factor in (0,1]:
  ///   V' = V · exp(−(Δt / bin_separation)²).
  double timebin_visibility_factor(double wavelength_m, double linewidth_hz,
                                   double bin_separation_s) const;

 private:
  FiberParams params_;
};

/// Detected coincidence-rate scaling for a pair whose signal travels span A
/// and idler span B (both transmissions apply).
double pair_rate_scaling(const FiberChannel& a, const FiberChannel& b);

/// Copy of `base` with its length set to `length_km` kilometers — the
/// ergonomic step for callers (QKD links/networks) that keep one fiber
/// recipe and stamp out spans of varying length from it.
FiberParams with_length_km(FiberParams base, double length_km);

}  // namespace qfc::fiber
