#include "qfc/fiber/fiber_channel.hpp"

#include <cmath>

#include "qfc/photonics/constants.hpp"

namespace qfc::fiber {

FiberChannel::FiberChannel(FiberParams params) : params_(params) { params_.validate(); }

double FiberChannel::transmission() const {
  const double loss_db = params_.attenuation_db_per_km * params_.length_m / 1000.0;
  return std::pow(10.0, -loss_db / 10.0);
}

double FiberChannel::channel_skew_s(double wavelength_a_m, double wavelength_b_m) const {
  return params_.dispersion_s_per_m2 * params_.length_m *
         (wavelength_a_m - wavelength_b_m);
}

double FiberChannel::pulse_broadening_s(double wavelength_m, double linewidth_hz) const {
  const double c = photonics::speed_of_light_m_per_s;
  const double dlambda = wavelength_m * wavelength_m * linewidth_hz / c;
  return std::abs(params_.dispersion_s_per_m2) * params_.length_m * dlambda;
}

double FiberChannel::timebin_visibility_factor(double wavelength_m, double linewidth_hz,
                                               double bin_separation_s) const {
  if (bin_separation_s <= 0)
    throw std::invalid_argument("timebin_visibility_factor: bin separation <= 0");
  const double dt = pulse_broadening_s(wavelength_m, linewidth_hz);
  const double x = dt / bin_separation_s;
  return std::exp(-x * x);
}

double pair_rate_scaling(const FiberChannel& a, const FiberChannel& b) {
  return a.transmission() * b.transmission();
}

FiberParams with_length_km(FiberParams base, double length_km) {
  if (length_km < 0)
    throw std::invalid_argument("with_length_km: negative length");
  base.length_m = length_km * 1000.0;
  return base;
}

}  // namespace qfc::fiber
