#pragma once

/// \file four_photon.hpp
/// Sec. V end-to-end experiment: two Bell pairs on four comb lines form a
/// four-photon time-bin entangled state; four-photon quantum interference
/// (raw visibility ≈ 89%) and quantum state tomography (four-photon
/// fidelity ≈ 64%).

#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/core/timebin_experiment.hpp"
#include "qfc/quantum/measures.hpp"
#include "qfc/timebin/multiphoton.hpp"
#include "qfc/tomo/tomography.hpp"

namespace qfc::core {

struct FourPhotonConfig {
  /// Channel pairs combined into the four-photon state (paper: two pairs
  /// symmetric to the pump).
  int pair_a = 1;
  int pair_b = 2;
  int fringe_points = 24;
  double fourfold_events_per_point = 400.0;
  /// Flat four-fold background fraction (double-pair emission of one
  /// channel + dark-count combinations); relative to the mean fringe level.
  double fourfold_accidental_fraction = 0.15;
  /// Tomography statistics and systematics: analyzer-phase RMS error and
  /// flat accidentals, calibrated so the reconstructed four-photon
  /// fidelity lands at the paper's 64% (see EXPERIMENTS.md E9).
  double tomo_shots_per_setting = 250.0;
  tomo::NoiseKnobs tomo_noise{0.38, 1.0};
  std::uint64_t seed = 351;  ///< Science vol. 351 (ref [8])

  /// Throws std::invalid_argument with a path-qualified message
  /// ("FourPhotonConfig.pair_b: must differ from pair_a"). The in-range
  /// check against the timebin config's channel count stays in the
  /// constructor (it is a cross-config constraint).
  void validate() const;
};

struct FourPhotonResult {
  timebin::FourfoldFringe fringe;
  detect::SinusoidFit fringe_fit;       ///< fitted at the 2θ harmonic
  double analytic_visibility = 0;       ///< closed-form cross-check
  double bell_fidelity_a = 0;           ///< tomographic Bell fidelity, pair A
  double bell_fidelity_b = 0;
  double four_photon_fidelity = 0;      ///< tomographic vs |Φ>⊗|Φ>
  double four_photon_state_fidelity = 0;  ///< of the true (noise-model) state
  int tomo_iterations_pair = 0;
  int tomo_iterations_four = 0;

  io::Json to_json() const;
};

class FourPhotonExperiment {
 public:
  FourPhotonExperiment(photonics::MicroringResonator device, TimebinConfig timebin_cfg,
                       FourPhotonConfig cfg, sfwm::SfwmEfficiency eff = {});

  /// Full Sec. V pipeline: fringe + two-qubit tomography per pair +
  /// four-qubit tomography.
  FourPhotonResult run();

  /// The four-photon density matrix of the noise model (ground truth).
  quantum::DensityMatrix true_state() const;

 private:
  TimebinExperiment timebin_;
  FourPhotonConfig cfg_;
};

}  // namespace qfc::core
