#include "qfc/core/four_photon.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/quantum/bell.hpp"

namespace qfc::core {

void FourPhotonConfig::validate() const {
  const auto fail = [](const char* field, const char* what) {
    throw std::invalid_argument(std::string("FourPhotonConfig.") + field + ": " + what);
  };
  if (pair_a < 1) fail("pair_a", "must be >= 1");
  if (pair_b < 1) fail("pair_b", "must be >= 1");
  if (pair_a == pair_b) fail("pair_b", "must differ from pair_a");
  if (fringe_points < 4) fail("fringe_points", "must be >= 4");
  if (!(fourfold_events_per_point > 0)) fail("fourfold_events_per_point", "must be > 0");
  if (fourfold_accidental_fraction < 0)
    fail("fourfold_accidental_fraction", "must be >= 0");
  if (!(tomo_shots_per_setting > 0)) fail("tomo_shots_per_setting", "must be > 0");
  if (tomo_noise.analyzer_phase_rms_rad < 0)
    fail("tomo_noise.analyzer_phase_rms_rad", "must be >= 0");
  if (tomo_noise.accidentals_per_outcome < 0)
    fail("tomo_noise.accidentals_per_outcome", "must be >= 0");
}

io::Json FourPhotonResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("fringe", fringe.to_json());
  j.set("fringe_fit", fringe_fit.to_json());
  j.set("analytic_visibility", analytic_visibility);
  j.set("bell_fidelity_a", bell_fidelity_a);
  j.set("bell_fidelity_b", bell_fidelity_b);
  j.set("four_photon_fidelity", four_photon_fidelity);
  j.set("four_photon_state_fidelity", four_photon_state_fidelity);
  j.set("tomo_iterations_pair", tomo_iterations_pair);
  j.set("tomo_iterations_four", tomo_iterations_four);
  return j;
}

FourPhotonExperiment::FourPhotonExperiment(photonics::MicroringResonator device,
                                           TimebinConfig timebin_cfg, FourPhotonConfig cfg,
                                           sfwm::SfwmEfficiency eff)
    : timebin_(device, timebin_cfg, eff), cfg_(cfg) {
  cfg_.validate();
  if (cfg.pair_a > timebin_cfg.num_channel_pairs ||
      cfg.pair_b > timebin_cfg.num_channel_pairs)
    throw std::invalid_argument("FourPhotonConfig: channel pair out of range");
}

quantum::DensityMatrix FourPhotonExperiment::true_state() const {
  const auto ma = timebin_.noise_model(cfg_.pair_a);
  const auto mb = timebin_.noise_model(cfg_.pair_b);
  const double phase = timebin_.config().pump.pump_phase_rad;
  return timebin::noisy_pair_state(ma, phase)
      .tensor(timebin::noisy_pair_state(mb, phase));
}

FourPhotonResult FourPhotonExperiment::run() {
  rng::Xoshiro256 g(cfg_.seed);
  FourPhotonResult res;

  const double phase = timebin_.config().pump.pump_phase_rad;
  const auto ma = timebin_.noise_model(cfg_.pair_a);
  const auto mb = timebin_.noise_model(cfg_.pair_b);
  const quantum::DensityMatrix rho_a = timebin::noisy_pair_state(ma, phase);
  const quantum::DensityMatrix rho_b = timebin::noisy_pair_state(mb, phase);
  const quantum::DensityMatrix rho4 = rho_a.tensor(rho_b);

  // --- Four-photon quantum interference -------------------------------
  // Flat background at fraction f of the mean fringe level; the mean of
  // Tr[ρ₄ Π(θ)⊗⁴] over θ is (1 + V²/2)/16 for pair visibility V.
  const double v_state = timebin::state_visibility(ma);
  const double mean_level =
      cfg_.fourfold_events_per_point * (1.0 + v_state * v_state / 2.0) / 16.0;
  const double floor = cfg_.fourfold_accidental_fraction * mean_level;
  res.fringe = timebin::simulate_fourfold_fringe(
      rho4, cfg_.fourfold_events_per_point, floor, cfg_.fringe_points, g);

  // The product fringe oscillates at 2θ: fit at that harmonic.
  std::vector<double> x2(res.fringe.phase_rad.size());
  for (std::size_t i = 0; i < x2.size(); ++i) x2[i] = 2.0 * res.fringe.phase_rad[i];
  // (1 + V cos x)² = 1 + V²/2 + 2V cos x + (V²/2) cos 2x: the fitted
  // first-harmonic visibility of the counts approximates the extrema-based
  // value; report the extrema-based analytic value alongside.
  res.fringe_fit = detect::fit_sinusoid(x2, res.fringe.counts);

  res.analytic_visibility =
      timebin::fourfold_visibility(v_state, cfg_.fourfold_accidental_fraction);

  // --- Tomography ------------------------------------------------------
  const quantum::StateVector bell = quantum::bell_phi(phase);
  const quantum::StateVector bell4 = bell.tensor(bell);

  const auto counts_a =
      tomo::simulate_counts(rho_a, cfg_.tomo_shots_per_setting, cfg_.tomo_noise, g);
  const auto mle_a = tomo::maximum_likelihood(counts_a);
  res.bell_fidelity_a = quantum::fidelity(mle_a.rho, bell);
  res.tomo_iterations_pair = mle_a.iterations;

  const auto counts_b =
      tomo::simulate_counts(rho_b, cfg_.tomo_shots_per_setting, cfg_.tomo_noise, g);
  const auto mle_b = tomo::maximum_likelihood(counts_b);
  res.bell_fidelity_b = quantum::fidelity(mle_b.rho, bell);

  const auto counts4 =
      tomo::simulate_counts(rho4, cfg_.tomo_shots_per_setting, cfg_.tomo_noise, g);
  const auto mle4 = tomo::maximum_likelihood(counts4);
  res.four_photon_fidelity = quantum::fidelity(mle4.rho, bell4);
  res.four_photon_state_fidelity = quantum::fidelity(rho4, bell4);
  res.tomo_iterations_four = mle4.iterations;

  return res;
}

}  // namespace qfc::core
