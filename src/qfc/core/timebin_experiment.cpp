#include "qfc/core/timebin_experiment.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/device_presets.hpp"

namespace qfc::core {

photonics::DoublePulsePump TimebinConfig::make_default_pump(
    const photonics::MicroringResonator& device, double average_power_w) {
  photonics::DoublePulsePump pump;
  pump.frequency_hz = photonics::pump_resonance_hz(device);
  // Spectrally filtered to one resonance: transform-limited pulse whose
  // bandwidth equals the ring linewidth.
  const double lw = device.linewidth_hz(pump.frequency_hz, photonics::Polarization::TE);
  pump.train.pulse_fwhm_s = 2.0 * std::log(2.0) / (photonics::pi * lw);
  pump.train.repetition_rate_hz = 16.8e6;
  pump.train.average_power_w = average_power_w;
  // Time bins well separated from both the pulse and the photon coherence
  // time, small vs the repetition period.
  pump.bin_separation_s = 5.0 * pump.train.pulse_fwhm_s;
  pump.pump_phase_rad = 0.0;
  return pump;
}

void TimebinConfig::validate() const {
  const auto fail = [](const char* field, const char* what) {
    throw std::invalid_argument(std::string("TimebinConfig.") + field + ": " + what);
  };
  pump.validate();
  if (num_channel_pairs < 1) fail("num_channel_pairs", "must be >= 1");
  if (!(integration_s_per_point > 0)) fail("integration_s_per_point", "must be > 0");
  if (fringe_points < 4) fail("fringe_points", "must be >= 4");
  if (interferometer_phase_noise_rms_rad < 0)
    fail("interferometer_phase_noise_rms_rad", "must be >= 0");
  if (accidental_fraction < 0 || accidental_fraction >= 1)
    fail("accidental_fraction", "must be in [0, 1)");
  if (!(detection_efficiency_per_arm > 0) || detection_efficiency_per_arm > 1)
    fail("detection_efficiency_per_arm", "must be in (0, 1]");
}

io::Json TimebinChannelResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("k", k);
  j.set("mu_per_double_pulse", mu_per_double_pulse);
  j.set("fringe_fit", fringe_fit.to_json());
  j.set("predicted_visibility", predicted_visibility);
  j.set("chsh", chsh.to_json());
  j.set("scan", scan.to_json());
  return j;
}

TimebinExperiment::TimebinExperiment(photonics::MicroringResonator device,
                                     TimebinConfig cfg, sfwm::SfwmEfficiency eff)
    : device_(device), cfg_(cfg), source_(device_, cfg_.pump, cfg_.num_channel_pairs, eff) {
  cfg_.validate();
}

timebin::TimebinNoiseModel TimebinExperiment::noise_model(int k) const {
  timebin::TimebinNoiseModel m;
  // Both bins together carry twice the per-pulse mean.
  m.mean_pairs_per_double_pulse = 2.0 * source_.mean_pairs_per_pulse(k);
  m.phase_noise_rms_rad = cfg_.interferometer_phase_noise_rms_rad;
  m.accidental_fraction = cfg_.accidental_fraction;
  return m;
}

double TimebinExperiment::detected_coincidence_rate_hz(int k) const {
  const double pairs_per_s =
      source_.mean_pairs_per_pulse(k) * 2.0 * cfg_.pump.train.repetition_rate_hz;
  const double eta2 = cfg_.detection_efficiency_per_arm * cfg_.detection_efficiency_per_arm;
  // Post-selection keeps 1/4 of pairs in the middle|middle slot pattern
  // per analyzer pair (each photon: 1/2 in the middle slot).
  return pairs_per_s * eta2 * 0.25;
}

TimebinChannelResult TimebinExperiment::run_channel(int k) {
  if (k < 1 || k > cfg_.num_channel_pairs)
    throw std::out_of_range("TimebinExperiment::run_channel: bad channel");

  rng::Xoshiro256 g(cfg_.seed + static_cast<std::uint64_t>(k) * 7919);

  TimebinChannelResult r;
  r.k = k;
  const timebin::TimebinNoiseModel m = noise_model(k);
  r.mu_per_double_pulse = m.mean_pairs_per_double_pulse;
  r.predicted_visibility = timebin::predicted_visibility(m);

  const quantum::DensityMatrix rho = timebin::noisy_pair_state(m, cfg_.pump.pump_phase_rad);

  // Detected pairs contributing per fringe point. The coincidence
  // probability inside simulate_fringe already includes the 1/16 analyzer
  // post-selection, so feed it the pre-analyzer detected-pair number.
  const double detected_pairs_per_point =
      source_.mean_pairs_per_pulse(k) * 2.0 * cfg_.pump.train.repetition_rate_hz *
      cfg_.integration_s_per_point * cfg_.detection_efficiency_per_arm *
      cfg_.detection_efficiency_per_arm;
  const double accidental_floor = detected_pairs_per_point / 16.0 *
                                  m.accidental_fraction / (1.0 - m.accidental_fraction);

  r.scan = timebin::simulate_fringe(rho, detected_pairs_per_point, accidental_floor,
                                    cfg_.fringe_points, cfg_.pump.bin_separation_s,
                                    /*fixed_phase_rad=*/0.0, g);
  r.fringe_fit = detect::fit_sinusoid(r.scan.phase_rad, r.scan.counts);

  const timebin::ChshSettings settings =
      timebin::optimal_settings_for_phi(cfg_.pump.pump_phase_rad);
  // Per-setting statistics: same integration time per setting combination;
  // measure_chsh wants post-selected pairs, so apply the 1/16 here.
  const double pairs_per_setting = detected_pairs_per_point / 16.0;
  r.chsh = timebin::measure_chsh(rho, settings, pairs_per_setting,
                                 accidental_floor / 4.0, g);
  return r;
}

detect::ChannelPairSpec TimebinExperiment::cw_equivalent_spec(int k,
                                                              double dark_rate_hz) const {
  detect::DetectorParams det;
  det.efficiency = cfg_.detection_efficiency_per_arm;
  det.dark_rate_hz = dark_rate_hz;
  det.jitter_sigma_s = 100e-12;
  det.dead_time_s = 0.0;

  detect::ChannelPairSpec spec;
  // Both bins together: twice the per-pulse mean, at the repetition rate.
  spec.pair_rate_hz =
      source_.mean_pairs_per_pulse(k) * 2.0 * cfg_.pump.train.repetition_rate_hz;
  spec.linewidth_hz =
      device_.linewidth_hz(cfg_.pump.frequency_hz, photonics::Polarization::TE);
  spec.detector_signal = det;
  spec.detector_idler = det;
  return spec;
}

std::vector<detect::CarResult> TimebinExperiment::run_car_check(double duration_s,
                                                                double dark_rate_hz,
                                                                double window_s) const {
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k)
    specs.push_back(cw_equivalent_spec(k, dark_rate_hz));

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = cfg_.seed + 4242;
  const detect::EngineResult events = detect::EventEngine(ec).run(specs);
  const detect::CarMatrix matrix = detect::car_matrix(
      events.signal, events.idler, window_s, /*side_window_spacing_s=*/100e-9);

  std::vector<detect::CarResult> out;
  out.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    out.push_back(matrix.at(c, c));
  }
  return out;
}

detect::ChannelPairSpec TimebinExperiment::pulsed_spec(int k, double dark_rate_hz) const {
  detect::ChannelPairSpec spec = cw_equivalent_spec(k, dark_rate_hz);
  spec.pair_rate_hz = 0;  // the pulse train carries the rate
  spec.emission = detect::EmissionMode::Pulsed;
  spec.pulsed.repetition_rate_hz = cfg_.pump.train.repetition_rate_hz;
  // Both bins together: twice the per-pulse mean per repetition period.
  spec.pulsed.mean_pairs_per_pulse = 2.0 * source_.mean_pairs_per_pulse(k);
  spec.pulsed.bin_separation_s = cfg_.pump.bin_separation_s;
  // Pairs are born over the pulse envelope: intensity FWHM -> 1σ.
  spec.pulsed.pulse_sigma_s =
      cfg_.pump.train.pulse_fwhm_s / (2.0 * std::sqrt(2.0 * std::log(2.0)));
  return spec;
}

std::vector<TimebinExperiment::PulsedClickCheck> TimebinExperiment::run_pulsed_car_check(
    double duration_s, double dark_rate_hz, double window_s) const {
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k)
    specs.push_back(pulsed_spec(k, dark_rate_hz));

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = cfg_.seed + 8484;
  const detect::EngineResult events = detect::EventEngine(ec).run(specs);

  // Accidental windows at multiples of the repetition period: for a
  // pulsed source the only physical accidental estimate is a neighboring
  // pulse slot, not an arbitrary CW offset.
  const double period = 1.0 / cfg_.pump.train.repetition_rate_hz;
  const detect::CarMatrix matrix =
      detect::car_matrix(events.signal, events.idler, window_s, period);

  // Δt histogram fine enough to resolve the early/late peak triplet.
  const double dt_bins = cfg_.pump.bin_separation_s;
  const auto hists = detect::correlate_all(events.signal, events.idler,
                                           /*bin_width_s=*/dt_bins / 16.0,
                                           /*range_s=*/1.5 * dt_bins);

  std::vector<PulsedClickCheck> out;
  out.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    PulsedClickCheck check;
    check.car = matrix.at(c, c);
    check.histogram = hists[c];
    check.peaks =
        timebin::fold_timebin_peaks(hists[c], dt_bins, /*half_window_s=*/dt_bins / 4.0);
    out.push_back(std::move(check));
  }
  return out;
}

std::vector<TimebinChannelResult> TimebinExperiment::run_all_channels() {
  std::vector<TimebinChannelResult> out;
  out.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k) out.push_back(run_channel(k));
  return out;
}

}  // namespace qfc::core
