#include "qfc/core/channel_model.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/photonics/constants.hpp"

namespace qfc::core {

ChannelChain ChannelModel::chain(int k, int arm) const {
  if (k < 1) throw std::invalid_argument("ChannelModel::chain: k must be >= 1");
  if (arm != 0 && arm != 1) throw std::invalid_argument("ChannelModel::chain: arm is 0 or 1");

  // Deterministic pseudo-ripple: each (channel, arm) sits at a different
  // point of the demux filter's insertion-loss ripple.
  const double x = static_cast<double>(k) * 1.7 + static_cast<double>(arm) * 0.9;
  const double ripple = std::sin(x) * 0.5;  // in [-0.5, 0.5]

  ChannelChain c;
  c.transmission = base_transmission * (1.0 + transmission_ripple * ripple);
  c.detector.efficiency = detector_efficiency;
  c.detector.dark_rate_hz = base_dark_rate_hz * (1.0 + dark_rate_ripple * std::cos(x));
  c.detector.jitter_sigma_s = jitter_sigma_s;
  c.detector.dead_time_s = dead_time_s;
  return c;
}

double pump_leakage_click_rate_hz(double pump_power_w, double pump_frequency_hz,
                                  double rejection_db, double detector_efficiency) {
  if (pump_power_w < 0) throw std::invalid_argument("pump_leakage: negative power");
  if (rejection_db < 0) throw std::invalid_argument("pump_leakage: negative rejection");
  if (detector_efficiency < 0 || detector_efficiency > 1)
    throw std::invalid_argument("pump_leakage: efficiency outside [0,1]");
  const double photon_flux =
      pump_power_w / photonics::photon_energy_J(pump_frequency_hz);
  return photon_flux * std::pow(10.0, -rejection_db / 10.0) * detector_efficiency;
}

double required_pump_rejection_db(double pump_power_w, double pump_frequency_hz,
                                  double max_click_rate_hz,
                                  double detector_efficiency) {
  if (max_click_rate_hz <= 0)
    throw std::invalid_argument("required_pump_rejection: max rate <= 0");
  const double photon_flux =
      pump_power_w / photonics::photon_energy_J(pump_frequency_hz);
  const double needed = photon_flux * detector_efficiency / max_click_rate_hz;
  return needed > 1.0 ? 10.0 * std::log10(needed) : 0.0;
}

}  // namespace qfc::core
