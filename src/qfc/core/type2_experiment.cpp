#include "qfc/core/type2_experiment.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/detect/event_engine.hpp"
#include "qfc/photonics/device_presets.hpp"

namespace qfc::core {

sfwm::Type2PairSource Type2Experiment::make_source(
    const photonics::MicroringResonator& device, double total_power_w, int num_pairs,
    sfwm::SfwmEfficiency eff) {
  photonics::CrossPolarizedPump pump;
  pump.power_te_w = total_power_w / 2.0;
  pump.power_tm_w = total_power_w / 2.0;
  pump.frequency_te_hz =
      device.nearest_resonance_hz(photonics::itu_anchor_hz, photonics::Polarization::TE);
  pump.frequency_tm_hz =
      device.nearest_resonance_hz(pump.frequency_te_hz, photonics::Polarization::TM);
  return sfwm::Type2PairSource(device, pump, num_pairs, eff);
}

void Type2Config::validate() const {
  const auto fail = [](const char* field, const char* what) {
    throw std::invalid_argument(std::string("Type2Config.") + field + ": " + what);
  };
  if (!(pump_power_total_w > 0)) fail("pump_power_total_w", "must be > 0");
  if (num_channel_pairs < 1) fail("num_channel_pairs", "must be >= 1");
  if (!(duration_s > 0)) fail("duration_s", "must be > 0");
  if (!(coincidence_window_s > 0)) fail("coincidence_window_s", "must be > 0");
  if (!(side_window_spacing_s > coincidence_window_s))
    fail("side_window_spacing_s", "must exceed the coincidence window");
  if (!(pbs_extinction_db > 0)) fail("pbs_extinction_db", "must be > 0");
}

io::Json Type2CarResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("pump_power_w", pump_power_w);
  j.set("car", car.to_json());
  j.set("pair_rate_on_chip_hz", pair_rate_on_chip_hz);
  j.set("coincidence_rate_hz", coincidence_rate_hz);
  return j;
}

io::Json Type2Experiment::OpoPoint::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("pump_w", pump_w);
  j.set("output_w", output_w);
  j.set("oscillating", oscillating);
  return j;
}

Type2Experiment::Type2Experiment(photonics::MicroringResonator device, Type2Config cfg,
                                 sfwm::SfwmEfficiency eff)
    : device_(device),
      cfg_(cfg),
      eff_(eff),
      source_(make_source(device_, cfg_.pump_power_total_w, cfg_.num_channel_pairs, eff)) {
  cfg_.validate();
}

Type2CarResult Type2Experiment::measure_at(double total_power_w,
                                           std::uint64_t seed_offset) {
  const sfwm::Type2PairSource src =
      make_source(device_, total_power_w, cfg_.num_channel_pairs, eff_);

  // Channel pair k = 1 through the polarizing beam splitter.
  const ChannelChain te_chain = cfg_.channels.chain(1, 0);
  const ChannelChain tm_chain = cfg_.channels.chain(1, 1);
  const double leakage = std::pow(10.0, -cfg_.pbs_extinction_db / 10.0);

  detect::ChannelPairSpec spec;
  spec.pair_rate_hz = src.pair_rate_hz(1);
  spec.linewidth_hz = src.photon_linewidth_hz();
  spec.transmission_signal = te_chain.transmission * (1.0 - leakage);
  spec.transmission_idler = tm_chain.transmission * (1.0 - leakage);
  spec.detector_signal = te_chain.detector;
  spec.detector_idler = tm_chain.detector;

  detect::EngineConfig ec;
  ec.duration_s = cfg_.duration_s;
  ec.seed = cfg_.seed + seed_offset;
  const detect::EngineResult events = detect::EventEngine(ec).run({spec});
  const detect::CarMatrix matrix =
      detect::car_matrix(events.signal, events.idler, cfg_.coincidence_window_s,
                         cfg_.side_window_spacing_s);

  Type2CarResult r;
  r.pump_power_w = total_power_w;
  r.pair_rate_on_chip_hz = src.pair_rate_hz(1);
  r.car = matrix.at(0, 0);
  r.coincidence_rate_hz =
      std::max(0.0, r.car.coincidences - r.car.accidentals) / cfg_.duration_s;
  return r;
}

Type2CarResult Type2Experiment::run_car_measurement() {
  return measure_at(cfg_.pump_power_total_w, /*seed_offset=*/1);
}

std::vector<Type2CarResult> Type2Experiment::run_power_sweep(
    const std::vector<double>& powers_w) {
  std::vector<Type2CarResult> out;
  out.reserve(powers_w.size());
  std::uint64_t off = 100;
  for (double p : powers_w) out.push_back(measure_at(p, off++));
  return out;
}

std::vector<Type2Experiment::OpoPoint> Type2Experiment::run_opo_curve(
    double max_pump_w, int num_points) const {
  if (num_points < 2) throw std::invalid_argument("run_opo_curve: need >= 2 points");
  const sfwm::OpoModel opo(device_, eff_);
  std::vector<OpoPoint> out;
  out.reserve(static_cast<std::size_t>(num_points));
  for (int i = 0; i < num_points; ++i) {
    const double p = max_pump_w * static_cast<double>(i + 1) / num_points;
    out.push_back(OpoPoint{p, opo.output_power_w(p), opo.oscillating(p)});
  }
  return out;
}

double Type2Experiment::opo_threshold_w() const {
  return sfwm::OpoModel(device_, eff_).threshold_w();
}

double Type2Experiment::stimulated_suppression_db() const {
  return source_.stimulated_suppression_db();
}

}  // namespace qfc::core
