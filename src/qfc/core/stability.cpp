#include "qfc/core/stability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/streaming.hpp"
#include "qfc/photonics/constants.hpp"
#include "qfc/photonics/device_presets.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::core {

void StabilityConfig::validate() const {
  const auto fail = [](const char* field, const char* what) {
    throw std::invalid_argument(std::string("StabilityConfig.") + field + ": " + what);
  };
  if (!(observation_days > 0)) fail("observation_days", "must be > 0");
  if (!(sample_interval_s > 0)) fail("sample_interval_s", "must be > 0");
  if (temperature_rms_K < 0) fail("temperature_rms_K", "must be >= 0");
  if (!(temperature_tau_s > 0)) fail("temperature_tau_s", "must be > 0");
  if (self_locked_residual_fraction < 0)
    fail("self_locked_residual_fraction", "must be >= 0");
}

io::Json StabilityTrace::to_json(bool include_series) const {
  io::Json j = io::Json::make_object();
  j.set("samples", relative_rate.size());
  j.set("mean", mean);
  j.set("rms_fluctuation_percent", rms_fluctuation_percent);
  j.set("peak_to_peak_percent", peak_to_peak_percent);
  if (include_series) {
    const auto as_array = [](const std::vector<double>& v) {
      io::Json a = io::Json::make_array();
      for (const double x : v) a.push_back(io::Json(x));
      return a;
    };
    j.set("time_s", as_array(time_s));
    j.set("relative_rate", as_array(relative_rate));
  }
  return j;
}

io::Json StabilityComparison::to_json(bool include_series) const {
  io::Json j = io::Json::make_object();
  j.set("self_locked", self_locked.to_json(include_series));
  j.set("external", external.to_json(include_series));
  return j;
}

io::Json CountedStabilityTrace::to_json(bool include_series) const {
  io::Json j = io::Json::make_object();
  j.set("trace", trace.to_json(include_series));
  j.set("mean_counts", mean_counts);
  io::Json a = io::Json::make_array();
  for (const auto& p : allan) a.push_back(p.to_json());
  j.set("allan", std::move(a));
  if (include_series) {
    io::Json c = io::Json::make_array();
    for (const double x : counts) c.push_back(io::Json(x));
    j.set("counts", std::move(c));
  }
  return j;
}

StabilityExperiment::StabilityExperiment(photonics::MicroringResonator device,
                                         StabilityConfig cfg)
    : device_(device), cfg_(cfg) {
  cfg_.validate();
}

double StabilityExperiment::relative_rate_at_detuning(double detuning_hz) const {
  const double lw =
      device_.linewidth_hz(photonics::itu_anchor_hz, photonics::Polarization::TE);
  const double x = 2.0 * detuning_hz / lw;
  const double enhancement = 1.0 / (1.0 + x * x);  // Lorentzian intensity
  // Pair rate ∝ (intracavity power)² = enhancement².
  return enhancement * enhancement;
}

StabilityTrace StabilityExperiment::run_scheme(photonics::PumpLocking locking,
                                               std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  const double lw =
      device_.linewidth_hz(photonics::itu_anchor_hz, photonics::Polarization::TE);
  const double thermal_rate =
      device_.thermal_shift_hz_per_K(photonics::itu_anchor_hz, photonics::Polarization::TE);

  rng::OrnsteinUhlenbeck temperature(0.0, cfg_.temperature_tau_s, cfg_.temperature_rms_K,
                                     0.0);

  StabilityTrace trace;
  const double total_s = cfg_.observation_days * 24.0 * 3600.0;
  const auto n = static_cast<std::size_t>(total_s / cfg_.sample_interval_s);
  trace.time_s.reserve(n);
  trace.relative_rate.reserve(n);

  double sum = 0, sum2 = 0, mn = 1e300, mx = -1e300;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * cfg_.sample_interval_s;
    const double dT = temperature.step(g, cfg_.sample_interval_s);

    double detuning_hz;
    if (locking == photonics::PumpLocking::SelfLocked) {
      // The system lases on the loop mode nearest the (drifting) ring
      // resonance: the residual detuning is the fold of the drift into the
      // loop-mode grid, plus lasing-line jitter.
      const double resonance = photonics::itu_anchor_hz + thermal_rate * dT;
      detuning_hz =
          cfg_.loop.lasing_detuning_hz(resonance) +
          rng::sample_normal(g, 0.0, cfg_.self_locked_residual_fraction * lw);
    } else {
      // External laser fixed at the cold resonance; the resonance walks
      // away thermally.
      detuning_hz = thermal_rate * dT;
    }

    const double rate = relative_rate_at_detuning(detuning_hz);
    trace.time_s.push_back(t);
    trace.relative_rate.push_back(rate);
    sum += rate;
    sum2 += rate * rate;
    mn = std::min(mn, rate);
    mx = std::max(mx, rate);
  }

  const double mean = sum / static_cast<double>(n);
  const double var = std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
  trace.mean = mean;
  trace.rms_fluctuation_percent = mean > 0 ? 100.0 * std::sqrt(var) / mean : 0.0;
  trace.peak_to_peak_percent = mean > 0 ? 100.0 * (mx - mn) / mean : 0.0;
  return trace;
}

CountedStabilityTrace StabilityExperiment::run_counted_scheme(
    photonics::PumpLocking locking, double mean_coincidence_rate_hz) {
  if (mean_coincidence_rate_hz <= 0)
    throw std::invalid_argument("run_counted_scheme: mean rate <= 0");

  CountedStabilityTrace out;
  out.trace = run_scheme(locking, locking == photonics::PumpLocking::SelfLocked
                                      ? cfg_.seed
                                      : cfg_.seed + 1);
  const std::size_t n = out.trace.relative_rate.size();
  if (n == 0) return out;

  // Ideal collection chain: unit efficiency/transmission, no darks, no
  // jitter or dead time — every generated pair is one coincidence
  // candidate, so the segment pair rate IS the drifting coincidence rate.
  detect::ChannelPairSpec spec;
  spec.emission = detect::EmissionMode::PiecewiseRates;
  spec.linewidth_hz =
      device_.linewidth_hz(photonics::itu_anchor_hz, photonics::Polarization::TE);
  spec.detector_signal.efficiency = 1.0;
  spec.detector_signal.dark_rate_hz = 0.0;
  spec.detector_signal.jitter_sigma_s = 0.0;
  spec.detector_signal.dead_time_s = 0.0;
  spec.detector_idler = spec.detector_signal;

  // The signal-idler Laplace delay scale is 1/(2π δν) ~ ns; a window many
  // delay scales wide loses a negligible fraction of true pairs, while
  // accidentals at Hz-level rates are vanishing.
  const double window_s = 40e-9;
  // One piecewise schedule covering the whole observation: the drifting
  // relative-rate trace becomes the segment pair rates, and the windowed
  // streaming engine generates it one sample interval at a time, so click
  // memory stays bounded by the busiest interval even for multi-week runs.
  spec.segments.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    detect::RateSegment seg;
    seg.duration_s = cfg_.sample_interval_s;
    seg.pair_rate_hz = mean_coincidence_rate_hz * out.trace.relative_rate[i];
    spec.segments.push_back(seg);
  }

  detect::EngineConfig ec;
  ec.duration_s = static_cast<double>(n) * cfg_.sample_interval_s;
  ec.seed = cfg_.seed + 77 +
            (locking == photonics::PumpLocking::SelfLocked ? 0 : 1);
  detect::StreamConfig sc;
  sc.window_s = cfg_.sample_interval_s;
  detect::EventStreamer streamer(ec, sc, {spec});
  detect::StreamingAllanAccumulator allan(window_s, cfg_.sample_interval_s);
  detect::StreamWindow w;
  while (streamer.next(w)) allan.push(w);

  detect::StreamingAllanResult res = allan.finish();
  out.counts = std::move(res.counts);
  out.mean_counts = res.mean_counts;
  out.allan = std::move(res.allan);
  return out;
}

StabilityComparison StabilityExperiment::run() {
  StabilityComparison cmp;
  cmp.self_locked = run_scheme(photonics::PumpLocking::SelfLocked, cfg_.seed);
  cmp.external = run_scheme(photonics::PumpLocking::ExternalFixed, cfg_.seed + 1);
  return cmp;
}

}  // namespace qfc::core
