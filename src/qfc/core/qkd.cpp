#include "qfc/core/qkd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/detect/streaming.hpp"
#include "qfc/photonics/constants.hpp"

namespace qfc::core {

double binary_entropy_bits(double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("binary_entropy_bits: p outside [0,1]");
  if (p == 0 || p == 1) return 0.0;
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

double qber_from_visibility(double visibility) {
  if (visibility < 0 || visibility > 1)
    throw std::invalid_argument("qber_from_visibility: V outside [0,1]");
  return (1.0 - visibility) / 2.0;
}

double bbm92_secret_fraction(double qber) {
  if (qber < 0 || qber > 0.5)
    throw std::invalid_argument("bbm92_secret_fraction: QBER outside [0,0.5]");
  return std::max(0.0, 1.0 - 2.0 * binary_entropy_bits(qber));
}

MultiplexedQkdLink::MultiplexedQkdLink(const TimebinExperiment& experiment,
                                       QkdLinkParams params)
    : experiment_(&experiment), params_(params) {
  if (params_.coincidence_window_s <= 0)
    throw std::invalid_argument("QkdLinkParams: window <= 0");
  if (params_.dark_rate_hz < 0) throw std::invalid_argument("QkdLinkParams: dark rate < 0");
  if (params_.sifting_factor <= 0 || params_.sifting_factor > 1)
    throw std::invalid_argument("QkdLinkParams: sifting factor outside (0,1]");
}

QkdChannelPerformance MultiplexedQkdLink::channel_performance(int k,
                                                              double distance_km) const {
  if (distance_km < 0)
    throw std::invalid_argument("channel_performance: negative distance");

  QkdChannelPerformance perf;
  perf.k = k;
  perf.distance_km = distance_km;

  // Symmetric spans: source in the middle.
  fiber::FiberParams span = params_.fiber;
  span.length_m = distance_km * 1000.0 / 2.0;
  const fiber::FiberChannel arm(span);
  const double t_arm = arm.transmission();

  // Local (L = 0) performance from the experiment model.
  const auto noise = experiment_->noise_model(k);
  const double v_state = timebin::state_visibility(noise);
  const double c0 = experiment_->detected_coincidence_rate_hz(k);

  // Rates after fiber.
  const double true_coincidences = c0 * t_arm * t_arm;
  const double pairs_per_s = experiment_->source().mean_pairs_per_pulse(k) * 2.0 *
                             experiment_->config().pump.train.repetition_rate_hz;
  const double eta = experiment_->config().detection_efficiency_per_arm;
  const double singles =
      pairs_per_s * eta * t_arm * 0.5 /* analyzer post-selection */ +
      params_.dark_rate_hz;
  const double accidentals = singles * singles * params_.coincidence_window_s;

  // Dispersion washes out time bins over long spans.
  const double wavelength = photonics::wavelength_from_frequency(
      experiment_->source().grid().pair(k).signal.frequency_hz);
  const double linewidth = experiment_->source().ring().linewidth_hz(
      experiment_->config().pump.frequency_hz, photonics::Polarization::TE);
  const double disp_factor = arm.timebin_visibility_factor(
      wavelength, linewidth, experiment_->config().pump.bin_separation_s);

  const double denom = true_coincidences + accidentals;
  perf.visibility =
      denom > 0 ? v_state * disp_factor * true_coincidences / denom : 0.0;
  perf.qber = qber_from_visibility(perf.visibility);
  perf.sifted_rate_hz = params_.sifting_factor * denom;
  perf.secret_fraction = bbm92_secret_fraction(perf.qber);
  perf.key_rate_bps = perf.sifted_rate_hz * perf.secret_fraction;
  perf.key_positive = perf.key_rate_bps > 0;
  return perf;
}

std::vector<QkdChannelPerformance> MultiplexedQkdLink::all_channels(
    double distance_km) const {
  std::vector<QkdChannelPerformance> out;
  const int n = experiment_->config().num_channel_pairs;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 1; k <= n; ++k) out.push_back(channel_performance(k, distance_km));
  return out;
}

double MultiplexedQkdLink::aggregate_key_rate_bps(double distance_km) const {
  double total = 0;
  for (const auto& ch : all_channels(distance_km)) total += ch.key_rate_bps;
  return total;
}

std::vector<MultiplexedQkdLink::StreamCheck> MultiplexedQkdLink::monte_carlo_stream_check(
    double distance_km, double duration_s, std::uint64_t seed) const {
  if (distance_km < 0)
    throw std::invalid_argument("monte_carlo_stream_check: negative distance");

  fiber::FiberParams span = params_.fiber;
  span.length_m = distance_km * 1000.0 / 2.0;
  const double t_arm = fiber::FiberChannel(span).transmission();

  const auto& cfg = experiment_->config();
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg.num_channel_pairs));
  for (int k = 1; k <= cfg.num_channel_pairs; ++k) {
    detect::ChannelPairSpec spec =
        experiment_->cw_equivalent_spec(k, params_.dark_rate_hz);
    spec.transmission_signal = t_arm;
    spec.transmission_idler = t_arm;
    specs.push_back(spec);
  }

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = seed;
  const detect::EngineResult events = detect::EventEngine(ec).run(specs);
  const double window = params_.coincidence_window_s;
  const detect::CarMatrix matrix = detect::car_matrix(
      events.signal, events.idler, window,
      /*side_window_spacing_s=*/std::max(100e-9, 20.0 * window));

  std::vector<StreamCheck> out;
  out.reserve(specs.size());
  for (int k = 1; k <= cfg.num_channel_pairs; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    StreamCheck r;
    r.k = k;
    r.car = matrix.at(c, c);
    r.measured_coincidence_rate_hz =
        std::max(0.0, r.car.coincidences - r.car.accidentals) / duration_s;
    r.measured_accidental_rate_hz = r.car.accidentals / duration_s;
    out.push_back(r);
  }
  return out;
}

std::vector<MultiplexedQkdLink::StreamCheck> MultiplexedQkdLink::long_run_stream_check(
    double distance_km, double duration_s, double stream_window_s,
    std::uint64_t seed) const {
  if (distance_km < 0)
    throw std::invalid_argument("long_run_stream_check: negative distance");

  fiber::FiberParams span = params_.fiber;
  span.length_m = distance_km * 1000.0 / 2.0;
  const double t_arm = fiber::FiberChannel(span).transmission();

  const auto& cfg = experiment_->config();
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg.num_channel_pairs));
  for (int k = 1; k <= cfg.num_channel_pairs; ++k) {
    detect::ChannelPairSpec spec =
        experiment_->cw_equivalent_spec(k, params_.dark_rate_hz);
    spec.transmission_signal = t_arm;
    spec.transmission_idler = t_arm;
    specs.push_back(spec);
  }

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = seed;
  detect::StreamConfig sc;
  sc.window_s = stream_window_s;
  const double window = params_.coincidence_window_s;
  detect::EventStreamer streamer(ec, sc, specs);
  detect::StreamingCarAccumulator car(
      window, /*side_window_spacing_s=*/std::max(100e-9, 20.0 * window));
  detect::StreamWindow w;
  while (streamer.next(w)) car.push(w);
  const detect::CarMatrix matrix = car.finish();

  std::vector<StreamCheck> out;
  out.reserve(specs.size());
  for (int k = 1; k <= cfg.num_channel_pairs; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    StreamCheck r;
    r.k = k;
    r.car = matrix.cells.empty() ? detect::CarResult{} : matrix.at(c, c);
    r.measured_coincidence_rate_hz =
        std::max(0.0, r.car.coincidences - r.car.accidentals) / duration_s;
    r.measured_accidental_rate_hz = r.car.accidentals / duration_s;
    out.push_back(r);
  }
  return out;
}

double MultiplexedQkdLink::max_distance_km(int k, double upper_bound_km) const {
  double lo = 0, hi = upper_bound_km;
  if (channel_performance(k, lo).key_rate_bps <= 0) return 0.0;
  if (channel_performance(k, hi).key_rate_bps > 0) return hi;
  for (int it = 0; it < 60; ++it) {
    const double mid = (lo + hi) / 2;
    if (channel_performance(k, mid).key_rate_bps > 0)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace qfc::core
