#include "qfc/core/qkd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "qfc/detect/streaming.hpp"
#include "qfc/photonics/constants.hpp"

namespace qfc::core {

io::Json QkdChannelPerformance::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("k", k);
  j.set("distance_km", distance_km);
  j.set("visibility", visibility);
  j.set("qber", qber);
  j.set("sifted_rate_hz", sifted_rate_hz);
  j.set("secret_fraction", secret_fraction);
  j.set("key_rate_bps", key_rate_bps);
  j.set("key_positive", key_positive);
  return j;
}

io::Json MultiplexedQkdLink::StreamCheck::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("k", k);
  j.set("measured_coincidence_rate_hz", measured_coincidence_rate_hz);
  j.set("measured_accidental_rate_hz", measured_accidental_rate_hz);
  j.set("car", car.to_json());
  return j;
}

double binary_entropy_bits(double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("binary_entropy_bits: p outside [0,1]");
  if (p == 0 || p == 1) return 0.0;
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

double qber_from_visibility(double visibility) {
  if (visibility < 0 || visibility > 1)
    throw std::invalid_argument("qber_from_visibility: V outside [0,1]");
  return (1.0 - visibility) / 2.0;
}

double bbm92_secret_fraction(double qber) {
  if (qber < 0 || qber > 0.5)
    throw std::invalid_argument("bbm92_secret_fraction: QBER outside [0,0.5]");
  return std::max(0.0, 1.0 - 2.0 * binary_entropy_bits(qber));
}

void UserEndpointParams::validate() const {
  if (coincidence_window_s <= 0)
    throw std::invalid_argument("UserEndpointParams: coincidence window <= 0");
  if (dark_rate_hz < 0)
    throw std::invalid_argument("UserEndpointParams: negative dark rate");
  if (sifting_factor <= 0 || sifting_factor > 1)
    throw std::invalid_argument("UserEndpointParams: sifting factor outside (0,1]");
  if (detector_jitter_sigma_s < 0)
    throw std::invalid_argument("UserEndpointParams: negative detector jitter");
  if (detector_dead_time_s < 0)
    throw std::invalid_argument("UserEndpointParams: negative dead time");
  if (detection_efficiency_scale <= 0 || detection_efficiency_scale > 1)
    throw std::invalid_argument(
        "UserEndpointParams: detection efficiency scale outside (0,1]");
}

void LinkGeometry::validate() const {
  if (distance_km < 0)
    throw std::invalid_argument("LinkGeometry: negative distance");
  fiber.validate();
}

fiber::FiberChannel LinkGeometry::arm_channel() const {
  validate();
  return fiber::FiberChannel(fiber::with_length_km(fiber, distance_km / 2.0));
}

double LinkGeometry::arm_transmission() const { return arm_channel().transmission(); }

double intrinsic_visibility(const TimebinExperiment& experiment, int k,
                            const LinkGeometry& geometry) {
  const fiber::FiberChannel arm = geometry.arm_channel();
  const auto noise = experiment.noise_model(k);
  const double v_state = timebin::state_visibility(noise);
  // Dispersion washes out time bins over long spans.
  const double wavelength = photonics::wavelength_from_frequency(
      experiment.source().grid().pair(k).signal.frequency_hz);
  const double linewidth = experiment.source().ring().linewidth_hz(
      experiment.config().pump.frequency_hz, photonics::Polarization::TE);
  const double disp_factor = arm.timebin_visibility_factor(
      wavelength, linewidth, experiment.config().pump.bin_separation_s);
  return v_state * disp_factor;
}

QkdChannelPerformance analytic_channel_performance(
    const TimebinExperiment& experiment, int k,
    const UserEndpointParams& endpoint, const LinkGeometry& geometry) {
  endpoint.validate();

  QkdChannelPerformance perf;
  perf.k = k;
  perf.distance_km = geometry.distance_km;

  // Symmetric spans: source in the middle.
  const fiber::FiberChannel arm = geometry.arm_channel();
  const double t_arm = arm.transmission();

  // Local (L = 0) performance from the experiment model.
  const double c0 = experiment.detected_coincidence_rate_hz(k);

  // Rates after fiber. detection_efficiency_scale multiplies the per-arm
  // efficiency, so coincidences pick up scale² and singles scale¹; at the
  // default 1.0 every product below is bitwise unchanged.
  const double scale = endpoint.detection_efficiency_scale;
  const double true_coincidences = c0 * t_arm * t_arm * scale * scale;
  const double pairs_per_s = experiment.source().mean_pairs_per_pulse(k) * 2.0 *
                             experiment.config().pump.train.repetition_rate_hz;
  const double eta = experiment.config().detection_efficiency_per_arm * scale;
  const double singles =
      pairs_per_s * eta * t_arm * 0.5 /* analyzer post-selection */ +
      endpoint.dark_rate_hz;
  const double accidentals = singles * singles * endpoint.coincidence_window_s;

  const double v_intrinsic = intrinsic_visibility(experiment, k, geometry);
  const double denom = true_coincidences + accidentals;
  perf.visibility =
      denom > 0 ? v_intrinsic * true_coincidences / denom : 0.0;
  perf.qber = qber_from_visibility(perf.visibility);
  perf.sifted_rate_hz = endpoint.sifting_factor * denom;
  perf.secret_fraction = bbm92_secret_fraction(perf.qber);
  perf.key_rate_bps = perf.sifted_rate_hz * perf.secret_fraction;
  perf.key_positive = perf.key_rate_bps > 0;
  return perf;
}

detect::ChannelPairSpec link_channel_spec(const TimebinExperiment& experiment,
                                          int k,
                                          const UserEndpointParams& endpoint,
                                          const LinkGeometry& geometry) {
  endpoint.validate();
  detect::ChannelPairSpec spec =
      experiment.cw_equivalent_spec(k, endpoint.dark_rate_hz);
  const double t_arm = geometry.arm_transmission();
  spec.transmission_signal = t_arm;
  spec.transmission_idler = t_arm;
  for (detect::DetectorParams* det : {&spec.detector_signal, &spec.detector_idler}) {
    det->jitter_sigma_s = endpoint.detector_jitter_sigma_s;
    det->dead_time_s = endpoint.detector_dead_time_s;
    det->efficiency *= endpoint.detection_efficiency_scale;
  }
  return spec;
}

MultiplexedQkdLink::MultiplexedQkdLink(const TimebinExperiment& experiment,
                                       UserEndpointParams endpoint,
                                       fiber::FiberParams fiber)
    : experiment_(&experiment), endpoint_(endpoint), fiber_(fiber) {
  endpoint_.validate();
  fiber_.validate();
}

QkdChannelPerformance MultiplexedQkdLink::channel_performance(int k,
                                                              double distance_km) const {
  return analytic_channel_performance(*experiment_, k, endpoint_,
                                      LinkGeometry{distance_km, fiber_});
}

std::vector<QkdChannelPerformance> MultiplexedQkdLink::all_channels(
    double distance_km) const {
  std::vector<QkdChannelPerformance> out;
  const int n = experiment_->config().num_channel_pairs;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 1; k <= n; ++k) out.push_back(channel_performance(k, distance_km));
  return out;
}

double MultiplexedQkdLink::aggregate_key_rate_bps(double distance_km) const {
  double total = 0;
  for (const auto& ch : all_channels(distance_km)) total += ch.key_rate_bps;
  return total;
}

std::vector<MultiplexedQkdLink::StreamCheck> MultiplexedQkdLink::stream_check(
    double distance_km, double duration_s, const StreamOptions& options) const {
  if (duration_s <= 0)
    throw std::invalid_argument("stream_check: duration <= 0");
  const LinkGeometry geometry{distance_km, fiber_};
  geometry.validate();

  const auto& cfg = experiment_->config();
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg.num_channel_pairs));
  for (int k = 1; k <= cfg.num_channel_pairs; ++k)
    specs.push_back(link_channel_spec(*experiment_, k, endpoint_, geometry));

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = options.seed;
  ec.analysis_threads = options.analysis_threads;
  detect::StreamConfig sc;
  // window <= 0: one window spanning the run — the old batch path. The
  // streaming engine is bitwise identical at every window size, so this
  // only changes peak memory.
  sc.window_s = options.window_s > 0 ? options.window_s : duration_s;

  const double window = endpoint_.coincidence_window_s;
  detect::EventStreamer streamer(ec, sc, specs);
  detect::StreamingCarAccumulator car(
      window, /*side_window_spacing_s=*/std::max(100e-9, 20.0 * window),
      /*num_side_windows=*/10, options.analysis_threads);
  detect::StreamWindow w;
  while (streamer.next(w)) car.push(w);
  const detect::CarMatrix matrix = car.finish();

  std::vector<StreamCheck> out;
  out.reserve(specs.size());
  for (int k = 1; k <= cfg.num_channel_pairs; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    StreamCheck r;
    r.k = k;
    r.car = matrix.cells.empty() ? detect::CarResult{} : matrix.at(c, c);
    r.measured_coincidence_rate_hz =
        std::max(0.0, r.car.coincidences - r.car.accidentals) / duration_s;
    r.measured_accidental_rate_hz = r.car.accidentals / duration_s;
    out.push_back(r);
  }
  return out;
}

double MultiplexedQkdLink::max_distance_km(int k, double upper_bound_km,
                                           double tolerance_km) const {
  if (upper_bound_km <= 0)
    throw std::invalid_argument("max_distance_km: upper bound <= 0");
  if (tolerance_km <= 0)
    throw std::invalid_argument("max_distance_km: tolerance <= 0");
  double lo = 0, hi = upper_bound_km;
  if (!(channel_performance(k, lo).key_rate_bps > 0))
    return std::numeric_limits<double>::quiet_NaN();
  if (channel_performance(k, hi).key_rate_bps > 0) return hi;
  while (hi - lo > tolerance_km) {
    const double mid = (lo + hi) / 2;
    if (channel_performance(k, mid).key_rate_bps > 0)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace qfc::core
