#pragma once

/// \file hbt.hpp
/// Heralded Hanbury Brown–Twiss measurement: the idler heralds, the signal
/// passes a 50/50 beam splitter onto two detectors. The normalized
/// heralded autocorrelation
///   g²_h(0) = N_h N_h12 / (N_h1 N_h2)
/// is the operational proof of the paper's "pure heralded single photons"
/// (Sec. II): << 1 means single-photon emission, with multi-pair SFWM
/// events pushing it up as ~4μ.

#include <cstdint>

#include "qfc/quantum/fock.hpp"
#include "qfc/rng/xoshiro.hpp"

namespace qfc::core {

struct HbtParams {
  double mean_pairs_per_trial = 1e-3;  ///< μ of the SFWM source per time slot
  double herald_efficiency = 0.2;      ///< idler-arm detection probability
  double signal_efficiency = 0.2;      ///< signal-arm (before the 50/50 BS)
  double dark_probability = 1e-6;      ///< per-detector, per-trial
  std::uint64_t trials = 2'000'000;

  void validate() const;
};

struct HbtResult {
  std::uint64_t heralds = 0;        ///< N_h
  std::uint64_t coincidences_1 = 0; ///< N_h1 (herald + D1)
  std::uint64_t coincidences_2 = 0; ///< N_h2 (herald + D2)
  std::uint64_t triples = 0;        ///< N_h12
  double g2 = 0;                    ///< heralded g²(0)
  double g2_err = 0;                ///< Poisson error on the triples
};

/// Monte-Carlo HBT run with thermal (SFWM) photon-number statistics.
HbtResult run_hbt(const HbtParams& p, rng::Xoshiro256& g);

/// Analytic expectation from the two-mode squeezed vacuum model, ignoring
/// darks (cross-check for the MC).
double analytic_heralded_g2(const HbtParams& p);

}  // namespace qfc::core
