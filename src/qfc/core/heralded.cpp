#include "qfc/core/heralded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/detect/event_stream.hpp"
#include "qfc/detect/fit.hpp"
#include "qfc/photonics/device_presets.hpp"

namespace qfc::core {

namespace {

photonics::CwPump make_pump(const photonics::MicroringResonator& device,
                            const HeraldedConfig& cfg) {
  photonics::CwPump pump;
  pump.power_w = cfg.pump_power_w;
  pump.frequency_hz = photonics::pump_resonance_hz(device);
  pump.locking = photonics::PumpLocking::SelfLocked;
  return pump;
}

}  // namespace

HeraldedPhotonExperiment::HeraldedPhotonExperiment(photonics::MicroringResonator device,
                                                   HeraldedConfig cfg,
                                                   sfwm::SfwmEfficiency eff)
    : device_(device),
      cfg_(cfg),
      source_(device_, make_pump(device_, cfg_), cfg_.num_channel_pairs, eff) {
  if (cfg_.duration_s <= 0) throw std::invalid_argument("HeraldedConfig: duration <= 0");
  if (cfg_.num_channel_pairs < 1)
    throw std::invalid_argument("HeraldedConfig: need at least one channel pair");
}

HeraldedPhotonExperiment::ClickStreams HeraldedPhotonExperiment::simulate_streams(
    double duration_s, std::uint64_t seed_offset) {
  ClickStreams out;
  const int n = cfg_.num_channel_pairs;
  out.signal.resize(static_cast<std::size_t>(n));
  out.idler.resize(static_cast<std::size_t>(n));

  rng::Xoshiro256 master(cfg_.seed + seed_offset);
  for (int k = 1; k <= n; ++k) {
    rng::Xoshiro256 g = master.fork(static_cast<std::uint64_t>(k));

    const ChannelChain sig_chain = cfg_.channels.chain(k, 0);
    const ChannelChain idl_chain = cfg_.channels.chain(k, 1);

    detect::PairStreamParams p;
    p.pair_rate_hz = source_.pair_rate_hz(k);
    p.linewidth_hz = source_.photon_linewidth_hz();
    p.duration_s = duration_s;
    p.transmission_a = sig_chain.transmission;
    p.transmission_b = idl_chain.transmission;
    const detect::PairStreams photons = detect::generate_pair_arrivals(p, g);

    const detect::SinglePhotonDetector det_s(sig_chain.detector);
    const detect::SinglePhotonDetector det_i(idl_chain.detector);
    out.signal[static_cast<std::size_t>(k - 1)] = det_s.detect(photons.a, duration_s, g);
    out.idler[static_cast<std::size_t>(k - 1)] = det_i.detect(photons.b, duration_s, g);
  }
  return out;
}

std::vector<MatrixCell> HeraldedPhotonExperiment::run_coincidence_matrix() {
  const ClickStreams streams = simulate_streams(cfg_.duration_s, /*seed_offset=*/1);
  std::vector<MatrixCell> cells;
  const int n = cfg_.num_channel_pairs;
  cells.reserve(static_cast<std::size_t>(n * n));
  for (int si = 1; si <= n; ++si) {
    for (int ii = 1; ii <= n; ++ii) {
      MatrixCell cell;
      cell.signal_k = si;
      cell.idler_k = ii;
      cell.car = detect::measure_car(streams.signal[static_cast<std::size_t>(si - 1)],
                                     streams.idler[static_cast<std::size_t>(ii - 1)],
                                     cfg_.coincidence_window_s,
                                     cfg_.side_window_spacing_s);
      cells.push_back(cell);
    }
  }
  return cells;
}

std::vector<ChannelResult> HeraldedPhotonExperiment::run_channel_table() {
  const ClickStreams streams = simulate_streams(cfg_.duration_s, /*seed_offset=*/2);
  std::vector<ChannelResult> out;
  const int n = cfg_.num_channel_pairs;
  for (int k = 1; k <= n; ++k) {
    const auto& s = streams.signal[static_cast<std::size_t>(k - 1)];
    const auto& i = streams.idler[static_cast<std::size_t>(k - 1)];
    const detect::CarResult car = detect::measure_car(
        s, i, cfg_.coincidence_window_s, cfg_.side_window_spacing_s);

    ChannelResult r;
    r.k = k;
    // Net pair rate: subtract the accidental floor from the peak window.
    r.coincidence_rate_hz =
        std::max(0.0, car.coincidences - car.accidentals) / cfg_.duration_s;
    r.car = car.car;
    r.car_err = car.car_err;
    r.singles_signal_hz = static_cast<double>(s.size()) / cfg_.duration_s;
    r.singles_idler_hz = static_cast<double>(i.size()) / cfg_.duration_s;
    out.push_back(r);
  }
  return out;
}

CoherenceResult HeraldedPhotonExperiment::run_coherence_measurement(int k,
                                                                    double duration_s,
                                                                    double hist_bin_s,
                                                                    double hist_range_s) {
  if (k < 1 || k > cfg_.num_channel_pairs)
    throw std::out_of_range("run_coherence_measurement: bad channel");

  // Dedicated long acquisition for the time-resolved histogram.
  rng::Xoshiro256 g(cfg_.seed + 1000 + static_cast<std::uint64_t>(k));
  const ChannelChain sig_chain = cfg_.channels.chain(k, 0);
  const ChannelChain idl_chain = cfg_.channels.chain(k, 1);

  detect::PairStreamParams p;
  p.pair_rate_hz = source_.pair_rate_hz(k);
  p.linewidth_hz = source_.photon_linewidth_hz();
  p.duration_s = duration_s;
  p.transmission_a = sig_chain.transmission;
  p.transmission_b = idl_chain.transmission;
  const detect::PairStreams photons = detect::generate_pair_arrivals(p, g);

  const detect::SinglePhotonDetector det_s(sig_chain.detector);
  const detect::SinglePhotonDetector det_i(idl_chain.detector);
  const auto clicks_s = det_s.detect(photons.a, duration_s, g);
  const auto clicks_i = det_i.detect(photons.b, duration_s, g);

  CoherenceResult res;
  res.histogram = detect::correlate(clicks_s, clicks_i, hist_bin_s, hist_range_s);
  res.ring_linewidth_hz = source_.photon_linewidth_hz();

  // Background-subtract the flat accidental floor (median of the outermost
  // bins), then fit the two-sided exponential.
  const auto& h = res.histogram;
  double floor = 0;
  const std::size_t edge = std::max<std::size_t>(4, h.counts.size() / 10);
  for (std::size_t i = 0; i < edge; ++i)
    floor += static_cast<double>(h.counts[i] + h.counts[h.counts.size() - 1 - i]);
  floor /= static_cast<double>(2 * edge);

  // Only fit bins that stand clearly above the floor: keeping bins of
  // floor-level Poisson noise (where only the positive fluctuations survive
  // subtraction) would bias the tail flat and stretch the fitted decay.
  double peak = 0;
  for (auto c : h.counts) peak = std::max(peak, static_cast<double>(c) - floor);
  const double threshold =
      std::max({5.0, 4.0 * std::sqrt(std::max(1.0, floor)), 0.02 * peak});

  std::vector<double> t, y;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double v = static_cast<double>(h.counts[i]) - floor;
    if (v > threshold) {
      t.push_back(h.bin_time(i));
      y.push_back(v);
    }
  }
  const detect::ExponentialFit fit = detect::fit_two_sided_exponential(t, y);
  res.fitted_tau_s = fit.tau_s;
  res.measured_linewidth_hz = detect::linewidth_from_decay_time(fit.tau_s);
  const double tau_corr =
      detect::deconvolve_jitter(fit.tau_s, sig_chain.detector.jitter_sigma_s);
  res.deconvolved_linewidth_hz = detect::linewidth_from_decay_time(tau_corr);
  return res;
}

}  // namespace qfc::core
