#include "qfc/core/heralded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qfc/detect/fit.hpp"
#include "qfc/photonics/device_presets.hpp"

namespace qfc::core {

namespace {

photonics::CwPump make_pump(const photonics::MicroringResonator& device,
                            const HeraldedConfig& cfg) {
  photonics::CwPump pump;
  pump.power_w = cfg.pump_power_w;
  pump.frequency_hz = photonics::pump_resonance_hz(device);
  pump.locking = photonics::PumpLocking::SelfLocked;
  return pump;
}

}  // namespace

void HeraldedConfig::validate() const {
  const auto fail = [](const char* field, const char* what) {
    throw std::invalid_argument(std::string("HeraldedConfig.") + field + ": " + what);
  };
  if (!(pump_power_w > 0)) fail("pump_power_w", "must be > 0");
  if (num_channel_pairs < 1) fail("num_channel_pairs", "must be >= 1");
  if (!(duration_s > 0)) fail("duration_s", "must be > 0");
  if (!(coincidence_window_s > 0)) fail("coincidence_window_s", "must be > 0");
  if (!(side_window_spacing_s > coincidence_window_s))
    fail("side_window_spacing_s", "must exceed the coincidence window");
  if (engine_threads < 0) fail("engine_threads", "must be >= 0");
}

io::Json MatrixCell::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("signal_k", signal_k);
  j.set("idler_k", idler_k);
  j.set("car", car.to_json());
  return j;
}

io::Json ChannelResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("k", k);
  j.set("coincidence_rate_hz", coincidence_rate_hz);
  j.set("car", io::number_or_string(car));
  j.set("car_err", io::number_or_string(car_err));
  j.set("singles_signal_hz", singles_signal_hz);
  j.set("singles_idler_hz", singles_idler_hz);
  return j;
}

io::Json CoherenceResult::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("histogram", histogram.to_json());
  j.set("fitted_tau_s", fitted_tau_s);
  j.set("measured_linewidth_hz", measured_linewidth_hz);
  j.set("deconvolved_linewidth_hz", deconvolved_linewidth_hz);
  j.set("ring_linewidth_hz", ring_linewidth_hz);
  return j;
}

HeraldedPhotonExperiment::HeraldedPhotonExperiment(photonics::MicroringResonator device,
                                                   HeraldedConfig cfg,
                                                   sfwm::SfwmEfficiency eff)
    : device_(device),
      cfg_(cfg),
      source_(device_, make_pump(device_, cfg_), cfg_.num_channel_pairs, eff) {
  cfg_.validate();
}

detect::ChannelPairSpec HeraldedPhotonExperiment::channel_spec(int k) const {
  const ChannelChain sig_chain = cfg_.channels.chain(k, 0);
  const ChannelChain idl_chain = cfg_.channels.chain(k, 1);

  detect::ChannelPairSpec spec;
  spec.pair_rate_hz = source_.pair_rate_hz(k);
  spec.linewidth_hz = source_.photon_linewidth_hz();
  spec.transmission_signal = sig_chain.transmission;
  spec.transmission_idler = idl_chain.transmission;
  spec.detector_signal = sig_chain.detector;
  spec.detector_idler = idl_chain.detector;
  return spec;
}

detect::EngineResult HeraldedPhotonExperiment::simulate_events(
    double duration_s, std::uint64_t seed) const {
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg_.num_channel_pairs));
  for (int k = 1; k <= cfg_.num_channel_pairs; ++k) specs.push_back(channel_spec(k));

  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = seed;
  ec.num_threads = cfg_.engine_threads;
  return detect::EventEngine(ec).run(specs);
}

std::vector<MatrixCell> HeraldedPhotonExperiment::run_coincidence_matrix() {
  const detect::EngineResult events = simulate_events(cfg_.duration_s, cfg_.seed + 1);
  const detect::CarMatrix matrix =
      detect::car_matrix(events.signal, events.idler, cfg_.coincidence_window_s,
                         cfg_.side_window_spacing_s);

  std::vector<MatrixCell> cells;
  const int n = cfg_.num_channel_pairs;
  cells.reserve(static_cast<std::size_t>(n * n));
  for (int si = 1; si <= n; ++si) {
    for (int ii = 1; ii <= n; ++ii) {
      MatrixCell cell;
      cell.signal_k = si;
      cell.idler_k = ii;
      cell.car = matrix.at(static_cast<std::size_t>(si - 1),
                           static_cast<std::size_t>(ii - 1));
      cells.push_back(cell);
    }
  }
  return cells;
}

std::vector<ChannelResult> HeraldedPhotonExperiment::run_channel_table() {
  const detect::EngineResult events = simulate_events(cfg_.duration_s, cfg_.seed + 2);
  const detect::CarMatrix matrix =
      detect::car_matrix(events.signal, events.idler, cfg_.coincidence_window_s,
                         cfg_.side_window_spacing_s);

  std::vector<ChannelResult> out;
  const int n = cfg_.num_channel_pairs;
  for (int k = 1; k <= n; ++k) {
    const auto c = static_cast<std::size_t>(k - 1);
    const detect::CarResult car = matrix.at(c, c);

    ChannelResult r;
    r.k = k;
    // Net pair rate: subtract the accidental floor from the peak window.
    r.coincidence_rate_hz =
        std::max(0.0, car.coincidences - car.accidentals) / cfg_.duration_s;
    r.car = car.car;
    r.car_err = car.car_err;
    r.singles_signal_hz =
        static_cast<double>(events.signal.channel_size(c)) / cfg_.duration_s;
    r.singles_idler_hz =
        static_cast<double>(events.idler.channel_size(c)) / cfg_.duration_s;
    out.push_back(r);
  }
  return out;
}

CoherenceResult HeraldedPhotonExperiment::run_coherence_measurement(int k,
                                                                    double duration_s,
                                                                    double hist_bin_s,
                                                                    double hist_range_s) {
  if (k < 1 || k > cfg_.num_channel_pairs)
    throw std::out_of_range("run_coherence_measurement: bad channel");

  // Dedicated long acquisition for the time-resolved histogram: the same
  // spec + engine path as the multi-channel runs, restricted to channel k.
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = cfg_.seed + 1000 + static_cast<std::uint64_t>(k);
  ec.num_threads = cfg_.engine_threads;
  const detect::EngineResult events = detect::EventEngine(ec).run({channel_spec(k)});

  CoherenceResult res;
  res.histogram =
      detect::correlate_all(events.signal, events.idler, hist_bin_s, hist_range_s)[0];
  res.ring_linewidth_hz = source_.photon_linewidth_hz();

  // Background-subtract the flat accidental floor (median of the outermost
  // bins), then fit the two-sided exponential.
  const auto& h = res.histogram;
  double floor = 0;
  const std::size_t edge = std::max<std::size_t>(4, h.counts.size() / 10);
  for (std::size_t i = 0; i < edge; ++i)
    floor += static_cast<double>(h.counts[i] + h.counts[h.counts.size() - 1 - i]);
  floor /= static_cast<double>(2 * edge);

  // Only fit bins that stand clearly above the floor: keeping bins of
  // floor-level Poisson noise (where only the positive fluctuations survive
  // subtraction) would bias the tail flat and stretch the fitted decay.
  double peak = 0;
  for (auto c : h.counts) peak = std::max(peak, static_cast<double>(c) - floor);
  const double threshold =
      std::max({5.0, 4.0 * std::sqrt(std::max(1.0, floor)), 0.02 * peak});

  std::vector<double> t, y;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double v = static_cast<double>(h.counts[i]) - floor;
    if (v > threshold) {
      t.push_back(h.bin_time(i));
      y.push_back(v);
    }
  }
  const detect::ExponentialFit fit = detect::fit_two_sided_exponential(t, y);
  res.fitted_tau_s = fit.tau_s;
  res.measured_linewidth_hz = detect::linewidth_from_decay_time(fit.tau_s);
  const double jitter = cfg_.channels.chain(k, 0).detector.jitter_sigma_s;
  const double tau_corr = detect::deconvolve_jitter(fit.tau_s, jitter);
  res.deconvolved_linewidth_hz = detect::linewidth_from_decay_time(tau_corr);
  return res;
}

}  // namespace qfc::core
