#pragma once

/// \file qkd.hpp
/// Entanglement-based quantum key distribution (BBM92 with time-bin
/// qubits) over the comb's multiplexed channel pairs — the "secure
/// communications" application the paper's introduction motivates. The
/// source sits between Alice and Bob; each comb channel pair forms an
/// independent key-distribution link, so the aggregate key rate scales
/// with the number of multiplexed channels.

#include <vector>

#include "qfc/core/timebin_experiment.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/fiber/fiber_channel.hpp"

namespace qfc::core {

/// Binary entropy h₂(p), bits.
double binary_entropy_bits(double p);

/// Time-bin BBM92: fringe visibility V maps to QBER = (1 − V)/2.
double qber_from_visibility(double visibility);

/// Asymptotic secret fraction for BBM92 with one-way error correction:
/// r = max(0, 1 − 2 h₂(Q)). Positive only below Q ≈ 11%.
double bbm92_secret_fraction(double qber);

struct QkdLinkParams {
  /// Coincidence window used for pairing Alice's and Bob's detections.
  double coincidence_window_s = 1e-9;
  /// Per-detector dark/background rate at Alice and Bob.
  double dark_rate_hz = 1000.0;
  /// Basis-sifting factor (Z/X chosen with equal probability).
  double sifting_factor = 0.5;

  fiber::FiberParams fiber;  ///< per-arm span parameters (length set per query)
};

struct QkdChannelPerformance {
  int k = 0;
  double distance_km = 0;        ///< total Alice-Bob separation
  double visibility = 0;         ///< after fiber + accidental degradation
  double qber = 0;
  double sifted_rate_hz = 0;
  double secret_fraction = 0;
  double key_rate_bps = 0;
  bool key_positive = false;
};

/// QKD link built on a time-bin entanglement experiment: channel pair k
/// distributes photons to Alice (+k) and Bob (−k) through symmetric fiber
/// spans of length distance/2 each.
class MultiplexedQkdLink {
 public:
  MultiplexedQkdLink(const TimebinExperiment& experiment, QkdLinkParams params = {});

  QkdChannelPerformance channel_performance(int k, double distance_km) const;

  std::vector<QkdChannelPerformance> all_channels(double distance_km) const;

  /// Sum of positive per-channel key rates — the multiplexing payoff.
  double aggregate_key_rate_bps(double distance_km) const;

  /// Largest distance (km, coarse bisection) at which channel k still
  /// yields a positive key rate.
  double max_distance_km(int k, double upper_bound_km = 500.0) const;

  /// One channel of the Monte-Carlo link check (see
  /// monte_carlo_stream_check).
  struct StreamCheck {
    int k = 0;
    double measured_coincidence_rate_hz = 0;  ///< accidental-subtracted
    double measured_accidental_rate_hz = 0;   ///< per peak-equivalent window
    detect::CarResult car;
  };

  /// Monte-Carlo cross-check of the analytic link budget: batched
  /// EventEngine streams for every channel pair with the fiber arm
  /// transmission folded into each arm and the configured dark rate on
  /// each detector, all CARs measured in one merge-sweep. Validates the
  /// accidental floor the analytic channel_performance assumes.
  std::vector<StreamCheck> monte_carlo_stream_check(double distance_km,
                                                    double duration_s,
                                                    std::uint64_t seed = 1176) const;

  /// Bounded-memory form of monte_carlo_stream_check for long soak runs:
  /// the same channel specs feed the windowed streaming engine
  /// (detect::EventStreamer) and an online CAR accumulator, so resident
  /// memory is set by `stream_window_s` — not `duration_s` — while every
  /// reported number is bitwise identical to the batch check at any
  /// window size (streaming parity contract).
  std::vector<StreamCheck> long_run_stream_check(double distance_km,
                                                 double duration_s,
                                                 double stream_window_s = 1.0,
                                                 std::uint64_t seed = 1176) const;

 private:
  const TimebinExperiment* experiment_;
  QkdLinkParams params_;
};

}  // namespace qfc::core
