#pragma once

/// \file qkd.hpp
/// Entanglement-based quantum key distribution (BBM92 with time-bin
/// qubits) over the comb's multiplexed channel pairs — the "secure
/// communications" application the paper's introduction motivates. The
/// source sits between Alice and Bob; each comb channel pair forms an
/// independent key-distribution link, so the aggregate key rate scales
/// with the number of multiplexed channels.
///
/// Vocabulary (shared with qkd_network.hpp): a *user endpoint*
/// (UserEndpointParams) is everything a receiving party owns — coincidence
/// window, dark rate, sifting, detector overrides — while the *link
/// geometry* (LinkGeometry) is everything the glass owns — the Alice–Bob
/// distance and the fiber recipe. MultiplexedQkdLink binds one endpoint to
/// one experiment and sweeps geometries; QkdNetwork binds hundreds of
/// (endpoint, geometry) pairs to one shared streaming engine run.

#include <cstdint>
#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/core/timebin_experiment.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/fiber/fiber_channel.hpp"

namespace qfc::core {

/// Binary entropy h₂(p), bits.
double binary_entropy_bits(double p);

/// Time-bin BBM92: fringe visibility V maps to QBER = (1 − V)/2.
double qber_from_visibility(double visibility);

/// Asymptotic secret fraction for BBM92 with one-way error correction:
/// r = max(0, 1 − 2 h₂(Q)). Positive only below Q ≈ 11%.
double bbm92_secret_fraction(double qber);

/// Receiving-party parameters: everything one user's measurement station
/// owns, reused verbatim by the single link and by every QkdNetwork user.
struct UserEndpointParams {
  /// Coincidence window used for pairing Alice's and Bob's detections.
  double coincidence_window_s = 1e-9;
  /// Per-detector dark/background rate at Alice and Bob.
  double dark_rate_hz = 1000.0;
  /// Basis-sifting factor (Z/X chosen with equal probability).
  double sifting_factor = 0.5;
  /// Detector timing jitter (1σ) applied in Monte-Carlo checks; the
  /// default matches TimebinExperiment::cw_equivalent_spec.
  double detector_jitter_sigma_s = 100e-12;
  /// Detector dead time applied in Monte-Carlo checks.
  double detector_dead_time_s = 0.0;
  /// Multiplies the experiment's per-arm detection efficiency (a user with
  /// older SNSPDs sets < 1). 1.0 leaves the experiment value untouched.
  double detection_efficiency_scale = 1.0;

  /// Throws std::invalid_argument naming the offending field for
  /// nonsensical values (window <= 0, negative dark rate, sifting outside
  /// (0,1], negative jitter/dead time, efficiency scale outside (0,1]).
  void validate() const;
};

/// Glass-side parameters of one Alice–Bob link: total separation and the
/// fiber recipe. Spans are symmetric (source in the middle), so each arm
/// travels distance_km / 2 of `fiber`.
struct LinkGeometry {
  double distance_km = 0.0;
  fiber::FiberParams fiber;  ///< length_m is ignored; the arm span sets it

  /// Throws std::invalid_argument for a negative distance or invalid fiber.
  void validate() const;

  /// One arm's fiber channel (length distance_km / 2).
  fiber::FiberChannel arm_channel() const;
  /// Power transmission of one arm.
  double arm_transmission() const;
};

struct QkdChannelPerformance {
  int k = 0;
  double distance_km = 0;        ///< total Alice-Bob separation
  double visibility = 0;         ///< after fiber + accidental degradation
  double qber = 0;
  double sifted_rate_hz = 0;
  double secret_fraction = 0;
  double key_rate_bps = 0;
  bool key_positive = false;

  io::Json to_json() const;
};

/// Intrinsic (accidental-free) time-bin visibility of channel pair k over
/// `geometry`: the experiment's state visibility degraded by fiber
/// dispersion washout, before the accidental floor divides it down. Both
/// the analytic link budget and QkdNetwork's measured per-user reports
/// scale by this factor.
double intrinsic_visibility(const TimebinExperiment& experiment, int k,
                            const LinkGeometry& geometry);

/// Analytic BBM92 link budget for comb channel pair k of `experiment` over
/// `geometry`, measured by `endpoint`: state visibility degraded by fiber
/// dispersion and the accidental floor, QBER, sifted and secret-key rates.
/// The shared arithmetic behind MultiplexedQkdLink::channel_performance
/// and QkdNetwork's per-user analytic summaries.
QkdChannelPerformance analytic_channel_performance(
    const TimebinExperiment& experiment, int k,
    const UserEndpointParams& endpoint, const LinkGeometry& geometry);

/// Monte-Carlo channel spec for the same link: cw_equivalent_spec with the
/// arm transmission folded into both arms and the endpoint's dark rate and
/// detector overrides applied. Shared by the link's stream_check and
/// QkdNetwork's shared-engine spec planning.
detect::ChannelPairSpec link_channel_spec(const TimebinExperiment& experiment,
                                          int k,
                                          const UserEndpointParams& endpoint,
                                          const LinkGeometry& geometry);

/// Knobs of a Monte-Carlo stream check that are about the *run*, not the
/// link: generation window (memory bound), seed, analysis worker count.
/// Every knob is result-neutral except the seed — the streaming engine is
/// bitwise identical to a batch run at every window size and thread count.
struct StreamOptions {
  /// Streaming generation window; resident memory scales with this, not
  /// with duration. <= 0 means one window spanning the whole run (the old
  /// batch behavior — same bits either way).
  double window_s = 1.0;
  std::uint64_t seed = 1176;
  /// Worker threads for the CAR merge-sweep; 0 = process-wide setting.
  int analysis_threads = 0;
};

/// QKD link built on a time-bin entanglement experiment: channel pair k
/// distributes photons to Alice (+k) and Bob (−k) through symmetric fiber
/// spans of length distance/2 each.
class MultiplexedQkdLink {
 public:
  MultiplexedQkdLink(const TimebinExperiment& experiment,
                     UserEndpointParams endpoint = {},
                     fiber::FiberParams fiber = {});

  const UserEndpointParams& endpoint() const noexcept { return endpoint_; }
  const fiber::FiberParams& fiber() const noexcept { return fiber_; }

  QkdChannelPerformance channel_performance(int k, double distance_km) const;

  std::vector<QkdChannelPerformance> all_channels(double distance_km) const;

  /// Sum of positive per-channel key rates — the multiplexing payoff.
  double aggregate_key_rate_bps(double distance_km) const;

  /// Largest distance (km) at which channel k still yields a positive key
  /// rate, bisected to `tolerance_km`. Returns NaN when no positive-key
  /// distance exists (the channel is dead even back-to-back), and
  /// `upper_bound_km` itself when the key is still positive there — raise
  /// the bound to resolve further.
  double max_distance_km(int k, double upper_bound_km = 500.0,
                         double tolerance_km = 0.1) const;

  /// One channel of the Monte-Carlo link check (see stream_check).
  struct StreamCheck {
    int k = 0;
    double measured_coincidence_rate_hz = 0;  ///< accidental-subtracted
    double measured_accidental_rate_hz = 0;   ///< per peak-equivalent window
    detect::CarResult car;

    io::Json to_json() const;
  };

  /// Monte-Carlo cross-check of the analytic link budget: every channel
  /// pair runs through the windowed streaming engine
  /// (detect::EventStreamer) with the fiber arm transmission folded into
  /// each arm and the endpoint's dark rate on each detector, and an online
  /// accumulator measures all CARs in one pass. Resident memory is set by
  /// StreamOptions::window_s — not duration — while every reported number
  /// is bitwise identical at any window size or analysis thread count
  /// (streaming parity contract). Validates the accidental floor the
  /// analytic channel_performance assumes.
  std::vector<StreamCheck> stream_check(double distance_km, double duration_s,
                                        const StreamOptions& options = {}) const;

 private:
  const TimebinExperiment* experiment_;
  UserEndpointParams endpoint_;
  fiber::FiberParams fiber_;
};

}  // namespace qfc::core
