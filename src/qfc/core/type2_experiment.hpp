#pragma once

/// \file type2_experiment.hpp
/// Sec. III end-to-end experiment: bichromatic orthogonally polarized
/// pumping, polarizing beam splitter, cross-polarized coincidence peak
/// (CAR ≈ 10 at 2 mW) and the OPO power curve (threshold 14 mW).

#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/core/channel_model.hpp"
#include "qfc/detect/coincidence.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/sfwm/type2.hpp"

namespace qfc::core {

struct Type2Config {
  double pump_power_total_w = 2e-3;  ///< split equally between TE and TM
  int num_channel_pairs = 3;
  double duration_s = 600.0;
  /// The 80 MHz device's photons are ~2 ns long; an 8 ns window captures
  /// most of the coincidence peak.
  double coincidence_window_s = 8e-9;
  double side_window_spacing_s = 100e-9;
  /// The polarizing beam splitter routes TE to arm A and TM to arm B with
  /// finite extinction; leakage adds uncorrelated background.
  double pbs_extinction_db = 25.0;
  /// Free-running detectors with tighter spectral filtering than the
  /// Sec. II setup: ~0.9 kHz background (this is what puts CAR ≈ 10 at
  /// 2 mW given the low type-II pair rate).
  ChannelModel channels{
      /*base_transmission=*/0.90, /*transmission_ripple=*/0.08,
      /*base_dark_rate_hz=*/1.15e3, /*dark_rate_ripple=*/0.15,
      /*detector_efficiency=*/0.225, /*jitter_sigma_s=*/120e-12,
      /*dead_time_s=*/10e-6};
  std::uint64_t seed = 8236;  ///< Nat. Commun. article number of ref [7]

  /// Throws std::invalid_argument with a path-qualified message
  /// ("Type2Config.pump_power_total_w: must be > 0"). Called by the
  /// constructor.
  void validate() const;
};

struct Type2CarResult {
  double pump_power_w = 0;
  detect::CarResult car;
  double pair_rate_on_chip_hz = 0;
  double coincidence_rate_hz = 0;

  io::Json to_json() const;
};

class Type2Experiment {
 public:
  Type2Experiment(photonics::MicroringResonator device, Type2Config cfg,
                  sfwm::SfwmEfficiency eff = {});

  const sfwm::Type2PairSource& source() const noexcept { return source_; }

  /// Cross-polarized coincidence measurement at the configured power.
  Type2CarResult run_car_measurement();

  /// CAR vs pump power sweep (rebuilds the source per point).
  std::vector<Type2CarResult> run_power_sweep(const std::vector<double>& powers_w);

  /// OPO output-power transfer curve over the given pump range.
  struct OpoPoint {
    double pump_w;
    double output_w;
    bool oscillating;

    io::Json to_json() const;
  };
  std::vector<OpoPoint> run_opo_curve(double max_pump_w, int num_points) const;

  double opo_threshold_w() const;

  /// Stimulated-FWM suppression of this device (paper: "completely
  /// suppressed").
  double stimulated_suppression_db() const;

 private:
  static sfwm::Type2PairSource make_source(const photonics::MicroringResonator& device,
                                           double total_power_w, int num_pairs,
                                           sfwm::SfwmEfficiency eff);
  Type2CarResult measure_at(double total_power_w, std::uint64_t seed_offset);

  photonics::MicroringResonator device_;
  Type2Config cfg_;
  sfwm::SfwmEfficiency eff_;
  sfwm::Type2PairSource source_;
};

}  // namespace qfc::core
