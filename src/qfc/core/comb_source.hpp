#pragma once

/// \file comb_source.hpp
/// Top-level façade: one object representing the integrated quantum
/// frequency comb of the paper, with a factory per pump configuration
/// (= paper section). This is the entry point examples should use.

#include <memory>

#include "qfc/core/four_photon.hpp"
#include "qfc/core/heralded.hpp"
#include "qfc/core/stability.hpp"
#include "qfc/core/timebin_experiment.hpp"
#include "qfc/core/type2_experiment.hpp"

namespace qfc::core {

/// The four pump configurations of the paper.
enum class PumpConfiguration {
  SelfLockedCw,        ///< Sec. II: pure heralded single photons
  CrossPolarized,      ///< Sec. III: type-II SFWM photon pairs
  DoublePulse,         ///< Sec. IV: time-bin entangled pairs
  DoublePulseFourMode, ///< Sec. V: four-photon entangled states
};

const char* pump_configuration_name(PumpConfiguration c);

/// Integrated quantum frequency comb: the microring device plus the
/// measurement-chain defaults used by the paper's experiments.
class QuantumFrequencyComb {
 public:
  /// Device preset appropriate for the configuration (DESIGN.md §2 S3).
  static QuantumFrequencyComb for_configuration(PumpConfiguration c);

  explicit QuantumFrequencyComb(photonics::MicroringResonator device);

  const photonics::MicroringResonator& device() const noexcept { return device_; }

  /// The comb channel grid around the pump resonance.
  photonics::CombGrid grid(int num_pairs) const;

  /// Experiment factories (each returns a ready-to-run experiment with
  /// paper-matched defaults; the configs can be customized first).
  HeraldedPhotonExperiment heralded(HeraldedConfig cfg = {}) const;
  Type2Experiment type2(Type2Config cfg = {}) const;
  TimebinExperiment timebin(TimebinConfig cfg) const;
  TimebinExperiment timebin_default() const;
  FourPhotonExperiment four_photon(FourPhotonConfig cfg = {}) const;
  StabilityExperiment stability(StabilityConfig cfg = {}) const;

 private:
  photonics::MicroringResonator device_;
};

}  // namespace qfc::core
