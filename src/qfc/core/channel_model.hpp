#pragma once

/// \file channel_model.hpp
/// Per-channel collection chain: demultiplexing filter, fiber coupling and
/// detector. The smooth channel-to-channel transmission ripple of the
/// demux filters is what spreads the measured CAR / pair rates across the
/// ranges the paper reports (CAR 12.8-32.4, rates 14-29 Hz).

#include "qfc/detect/detector.hpp"

namespace qfc::core {

struct ChannelChain {
  double transmission = 0.85;        ///< filter + coupling transmission
  detect::DetectorParams detector;   ///< detector at the end of the chain
};

/// Deterministic collection-chain model: transmission ripple and
/// background variation across comb channels (k = 1-based pair index,
/// arm = 0 signal / 1 idler).
struct ChannelModel {
  double base_transmission = 0.87;
  double transmission_ripple = 0.22;   ///< peak-to-peak fractional ripple
  double base_dark_rate_hz = 12.0e3;   ///< gated InGaAs + in-band background
  double dark_rate_ripple = 0.15;      ///< fractional variation
  double detector_efficiency = 0.20;
  double jitter_sigma_s = 120e-12;
  double dead_time_s = 10e-6;

  ChannelChain chain(int k, int arm) const;
};

/// Residual pump leakage through the demultiplexer: the pump is ~17 orders
/// of magnitude brighter than the single photons, so the rejection budget
/// is a first-order design constraint of any comb-based quantum source.
/// Returns the background click rate a detector of the given efficiency
/// sees from a pump of `pump_power_w` at `pump_frequency_hz` after
/// `rejection_db` of filtering.
double pump_leakage_click_rate_hz(double pump_power_w, double pump_frequency_hz,
                                  double rejection_db, double detector_efficiency);

/// Minimum demux rejection (dB) keeping pump-leakage clicks below
/// `max_click_rate_hz`.
double required_pump_rejection_db(double pump_power_w, double pump_frequency_hz,
                                  double max_click_rate_hz,
                                  double detector_efficiency);

}  // namespace qfc::core
