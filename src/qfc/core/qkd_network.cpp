#include "qfc/core/qkd_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "qfc/detect/streaming.hpp"
#include "qfc/obs/obs.hpp"
#include "qfc/parallel/worker_pool.hpp"

namespace qfc::core {

QkdNetworkConfig QkdNetworkConfig::uniform(std::size_t num_users,
                                           double max_distance_km,
                                           UserEndpointParams endpoint,
                                           fiber::FiberParams fiber) {
  if (max_distance_km < 0)
    throw std::invalid_argument("QkdNetworkConfig::uniform: negative distance");
  QkdNetworkConfig cfg;
  cfg.users.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    QkdUserSpec user;
    user.endpoint = endpoint;
    user.link.fiber = fiber;
    user.link.distance_km =
        num_users > 1
            ? max_distance_km * static_cast<double>(u) /
                  static_cast<double>(num_users - 1)
            : 0.0;
    cfg.users.push_back(user);
  }
  return cfg;
}

void QkdNetworkConfig::validate(int num_channel_pairs) const {
  if (stream_window_s <= 0)
    throw std::invalid_argument("QkdNetworkConfig: stream window <= 0");
  if (histogram_bin_km <= 0)
    throw std::invalid_argument("QkdNetworkConfig: histogram bin <= 0");
  if (analysis_threads < 0)
    throw std::invalid_argument("QkdNetworkConfig: analysis threads < 0");

  for (std::size_t u = 0; u < users.size(); ++u) {
    const QkdUserSpec& user = users[u];
    try {
      user.endpoint.validate();
      user.link.validate();
      if (user.crosstalk_leakage < 0 || user.crosstalk_leakage > 1)
        throw std::invalid_argument("crosstalk leakage outside [0, 1]");
      if (user.channel_pair < 0 || user.channel_pair > num_channel_pairs)
        throw std::invalid_argument(
            "channel pair outside [0, " + std::to_string(num_channel_pairs) +
            "] (0 = auto; the experiment has " + std::to_string(num_channel_pairs) +
            " pairs)");
      if (user.endpoint.coincidence_window_s !=
          users.front().endpoint.coincidence_window_s)
        throw std::invalid_argument(
            "coincidence window differs from user 0's; the shared streaming "
            "accumulator sweeps every channel with one window");
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("user " + std::to_string(u) + ": " + e.what());
    }
  }
}

io::Json QkdUserReport::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("user", user);
  j.set("channel_pair", channel_pair);
  j.set("distance_km", distance_km);
  j.set("car", car.to_json());
  j.set("visibility", visibility);
  j.set("qber", io::number_or_string(qber));
  j.set("sifted_rate_hz", sifted_rate_hz);
  j.set("secret_fraction", secret_fraction);
  j.set("secret_key_rate_bps", secret_key_rate_bps);
  j.set("key_positive", key_positive);
  return j;
}

io::Json DistanceBinStat::to_json() const {
  io::Json j = io::Json::make_object();
  j.set("lo_km", lo_km);
  j.set("hi_km", hi_km);
  j.set("users", users);
  j.set("users_with_key", users_with_key);
  j.set("total_key_rate_bps", total_key_rate_bps);
  j.set("mean_qber", io::number_or_string(mean_qber));
  return j;
}

io::Json QkdNetworkReport::to_json(bool include_diagnostics) const {
  io::Json j = io::Json::make_object();
  j.set("duration_s", duration_s);
  io::Json user_array = io::Json::make_array();
  for (const auto& u : users) user_array.push_back(u.to_json());
  j.set("users", std::move(user_array));
  j.set("total_key_rate_bps", total_key_rate_bps);
  j.set("worst_qber", io::number_or_string(worst_qber));
  j.set("users_with_key", users_with_key);
  io::Json bins = io::Json::make_array();
  for (const auto& b : distance_histogram) bins.push_back(b.to_json());
  j.set("distance_histogram", std::move(bins));
  if (include_diagnostics) {
    j.set("stream_windows", stream_windows);
    j.set("peak_rss_kb", peak_rss_kb);
  }
  return j;
}

QkdNetwork::QkdNetwork(const TimebinExperiment& experiment, QkdNetworkConfig config)
    : experiment_(&experiment), cfg_(std::move(config)) {
  const int num_pairs = experiment_->config().num_channel_pairs;
  cfg_.validate(num_pairs);
  assigned_.reserve(cfg_.users.size());
  for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
    const QkdUserSpec& user = cfg_.users[u];
    assigned_.push_back(user.channel_pair != 0
                            ? user.channel_pair
                            : static_cast<int>(u % static_cast<std::size_t>(
                                                       num_pairs)) +
                                  1);
  }
}

int QkdNetwork::assigned_channel_pair(std::size_t user) const {
  if (user >= assigned_.size())
    throw std::out_of_range("QkdNetwork: user index out of range");
  return assigned_[user];
}

std::vector<detect::ChannelPairSpec> QkdNetwork::engine_specs() const {
  std::vector<detect::ChannelPairSpec> specs;
  specs.reserve(cfg_.users.size());
  std::vector<int> comb_bin;
  comb_bin.reserve(cfg_.users.size());
  std::vector<double> leakage;
  leakage.reserve(cfg_.users.size());
  for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
    const QkdUserSpec& user = cfg_.users[u];
    specs.push_back(link_channel_spec(*experiment_, assigned_[u], user.endpoint,
                                      user.link));
    comb_bin.push_back(assigned_[u]);
    leakage.push_back(user.crosstalk_leakage);
  }
  detect::apply_adjacent_crosstalk(specs, comb_bin, leakage);
  return specs;
}

QkdNetworkReport QkdNetwork::run(double duration_s) const {
  if (duration_s <= 0)
    throw std::invalid_argument("QkdNetwork::run: duration <= 0");

  const std::size_t n = cfg_.users.size();
  QFC_OBS_SPAN("network.run", {{"users", n}});
  obs::counter("network.runs").increment();
  obs::gauge("network.users").set(static_cast<long long>(n));

  QkdNetworkReport report;
  report.duration_s = duration_s;
  report.worst_qber = std::numeric_limits<double>::quiet_NaN();
  if (n == 0) return report;  // degenerate: nothing to stream

  // ---- one shared streaming pass over every user's channel
  detect::EngineConfig ec;
  ec.duration_s = duration_s;
  ec.seed = cfg_.seed;
  ec.analysis_threads = cfg_.analysis_threads;
  detect::StreamConfig sc;
  sc.window_s = cfg_.stream_window_s;

  const double window = cfg_.users.front().endpoint.coincidence_window_s;
  detect::EventStreamer streamer(ec, sc, engine_specs());
  detect::StreamingCarAccumulator car(
      window, /*side_window_spacing_s=*/std::max(100e-9, 20.0 * window),
      /*num_side_windows=*/10, cfg_.analysis_threads);

  long long peak_rss = 0;
  detect::StreamWindow w;
  {
    QFC_OBS_SPAN("network.stream", {{"users", n}});
    while (streamer.next(w)) {
      car.push(w);
      ++report.stream_windows;
      obs::counter("network.windows").increment();
      obs::counter("network.events")
          .add(w.events.signal.size() + w.events.idler.size());
      const long long rss = obs::current_rss_kb();
      peak_rss = std::max(peak_rss, rss);
      obs::gauge("network.rss_kb").set(rss);
    }
  }
  report.peak_rss_kb = peak_rss;
  const detect::CarMatrix matrix = car.finish();

  // ---- per-user reports, sharded over the worker pool. Each user's
  // report reads only their diagonal matrix cell and writes only their
  // slot, so the result is bitwise identical at every pool size.
  report.users.assign(n, QkdUserReport{});
  {
    QFC_OBS_SPAN("network.reports", {{"users", n}});
    const unsigned pool_threads = cfg_.analysis_threads > 0
                                      ? static_cast<unsigned>(cfg_.analysis_threads)
                                      : detect::analysis_threads();
    parallel::WorkerPool pool(std::max(1u, pool_threads));
    parallel::parallel_for_chunks(
        pool, n, /*chunk_size=*/32,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t u = begin; u < end; ++u) {
            const QkdUserSpec& user = cfg_.users[u];
            QkdUserReport r;
            r.user = u;
            r.channel_pair = assigned_[u];
            r.distance_km = user.link.distance_km;
            r.car = matrix.at(u, u);
            const double total = r.car.coincidences;
            const double true_c =
                std::max(0.0, r.car.coincidences - r.car.accidentals);
            const double v_intrinsic =
                intrinsic_visibility(*experiment_, assigned_[u], user.link);
            r.visibility = total > 0 ? v_intrinsic * true_c / total : 0.0;
            r.qber = qber_from_visibility(r.visibility);
            r.sifted_rate_hz = user.endpoint.sifting_factor * total / duration_s;
            r.secret_fraction = bbm92_secret_fraction(r.qber);
            r.secret_key_rate_bps = r.sifted_rate_hz * r.secret_fraction;
            r.key_positive = r.secret_key_rate_bps > 0;
            report.users[u] = r;
          }
        });
  }

  // ---- aggregates, accumulated serially in user order (deterministic).
  double max_distance = 0;
  for (const QkdUserReport& r : report.users) {
    if (r.key_positive) {
      report.total_key_rate_bps += r.secret_key_rate_bps;
      ++report.users_with_key;
    }
    report.worst_qber = std::isnan(report.worst_qber)
                            ? r.qber
                            : std::max(report.worst_qber, r.qber);
    max_distance = std::max(max_distance, r.distance_km);
  }

  const std::size_t num_bins =
      static_cast<std::size_t>(max_distance / cfg_.histogram_bin_km) + 1;
  report.distance_histogram.assign(num_bins, DistanceBinStat{});
  for (std::size_t b = 0; b < num_bins; ++b) {
    report.distance_histogram[b].lo_km =
        static_cast<double>(b) * cfg_.histogram_bin_km;
    report.distance_histogram[b].hi_km =
        static_cast<double>(b + 1) * cfg_.histogram_bin_km;
  }
  for (const QkdUserReport& r : report.users) {
    const std::size_t b = std::min(
        num_bins - 1,
        static_cast<std::size_t>(r.distance_km / cfg_.histogram_bin_km));
    DistanceBinStat& bin = report.distance_histogram[b];
    ++bin.users;
    if (r.key_positive) {
      ++bin.users_with_key;
      bin.total_key_rate_bps += r.secret_key_rate_bps;
    }
    bin.mean_qber += r.qber;  // sum for now; divided below
  }
  for (DistanceBinStat& bin : report.distance_histogram)
    if (bin.users > 0) bin.mean_qber /= static_cast<double>(bin.users);

  obs::gauge("network.users_with_key")
      .set(static_cast<long long>(report.users_with_key));
  return report;
}

}  // namespace qfc::core
