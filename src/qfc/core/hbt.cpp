#include "qfc/core/hbt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/event_stream.hpp"
#include "qfc/rng/distributions.hpp"

namespace qfc::core {

namespace {

/// g²_h(0) = N_h12 N_h / (N_h1 N_h2) with a Poisson error on the triples.
void finalize_g2(HbtResult& r) {
  if (r.coincidences_1 > 0 && r.coincidences_2 > 0 && r.heralds > 0) {
    r.g2 = static_cast<double>(r.triples) * static_cast<double>(r.heralds) /
           (static_cast<double>(r.coincidences_1) * static_cast<double>(r.coincidences_2));
    if (r.triples > 0)
      r.g2_err = r.g2 / std::sqrt(static_cast<double>(r.triples));
    else
      r.g2_err = r.g2;  // only an upper bound exists
  }
}

}  // namespace

void HbtParams::validate() const {
  if (mean_pairs_per_trial < 0) throw std::invalid_argument("HbtParams: negative mu");
  if (herald_efficiency <= 0 || herald_efficiency > 1)
    throw std::invalid_argument("HbtParams: herald efficiency outside (0,1]");
  if (signal_efficiency <= 0 || signal_efficiency > 1)
    throw std::invalid_argument("HbtParams: signal efficiency outside (0,1]");
  if (dark_probability < 0 || dark_probability > 1)
    throw std::invalid_argument("HbtParams: dark probability outside [0,1]");
  if (trials == 0) throw std::invalid_argument("HbtParams: zero trials");
}

HbtResult run_hbt(const HbtParams& p, rng::Xoshiro256& g) {
  p.validate();
  HbtResult r;

  for (std::uint64_t t = 0; t < p.trials; ++t) {
    const std::uint64_t n = rng::sample_thermal(g, p.mean_pairs_per_trial);

    // Herald: any of n idler photons, or a dark count.
    bool herald = rng::sample_bernoulli(g, p.dark_probability);
    for (std::uint64_t i = 0; i < n && !herald; ++i)
      herald = rng::sample_bernoulli(g, p.herald_efficiency);
    if (!herald) continue;
    ++r.heralds;

    // Signal photons: each detected with signal_efficiency, then routed
    // 50/50; darks can also fire either detector.
    bool d1 = rng::sample_bernoulli(g, p.dark_probability);
    bool d2 = rng::sample_bernoulli(g, p.dark_probability);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!rng::sample_bernoulli(g, p.signal_efficiency)) continue;
      if (rng::sample_bernoulli(g, 0.5))
        d1 = true;
      else
        d2 = true;
    }
    if (d1) ++r.coincidences_1;
    if (d2) ++r.coincidences_2;
    if (d1 && d2) ++r.triples;
  }

  finalize_g2(r);
  return r;
}

void HbtStreamParams::validate() const {
  if (pair_rate_hz < 0) throw std::invalid_argument("HbtStreamParams: negative rate");
  if (linewidth_hz <= 0) throw std::invalid_argument("HbtStreamParams: linewidth <= 0");
  if (duration_s <= 0) throw std::invalid_argument("HbtStreamParams: duration <= 0");
  if (herald_efficiency <= 0 || herald_efficiency > 1)
    throw std::invalid_argument("HbtStreamParams: herald efficiency outside (0,1]");
  if (signal_efficiency <= 0 || signal_efficiency > 1)
    throw std::invalid_argument("HbtStreamParams: signal efficiency outside (0,1]");
  if (dark_rate_hz < 0) throw std::invalid_argument("HbtStreamParams: negative dark rate");
  if (coincidence_window_s <= 0)
    throw std::invalid_argument("HbtStreamParams: window <= 0");
}

HbtResult run_hbt_time_domain(const HbtStreamParams& p) {
  p.validate();

  detect::ChannelPairSpec spec;
  spec.pair_rate_hz = p.pair_rate_hz;
  spec.linewidth_hz = p.linewidth_hz;
  detect::DetectorParams sig_det;
  sig_det.efficiency = p.signal_efficiency;
  // Darks belong to the two physical detectors *after* the splitter; the
  // engine's signal column models only the shared pre-splitter arm.
  sig_det.dark_rate_hz = 0.0;
  sig_det.jitter_sigma_s = 0.0;
  sig_det.dead_time_s = 0.0;
  detect::DetectorParams herald_det = sig_det;
  herald_det.efficiency = p.herald_efficiency;
  herald_det.dark_rate_hz = p.dark_rate_hz;  // single physical detector
  spec.detector_signal = sig_det;
  spec.detector_idler = herald_det;

  detect::EngineConfig ec;
  ec.duration_s = p.duration_s;
  ec.seed = p.seed;
  const detect::EngineResult events = detect::EventEngine(ec).run({spec});

  const std::vector<double> herald = events.idler.channel_clicks(0);
  // 50/50 beam splitter on the signal column, then independent darks at
  // the configured per-detector rate on each output.
  rng::Xoshiro256 g(p.seed ^ 0x5050505050505050ULL);
  std::vector<double> d1, d2;
  for (const double t : events.signal.channel_clicks(0))
    (rng::sample_bernoulli(g, 0.5) ? d1 : d2).push_back(t);
  if (p.dark_rate_hz > 0) {
    for (auto* d : {&d1, &d2}) {
      const auto darks =
          detect::generate_poisson_arrivals(p.dark_rate_hz, p.duration_s, g);
      std::vector<double> merged(d->size() + darks.size());
      std::merge(d->begin(), d->end(), darks.begin(), darks.end(), merged.begin());
      d->swap(merged);
    }
  }

  HbtResult r;
  r.heralds = herald.size();
  r.coincidences_1 = detect::count_coincidences(herald, d1, p.coincidence_window_s);
  r.coincidences_2 = detect::count_coincidences(herald, d2, p.coincidence_window_s);

  // Triples: heralds with a click on both splitter outputs inside the window.
  const double half = p.coincidence_window_s / 2.0;
  std::size_t lo1 = 0, lo2 = 0;
  for (const double th : herald) {
    while (lo1 < d1.size() && d1[lo1] < th - half) ++lo1;
    while (lo2 < d2.size() && d2[lo2] < th - half) ++lo2;
    const bool hit1 = lo1 < d1.size() && d1[lo1] <= th + half;
    const bool hit2 = lo2 < d2.size() && d2[lo2] <= th + half;
    if (hit1 && hit2) ++r.triples;
  }
  finalize_g2(r);
  return r;
}

double analytic_heralded_g2(const HbtParams& p) {
  return quantum::TwoModeSqueezedVacuum(p.mean_pairs_per_trial)
      .heralded_g2(p.herald_efficiency);
}

}  // namespace qfc::core
