#include "qfc/core/hbt.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/rng/distributions.hpp"

namespace qfc::core {

void HbtParams::validate() const {
  if (mean_pairs_per_trial < 0) throw std::invalid_argument("HbtParams: negative mu");
  if (herald_efficiency <= 0 || herald_efficiency > 1)
    throw std::invalid_argument("HbtParams: herald efficiency outside (0,1]");
  if (signal_efficiency <= 0 || signal_efficiency > 1)
    throw std::invalid_argument("HbtParams: signal efficiency outside (0,1]");
  if (dark_probability < 0 || dark_probability > 1)
    throw std::invalid_argument("HbtParams: dark probability outside [0,1]");
  if (trials == 0) throw std::invalid_argument("HbtParams: zero trials");
}

HbtResult run_hbt(const HbtParams& p, rng::Xoshiro256& g) {
  p.validate();
  HbtResult r;

  for (std::uint64_t t = 0; t < p.trials; ++t) {
    const std::uint64_t n = rng::sample_thermal(g, p.mean_pairs_per_trial);

    // Herald: any of n idler photons, or a dark count.
    bool herald = rng::sample_bernoulli(g, p.dark_probability);
    for (std::uint64_t i = 0; i < n && !herald; ++i)
      herald = rng::sample_bernoulli(g, p.herald_efficiency);
    if (!herald) continue;
    ++r.heralds;

    // Signal photons: each detected with signal_efficiency, then routed
    // 50/50; darks can also fire either detector.
    bool d1 = rng::sample_bernoulli(g, p.dark_probability);
    bool d2 = rng::sample_bernoulli(g, p.dark_probability);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!rng::sample_bernoulli(g, p.signal_efficiency)) continue;
      if (rng::sample_bernoulli(g, 0.5))
        d1 = true;
      else
        d2 = true;
    }
    if (d1) ++r.coincidences_1;
    if (d2) ++r.coincidences_2;
    if (d1 && d2) ++r.triples;
  }

  if (r.coincidences_1 > 0 && r.coincidences_2 > 0 && r.heralds > 0) {
    r.g2 = static_cast<double>(r.triples) * static_cast<double>(r.heralds) /
           (static_cast<double>(r.coincidences_1) * static_cast<double>(r.coincidences_2));
    if (r.triples > 0)
      r.g2_err = r.g2 / std::sqrt(static_cast<double>(r.triples));
    else
      r.g2_err = r.g2;  // only an upper bound exists
  }
  return r;
}

double analytic_heralded_g2(const HbtParams& p) {
  return quantum::TwoModeSqueezedVacuum(p.mean_pairs_per_trial)
      .heralded_g2(p.herald_efficiency);
}

}  // namespace qfc::core
