#pragma once

/// \file heralded.hpp
/// Sec. II end-to-end experiment: self-locked CW pumping of the high-Q
/// ring, multiplexed heralded single photons on 5 symmetric channel pairs.
/// Reproduces the coincidence "frequency matrix", the per-channel CAR /
/// pair-rate table, and the time-resolved coherence measurement.

#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/core/channel_model.hpp"
#include "qfc/detect/coincidence.hpp"
#include "qfc/detect/event_engine.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"
#include "qfc/sfwm/pair_source.hpp"

namespace qfc::core {

struct HeraldedConfig {
  double pump_power_w = 15e-3;       ///< paper: 15 mW at the ring input
  int num_channel_pairs = 5;
  double duration_s = 60.0;          ///< integration time per measurement
  double coincidence_window_s = 8e-9;
  double side_window_spacing_s = 100e-9;
  ChannelModel channels{};
  std::uint64_t seed = 20170327;     ///< DATE'17 conference date
  /// Worker threads for the batched event engine (0 = hardware
  /// concurrency). Results are bitwise independent of this value.
  int engine_threads = 0;

  /// Throws std::invalid_argument with a path-qualified message
  /// ("HeraldedConfig.duration_s: must be > 0") for nonsensical values.
  /// The constructor calls this, so an experiment object always holds a
  /// valid config.
  void validate() const;
};

/// One (signal channel, idler channel) cell of the frequency matrix.
struct MatrixCell {
  int signal_k = 0;  ///< signal channel pair index (photon at pump + k FSR)
  int idler_k = 0;   ///< idler channel pair index (photon at pump − k FSR)
  detect::CarResult car;

  io::Json to_json() const;
};

struct ChannelResult {
  int k = 0;
  double coincidence_rate_hz = 0;  ///< measured pair (coincidence) rate
  double car = 0;
  double car_err = 0;
  double singles_signal_hz = 0;
  double singles_idler_hz = 0;

  io::Json to_json() const;
};

struct CoherenceResult {
  detect::CoincidenceHistogram histogram;
  double fitted_tau_s = 0;
  double measured_linewidth_hz = 0;     ///< jitter-broadened (what the paper quotes)
  double deconvolved_linewidth_hz = 0;  ///< after jitter correction
  double ring_linewidth_hz = 0;         ///< ground truth of the device model

  io::Json to_json() const;
};

class HeraldedPhotonExperiment {
 public:
  HeraldedPhotonExperiment(photonics::MicroringResonator device, HeraldedConfig cfg,
                           sfwm::SfwmEfficiency eff = {});

  const sfwm::CwPairSource& source() const noexcept { return source_; }
  const HeraldedConfig& config() const noexcept { return cfg_; }

  /// Full signal x idler coincidence matrix (paper: peaks only on the
  /// diagonal). Streams are shared across cells, so off-diagonal cells see
  /// genuinely accidental-only statistics.
  std::vector<MatrixCell> run_coincidence_matrix();

  /// Per-channel CAR and pair-rate table at the configured pump power.
  std::vector<ChannelResult> run_channel_table();

  /// Time-resolved coincidence measurement on channel pair k; fits the
  /// two-sided exponential and converts to a linewidth.
  CoherenceResult run_coherence_measurement(int k, double duration_s,
                                            double hist_bin_s = 0.5e-9,
                                            double hist_range_s = 25e-9);

 private:
  /// Engine spec for channel pair k: pair rate and linewidth from the
  /// SFWM source, transmission and detector from the collection chain.
  detect::ChannelPairSpec channel_spec(int k) const;
  /// All configured channel pairs through the batched event engine.
  detect::EngineResult simulate_events(double duration_s, std::uint64_t seed) const;

  photonics::MicroringResonator device_;
  HeraldedConfig cfg_;
  sfwm::CwPairSource source_;
};

}  // namespace qfc::core
