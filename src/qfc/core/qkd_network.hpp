#pragma once

/// \file qkd_network.hpp
/// Many-user multiplexed QKD network on one comb — the "millions of users"
/// story the paper's introduction motivates: hundreds of comb lines paired
/// off to hundreds of independent users, each with their own fiber span,
/// detector/dark parameters, and sifting config, all simulated from **one
/// shared streaming engine run**.
///
/// Contracts inherited from the substrate (and pinned by
/// tests/test_qkd_network.cpp):
///
///  - **Bounded memory**: the network streams the whole user set through
///    detect::EventStreamer + an online CAR accumulator, so peak resident
///    memory is set by QkdNetworkConfig::stream_window_s — never by
///    user count × duration (bench_qkd_network gates this in CI via its
///    `bounded_rss` flag).
///  - **Bitwise thread-count determinism**: generation forks one RNG per
///    user-channel in user order; analysis shards merge in fixed chunk
///    order; per-user report assembly writes disjoint slots sharded over
///    qfc::parallel. Every number in QkdNetworkReport is bitwise identical
///    at every generation / analysis thread count and stream window size.
///  - **Cross-talk compositionality**: adjacent-bin leakage is injected at
///    the spec level (detect::apply_adjacent_crosstalk) into the
///    background-rate path; zero leakage is an exact no-op, so a
///    leakage-free network reproduces the single-link stream checks
///    bit-for-bit.

#include <cstdint>
#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/core/qkd.hpp"
#include "qfc/core/timebin_experiment.hpp"
#include "qfc/detect/event_engine.hpp"

namespace qfc::core {

/// One subscriber: which comb line pair serves them, their measurement
/// station, their span, and how much of the neighboring bins' flux leaks
/// into their demultiplexer port.
struct QkdUserSpec {
  /// Comb channel pair serving this user (1-based, as everywhere in
  /// TimebinExperiment). 0 = assign automatically: users are dealt
  /// round-robin over the experiment's pairs in user order.
  int channel_pair = 0;
  UserEndpointParams endpoint;
  LinkGeometry link;
  /// Fraction of each adjacent bin's generated flux leaking into this
  /// user's channel (imperfect demux isolation), in [0, 1]. Folded into
  /// the spec-level background rates; 0 is an exact no-op.
  double crosstalk_leakage = 0.0;
};

struct QkdNetworkConfig {
  std::vector<QkdUserSpec> users;
  /// Streaming generation window: the resident-memory knob. Results are
  /// bitwise independent of it.
  double stream_window_s = 1.0;
  std::uint64_t seed = 1176;
  /// Worker threads for CAR merge-sweeps and per-user report assembly;
  /// 0 = process-wide analysis setting. Results are bitwise independent.
  int analysis_threads = 0;
  /// Bin width of QkdNetworkReport::distance_histogram.
  double histogram_bin_km = 10.0;

  /// `num_users` users with identical endpoints and fiber recipe,
  /// distances spread evenly over [0, max_distance_km] in user order, and
  /// automatic channel assignment — the canonical scaling scenario.
  static QkdNetworkConfig uniform(std::size_t num_users, double max_distance_km,
                                  UserEndpointParams endpoint = {},
                                  fiber::FiberParams fiber = {});

  /// Validates the run knobs and every user spec; per-user errors are
  /// prefixed "user N: ". `num_channel_pairs` is the owning experiment's
  /// pair count (bounds the per-user channel_pair; 0 = auto assignment is
  /// always allowed). The QkdNetwork constructor calls this.
  void validate(int num_channel_pairs) const;
};

/// Measured (Monte-Carlo) per-user outcome of one network run.
struct QkdUserReport {
  std::size_t user = 0;
  int channel_pair = 0;    ///< resolved assignment (never 0)
  double distance_km = 0;
  detect::CarResult car;   ///< this user's diagonal CAR-matrix cell
  double visibility = 0;   ///< intrinsic visibility × measured true/total
  double qber = 0;
  double sifted_rate_hz = 0;
  double secret_fraction = 0;
  double secret_key_rate_bps = 0;
  bool key_positive = false;

  io::Json to_json() const;
};

/// One bin of the per-distance aggregate histogram: [lo_km, hi_km).
struct DistanceBinStat {
  double lo_km = 0;
  double hi_km = 0;
  std::size_t users = 0;
  std::size_t users_with_key = 0;
  double total_key_rate_bps = 0;
  double mean_qber = 0;  ///< mean over the bin's users

  io::Json to_json() const;
};

struct QkdNetworkReport {
  double duration_s = 0;
  std::vector<QkdUserReport> users;
  // ---- network aggregates
  double total_key_rate_bps = 0;   ///< sum of positive per-user key rates
  double worst_qber = 0;           ///< max per-user QBER; NaN when no users
  std::size_t users_with_key = 0;
  std::vector<DistanceBinStat> distance_histogram;
  // ---- run diagnostics
  std::size_t stream_windows = 0;  ///< windows the shared run emitted
  long long peak_rss_kb = 0;       ///< max instantaneous RSS seen per window

  /// Full report: per-user array, aggregates, distance histogram. The
  /// run diagnostics (stream_windows, peak_rss_kb) are host/run-specific
  /// and excluded by default so serialized reports stay bitwise
  /// reproducible; pass include_diagnostics=true to embed them.
  io::Json to_json(bool include_diagnostics = false) const;
};

/// The network façade: binds a user list to one TimebinExperiment and runs
/// every user's link from a single shared streaming engine pass.
class QkdNetwork {
 public:
  /// Validates the whole config up front; errors name the offending user
  /// ("user 17: UserEndpointParams: negative dark rate"). All users must
  /// share one coincidence window — the shared online accumulator sweeps
  /// every channel with a single window.
  QkdNetwork(const TimebinExperiment& experiment, QkdNetworkConfig config);

  const QkdNetworkConfig& config() const noexcept { return cfg_; }
  std::size_t num_users() const noexcept { return cfg_.users.size(); }

  /// Resolved channel-pair assignment for one user (auto assignments
  /// filled in).
  int assigned_channel_pair(std::size_t user) const;

  /// The engine spec list one shared run consumes: user u is engine
  /// channel u (link_channel_spec of their assignment + endpoint +
  /// geometry), with adjacent-bin cross-talk folded into the background
  /// rates. Exposed so tests can pin the cross-talk injection and the
  /// zero-leakage no-op.
  std::vector<detect::ChannelPairSpec> engine_specs() const;

  /// One shared streaming run over all users: windowed generation, online
  /// CAR accumulation, then per-user reports sharded over qfc::parallel
  /// and network aggregates. See the file comment for the determinism and
  /// bounded-memory contracts.
  QkdNetworkReport run(double duration_s) const;

 private:
  const TimebinExperiment* experiment_;
  QkdNetworkConfig cfg_;
  std::vector<int> assigned_;
};

}  // namespace qfc::core
