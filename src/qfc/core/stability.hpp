#pragma once

/// \file stability.hpp
/// Sec. II stability claim: the self-locked intra-cavity pumping scheme
/// keeps the source running for weeks with < 5% fluctuation and no active
/// stabilization, while an externally pumped ring drifts off resonance.
/// We model the ring resonance as thermally drifting (Ornstein-Uhlenbeck)
/// and compare the two locking schemes' pair-rate time series.

#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/detect/allan.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"
#include "qfc/photonics/self_locked.hpp"
#include "qfc/rng/ou_process.hpp"

namespace qfc::core {

struct StabilityConfig {
  double observation_days = 21.0;    ///< "several weeks"
  double sample_interval_s = 3600.0; ///< one sample per hour
  /// Ambient temperature drift: stationary RMS and correlation time.
  double temperature_rms_K = 0.5;
  double temperature_tau_s = 6.0 * 3600.0;
  /// The amplified fiber loop of the self-locked scheme; its mode spacing
  /// bounds the residual pump-resonance detuning (ref [6]).
  photonics::SelfLockedLoop loop{};
  /// Additional lasing-line jitter as a fraction of the ring linewidth
  /// (amplifier phase noise, mode-partition noise).
  double self_locked_residual_fraction = 0.02;
  std::uint64_t seed = 1023;  ///< Opt. Express 22, 1023 (ref [6])

  /// Throws std::invalid_argument with a path-qualified message
  /// ("StabilityConfig.observation_days: must be > 0"). Called by the
  /// constructor.
  void validate() const;
};

struct StabilityTrace {
  std::vector<double> time_s;
  std::vector<double> relative_rate;  ///< pair rate / nominal rate
  double mean = 0;
  double rms_fluctuation_percent = 0;   ///< 100 * std/mean
  double peak_to_peak_percent = 0;

  /// Summary statistics plus the series length; pass include_series=true
  /// to embed the full time/rate arrays (large for multi-week runs).
  io::Json to_json(bool include_series = false) const;
};

struct StabilityComparison {
  StabilityTrace self_locked;
  StabilityTrace external;

  io::Json to_json(bool include_series = false) const;
};

/// Counting-statistics form of a stability run, derived from raw engine
/// click streams: the drifting relative rate becomes a piecewise-constant
/// emission schedule (detect::EmissionMode::PiecewiseRates, one
/// RateSegment per sample interval), the engine generates the signal/idler
/// click streams, and the per-interval counts are windowed coincidences of
/// those clicks. The overlapping Allan deviation of the fractional count
/// series is the metrology-grade statement of the "< 5% for weeks" claim.
struct CountedStabilityTrace {
  StabilityTrace trace;                   ///< underlying relative-rate series
  std::vector<double> counts;             ///< coincidences per interval, from clicks
  std::vector<detect::AllanPoint> allan;  ///< of counts / mean(counts)
  double mean_counts = 0;

  io::Json to_json(bool include_series = false) const;
};

class StabilityExperiment {
 public:
  StabilityExperiment(photonics::MicroringResonator device, StabilityConfig cfg);

  /// Run both schemes over the configured observation window.
  StabilityComparison run();

  /// Counting-statistics run of one scheme: the scheme's relative-rate
  /// trace becomes a drifting PiecewiseRates emission schedule (pair rate
  /// = mean on-resonance coincidence rate x relative rate per interval),
  /// the event engine generates the click streams with ideal collection
  /// (unit efficiency, no darks — the counted quantity is the coincidence
  /// rate itself), each sample interval's count is the windowed
  /// signal-idler coincidence count of the raw clicks, and the fractional
  /// counts go through the overlapping Allan deviation. The run streams
  /// through the windowed engine (detect::EventStreamer, one window per
  /// sample interval) into a detect::StreamingAllanAccumulator, so click
  /// memory stays bounded by the busiest interval for multi-week
  /// observations; results are deterministic in cfg.seed (and independent
  /// of thread counts) by the streaming parity contract.
  CountedStabilityTrace run_counted_scheme(photonics::PumpLocking locking,
                                           double mean_coincidence_rate_hz);

  /// Pair rate relative to on-resonance for a given pump-resonance
  /// detuning: SFWM needs the pump resonant, so the rate follows the
  /// squared Lorentzian intracavity enhancement.
  double relative_rate_at_detuning(double detuning_hz) const;

 private:
  StabilityTrace run_scheme(photonics::PumpLocking locking, std::uint64_t seed);

  photonics::MicroringResonator device_;
  StabilityConfig cfg_;
};

}  // namespace qfc::core
