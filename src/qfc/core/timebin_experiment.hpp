#pragma once

/// \file timebin_experiment.hpp
/// Sec. IV end-to-end experiment: double-pulse pumping, matched analyzer
/// interferometers, post-selected quantum-interference fringes and CHSH
/// violation on all 5 symmetric channel pairs.

#include <vector>

#include "qfc/io/json.hpp"

#include "qfc/detect/event_engine.hpp"
#include "qfc/detect/fit.hpp"
#include "qfc/photonics/microring.hpp"
#include "qfc/photonics/pump.hpp"
#include "qfc/sfwm/pair_source.hpp"
#include "qfc/timebin/arrival_histogram.hpp"
#include "qfc/timebin/chsh.hpp"
#include "qfc/timebin/franson.hpp"
#include "qfc/timebin/timebin_state.hpp"

namespace qfc::core {

struct TimebinConfig {
  photonics::DoublePulsePump pump;    ///< defaulted by make_default_pump()
  int num_channel_pairs = 5;
  double integration_s_per_point = 30.0;
  int fringe_points = 24;
  double interferometer_phase_noise_rms_rad = 0.12;
  /// Fraction of post-selected coincidences that are accidental.
  double accidental_fraction = 0.025;
  /// Per-arm detection probability (filters + coupling + detector).
  double detection_efficiency_per_arm = 0.17;
  std::uint64_t seed = 1176;  ///< Science 351, 1176 (ref [8])

  /// Paper-matched pulse train: ~16.8 MHz repetition, pump spectrally
  /// filtered to one resonance, time bins far apart vs photon coherence.
  /// The default average power (EDFA-amplified double pulses) is chosen so
  /// the mean pair number per double pulse is ~0.08 — the multi-pair
  /// regime in which the raw two-photon visibility lands at the paper's
  /// 83% (multi-photon rates need this much pump).
  static photonics::DoublePulsePump make_default_pump(
      const photonics::MicroringResonator& device, double average_power_w = 250e-3);

  /// Throws std::invalid_argument with a path-qualified message
  /// ("TimebinConfig.accidental_fraction: must be in [0, 1)"); the pump
  /// validates itself (DoublePulsePump::validate). Called by the
  /// constructor.
  void validate() const;
};

struct TimebinChannelResult {
  int k = 0;
  double mu_per_double_pulse = 0;       ///< multi-pair parameter
  detect::SinusoidFit fringe_fit;       ///< fitted quantum-interference fringe
  double predicted_visibility = 0;      ///< analytic model prediction
  timebin::ChshMeasurement chsh;        ///< CHSH at optimal settings
  timebin::FringeScan scan;             ///< raw fringe data

  io::Json to_json() const;
};

class TimebinExperiment {
 public:
  TimebinExperiment(photonics::MicroringResonator device, TimebinConfig cfg,
                    sfwm::SfwmEfficiency eff = {});

  const sfwm::PulsedPairSource& source() const noexcept { return source_; }
  const TimebinConfig& config() const noexcept { return cfg_; }

  /// Noise model for channel pair k (μ from the pulsed source).
  timebin::TimebinNoiseModel noise_model(int k) const;

  /// Fringe + CHSH for one channel pair.
  TimebinChannelResult run_channel(int k);

  /// All channel pairs (the paper's "all 5 channels violate CHSH").
  std::vector<TimebinChannelResult> run_all_channels();

  /// Detected post-selected coincidences per second on channel k.
  double detected_coincidence_rate_hz(int k) const;

  /// CW-equivalent engine spec for channel pair k: pair rate = both-bin
  /// emission rate, linewidth from the ring, per-arm detection efficiency
  /// as the detector efficiency, unit channel transmission. Shared by
  /// run_car_check and the QKD layer's link_channel_spec.
  detect::ChannelPairSpec cw_equivalent_spec(int k, double dark_rate_hz) const;

  /// Engine-backed Monte-Carlo cross-check of the coincidence statistics
  /// behind the analytic fringe model: CW-equivalent click streams for all
  /// channel pairs generated in one batched pass, with each channel's CAR
  /// measured in a single merge-sweep.
  std::vector<detect::CarResult> run_car_check(double duration_s,
                                               double dark_rate_hz = 1000.0,
                                               double window_s = 4e-9) const;

  /// Pulse-train-locked engine spec for channel pair k: per-double-pulse
  /// mean pair number from the pulsed source, early/late bins at the
  /// pump's interferometer imbalance, envelope jitter from the pulse
  /// width. Detector chain as cw_equivalent_spec.
  detect::ChannelPairSpec pulsed_spec(int k, double dark_rate_hz) const;

  /// Click-level result for one channel pair of the pulsed cross-check.
  struct PulsedClickCheck {
    detect::CarResult car;                  ///< peak CAR (side windows at ±nT_rep)
    detect::CoincidenceHistogram histogram; ///< raw Δt histogram around the bins
    timebin::TimebinPeaks peaks;            ///< folded early/late peak structure
  };

  /// Genuinely pulsed click-level path of the CAR cross-check: pair times
  /// locked to the double-pulse train, so the Δt histogram resolves the
  /// early/early + late/late central peak and the early/late, late/early
  /// side peaks at ±ΔT (multi-pair accidentals). Accidental windows for
  /// the CAR sit at multiples of the repetition period, as in the pulsed
  /// experiments of Sec. IV.
  std::vector<PulsedClickCheck> run_pulsed_car_check(double duration_s,
                                                     double dark_rate_hz = 1000.0,
                                                     double window_s = 4e-9) const;

 private:
  photonics::MicroringResonator device_;
  TimebinConfig cfg_;
  sfwm::PulsedPairSource source_;
};

}  // namespace qfc::core
