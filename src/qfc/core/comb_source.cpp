#include "qfc/core/comb_source.hpp"

#include "qfc/photonics/device_presets.hpp"

namespace qfc::core {

const char* pump_configuration_name(PumpConfiguration c) {
  switch (c) {
    case PumpConfiguration::SelfLockedCw: return "self-locked CW (heralded photons)";
    case PumpConfiguration::CrossPolarized: return "cross-polarized bichromatic (type-II)";
    case PumpConfiguration::DoublePulse: return "double pulse (time-bin entanglement)";
    case PumpConfiguration::DoublePulseFourMode:
      return "double pulse, four modes (multi-photon)";
  }
  return "unknown";
}

QuantumFrequencyComb QuantumFrequencyComb::for_configuration(PumpConfiguration c) {
  switch (c) {
    case PumpConfiguration::SelfLockedCw:
      return QuantumFrequencyComb(photonics::heralded_source_device());
    case PumpConfiguration::CrossPolarized:
      return QuantumFrequencyComb(photonics::type2_device());
    case PumpConfiguration::DoublePulse:
    case PumpConfiguration::DoublePulseFourMode:
      return QuantumFrequencyComb(photonics::entanglement_device());
  }
  return QuantumFrequencyComb(photonics::heralded_source_device());
}

QuantumFrequencyComb::QuantumFrequencyComb(photonics::MicroringResonator device)
    : device_(device) {}

photonics::CombGrid QuantumFrequencyComb::grid(int num_pairs) const {
  const double pump = photonics::pump_resonance_hz(device_);
  return photonics::CombGrid(
      pump, device_.fsr_hz(pump, photonics::Polarization::TE), num_pairs);
}

HeraldedPhotonExperiment QuantumFrequencyComb::heralded(HeraldedConfig cfg) const {
  return HeraldedPhotonExperiment(device_, cfg);
}

Type2Experiment QuantumFrequencyComb::type2(Type2Config cfg) const {
  return Type2Experiment(device_, cfg);
}

TimebinExperiment QuantumFrequencyComb::timebin(TimebinConfig cfg) const {
  return TimebinExperiment(device_, cfg);
}

TimebinExperiment QuantumFrequencyComb::timebin_default() const {
  TimebinConfig cfg;
  cfg.pump = TimebinConfig::make_default_pump(device_);
  return TimebinExperiment(device_, cfg);
}

FourPhotonExperiment QuantumFrequencyComb::four_photon(FourPhotonConfig cfg) const {
  TimebinConfig tcfg;
  tcfg.pump = TimebinConfig::make_default_pump(device_);
  return FourPhotonExperiment(device_, tcfg, cfg);
}

StabilityExperiment QuantumFrequencyComb::stability(StabilityConfig cfg) const {
  return StabilityExperiment(device_, cfg);
}

}  // namespace qfc::core
