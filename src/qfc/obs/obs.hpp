#pragma once

/// \file obs.hpp
/// Lightweight, thread-safe, zero-overhead-when-disabled observability for
/// the engine/pool/linalg substrate:
///
///  - **Tracing spans** — `QFC_OBS_SPAN("engine.generate", {{"channel", c}})`
///    records a scoped begin/end event into a per-thread buffer; the whole
///    trace exports as Chrome trace-event JSON (`write_trace` /
///    `trace_json`), loadable in chrome://tracing or Perfetto.
///  - **Metrics registry** — process-wide named monotonic `Counter`s,
///    `Gauge`s, and `Histogram`s (fixed log-spaced power-of-two buckets, so
///    bucket boundaries are deterministic across runs and machines), dumped
///    as JSON (`write_metrics` / `metrics_json`).
///  - **RunReport** — snapshots the metrics registry at construction and
///    renders the *delta* as a JSON object, so a bench can embed exactly the
///    counters its own run produced even when earlier phases already ran.
///
/// Overhead contract: when disabled (the default), every span macro and
/// every metric update compiles down to a branch on ONE relaxed atomic load
/// (`detail::g_mode`) — no clock reads, no allocation, no locks — so the
/// bitwise-determinism and perf contracts of `parallel`/`linalg`/`detect`
/// are untouched. Instrumentation must never alter computed values in
/// either mode (pinned by tests/test_obs.cpp's bitwise-invariance test).
///
/// Enabling: programmatically via `enable()` / `enable_tracing()` /
/// `enable_metrics()`, or from the environment — `QFC_OBS_TRACE=<path>`
/// turns tracing on and writes the Chrome trace JSON to <path> at process
/// exit; `QFC_OBS_METRICS=<path>` does the same for the metrics registry.
///
/// Naming conventions and how to open a trace: src/qfc/obs/README.md.
///
/// Lifetime notes: span names and argument keys/string values must be
/// string literals (or otherwise outlive the trace export) — they are
/// stored as pointers, not copied. References returned by
/// `counter`/`gauge`/`histogram` stay valid for the process lifetime.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>

namespace qfc::obs {

namespace detail {

inline constexpr std::uint32_t kTraceBit = 1u;
inline constexpr std::uint32_t kMetricsBit = 2u;

/// The one relaxed atomic every disabled-mode branch reads.
extern std::atomic<std::uint32_t> g_mode;

/// Monotonic nanoseconds since the process's first obs timestamp.
std::uint64_t now_ns();

}  // namespace detail

inline bool tracing_enabled() noexcept {
  return (detail::g_mode.load(std::memory_order_relaxed) & detail::kTraceBit) != 0;
}
inline bool metrics_enabled() noexcept {
  return (detail::g_mode.load(std::memory_order_relaxed) & detail::kMetricsBit) != 0;
}
inline bool enabled() noexcept {
  return detail::g_mode.load(std::memory_order_relaxed) != 0;
}

/// Enable both tracing and metrics / flip one facility / disable both.
void enable();
void enable_tracing(bool on = true);
void enable_metrics(bool on = true);
void disable();

/// Clear every recorded span and zero every registered metric (names and
/// references stay valid). For tests and between bench phases.
void reset();

// ------------------------------------------------------------------ tracing

/// One key/value argument attached to a span. Values are 64-bit integers or
/// static strings; keys must be string literals.
struct SpanArg {
  enum class Kind : std::uint8_t { Int, Str };
  const char* key = nullptr;
  Kind kind = Kind::Int;
  long long i = 0;
  const char* s = nullptr;

  constexpr SpanArg() = default;
  template <class T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  constexpr SpanArg(const char* k, T v)
      : key(k), kind(Kind::Int), i(static_cast<long long>(v)) {}
  constexpr SpanArg(const char* k, const char* v) : key(k), kind(Kind::Str), s(v) {}
};

/// RAII scope recording one Chrome "complete" event (begin time + duration
/// on the recording thread). Construct through QFC_OBS_SPAN, which skips
/// argument evaluation entirely when tracing is disabled. At most
/// kMaxSpanArgs arguments are kept (extras are dropped silently).
class SpanGuard {
 public:
  static constexpr std::size_t kMaxSpanArgs = 2;

  SpanGuard() = default;
  explicit SpanGuard(const char* name) { open(name, nullptr, 0); }
  SpanGuard(const char* name, std::initializer_list<SpanArg> args) {
    open(name, args.begin(), args.size());
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (name_ != nullptr) close();
  }

 private:
  void open(const char* name, const SpanArg* args, std::size_t n);
  void close();

  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::array<SpanArg, kMaxSpanArgs> args_{};
  std::uint8_t num_args_ = 0;
};

#define QFC_OBS_CONCAT_INNER(a, b) a##b
#define QFC_OBS_CONCAT(a, b) QFC_OBS_CONCAT_INNER(a, b)

/// QFC_OBS_SPAN("name") or QFC_OBS_SPAN("name", {{"key", value}, ...}).
/// Both arms of the conditional are prvalues, so the guard is constructed
/// in place (no move); when tracing is off the arguments are never
/// evaluated — the whole statement is one relaxed load + branch.
#define QFC_OBS_SPAN(...)                                                \
  ::qfc::obs::SpanGuard QFC_OBS_CONCAT(qfc_obs_span_, __LINE__) =        \
      ::qfc::obs::tracing_enabled() ? ::qfc::obs::SpanGuard(__VA_ARGS__) \
                                    : ::qfc::obs::SpanGuard()

/// The full trace as Chrome trace-event JSON ({"traceEvents": [...]}).
std::string trace_json();
/// Write trace_json() to `path`; false (with a stderr note) on I/O failure.
bool write_trace(const std::string& path);

// ------------------------------------------------------------------ metrics

/// Monotonic counter. add() is a relaxed fetch_add when metrics are
/// enabled, a branch otherwise.
class Counter {
 public:
  void add(std::uint64_t v) noexcept {
    if (metrics_enabled()) v_.fetch_add(v, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset_value() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  void set(long long v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(long long d) noexcept {
    if (metrics_enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  long long value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset_value() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Latency/size histogram with fixed log-spaced (power-of-two) buckets:
/// bucket 0 holds the value 0, bucket b (1 <= b < kNumBuckets-1) holds
/// [2^(b-1), 2^b), and the last bucket holds everything above. Boundaries
/// depend on nothing but the value, so exported histograms are
/// deterministic and comparable across runs and machines.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  static constexpr unsigned bucket_of(std::uint64_t v) noexcept {
    const unsigned w = static_cast<unsigned>(std::bit_width(v));  // 0 for v==0
    return w < kNumBuckets ? w : static_cast<unsigned>(kNumBuckets - 1);
  }

  void observe(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset_value() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Get-or-create a metric by name. The returned reference is stable for the
/// process lifetime; hot paths should cache it (e.g. in a function-local
/// static) instead of looking the name up per update.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// The whole registry as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
std::string metrics_json();
/// Write metrics_json() to `path`; false (with a stderr note) on failure.
bool write_metrics(const std::string& path);

/// Current resident set size of the process in kB (VmRSS from
/// /proc/self/status), or 0 where that is unavailable. Unlike getrusage's
/// ru_maxrss this is the *instantaneous* RSS, so the streaming engine can
/// report a bounded-memory gauge that actually goes down when buffers are
/// released.
long long current_rss_kb();

/// Snapshots the metrics registry at construction; json_object() renders
/// the delta since then (counters/histograms as differences, gauges as
/// current values) plus the wall-clock span, as one JSON object — the
/// run-scoped aggregate engines and benches attach to their own reports.
class RunReport {
 public:
  RunReport();
  ~RunReport();
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  std::string json_object() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qfc::obs
