#include "qfc/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace qfc::obs {

namespace detail {

std::atomic<std::uint32_t> g_mode{0};

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  // Epoch = first obs timestamp of the process (thread-safe magic static);
  // all trace timestamps are relative to it.
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

}  // namespace detail

namespace {

// Per-thread buffers above this many events drop further spans (counted in
// the export's otherData.dropped_events) instead of growing without bound.
constexpr std::size_t kMaxEventsPerThread = 1u << 18;

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0 = 0;
  std::uint64_t dur = 0;
  std::array<SpanArg, SpanGuard::kMaxSpanArgs> args{};
  std::uint8_t num_args = 0;
};

struct ThreadBuffer {
  std::mutex mu;  // taken by the owning thread on push and by exporters
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

// Trace state is intentionally immortal (heap-allocated, never freed): the
// atexit flush registered by the env-var initializer below must be able to
// export after every other static has been destroyed.
struct TraceState {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::uint32_t next_tid = 1;
};

TraceState& trace_state() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadBuffer& this_thread_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    auto* fresh = new ThreadBuffer();
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lock(s.mu);
    fresh->tid = s.next_tid++;
    s.buffers.push_back(fresh);
    buf = fresh;
  }
  return *buf;
}

// ------------------------------------------------------------ registry

struct Registry {
  std::mutex mu;
  // node-based maps: element addresses are stable, so the references handed
  // out by counter()/gauge()/histogram() survive any later registration.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal, see TraceState
  return *r;
}

template <class Map>
auto& get_or_create(Map& m, std::string_view name) {
  auto it = m.find(name);
  if (it == m.end()) it = m.try_emplace(std::string(name)).first;
  return it->second;
}

// ---------------------------------------------------------- JSON helpers

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_args_object(std::string& out, const std::array<SpanArg, 2>& args,
                        std::uint8_t num_args) {
  out += "{";
  for (std::uint8_t a = 0; a < num_args; ++a) {
    if (a > 0) out += ", ";
    append_escaped(out, args[a].key != nullptr ? args[a].key : "");
    out += ": ";
    if (args[a].kind == SpanArg::Kind::Str)
      append_escaped(out, args[a].s != nullptr ? args[a].s : "");
    else
      out += std::to_string(args[a].i);
  }
  out += "}";
}

// ------------------------------------------------------ metrics snapshot

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, long long> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

MetricsSnapshot snapshot_metrics() {
  MetricsSnapshot snap;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [name, c] : reg.counters) snap.counters[name] = c.value();
  for (const auto& [name, g] : reg.gauges) snap.gauges[name] = g.value();
  for (const auto& [name, h] : reg.histograms) {
    HistogramSnapshot& hs = snap.histograms[name];
    hs.count = h.count();
    hs.sum = h.sum();
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b)
      hs.buckets[b] = h.bucket_count(b);
  }
  return snap;
}

/// Render a snapshot (minus an optional baseline) as one JSON object.
/// Counter/histogram values are deltas when `base` is given; gauges are
/// always instantaneous.
std::string render_metrics(const MetricsSnapshot& cur, const MetricsSnapshot* base) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : cur.counters) {
    std::uint64_t value = v;
    if (base != nullptr) {
      const auto it = base->counters.find(name);
      value -= it != base->counters.end() ? it->second : 0;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : cur.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : cur.histograms) {
    HistogramSnapshot d = h;
    if (base != nullptr) {
      const auto it = base->histograms.find(name);
      if (it != base->histograms.end()) {
        d.count -= it->second.count;
        d.sum -= it->second.sum;
        for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b)
          d.buckets[b] -= it->second.buckets[b];
      }
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(d.count) +
           ", \"sum\": " + std::to_string(d.sum) + ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      if (d.buckets[b] == 0) continue;  // nonzero buckets only (sparse export)
      if (!bfirst) out += ", ";
      bfirst = false;
      // Bucket b spans [2^(b-1), 2^b); "lt" is the exclusive upper bound
      // (the last bucket is unbounded).
      out += "{\"bucket\": " + std::to_string(b);
      if (b + 1 < Histogram::kNumBuckets)
        out += ", \"lt\": " + std::to_string(std::uint64_t{1} << b);
      out += ", \"count\": " + std::to_string(d.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

bool write_string(const std::string& path, const std::string& body,
                  const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "qfc-obs: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

// ----------------------------------------------------------- env control

std::string& env_trace_path() {
  static std::string* p = new std::string();
  return *p;
}
std::string& env_metrics_path() {
  static std::string* p = new std::string();
  return *p;
}

void flush_at_exit() {
  if (!env_trace_path().empty() && write_trace(env_trace_path()))
    std::fprintf(stderr, "qfc-obs: wrote trace to %s\n", env_trace_path().c_str());
  if (!env_metrics_path().empty() && write_metrics(env_metrics_path()))
    std::fprintf(stderr, "qfc-obs: wrote metrics to %s\n",
                 env_metrics_path().c_str());
}

/// Runs during static initialization of any binary that links the qfc
/// library (every instrumented module references obs symbols, so this TU is
/// always pulled in): QFC_OBS_TRACE=<path> / QFC_OBS_METRICS=<path> enable
/// the corresponding facility and register an exit-time export.
struct EnvInit {
  EnvInit() {
    if (const char* p = std::getenv("QFC_OBS_TRACE"); p != nullptr && *p != '\0') {
      env_trace_path() = p;
      enable_tracing(true);
    }
    if (const char* p = std::getenv("QFC_OBS_METRICS"); p != nullptr && *p != '\0') {
      env_metrics_path() = p;
      enable_metrics(true);
    }
    if (!env_trace_path().empty() || !env_metrics_path().empty())
      std::atexit(&flush_at_exit);
  }
};
const EnvInit g_env_init{};

}  // namespace

// ------------------------------------------------------------- public API

void enable() {
  detail::g_mode.fetch_or(detail::kTraceBit | detail::kMetricsBit,
                          std::memory_order_relaxed);
}

void enable_tracing(bool on) {
  if (on)
    detail::g_mode.fetch_or(detail::kTraceBit, std::memory_order_relaxed);
  else
    detail::g_mode.fetch_and(~detail::kTraceBit, std::memory_order_relaxed);
}

void enable_metrics(bool on) {
  if (on)
    detail::g_mode.fetch_or(detail::kMetricsBit, std::memory_order_relaxed);
  else
    detail::g_mode.fetch_and(~detail::kMetricsBit, std::memory_order_relaxed);
}

void disable() { detail::g_mode.store(0, std::memory_order_relaxed); }

void reset() {
  {
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (ThreadBuffer* buf : s.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      buf->events.clear();
      buf->dropped = 0;
    }
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, c] : reg.counters) c.reset_value();
  for (auto& [name, g] : reg.gauges) g.reset_value();
  for (auto& [name, h] : reg.histograms) h.reset_value();
}

// ---------------------------------------------------------------- tracing

void SpanGuard::open(const char* name, const SpanArg* args, std::size_t n) {
  name_ = name;
  num_args_ = static_cast<std::uint8_t>(std::min(n, kMaxSpanArgs));
  for (std::uint8_t a = 0; a < num_args_; ++a) args_[a] = args[a];
  t0_ = detail::now_ns();
}

void SpanGuard::close() {
  if (!tracing_enabled()) return;  // disabled between open and close: drop
  const std::uint64_t t1 = detail::now_ns();
  ThreadBuffer& buf = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  TraceEvent& ev = buf.events.emplace_back();
  ev.name = name_;
  ev.t0 = t0_;
  ev.dur = t1 - t0_;
  ev.args = args_;
  ev.num_args = num_args_;
}

std::string trace_json() {
  struct Flat {
    TraceEvent ev;
    std::uint32_t tid;
  };
  std::vector<Flat> flat;
  std::uint64_t dropped = 0;
  {
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (ThreadBuffer* buf : s.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      dropped += buf->dropped;
      for (const TraceEvent& ev : buf->events) flat.push_back({ev, buf->tid});
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const Flat& a, const Flat& b) { return a.ev.t0 < b.ev.t0; });

  std::string out = "{\"traceEvents\": [";
  char num[160];
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const TraceEvent& ev = flat[i].ev;
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\": ";
    append_escaped(out, ev.name != nullptr ? ev.name : "");
    // Chrome trace ts/dur are microseconds; keep ns resolution as decimals.
    std::snprintf(num, sizeof(num),
                  ", \"cat\": \"qfc\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  flat[i].tid, static_cast<double>(ev.t0) / 1000.0,
                  static_cast<double>(ev.dur) / 1000.0);
    out += num;
    if (ev.num_args > 0) {
      out += ", \"args\": ";
      append_args_object(out, ev.args, ev.num_args);
    }
    out += "}";
  }
  out += flat.empty() ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ns\", \"otherData\": {\"dropped_events\": " +
         std::to_string(dropped) + "}}";
  return out;
}

bool write_trace(const std::string& path) {
  return write_string(path, trace_json(), "trace");
}

// ---------------------------------------------------------------- metrics

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return get_or_create(reg.counters, name);
}

Gauge& gauge(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return get_or_create(reg.gauges, name);
}

Histogram& histogram(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return get_or_create(reg.histograms, name);
}

std::string metrics_json() {
  const MetricsSnapshot snap = snapshot_metrics();
  return render_metrics(snap, nullptr);
}

bool write_metrics(const std::string& path) {
  return write_string(path, metrics_json(), "metrics");
}

long long current_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

// -------------------------------------------------------------- RunReport

struct RunReport::Impl {
  MetricsSnapshot baseline;
  std::uint64_t t0_ns = 0;
};

RunReport::RunReport() : impl_(std::make_unique<Impl>()) {
  impl_->baseline = snapshot_metrics();
  impl_->t0_ns = detail::now_ns();
}

RunReport::~RunReport() = default;

std::string RunReport::json_object() const {
  const double wall_ms =
      static_cast<double>(detail::now_ns() - impl_->t0_ns) / 1e6;
  const MetricsSnapshot cur = snapshot_metrics();
  std::string body = render_metrics(cur, &impl_->baseline);
  // Splice the report header into the rendered object: {"enabled": ...,
  // "wall_ms": ..., "counters": {...}, ...}.
  char head[96];
  std::snprintf(head, sizeof(head), "{\n  \"enabled\": %s,\n  \"wall_ms\": %.3f,",
                metrics_enabled() ? "true" : "false", wall_ms);
  return std::string(head) + body.substr(1);
}

}  // namespace qfc::obs
