#include "qfc/rng/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace qfc::rng {

double sample_normal(Xoshiro256& g) {
  // Marsaglia polar method; discards the second variate for simplicity —
  // generation is not a bottleneck next to the physics code.
  for (;;) {
    const double u = g.uniform(-1.0, 1.0);
    const double v = g.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
  }
}

double sample_normal(Xoshiro256& g, double mean, double sigma) {
  if (sigma < 0) throw std::invalid_argument("sample_normal: negative sigma");
  return mean + sigma * sample_normal(g);
}

double sample_exponential(Xoshiro256& g, double lambda) {
  if (lambda <= 0) throw std::invalid_argument("sample_exponential: lambda must be > 0");
  // 1 - uniform() is in (0, 1], so the log argument never vanishes.
  return -std::log(1.0 - g.uniform()) / lambda;
}

double sample_double_exponential(Xoshiro256& g, double lambda) {
  const double mag = sample_exponential(g, lambda);
  return g.uniform() < 0.5 ? -mag : mag;
}

namespace {

std::uint64_t poisson_inversion(Xoshiro256& g, double mu) {
  // Knuth-style sequential search on the CDF; fine for mu <~ 30.
  const double target = g.uniform();
  double p = std::exp(-mu);
  double cdf = p;
  std::uint64_t k = 0;
  while (target > cdf && k < 1100) {
    ++k;
    p *= mu / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

std::uint64_t poisson_ptrs(Xoshiro256& g, double mu) {
  // Transformed rejection with squeeze (Hörmann, 1993). Valid for mu >= 10.
  const double b = 0.931 + 2.53 * std::sqrt(mu);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);

  for (;;) {
    const double u = g.uniform() - 0.5;
    const double v = g.uniform();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mu + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * std::log(mu) - mu - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

std::uint64_t sample_poisson(Xoshiro256& g, double mu) {
  if (mu < 0) throw std::invalid_argument("sample_poisson: negative mean");
  if (mu == 0) return 0;
  if (mu < 30.0) return poisson_inversion(g, mu);
  return poisson_ptrs(g, mu);
}

std::uint64_t sample_zero_truncated_poisson(Xoshiro256& g, double mu) {
  if (mu <= 0)
    throw std::invalid_argument("sample_zero_truncated_poisson: mean must be > 0");
  if (mu >= 30.0) {
    // P(0) = e^-mu is astronomically small here; plain rejection of the
    // zero class virtually never loops.
    for (;;) {
      const std::uint64_t k = poisson_ptrs(g, mu);
      if (k > 0) return k;
    }
  }
  // Sequential CDF inversion over k >= 1: the target is uniform on
  // (0, 1 - e^-mu), the total mass of the truncated distribution.
  const double target = g.uniform() * -std::expm1(-mu);
  double p = std::exp(-mu) * mu;  // P(k = 1)
  double cdf = p;
  std::uint64_t k = 1;
  while (target > cdf && k < 1100) {
    ++k;
    p *= mu / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

bool sample_bernoulli(Xoshiro256& g, double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("sample_bernoulli: p outside [0,1]");
  return g.uniform() < p;
}

std::uint64_t sample_binomial(Xoshiro256& g, std::uint64_t n, double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("sample_binomial: p outside [0,1]");
  if (p == 0 || n == 0) return 0;
  if (p == 1) return n;
  const double np = static_cast<double>(n) * p;
  if (np * (1 - p) > 1000.0) {
    const double sigma = std::sqrt(np * (1 - p));
    const double x = std::round(sample_normal(g, np, sigma));
    if (x < 0) return 0;
    if (x > static_cast<double>(n)) return n;
    return static_cast<std::uint64_t>(x);
  }
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < n; ++i) k += sample_bernoulli(g, p) ? 1 : 0;
  return k;
}

std::size_t sample_discrete(Xoshiro256& g, const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("sample_discrete: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("sample_discrete: all weights zero");
  double target = g.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bin
}

std::uint64_t sample_thermal(Xoshiro256& g, double mu) {
  if (mu < 0) throw std::invalid_argument("sample_thermal: negative mean");
  if (mu == 0) return 0;
  // Geometric with success probability 1/(1+mu), supported on {0,1,2,...}.
  const double q = mu / (1.0 + mu);  // P(n >= k+1 | n >= k)
  std::uint64_t n = 0;
  while (g.uniform() < q && n < 10000) ++n;
  return n;
}

}  // namespace qfc::rng
