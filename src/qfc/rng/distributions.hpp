#pragma once

/// \file distributions.hpp
/// Samplers used by the Monte-Carlo detection chain. All take the generator
/// explicitly; all are deterministic given the seed.

#include <cstdint>
#include <vector>

#include "qfc/rng/xoshiro.hpp"

namespace qfc::rng {

/// Standard normal via Marsaglia polar method.
double sample_normal(Xoshiro256& g);

/// Normal with given mean / standard deviation (sigma >= 0).
double sample_normal(Xoshiro256& g, double mean, double sigma);

/// Exponential with given rate lambda > 0 (mean 1/lambda).
double sample_exponential(Xoshiro256& g, double lambda);

/// Two-sided (Laplace) exponential with decay rate lambda: density
/// ~ exp(-lambda |x|). Models cavity-filtered photon arrival-time offsets.
double sample_double_exponential(Xoshiro256& g, double lambda);

/// Poisson with mean mu >= 0. Uses inversion for small mu and the
/// transformed-rejection method (PTRS, Hörmann 1993) for large mu.
std::uint64_t sample_poisson(Xoshiro256& g, double mu);

/// Poisson with mean mu > 0 conditioned on k >= 1. Used by the sparse
/// pulsed-emission kernel, which visits only the occupied pulse slots of
/// a pulse train (occupancy probability 1 - e^-mu per slot) and therefore
/// needs the per-visited-slot pair number without the zero class.
std::uint64_t sample_zero_truncated_poisson(Xoshiro256& g, double mu);

/// Bernoulli with success probability p in [0, 1].
bool sample_bernoulli(Xoshiro256& g, double p);

/// Binomial(n, p) by direct Bernoulli summation for small n, normal
/// approximation with continuity correction beyond n*p*(1-p) > 1000.
std::uint64_t sample_binomial(Xoshiro256& g, std::uint64_t n, double p);

/// Sample an index from unnormalized non-negative weights.
std::size_t sample_discrete(Xoshiro256& g, const std::vector<double>& weights);

/// Thermal (Bose-Einstein / geometric) photon-number distribution with mean
/// occupation mu: P(n) = mu^n / (1+mu)^{n+1}. This is the single-mode
/// photon-number statistics of one arm of an SFWM squeezed state.
std::uint64_t sample_thermal(Xoshiro256& g, double mu);

}  // namespace qfc::rng
