#pragma once

/// \file xoshiro.hpp
/// xoshiro256++ pseudo-random generator (Blackman & Vigna). Deterministic,
/// fast, and UniformRandomBitGenerator-compatible so it plugs into <random>
/// if ever needed. Every stochastic routine in the library takes one of
/// these explicitly — no hidden global state.

#include <array>
#include <cstdint>

namespace qfc::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, per
  /// the reference implementation's recommendation.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded integers would be overkill here;
    // simple rejection keeps the distribution exactly uniform.
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Independent child stream (for per-channel simulations): reseeds from
  /// the parent's next output mixed with a stream index.
  Xoshiro256 fork(std::uint64_t stream) {
    return Xoshiro256((*this)() ^ (0xA0761D6478BD642FULL * (stream + 1)));
  }

  /// Raw 256-bit state, for snapshot/restore of long-running simulations
  /// (detect::EventStreamer). A generator whose state is copied out and
  /// later restored with set_state() resumes the exact same sequence.
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

  void set_state(const std::array<std::uint64_t, 4>& s) noexcept { state_ = s; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qfc::rng
