#pragma once

/// \file ou_process.hpp
/// Ornstein–Uhlenbeck process used to model slow laboratory drifts
/// (thermal resonance drift, interferometer phase wander). Exact discrete
/// update — valid for arbitrary step sizes.

#include "qfc/rng/xoshiro.hpp"

namespace qfc::rng {

class OrnsteinUhlenbeck {
 public:
  /// \param mean          long-term mean the process reverts to
  /// \param correlation_time  1/theta, seconds; larger = slower drift
  /// \param stationary_sigma  standard deviation of the stationary state
  /// \param initial       starting value
  OrnsteinUhlenbeck(double mean, double correlation_time, double stationary_sigma,
                    double initial);

  /// Advance by dt seconds and return the new value. Uses the exact
  /// solution x' = m + (x-m) e^{-dt/tau} + sigma sqrt(1-e^{-2 dt/tau}) N(0,1).
  double step(Xoshiro256& g, double dt);

  double value() const noexcept { return x_; }
  void reset(double x) noexcept { x_ = x; }

 private:
  double mean_;
  double tau_;
  double sigma_;
  double x_;
};

}  // namespace qfc::rng
