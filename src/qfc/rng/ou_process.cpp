#include "qfc/rng/ou_process.hpp"

#include <cmath>
#include <stdexcept>

#include "qfc/rng/distributions.hpp"

namespace qfc::rng {

OrnsteinUhlenbeck::OrnsteinUhlenbeck(double mean, double correlation_time,
                                     double stationary_sigma, double initial)
    : mean_(mean), tau_(correlation_time), sigma_(stationary_sigma), x_(initial) {
  if (tau_ <= 0) throw std::invalid_argument("OrnsteinUhlenbeck: correlation_time must be > 0");
  if (sigma_ < 0) throw std::invalid_argument("OrnsteinUhlenbeck: negative sigma");
}

double OrnsteinUhlenbeck::step(Xoshiro256& g, double dt) {
  if (dt < 0) throw std::invalid_argument("OrnsteinUhlenbeck::step: negative dt");
  const double decay = std::exp(-dt / tau_);
  const double noise = sigma_ * std::sqrt(std::max(0.0, 1.0 - decay * decay));
  x_ = mean_ + (x_ - mean_) * decay + noise * sample_normal(g);
  return x_;
}

}  // namespace qfc::rng
