#pragma once

/// \file sweep.hpp
/// Config-driven scenario-sweep runner: parses a sweep config (one or more
/// scenario sweeps, each with a base parameter object and axis specs),
/// expands the axes into concrete scenario instances, fans the instances
/// out over a qfc::parallel::WorkerPool, and merges the per-instance
/// results into one report in config order.
///
/// Determinism contract: instances are expanded in config order (cartesian
/// product per sweep, last axis fastest), each instance runs a registry
/// adapter that is a pure function of its parameter object, every worker
/// writes its result into a pre-sized disjoint slot, and the merge walks
/// the slots in index order — so the serialized report is bitwise
/// identical at every worker count, and identical to calling the façades
/// serially. Scenario failures are isolated: a throwing instance becomes
/// an error entry in the report (same slot, same order) and the other
/// instances still run.
///
/// Config schema (all unknown keys are path-qualified errors):
///
///     {
///       "workers": 1,                 // optional; callers may override
///       "sweeps": [
///         {
///           "scenario": "qkd_link_budget",
///           "base":  { "dark_rate_hz": 500.0 },      // optional
///           "axes": [                                // optional
///             { "param": "distance_km", "values": [0, 10, 20] },
///             { "param": "seed",
///               "linspace": { "start": 0, "stop": 30, "count": 4 } }
///           ]
///         }
///       ]
///     }
///
/// Each axis contributes either an explicit scalar list ("values") or an
/// evenly spaced numeric grid ("linspace", count points from start to
/// stop inclusive). A sweep with no axes is a single instance of "base".

#include <cstddef>
#include <string>
#include <vector>

#include "qfc/io/json.hpp"

namespace qfc::sweep {

/// One fully expanded scenario instance.
struct ScenarioInstance {
  std::string scenario;  ///< registry name (validated by the parser)
  io::Json params;       ///< base merged with this instance's axis values
  std::string path;      ///< originating config path, e.g. "$.sweeps[1]"
};

/// Parsed + expanded sweep config, in config order.
struct SweepPlan {
  int workers = 1;  ///< config's "workers" (1 when absent)
  std::vector<ScenarioInstance> instances;
};

/// Parses and validates a sweep config against the scenario registry and
/// expands every axis. Throws io::JsonError naming the exact JSON path of
/// the first problem (unknown scenario, unknown key, bad type, empty
/// axis). The expansion is capped at 10000 instances.
SweepPlan expand_sweep_config(const io::Json& config);

struct SweepReport {
  io::Json json;  ///< the full merged report (see sweep.cpp for layout)
  std::size_t num_scenarios = 0;
  std::size_t num_failed = 0;
};

/// Runs every instance of the plan on `workers` threads (clamped to
/// >= 1; the calling thread participates) and merges the results in plan
/// order. The serialized report is bitwise identical for every value of
/// `workers`.
SweepReport run_sweep(const SweepPlan& plan, int workers);

}  // namespace qfc::sweep
