#pragma once

/// \file scenario.hpp
/// Uniform experiment API over the core façades: every end-to-end
/// experiment of the paper is registered here as a named *scenario* — a
/// JSON-parameterized adapter `run(params) -> Json` whose parameters map
/// 1:1 onto the façade's Config struct (same names, same defaults) and
/// whose result is the façade result's to_json(). The sweep driver
/// (sweep.hpp) and the qfc_sweep CLI enumerate experiments through this
/// registry instead of hard-coding façade calls, so adding an experiment
/// to the repo means adding one registry entry.
///
/// Adapter contract:
///  - deterministic: the result depends only on `params` (seeds are
///    parameters; no wall clock, no global state), so sweep reports are
///    bitwise identical at any worker count;
///  - strict: unknown parameter keys and type mismatches throw
///    io::JsonError naming the exact JSON path;
///  - self-describing: the ParamSpec list is the single source of truth
///    for the accepted keys (the registry generates the unknown-key guard
///    from it, and `qfc_sweep --list` prints it).

#include <functional>
#include <string_view>
#include <vector>

#include "qfc/io/json.hpp"

namespace qfc::sweep {

/// One accepted parameter of a scenario. `type` is the JsonView getter
/// family that reads it: "bool", "integer", "number", or "string".
struct ParamSpec {
  const char* name;
  const char* type;
  const char* description;
};

/// One registered experiment adapter.
struct Scenario {
  const char* name;
  const char* description;
  std::vector<ParamSpec> params;
  /// Runs the experiment with the given parameter object (a JsonView so
  /// errors carry the caller's JSON path). Unknown keys have already been
  /// rejected by the registry wrapper when this is called.
  std::function<io::Json(const io::JsonView&)> run;
};

/// Immutable process-wide table of every scenario. Construction is eager
/// and cheap (no devices are built until a scenario runs).
class ScenarioRegistry {
 public:
  static const ScenarioRegistry& instance();

  /// nullptr when no scenario has that name.
  const Scenario* find(std::string_view name) const noexcept;
  const std::vector<Scenario>& scenarios() const noexcept { return scenarios_; }

 private:
  ScenarioRegistry();
  /// Registers `run` wrapped with the unknown-key guard derived from
  /// `params`.
  void add(const char* name, const char* description, std::vector<ParamSpec> params,
           std::function<io::Json(const io::JsonView&)> run);

  std::vector<Scenario> scenarios_;
};

}  // namespace qfc::sweep
