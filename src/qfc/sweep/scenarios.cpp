/// \file scenarios.cpp
/// The registry entries: one adapter per core façade. Each adapter maps a
/// flat JSON parameter object onto the façade's Config struct (same field
/// names, same defaults), runs the experiment, and returns the result's
/// to_json(). Seeds are ordinary parameters, so a scenario instance is a
/// pure function of its parameter object.

#include "qfc/sweep/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "qfc/core/comb_source.hpp"
#include "qfc/core/qkd.hpp"
#include "qfc/core/qkd_network.hpp"
#include "qfc/qudit/freq_bin_source.hpp"

namespace qfc::sweep {

namespace {

// ---- optional-parameter getters: fall back to the façade default when the
//      key is absent, path-qualified JsonError on a type mismatch.

bool flag(const io::JsonView& p, const char* key, bool fallback) {
  return p.has(key) ? p.at(key).as_bool() : fallback;
}

double num(const io::JsonView& p, const char* key, double fallback) {
  return p.has(key) ? p.at(key).as_number() : fallback;
}

int int_in(const io::JsonView& p, const char* key, int fallback, int lo, int hi) {
  return p.has(key) ? static_cast<int>(p.at(key).as_int_in(lo, hi)) : fallback;
}

std::uint64_t seed_param(const io::JsonView& p, std::uint64_t fallback) {
  return p.has("seed")
             ? static_cast<std::uint64_t>(p.at("seed").as_int_in(
                   0, std::numeric_limits<std::int64_t>::max()))
             : fallback;
}

// ---- shared parameter blocks

core::UserEndpointParams endpoint_from(const io::JsonView& p) {
  core::UserEndpointParams ep;
  ep.coincidence_window_s = num(p, "coincidence_window_s", ep.coincidence_window_s);
  ep.dark_rate_hz = num(p, "dark_rate_hz", ep.dark_rate_hz);
  ep.sifting_factor = num(p, "sifting_factor", ep.sifting_factor);
  ep.detection_efficiency_scale =
      num(p, "detection_efficiency_scale", ep.detection_efficiency_scale);
  return ep;
}

core::TimebinConfig timebin_config_from(const io::JsonView& p,
                                        const photonics::MicroringResonator& device) {
  core::TimebinConfig cfg;
  cfg.pump = core::TimebinConfig::make_default_pump(
      device, num(p, "average_power_w", 250e-3));
  cfg.num_channel_pairs = int_in(p, "num_channel_pairs", cfg.num_channel_pairs, 1, 64);
  cfg.integration_s_per_point =
      num(p, "integration_s_per_point", cfg.integration_s_per_point);
  cfg.fringe_points = int_in(p, "fringe_points", cfg.fringe_points, 4, 100000);
  cfg.interferometer_phase_noise_rms_rad = num(
      p, "interferometer_phase_noise_rms_rad", cfg.interferometer_phase_noise_rms_rad);
  cfg.accidental_fraction = num(p, "accidental_fraction", cfg.accidental_fraction);
  cfg.detection_efficiency_per_arm =
      num(p, "detection_efficiency_per_arm", cfg.detection_efficiency_per_arm);
  cfg.seed = seed_param(p, cfg.seed);
  return cfg;
}

const std::vector<ParamSpec> kTimebinParams = {
    {"average_power_w", "number", "average double-pulse pump power [W]"},
    {"num_channel_pairs", "integer", "symmetric comb channel pairs"},
    {"integration_s_per_point", "number", "integration time per fringe point [s]"},
    {"fringe_points", "integer", "points per interference fringe"},
    {"interferometer_phase_noise_rms_rad", "number", "analyzer phase noise RMS [rad]"},
    {"accidental_fraction", "number", "accidental fraction of coincidences"},
    {"detection_efficiency_per_arm", "number", "per-arm detection probability"},
    {"seed", "integer", "experiment RNG seed"},
};

const std::vector<ParamSpec> kEndpointParams = {
    {"coincidence_window_s", "number", "Alice-Bob pairing window [s]"},
    {"dark_rate_hz", "number", "per-detector dark rate [Hz]"},
    {"sifting_factor", "number", "basis-sifting factor"},
    {"detection_efficiency_scale", "number", "endpoint efficiency multiplier"},
};

std::vector<ParamSpec> concat(std::vector<ParamSpec> a,
                              const std::vector<ParamSpec>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::instance() {
  static const ScenarioRegistry registry;
  return registry;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const Scenario& s : scenarios_)
    if (name == s.name) return &s;
  return nullptr;
}

void ScenarioRegistry::add(const char* name, const char* description,
                           std::vector<ParamSpec> params,
                           std::function<io::Json(const io::JsonView&)> run) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.params = std::move(params);
  // Wrap with the unknown-key guard so every adapter is strict for free
  // and the ParamSpec list stays the single source of truth.
  s.run = [spec = s.params, inner = std::move(run)](const io::JsonView& p) {
    if (!p.value().is_object()) p.fail("expected a parameter object");
    for (const auto& member : p.value().object_members()) {
      const bool known = std::any_of(spec.begin(), spec.end(), [&](const ParamSpec& ps) {
        return member.first == ps.name;
      });
      if (!known) {
        std::string allowed;
        for (const ParamSpec& ps : spec) {
          if (!allowed.empty()) allowed += ", ";
          allowed += ps.name;
        }
        p.fail("unknown key '" + member.first + "' (expected one of: " + allowed + ")");
      }
    }
    return inner(p);
  };
  scenarios_.push_back(std::move(s));
}

ScenarioRegistry::ScenarioRegistry() {
  using core::PumpConfiguration;
  using core::QuantumFrequencyComb;

  // ---- Sec. II: heralded single photons (self-locked CW pump)
  add("heralded_channel_table",
      "Per-channel CAR / pair-rate table of the CW-pumped heralded source",
      {
          {"pump_power_w", "number", "CW pump power at the ring [W]"},
          {"num_channel_pairs", "integer", "symmetric comb channel pairs"},
          {"duration_s", "number", "integration time [s]"},
          {"coincidence_window_s", "number", "coincidence window [s]"},
          {"side_window_spacing_s", "number", "accidental side-window spacing [s]"},
          {"seed", "integer", "experiment RNG seed"},
      },
      [](const io::JsonView& p) {
        core::HeraldedConfig cfg;
        cfg.pump_power_w = num(p, "pump_power_w", cfg.pump_power_w);
        cfg.num_channel_pairs = int_in(p, "num_channel_pairs", cfg.num_channel_pairs, 1, 64);
        cfg.duration_s = num(p, "duration_s", cfg.duration_s);
        cfg.coincidence_window_s =
            num(p, "coincidence_window_s", cfg.coincidence_window_s);
        cfg.side_window_spacing_s =
            num(p, "side_window_spacing_s", cfg.side_window_spacing_s);
        cfg.seed = seed_param(p, cfg.seed);
        cfg.engine_threads = 1;  // sweep workers own the parallelism
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
        auto exp = comb.heralded(cfg);
        io::Json channels = io::Json::make_array();
        for (const auto& r : exp.run_channel_table()) channels.push_back(r.to_json());
        io::Json out = io::Json::make_object();
        out.set("channels", std::move(channels));
        return out;
      });

  // ---- Sec. III: type-II pairs (cross-polarized bichromatic pump)
  add("type2_car",
      "Cross-polarized coincidence measurement and OPO threshold of the "
      "type-II source",
      {
          {"pump_power_total_w", "number", "total bichromatic pump power [W]"},
          {"num_channel_pairs", "integer", "symmetric comb channel pairs"},
          {"duration_s", "number", "integration time [s]"},
          {"seed", "integer", "experiment RNG seed"},
      },
      [](const io::JsonView& p) {
        core::Type2Config cfg;
        cfg.pump_power_total_w = num(p, "pump_power_total_w", cfg.pump_power_total_w);
        cfg.num_channel_pairs = int_in(p, "num_channel_pairs", cfg.num_channel_pairs, 1, 64);
        cfg.duration_s = num(p, "duration_s", cfg.duration_s);
        cfg.seed = seed_param(p, cfg.seed);
        auto comb =
            QuantumFrequencyComb::for_configuration(PumpConfiguration::CrossPolarized);
        auto exp = comb.type2(cfg);
        io::Json out = io::Json::make_object();
        out.set("car", exp.run_car_measurement().to_json());
        out.set("opo_threshold_w", exp.opo_threshold_w());
        out.set("stimulated_suppression_db", exp.stimulated_suppression_db());
        return out;
      });

  // ---- Sec. IV: time-bin entanglement (double-pulse pump)
  add("timebin_chsh",
      "Quantum-interference fringe and CHSH test on one or all comb "
      "channel pairs",
      concat({{"channel", "integer", "channel pair to run (0 = all pairs)"}},
             kTimebinParams),
      [](const io::JsonView& p) {
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
        auto exp = comb.timebin(timebin_config_from(p, comb.device()));
        const int channel =
            int_in(p, "channel", 0, 0, exp.config().num_channel_pairs);
        io::Json channels = io::Json::make_array();
        if (channel == 0) {
          for (auto& r : exp.run_all_channels()) channels.push_back(r.to_json());
        } else {
          channels.push_back(exp.run_channel(channel).to_json());
        }
        io::Json out = io::Json::make_object();
        out.set("channels", std::move(channels));
        return out;
      });

  // ---- Sec. V: four-photon states (double-pulse pump, four modes)
  add("four_photon",
      "Four-photon interference fringe and tomographic fidelities",
      {
          {"pair_a", "integer", "first channel pair of the four-photon state"},
          {"pair_b", "integer", "second channel pair of the four-photon state"},
          {"fringe_points", "integer", "points per four-fold fringe"},
          {"fourfold_events_per_point", "number", "four-fold events per fringe point"},
          {"tomo_shots_per_setting", "number", "tomography shots per setting"},
          {"seed", "integer", "experiment RNG seed"},
      },
      [](const io::JsonView& p) {
        core::FourPhotonConfig cfg;
        cfg.pair_a = int_in(p, "pair_a", cfg.pair_a, 1, 64);
        cfg.pair_b = int_in(p, "pair_b", cfg.pair_b, 1, 64);
        cfg.fringe_points = int_in(p, "fringe_points", cfg.fringe_points, 4, 100000);
        cfg.fourfold_events_per_point =
            num(p, "fourfold_events_per_point", cfg.fourfold_events_per_point);
        cfg.tomo_shots_per_setting =
            num(p, "tomo_shots_per_setting", cfg.tomo_shots_per_setting);
        cfg.seed = seed_param(p, cfg.seed);
        auto comb = QuantumFrequencyComb::for_configuration(
            PumpConfiguration::DoublePulseFourMode);
        return comb.four_photon(cfg).run().to_json();
      });

  // ---- Sec. II stability claim
  add("stability_comparison",
      "Self-locked vs externally pumped long-term pair-rate stability",
      {
          {"observation_days", "number", "observation window [days]"},
          {"sample_interval_s", "number", "sampling interval [s]"},
          {"temperature_rms_K", "number", "ambient temperature drift RMS [K]"},
          {"temperature_tau_s", "number", "temperature correlation time [s]"},
          {"seed", "integer", "drift RNG seed"},
          {"include_series", "bool", "embed the full time series in the result"},
      },
      [](const io::JsonView& p) {
        core::StabilityConfig cfg;
        cfg.observation_days = num(p, "observation_days", cfg.observation_days);
        cfg.sample_interval_s = num(p, "sample_interval_s", cfg.sample_interval_s);
        cfg.temperature_rms_K = num(p, "temperature_rms_K", cfg.temperature_rms_K);
        cfg.temperature_tau_s = num(p, "temperature_tau_s", cfg.temperature_tau_s);
        cfg.seed = seed_param(p, cfg.seed);
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
        return comb.stability(cfg).run().to_json(flag(p, "include_series", false));
      });

  // ---- QKD application: analytic multiplexed link budget
  add("qkd_link_budget",
      "Analytic BBM92 link budget over every comb channel pair at one "
      "Alice-Bob distance",
      concat(concat({{"distance_km", "number", "total Alice-Bob separation [km]"}},
                    kEndpointParams),
             kTimebinParams),
      [](const io::JsonView& p) {
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
        auto exp = comb.timebin(timebin_config_from(p, comb.device()));
        const core::MultiplexedQkdLink link(exp, endpoint_from(p));
        const double distance_km = num(p, "distance_km", 0.0);
        io::Json channels = io::Json::make_array();
        for (const auto& ch : link.all_channels(distance_km))
          channels.push_back(ch.to_json());
        io::Json out = io::Json::make_object();
        out.set("distance_km", distance_km);
        out.set("channels", std::move(channels));
        out.set("aggregate_key_rate_bps", link.aggregate_key_rate_bps(distance_km));
        return out;
      });

  // ---- QKD application: many-user shared-engine network run
  add("qkd_network",
      "Monte-Carlo many-user QKD network from one shared streaming engine run",
      concat({{"num_users", "integer", "subscribers on the comb"},
              {"max_distance_km", "number", "links spread over [0, max] [km]"},
              {"duration_s", "number", "shared run duration [s]"},
              {"stream_window_s", "number", "streaming window (memory knob) [s]"},
              {"histogram_bin_km", "number", "distance histogram bin [km]"},
              {"seed", "integer", "engine seed"}},
             kEndpointParams),
      [](const io::JsonView& p) {
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::DoublePulse);
        auto exp = comb.timebin_default();
        core::QkdNetworkConfig cfg = core::QkdNetworkConfig::uniform(
            static_cast<std::size_t>(p.at("num_users").as_int_in(1, 100000)),
            num(p, "max_distance_km", 50.0), endpoint_from(p));
        cfg.stream_window_s = num(p, "stream_window_s", cfg.stream_window_s);
        cfg.histogram_bin_km = num(p, "histogram_bin_km", cfg.histogram_bin_km);
        cfg.seed = seed_param(p, cfg.seed);
        cfg.analysis_threads = 1;  // sweep workers own the parallelism
        const core::QkdNetwork network(exp, cfg);
        return network.run(num(p, "duration_s", 1.0)).to_json();
      });

  // ---- qudit application: frequency-bin entangled pairs
  add("qudit_source",
      "Frequency-bin qudit pairs from the CW comb: entanglement measures "
      "and procrustean flattening cost",
      {
          {"dimension", "integer", "qudit dimension d (comb pairs 1..d)"},
          {"pump_power_w", "number", "CW pump power at the ring [W]"},
      },
      [](const io::JsonView& p) {
        const auto dimension =
            static_cast<std::size_t>(p.at("dimension").as_int_in(2, 64));
        core::HeraldedConfig cfg;
        cfg.pump_power_w = num(p, "pump_power_w", cfg.pump_power_w);
        cfg.num_channel_pairs = static_cast<int>(dimension);
        auto comb = QuantumFrequencyComb::for_configuration(PumpConfiguration::SelfLockedCw);
        auto exp = comb.heralded(cfg);
        const auto source = qudit::FreqBinSource::from_cw_source(exp.source(), dimension);
        io::Json probabilities = io::Json::make_array();
        for (const auto& amplitude : source.bin_amplitudes())
          probabilities.push_back(std::norm(amplitude));
        io::Json out = io::Json::make_object();
        out.set("dimension", dimension);
        out.set("bin_probabilities", std::move(probabilities));
        out.set("schmidt_number", source.schmidt_number());
        out.set("entanglement_entropy_bits", source.entanglement_entropy_bits());
        out.set("flattening_efficiency",
                source.shaping_efficiency(source.flattening_mask()));
        return out;
      });
}

}  // namespace qfc::sweep
