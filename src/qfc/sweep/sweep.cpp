#include "qfc/sweep/sweep.hpp"

#include <exception>
#include <utility>

#include "qfc/parallel/worker_pool.hpp"
#include "qfc/sweep/scenario.hpp"

namespace qfc::sweep {

namespace {

constexpr std::size_t kMaxInstances = 10000;

/// One expanded sweep axis: the parameter it drives and its value list.
struct Axis {
  std::string param;
  std::vector<io::Json> values;
};

Axis parse_axis(const io::JsonView& axis) {
  axis.require_keys_among({"param", "values", "linspace"});
  Axis out;
  out.param = axis.at("param").as_string();
  const bool has_values = axis.has("values");
  const bool has_linspace = axis.has("linspace");
  if (has_values == has_linspace)
    axis.fail("expected exactly one of 'values' or 'linspace'");
  if (has_values) {
    const io::JsonView values = axis.at("values");
    const std::size_t n = values.array_size();
    if (n == 0) values.fail("axis value list is empty");
    for (std::size_t i = 0; i < n; ++i) {
      const io::JsonView v = values.at(i);
      if (v.value().is_array() || v.value().is_object() || v.value().is_null())
        v.fail("axis values must be scalars (bool, number, or string)");
      out.values.push_back(v.value());
    }
  } else {
    const io::JsonView ls = axis.at("linspace");
    ls.require_keys_among({"start", "stop", "count"});
    const double start = ls.at("start").as_number();
    const double stop = ls.at("stop").as_number();
    const auto count = ls.at("count").as_int_in(1, static_cast<std::int64_t>(kMaxInstances));
    out.values.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      // Endpoint-exact evenly spaced grid; a single point sits at start.
      const double t = count == 1 ? 0.0
                                  : static_cast<double>(i) /
                                        static_cast<double>(count - 1);
      out.values.push_back(io::Json(start + (stop - start) * t));
    }
  }
  return out;
}

void expand_one_sweep(const io::JsonView& sweep, SweepPlan& plan) {
  sweep.require_keys_among({"scenario", "base", "axes"});
  const std::string& name = sweep.at("scenario").as_string();
  if (ScenarioRegistry::instance().find(name) == nullptr) {
    std::string known;
    for (const Scenario& s : ScenarioRegistry::instance().scenarios()) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    sweep.at("scenario").fail("unknown scenario '" + name +
                              "' (registered: " + known + ")");
  }

  io::Json base = io::Json::make_object();
  if (sweep.has("base")) {
    const io::JsonView b = sweep.at("base");
    if (!b.is_object()) b.fail("expected a parameter object");
    base = b.value();
  }

  std::vector<Axis> axes;
  std::size_t combinations = 1;
  if (sweep.has("axes")) {
    const io::JsonView axes_view = sweep.at("axes");
    const std::size_t n = axes_view.array_size();
    for (std::size_t i = 0; i < n; ++i) {
      Axis axis = parse_axis(axes_view.at(i));
      if (combinations > kMaxInstances / axis.values.size())
        axes_view.fail("axis product exceeds the instance cap");
      combinations *= axis.values.size();
      axes.push_back(std::move(axis));
    }
  }
  if (plan.instances.size() + combinations > kMaxInstances)
    sweep.fail("sweep config expands to more than " +
               std::to_string(kMaxInstances) + " scenario instances");

  // Row-major cartesian product: the last axis varies fastest, so the
  // report order matches a nested-loop reading of the config.
  for (std::size_t flat = 0; flat < combinations; ++flat) {
    ScenarioInstance instance;
    instance.scenario = name;
    instance.params = base;
    instance.path = sweep.path();
    std::size_t remainder = flat;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const Axis& axis = axes[a];
      instance.params.set(axis.param, axis.values[remainder % axis.values.size()]);
      remainder /= axis.values.size();
    }
    plan.instances.push_back(std::move(instance));
  }
}

}  // namespace

SweepPlan expand_sweep_config(const io::Json& config) {
  const io::JsonView root(config);
  if (!root.is_object()) root.fail("expected a sweep config object");
  root.require_keys_among({"workers", "sweeps"});

  SweepPlan plan;
  if (root.has("workers"))
    plan.workers = static_cast<int>(root.at("workers").as_int_in(1, 1024));

  const io::JsonView sweeps = root.at("sweeps");
  const std::size_t n = sweeps.array_size();
  if (n == 0) sweeps.fail("sweep list is empty");
  for (std::size_t i = 0; i < n; ++i) expand_one_sweep(sweeps.at(i), plan);
  return plan;
}

SweepReport run_sweep(const SweepPlan& plan, int workers) {
  const std::size_t n = plan.instances.size();
  std::vector<io::Json> results(n);
  std::vector<std::string> errors(n);
  std::vector<char> failed(n, 0);

  // Failure isolation: a throwing instance fills its error slot and the
  // round continues. Only JsonError/std::exception are caught — anything
  // else is a bug and should crash loudly.
  const auto run_one = [&](std::size_t i) {
    const ScenarioInstance& instance = plan.instances[i];
    const Scenario* scenario = ScenarioRegistry::instance().find(instance.scenario);
    try {
      if (scenario == nullptr)
        throw io::JsonError(instance.path + ": unknown scenario '" +
                            instance.scenario + "'");
      results[i] = scenario->run(io::JsonView(instance.params, instance.path + ".params"));
    } catch (const std::exception& e) {
      failed[i] = 1;
      errors[i] = e.what();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Every task writes one disjoint slot, so any chunking is bitwise
    // safe; chunk size 1 keeps long scenarios from serializing behind
    // each other on one worker.
    parallel::WorkerPool pool(static_cast<unsigned>(workers));
    parallel::parallel_for_chunks(
        pool, n, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) run_one(i);
        });
  }

  // Merge in plan (= config) order.
  SweepReport report;
  report.num_scenarios = n;
  io::Json entries = io::Json::make_array();
  for (std::size_t i = 0; i < n; ++i) {
    io::Json entry = io::Json::make_object();
    entry.set("index", i);
    entry.set("scenario", plan.instances[i].scenario);
    entry.set("params", plan.instances[i].params);
    entry.set("ok", failed[i] == 0);
    if (failed[i] == 0) {
      entry.set("result", std::move(results[i]));
    } else {
      entry.set("error", errors[i]);
      ++report.num_failed;
    }
    entries.push_back(std::move(entry));
  }
  report.json = io::Json::make_object();
  report.json.set("num_scenarios", report.num_scenarios);
  report.json.set("num_failed", report.num_failed);
  report.json.set("results", std::move(entries));
  return report;
}

}  // namespace qfc::sweep
