#include "qfc/linalg/solve.hpp"

#include <cmath>
#include <numeric>

#include "qfc/linalg/error.hpp"

namespace qfc::linalg {

LuDecomposition lu_decompose(const CMat& a) {
  a.require_square("lu_decompose");
  const std::size_t n = a.rows();
  LuDecomposition d;
  d.lu = a;
  d.piv.resize(n);
  std::iota(d.piv.begin(), d.piv.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |.| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(d.lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = std::abs(d.lu(i, k));
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) throw NumericalError("lu_decompose: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(d.lu(k, j), d.lu(pivot, j));
      std::swap(d.piv[k], d.piv[pivot]);
      d.sign = -d.sign;
    }
    const cplx inv_pivot = cplx(1, 0) / d.lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      d.lu(i, k) *= inv_pivot;
      const cplx lik = d.lu(i, k);
      if (lik == cplx(0, 0)) continue;
      for (std::size_t j = k + 1; j < n; ++j) d.lu(i, j) -= lik * d.lu(k, j);
    }
  }
  return d;
}

CVec LuDecomposition::solve(const CVec& b) const {
  const std::size_t n = lu.rows();
  if (b.size() != n) throw std::invalid_argument("LuDecomposition::solve: size mismatch");
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu(i, j) * x[j];
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu(ii, j) * x[j];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

cplx LuDecomposition::determinant() const {
  cplx det(static_cast<double>(sign), 0);
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

CVec solve(const CMat& a, const CVec& b) { return lu_decompose(a).solve(b); }

CMat inverse(const CMat& a) {
  const LuDecomposition d = lu_decompose(a);
  const std::size_t n = a.rows();
  CMat inv(n, n);
  CVec e(n, cplx(0, 0));
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = cplx(1, 0);
    const CVec col = d.solve(e);
    e[j] = cplx(0, 0);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

cplx determinant(const CMat& a) { return lu_decompose(a).determinant(); }

CMat cholesky(const CMat& a) {
  a.require_square("cholesky");
  if (!is_hermitian(a, 1e-9))
    throw std::invalid_argument("cholesky: matrix is not Hermitian");
  const std::size_t n = a.rows();
  CMat l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cplx s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * std::conj(l(j, k));
      if (i == j) {
        const double d = std::real(s);
        if (d <= 0 || std::abs(std::imag(s)) > 1e-9 * std::max(1.0, d))
          throw NumericalError("cholesky: matrix not positive definite");
        l(i, j) = cplx(std::sqrt(d), 0);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

RVec least_squares(const RMat& a, const RVec& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("least_squares: size mismatch");
  if (m < n) throw std::invalid_argument("least_squares: underdetermined system");

  // Householder QR, transforming b alongside.
  RMat r = a;
  RVec y = b;
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) throw NumericalError("least_squares: rank-deficient matrix");
    const double alpha = (r(k, k) > 0) ? -norm : norm;

    RVec v(m, 0.0);
    for (std::size_t i = k; i < m; ++i) v[i] = r(i, k);
    v[k] -= alpha;
    double vnorm2 = 0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 < 1e-300) continue;

    for (std::size_t j = k; j < n; ++j) {
      double dot = 0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * r(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i];
    }
    double dotb = 0;
    for (std::size_t i = k; i < m; ++i) dotb += v[i] * y[i];
    const double fb = 2.0 * dotb / vnorm2;
    for (std::size_t i = k; i < m; ++i) y[i] -= fb * v[i];
  }

  RVec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) < 1e-300)
      throw NumericalError("least_squares: rank-deficient matrix");
    x[ii] = s / r(ii, ii);
  }
  return x;
}

}  // namespace qfc::linalg
