#pragma once

/// \file hermitian_eig.hpp
/// Cyclic Jacobi eigensolver for complex Hermitian matrices.
/// Robust and accurate for the small dimensions used in this library
/// (density matrices up to 16x16, Schmidt problems up to ~128x128).

#include "qfc/linalg/matrix.hpp"

namespace qfc::linalg {

struct EigResult {
  /// Eigenvalues sorted in descending order (real, since input is Hermitian).
  RVec values;
  /// Column j of `vectors` is the normalized eigenvector of values[j];
  /// A = V diag(values) V†.
  CMat vectors;
};

/// Eigendecomposition of a Hermitian matrix (validated to tolerance
/// `hermiticity_tol`). Throws NumericalError on non-convergence and
/// std::invalid_argument for non-Hermitian/non-square input.
EigResult hermitian_eig(const CMat& a,
                        int max_sweeps = 64,
                        double hermiticity_tol = 1e-9);

/// Eigenvalues only (same algorithm, skips accumulating vectors).
RVec hermitian_eigenvalues(const CMat& a, int max_sweeps = 64);

}  // namespace qfc::linalg
